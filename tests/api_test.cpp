// Tests for the public Api surface beyond the data-movement calls:
// identity, distance, multi-EQ polling, handle semantics, error returns.

#include <gtest/gtest.h>

#include <array>

#include "host/node.hpp"
#include "portals/api.hpp"

namespace xt {
namespace {

using host::Machine;
using host::Process;
using ptl::AckReq;
using ptl::EqHandle;
using ptl::EventType;
using ptl::InsPos;
using ptl::MdDesc;
using ptl::ProcessId;
using ptl::PTL_OK;
using ptl::Unlink;
using sim::CoTask;
using sim::Time;

TEST(Api, GetIdReturnsNidPid) {
  Machine m(net::Shape::xt3(3, 1, 1));
  Process& p = m.node(2).spawn_process(7);
  bool done = false;
  sim::spawn([](Process& pr, bool* d) -> CoTask<void> {
    auto id = co_await pr.api().PtlGetId();
    EXPECT_EQ(id.rc, PTL_OK);
    EXPECT_EQ(id.value, (ProcessId{2, 7}));
    *d = true;
  }(p, &done));
  m.run();
  EXPECT_TRUE(done);
}

TEST(Api, NIDistMatchesTopology) {
  const net::Shape s = net::Shape::xt3(4, 4, 2);
  Machine m(s);
  Process& p = m.node(0).spawn_process(7);
  bool done = false;
  sim::spawn([](Process& pr, net::Shape sh, bool* d) -> CoTask<void> {
    for (const net::NodeId dst : {0u, 1u, 5u, 31u}) {
      auto r = co_await pr.api().PtlNIDist(dst);
      EXPECT_EQ(r.rc, PTL_OK);
      EXPECT_EQ(r.value,
                static_cast<std::uint32_t>(net::hop_count(sh, 0, dst)));
    }
    *d = true;
  }(p, s, &done));
  m.run();
  EXPECT_TRUE(done);
}

TEST(Api, EqPollTimesOutWhenSilent) {
  Machine m(net::Shape::xt3(1, 1, 1));
  Process& p = m.node(0).spawn_process(7);
  bool done = false;
  sim::spawn([](Process& pr, bool* d) -> CoTask<void> {
    auto& api = pr.api();
    auto eq1 = co_await api.PtlEQAlloc(8);
    auto eq2 = co_await api.PtlEQAlloc(8);
    const std::array<EqHandle, 2> eqs{eq1.value, eq2.value};
    const Time start = pr.node().engine().now();
    std::size_t which = 99;
    auto r = co_await api.PtlEQPoll(eqs, Time::us(5), &which);
    EXPECT_EQ(r.rc, ptl::PTL_EQ_EMPTY);
    EXPECT_GE(pr.node().engine().now() - start, Time::us(5));
    *d = true;
  }(p, &done));
  m.run();
  EXPECT_TRUE(done);
}

TEST(Api, EqPollReportsWhichQueueFired) {
  Machine m(net::Shape::xt3(2, 1, 1));
  Process& a = m.node(0).spawn_process(7);
  Process& b = m.node(1).spawn_process(7);
  bool done = false;
  // b posts two receive MDs on different EQs; a targets the second one.
  sim::spawn([](Process& pr, bool* d) -> CoTask<void> {
    auto& api = pr.api();
    auto eq1 = co_await api.PtlEQAlloc(8);
    auto eq2 = co_await api.PtlEQAlloc(8);
    for (int i = 0; i < 2; ++i) {
      auto me = co_await api.PtlMEAttach(
          0, ProcessId{ptl::kNidAny, ptl::kPidAny},
          static_cast<ptl::MatchBits>(100 + i), 0, Unlink::kRetain,
          InsPos::kAfter);
      MdDesc md;
      md.start = pr.alloc(64);
      md.length = 64;
      md.options = ptl::PTL_MD_OP_PUT;
      md.eq = i == 0 ? eq1.value : eq2.value;
      (void)co_await api.PtlMDAttach(me.value, md, Unlink::kRetain);
    }
    const std::array<EqHandle, 2> eqs{eq1.value, eq2.value};
    std::size_t which = 99;
    // Wait until the *second* EQ delivers PUT events.
    for (;;) {
      auto r = co_await api.PtlEQPoll(eqs, sim::Time::max(), &which);
      EXPECT_EQ(r.rc, PTL_OK);
      if (r.value.type == EventType::kPutEnd) break;
    }
    EXPECT_EQ(which, 1u);
    *d = true;
  }(b, &done));
  sim::spawn([](Process& pr) -> CoTask<void> {
    auto& api = pr.api();
    auto eq = co_await api.PtlEQAlloc(8);
    MdDesc md;
    md.start = pr.alloc(8);
    md.length = 8;
    md.eq = eq.value;
    auto h = co_await api.PtlMDBind(md, Unlink::kRetain);
    (void)co_await api.PtlPut(h.value, AckReq::kNone, ProcessId{1, 7}, 0, 0,
                              101, 0, 0);
  }(a));
  m.run();
  EXPECT_TRUE(done);
}

TEST(Api, HandleEqualityAndStaleness) {
  Machine m(net::Shape::xt3(1, 1, 1));
  Process& p = m.node(0).spawn_process(7);
  bool done = false;
  sim::spawn([](Process& pr, bool* d) -> CoTask<void> {
    auto& api = pr.api();
    auto me1 = co_await api.PtlMEAttach(0,
                                        ProcessId{ptl::kNidAny, ptl::kPidAny},
                                        1, 0, Unlink::kRetain, InsPos::kAfter);
    auto copy = me1.value;
    EXPECT_TRUE(ptl::Api::PtlHandleIsEqual(me1.value, copy));
    // Unlink, then reattach: the slot may be reused but the generation
    // must differ, so the stale handle never aliases the new entry.
    EXPECT_EQ(co_await api.PtlMEUnlink(me1.value), PTL_OK);
    auto me2 = co_await api.PtlMEAttach(0,
                                        ProcessId{ptl::kNidAny, ptl::kPidAny},
                                        2, 0, Unlink::kRetain, InsPos::kAfter);
    EXPECT_FALSE(ptl::Api::PtlHandleIsEqual(me1.value, me2.value));
    EXPECT_EQ(co_await api.PtlMEUnlink(me1.value), ptl::PTL_ME_INVALID);
    EXPECT_EQ(co_await api.PtlMEUnlink(me2.value), PTL_OK);
    *d = true;
  }(p, &done));
  m.run();
  EXPECT_TRUE(done);
}

TEST(Api, ErrorStringsCoverCodes) {
  EXPECT_STREQ(ptl::ptl_err_str(PTL_OK), "PTL_OK");
  EXPECT_STREQ(ptl::ptl_err_str(ptl::PTL_EQ_EMPTY), "PTL_EQ_EMPTY");
  EXPECT_STREQ(ptl::ptl_err_str(ptl::PTL_SEGV), "PTL_SEGV");
  EXPECT_STREQ(ptl::ptl_err_str(9999), "PTL_UNKNOWN_ERROR");
}

TEST(Api, NIStatusCountsSentAndReceived) {
  Machine m(net::Shape::xt3(2, 1, 1));
  Process& a = m.node(0).spawn_process(7);
  Process& b = m.node(1).spawn_process(7);
  bool done = false;
  sim::spawn([](Process& pr, bool* d) -> CoTask<void> {
    auto& api = pr.api();
    auto eq = co_await api.PtlEQAlloc(8);
    auto me = co_await api.PtlMEAttach(
        0, ProcessId{ptl::kNidAny, ptl::kPidAny}, 1, 0, Unlink::kRetain,
        InsPos::kAfter);
    MdDesc md;
    md.start = pr.alloc(64);
    md.length = 64;
    md.options = ptl::PTL_MD_OP_PUT;
    md.eq = eq.value;
    (void)co_await api.PtlMDAttach(me.value, md, Unlink::kRetain);
    for (;;) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kPutEnd) break;
    }
    auto recvd = co_await api.PtlNIStatus(ptl::SrIndex::kMessagesReceived);
    EXPECT_GE(recvd.value, 1u);
    *d = true;
  }(b, &done));
  sim::spawn([](Process& pr) -> CoTask<void> {
    auto& api = pr.api();
    auto eq = co_await api.PtlEQAlloc(8);
    MdDesc md;
    md.start = pr.alloc(8);
    md.length = 8;
    md.eq = eq.value;
    auto h = co_await api.PtlMDBind(md, Unlink::kRetain);
    (void)co_await api.PtlPut(h.value, AckReq::kNone, ProcessId{1, 7}, 0, 0,
                              1, 0, 0);
    auto sent = co_await api.PtlNIStatus(ptl::SrIndex::kMessagesSent);
    EXPECT_GE(sent.value, 1u);
  }(a));
  m.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace xt
