// Telemetry: histogram bucket math, registry snapshots, XT_LOG parsing,
// and end-to-end provenance attribution through the full stack.

#include <cstdlib>

#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "netpipe/netpipe.hpp"
#include "sim/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/provenance.hpp"

namespace {

using namespace xt;
using telemetry::Histogram;
using telemetry::MetricsRegistry;
using telemetry::ProvenanceLog;
using telemetry::Stage;

// Runs first in this binary (gtest default order is declaration order):
// default_log_threshold() caches its first parse, so the environment must
// be set before anything constructs an Engine.
TEST(LogLevelTest, DefaultThresholdParsesEnvOnceAndCaches) {
  ASSERT_EQ(setenv("XT_LOG", "warn", 1), 0);
  EXPECT_EQ(sim::default_log_threshold(), sim::LogLevel::kWarn);
  // Cached: later environment changes are deliberately ignored.
  ASSERT_EQ(setenv("XT_LOG", "trace", 1), 0);
  EXPECT_EQ(sim::default_log_threshold(), sim::LogLevel::kWarn);
  ASSERT_EQ(unsetenv("XT_LOG"), 0);
}

TEST(LogLevelTest, ParsesAllFiveLevels) {
  EXPECT_EQ(sim::parse_log_level("trace"), sim::LogLevel::kTrace);
  EXPECT_EQ(sim::parse_log_level("debug"), sim::LogLevel::kDebug);
  EXPECT_EQ(sim::parse_log_level("info"), sim::LogLevel::kInfo);
  EXPECT_EQ(sim::parse_log_level("warn"), sim::LogLevel::kWarn);
  EXPECT_EQ(sim::parse_log_level("error"), sim::LogLevel::kError);
}

TEST(LogLevelTest, GarbageAndUnsetMapToOff) {
  EXPECT_EQ(sim::parse_log_level(nullptr), sim::LogLevel::kOff);
  EXPECT_EQ(sim::parse_log_level(""), sim::LogLevel::kOff);
  EXPECT_EQ(sim::parse_log_level("verbose"), sim::LogLevel::kOff);
  EXPECT_EQ(sim::parse_log_level("WARN"), sim::LogLevel::kOff);  // no casefold
  EXPECT_EQ(sim::parse_log_level("debug "), sim::LogLevel::kOff);
}

TEST(HistogramTest, BucketEdges) {
  // Bucket 0 holds exactly 0; bucket i >= 1 holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 1);
  EXPECT_EQ(Histogram::bucket_index(2), 2);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 3);
  EXPECT_EQ(Histogram::bucket_index(7), 3);
  EXPECT_EQ(Histogram::bucket_index(8), 4);
  EXPECT_EQ(Histogram::bucket_index((1ull << 32) - 1), 32);
  EXPECT_EQ(Histogram::bucket_index(1ull << 32), 33);
  EXPECT_EQ(Histogram::bucket_index(~0ull), 64);

  for (int i = 1; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lo(i)), i);
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_hi(i)), i);
    if (i > 1) {
      EXPECT_EQ(Histogram::bucket_lo(i), Histogram::bucket_hi(i - 1) + 1);
    }
  }
  EXPECT_EQ(Histogram::bucket_hi(64), ~0ull);
}

TEST(HistogramTest, RecordAndPercentiles) {
  Histogram h;
  EXPECT_EQ(h.percentile(50), 0u);  // empty

  h.record(5);  // lone sample: every percentile lands in its bucket [4,7]
  EXPECT_EQ(h.percentile(1), 7u);
  EXPECT_EQ(h.percentile(50), 7u);
  EXPECT_EQ(h.percentile(99), 7u);

  // 10 zeros + 9 samples near 1000 (bucket [512,1023]): the median is a
  // zero, the tail is the big bucket.
  Histogram m;
  for (int i = 0; i < 10; ++i) m.record(0);
  for (int i = 0; i < 9; ++i) m.record(1000);
  EXPECT_EQ(m.count, 19u);
  EXPECT_EQ(m.sum, 9000u);
  EXPECT_EQ(m.percentile(50), 0u);
  EXPECT_EQ(m.percentile(90), 1023u);
  EXPECT_EQ(m.percentile(99), 1023u);
}

TEST(HistogramTest, PercentileX10EdgeCases) {
  Histogram h;
  EXPECT_EQ(h.percentile_x10(999), 0u);  // empty

  h.record(0);
  EXPECT_EQ(h.percentile_x10(500), 0u);  // bucket 0 is exact, no interp
  EXPECT_EQ(h.percentile_x10(999), 0u);

  Histogram one;
  one.record(100);  // bucket [64,127]
  // A single sample: every percentile is that sample's bucket, and the
  // interpolation (j = n = 1) lands on bucket_hi.
  EXPECT_EQ(one.percentile_x10(1), 127u);
  EXPECT_EQ(one.percentile_x10(999), 127u);
  EXPECT_EQ(one.percentile_x10(1000), 127u);  // rank clamps to count
}

TEST(HistogramTest, PercentileX10InterpolatesWithinBucket) {
  // 1000 samples all in bucket [512, 1023]: p50 sits mid-bucket instead of
  // collapsing onto 1023 the way percentile(50) does.
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(700);
  EXPECT_EQ(h.percentile(50), 1023u);
  const std::uint64_t p500 = h.percentile_x10(500);
  EXPECT_GE(p500, 512u + 255u);  // ~ lo + span/2
  EXPECT_LE(p500, 512u + 256u);
  // Monotone in p, and p999 < bucket_hi (the 999th of 1000 samples).
  EXPECT_LE(h.percentile_x10(500), h.percentile_x10(990));
  EXPECT_LE(h.percentile_x10(990), h.percentile_x10(999));
  EXPECT_LT(h.percentile_x10(999), 1023u);
  EXPECT_EQ(h.percentile_x10(1000), 1023u);
}

TEST(HistogramTest, PercentileX10AgreesWithPercentileRanking) {
  // percentile(p) rounds up to bucket_hi; percentile_x10(10 * p) must pick
  // the same bucket (interpolated value within [lo, hi]).
  Histogram h;
  std::uint64_t v = 1;
  for (int i = 0; i < 500; ++i) h.record(v = (v * 48271) % 99991);
  for (int p : {1, 10, 50, 90, 99}) {
    const std::uint64_t coarse = h.percentile(p);
    const std::uint64_t fine = h.percentile_x10(p * 10);
    EXPECT_EQ(Histogram::bucket_index(fine),
              Histogram::bucket_index(coarse));
    EXPECT_LE(fine, coarse);
  }
}

TEST(HistogramTest, P999SeparatesFromP99OnHeavyTail) {
  // 989 fast samples, 9 at 10x, 2 at 100x: p99 lands in the 10x bucket,
  // p999 in the 100x bucket — the reason the SLO tooling tracks tenths.
  Histogram h;
  for (int i = 0; i < 989; ++i) h.record(1000);
  for (int i = 0; i < 9; ++i) h.record(10000);
  h.record(100000);
  h.record(100000);
  EXPECT_EQ(Histogram::bucket_index(h.percentile_x10(990)),
            Histogram::bucket_index(10000));
  EXPECT_EQ(Histogram::bucket_index(h.percentile_x10(999)),
            Histogram::bucket_index(100000));
}

TEST(MetricsRegistryTest, HandlesAreStableAndNamed) {
  MetricsRegistry reg;
  telemetry::Counter& a = reg.counter("x.count");
  a.add();
  a.add(41);
  EXPECT_EQ(reg.counter("x.count").value, 42u);
  EXPECT_EQ(&reg.counter("x.count"), &a);

  telemetry::Gauge& g = reg.gauge("x.depth");
  g.set(7);
  g.set(3);
  EXPECT_EQ(g.value, 3);
  EXPECT_EQ(g.high_water, 7);
}

TEST(MetricsRegistryTest, JsonIsDeterministicAndSorted) {
  auto build = [] {
    MetricsRegistry reg;
    reg.counter("b.second").add(2);
    reg.counter("a.first").add(1);
    reg.gauge("z.gauge").set(-4);
    reg.histogram("h.lat").record(3);
    return reg.to_json();
  };
  const std::string j1 = build();
  const std::string j2 = build();
  EXPECT_EQ(j1, j2);
  // Sorted keys: "a.first" serializes before "b.second".
  EXPECT_LT(j1.find("a.first"), j1.find("b.second"));
  EXPECT_NE(j1.find("\"z.gauge\":{\"value\":-4,\"high_water\":0}"),
            std::string::npos);
  EXPECT_NE(j1.find("\"h.lat\""), std::string::npos);
}

TEST(ProvenanceTest, TelescopingSumsEqualEndToEnd) {
  ProvenanceLog log;
  const std::uint64_t id =
      log.begin_message(0, 1, 64, sim::Time::ns(100));
  log.stamp(id, Stage::kFwTxCmd, sim::Time::ns(400));
  log.stamp(id, Stage::kWireHeader, sim::Time::ns(900));
  log.stamp(id, Stage::kHostDeliver, sim::Time::ns(2500));
  // Incomplete record (no kHostDeliver): excluded from attribution.
  const std::uint64_t id2 =
      log.begin_message(1, 0, 64, sim::Time::ns(0));
  log.stamp(id2, Stage::kFwTxCmd, sim::Time::ns(300));

  const telemetry::Attribution att = log.attribute();
  EXPECT_EQ(att.messages, 1u);
  EXPECT_EQ(att.e2e_ps, sim::Time::ns(2400).to_ps());
  std::uint64_t sum = 0;
  for (const telemetry::StageRow& r : att.rows) sum += r.total_ps;
  EXPECT_EQ(sum, att.e2e_ps);

  // Stamping an untracked id is a no-op, not a crash.
  log.stamp(0, Stage::kFwTxCmd, sim::Time::ns(1));
  log.stamp(12345, Stage::kFwTxCmd, sim::Time::ns(1));
  EXPECT_EQ(log.size(), 2u);
}

/// Full stack: a real ping-pong with provenance enabled must produce
/// complete waterfalls whose stage sums equal the end-to-end latency.
TEST(ProvenanceTest, FullStackAttributionIsExact) {
  for (const host::ProcMode mode :
       {host::ProcMode::kUser, host::ProcMode::kAccel}) {
    harness::Scenario sc = harness::Scenario::pair(mode, 10, 16u << 20);
    harness::Scenario::TelemetrySpec tel;
    tel.provenance = true;
    sc.with_telemetry(tel);
    auto inst = sc.build();
    auto mod = np::make_portals_module(inst->proc(0), inst->proc(1),
                                       /*use_get=*/false);
    bool done = false;
    sim::spawn([](np::Module& m, bool* d) -> sim::CoTask<void> {
      co_await m.setup(1 << 16);
      co_await m.pingpong(8, 3);
      co_await m.pingpong(4096, 3);
      *d = true;
    }(*mod, &done));
    inst->run();
    ASSERT_TRUE(done);

    ASSERT_NE(inst->provenance(), nullptr);
    const telemetry::Attribution att = inst->provenance()->attribute();
    EXPECT_GT(att.messages, 0u);
    std::uint64_t sum = 0;
    for (const telemetry::StageRow& r : att.rows) sum += r.total_ps;
    EXPECT_EQ(sum, att.e2e_ps);

    // Mode signature: generic matches on the host, accel in the firmware.
    bool saw_host_match = false, saw_fw_match = false;
    for (const telemetry::StageRow& r : att.rows) {
      if (r.stage == Stage::kHostMatch) saw_host_match = true;
      if (r.stage == Stage::kFwMatch) saw_fw_match = true;
    }
    if (mode == host::ProcMode::kUser) {
      EXPECT_TRUE(saw_host_match);
      EXPECT_FALSE(saw_fw_match);
    } else {
      EXPECT_TRUE(saw_fw_match);
      EXPECT_FALSE(saw_host_match);
    }
  }
}

}  // namespace
