// Tests for the MPI collectives (src/mpi/coll.cpp) over the full stack.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "host/node.hpp"
#include "mpi/mpi.hpp"

namespace xt::mpi {
namespace {

using host::Machine;
using host::Process;
using ptl::PTL_OK;
using sim::CoTask;

constexpr ptl::Pid kPid = 9;

struct Job {
  explicit Job(int nranks) : m(net::Shape::xt3(nranks, 1, 1)) {
    std::vector<ptl::ProcessId> ids;
    for (int r = 0; r < nranks; ++r) {
      ids.push_back(ptl::ProcessId{static_cast<net::NodeId>(r), kPid});
    }
    for (int r = 0; r < nranks; ++r) {
      procs.push_back(&m.node(static_cast<net::NodeId>(r))
                           .spawn_process(kPid, 128u << 20));
      comms.push_back(std::make_unique<Comm>(*procs.back(), ids, r));
    }
    for (auto& c : comms) {
      sim::spawn([](Comm& comm) -> CoTask<void> {
        EXPECT_EQ(co_await comm.init(), PTL_OK);
      }(*c));
    }
    m.run();
  }
  Comm& comm(int r) { return *comms[static_cast<std::size_t>(r)]; }
  Process& proc(int r) { return *procs[static_cast<std::size_t>(r)]; }
  Machine m;
  std::vector<Process*> procs;
  std::vector<std::unique_ptr<Comm>> comms;
};

class CollSize : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankCounts, CollSize,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12));

TEST_P(CollSize, BcastReachesEveryRank) {
  const int n = GetParam();
  Job job(n);
  constexpr std::uint32_t kLen = 4000;
  constexpr int kRoot = 0;
  std::vector<std::uint64_t> bufs;
  std::vector<std::byte> payload(kLen);
  for (std::size_t i = 0; i < kLen; ++i) {
    payload[i] = static_cast<std::byte>(i * 11);
  }
  int done = 0;
  for (int r = 0; r < n; ++r) {
    bufs.push_back(job.proc(r).alloc(kLen));
    if (r == kRoot) job.proc(r).write_bytes(bufs.back(), payload);
    sim::spawn([](Comm& c, std::uint64_t b, int* d) -> CoTask<void> {
      EXPECT_EQ(co_await c.bcast(b, kLen, kRoot), PTL_OK);
      ++*d;
    }(job.comm(r), bufs.back(), &done));
  }
  job.m.run();
  ASSERT_EQ(done, n);
  for (int r = 0; r < n; ++r) {
    std::vector<std::byte> got(kLen);
    job.proc(r).read_bytes(bufs[static_cast<std::size_t>(r)], got);
    EXPECT_EQ(got, payload) << "rank " << r;
  }
}

TEST_P(CollSize, BcastFromNonzeroRoot) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP();
  Job job(n);
  const int root = n - 1;
  constexpr std::uint32_t kLen = 64;
  std::vector<std::uint64_t> bufs;
  std::vector<std::byte> payload(kLen, std::byte{0x5A});
  int done = 0;
  for (int r = 0; r < n; ++r) {
    bufs.push_back(job.proc(r).alloc(kLen));
    if (r == root) job.proc(r).write_bytes(bufs.back(), payload);
    sim::spawn([](Comm& c, std::uint64_t b, int rt, int* d) -> CoTask<void> {
      EXPECT_EQ(co_await c.bcast(b, kLen, rt), PTL_OK);
      ++*d;
    }(job.comm(r), bufs.back(), root, &done));
  }
  job.m.run();
  ASSERT_EQ(done, n);
  for (int r = 0; r < n; ++r) {
    std::vector<std::byte> got(kLen);
    job.proc(r).read_bytes(bufs[static_cast<std::size_t>(r)], got);
    EXPECT_EQ(got, payload) << "rank " << r;
  }
}

TEST_P(CollSize, ReduceSumsDoubles) {
  const int n = GetParam();
  Job job(n);
  constexpr std::uint32_t kCount = 100;
  std::vector<std::uint64_t> bufs;
  int done = 0;
  for (int r = 0; r < n; ++r) {
    bufs.push_back(job.proc(r).alloc(kCount * 8));
    std::vector<double> v(kCount);
    for (std::uint32_t i = 0; i < kCount; ++i) v[i] = r + i * 0.5;
    job.proc(r).write_bytes(bufs.back(), std::as_bytes(std::span(v)));
    sim::spawn([](Comm& c, std::uint64_t b, int* d) -> CoTask<void> {
      EXPECT_EQ(co_await c.reduce_sum(b, kCount, 0), PTL_OK);
      ++*d;
    }(job.comm(r), bufs.back(), &done));
  }
  job.m.run();
  ASSERT_EQ(done, n);
  std::vector<double> got(kCount);
  job.proc(0).read_bytes(bufs[0], std::as_writable_bytes(std::span(got)));
  for (std::uint32_t i = 0; i < kCount; ++i) {
    double want = 0;
    for (int r = 0; r < n; ++r) want += r + i * 0.5;
    EXPECT_DOUBLE_EQ(got[i], want) << "element " << i;
  }
}

TEST_P(CollSize, AllreduceEveryRankHasSum) {
  const int n = GetParam();
  Job job(n);
  constexpr std::uint32_t kCount = 16;
  std::vector<std::uint64_t> bufs;
  int done = 0;
  for (int r = 0; r < n; ++r) {
    bufs.push_back(job.proc(r).alloc(kCount * 8));
    std::vector<double> v(kCount, static_cast<double>(r + 1));
    job.proc(r).write_bytes(bufs.back(), std::as_bytes(std::span(v)));
    sim::spawn([](Comm& c, std::uint64_t b, int* d) -> CoTask<void> {
      EXPECT_EQ(co_await c.allreduce_sum(b, kCount), PTL_OK);
      ++*d;
    }(job.comm(r), bufs.back(), &done));
  }
  job.m.run();
  ASSERT_EQ(done, n);
  const double want = n * (n + 1) / 2.0;
  for (int r = 0; r < n; ++r) {
    std::vector<double> got(kCount);
    job.proc(r).read_bytes(bufs[static_cast<std::size_t>(r)],
                           std::as_writable_bytes(std::span(got)));
    for (const double g : got) EXPECT_DOUBLE_EQ(g, want) << "rank " << r;
  }
}

TEST_P(CollSize, GatherCollectsBlocks) {
  const int n = GetParam();
  Job job(n);
  constexpr std::uint32_t kLen = 256;
  std::vector<std::uint64_t> sbufs;
  const std::uint64_t rbuf =
      job.proc(0).alloc(static_cast<std::size_t>(n) * kLen);
  int done = 0;
  for (int r = 0; r < n; ++r) {
    sbufs.push_back(job.proc(r).alloc(kLen));
    std::vector<std::byte> v(kLen, static_cast<std::byte>(r * 3 + 1));
    job.proc(r).write_bytes(sbufs.back(), v);
    sim::spawn([](Comm& c, std::uint64_t s, std::uint64_t d,
                  int* dn) -> CoTask<void> {
      EXPECT_EQ(co_await c.gather(s, kLen, d, 0), PTL_OK);
      ++*dn;
    }(job.comm(r), sbufs.back(), rbuf, &done));
  }
  job.m.run();
  ASSERT_EQ(done, n);
  for (int r = 0; r < n; ++r) {
    std::vector<std::byte> got(kLen);
    job.proc(0).read_bytes(rbuf + static_cast<std::uint64_t>(r) * kLen, got);
    for (const auto b : got) {
      ASSERT_EQ(b, static_cast<std::byte>(r * 3 + 1)) << "rank " << r;
    }
  }
}

TEST_P(CollSize, AlltoallExchangesAllBlocks) {
  const int n = GetParam();
  Job job(n);
  constexpr std::uint32_t kLen = 128;
  std::vector<std::uint64_t> sbufs, rbufs;
  int done = 0;
  for (int r = 0; r < n; ++r) {
    sbufs.push_back(job.proc(r).alloc(static_cast<std::size_t>(n) * kLen));
    rbufs.push_back(job.proc(r).alloc(static_cast<std::size_t>(n) * kLen));
    for (int to = 0; to < n; ++to) {
      // Block r->to stamped with (r, to).
      std::vector<std::byte> v(kLen,
                               static_cast<std::byte>(r * 16 + to + 1));
      job.proc(r).write_bytes(
          sbufs.back() + static_cast<std::uint64_t>(to) * kLen, v);
    }
    sim::spawn([](Comm& c, std::uint64_t s, std::uint64_t d,
                  int* dn) -> CoTask<void> {
      EXPECT_EQ(co_await c.alltoall(s, d, kLen), PTL_OK);
      ++*dn;
    }(job.comm(r), sbufs.back(), rbufs.back(), &done));
  }
  job.m.run();
  ASSERT_EQ(done, n);
  for (int r = 0; r < n; ++r) {
    for (int from = 0; from < n; ++from) {
      std::vector<std::byte> got(kLen);
      job.proc(r).read_bytes(
          rbufs[static_cast<std::size_t>(r)] +
              static_cast<std::uint64_t>(from) * kLen,
          got);
      for (const auto b : got) {
        ASSERT_EQ(b, static_cast<std::byte>(from * 16 + r + 1))
            << "rank " << r << " from " << from;
      }
    }
  }
}

TEST_P(CollSize, ReduceSumsDoublesNonzeroRoot) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP();
  Job job(n);
  const int root = n - 1;
  constexpr std::uint32_t kCount = 64;
  std::vector<std::uint64_t> bufs;
  int done = 0;
  for (int r = 0; r < n; ++r) {
    bufs.push_back(job.proc(r).alloc(kCount * 8));
    std::vector<double> v(kCount);
    for (std::uint32_t i = 0; i < kCount; ++i) v[i] = r * 2.0 + i * 0.25;
    job.proc(r).write_bytes(bufs.back(), std::as_bytes(std::span(v)));
    sim::spawn([](Comm& c, std::uint64_t b, int rt, int* d) -> CoTask<void> {
      EXPECT_EQ(co_await c.reduce_sum(b, kCount, rt), PTL_OK);
      ++*d;
    }(job.comm(r), bufs.back(), root, &done));
  }
  job.m.run();
  ASSERT_EQ(done, n);
  std::vector<double> got(kCount);
  job.proc(root).read_bytes(bufs[static_cast<std::size_t>(root)],
                            std::as_writable_bytes(std::span(got)));
  for (std::uint32_t i = 0; i < kCount; ++i) {
    double want = 0;
    for (int r = 0; r < n; ++r) want += r * 2.0 + i * 0.25;
    EXPECT_DOUBLE_EQ(got[i], want) << "element " << i;
  }
}

TEST_P(CollSize, GatherToNonzeroRoot) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP();
  Job job(n);
  const int root = n / 2;
  constexpr std::uint32_t kLen = 96;
  std::vector<std::uint64_t> sbufs;
  const std::uint64_t rbuf =
      job.proc(root).alloc(static_cast<std::size_t>(n) * kLen);
  int done = 0;
  for (int r = 0; r < n; ++r) {
    sbufs.push_back(job.proc(r).alloc(kLen));
    std::vector<std::byte> v(kLen, static_cast<std::byte>(r * 5 + 2));
    job.proc(r).write_bytes(sbufs.back(), v);
    sim::spawn([](Comm& c, std::uint64_t s, std::uint64_t d, int rt,
                  int* dn) -> CoTask<void> {
      EXPECT_EQ(co_await c.gather(s, kLen, d, rt), PTL_OK);
      ++*dn;
    }(job.comm(r), sbufs.back(), rbuf, root, &done));
  }
  job.m.run();
  ASSERT_EQ(done, n);
  for (int r = 0; r < n; ++r) {
    std::vector<std::byte> got(kLen);
    job.proc(root).read_bytes(
        rbuf + static_cast<std::uint64_t>(r) * kLen, got);
    for (const auto b : got) {
      ASSERT_EQ(b, static_cast<std::byte>(r * 5 + 2)) << "rank " << r;
    }
  }
}

// Regression: reduce_sum/allreduce_sum used to bump-allocate a fresh
// scratch buffer per call; the simulated address space never frees, so a
// long-running job exhausted its memory.  With the cached scratch this
// loop stays within a small footprint; before the fix it throws
// std::length_error long before the final iteration.
class CollScratch : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(RankCounts, CollScratch, ::testing::Values(3, 4));

TEST_P(CollScratch, AllreduceScratchIsReusedAcrossIterations) {
  const int n = GetParam();
  constexpr std::uint32_t kCount = 4096;  // 32 KB of doubles per scratch
  constexpr int kIters = 300;             // x300 would need ~9.6 MB leaked
  Machine m(net::Shape::xt3(n, 1, 1));
  std::vector<ptl::ProcessId> ids;
  for (int r = 0; r < n; ++r) {
    ids.push_back(ptl::ProcessId{static_cast<net::NodeId>(r), kPid});
  }
  std::vector<Process*> procs;
  std::vector<std::unique_ptr<Comm>> comms;
  for (int r = 0; r < n; ++r) {
    // Tight budget: unexpected slabs (8 MB) + buffers + little headroom.
    procs.push_back(&m.node(static_cast<net::NodeId>(r))
                         .spawn_process(kPid, 9u << 20));
    comms.push_back(std::make_unique<Comm>(*procs.back(), ids, r));
    sim::spawn([](Comm& comm) -> CoTask<void> {
      EXPECT_EQ(co_await comm.init(), PTL_OK);
    }(*comms.back()));
  }
  m.run();
  std::vector<std::uint64_t> bufs;
  int done = 0;
  for (int r = 0; r < n; ++r) {
    bufs.push_back(procs[static_cast<std::size_t>(r)]->alloc(kCount * 8));
    std::vector<double> v(kCount, 1.0);
    procs[static_cast<std::size_t>(r)]->write_bytes(
        bufs.back(), std::as_bytes(std::span(v)));
    sim::spawn([](Comm& c, std::uint64_t b, int* d) -> CoTask<void> {
      for (int it = 0; it < kIters; ++it) {
        EXPECT_EQ(co_await c.allreduce_sum(b, kCount), PTL_OK);
      }
      ++*d;
    }(*comms[static_cast<std::size_t>(r)], bufs.back(), &done));
  }
  m.run();
  ASSERT_EQ(done, n);
  // After kIters summations of all-ones the value is n^kIters (finite for
  // these parameters); just check every rank agrees.
  std::vector<double> r0(kCount);
  procs[0]->read_bytes(bufs[0], std::as_writable_bytes(std::span(r0)));
  for (int r = 1; r < n; ++r) {
    std::vector<double> got(kCount);
    procs[static_cast<std::size_t>(r)]->read_bytes(
        bufs[static_cast<std::size_t>(r)],
        std::as_writable_bytes(std::span(got)));
    EXPECT_EQ(got, r0) << "rank " << r;
  }
}

TEST(CollLarge, BcastRendezvousSized) {
  Job job(4);
  const std::uint32_t len = 512 * 1024;  // above the eager threshold
  std::vector<std::uint64_t> bufs;
  std::vector<std::byte> payload(len);
  for (std::size_t i = 0; i < len; ++i) {
    payload[i] = static_cast<std::byte>(i * 13 + 5);
  }
  int done = 0;
  for (int r = 0; r < 4; ++r) {
    bufs.push_back(job.proc(r).alloc(len));
    if (r == 0) job.proc(r).write_bytes(bufs.back(), payload);
    sim::spawn([](Comm& c, std::uint64_t b, std::uint32_t l,
                  int* d) -> CoTask<void> {
      EXPECT_EQ(co_await c.bcast(b, l, 0), PTL_OK);
      ++*d;
    }(job.comm(r), bufs.back(), len, &done));
  }
  job.m.run();
  ASSERT_EQ(done, 4);
  for (int r = 0; r < 4; ++r) {
    std::vector<std::byte> got(len);
    job.proc(r).read_bytes(bufs[static_cast<std::size_t>(r)], got);
    EXPECT_EQ(got, payload) << "rank " << r;
  }
}

}  // namespace
}  // namespace xt::mpi
