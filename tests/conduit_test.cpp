// Tests for the one-sided conduit (src/conduit): active messages with
// credit flow control, segment put/get with completion counters, and the
// cross-validation script against its locally computed expectation.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "conduit/conduit.hpp"
#include "conduit/selftest.hpp"
#include "host/node.hpp"

namespace xt::conduit {
namespace {

using host::Machine;
using host::Process;
using ptl::PTL_OK;
using sim::CoTask;

constexpr ptl::Pid kPid = 11;

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 41 + seed) & 0xFF);
  }
  return v;
}

/// One Conduit per rank on consecutive nodes, inited to quiescence.
struct Rig {
  explicit Rig(int nranks, Config cfg = {}, bool accel = false)
      : m(net::Shape::xt3(nranks, 1, 1)) {
    std::vector<ptl::ProcessId> ids;
    for (int r = 0; r < nranks; ++r) {
      auto& node = m.node(static_cast<net::NodeId>(r));
      procs.push_back(accel ? &node.spawn_accel_process(kPid)
                            : &node.spawn_process(kPid));
      ids.push_back(procs.back()->id());
    }
    for (int r = 0; r < nranks; ++r) {
      cs.push_back(std::make_unique<Conduit>(
          *procs[static_cast<std::size_t>(r)], ids, r, cfg));
      sim::spawn([](Conduit& c) -> CoTask<void> {
        EXPECT_EQ(co_await c.init(), PTL_OK);
      }(*cs.back()));
    }
    m.run();
  }
  Conduit& c(int r) { return *cs[static_cast<std::size_t>(r)]; }
  Process& proc(int r) { return *procs[static_cast<std::size_t>(r)]; }
  void run_clean() {
    m.run();
    EXPECT_EQ(m.first_panic(), "");
  }

  Machine m;
  std::vector<Process*> procs;
  std::vector<std::unique_ptr<Conduit>> cs;
};

// ------------------------------------------------------ active messages ----

// Progress is caller-driven (GASNet polling semantics): the target rank
// only dispatches incoming requests while some coroutine of its own is
// progressing the conduit.  Each AM test therefore parks the target in
// wait() on a completion its handler decrements.
CoTask<void> serve(Conduit& c, Completion& comp, bool* done) {
  EXPECT_EQ(co_await c.wait(comp), ptl::PTL_OK);
  *done = true;
}

TEST(ConduitAm, RequestReplyRoundTrip) {
  Rig rig(2);
  int handled = 0;
  Completion served;
  served.pending = 2;
  bool sdone = false;
  rig.c(1).set_handler(2, [&](Conduit& cc, AmArgs& a) -> CoTask<void> {
    EXPECT_EQ(a.src, 0);
    EXPECT_EQ(a.imm, 0x1234u);
    EXPECT_EQ(a.payload, pattern(48, 3));
    ++handled;
    co_await cc.am_reply(a, pattern(32, 9), 0x7777);
    --served.pending;
  });
  sim::spawn(serve(rig.c(1), served, &sdone));
  bool done = false;
  sim::spawn([](Conduit& c, bool* d) -> CoTask<void> {
    const auto req = pattern(48, 3);
    AmReply rep;
    EXPECT_EQ(co_await c.am_request(1, 2, req, 0x1234, &rep), PTL_OK);
    EXPECT_EQ(rep.imm, 0x7777u);
    EXPECT_EQ(rep.payload, pattern(32, 9));
    // A payload above the short cutoff counts as a medium AM.
    AmReply rep2;
    EXPECT_EQ(co_await c.am_request(1, 2, pattern(48, 3), 0x1234, &rep2),
              PTL_OK);
    *d = true;
  }(rig.c(0), &done));
  rig.run_clean();
  ASSERT_TRUE(done);
  ASSERT_TRUE(sdone);
  EXPECT_EQ(handled, 2);
  EXPECT_EQ(rig.c(0).counters().am_short, 2u);  // 48 B <= short cutoff
  EXPECT_EQ(rig.c(1).counters().replies, 2u);
}

TEST(ConduitAm, MediumPayloadCounted) {
  Rig rig(2);
  Completion served;
  served.pending = 1;
  bool sdone = false;
  rig.c(1).set_handler(0, [&](Conduit& cc, AmArgs& a) -> CoTask<void> {
    EXPECT_EQ(a.payload, pattern(1024, 7));
    co_await cc.am_reply(a, a.payload, 1);
    --served.pending;
  });
  sim::spawn(serve(rig.c(1), served, &sdone));
  bool done = false;
  sim::spawn([](Conduit& c, bool* d) -> CoTask<void> {
    AmReply rep;
    EXPECT_EQ(co_await c.am_request(1, 0, pattern(1024, 7), 0, &rep), PTL_OK);
    EXPECT_EQ(rep.payload, pattern(1024, 7));
    *d = true;
  }(rig.c(0), &done));
  rig.run_clean();
  ASSERT_TRUE(done && sdone);
  EXPECT_EQ(rig.c(0).counters().am_short, 0u);
  EXPECT_EQ(rig.c(0).counters().am_medium, 1u);
}

TEST(ConduitAm, ImplicitReplyWhenHandlerDoesNotReply) {
  Rig rig(2);
  Completion served;
  served.pending = 1;
  bool sdone = false;
  rig.c(1).set_handler(5, [&](Conduit&, AmArgs&) -> CoTask<void> {
    // No am_reply: the conduit must resolve the token anyway.
    --served.pending;
    co_return;
  });
  sim::spawn(serve(rig.c(1), served, &sdone));
  bool done = false;
  sim::spawn([](Conduit& c, bool* d) -> CoTask<void> {
    AmReply rep;
    rep.imm = 0xBEEF;  // must be overwritten by the implicit zero reply
    EXPECT_EQ(co_await c.am_request(1, 5, pattern(16), 42, &rep), PTL_OK);
    EXPECT_EQ(rep.imm, 0u);
    EXPECT_TRUE(rep.payload.empty());
    *d = true;
  }(rig.c(0), &done));
  rig.run_clean();
  ASSERT_TRUE(done && sdone);
  EXPECT_EQ(rig.c(1).counters().replies, 1u);
}

TEST(ConduitAm, UnsetHandlerGetsErrorReply) {
  Rig rig(2);
  // Slot 1 is set and ends the target's serve loop; slot 9 stays empty.
  Completion served;
  served.pending = 1;
  bool sdone = false;
  rig.c(1).set_handler(1, [&](Conduit& cc, AmArgs& a) -> CoTask<void> {
    co_await cc.am_reply(a, {}, 5);
    --served.pending;
  });
  sim::spawn(serve(rig.c(1), served, &sdone));
  bool done = false;
  sim::spawn([](Conduit& c, bool* d) -> CoTask<void> {
    AmReply rep;
    EXPECT_EQ(co_await c.am_request(1, 9, pattern(8), 0, &rep), PTL_OK);
    EXPECT_EQ(rep.imm, 0xFFFFFFu);  // error immediate, token still resolves
    AmReply rep2;
    EXPECT_EQ(co_await c.am_request(1, 1, pattern(8), 0, &rep2), PTL_OK);
    EXPECT_EQ(rep2.imm, 5u);
    *d = true;
  }(rig.c(0), &done));
  rig.run_clean();
  ASSERT_TRUE(done && sdone);
}

TEST(ConduitAm, HandlerSlotRangeChecked) {
  Rig rig(2);
  Config cfg;
  EXPECT_EQ(rig.c(0).set_handler(cfg.handler_slots,
                                 [](Conduit&, AmArgs&) -> CoTask<void> {
                                   co_return;
                                 }),
            ptl::PTL_FAIL);
}

TEST(ConduitAm, OversizePayloadRejected) {
  Config cfg;
  cfg.am_medium_max = 256;
  Rig rig(2, cfg);
  bool done = false;
  sim::spawn([](Conduit& c, bool* d) -> CoTask<void> {
    EXPECT_EQ(co_await c.am_request(1, 0, pattern(257)), ptl::PTL_SEGV);
    *d = true;
  }(rig.c(0), &done));
  rig.run_clean();
  ASSERT_TRUE(done);
}

TEST(ConduitAm, CreditWindowStallsAndRecovers) {
  Config cfg;
  cfg.credits = 1;
  Rig rig(2, cfg);
  int handled = 0;
  Completion served;
  served.pending = 3;
  bool sdone = false;
  rig.c(1).set_handler(1, [&](Conduit& cc, AmArgs& a) -> CoTask<void> {
    ++handled;
    co_await cc.am_reply(a, a.payload, a.imm);
    --served.pending;
  });
  sim::spawn(serve(rig.c(1), served, &sdone));
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    sim::spawn([](Conduit& c, unsigned k, int* d) -> CoTask<void> {
      AmReply rep;
      EXPECT_EQ(co_await c.am_request(1, 1, pattern(16, 1 + k), k, &rep),
                PTL_OK);
      EXPECT_EQ(rep.imm, k);
      EXPECT_EQ(rep.payload, pattern(16, 1 + k));
      ++*d;
    }(rig.c(0), static_cast<unsigned>(i), &done));
  }
  rig.run_clean();
  ASSERT_EQ(done, 3);
  ASSERT_TRUE(sdone);
  EXPECT_EQ(handled, 3);
  // Three concurrent requests through a one-credit window: at least one
  // sender must have blocked on the credit and later recovered.
  EXPECT_GE(rig.c(0).counters().credits_stalled, 1u);
}

// ---------------------------------------------------------- put and get ----

TEST(ConduitPutGet, RoundTripWithCompletions) {
  Config cfg;
  cfg.segment_bytes = 4096;
  Rig rig(2, cfg);
  const auto data = pattern(512, 13);
  const std::uint64_t sbuf = rig.proc(0).alloc(512);
  const std::uint64_t gbuf = rig.proc(0).alloc(512);
  rig.proc(0).write_bytes(sbuf, data);
  bool done = false;
  sim::spawn([](Conduit& c, std::uint64_t sb, std::uint64_t gb,
                bool* d) -> CoTask<void> {
    Completion local, remote, got;
    EXPECT_EQ(co_await c.put(1, sb, 512, 1024, &local, &remote), PTL_OK);
    EXPECT_EQ(co_await c.wait(local), PTL_OK);
    EXPECT_EQ(co_await c.wait(remote), PTL_OK);
    EXPECT_EQ(co_await c.get(1, gb, 512, 1024, &got), PTL_OK);
    EXPECT_EQ(co_await c.wait(got), PTL_OK);
    *d = true;
  }(rig.c(0), sbuf, gbuf, &done));
  rig.run_clean();
  ASSERT_TRUE(done);

  // The bytes are visible in the target's segment and round-trip intact.
  std::vector<std::byte> at_target(512);
  rig.proc(1).read_bytes(rig.c(1).segment_base() + 1024, at_target);
  EXPECT_EQ(at_target, data);
  std::vector<std::byte> got(512);
  rig.proc(0).read_bytes(gbuf, got);
  EXPECT_EQ(got, data);
  EXPECT_EQ(rig.c(0).counters().puts, 1u);
  EXPECT_EQ(rig.c(0).counters().gets, 1u);
}

TEST(ConduitPutGet, RangeViolationsRejectedBeforeIssue) {
  Config cfg;
  cfg.segment_bytes = 4096;
  Rig rig(2, cfg);
  const std::uint64_t buf = rig.proc(0).alloc(8192);
  bool done = false;
  sim::spawn([](Conduit& c, std::uint64_t b, bool* d) -> CoTask<void> {
    // Length beyond the segment.
    EXPECT_EQ(co_await c.put(1, b, 4097, 0), ptl::PTL_SEGV);
    // Tail runs past the segment end.
    EXPECT_EQ(co_await c.put(1, b, 4096, 1), ptl::PTL_SEGV);
    EXPECT_EQ(co_await c.get(1, b, 256, 4096 - 255), ptl::PTL_SEGV);
    // roff + len wraps 64 bits; the overflow-safe check must still reject.
    EXPECT_EQ(co_await c.put(1, b, 256, ~std::uint64_t{0} - 17),
              ptl::PTL_SEGV);
    // The full segment exactly is fine.
    Completion remote;
    EXPECT_EQ(co_await c.put(1, b, 4096, 0, nullptr, &remote), PTL_OK);
    EXPECT_EQ(co_await c.wait(remote), PTL_OK);
    *d = true;
  }(rig.c(0), buf, &done));
  rig.run_clean();
  ASSERT_TRUE(done);
  EXPECT_EQ(rig.c(0).counters().puts, 1u);  // only the valid one issued
}

TEST(ConduitPutGet, DepositCountingHostPath) {
  Config cfg;
  cfg.segment_bytes = 1024;
  Rig rig(2, cfg);
  EXPECT_FALSE(rig.c(1).accel_deposits());
  const std::uint64_t buf = rig.proc(0).alloc(64);
  bool sdone = false, rdone = false;
  sim::spawn([](Conduit& c, std::uint64_t b, bool* d) -> CoTask<void> {
    for (int i = 0; i < 3; ++i) {
      Completion remote;
      EXPECT_EQ(co_await c.put(1, b, 64, static_cast<std::uint64_t>(i) * 64,
                               nullptr, &remote),
                PTL_OK);
      EXPECT_EQ(co_await c.wait(remote), PTL_OK);
    }
    *d = true;
  }(rig.c(0), buf, &sdone));
  sim::spawn([](Conduit& c, bool* d) -> CoTask<void> {
    EXPECT_EQ(co_await c.wait_deposits(3), PTL_OK);
    *d = true;
  }(rig.c(1), &rdone));
  rig.run_clean();
  EXPECT_TRUE(sdone);
  EXPECT_TRUE(rdone);
}

TEST(ConduitPutGet, DepositCountingAccelPath) {
  Config cfg;
  cfg.segment_bytes = 1024;
  Rig rig(2, cfg, /*accel=*/true);
  // On an accelerated bridge the deposit count lives in a firmware
  // counting event, not host kPutEnd events.
  EXPECT_TRUE(rig.c(1).accel_deposits());
  const std::uint64_t buf = rig.proc(0).alloc(64);
  bool sdone = false, rdone = false;
  sim::spawn([](Conduit& c, std::uint64_t b, bool* d) -> CoTask<void> {
    for (int i = 0; i < 3; ++i) {
      Completion remote;
      EXPECT_EQ(co_await c.put(1, b, 64, static_cast<std::uint64_t>(i) * 64,
                               nullptr, &remote),
                PTL_OK);
      EXPECT_EQ(co_await c.wait(remote), PTL_OK);
    }
    *d = true;
  }(rig.c(0), buf, &sdone));
  sim::spawn([](Conduit& c, bool* d) -> CoTask<void> {
    EXPECT_EQ(co_await c.wait_deposits(3), PTL_OK);
    *d = true;
  }(rig.c(1), &rdone));
  rig.run_clean();
  EXPECT_TRUE(sdone);
  EXPECT_TRUE(rdone);
}

TEST(ConduitPutGet, DepositCountingOffFails) {
  Config cfg;
  cfg.count_deposits = false;
  Rig rig(2, cfg);
  bool done = false;
  sim::spawn([](Conduit& c, bool* d) -> CoTask<void> {
    EXPECT_EQ(co_await c.wait_deposits(1), ptl::PTL_FAIL);
    *d = true;
  }(rig.c(0), &done));
  rig.run_clean();
  ASSERT_TRUE(done);
}

// ------------------------------------------------------ cross-validation ----

TEST(ConduitXval, SimMatchesLocalExpectation) {
  const XvalResult r = xval_sim(4, 7);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.sum, xval_expect(4, 7));
}

}  // namespace
}  // namespace xt::conduit
