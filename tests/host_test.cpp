// Unit tests for the host substrate: address spaces (Catamount vs Linux),
// CPU priorities, bridges, and node composition.

#include <gtest/gtest.h>

#include "host/cpu.hpp"
#include "host/memory.hpp"
#include "host/node.hpp"

namespace xt::host {
namespace {

using sim::CoTask;
using sim::Time;

// -------------------------------------------------------- AddressSpace ----

TEST(AddressSpace, AllocAdvancesAndAligns) {
  AddressSpace as(OsType::kCatamount, 1 << 20, 4096);
  const auto a = as.alloc(100, 64);
  const auto b = as.alloc(100, 64);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100);
}

TEST(AddressSpace, ReadWriteRoundTrip) {
  AddressSpace as(OsType::kLinux, 1 << 16, 4096);
  const auto addr = as.alloc(256);
  std::vector<std::byte> data(256);
  for (std::size_t i = 0; i < 256; ++i) data[i] = static_cast<std::byte>(i);
  as.write(addr, data);
  std::vector<std::byte> got(256);
  as.read(addr, got);
  EXPECT_EQ(got, data);
}

TEST(AddressSpace, ValidBounds) {
  AddressSpace as(OsType::kCatamount, 1000, 4096);
  EXPECT_TRUE(as.valid(0, 1000));
  EXPECT_FALSE(as.valid(0, 1001));
  EXPECT_FALSE(as.valid(999, 2));
  EXPECT_TRUE(as.valid(1000, 0));
}

TEST(AddressSpace, ExhaustionThrows) {
  AddressSpace as(OsType::kCatamount, 1024, 4096);
  (void)as.alloc(900);
  EXPECT_THROW((void)as.alloc(900), std::length_error);
}

TEST(AddressSpace, CatamountIsAlwaysOneSegment) {
  // "Catamount maps virtually contiguous pages to physically contiguous
  // pages" — one DMA command regardless of size (§3.3).
  AddressSpace as(OsType::kCatamount, 32 << 20, 4096);
  const auto addr = as.alloc(16 << 20);
  EXPECT_EQ(as.dma_segments(addr, 16 << 20), 1u);
  EXPECT_EQ(as.dma_segments(addr, 1), 1u);
}

TEST(AddressSpace, LinuxSegmentsPerPage) {
  AddressSpace as(OsType::kLinux, 1 << 20, 4096);
  EXPECT_EQ(as.dma_segments(0, 1), 1u);
  EXPECT_EQ(as.dma_segments(0, 4096), 1u);
  EXPECT_EQ(as.dma_segments(0, 4097), 2u);
  EXPECT_EQ(as.dma_segments(4095, 2), 2u);  // straddles a boundary
  EXPECT_EQ(as.dma_segments(0, 65536), 16u);
  EXPECT_EQ(as.dma_segments(0, 0), 1u);
}

// ------------------------------------------------------------------ Cpu ----

TEST(Cpu, InterruptPreemptsQueuedAppWork) {
  sim::Engine eng;
  Cpu cpu(eng, "cpu");
  std::vector<int> order;
  // Occupy the CPU, then queue app work and an interrupt.
  sim::spawn([](Cpu& c, std::vector<int>& out) -> CoTask<void> {
    co_await c.run(Time::us(1));
    out.push_back(0);
  }(cpu, order));
  sim::spawn([](Cpu& c, std::vector<int>& out) -> CoTask<void> {
    co_await c.run(Time::us(1));
    out.push_back(1);  // app work queued second
  }(cpu, order));
  sim::spawn([](Cpu& c, std::vector<int>& out) -> CoTask<void> {
    co_await c.run_interrupt(Time::us(1));
    out.push_back(2);  // interrupt queued last but runs first
  }(cpu, order));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

// ------------------------------------------------------------- Machine ----

TEST(Machine, BuildsNodesWithPerNodeOs) {
  Machine m(net::Shape::red_storm(2, 1, 2), ss::Config{},
            [](net::NodeId id) {
              return id == 0 ? OsType::kLinux : OsType::kCatamount;
            });
  EXPECT_EQ(m.node_count(), 4u);
  EXPECT_EQ(m.node(0).os(), OsType::kLinux);
  EXPECT_EQ(m.node(1).os(), OsType::kCatamount);
}

TEST(Machine, ProcessModesSelectBridges) {
  Machine m(net::Shape::xt3(1, 1, 1), ss::Config{},
            [](net::NodeId) { return OsType::kLinux; });
  Process& user = m.node(0).spawn_process(3);
  Process& kern = m.node(0).spawn_kernel_process(4);
  EXPECT_EQ(user.mode(), ProcMode::kUser);
  EXPECT_EQ(kern.mode(), ProcMode::kKernel);
  EXPECT_EQ(user.id(), (ptl::ProcessId{0, 3}));
}

TEST(Machine, UkbridgeAndKbridgeShareOneNode) {
  // §3.2: "both kernel-level applications and user-level applications are
  // able to cleanly share the network interface" — a Linux node with both
  // a user-level and a kernel-level Portals client.
  Machine m(net::Shape::xt3(2, 1, 1), ss::Config{},
            [](net::NodeId) { return OsType::kLinux; });
  Process& user = m.node(0).spawn_process(3);
  Process& kern = m.node(0).spawn_kernel_process(4);
  Process& peer = m.node(1).spawn_process(5);
  const std::uint64_t ub = user.alloc(64), kb = kern.alloc(64),
                      pb = peer.alloc(256);
  int got = 0;
  for (Process* rx : {&user, &kern}) {
    sim::spawn([](Process& p, std::uint64_t buf, int* count) -> CoTask<void> {
      auto& api = p.api();
      auto eq = co_await api.PtlEQAlloc(16);
      auto me = co_await api.PtlMEAttach(
          0, ptl::ProcessId{ptl::kNidAny, ptl::kPidAny}, 9, 0,
          ptl::Unlink::kRetain, ptl::InsPos::kAfter);
      ptl::MdDesc d;
      d.start = buf;
      d.length = 64;
      d.options = ptl::PTL_MD_OP_PUT;
      d.eq = eq.value;
      (void)co_await api.PtlMDAttach(me.value, d, ptl::Unlink::kRetain);
      for (;;) {
        auto ev = co_await api.PtlEQWait(eq.value);
        if (ev.value.type == ptl::EventType::kPutEnd) break;
      }
      ++*count;
    }(*rx, rx == &user ? ub : kb, &got));
  }
  sim::spawn([](Process& p, std::uint64_t buf) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(16);
    ptl::MdDesc d;
    d.start = buf;
    d.length = 64;
    d.eq = eq.value;
    auto md = co_await api.PtlMDBind(d, ptl::Unlink::kRetain);
    (void)co_await api.PtlPut(md.value, ptl::AckReq::kNone,
                              ptl::ProcessId{0, 3}, 0, 0, 9, 0, 0);
    (void)co_await api.PtlPut(md.value, ptl::AckReq::kNone,
                              ptl::ProcessId{0, 4}, 0, 0, 9, 0, 0);
  }(peer, pb));
  m.run();
  EXPECT_EQ(got, 2);
}

TEST(Machine, LinuxTrapCostsExceedCatamount) {
  // Same workload, Linux vs Catamount: the ukbridge syscall cost makes the
  // Linux round trip strictly slower.
  auto elapsed = [](OsType os) {
    Machine m(net::Shape::xt3(2, 1, 1), ss::Config{},
              [os](net::NodeId) { return os; });
    Process& a = m.node(0).spawn_process(3);
    Process& b = m.node(1).spawn_process(3);
    const std::uint64_t ab = a.alloc(64), bb = b.alloc(64);
    (void)ab;
    sim::spawn([](Process& p, std::uint64_t buf) -> CoTask<void> {
      auto& api = p.api();
      auto eq = co_await api.PtlEQAlloc(16);
      auto me = co_await api.PtlMEAttach(
          0, ptl::ProcessId{ptl::kNidAny, ptl::kPidAny}, 9, 0,
          ptl::Unlink::kRetain, ptl::InsPos::kAfter);
      ptl::MdDesc d;
      d.start = buf;
      d.length = 64;
      d.options = ptl::PTL_MD_OP_PUT;
      d.eq = eq.value;
      (void)co_await api.PtlMDAttach(me.value, d, ptl::Unlink::kRetain);
      for (;;) {
        auto ev = co_await api.PtlEQWait(eq.value);
        if (ev.value.type == ptl::EventType::kPutEnd) break;
      }
    }(b, bb));
    sim::spawn([](Process& p, std::uint64_t buf) -> CoTask<void> {
      auto& api = p.api();
      auto eq = co_await api.PtlEQAlloc(16);
      ptl::MdDesc d;
      d.start = buf;
      d.length = 64;
      d.eq = eq.value;
      auto md = co_await api.PtlMDBind(d, ptl::Unlink::kRetain);
      (void)co_await api.PtlPut(md.value, ptl::AckReq::kNone,
                                ptl::ProcessId{1, 3}, 0, 0, 9, 0, 0);
      for (;;) {
        auto ev = co_await api.PtlEQWait(eq.value);
        if (ev.value.type == ptl::EventType::kSendEnd) break;
      }
    }(a, a.alloc(64)));
    m.run();
    return m.engine().now();
  };
  EXPECT_GT(elapsed(OsType::kLinux), elapsed(OsType::kCatamount));
}

}  // namespace
}  // namespace xt::host
