# Byte-for-byte golden-output check: runs ${BIN} ${ARGS} and fails unless
# its stdout is identical to ${GOLDEN}.  The benches promise deterministic
# stdout for a fixed seed at any --jobs, so any diff is a behavior change —
# regenerate the golden (see tests/golden/README.md) only when the change
# is intentional.
foreach(var BIN GOLDEN)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()
separate_arguments(arglist UNIX_COMMAND "${ARGS}")

execute_process(COMMAND ${BIN} ${arglist}
  OUTPUT_VARIABLE got RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BIN} ${ARGS} exited ${rc}:\n${got}")
endif()

file(READ ${GOLDEN} want)
if(NOT got STREQUAL want)
  string(LENGTH "${got}" got_len)
  string(LENGTH "${want}" want_len)
  message(FATAL_ERROR
    "output of ${BIN} ${ARGS} differs from ${GOLDEN} "
    "(${got_len} vs ${want_len} bytes).\n"
    "--- got ---\n${got}\n--- want ---\n${want}")
endif()
