// Tests for the NI lifecycle calls, the firmware result-FIFO query path
// (including the RAS heartbeat), and MPI probe.

#include <gtest/gtest.h>

#include "host/node.hpp"
#include "mpi/mpi.hpp"
#include "portals/api.hpp"

namespace xt {
namespace {

using host::Machine;
using host::Process;
using ptl::AckReq;
using ptl::EventType;
using ptl::InsPos;
using ptl::Limits;
using ptl::MdDesc;
using ptl::ProcessId;
using ptl::PTL_OK;
using ptl::Unlink;
using sim::CoTask;
using sim::Time;

// ------------------------------------------------------- NI lifecycle ----

TEST(NiLifecycle, InitNegotiatesLimits) {
  Machine m(net::Shape::xt3(1, 1, 1));
  Process& p = m.node(0).spawn_process(7);
  bool done = false;
  sim::spawn([](Process& pr, bool* d) -> CoTask<void> {
    auto& api = pr.api();
    auto init = co_await api.PtlInit();
    EXPECT_EQ(init.rc, PTL_OK);
    EXPECT_EQ(init.value, 1);  // one interface per process

    Limits want;
    want.max_mes = 1u << 30;  // absurd: must be clamped
    want.max_pt_index = 8;
    auto ni = co_await api.PtlNIInit(want);
    EXPECT_EQ(ni.rc, PTL_OK);
    EXPECT_LE(ni.value.max_mes, 65536u);
    EXPECT_EQ(ni.value.max_pt_index, 8u);

    // pt indices beyond the negotiated bound must now be rejected.
    auto me = co_await api.PtlMEAttach(9, ProcessId{ptl::kNidAny,
                                                    ptl::kPidAny},
                                       1, 0, Unlink::kRetain, InsPos::kAfter);
    EXPECT_EQ(me.rc, ptl::PTL_PT_INDEX_INVALID);
    auto ok = co_await api.PtlMEAttach(7, ProcessId{ptl::kNidAny,
                                                    ptl::kPidAny},
                                       1, 0, Unlink::kRetain, InsPos::kAfter);
    EXPECT_EQ(ok.rc, PTL_OK);

    // Re-init with live objects is refused.
    auto again = co_await api.PtlNIInit(want);
    EXPECT_EQ(again.rc, ptl::PTL_NI_INVALID);
    *d = true;
  }(p, &done));
  m.run();
  EXPECT_TRUE(done);
}

TEST(NiLifecycle, FiniInvalidatesEverything) {
  Machine m(net::Shape::xt3(1, 1, 1));
  Process& p = m.node(0).spawn_process(7);
  bool done = false;
  sim::spawn([](Process& pr, bool* d) -> CoTask<void> {
    auto& api = pr.api();
    auto eq = co_await api.PtlEQAlloc(8);
    auto me = co_await api.PtlMEAttach(0, ProcessId{ptl::kNidAny,
                                                    ptl::kPidAny},
                                       1, 0, Unlink::kRetain, InsPos::kAfter);
    MdDesc d2;
    d2.start = pr.alloc(64);
    d2.length = 64;
    auto md = co_await api.PtlMDAttach(me.value, d2, Unlink::kRetain);
    EXPECT_EQ(co_await api.PtlNIFini(), PTL_OK);
    // Every handle is now stale.
    ptl::Event ev;
    (void)ev;
    auto g = co_await api.PtlEQGet(eq.value);
    EXPECT_EQ(g.rc, ptl::PTL_EQ_INVALID);
    EXPECT_EQ(co_await api.PtlMEUnlink(me.value), ptl::PTL_ME_INVALID);
    EXPECT_EQ(co_await api.PtlMDUnlink(md.value), ptl::PTL_MD_INVALID);
    // And the NI can be brought back up.
    auto ni = co_await api.PtlNIInit(Limits{});
    EXPECT_EQ(ni.rc, PTL_OK);
    auto me2 = co_await api.PtlMEAttach(0, ProcessId{ptl::kNidAny,
                                                     ptl::kPidAny},
                                        1, 0, Unlink::kRetain,
                                        InsPos::kAfter);
    EXPECT_EQ(me2.rc, PTL_OK);
    *d = true;
  }(p, &done));
  m.run();
  EXPECT_TRUE(done);
}

// ----------------------------------------------------- result FIFO ----

TEST(FwQuery, ResultFifoReturnsValues) {
  Machine m(net::Shape::xt3(2, 1, 1));
  host::Node& n = m.node(0);
  (void)n.agent();
  bool done = false;
  sim::spawn([](host::Node& node, bool* d) -> CoTask<void> {
    const auto free0 = co_await node.firmware().host_query(
        fw::kGenericProc, fw::QueryCommand::What::kRxFreePendings);
    EXPECT_EQ(free0, node.config().n_generic_rx_pendings);
    const auto src0 = co_await node.firmware().host_query(
        fw::kGenericProc, fw::QueryCommand::What::kSourcesInUse);
    EXPECT_EQ(src0, 0u);
    *d = true;
  }(n, &done));
  m.run();
  EXPECT_TRUE(done);
}

TEST(FwQuery, QueriesInterleaveWithTraffic) {
  Machine m(net::Shape::xt3(2, 1, 1));
  Process& src = m.node(0).spawn_process(7);
  Process& dst = m.node(1).spawn_process(7);
  const std::uint64_t rbuf = dst.alloc(4096);
  const std::uint64_t sbuf = src.alloc(4096);
  bool traffic_done = false, query_done = false;
  sim::spawn([](Process& p, std::uint64_t buf, bool* d) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(64);
    auto me = co_await api.PtlMEAttach(0, ProcessId{ptl::kNidAny,
                                                    ptl::kPidAny},
                                       1, 0, Unlink::kRetain, InsPos::kAfter);
    MdDesc d2;
    d2.start = buf;
    d2.length = 4096;
    d2.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE;
    d2.eq = eq.value;
    (void)co_await api.PtlMDAttach(me.value, d2, Unlink::kRetain);
    int got = 0;
    while (got < 10) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kPutEnd) ++got;
    }
    *d = true;
  }(dst, rbuf, &traffic_done));
  sim::spawn([](Process& p, std::uint64_t buf) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(64);
    MdDesc d2;
    d2.start = buf;
    d2.length = 4096;
    d2.eq = eq.value;
    auto md = co_await api.PtlMDBind(d2, Unlink::kRetain);
    for (int i = 0; i < 10; ++i) {
      (void)co_await api.PtlPut(md.value, AckReq::kNone, ProcessId{1, 7}, 0,
                                0, 1, 0, 0);
    }
    int sends = 0;
    while (sends < 10) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kSendEnd) ++sends;
    }
  }(src, sbuf));
  sim::spawn([](Machine& mm, bool* d) -> CoTask<void> {
    // Poll the receiver's firmware while the flood is in progress.
    co_await sim::delay(mm.engine(), Time::us(20));
    const auto msgs = co_await mm.node(1).firmware().host_query(
        fw::kGenericProc, fw::QueryCommand::What::kRxMessages);
    EXPECT_GT(msgs, 0u);
    const auto srcs = co_await mm.node(1).firmware().host_query(
        fw::kGenericProc, fw::QueryCommand::What::kSourcesInUse);
    EXPECT_EQ(srcs, 1u);
    *d = true;
  }(m, &query_done));
  m.run();
  EXPECT_TRUE(traffic_done);
  EXPECT_TRUE(query_done);
}

TEST(FwQuery, HeartbeatAdvancesAndFreezesOnPanic) {
  ss::Config cfg;
  cfg.n_generic_rx_pendings = 1;  // panics under a tiny flood
  Machine m(net::Shape::xt3(2, 1, 1), cfg);
  Process& src = m.node(0).spawn_process(7);
  m.node(1).spawn_process(7);  // no posted buffers: arrivals exhaust fast
  const std::uint64_t sbuf = src.alloc(64);
  sim::spawn([](Process& p, std::uint64_t buf) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(64);
    MdDesc d2;
    d2.start = buf;
    d2.length = 64;
    d2.eq = eq.value;
    auto md = co_await api.PtlMDBind(d2, Unlink::kRetain);
    for (int i = 0; i < 8; ++i) {
      (void)co_await api.PtlPut(md.value, AckReq::kNone, ProcessId{1, 7}, 0,
                                0, 1, 0, 0);
    }
  }(src, sbuf));
  m.run();
  ASSERT_TRUE(m.node(1).firmware().panicked());
  const auto frozen = m.node(1).firmware().heartbeat();
  m.engine().run_until(m.engine().now() + Time::ms(5));
  EXPECT_EQ(m.node(1).firmware().heartbeat(), frozen);
  // The healthy node's heartbeat keeps advancing.
  EXPECT_GT(m.node(0).firmware().heartbeat(), frozen);
}

// ------------------------------------------------------------- probe ----

TEST(MpiProbe, SeesUnexpectedWithoutConsuming) {
  Machine m(net::Shape::xt3(2, 1, 1));
  std::vector<ProcessId> ids{{0, 9}, {1, 9}};
  Process& p0 = m.node(0).spawn_process(9, 64u << 20);
  Process& p1 = m.node(1).spawn_process(9, 64u << 20);
  mpi::Comm c0(p0, ids, 0), c1(p1, ids, 1);
  const std::uint64_t sbuf = p0.alloc(512);
  const std::uint64_t rbuf = p1.alloc(512);
  bool done = false;
  sim::spawn([](mpi::Comm& c, std::uint64_t b) -> CoTask<void> {
    (void)co_await c.init();
    (void)co_await c.send(b, 512, 1, 33);
  }(c0, sbuf));
  sim::spawn([](mpi::Comm& c, std::uint64_t b, bool* d) -> CoTask<void> {
    (void)co_await c.init();
    mpi::Status st;
    // Blocking probe reports the message's envelope...
    EXPECT_EQ(co_await c.probe(0, 33, &st), PTL_OK);
    EXPECT_EQ(st.source, 0);
    EXPECT_EQ(st.tag, 33);
    EXPECT_EQ(st.len, 512u);
    // ...a second probe still sees it (nothing was consumed)...
    bool flag = false;
    EXPECT_EQ(co_await c.iprobe(0, 33, &flag, &st), PTL_OK);
    EXPECT_TRUE(flag);
    // ...and the recv then picks it up.
    EXPECT_EQ(co_await c.recv(b, 512, 0, 33, &st), PTL_OK);
    EXPECT_EQ(st.len, 512u);
    // Now nothing is left to probe.
    EXPECT_EQ(co_await c.iprobe(0, 33, &flag, &st), PTL_OK);
    EXPECT_FALSE(flag);
    *d = true;
  }(c1, rbuf, &done));
  m.run();
  EXPECT_TRUE(done);
}

TEST(MpiProbe, WildcardsMatchAnything) {
  Machine m(net::Shape::xt3(2, 1, 1));
  std::vector<ProcessId> ids{{0, 9}, {1, 9}};
  Process& p0 = m.node(0).spawn_process(9, 64u << 20);
  Process& p1 = m.node(1).spawn_process(9, 64u << 20);
  mpi::Comm c0(p0, ids, 0), c1(p1, ids, 1);
  const std::uint64_t sbuf = p0.alloc(64);
  bool done = false;
  sim::spawn([](mpi::Comm& c, std::uint64_t b) -> CoTask<void> {
    (void)co_await c.init();
    (void)co_await c.send(b, 64, 1, 5);
  }(c0, sbuf));
  sim::spawn([](mpi::Comm& c, bool* d) -> CoTask<void> {
    (void)co_await c.init();
    mpi::Status st;
    EXPECT_EQ(co_await c.probe(mpi::kAnySource, mpi::kAnyTag, &st), PTL_OK);
    EXPECT_EQ(st.source, 0);
    EXPECT_EQ(st.tag, 5);
    *d = true;
  }(c1, &done));
  m.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace xt
