// Observability instruments: self-profiler, flight recorder, Chrome-trace
// export, and the BenchOptions flags that expose them.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "harness/netpipe_bench.hpp"
#include "harness/options.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/provenance.hpp"
#include "telemetry/trace_export.hpp"

namespace {

using namespace xt;

// ---------------------------------------------------------- profiler ----

TEST(Profiler, CategoryCountsSumToExecuted) {
  sim::Engine eng;
  telemetry::Profiler prof;
  eng.set_profiler(&prof);
  eng.tag_category(telemetry::Cat::kNic, 2);
  for (int i = 0; i < 8; ++i) {
    eng.schedule_at(sim::Time::ns(i), [] {});
  }
  eng.tag_category(telemetry::Cat::kNet);
  eng.schedule_at(sim::Time::ns(100), [] {});
  const std::uint64_t ran = eng.run();
  EXPECT_EQ(ran, eng.executed());
  EXPECT_EQ(prof.total_events(), eng.executed());
  EXPECT_EQ(prof.slot(telemetry::Cat::kNic).events, 8u);
  EXPECT_EQ(prof.slot(telemetry::Cat::kNet).events, 1u);
}

TEST(Profiler, NestedSchedulesInheritTheParentCategory) {
  sim::Engine eng;
  telemetry::Profiler prof;
  eng.set_profiler(&prof);
  eng.tag_category(telemetry::Cat::kFirmware, 1);
  eng.schedule_at(sim::Time::ns(1), [&eng] {
    // Scheduled while a kFirmware-tagged event runs: inherits the tag.
    eng.schedule_after(sim::Time::ns(1), [] {});
  });
  // Retagging after scheduling must not affect already-stamped events.
  eng.tag_category(telemetry::Cat::kOther);
  eng.run();
  EXPECT_EQ(prof.slot(telemetry::Cat::kFirmware).events, 2u);
  EXPECT_EQ(prof.slot(telemetry::Cat::kOther).events, 0u);
}

TEST(Profiler, MergeAddsCounts) {
  telemetry::Profiler a, b;
  a.account(telemetry::Cat::kNic, 10);
  b.account(telemetry::Cat::kNic, 5);
  b.account(telemetry::Cat::kCluster, 7);
  a.merge(b);
  EXPECT_EQ(a.slot(telemetry::Cat::kNic).events, 2u);
  EXPECT_EQ(a.slot(telemetry::Cat::kNic).wall_ns, 15u);
  EXPECT_EQ(a.slot(telemetry::Cat::kCluster).events, 1u);
  EXPECT_EQ(a.total_events(), 3u);
  EXPECT_EQ(a.total_wall_ns(), 22u);
}

TEST(Profiler, ReportAndJsonIncludeEveryCategory) {
  telemetry::Profiler p;
  p.account(telemetry::Cat::kPortals, 1000);
  const std::string rep = p.report();
  const std::string json = p.to_json();
  for (int i = 0; i < telemetry::kCatCount; ++i) {
    const char* name = telemetry::cat_name(static_cast<telemetry::Cat>(i));
    EXPECT_NE(rep.find(name), std::string::npos) << name;
    EXPECT_NE(json.find(std::string("\"") + name + "\""), std::string::npos)
        << name;
  }
  EXPECT_NE(json.find("\"total_events\": 1"), std::string::npos);
}

// ---------------------------------------------------- flight recorder ----

TEST(FlightRecorder, RingKeepsTheLastCapacityEntries) {
  telemetry::FlightRecorder fr(4);
  for (int i = 0; i < 10; ++i) {
    fr.record(i * 100, static_cast<std::uint64_t>(i), telemetry::Cat::kNet,
              1);
  }
  EXPECT_EQ(fr.capacity(), 4u);
  EXPECT_EQ(fr.size(), 4u);
  EXPECT_EQ(fr.recorded(), 10u);
  const std::vector<telemetry::FlightEntry> snap = fr.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().seq, 6u);  // oldest survivor
  EXPECT_EQ(snap.back().seq, 9u);
  EXPECT_EQ(snap.back().t_ps, 900);
}

TEST(FlightRecorder, PartialRingSnapshotsInOrder) {
  telemetry::FlightRecorder fr(8);
  fr.record(1, 10, telemetry::Cat::kNic, 0);
  fr.record(2, 11, telemetry::Cat::kFirmware, 3);
  const std::vector<telemetry::FlightEntry> snap = fr.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].seq, 10u);
  EXPECT_EQ(snap[1].seq, 11u);
  EXPECT_EQ(snap[1].cat, telemetry::Cat::kFirmware);
  EXPECT_EQ(snap[1].node, 3);
}

TEST(FlightRecorder, EngineRecordsEveryDispatch) {
  sim::Engine eng;
  eng.tag_category(telemetry::Cat::kAgent, 5);
  for (int i = 0; i < 5; ++i) {
    eng.schedule_at(sim::Time::ns(i), [] {});
  }
  eng.run();
  // Always on: no opt-in needed, every dispatch is witnessed.
  EXPECT_EQ(eng.flight_recorder().recorded(), eng.executed());
  const std::string dump = eng.flight_recorder().dump();
  EXPECT_NE(dump.find("flight recorder: last 5 of 5"), std::string::npos);
  EXPECT_NE(dump.find("cat=agent"), std::string::npos);
  EXPECT_NE(dump.find("node=5"), std::string::npos);
}

// ------------------------------------------------------- trace export ----

/// One parsed trace event: phase plus the numeric fields the schema
/// requires.
struct Ev {
  char ph = 0;
  long long pid = -1;
  long long tid = -1;
  double ts = -1.0;
  bool has_ts = false;
};

std::vector<Ev> parse_events(const std::string& json) {
  std::vector<Ev> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t nl = json.find('\n', pos);
    if (nl == std::string::npos) break;
    const std::string line = json.substr(pos, nl - pos);
    pos = nl + 1;
    const std::size_t ph = line.find("\"ph\":\"");
    if (ph == std::string::npos) continue;
    Ev e;
    e.ph = line[ph + 6];
    const auto num = [&line](const char* key, double* v) {
      const std::size_t p = line.find(key);
      if (p == std::string::npos) return false;
      *v = std::strtod(line.c_str() + p + std::strlen(key), nullptr);
      return true;
    };
    double d = 0.0;
    if (num("\"pid\":", &d)) e.pid = static_cast<long long>(d);
    if (num("\"tid\":", &d)) e.tid = static_cast<long long>(d);
    e.has_ts = num("\"ts\":", &e.ts);
    out.push_back(e);
  }
  return out;
}

TEST(TraceExport, EmitsSpansCountersAndAsyncLifelines) {
  std::vector<sim::Trace::Record> recs;
  recs.push_back({sim::Time::ns(1), sim::Trace::Phase::kBegin, "n0.fw",
                  "rx_header", 0});
  recs.push_back({sim::Time::ns(2), sim::Trace::Phase::kEnd, "n0.fw",
                  "rx_header", 0});
  recs.push_back({sim::Time::ns(2), sim::Trace::Phase::kCounter,
                  "link.n0.x+", "occupancy", 1});
  telemetry::ProvenanceLog prov;
  const std::uint64_t id = prov.begin_message(0, 1, 64, sim::Time::ns(1));
  prov.stamp(id, telemetry::Stage::kWireHeader, sim::Time::ns(3));
  prov.stamp(id, telemetry::Stage::kHostDeliver, sim::Time::ns(9));

  const std::string json =
      telemetry::export_chrome_trace({{"s", &recs, &prov}});
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  // Duration span, counter sample, and the message's async lifeline.
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"s0.m1\""), std::string::npos);
  // Async span telescopes first stamp -> last stamp (1 ns -> 9 ns,
  // rendered as fixed-point microseconds).
  EXPECT_NE(json.find("\"ts\":0.001000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":0.009000"), std::string::npos);
  // Track metadata names the node process and the firmware thread.
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(TraceExport, SchemaFromARealRunHoldsPerTrackOrdering) {
  np::Options o;
  o.min_bytes = 8;
  o.max_bytes = 64;
  o.perturbation = 0;
  o.base_iters = 2;
  o.min_iters = 1;
  harness::Scenario::TelemetrySpec tel;
  tel.trace = true;
  tel.provenance = true;
  const std::vector<harness::SeriesResult> series = harness::measure_series(
      {np::Transport::kPut}, np::Pattern::kPingPong, o, ss::Config{}, 1,
      tel);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_FALSE(series[0].trace_records.empty());
  EXPECT_GT(series[0].provenance.size(), 0u);

  const std::string json = harness::export_trace_json(series);
  const std::vector<Ev> evs = parse_events(json);
  ASSERT_FALSE(evs.empty());
  std::map<std::pair<long long, long long>, double> last_ts;
  int spans = 0, asyncs = 0;
  for (const Ev& e : evs) {
    // Schema: every event names pid and tid; everything but metadata
    // carries a timestamp.
    EXPECT_GE(e.pid, 0) << e.ph;
    EXPECT_GE(e.tid, 0) << e.ph;
    if (e.ph != 'M') {
      EXPECT_TRUE(e.has_ts) << e.ph;
    }
    if (e.ph == 'b') ++asyncs;
    if (e.ph == 'B' || e.ph == 'E' || e.ph == 'C' || e.ph == 'i') {
      ++spans;
      // Sim-time ordering survives export: per (pid, tid) track the
      // timestamps are non-decreasing.
      double& prev = last_ts[{e.pid, e.tid}];
      EXPECT_GE(e.ts, prev);
      prev = e.ts;
    }
  }
  EXPECT_GT(spans, 0);
  EXPECT_GT(asyncs, 0);
}

TEST(TraceExport, ByteIdenticalAcrossJobs) {
  np::Options o;
  o.min_bytes = 8;
  o.max_bytes = 128;
  o.perturbation = 0;
  o.base_iters = 2;
  o.min_iters = 1;
  harness::Scenario::TelemetrySpec tel;
  tel.trace = true;
  tel.provenance = true;
  const std::vector<np::Transport> tx = {np::Transport::kPut,
                                         np::Transport::kGet};
  const std::string serial = harness::export_trace_json(
      harness::measure_series(tx, np::Pattern::kPingPong, o, ss::Config{}, 1,
                              tel));
  const std::string parallel = harness::export_trace_json(
      harness::measure_series(tx, np::Pattern::kPingPong, o, ss::Config{}, 4,
                              tel));
  EXPECT_EQ(serial, parallel);
}

TEST(TraceExport, AsyncSpansTelescopeToProvenanceE2e) {
  std::vector<sim::Trace::Record> recs;
  telemetry::ProvenanceLog prov;
  const std::uint64_t id =
      prov.begin_message(2, 3, 2048, sim::Time::us(10));
  prov.stamp(id, telemetry::Stage::kTxDma, sim::Time::us(11));
  prov.stamp(id, telemetry::Stage::kRxNicComplete, sim::Time::us(14));
  prov.stamp(id, telemetry::Stage::kHostDeliver, sim::Time::us(17));
  const std::string json =
      telemetry::export_chrome_trace({{"x", &recs, &prov}});
  // b at 10 us, e at 17 us: the async span's duration IS the message's
  // end-to-end latency (last stamp - first stamp).
  const std::size_t b = json.find("\"ph\":\"b\"");
  const std::size_t e = json.find("\"ph\":\"e\"");
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(e, std::string::npos);
  EXPECT_NE(json.find("\"ts\":10.000000", b), std::string::npos);
  EXPECT_NE(json.find("\"ts\":17.000000", e), std::string::npos);
  // The two middle stamps surface as nested instants inside the span.
  EXPECT_NE(json.find("tx_dma"), std::string::npos);
  EXPECT_NE(json.find("rx_nic_complete"), std::string::npos);
}

// ------------------------------------------------------ BenchOptions ----

TEST(BenchOptions, ObservabilityFlagsParse) {
  const std::string mpath = testing::TempDir() + "obs_metrics.json";
  const std::string tpath = testing::TempDir() + "obs_trace.json";
  const std::string targ = "--trace-json=" + tpath;
  const char* argv[] = {"bench",          "--profile", "--metrics-out",
                        mpath.c_str(),    targ.c_str()};
  const harness::BenchOptions o = harness::BenchOptions::parse(
      5, const_cast<char**>(argv));
  EXPECT_TRUE(o.profile);
  EXPECT_EQ(o.metrics_path, mpath);
  EXPECT_EQ(o.trace_json_path, tpath);
}

TEST(BenchOptionsDeath, RejectsUnwritableMetricsOutPath) {
  const char* argv[] = {"bench", "--metrics-out",
                        "/nonexistent-dir/metrics.json"};
  EXPECT_EXIT(harness::BenchOptions::parse(3, const_cast<char**>(argv)),
              testing::ExitedWithCode(2),
              "cannot open --metrics-out path");
}

TEST(BenchOptionsDeath, RejectsUnwritableTraceJsonPath) {
  const char* argv[] = {"bench", "--trace-json",
                        "/nonexistent-dir/trace.json"};
  EXPECT_EXIT(harness::BenchOptions::parse(3, const_cast<char**>(argv)),
              testing::ExitedWithCode(2),
              "cannot open --trace-json path");
}

}  // namespace
