// Tests for the accelerated-mode NetPIPE transports and MPI_Waitany.

#include <gtest/gtest.h>

#include <array>

#include "harness/netpipe_bench.hpp"
#include "mpi/mpi.hpp"
#include "netpipe/netpipe.hpp"
#include "portals/wire.hpp"
#include "sim/rng.hpp"

namespace xt {
namespace {

using ptl::PTL_OK;
using sim::CoTask;

np::Options quick(std::size_t max) {
  np::Options o;
  o.max_bytes = max;
  o.base_iters = 8;
  o.min_iters = 2;
  o.perturbation = 0;
  return o;
}

TEST(AccelNetpipe, PutAccelBeatsGenericEverywhere) {
  const auto gen =
      harness::measure(np::Transport::kPut, np::Pattern::kPingPong, quick(65536));
  const auto acc = harness::measure(np::Transport::kPutAccel,
                               np::Pattern::kPingPong, quick(65536));
  ASSERT_EQ(gen.size(), acc.size());
  for (std::size_t i = 0; i < gen.size(); ++i) {
    EXPECT_LT(acc[i].usec_per_transfer, gen[i].usec_per_transfer)
        << "at " << gen[i].bytes;
  }
  // The 1-byte advantage is the eliminated interrupt + trap path.
  EXPECT_LT(acc.front().usec_per_transfer, 3.5);
  EXPECT_GT(gen.front().usec_per_transfer, 5.0);
}

TEST(AccelNetpipe, PeakBandwidthUnchangedByOffload) {
  // Offload removes per-message host costs; the DMA-limited plateau stays.
  const auto gen = harness::measure(np::Transport::kPut, np::Pattern::kPingPong,
                               quick(4 << 20));
  const auto acc = harness::measure(np::Transport::kPutAccel,
                               np::Pattern::kPingPong, quick(4 << 20));
  EXPECT_NEAR(acc.back().mbytes_per_sec, gen.back().mbytes_per_sec, 20.0);
}

TEST(AccelNetpipe, GetAccelWorksAndBeatsGenericGet) {
  const auto gen =
      harness::measure(np::Transport::kGet, np::Pattern::kPingPong, quick(1024));
  const auto acc = harness::measure(np::Transport::kGetAccel,
                               np::Pattern::kPingPong, quick(1024));
  for (std::size_t i = 0; i < gen.size(); ++i) {
    EXPECT_LT(acc[i].usec_per_transfer, gen[i].usec_per_transfer);
  }
}

// ----------------------------------------------------- wire-format fuzz ----

TEST(WireFuzz, RandomHeadersRoundTrip) {
  sim::Rng rng(2026);
  for (int trial = 0; trial < 500; ++trial) {
    ptl::WireHeader h;
    h.op = static_cast<ptl::WireOp>(rng.below(6));
    h.ack_req = static_cast<ptl::AckReq>(rng.below(2));
    h.src_nid = static_cast<std::uint32_t>(rng.u64());
    h.src_pid = static_cast<std::uint16_t>(rng.u64());
    h.dst_pid = static_cast<std::uint16_t>(rng.u64());
    h.pt_index = static_cast<std::uint8_t>(rng.u64());
    h.ac_index = static_cast<std::uint8_t>(rng.u64());
    h.match_bits = rng.u64();
    h.remote_offset = rng.u64();
    h.length = static_cast<std::uint32_t>(rng.u64());
    h.hdr_data = rng.u64();
    h.md_id = static_cast<std::uint32_t>(rng.u64());
    h.md_gen = static_cast<std::uint32_t>(rng.u64());
    h.stream_seq = static_cast<std::uint32_t>(rng.u64());
    std::array<std::byte, ptl::kWireHeaderBytes> buf{};
    ptl::pack_header(h, buf);
    ASSERT_EQ(ptl::unpack_header(buf), h) << "trial " << trial;
  }
}

// ------------------------------------------------------------ waitany ----

TEST(MpiWaitany, ReturnsFirstCompletion) {
  host::Machine m(net::Shape::xt3(2, 1, 1));
  std::vector<ptl::ProcessId> ids{{0, 9}, {1, 9}};
  host::Process& p0 = m.node(0).spawn_process(9, 64u << 20);
  host::Process& p1 = m.node(1).spawn_process(9, 64u << 20);
  mpi::Comm c0(p0, ids, 0), c1(p1, ids, 1);
  const std::uint64_t sbuf = p0.alloc(64);
  const std::uint64_t rbufs = p1.alloc(3 * 64);
  bool done = false;
  sim::spawn([](mpi::Comm& c, std::uint64_t b) -> CoTask<void> {
    (void)co_await c.init();
    // Only tag 2 is ever sent: request index 1 completes first.
    co_await sim::delay(c.process().node().engine(), sim::Time::us(30));
    (void)co_await c.send(b, 64, 1, 2);
    (void)co_await c.send(b, 64, 1, 1);
    (void)co_await c.send(b, 64, 1, 3);
  }(c0, sbuf));
  sim::spawn([](mpi::Comm& c, std::uint64_t b, bool* d) -> CoTask<void> {
    (void)co_await c.init();
    std::array<mpi::Request, 3> reqs;
    for (int t = 1; t <= 3; ++t) {
      (void)co_await c.irecv(b + static_cast<std::uint64_t>(t - 1) * 64, 64,
                             0, t, &reqs[static_cast<std::size_t>(t - 1)]);
    }
    std::size_t idx = 99;
    mpi::Status st;
    EXPECT_EQ(co_await c.waitany(reqs, &idx, &st), PTL_OK);
    EXPECT_EQ(idx, 1u);  // tag 2 was sent first
    EXPECT_EQ(st.tag, 2);
    EXPECT_EQ(co_await c.waitall(reqs), PTL_OK);
    // All retired: another waitany reports no active requests.
    EXPECT_EQ(co_await c.waitany(reqs, &idx, nullptr), PTL_OK);
    EXPECT_EQ(idx, static_cast<std::size_t>(-1));
    *d = true;
  }(c1, rbufs, &done));
  m.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace xt
