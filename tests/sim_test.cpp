// Unit tests for the discrete-event simulation kernel (src/sim).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/condition.hpp"
#include "sim/engine.hpp"
#include "sim/flat_map.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/strf.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace xt::sim {
namespace {

// ---------------------------------------------------------------- Time ----

TEST(Time, UnitConstructorsAgree) {
  EXPECT_EQ(Time::ns(1), Time::ps(1000));
  EXPECT_EQ(Time::us(1), Time::ns(1000));
  EXPECT_EQ(Time::ms(1), Time::us(1000));
  EXPECT_EQ(Time::sec(1), Time::ms(1000));
}

TEST(Time, ArithmeticAndComparison) {
  const Time a = Time::us(3);
  const Time b = Time::us(2);
  EXPECT_EQ((a + b).to_us(), 5.0);
  EXPECT_EQ((a - b).to_us(), 1.0);
  EXPECT_EQ((a * 4).to_us(), 12.0);
  EXPECT_EQ((a / 3).to_us(), 1.0);
  EXPECT_DOUBLE_EQ(a / b, 1.5);
  EXPECT_LT(b, a);
  EXPECT_TRUE(Time{}.is_zero());
}

TEST(Time, ForBytesRoundsUp) {
  // 1 byte at 1 GB/s = exactly 1000 ps.
  EXPECT_EQ(Time::for_bytes(1, 1'000'000'000), Time::ps(1000));
  // 1 byte at 3 GB/s = 333.33 ps, rounded up to 334.
  EXPECT_EQ(Time::for_bytes(1, 3'000'000'000ull), Time::ps(334));
  // Large transfer does not overflow: 8 MiB at 1.1 GB/s ~ 7.6 ms.
  const Time t = Time::for_bytes(8u << 20, 1'100'000'000ull);
  EXPECT_NEAR(t.to_ms(), 7.626, 0.01);
}

TEST(Time, ForBytesExactAtRate) {
  // 64-byte packet at 2.5 GB/s payload = 25.6 ns.
  EXPECT_EQ(Time::for_bytes(64, 2'500'000'000ull), Time::ps(25600));
}

TEST(Time, StrPicksUnits) {
  EXPECT_EQ(Time::ps(12).str(), "12 ps");
  EXPECT_EQ(Time::us(5).str(), "5.000 us");
}

// -------------------------------------------------------------- Engine ----

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(Time::ns(30), [&] { order.push_back(3); });
  eng.schedule_at(Time::ns(10), [&] { order.push_back(1); });
  eng.schedule_at(Time::ns(20), [&] { order.push_back(2); });
  EXPECT_EQ(eng.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), Time::ns(30));
}

TEST(Engine, EqualTimesRunFifo) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    eng.schedule_at(Time::ns(5), [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine eng;
  Time seen{};
  eng.schedule_at(Time::ns(100), [&] {
    eng.schedule_after(Time::ns(50), [&] { seen = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(seen, Time::ns(150));
}

TEST(Engine, CancelPreventsExecution) {
  Engine eng;
  bool ran = false;
  auto id = eng.schedule_at(Time::ns(10), [&] { ran = true; });
  eng.cancel(id);
  eng.run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(eng.empty());
}

TEST(Engine, CancelTwiceIsNoop) {
  Engine eng;
  auto id = eng.schedule_at(Time::ns(10), [] {});
  eng.cancel(id);
  eng.cancel(id);
  EXPECT_EQ(eng.run(), 0u);
}

TEST(Engine, StopHaltsRun) {
  Engine eng;
  int count = 0;
  for (int i = 1; i <= 5; ++i) {
    eng.schedule_at(Time::ns(i), [&] {
      if (++count == 3) eng.stop();
    });
  }
  EXPECT_EQ(eng.run(), 3u);
  EXPECT_EQ(eng.pending(), 2u);
}

TEST(Engine, RunUntilAdvancesTimeExactly) {
  Engine eng;
  int count = 0;
  eng.schedule_at(Time::ns(10), [&] { ++count; });
  eng.schedule_at(Time::ns(30), [&] { ++count; });
  eng.run_until(Time::ns(20));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(eng.now(), Time::ns(20));
  eng.run_until(Time::ns(40));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(eng.now(), Time::ns(40));
}

TEST(Engine, PendingCountExcludesCancelled) {
  Engine eng;
  auto a = eng.schedule_at(Time::ns(1), [] {});
  eng.schedule_at(Time::ns(2), [] {});
  EXPECT_EQ(eng.pending(), 2u);
  eng.cancel(a);
  EXPECT_EQ(eng.pending(), 1u);
}

TEST(Engine, CancelAfterExecutionIsNoop) {
  Engine eng;
  int runs = 0;
  auto id = eng.schedule_at(Time::ns(1), [&] { ++runs; });
  eng.run();
  EXPECT_EQ(runs, 1);
  // The event already fired; a late cancel must not disturb anything.
  eng.cancel(id);
  eng.schedule_at(Time::ns(2), [&] { ++runs; });
  EXPECT_EQ(eng.run(), 1u);
  EXPECT_EQ(runs, 2);
}

TEST(Engine, StaleIdCannotCancelRecycledSlot) {
  Engine eng;
  // Schedule and run an event so its slab slot is released...
  auto stale = eng.schedule_at(Time::ns(1), [] {});
  eng.run();
  // ...then reuse the slot for a new event.  Cancelling with the stale id
  // must not kill the new occupant (generation tag mismatch).
  bool ran = false;
  eng.schedule_at(Time::ns(2), [&] { ran = true; });
  eng.cancel(stale);
  eng.run();
  EXPECT_TRUE(ran);
}

TEST(Engine, CancelledHeadDoesNotStallRunUntil) {
  Engine eng;
  auto id = eng.schedule_at(Time::ns(5), [] {});
  eng.cancel(id);
  eng.schedule_at(Time::ns(30), [] {});
  // The cancelled record at the head of the heap must be skipped without
  // consuming the time budget or executing anything.
  EXPECT_EQ(eng.run_until(Time::ns(10)), 0u);
  EXPECT_EQ(eng.now(), Time::ns(10));
  EXPECT_EQ(eng.pending(), 1u);
}

TEST(Engine, SlabReusesSlotsUnderChurn) {
  // Schedule/cancel churn must not leak: ids keep resolving correctly and
  // every armed event still fires exactly once.
  Engine eng;
  int fired = 0;
  for (int round = 0; round < 100; ++round) {
    auto a = eng.schedule_at(Time::ns(round * 10 + 1), [&] { ++fired; });
    auto b = eng.schedule_at(Time::ns(round * 10 + 2), [&] { ++fired; });
    eng.cancel(a);
    (void)b;
  }
  eng.run();
  EXPECT_EQ(fired, 100);
  EXPECT_TRUE(eng.empty());
}

// ------------------------------------------------------------ CoTask ------

CoTask<int> answer() { co_return 42; }

CoTask<int> add_async(Engine& eng, int a, int b) {
  co_await delay(eng, Time::ns(5));
  co_return a + b;
}

TEST(Task, SpawnedTaskRunsToCompletion) {
  Engine eng;
  int result = 0;
  spawn([](Engine& e, int& out) -> CoTask<void> {
    out = co_await add_async(e, 20, 22);
  }(eng, result));
  eng.run();
  EXPECT_EQ(result, 42);
}

TEST(Task, ImmediateTaskCompletesWithoutEngine) {
  Engine eng;
  int result = 0;
  spawn([](int& out) -> CoTask<void> { out = co_await answer(); }(result));
  EXPECT_EQ(result, 42);  // no suspension anywhere: done inline
  EXPECT_TRUE(eng.empty());
}

TEST(Task, NestedAwaitPropagatesValues) {
  Engine eng;
  int result = 0;
  spawn([](Engine& e, int& out) -> CoTask<void> {
    const int x = co_await add_async(e, 1, 2);
    const int y = co_await add_async(e, x, 10);
    out = y;
  }(eng, result));
  eng.run();
  EXPECT_EQ(result, 13);
  EXPECT_EQ(eng.now(), Time::ns(10));
}

TEST(Task, DelayAdvancesSimTime) {
  Engine eng;
  Time end{};
  spawn([](Engine& e, Time& out) -> CoTask<void> {
    co_await delay(e, Time::us(3));
    co_await delay(e, Time::us(4));
    out = e.now();
  }(eng, end));
  eng.run();
  EXPECT_EQ(end, Time::us(7));
}

TEST(Task, ZeroDelayDoesNotSuspend) {
  Engine eng;
  bool done = false;
  spawn([](Engine& e, bool& out) -> CoTask<void> {
    co_await delay(e, Time{});
    out = true;
  }(eng, done));
  EXPECT_TRUE(done);
}

TEST(Task, YieldRunsBehindQueuedEvents) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(Time{}, [&] { order.push_back(1); });
  spawn([](Engine& e, std::vector<int>& out) -> CoTask<void> {
    out.push_back(0);
    co_await yield(e);
    out.push_back(2);
  }(eng, order));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Task, ExceptionPropagatesToAwaiter) {
  Engine eng;
  bool caught = false;
  spawn([](bool& out) -> CoTask<void> {
    auto thrower = []() -> CoTask<int> {
      throw std::runtime_error("boom");
      co_return 0;  // unreachable; makes this a coroutine
    };
    try {
      (void)co_await thrower();
    } catch (const std::runtime_error&) {
      out = true;
    }
  }(caught));
  eng.run();
  EXPECT_TRUE(caught);
}

// --------------------------------------------------------- WaitQueue ------

TEST(WaitQueue, NotifyOneWakesInFifoOrder) {
  Engine eng;
  WaitQueue wq(eng);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    spawn([](WaitQueue& w, std::vector<int>& out, int id) -> CoTask<void> {
      co_await w.wait();
      out.push_back(id);
    }(wq, order, i));
  }
  eng.run();
  EXPECT_EQ(wq.waiters(), 3u);
  wq.notify_one();
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0}));
  wq.notify_all();
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(WaitQueue, NotifyOnEmptyIsNoop) {
  Engine eng;
  WaitQueue wq(eng);
  wq.notify_one();
  wq.notify_all();
  EXPECT_EQ(eng.run(), 0u);
}

TEST(WaitQueue, PredicateLoopPattern) {
  Engine eng;
  WaitQueue wq(eng);
  int value = 0;
  int seen = 0;
  spawn([](WaitQueue& w, int& v, int& out) -> CoTask<void> {
    while (v < 3) co_await w.wait();
    out = v;
  }(wq, value, seen));
  for (int i = 1; i <= 3; ++i) {
    eng.schedule_at(Time::ns(i * 10), [&, i] {
      value = i;
      wq.notify_all();
    });
  }
  eng.run();
  EXPECT_EQ(seen, 3);
}

// ---------------------------------------------------------- Resource ------

TEST(Resource, SerializesUsers) {
  Engine eng;
  Resource r(eng, "dma");
  std::vector<std::pair<int, Time>> done;
  for (int i = 0; i < 3; ++i) {
    spawn([](Engine& e, Resource& res, auto& out, int id) -> CoTask<void> {
      co_await res.use(Time::ns(100));
      out.emplace_back(id, e.now());
    }(eng, r, done, i));
  }
  eng.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], (std::pair<int, Time>{0, Time::ns(100)}));
  EXPECT_EQ(done[1], (std::pair<int, Time>{1, Time::ns(200)}));
  EXPECT_EQ(done[2], (std::pair<int, Time>{2, Time::ns(300)}));
  EXPECT_EQ(r.busy_time(), Time::ns(300));
  EXPECT_FALSE(r.busy());
}

TEST(Resource, HigherPriorityJumpsQueue) {
  Engine eng;
  Resource r(eng, "cpu");
  std::vector<std::string> order;
  // Holder occupies [0, 100).
  spawn([](Resource& res, auto& out) -> CoTask<void> {
    co_await res.use(Time::ns(100));
    out.push_back("holder");
  }(r, order));
  // Two low-priority and one high-priority waiter arrive while busy.
  for (const char* name : {"low1", "low2"}) {
    spawn([](Resource& res, auto& out, std::string n) -> CoTask<void> {
      co_await res.use(Time::ns(10), /*priority=*/0);
      out.push_back(std::move(n));
    }(r, order, name));
  }
  spawn([](Resource& res, auto& out) -> CoTask<void> {
    co_await res.use(Time::ns(10), /*priority=*/10);
    out.push_back("high");
  }(r, order));
  eng.run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "holder");
  EXPECT_EQ(order[1], "high");
  EXPECT_EQ(order[2], "low1");
  EXPECT_EQ(order[3], "low2");
}

TEST(Resource, FreeResourceGrantsImmediately) {
  Engine eng;
  Resource r(eng);
  bool got = false;
  spawn([](Resource& res, bool& out) -> CoTask<void> {
    co_await res.acquire();
    out = true;
    res.release();
  }(r, got));
  EXPECT_TRUE(got);  // no suspension needed
}

TEST(Resource, TracksMaxQueue) {
  Engine eng;
  Resource r(eng);
  for (int i = 0; i < 5; ++i) {
    spawn([](Resource& res) -> CoTask<void> {
      co_await res.use(Time::ns(1));
    }(r));
  }
  eng.run();
  EXPECT_EQ(r.max_queue(), 4u);
}

// --------------------------------------------------------------- Rng ------

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.u64(), b.u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.u64() == b.u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformCoversClosedRange) {
  Rng r(7);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    lo |= (v == 3);
    hi |= (v == 5);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng r(99);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ForkIsIndependent) {
  Rng a(5);
  Rng b = a.fork();
  EXPECT_NE(a.u64(), b.u64());
}

// ------------------------------------------------------------- Stats ------

TEST(Stats, AccumulatorMoments) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 1e-3);
}

TEST(Stats, EmptyAccumulatorIsSafe) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(Stats, ResetClears) {
  Accumulator acc;
  acc.add(5);
  acc.reset();
  EXPECT_EQ(acc.count(), 0u);
}

// -------------------------------------------------------------- strf ------

TEST(Strf, FormatsLikePrintf) {
  EXPECT_EQ(strf("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(strf("empty"), "empty");
}

// ------------------------------------------------- determinism sweep ------

// The same program must produce the same event count and end time on every
// run: the engine and RNG are the only sources of ordering.
TEST(Determinism, RepeatedRunsIdentical) {
  auto run_once = [] {
    Engine eng;
    Rng rng(42);
    Resource r(eng);
    std::uint64_t checksum = 0;
    for (int i = 0; i < 50; ++i) {
      spawn([](Engine& e, Resource& res, Rng& rg,
               std::uint64_t& sum) -> CoTask<void> {
        co_await delay(e, Time::ns(static_cast<std::int64_t>(rg.below(100))));
        co_await res.use(Time::ns(static_cast<std::int64_t>(rg.below(50))));
        sum = sum * 31 + static_cast<std::uint64_t>(e.now().to_ps());
      }(eng, r, rng, checksum));
    }
    eng.run();
    return std::pair{checksum, eng.now()};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

// --------------------------------------------------------- FlatU64Map ----

TEST(FlatMap, PutFindErase) {
  FlatU64Map<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(1), nullptr);
  m.put(1, 10);
  m.put(2, 20);
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), 10);
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.erase(1));
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, OverwriteKeepsSizeAndValue) {
  FlatU64Map<int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m.put(k, static_cast<int>(k));
  // Repeated assignment to existing keys must not change the live count
  // and must leave every other entry intact.
  for (int round = 0; round < 1000; ++round) m.put(42, round);
  EXPECT_EQ(m.size(), 100u);
  ASSERT_NE(m.find(42), nullptr);
  EXPECT_EQ(*m.find(42), 999);
  for (std::uint64_t k = 0; k < 100; ++k) {
    ASSERT_NE(m.find(k), nullptr) << "key " << k;
  }
}

TEST(FlatMap, ChurnReusesTombstones) {
  FlatU64Map<std::uint64_t> m;
  // Steady-state insert/erase churn: every key lands, dies, and its slot
  // is reused, across enough rounds to force rebuilds and tomb reuse.
  for (std::uint64_t k = 0; k < 10000; ++k) {
    m.put(k, k * 3);
    ASSERT_NE(m.find(k), nullptr);
    EXPECT_EQ(*m.find(k), k * 3);
    if (k >= 4) {
      EXPECT_TRUE(m.erase(k - 4));
    }
    EXPECT_LE(m.size(), 5u);
  }
}

}  // namespace
}  // namespace xt::sim
