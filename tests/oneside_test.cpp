// Tests for the conduit-backed app workloads (src/workload/oneside):
// stencil halo exchange and KV parameter-server traffic — determinism,
// delivery accounting, and running as cluster tenants.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "cluster/scheduler.hpp"
#include "harness/scenario.hpp"
#include "workload/generator.hpp"
#include "workload/oneside.hpp"

namespace xt::workload {
namespace {

WorkloadSpec stencil_spec() {
  WorkloadSpec spec;
  spec.pattern = PatternKind::kStencil;
  spec.ranks = 8;
  spec.bytes = 512;
  spec.msgs_per_sender = 4;  // iterations
  spec.seed = 3;
  return spec;
}

WorkloadSpec kv_spec() {
  WorkloadSpec spec;
  spec.pattern = PatternKind::kKv;
  spec.ranks = 8;
  spec.bytes = 256;
  spec.msgs_per_sender = 6;  // ops per client
  spec.outstanding = 2;
  spec.seed = 5;
  return spec;
}

WorkloadResult run_once(const WorkloadSpec& spec) {
  harness::Scenario sc = workload_scenario(spec, host::ProcMode::kUser,
                                           ss::Config{}, spec.seed);
  auto inst = sc.build();
  return run_workload(*inst, spec);
}

TEST(OnesideStencil, ConservesFacesAndCompletes) {
  const WorkloadSpec spec = stencil_spec();
  const WorkloadResult r = run_once(spec);
  ASSERT_TRUE(r.complete) << r.failure;
  std::uint64_t faces = 0;
  for (int rank = 0; rank < spec.ranks; ++rank) {
    faces += oneside::stencil_neighbors(spec, rank).size();
  }
  const std::uint64_t iters =
      static_cast<std::uint64_t>(spec.msgs_per_sender);
  EXPECT_EQ(r.sent, iters * faces);
  EXPECT_EQ(r.delivered, iters * faces);  // every put lands exactly once
  // One latency sample per iteration per rank.
  EXPECT_EQ(r.latency_ps.size(), iters * static_cast<std::uint64_t>(spec.ranks));
}

TEST(OnesideStencil, DeterministicAcrossRuns) {
  const WorkloadSpec spec = stencil_spec();
  const WorkloadResult a = run_once(spec);
  const WorkloadResult b = run_once(spec);
  ASSERT_TRUE(a.complete && b.complete);
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.latency_ps, b.latency_ps);  // byte-identical timing
  EXPECT_EQ(a.span.to_ps(), b.span.to_ps());
}

TEST(OnesideKv, ClientsCompleteExactOpCounts) {
  const WorkloadSpec spec = kv_spec();
  const int servers = oneside::kv_servers(spec);
  const int clients = spec.ranks - servers;
  ASSERT_GT(clients, 0);
  const WorkloadResult r = run_once(spec);
  ASSERT_TRUE(r.complete) << r.failure;
  const std::uint64_t ops = static_cast<std::uint64_t>(clients) *
                            static_cast<std::uint64_t>(spec.msgs_per_sender);
  EXPECT_EQ(r.sent, ops);
  EXPECT_EQ(r.delivered, ops);
  EXPECT_EQ(r.latency_ps.size(), ops);  // one RTT sample per op
}

TEST(OnesideKv, DeterministicAcrossRuns) {
  const WorkloadSpec spec = kv_spec();
  const WorkloadResult a = run_once(spec);
  const WorkloadResult b = run_once(spec);
  ASSERT_TRUE(a.complete && b.complete);
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.latency_ps, b.latency_ps);
  EXPECT_EQ(a.span.to_ps(), b.span.to_ps());
}

TEST(OnesideKv, ServerCountDefaultsAndOverrides) {
  WorkloadSpec spec = kv_spec();
  EXPECT_EQ(oneside::kv_servers(spec), 2);  // ranks/4
  spec.rpc_clients = 6;
  EXPECT_EQ(oneside::kv_servers(spec), 2);  // ranks - clients
  spec.rpc_clients = 0;
  spec.ranks = 3;
  EXPECT_EQ(oneside::kv_servers(spec), 1);  // never below one server
}

TEST(OnesidePatterns, ClassifierCoversBoth) {
  EXPECT_TRUE(oneside::is_oneside(PatternKind::kStencil));
  EXPECT_TRUE(oneside::is_oneside(PatternKind::kKv));
  EXPECT_FALSE(oneside::is_oneside(PatternKind::kUniform));
}

// ------------------------------------------------------- cluster tenants ----

cluster::JobSpec tenant(int id, PatternKind pk, int ranks,
                        std::uint64_t seed) {
  cluster::JobSpec j;
  j.id = id;
  j.work.pattern = pk;
  j.work.ranks = ranks;
  j.work.bytes = 256;
  j.work.msgs_per_sender = 3;
  j.work.outstanding = 2;
  j.work.seed = seed;
  return j;
}

TEST(OnesideCluster, StencilAndKvRunAsTenants) {
  cluster::ClusterSpec cs;
  cs.nodes = 16;
  cs.jobs = {tenant(0, PatternKind::kStencil, 4, 5),
             tenant(1, PatternKind::kKv, 8, 9)};
  const cluster::ClusterResult r = cluster::run_cluster(cs);
  ASSERT_EQ(r.jobs.size(), 2u);
  std::set<net::NodeId> used;
  for (const cluster::JobResult& j : r.jobs) {
    EXPECT_TRUE(j.placed);
    EXPECT_TRUE(j.work.complete) << j.work.failure;
    EXPECT_GT(j.work.delivered, 0u);
    for (const net::NodeId n : j.nodes) {
      EXPECT_TRUE(used.insert(n).second);  // space sharing: no overlap
    }
  }

  // Same trace again: tenant results are byte-identical.
  const cluster::ClusterResult r2 = cluster::run_cluster(cs);
  for (std::size_t i = 0; i < r.jobs.size(); ++i) {
    EXPECT_EQ(r.jobs[i].work.delivered, r2.jobs[i].work.delivered);
    EXPECT_EQ(r.jobs[i].work.latency_ps, r2.jobs[i].work.latency_ps);
    EXPECT_EQ(r.jobs[i].end.to_ps(), r2.jobs[i].end.to_ps());
  }
}

}  // namespace
}  // namespace xt::workload
