// Differential property suite for the indexed match-list search
// (src/portals/library.cpp): the indexed matcher must be observably
// indistinguishable from the reference linear walk on every decision.
//
// Three layers of checking:
//   1. Twin-run differential: every randomized plan runs on a kLinear
//      library and a kIndexed library side by side; return codes, deposit
//      decisions (including entries_walked, which feeds the simulated
//      match cost), segments, events and status registers must agree
//      exactly.
//   2. Shadow rig: the same plan replays on one kShadow library, which
//      re-checks every match decision internally (this is what CI runs
//      across the whole tier-1 suite via XT_SHADOW_MATCH=1).
//   3. Hand-written regressions for the spots the index could plausibly
//      get wrong: wildcard/exact interleaving, equal-bits appends while a
//      match is in flight, use-once repost ordering, mid-list unlink,
//      truncation fallthrough, and order-label relabeling.
//
// On a property failure the plan shrinks greedily — drop one action at a
// time while the divergence reproduces — so the assertion carries a
// minimal reproducer.

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "host/memory.hpp"
#include "portals/library.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/strf.hpp"

namespace xt::ptl {
namespace {

class FakeMemory final : public Memory {
 public:
  explicit FakeMemory(std::size_t size) : mem_(size) {}
  bool valid(std::uint64_t addr, std::size_t len) const override {
    return len <= mem_.size() && addr <= mem_.size() - len;
  }
  void read(std::uint64_t addr, std::span<std::byte> out) const override {
    std::memcpy(out.data(), mem_.data() + addr, out.size());
  }
  void write(std::uint64_t addr, std::span<const std::byte> in) override {
    std::memcpy(mem_.data() + addr, in.data(), in.size());
  }
  std::vector<std::byte> mem_;
};

class NullNal final : public Nal {
 public:
  int send(TxKind, std::uint32_t, const WireHeader&, IoVecList,
           std::uint64_t) override {
    return PTL_OK;
  }
  std::uint32_t nid() const override { return 7; }
  int distance(std::uint32_t) const override { return 1; }
};

/// One library under a chosen match strategy, with its fakes.
struct Proc {
  sim::Engine eng;
  FakeMemory mem{1 << 16};
  NullNal nal;
  Library lib;
  EqHandle eq;
  explicit Proc(MatchMode mode)
      : lib(eng, Library::Config{ProcessId{7, 3}, Limits{}, true, mode}, nal,
            mem) {
    EXPECT_EQ(lib.eq_alloc(512, &eq), PTL_OK);
  }
};

constexpr std::uint32_t kPt = 4;

WireHeader make_hdr(bool is_get, MatchBits mb, std::uint32_t len,
                    std::uint64_t roffset, Nid src_nid = 1, Pid src_pid = 2) {
  WireHeader h;
  h.op = is_get ? WireOp::kGet : WireOp::kPut;
  h.src_nid = src_nid;
  h.src_pid = src_pid;
  h.pt_index = static_cast<std::uint8_t>(kPt);
  h.ac_index = 0;
  h.match_bits = mb;
  h.length = len;
  h.remote_offset = roffset;
  h.md_id = 99;
  return h;
}

// ------------------------------------------------------------- plans ----

struct Action {
  enum class Kind : std::uint8_t {
    kAttach,   // me_attach (+ optional MD)
    kInsert,   // me_insert relative to an earlier ME
    kUnlink,   // me_unlink an earlier ME
    kPut,      // incoming put header (deposit completes later or never)
    kGet,      // incoming get header
    kDeposit,  // complete one in-flight delivery
  };
  Kind kind = Kind::kAttach;
  // attach/insert
  MatchBits mbits = 0;
  MatchBits ibits = 0;
  bool before = false;   // head insert (attach) / InsPos (insert)
  bool use_once = false; // ME unlinks with its MD
  bool with_md = true;
  std::uint32_t md_len = 32;
  unsigned md_opts = PTL_MD_OP_PUT;
  int threshold = PTL_MD_THRESH_INF;
  std::size_t base = 0;  // insert/unlink: index into the ME history
  // put/get
  std::uint32_t len = 8;
  std::uint64_t roffset = 0;
  bool narrow_src = false;  // ME/put uses a specific source
  // deposit
  std::size_t dep = 0;  // index into the pending-delivery list
};

const char* kind_str(Action::Kind k) {
  switch (k) {
    case Action::Kind::kAttach: return "attach";
    case Action::Kind::kInsert: return "insert";
    case Action::Kind::kUnlink: return "unlink";
    case Action::Kind::kPut: return "put";
    case Action::Kind::kGet: return "get";
    case Action::Kind::kDeposit: return "deposit";
  }
  return "?";
}

std::string plan_str(const std::vector<Action>& plan) {
  std::string out;
  for (const Action& a : plan) {
    switch (a.kind) {
      case Action::Kind::kAttach:
        out += sim::strf("attach(mb=%llu ib=%llx %s%s%s len=%u opts=%x th=%d) ",
                         (unsigned long long)a.mbits,
                         (unsigned long long)a.ibits,
                         a.before ? "head " : "", a.use_once ? "once " : "",
                         a.with_md ? "" : "no-md ", a.md_len, a.md_opts,
                         a.threshold);
        break;
      case Action::Kind::kInsert:
        out += sim::strf("insert(mb=%llu ib=%llx base=%zu %s) ",
                         (unsigned long long)a.mbits,
                         (unsigned long long)a.ibits, a.base,
                         a.before ? "before" : "after");
        break;
      case Action::Kind::kUnlink:
        out += sim::strf("unlink(%zu) ", a.base);
        break;
      case Action::Kind::kPut:
      case Action::Kind::kGet:
        out += sim::strf("%s(mb=%llu len=%u roff=%llu%s) ", kind_str(a.kind),
                         (unsigned long long)a.mbits, a.len,
                         (unsigned long long)a.roffset,
                         a.narrow_src ? " narrow" : "");
        break;
      case Action::Kind::kDeposit:
        out += sim::strf("deposit(%zu) ", a.dep);
        break;
    }
  }
  return out;
}

/// Random plan: small match-bit pool (to force duplicates), wildcard
/// ignore masks, use-once entries, mid-list inserts/unlinks, deferred
/// deposits so matches stay in flight across list mutations.
std::vector<Action> derive_plan(std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<Action> plan;
  const std::size_t n = 4 + rng.below(36);
  for (std::size_t i = 0; i < n; ++i) {
    Action a;
    const std::uint64_t roll = rng.below(100);
    if (roll < 30) {
      a.kind = Action::Kind::kAttach;
    } else if (roll < 40) {
      a.kind = Action::Kind::kInsert;
    } else if (roll < 50) {
      a.kind = Action::Kind::kUnlink;
    } else if (roll < 75) {
      a.kind = Action::Kind::kPut;
    } else if (roll < 85) {
      a.kind = Action::Kind::kGet;
    } else {
      a.kind = Action::Kind::kDeposit;
    }
    a.mbits = rng.below(6);
    if (rng.chance(0.35)) {
      // Wildcard: ignore some or all bits.
      const std::uint64_t masks[] = {0x1, 0x3, 0x7, ~0ull};
      a.ibits = masks[rng.below(4)];
    }
    a.before = rng.chance(0.25);
    a.use_once = rng.chance(0.3);
    a.with_md = rng.chance(0.85);
    const std::uint32_t lens[] = {0, 8, 32, 64};
    a.md_len = lens[rng.below(4)];
    a.md_opts = PTL_MD_OP_PUT;
    if (rng.chance(0.5)) a.md_opts |= PTL_MD_OP_GET;
    if (rng.chance(0.6)) a.md_opts |= PTL_MD_TRUNCATE;
    if (rng.chance(0.2)) a.md_opts |= PTL_MD_MANAGE_REMOTE;
    if (a.use_once) {
      a.threshold = 1;
    } else if (rng.chance(0.25)) {
      a.threshold = 1 + static_cast<int>(rng.below(3));
    }
    a.base = rng.below(40);
    a.len = lens[rng.below(4)];
    a.roffset = rng.chance(0.2) ? 48 : 0;
    a.narrow_src = rng.chance(0.15);
    a.dep = rng.below(8);
    plan.push_back(a);
  }
  return plan;
}

// ---------------------------------------------------------- execution ----

/// Per-library plan state: attached-ME history and in-flight deliveries.
struct RunState {
  std::vector<MeHandle> mes;
  struct Pending {
    std::uint64_t token;
    bool is_get;
  };
  std::vector<Pending> pending;
};

/// Applies one action; returns a compact digest of everything observable.
std::string apply(Proc& p, RunState& st, const Action& a) {
  std::string digest;
  switch (a.kind) {
    case Action::Kind::kAttach:
    case Action::Kind::kInsert: {
      const ProcessId src = a.narrow_src ? ProcessId{1, 2}
                                         : ProcessId{kNidAny, kPidAny};
      const Unlink ul = a.use_once ? Unlink::kUnlink : Unlink::kRetain;
      MeHandle h;
      int rc;
      if (a.kind == Action::Kind::kAttach || st.mes.empty()) {
        rc = p.lib.me_attach(kPt, src, a.mbits, a.ibits, ul,
                             a.before ? InsPos::kBefore : InsPos::kAfter, &h);
      } else {
        const MeHandle base = st.mes[a.base % st.mes.size()];
        rc = p.lib.me_insert(base, src, a.mbits, a.ibits, ul,
                             a.before ? InsPos::kBefore : InsPos::kAfter, &h);
      }
      digest += sim::strf("rc=%d ", rc);
      if (rc != PTL_OK) break;
      st.mes.push_back(h);
      if (a.with_md) {
        MdDesc d;
        d.start = 256;
        d.length = a.md_len;
        d.options = a.md_opts;
        d.eq = p.eq;
        d.threshold = a.threshold;
        MdHandle mdh;
        const int mrc =
            p.lib.md_attach(h, d, a.use_once ? Unlink::kUnlink
                                             : Unlink::kRetain, &mdh);
        digest += sim::strf("mdrc=%d ", mrc);
      }
      break;
    }
    case Action::Kind::kUnlink: {
      if (st.mes.empty()) break;
      const int rc = p.lib.me_unlink(st.mes[a.base % st.mes.size()]);
      digest += sim::strf("rc=%d ", rc);
      break;
    }
    case Action::Kind::kPut: {
      const WireHeader hdr = make_hdr(false, a.mbits, a.len, a.roffset);
      const Library::RxDecision d = p.lib.on_put_header(hdr);
      digest += sim::strf("del=%d mlen=%u walked=%zu eqless=%d segs=%zu ",
                          d.deliver ? 1 : 0, d.mlength, d.entries_walked,
                          d.eqless ? 1 : 0, d.segments.size());
      for (const IoVec& v : d.segments) {
        digest += sim::strf("[%llu+%u]", (unsigned long long)v.start,
                            v.length);
      }
      if (d.deliver) st.pending.push_back({d.token, false});
      break;
    }
    case Action::Kind::kGet: {
      const WireHeader hdr = make_hdr(true, a.mbits, a.len, a.roffset);
      const Library::GetDecision d = p.lib.on_get_header(hdr);
      digest += sim::strf("del=%d mlen=%u walked=%zu rlen=%u ",
                          d.deliver ? 1 : 0, d.mlength, d.entries_walked,
                          d.reply_header.length);
      if (d.deliver) st.pending.push_back({d.token, true});
      break;
    }
    case Action::Kind::kDeposit: {
      if (st.pending.empty()) break;
      const std::size_t k = a.dep % st.pending.size();
      const RunState::Pending pe = st.pending[k];
      st.pending.erase(st.pending.begin() +
                       static_cast<std::ptrdiff_t>(k));
      if (pe.is_get) {
        p.lib.reply_sent(pe.token);
        digest += "reply ";
      } else {
        const auto ack = p.lib.deposited(pe.token);
        digest += sim::strf("ack=%d ", ack.has_value() ? 1 : 0);
      }
      break;
    }
  }
  // Fold in the externally visible aftermath: every event posted plus the
  // status registers.  Use-once retirement, auto-unlink and truncation
  // all surface here.
  Event ev;
  int rc;
  while ((rc = p.lib.eq_get(p.eq, &ev)) != PTL_EQ_EMPTY) {
    digest += sim::strf(
        "ev(%s seq=%llu mb=%llu rlen=%llu mlen=%llu off=%llu fail=%d) ",
        event_type_str(ev.type), (unsigned long long)ev.sequence,
        (unsigned long long)ev.match_bits, (unsigned long long)ev.rlength,
        (unsigned long long)ev.mlength, (unsigned long long)ev.offset,
        ev.ni_fail);
  }
  digest += sim::strf("drops=%llu recv=%llu",
                      (unsigned long long)p.lib.status(SrIndex::kDropCount),
                      (unsigned long long)
                          p.lib.status(SrIndex::kMessagesReceived));
  return digest;
}

/// Twin run: linear vs indexed.  Returns a divergence description, empty
/// when the run agrees action-for-action.
std::string run_twin(const std::vector<Action>& plan) {
  Proc ref(MatchMode::kLinear);
  Proc idx(MatchMode::kIndexed);
  RunState ref_st, idx_st;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const std::string a = apply(ref, ref_st, plan[i]);
    const std::string b = apply(idx, idx_st, plan[i]);
    if (a != b) {
      return sim::strf("action %zu (%s): linear{%s} vs indexed{%s}", i,
                       kind_str(plan[i].kind), a.c_str(), b.c_str());
    }
  }
  return {};
}

/// Greedy shrink: drop one action at a time while the divergence remains.
std::vector<Action> shrink(std::vector<Action> plan) {
  bool shrunk = true;
  while (shrunk && !plan.empty()) {
    shrunk = false;
    for (std::size_t k = 0; k < plan.size(); ++k) {
      std::vector<Action> cand = plan;
      cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(k));
      if (!run_twin(cand).empty()) {
        plan = std::move(cand);
        shrunk = true;
        break;
      }
    }
  }
  return plan;
}

// ------------------------------------------------------------ property ----

TEST(MatchDifferential, TenThousandSeededTrials) {
  for (std::uint64_t seed = 1; seed <= 10000; ++seed) {
    const std::vector<Action> plan = derive_plan(seed);
    const std::string diverged = run_twin(plan);
    if (!diverged.empty()) {
      const std::vector<Action> minimal = shrink(plan);
      FAIL() << "seed " << seed << ": " << diverged
             << "\nminimal repro (" << minimal.size()
             << " actions): " << plan_str(minimal)
             << "\nre-run: run_twin(derive_plan(" << seed << "))";
    }
  }
}

TEST(MatchDifferential, ShadowRigAgreesOnSeededTrials) {
  // The same plans through the kShadow library: its internal check runs
  // both matchers on every decision.  One hundred plans suffice here —
  // the full 10k already ran twin-mode above, and CI additionally runs
  // the entire tier-1 suite under XT_SHADOW_MATCH=1.
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Proc p(MatchMode::kShadow);
    p.lib.set_shadow_abort(false);
    RunState st;
    for (const Action& a : derive_plan(seed)) apply(p, st, a);
    EXPECT_EQ(p.lib.shadow_mismatches(), 0u)
        << "seed " << seed << ": " << p.lib.shadow_report();
  }
}

TEST(MatchDifferential, ShadowRigDetectsADivergence) {
  // The rig must actually be able to fire: force a mismatch by feeding a
  // header the two matchers see differently.  There is no legal way to do
  // that through the API (that is the whole point), so instead check the
  // reporting plumbing end to end on a healthy run: zero mismatches, an
  // empty report, and abort disabled.
  Proc p(MatchMode::kShadow);
  p.lib.set_shadow_abort(false);
  RunState st;
  Action attach;
  attach.kind = Action::Kind::kAttach;
  attach.mbits = 5;
  apply(p, st, attach);
  Action put;
  put.kind = Action::Kind::kPut;
  put.mbits = 5;
  apply(p, st, put);
  EXPECT_EQ(p.lib.shadow_mismatches(), 0u);
  EXPECT_TRUE(p.lib.shadow_report().empty());
  EXPECT_EQ(p.lib.match_mode(), MatchMode::kShadow);
}

// ---------------------------------------------------------- regressions ----

/// Fixture running every scripted regression on all three modes.
class MatchModes : public ::testing::TestWithParam<MatchMode> {};

INSTANTIATE_TEST_SUITE_P(AllModes, MatchModes,
                         ::testing::Values(MatchMode::kLinear,
                                           MatchMode::kIndexed,
                                           MatchMode::kShadow));

MeHandle attach_me(Proc& p, MatchBits mb, MatchBits ib = 0,
                   InsPos pos = InsPos::kAfter,
                   Unlink ul = Unlink::kRetain) {
  MeHandle h;
  EXPECT_EQ(p.lib.me_attach(kPt, ProcessId{kNidAny, kPidAny}, mb, ib, ul,
                            pos, &h),
            PTL_OK);
  return h;
}

MdHandle md_on(Proc& p, MeHandle me, std::uint32_t len = 64,
               unsigned opts = PTL_MD_OP_PUT | PTL_MD_OP_GET |
                               PTL_MD_TRUNCATE,
               int threshold = PTL_MD_THRESH_INF,
               Unlink ul = Unlink::kRetain) {
  MdDesc d;
  d.start = 256;
  d.length = len;
  d.options = opts;
  d.eq = p.eq;
  d.threshold = threshold;
  MdHandle h;
  EXPECT_EQ(p.lib.md_attach(me, d, ul, &h), PTL_OK);
  return h;
}

/// Delivers one put and returns which walked position accepted it.
std::size_t put_walked(Proc& p, MatchBits mb, std::uint32_t len = 8) {
  const Library::RxDecision d =
      p.lib.on_put_header(make_hdr(false, mb, len, 0));
  EXPECT_TRUE(d.deliver);
  if (d.deliver) p.lib.deposited(d.token);
  return d.entries_walked;
}

// The latent insertion-order hazard the rig is meant to guard: an ME with
// the same match bits appended while an earlier same-key match is still
// in flight (header accepted, deposit pending) must take its place AFTER
// the existing entries — the in-flight state must not perturb attach
// order.
TEST_P(MatchModes, EqualBitsAppendWhileMatchInFlight) {
  Proc p(GetParam());
  const MeHandle a = attach_me(p, 7, 0, InsPos::kAfter, Unlink::kUnlink);
  md_on(p, a, 64, PTL_MD_OP_PUT | PTL_MD_TRUNCATE, /*threshold=*/1,
        Unlink::kUnlink);

  // First put matches A; its deposit stays in flight.
  const Library::RxDecision d1 =
      p.lib.on_put_header(make_hdr(false, 7, 8, 0));
  ASSERT_TRUE(d1.deliver);
  EXPECT_EQ(d1.entries_walked, 1u);

  // While in flight, append B then C with the same bits.
  const MeHandle b = attach_me(p, 7);
  md_on(p, b);
  const MeHandle c = attach_me(p, 7);
  md_on(p, c);

  // A is exhausted (use-once, threshold 1): the next put must match B —
  // the FIRST of the appended entries, in attach order.
  const Library::RxDecision d2 =
      p.lib.on_put_header(make_hdr(false, 7, 8, 0));
  ASSERT_TRUE(d2.deliver);
  EXPECT_EQ(d2.entries_walked, 2u);  // position of B: after the dead-ish A

  // Retire the in-flight deposits; A auto-unlinks with its MD.
  p.lib.deposited(d1.token);
  p.lib.deposited(d2.token);

  // B still precedes C afterwards.
  const Library::RxDecision d3 =
      p.lib.on_put_header(make_hdr(false, 7, 8, 0));
  ASSERT_TRUE(d3.deliver);
  EXPECT_EQ(d3.entries_walked, 1u);  // A unlinked: B is now at the head
  p.lib.deposited(d3.token);
  EXPECT_EQ(p.lib.me_unlink(a), PTL_ME_INVALID);  // really gone
}

// Use-once repost: consuming a use-once entry then reposting an equal-bits
// entry must append it after the survivors, never re-head it.
TEST_P(MatchModes, UseOnceRepostOrdering) {
  Proc p(GetParam());
  const MeHandle a = attach_me(p, 5, 0, InsPos::kAfter, Unlink::kUnlink);
  md_on(p, a, 64, PTL_MD_OP_PUT | PTL_MD_TRUNCATE, 1, Unlink::kUnlink);
  const MeHandle b = attach_me(p, 5);
  md_on(p, b);

  EXPECT_EQ(put_walked(p, 5), 1u);  // consumes A, which auto-unlinks

  // Repost with the same bits (the MPI pre-posted receive idiom).
  const MeHandle c = attach_me(p, 5);
  md_on(p, c);

  EXPECT_EQ(put_walked(p, 5), 1u);  // B (now head), not the fresh C
  EXPECT_EQ(put_walked(p, 5), 1u);  // B persists (infinite threshold)
  EXPECT_EQ(p.lib.me_unlink(b), PTL_OK);
  EXPECT_EQ(put_walked(p, 5), 1u);  // now C
  (void)c;
}

TEST_P(MatchModes, WildcardAndExactInterleaveInListOrder) {
  Proc p(GetParam());
  // exact(1), wildcard(all, use-once), exact(3) — first in list order
  // wins, and the wildcard sits at an interior position between two
  // exact-keyed entries.
  const MeHandle a = attach_me(p, 1);
  md_on(p, a);
  const MeHandle w = attach_me(p, 0, ~0ull, InsPos::kAfter, Unlink::kUnlink);
  md_on(p, w, 64, PTL_MD_OP_PUT | PTL_MD_TRUNCATE, 1, Unlink::kUnlink);
  const MeHandle e = attach_me(p, 3);
  md_on(p, e);

  // Key 3 skips the non-matching exact(1) head and hits the wildcard.
  EXPECT_EQ(put_walked(p, 3), 2u);
  // The use-once wildcard unlinked: the same key now reaches exact(3).
  EXPECT_EQ(put_walked(p, 3), 2u);  // list is a, e
  // The wildcard is gone for every key, not just the bucketed one.
  const Library::RxDecision miss =
      p.lib.on_put_header(make_hdr(false, 9, 8, 0));
  EXPECT_FALSE(miss.deliver);
  EXPECT_EQ(miss.entries_walked, 2u);
  // Exact(1) at the head still matches its own key first.
  EXPECT_EQ(put_walked(p, 1), 1u);
  (void)a; (void)w; (void)e;
}

TEST_P(MatchModes, HeadInsertPrecedesAndMidUnlinkRelinks) {
  Proc p(GetParam());
  const MeHandle a = attach_me(p, 2);
  md_on(p, a);
  const MeHandle h = attach_me(p, 2, 0, InsPos::kBefore);  // new head
  md_on(p, h);
  const MeHandle t = attach_me(p, 2);  // tail
  md_on(p, t);
  // List: h, a, t.
  EXPECT_EQ(put_walked(p, 2), 1u);  // h
  EXPECT_EQ(p.lib.me_unlink(h), PTL_OK);
  EXPECT_EQ(put_walked(p, 2), 1u);  // a
  EXPECT_EQ(p.lib.me_unlink(a), PTL_OK);
  EXPECT_EQ(put_walked(p, 2), 1u);  // t
}

TEST_P(MatchModes, NonTruncatingFullMdFallsThrough) {
  Proc p(GetParam());
  const MeHandle a = attach_me(p, 6);
  md_on(p, a, /*len=*/16, PTL_MD_OP_PUT, PTL_MD_THRESH_INF);  // no TRUNCATE
  const MeHandle b = attach_me(p, 6);
  md_on(p, b, /*len=*/64, PTL_MD_OP_PUT | PTL_MD_TRUNCATE);

  // 32 bytes exceed A's 16-byte MD; without TRUNCATE the walk must fall
  // through to B.
  const Library::RxDecision d =
      p.lib.on_put_header(make_hdr(false, 6, 32, 0));
  ASSERT_TRUE(d.deliver);
  EXPECT_EQ(d.entries_walked, 2u);
  EXPECT_EQ(d.mlength, 32u);
  p.lib.deposited(d.token);
}

TEST_P(MatchModes, MdlessMeIsSkippedButWalked) {
  Proc p(GetParam());
  attach_me(p, 1);  // no MD: matching but never accepting
  const MeHandle b = attach_me(p, 1);
  md_on(p, b);
  EXPECT_EQ(put_walked(p, 1), 2u);
}

// Label-maintenance stress: repeated me_insert between the same two
// neighbors exhausts the label gap and forces a portal-wide relabel; the
// list order (and the indexed matcher's view of it) must survive.
TEST_P(MatchModes, RepeatedMidInsertForcesRelabel) {
  Proc p(GetParam());
  const MeHandle first = attach_me(p, 9, 0, InsPos::kAfter, Unlink::kUnlink);
  md_on(p, first, 64, PTL_MD_OP_PUT | PTL_MD_TRUNCATE, 1, Unlink::kUnlink);
  attach_me(p, 9);  // tail anchor, no MD

  // 40 inserts right after `first`: each halves the remaining gap, so a
  // relabel must occur (the initial gap is 2^20).  The LAST insert ends up
  // closest to `first`, so consumption order is first, then reverse
  // insert order.
  std::vector<MeHandle> inserted;
  for (int i = 0; i < 40; ++i) {
    MeHandle h;
    ASSERT_EQ(p.lib.me_insert(first, ProcessId{kNidAny, kPidAny}, 9, 0,
                              Unlink::kUnlink, InsPos::kAfter, &h),
              PTL_OK);
    MdDesc d;
    d.start = 256;
    d.length = 64;
    d.options = PTL_MD_OP_PUT | PTL_MD_TRUNCATE;
    d.eq = p.eq;
    d.threshold = 1;
    MdHandle mdh;
    ASSERT_EQ(p.lib.md_attach(h, d, Unlink::kUnlink, &mdh), PTL_OK);
    inserted.push_back(h);
  }
  EXPECT_EQ(put_walked(p, 9), 1u);  // `first`
  for (int i = 0; i < 40; ++i) {
    // Each survivor sits at position 1 once its predecessors retire.
    EXPECT_EQ(put_walked(p, 9), 1u) << "insert #" << i;
  }
  // All 40 use-once inserts are gone; only the MD-less anchor remains.
  const Library::RxDecision miss =
      p.lib.on_put_header(make_hdr(false, 9, 8, 0));
  EXPECT_FALSE(miss.deliver);
  EXPECT_EQ(miss.entries_walked, 1u);
}

// Exact-bucket lifecycle: unlinking every ME of a key then reusing the key
// must behave like a fresh list (the bucket is retired and rebuilt).
TEST_P(MatchModes, BucketRetireAndReuse) {
  Proc p(GetParam());
  for (int round = 0; round < 3; ++round) {
    const MeHandle a = attach_me(p, 11);
    md_on(p, a);
    const MeHandle b = attach_me(p, 11);
    md_on(p, b);
    EXPECT_EQ(put_walked(p, 11), 1u);
    EXPECT_EQ(p.lib.me_unlink(a), PTL_OK);
    EXPECT_EQ(put_walked(p, 11), 1u);
    EXPECT_EQ(p.lib.me_unlink(b), PTL_OK);
    const Library::RxDecision miss =
        p.lib.on_put_header(make_hdr(false, 11, 8, 0));
    EXPECT_FALSE(miss.deliver);
    EXPECT_EQ(miss.entries_walked, 0u);
  }
}

TEST_P(MatchModes, NiFiniThenReinitYieldsCleanIndex) {
  Proc p(GetParam());
  const MeHandle a = attach_me(p, 4);
  md_on(p, a);
  EXPECT_EQ(put_walked(p, 4), 1u);
  EXPECT_EQ(p.lib.ni_fini(), PTL_OK);
  EXPECT_EQ(p.lib.ni_init(Limits{}, nullptr), PTL_OK);
  EqHandle eq2;
  ASSERT_EQ(p.lib.eq_alloc(64, &eq2), PTL_OK);
  p.eq = eq2;
  const Library::RxDecision miss =
      p.lib.on_put_header(make_hdr(false, 4, 8, 0));
  EXPECT_FALSE(miss.deliver);
  const MeHandle b = attach_me(p, 4);
  md_on(p, b);
  EXPECT_EQ(put_walked(p, 4), 1u);
}

}  // namespace
}  // namespace xt::ptl
