// Unit tests for the firmware substrate: wire format, SRAM accounting,
// source table, event queue, and firmware-level behaviours (panic policy,
// go-back-n recovery) driven through small machines.

#include <gtest/gtest.h>

#include <vector>

#include "firmware/fw_event_queue.hpp"
#include "firmware/source_table.hpp"
#include "host/node.hpp"
#include "portals/api.hpp"
#include "portals/wire.hpp"
#include "seastar/sram.hpp"

namespace xt {
namespace {

using ptl::AckReq;
using ptl::EventType;
using ptl::InsPos;
using ptl::MdDesc;
using ptl::ProcessId;
using ptl::Unlink;
using ptl::WireHeader;
using ptl::WireOp;
using sim::CoTask;

// ---------------------------------------------------------------- wire ----

TEST(Wire, PackUnpackRoundTrip) {
  WireHeader h;
  h.op = WireOp::kGet;
  h.ack_req = ptl::AckReq::kAck;
  h.src_nid = 0xDEADBEEF;
  h.src_pid = 0x1234;
  h.dst_pid = 0x5678;
  h.pt_index = 63;
  h.ac_index = 15;
  h.match_bits = 0x0123456789ABCDEFull;
  h.remote_offset = 0xFEDCBA9876543210ull;
  h.length = 0x7FFFFFFF;
  h.hdr_data = 0x1122334455667788ull;
  h.md_id = 0xAABBCCDD;
  h.md_gen = 0x99887766;
  h.stream_seq = 0x31415926;
  std::array<std::byte, ptl::kWireHeaderBytes> buf{};
  ptl::pack_header(h, buf);
  EXPECT_EQ(ptl::unpack_header(buf), h);
}

TEST(Wire, HeaderLeavesExactlyTwelveInlineBytes) {
  // The paper's magic number: 64-byte packet minus the Portals header.
  EXPECT_EQ(ptl::kHeaderPacketBytes, 64u);
  EXPECT_EQ(ptl::kWireHeaderBytes, 52u);
  EXPECT_EQ(ptl::kMaxInlineBytes, 12u);
}

TEST(Wire, InlinePayloadRoundTrip) {
  WireHeader h;
  h.length = 9;
  std::vector<std::byte> data(9);
  for (std::size_t i = 0; i < 9; ++i) data[i] = static_cast<std::byte>(i * 3);
  const auto pkt = ptl::make_header_packet(h, data);
  const auto got = ptl::inline_payload_of(pkt);
  ASSERT_EQ(got.size(), 9u);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), data.begin()));
}

TEST(Wire, InlinePayloadClampedToCapacity) {
  WireHeader h;
  h.length = 1000;  // body travels separately; packet holds none of it
  const auto pkt = ptl::make_header_packet(h, {});
  EXPECT_EQ(ptl::inline_payload_of(pkt).size(), ptl::kMaxInlineBytes);
}

// ---------------------------------------------------------------- SRAM ----

TEST(Sram, ReserveAndRelease) {
  ss::Sram sram(1000);
  {
    auto r1 = sram.reserve("a", 400);
    EXPECT_EQ(sram.used(), 400u);
    auto r2 = sram.reserve("b", 500);
    EXPECT_EQ(sram.used(), 900u);
    EXPECT_EQ(sram.free_bytes(), 100u);
    EXPECT_EQ(sram.table().size(), 2u);
  }
  EXPECT_EQ(sram.used(), 0u);  // RAII released
  EXPECT_EQ(sram.peak(), 900u);
}

TEST(Sram, OverBudgetThrows) {
  ss::Sram sram(100);
  auto r = sram.reserve("x", 90);
  EXPECT_THROW((void)sram.reserve("y", 11), std::length_error);
  EXPECT_NO_THROW((void)sram.reserve("z", 10));
}

TEST(Sram, MoveTransfersOwnership) {
  ss::Sram sram(100);
  ss::Sram::Region outer;
  {
    auto r = sram.reserve("m", 50);
    outer = std::move(r);
  }
  EXPECT_EQ(sram.used(), 50u);  // still held by `outer`
}

TEST(Sram, SeaStarBudgetFitsPaperConfiguration) {
  // 1,024 sources + 1,274 pendings + control block + 22 KB image must fit
  // comfortably in 384 KB (§4.2).
  const ss::Config cfg;
  ss::Sram sram(cfg.sram_bytes);
  auto a = sram.reserve("cb", cfg.control_block_bytes);
  auto b = sram.reserve("sources", cfg.n_sources * cfg.source_bytes);
  auto c = sram.reserve("image", cfg.fw_image_bytes);
  auto d = sram.reserve(
      "pendings", (cfg.n_generic_rx_pendings + cfg.n_generic_tx_pendings) *
                      cfg.lower_pending_bytes);
  EXPECT_LT(sram.used(), sram.capacity() / 2);  // "several more" pools fit
}

// --------------------------------------------------------- SourceTable ----

TEST(SourceTable, LookupAllocatesOnce) {
  fw::SourceTable t(8);
  auto* a = t.lookup_or_alloc(42);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(t.in_use(), 1u);
  EXPECT_EQ(t.lookup_or_alloc(42), a);
  EXPECT_EQ(t.in_use(), 1u);
  EXPECT_EQ(t.lookup(42), a);
  EXPECT_EQ(t.lookup(43), nullptr);
}

TEST(SourceTable, ExhaustionReturnsNull) {
  fw::SourceTable t(3);
  EXPECT_NE(t.lookup_or_alloc(1), nullptr);
  EXPECT_NE(t.lookup_or_alloc(2), nullptr);
  EXPECT_NE(t.lookup_or_alloc(3), nullptr);
  EXPECT_EQ(t.lookup_or_alloc(4), nullptr);  // pool exhausted (§4.3)
  EXPECT_NE(t.lookup_or_alloc(2), nullptr);  // existing still found
}

TEST(SourceTable, ManyNodesNoCollisionLoss) {
  fw::SourceTable t(1024);  // the Red Storm configuration
  for (net::NodeId n = 0; n < 1024; ++n) {
    ASSERT_NE(t.lookup_or_alloc(n * 7919), nullptr) << n;
  }
  EXPECT_EQ(t.in_use(), 1024u);
  for (net::NodeId n = 0; n < 1024; ++n) {
    ASSERT_NE(t.lookup(n * 7919), nullptr);
  }
}

// --------------------------------------------------------- FwEventQueue ----

TEST(FwEventQueue, FifoAndOverflow) {
  sim::Engine eng;
  fw::FwEventQueue q(eng, 2);
  EXPECT_TRUE(q.post(fw::FwEvent{fw::FwEvent::Type::kTxComplete, 1}));
  EXPECT_TRUE(q.post(fw::FwEvent{fw::FwEvent::Type::kRxHeader, 2}));
  EXPECT_FALSE(q.post(fw::FwEvent{fw::FwEvent::Type::kRxComplete, 3}));
  EXPECT_EQ(q.dropped(), 1u);
  auto a = q.poll();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->pending, 1);
  EXPECT_EQ(q.poll()->pending, 2);
  EXPECT_FALSE(q.poll().has_value());
}

TEST(FwEventQueue, PostWakesWaiters) {
  sim::Engine eng;
  fw::FwEventQueue q(eng, 8);
  bool woke = false;
  sim::spawn([](fw::FwEventQueue& qq, bool* out) -> CoTask<void> {
    co_await qq.waiters().wait();
    *out = true;
  }(q, &woke));
  eng.run();
  EXPECT_FALSE(woke);
  q.post(fw::FwEvent{});
  eng.run();
  EXPECT_TRUE(woke);
}

// ------------------------------------------------- firmware behaviours ----

/// Floods a 2-node machine with `n` puts from node 0 to node 1.
struct Flood {
  explicit Flood(ss::Config cfg, int n, std::uint32_t bytes = 512)
      : m(net::Shape::xt3(2, 1, 1), cfg) {
    host::Process& rx = m.node(1).spawn_process(7, 32u << 20);
    host::Process& tx = m.node(0).spawn_process(7, 32u << 20);
    const std::uint64_t rbuf = rx.alloc(1u << 20);
    sim::spawn([](host::Process& p, std::uint64_t buf, int total,
                  int* count) -> CoTask<void> {
      auto& api = p.api();
      auto eq = co_await api.PtlEQAlloc(8192);
      auto me = co_await api.PtlMEAttach(
          0, ProcessId{ptl::kNidAny, ptl::kPidAny}, 1, 0, Unlink::kRetain,
          InsPos::kAfter);
      MdDesc d;
      d.start = buf;
      d.length = 1u << 20;
      d.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE |
                  ptl::PTL_MD_TRUNCATE;
      d.eq = eq.value;
      (void)co_await api.PtlMDAttach(me.value, d, Unlink::kRetain);
      while (*count < total) {
        auto ev = co_await api.PtlEQWait(eq.value);
        if (ev.rc != ptl::PTL_OK && ev.rc != ptl::PTL_EQ_DROPPED) co_return;
        // Count only successful deliveries (CRC-dropped messages arrive as
        // PUT_END with ni_fail set).
        if (ev.value.type == EventType::kPutEnd &&
            ev.value.ni_fail == ptl::PTL_NI_OK) {
          ++*count;
        }
      }
    }(rx, rbuf, n, &delivered));
    sim::spawn([](host::Process& p, int total,
                  std::uint32_t len) -> CoTask<void> {
      auto& api = p.api();
      auto eq = co_await api.PtlEQAlloc(8192);
      MdDesc d;
      d.start = p.alloc(len);
      d.length = len;
      d.eq = eq.value;
      auto md = co_await api.PtlMDBind(d, Unlink::kRetain);
      for (int i = 0; i < total; ++i) {
        (void)co_await api.PtlPut(md.value, AckReq::kNone, ProcessId{1, 7},
                                  0, 0, 1, 0, 0);
      }
      int sent = 0;
      while (sent < total) {
        auto ev = co_await api.PtlEQWait(eq.value);
        if (ev.rc != ptl::PTL_OK) co_return;
        if (ev.value.type == EventType::kSendEnd) ++sent;
      }
    }(tx, n, bytes));
    m.run();
  }
  host::Machine m;
  int delivered = 0;
};

TEST(FirmwareExhaustion, DefaultPolicyPanicsTheNode) {
  ss::Config cfg;
  cfg.n_generic_rx_pendings = 2;  // starve
  Flood f(cfg, 50);
  EXPECT_TRUE(f.m.node(1).firmware().panicked());
  EXPECT_LT(f.delivered, 50);
}

TEST(FirmwareExhaustion, GoBackNDeliversEverything) {
  ss::Config cfg;
  cfg.n_generic_rx_pendings = 2;
  cfg.gobackn = true;
  Flood f(cfg, 50);
  EXPECT_FALSE(f.m.node(1).firmware().panicked());
  EXPECT_EQ(f.delivered, 50);
  EXPECT_GT(f.m.node(1).firmware().counters().nacks_sent, 0u);
  EXPECT_GT(f.m.node(0).firmware().counters().retransmits, 0u);
  // Duplicates never surfaced to the application: delivered == sent.
}

TEST(FirmwareExhaustion, GoBackNIdleWhenResourcesSuffice) {
  ss::Config cfg;
  cfg.gobackn = true;  // protocol armed but resources are plentiful
  Flood f(cfg, 50);
  EXPECT_EQ(f.delivered, 50);
  EXPECT_EQ(f.m.node(1).firmware().counters().nacks_sent, 0u);
  EXPECT_EQ(f.m.node(0).firmware().counters().retransmits, 0u);
}

TEST(FirmwareCounters, TrackMessageFlow) {
  Flood f(ss::Config{}, 10, 2048);
  const auto& tx = f.m.node(0).firmware().counters();
  const auto& rx = f.m.node(1).firmware().counters();
  EXPECT_EQ(tx.tx_cmds, 10u);
  EXPECT_EQ(tx.tx_msgs, 10u);
  EXPECT_EQ(rx.rx_headers, 10u);
  EXPECT_EQ(rx.rx_completions, 10u);
  EXPECT_EQ(rx.rx_cmds, 10u);     // one receive command per body message
  EXPECT_EQ(rx.releases, 10u);    // every pending returned
  EXPECT_EQ(rx.inline_deliveries, 0u);
  EXPECT_EQ(f.m.node(1).firmware().sources_in_use(), 1u);
}

TEST(FirmwareCounters, InlineCountsSmallMessages) {
  Flood f(ss::Config{}, 10, 8);
  EXPECT_EQ(f.m.node(1).firmware().counters().inline_deliveries, 10u);
  EXPECT_EQ(f.m.node(1).firmware().counters().rx_cmds, 0u);  // no body
}

TEST(FirmwareCrc, InjectedCorruptionIsDroppedNotDelivered) {
  ss::Config cfg;
  cfg.net.link.undetected_corrupt_prob = 0.3;  // slips past the link CRC
  Flood f(cfg, 30, 2048);
  const auto& rx = f.m.node(1).firmware().counters();
  EXPECT_GT(rx.crc_drops, 0u);                       // e2e CRC caught them
  EXPECT_LT(f.delivered, 30);                        // dropped, not delivered
  EXPECT_EQ(f.m.node(1).nic().crc_drops(), rx.crc_drops);
  EXPECT_FALSE(f.m.node(1).firmware().panicked());   // graceful
}

TEST(FirmwareCrc, LinkRetriesDelayButDeliver) {
  ss::Config cfg;
  cfg.net.link.pkt_corrupt_prob = 0.02;  // caught by the link CRC-16
  Flood f(cfg, 30, 4096);
  EXPECT_EQ(f.delivered, 30);  // retries make the link lossless
  EXPECT_GT(f.m.network().total_retries(), 0u);
}

}  // namespace
}  // namespace xt
