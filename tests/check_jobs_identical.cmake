# Runs the scenario fuzzer serially and with a worker pool and fails unless
# both produce byte-identical stdout — the determinism contract reproducer
# lines depend on.  Invoked by ctest (see tests/CMakeLists.txt).
foreach(var FUZZ SEEDS)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

execute_process(COMMAND ${FUZZ} --seeds ${SEEDS} --jobs 1
  OUTPUT_VARIABLE serial RESULT_VARIABLE rc1)
execute_process(COMMAND ${FUZZ} --seeds ${SEEDS} --jobs 4
  OUTPUT_VARIABLE parallel RESULT_VARIABLE rc2)

if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
  message(FATAL_ERROR
    "fuzz_scenarios failed (serial rc=${rc1}, parallel rc=${rc2}):\n"
    "${serial}\n---\n${parallel}")
endif()
if(NOT serial STREQUAL parallel)
  message(FATAL_ERROR
    "fuzz output differs between --jobs 1 and --jobs 4:\n"
    "${serial}\n---\n${parallel}")
endif()
