// Transport-seam conformance suite (ISSUE 6 satellite).
//
// Part 1 is table-driven over both backends: a TransportRig abstracts
// "build a 2-node fabric, send messages from node 0, pump until node 1 has
// them", and every conformance test runs once per backend.  The contracts
// checked are the ones the firmware relies on:
//   * header/complete milestone pairing (on_complete follows on_header,
//     immediately for payload-less messages);
//   * payload bytes and the sealed e2e CRC arrive intact;
//   * (src, dst) injection order is delivery order;
//   * sequence numbers are unique — across sources too (the firmware's rx
//     maps are keyed by seq machine-wide);
//   * shape()/chunk_size() are sane for distance/DMA computations.
//
// Part 2 exercises the live stack: real rank threads over UDP loopback
// running Portals ping-pong and a 4-rank mini-MPI allreduce, with and
// without injected datagram loss (go-back-n must recover every drop).

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "conduit/selftest.hpp"
#include "net/crc.hpp"
#include "net/network.hpp"
#include "netpipe/live.hpp"
#include "transport/sim_transport.hpp"
#include "transport/transport.hpp"
#include "transport/udp_transport.hpp"
#include "workload/live.hpp"

namespace xt::transport {
namespace {

class RecordingEndpoint final : public net::Endpoint {
 public:
  void on_header(const net::MessagePtr& m) override { headers.push_back(m); }
  void on_complete(const net::MessagePtr& m) override {
    completes.push_back(m);
  }
  std::vector<net::MessagePtr> headers;
  std::vector<net::MessagePtr> completes;
};

/// Backend-agnostic 2-node rig.  `sender(node)` is the injection surface
/// for that node; pump() runs whatever the backend needs for in-flight
/// messages to reach the endpoints.
class TransportRig {
 public:
  virtual ~TransportRig() = default;
  virtual Transport& sender(int node) = 0;
  virtual void pump() = 0;
  RecordingEndpoint ep[2];
};

class SimRig final : public TransportRig {
 public:
  SimRig()
      : net_(eng_, net::Shape::xt3(2, 1, 1), net::NetConfig{}), tp_(net_) {
    tp_.attach(0, ep[0]);
    tp_.attach(1, ep[1]);
  }
  Transport& sender(int) override { return tp_; }
  void pump() override { eng_.run(); }

 private:
  sim::Engine eng_;
  net::Network net_;
  SimTransport tp_;
};

class UdpRig final : public TransportRig {
 public:
  explicit UdpRig(double drop_rate = 0.0) : fabric_(2, make_cfg(drop_rate)) {
    const net::Shape shape = net::Shape::xt3(2, 1, 1);
    for (int n = 0; n < 2; ++n) {
      tp_[n] = std::make_unique<UdpTransport>(eng_[n], fabric_,
                                              static_cast<net::NodeId>(n),
                                              shape, make_cfg(drop_rate));
      tp_[n]->attach(static_cast<net::NodeId>(n), ep[n]);
    }
  }
  Transport& sender(int node) override { return *tp_[node]; }
  UdpTransport& udp(int node) { return *tp_[node]; }
  void pump() override {
    // Single-threaded pumping is fine for tests: sockets are non-blocking
    // and loopback delivery needs no concurrent reader.
    for (int spin = 0; spin < 50; ++spin) {
      int got = 0;
      for (auto& t : tp_) got += t->poll();
      if (got == 0 && spin > 2) break;
      tp_[0]->wait_readable(1);
    }
  }

 private:
  static UdpConfig make_cfg(double drop_rate) {
    UdpConfig c;
    c.drop_rate = drop_rate;
    c.frag_bytes = 8 * 1024;  // small, so multi-fragment paths are hit
    c.chunk_size = 8 * 1024;
    return c;
  }
  sim::Engine eng_[2];
  UdpFabric fabric_;
  std::unique_ptr<UdpTransport> tp_[2];
};

enum class Backend { kSim, kUdp };

std::unique_ptr<TransportRig> make_rig(Backend b) {
  if (b == Backend::kSim) return std::make_unique<SimRig>();
  return std::make_unique<UdpRig>();
}

net::MessagePtr make_msg(net::NodeId src, net::NodeId dst,
                         std::size_t payload_bytes, std::uint8_t salt = 0) {
  auto m = std::make_shared<net::Message>();
  m->src = src;
  m->dst = dst;
  m->header.resize(64);
  for (std::size_t i = 0; i < m->header.size(); ++i) {
    m->header[i] = static_cast<std::byte>(i + salt);
  }
  m->payload.resize(payload_bytes);
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    m->payload[i] = static_cast<std::byte>(i * 3 + salt);
  }
  return m;
}

/// Injects `m` the way the Tx DMA engine does: begin, header, payload in
/// chunks with the CRC sealed before the last chunk.
void inject(Transport& t, const net::MessagePtr& m) {
  t.begin(m);
  t.inject_header(m);
  std::uint32_t crc = net::crc32_init();
  crc = net::crc32_update(crc, m->header);
  const std::size_t chunk = t.chunk_size();
  const std::size_t n = m->payload.size();
  for (std::size_t off = 0; off < n; off += chunk) {
    const std::size_t len = std::min(chunk, n - off);
    crc = net::crc32_update(
        crc, std::span<const std::byte>(m->payload).subspan(off, len));
    if (off + len == n) m->e2e_crc = net::crc32_finish(crc);
    t.inject_payload(m, off, len, off + len == n);
  }
  if (n == 0) {
    m->e2e_crc = net::crc32_finish(crc);
  }
}

class TransportConformance : public ::testing::TestWithParam<Backend> {};

TEST_P(TransportConformance, HeaderOnlyMessageCompletesImmediately) {
  auto rig = make_rig(GetParam());
  auto m = make_msg(0, 1, 0);
  inject(rig->sender(0), m);
  rig->pump();
  ASSERT_EQ(rig->ep[1].headers.size(), 1u);
  ASSERT_EQ(rig->ep[1].completes.size(), 1u);
  EXPECT_EQ(rig->ep[1].headers[0]->seq, rig->ep[1].completes[0]->seq);
  EXPECT_EQ(rig->ep[1].completes[0]->header, m->header);
  EXPECT_TRUE(rig->ep[1].completes[0]->payload.empty());
}

TEST_P(TransportConformance, PayloadArrivesByteExactWithSealedCrc) {
  auto rig = make_rig(GetParam());
  auto m = make_msg(0, 1, 50'000);  // several fragments/chunks
  inject(rig->sender(0), m);
  rig->pump();
  ASSERT_EQ(rig->ep[1].completes.size(), 1u);
  const net::MessagePtr& got = rig->ep[1].completes[0];
  EXPECT_EQ(got->header, m->header);
  EXPECT_EQ(got->payload, m->payload);
  // The receiving DMA engine re-computes this CRC; the wire must carry the
  // sealed value through unchanged.
  std::uint32_t c = net::crc32_init();
  c = net::crc32_update(c, got->header);
  c = net::crc32_update(c, got->payload);
  EXPECT_EQ(net::crc32_finish(c), got->e2e_crc);
}

TEST_P(TransportConformance, PairwiseDeliveryPreservesInjectionOrder) {
  auto rig = make_rig(GetParam());
  std::vector<std::uint64_t> sent;
  for (int i = 0; i < 16; ++i) {
    auto m = make_msg(0, 1, static_cast<std::size_t>(i) * 977,
                      static_cast<std::uint8_t>(i));
    inject(rig->sender(0), m);
    sent.push_back(m->seq);
    if (i % 5 == 0) rig->pump();  // interleave draining with injection
  }
  rig->pump();
  ASSERT_EQ(rig->ep[1].completes.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(rig->ep[1].completes[i]->seq, sent[i]) << "position " << i;
  }
}

TEST_P(TransportConformance, SequenceNumbersUniqueAcrossSources) {
  auto rig = make_rig(GetParam());
  std::set<std::uint64_t> seqs;
  for (int i = 0; i < 8; ++i) {
    auto a = make_msg(0, 1, 64);
    auto b = make_msg(1, 0, 64);
    inject(rig->sender(0), a);
    inject(rig->sender(1), b);
    EXPECT_TRUE(seqs.insert(a->seq).second) << "duplicate seq " << a->seq;
    EXPECT_TRUE(seqs.insert(b->seq).second) << "duplicate seq " << b->seq;
  }
  rig->pump();
  EXPECT_EQ(rig->ep[0].completes.size(), 8u);
  EXPECT_EQ(rig->ep[1].completes.size(), 8u);
}

TEST_P(TransportConformance, ShapeAndChunkSizeContracts) {
  auto rig = make_rig(GetParam());
  Transport& t = rig->sender(0);
  EXPECT_EQ(t.shape().count(), 2);
  EXPECT_GT(t.chunk_size(), 0u);
  EXPECT_EQ(std::string(kind_name(t.kind())),
            GetParam() == Backend::kSim ? "sim" : "udp");
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformance,
                         ::testing::Values(Backend::kSim, Backend::kUdp),
                         [](const auto& param_info) {
                           return param_info.param == Backend::kSim ? "sim"
                                                                    : "udp";
                         });

TEST(TransportKind, NamesRoundTrip) {
  EXPECT_EQ(kind_from_name("sim"), Kind::kSim);
  EXPECT_EQ(kind_from_name("udp"), Kind::kUdp);
  EXPECT_EQ(kind_from_name("tcp"), std::nullopt);
  EXPECT_STREQ(kind_name(Kind::kSim), "sim");
  EXPECT_STREQ(kind_name(Kind::kUdp), "udp");
}

TEST(UdpTransportDrops, InjectedLossIsCountedNotDelivered) {
  UdpRig rig(1.0);  // drop everything
  auto m = make_msg(0, 1, 4096);
  inject(rig.sender(0), m);
  rig.pump();
  EXPECT_TRUE(rig.ep[1].completes.empty());
  EXPECT_GT(rig.udp(0).drops_injected(), 0u);
  EXPECT_EQ(rig.udp(0).total_retries(), rig.udp(0).drops_injected());
}

// ---------------------------------------------------------- live stack ----

TEST(LiveUdpStack, PingPongDeliversVerifiedData) {
  host::LiveOptions opts;
  opts.ranks = 2;
  auto res = np::run_live_pingpong(opts, 4096, 200);
  for (const auto& r : res.ranks) {
    EXPECT_TRUE(r.ok()) << "rank " << r.rank << ": " << r.error << r.panic;
  }
  EXPECT_TRUE(res.data_ok);
  EXPECT_EQ(res.crc_drops, 0u);
  ASSERT_EQ(res.samples.size(), 1u);
  EXPECT_GT(res.samples[0].mbytes_per_sec, 0.0);
}

TEST(LiveUdpStack, GoBackNRecoversInjectedSocketDrops) {
  host::LiveOptions opts;
  opts.ranks = 2;
  opts.udp.drop_rate = 0.02;
  opts.udp.drop_seed = 42;
  auto res = np::run_live_pingpong(opts, 1024, 400);
  for (const auto& r : res.ranks) {
    EXPECT_TRUE(r.ok()) << "rank " << r.rank << ": " << r.error << r.panic;
  }
  // Every payload arrived intact despite real datagram loss...
  EXPECT_TRUE(res.data_ok);
  EXPECT_EQ(res.crc_drops, 0u);
  // ...because drops actually happened and go-back-n resent them.
  EXPECT_GT(res.transport_drops, 0u);
  EXPECT_GT(res.fw_retransmits, 0u);
}

TEST(LiveUdpStack, WorkloadRunsAsLiveTraffic) {
  host::LiveOptions opts;
  workload::WorkloadSpec spec;
  spec.pattern = workload::PatternKind::kUniform;
  spec.ranks = 4;
  spec.bytes = 512;
  spec.msgs_per_sender = 50;
  spec.loop = workload::Loop::kClosed;
  spec.outstanding = 4;
  auto res = workload::run_live_workload(opts, spec);
  EXPECT_TRUE(res.ok()) << res.result.failure;
  EXPECT_TRUE(res.result.complete) << res.result.failure;
  EXPECT_GT(res.result.sent, 0u);
  EXPECT_EQ(res.result.delivered, res.result.sent);
  EXPECT_EQ(res.result.latency_ps.size(), res.result.delivered);
  // Live latency samples are wall-clock and must be plausible (> 1 µs).
  for (std::uint64_t l : res.result.latency_ps) EXPECT_GT(l, 1'000'000u);
}

TEST(LiveUdpStack, ConduitScriptMatchesSimByteForByte) {
  // The conduit cross-validation script (put/get/AM over 4 ranks) is a
  // pure function of (seed, rank count): the per-rank checksums from the
  // simulated fabric, from live UDP loopback and from the local
  // expectation must all be identical.
  const std::uint64_t seed = 20260809;
  const auto want = conduit::xval_expect(4, seed);
  const conduit::XvalResult sim = conduit::xval_sim(4, seed);
  ASSERT_TRUE(sim.ok) << sim.failure;
  EXPECT_EQ(sim.sum, want);
  const conduit::XvalResult live = conduit::xval_live(4, seed);
  ASSERT_TRUE(live.ok) << live.failure;
  EXPECT_EQ(live.sum, want);
}

TEST(LiveUdpStack, FourRankAllreduceSumsCorrectly) {
  host::LiveOptions opts;
  opts.ranks = 4;
  auto res = np::run_live_allreduce(opts, 50, 64);
  for (const auto& r : res.ranks) {
    EXPECT_TRUE(r.ok()) << "rank " << r.rank << ": " << r.error << r.panic;
  }
  EXPECT_TRUE(res.data_ok);
  EXPECT_EQ(res.crc_drops, 0u);
  EXPECT_GT(res.total_msgs_sent, 0u);
}

}  // namespace
}  // namespace xt::transport
