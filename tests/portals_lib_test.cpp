// Unit tests for the Portals 3.3 reference library (src/portals), driven
// through fake NAL/Memory seams so matching semantics are exercised without
// the firmware or network underneath.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "host/memory.hpp"
#include "portals/library.hpp"
#include "sim/engine.hpp"

namespace xt::ptl {
namespace {

class FakeMemory final : public Memory {
 public:
  explicit FakeMemory(std::size_t size) : mem_(size) {}
  bool valid(std::uint64_t addr, std::size_t len) const override {
    // Same overflow-safe form as host::AddressSpace: addr + len must not
    // wrap around and sneak past the bound.
    return len <= mem_.size() && addr <= mem_.size() - len;
  }
  void read(std::uint64_t addr, std::span<std::byte> out) const override {
    std::memcpy(out.data(), mem_.data() + addr, out.size());
  }
  void write(std::uint64_t addr, std::span<const std::byte> in) override {
    std::memcpy(mem_.data() + addr, in.data(), in.size());
  }
  std::vector<std::byte> mem_;
};

class FakeNal final : public Nal {
 public:
  struct Sent {
    TxKind kind;
    std::uint32_t dst_nid;
    WireHeader hdr;
    IoVecList payload;
    std::uint64_t token;
    std::uint64_t addr() const { return payload.empty() ? 0 : payload[0].start; }
    std::uint32_t len() const {
      std::uint32_t n = 0;
      for (const IoVec& v : payload) n += v.length;
      return n;
    }
  };
  int send(TxKind kind, std::uint32_t dst_nid, const WireHeader& hdr,
           IoVecList payload, std::uint64_t token) override {
    sent.push_back(Sent{kind, dst_nid, hdr, std::move(payload), token});
    return PTL_OK;
  }
  std::uint32_t nid() const override { return 7; }
  int distance(std::uint32_t) const override { return 1; }
  std::vector<Sent> sent;
};

/// One process's library with its fakes.
struct Proc {
  sim::Engine eng;
  FakeMemory mem{1 << 16};
  FakeNal nal;
  Library lib;
  explicit Proc(Nid nid = 7, Pid pid = 3, Limits limits = Limits{})
      : lib(eng, Library::Config{ProcessId{nid, pid}, limits, true}, nal,
            mem) {}

  EqHandle eq(std::size_t n = 64) {
    EqHandle h;
    EXPECT_EQ(lib.eq_alloc(n, &h), PTL_OK);
    return h;
  }
  MeHandle me(std::uint32_t pt, MatchBits mb, MatchBits ib = 0,
              ProcessId src = {kNidAny, kPidAny},
              Unlink unlink = Unlink::kRetain) {
    MeHandle h;
    EXPECT_EQ(lib.me_attach(pt, src, mb, ib, unlink, InsPos::kAfter, &h),
              PTL_OK);
    return h;
  }
  MdHandle md_on(MeHandle meh, std::uint64_t start, std::uint32_t len,
                 unsigned options, EqHandle eqh, int threshold = -1,
                 Unlink unlink_op = Unlink::kRetain,
                 std::uint32_t max_size = 0) {
    MdDesc d;
    d.start = start;
    d.length = len;
    d.options = options;
    d.eq = eqh;
    d.threshold = threshold;
    d.max_size = max_size;
    MdHandle h;
    EXPECT_EQ(lib.md_attach(meh, d, unlink_op, &h), PTL_OK);
    return h;
  }
  void mem_write(std::uint64_t addr, std::byte v) { mem.mem_[addr] = v; }

  /// Drains every event currently in the EQ.
  std::vector<Event> drain(EqHandle eqh) {
    std::vector<Event> evs;
    Event ev;
    int rc;
    while ((rc = lib.eq_get(eqh, &ev)) != PTL_EQ_EMPTY) {
      EXPECT_TRUE(rc == PTL_OK || rc == PTL_EQ_DROPPED);
      evs.push_back(ev);
    }
    return evs;
  }
};

WireHeader put_hdr(std::uint32_t len, MatchBits mb, Nid src_nid = 1,
                   Pid src_pid = 2, std::uint32_t pt = 4,
                   std::uint64_t roffset = 0) {
  WireHeader h;
  h.op = WireOp::kPut;
  h.src_nid = src_nid;
  h.src_pid = src_pid;
  h.pt_index = static_cast<std::uint8_t>(pt);
  h.ac_index = 0;
  h.match_bits = mb;
  h.length = len;
  h.remote_offset = roffset;
  h.md_id = 99;  // initiator token (opaque here)
  return h;
}

// ---------------------------------------------------- address validation ----
// The ptl::Memory seam ("all Linux NALs ... use the same address validation
// routines"): the host AddressSpace and the library's MD validation built
// on it must agree on the awkward edges — zero-length spans, regions
// abutting the end of the mapping, and addr+len wrapping past 2^64.

TEST(AddressValidation, ZeroLengthSpans) {
  host::AddressSpace as(host::OsType::kCatamount, 4096, 4096);
  EXPECT_TRUE(as.valid(0, 0));
  EXPECT_TRUE(as.valid(4095, 0));
  // Zero bytes at one-past-the-end addresses nothing: still valid, like an
  // end iterator.
  EXPECT_TRUE(as.valid(4096, 0));
  EXPECT_FALSE(as.valid(4097, 0));
}

TEST(AddressValidation, RegionsAbuttingTheMappingEnd) {
  host::AddressSpace as(host::OsType::kCatamount, 4096, 4096);
  EXPECT_TRUE(as.valid(0, 4096));     // the whole arena
  EXPECT_FALSE(as.valid(0, 4097));
  EXPECT_TRUE(as.valid(4032, 64));    // ends exactly at the boundary
  EXPECT_FALSE(as.valid(4033, 64));   // one byte past
  EXPECT_FALSE(as.valid(4096, 1));
}

TEST(AddressValidation, RejectsUnsignedOverflow) {
  host::AddressSpace as(host::OsType::kCatamount, 4096, 4096);
  // addr + len wraps past zero; the naive `addr + len <= size` check would
  // accept every one of these.
  EXPECT_FALSE(as.valid(~0ull, 1));
  EXPECT_FALSE(as.valid(~0ull - 7, 64));
  EXPECT_FALSE(as.valid(1, ~std::size_t{0}));
  EXPECT_FALSE(as.valid(~0ull, ~std::size_t{0}));
}

TEST(AddressValidation, LibraryRejectsOverflowingMd) {
  Proc p;  // FakeMemory arena is 64 KB
  MdDesc d;
  d.start = ~0ull - 7;
  d.length = 64;
  MdHandle h;
  EXPECT_EQ(p.lib.md_bind(d, Unlink::kRetain, &h), PTL_SEGV);

  MdDesc iov;
  iov.options = PTL_MD_IOVEC;
  iov.iovecs = {{~0ull - 7, 64}};
  EXPECT_EQ(p.lib.md_bind(iov, Unlink::kRetain, &h), PTL_SEGV);
}

TEST(AddressValidation, LibraryAcceptsMdAbuttingArenaEnd) {
  Proc p;  // FakeMemory arena is 64 KB
  MdDesc d;
  d.start = (1u << 16) - 64;
  d.length = 64;
  MdHandle h;
  EXPECT_EQ(p.lib.md_bind(d, Unlink::kRetain, &h), PTL_OK);

  MdDesc past = d;
  past.start += 1;
  EXPECT_EQ(p.lib.md_bind(past, Unlink::kRetain, &h), PTL_SEGV);
}

// ----------------------------------------------------------- EQ basics ----

TEST(PtlEq, AllocGetEmptyFree) {
  Proc p;
  EqHandle h = p.eq(8);
  Event ev;
  EXPECT_EQ(p.lib.eq_get(h, &ev), PTL_EQ_EMPTY);
  EXPECT_EQ(p.lib.eq_free(h), PTL_OK);
  EXPECT_EQ(p.lib.eq_get(h, &ev), PTL_EQ_INVALID);  // stale handle
}

TEST(PtlEq, OverflowReportsDropped) {
  Proc p;
  EqHandle h = p.eq(2);
  EventQueue* q = p.lib.eq_object(h);
  ASSERT_NE(q, nullptr);
  for (int i = 0; i < 3; ++i) {
    Event ev;
    ev.type = EventType::kPutEnd;
    q->post(ev);
  }
  Event ev;
  // The drop is reported (once) on the first successful get after the
  // overflow; an event is still returned with PTL_EQ_DROPPED.
  EXPECT_EQ(p.lib.eq_get(h, &ev), PTL_EQ_DROPPED);
  EXPECT_EQ(p.lib.eq_get(h, &ev), PTL_OK);
  EXPECT_EQ(p.lib.eq_get(h, &ev), PTL_EQ_EMPTY);
}

TEST(PtlEq, SequenceNumbersIncrease) {
  Proc p;
  EqHandle h = p.eq(8);
  EventQueue* q = p.lib.eq_object(h);
  for (int i = 0; i < 3; ++i) q->post(Event{});
  auto evs = p.drain(h);
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_LT(evs[0].sequence, evs[1].sequence);
  EXPECT_LT(evs[1].sequence, evs[2].sequence);
}

// ----------------------------------------------------------- ME lists ----

TEST(PtlMe, AttachValidatesPtIndex) {
  Proc p;
  MeHandle h;
  EXPECT_EQ(p.lib.me_attach(Limits{}.max_pt_index, ProcessId{kNidAny, kPidAny},
                            0, 0, Unlink::kRetain, InsPos::kAfter, &h),
            PTL_PT_INDEX_INVALID);
}

TEST(PtlMe, UnlinkInvalidatesHandle) {
  Proc p;
  MeHandle h = p.me(0, 5);
  EXPECT_EQ(p.lib.me_unlink(h), PTL_OK);
  EXPECT_EQ(p.lib.me_unlink(h), PTL_ME_INVALID);
}

TEST(PtlMe, FirstMatchingEntryWins) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle me1 = p.me(4, 42);
  MeHandle me2 = p.me(4, 42);  // same bits, later in list
  p.md_on(me1, 0, 128, PTL_MD_OP_PUT, eq);
  p.md_on(me2, 1024, 128, PTL_MD_OP_PUT, eq);
  auto d = p.lib.on_put_header(put_hdr(64, 42));
  ASSERT_TRUE(d.deliver);
  ASSERT_FALSE(d.segments.empty());
  EXPECT_EQ(d.segments[0].start, 0u);  // me1's MD
  EXPECT_EQ(d.entries_walked, 1u);
}

TEST(PtlMe, InsBeforePrepends) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle me1 = p.me(4, 42);
  p.md_on(me1, 0, 128, PTL_MD_OP_PUT, eq);
  // Insert a second matching entry at the head.
  MeHandle me2;
  ASSERT_EQ(p.lib.me_attach(4, ProcessId{kNidAny, kPidAny}, 42, 0,
                            Unlink::kRetain, InsPos::kBefore, &me2),
            PTL_OK);
  p.md_on(me2, 2048, 128, PTL_MD_OP_PUT, eq);
  auto d = p.lib.on_put_header(put_hdr(64, 42));
  ASSERT_TRUE(d.deliver);
  ASSERT_FALSE(d.segments.empty());
  EXPECT_EQ(d.segments[0].start, 2048u);
}

TEST(PtlMe, InsertBeforeExistingEntry) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle me1 = p.me(4, 42);
  p.md_on(me1, 0, 128, PTL_MD_OP_PUT, eq);
  MeHandle me2;
  ASSERT_EQ(p.lib.me_insert(me1, ProcessId{kNidAny, kPidAny}, 42, 0,
                            Unlink::kRetain, InsPos::kBefore, &me2),
            PTL_OK);
  p.md_on(me2, 4096, 128, PTL_MD_OP_PUT, eq);
  auto d = p.lib.on_put_header(put_hdr(64, 42));
  ASSERT_TRUE(d.deliver);
  ASSERT_FALSE(d.segments.empty());
  EXPECT_EQ(d.segments[0].start, 4096u);
}

// ------------------------------------------------------------ matching ----

TEST(PtlMatch, IgnoreBitsMaskMismatches) {
  Proc p;
  EqHandle eq = p.eq();
  // Match 0xAB00 with low byte ignored.
  MeHandle me = p.me(4, 0xAB00, 0x00FF);
  p.md_on(me, 0, 256, PTL_MD_OP_PUT, eq);
  EXPECT_TRUE(p.lib.on_put_header(put_hdr(8, 0xAB42)).deliver);
  EXPECT_TRUE(p.lib.on_put_header(put_hdr(8, 0xAB00)).deliver);
  EXPECT_FALSE(p.lib.on_put_header(put_hdr(8, 0xAC00)).deliver);
}

TEST(PtlMatch, SourceIdFiltering) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle me;
  ASSERT_EQ(p.lib.me_attach(4, ProcessId{1, 2}, 7, 0, Unlink::kRetain,
                            InsPos::kAfter, &me),
            PTL_OK);
  p.md_on(me, 0, 256, PTL_MD_OP_PUT, eq);
  EXPECT_TRUE(p.lib.on_put_header(put_hdr(8, 7, /*src_nid=*/1, 2)).deliver);
  EXPECT_FALSE(p.lib.on_put_header(put_hdr(8, 7, /*src_nid=*/9, 2)).deliver);
  EXPECT_FALSE(p.lib.on_put_header(put_hdr(8, 7, /*src_nid=*/1, 5)).deliver);
  EXPECT_EQ(p.lib.status(SrIndex::kDropCount), 2u);
}

TEST(PtlMatch, OpPermissionsRespected) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle me = p.me(4, 1);
  p.md_on(me, 0, 256, PTL_MD_OP_GET, eq);  // only get allowed
  EXPECT_FALSE(p.lib.on_put_header(put_hdr(8, 1)).deliver);
  WireHeader g = put_hdr(8, 1);
  g.op = WireOp::kGet;
  EXPECT_TRUE(p.lib.on_get_header(g).deliver);
}

TEST(PtlMatch, TruncateClampsLength) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle me = p.me(4, 1);
  p.md_on(me, 0, 100, PTL_MD_OP_PUT | PTL_MD_TRUNCATE, eq);
  auto d = p.lib.on_put_header(put_hdr(500, 1));
  ASSERT_TRUE(d.deliver);
  EXPECT_EQ(d.mlength, 100u);
}

TEST(PtlMatch, NoTruncateSkipsToNextEntry) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle small = p.me(4, 1);
  p.md_on(small, 0, 100, PTL_MD_OP_PUT, eq);  // no truncate, too small
  MeHandle big = p.me(4, 1);
  p.md_on(big, 1000, 1000, PTL_MD_OP_PUT, eq);
  auto d = p.lib.on_put_header(put_hdr(500, 1));
  ASSERT_TRUE(d.deliver);
  ASSERT_FALSE(d.segments.empty());
  EXPECT_EQ(d.segments[0].start, 1000u);
  EXPECT_EQ(d.entries_walked, 2u);
}

TEST(PtlMatch, LocallyManagedOffsetAdvances) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle me = p.me(4, 1);
  p.md_on(me, 0, 1000, PTL_MD_OP_PUT, eq);
  auto d1 = p.lib.on_put_header(put_hdr(100, 1));
  auto d2 = p.lib.on_put_header(put_hdr(100, 1));
  EXPECT_EQ(d1.segments[0].start, 0u);
  EXPECT_EQ(d2.segments[0].start, 100u);
  EXPECT_EQ(d2.mlength, 100u);
}

TEST(PtlMatch, ManageRemoteUsesInitiatorOffset) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle me = p.me(4, 1);
  p.md_on(me, 0, 1000, PTL_MD_OP_PUT | PTL_MD_MANAGE_REMOTE, eq);
  auto d1 = p.lib.on_put_header(put_hdr(100, 1, 1, 2, 4, /*roffset=*/300));
  auto d2 = p.lib.on_put_header(put_hdr(100, 1, 1, 2, 4, /*roffset=*/0));
  EXPECT_EQ(d1.segments[0].start, 300u);
  EXPECT_EQ(d2.segments[0].start, 0u);  // did not advance
}

TEST(PtlMatch, NoMatchDropsAndCounts) {
  Proc p;
  EXPECT_FALSE(p.lib.on_put_header(put_hdr(8, 77)).deliver);
  EXPECT_EQ(p.lib.status(SrIndex::kDropCount), 1u);
}

// ----------------------------------------------------- threshold/unlink ----

TEST(PtlMd, ThresholdExhaustionDeactivates) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle me = p.me(4, 1);
  p.md_on(me, 0, 1000, PTL_MD_OP_PUT, eq, /*threshold=*/2);
  EXPECT_TRUE(p.lib.on_put_header(put_hdr(10, 1)).deliver);
  EXPECT_TRUE(p.lib.on_put_header(put_hdr(10, 1)).deliver);
  EXPECT_FALSE(p.lib.on_put_header(put_hdr(10, 1)).deliver);
}

TEST(PtlMd, AutoUnlinkPostsUnlinkEvent) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle me = p.me(4, 1, 0, {kNidAny, kPidAny}, Unlink::kUnlink);
  p.md_on(me, 0, 1000, PTL_MD_OP_PUT, eq, /*threshold=*/1, Unlink::kUnlink);
  auto d = p.lib.on_put_header(put_hdr(10, 1));
  ASSERT_TRUE(d.deliver);
  (void)p.lib.deposited(d.token);
  auto evs = p.drain(eq);
  ASSERT_EQ(evs.size(), 3u);  // PUT_START, PUT_END, UNLINK
  EXPECT_EQ(evs[0].type, EventType::kPutStart);
  EXPECT_EQ(evs[1].type, EventType::kPutEnd);
  EXPECT_EQ(evs[2].type, EventType::kUnlink);
  // The ME went away with its MD (Unlink::kUnlink on the ME).
  EXPECT_EQ(p.lib.me_unlink(me), PTL_ME_INVALID);
}

TEST(PtlMd, AutoUnlinkRecyclesSlot) {
  // Regression: auto_unlink must return the MD slot to the free list.
  // With slab allocation free-list-only, a leaked slot per use-once MD
  // exhausts max_mds on long runs even though few MDs are ever live.
  Limits lims;
  lims.max_mds = 8;
  Proc p(7, 3, lims);
  EqHandle eq = p.eq();
  MeHandle me = p.me(4, 1);  // retained ME, fresh MD each round
  for (int i = 0; i < 64; ++i) {
    p.md_on(me, 0, 1000, PTL_MD_OP_PUT, eq, /*threshold=*/1, Unlink::kUnlink);
    auto d = p.lib.on_put_header(put_hdr(10, 1));
    ASSERT_TRUE(d.deliver) << "round " << i;
    (void)p.lib.deposited(d.token);
    auto evs = p.drain(eq);
    ASSERT_EQ(evs.size(), 3u) << "round " << i;
    EXPECT_EQ(evs[2].type, EventType::kUnlink) << "round " << i;
  }
}

TEST(PtlMd, RetainKeepsMeAfterMdUnlink) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle me = p.me(4, 1, 0, {kNidAny, kPidAny}, Unlink::kRetain);
  p.md_on(me, 0, 1000, PTL_MD_OP_PUT, eq, /*threshold=*/1, Unlink::kUnlink);
  auto d = p.lib.on_put_header(put_hdr(10, 1));
  (void)p.lib.deposited(d.token);
  // ME survives; we can attach a new MD.
  MdHandle md2;
  MdDesc desc;
  desc.start = 0;
  desc.length = 64;
  desc.options = PTL_MD_OP_PUT;
  EXPECT_EQ(p.lib.md_attach(me, desc, Unlink::kRetain, &md2), PTL_OK);
}

TEST(PtlMd, MaxSizeRetiresWhenSpaceLow) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle me = p.me(4, 1);
  MdDesc d;
  d.start = 0;
  d.length = 250;
  d.options = PTL_MD_OP_PUT | PTL_MD_MAX_SIZE | PTL_MD_TRUNCATE;
  d.max_size = 100;
  d.eq = eq;
  MdHandle h;
  ASSERT_EQ(p.lib.md_attach(me, d, Unlink::kUnlink, &h), PTL_OK);
  EXPECT_TRUE(p.lib.on_put_header(put_hdr(100, 1)).deliver);  // 150 left
  EXPECT_TRUE(p.lib.on_put_header(put_hdr(100, 1)).deliver);  // 50 < 100
  EXPECT_FALSE(p.lib.on_put_header(put_hdr(10, 1)).deliver);  // retired
}

TEST(PtlMd, UnlinkWhileBusyFails) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle me = p.me(4, 1);
  MdHandle md = p.md_on(me, 0, 1000, PTL_MD_OP_PUT, eq);
  auto d = p.lib.on_put_header(put_hdr(10, 1));
  ASSERT_TRUE(d.deliver);
  EXPECT_EQ(p.lib.md_unlink(md), PTL_MD_IN_USE);  // deposit in flight
  (void)p.lib.deposited(d.token);
  EXPECT_EQ(p.lib.md_unlink(md), PTL_OK);
}

TEST(PtlMd, BindValidatesMemory) {
  Proc p;
  MdDesc d;
  d.start = 1u << 20;  // beyond the 64 KiB fake AS
  d.length = 64;
  MdHandle h;
  EXPECT_EQ(p.lib.md_bind(d, Unlink::kRetain, &h), PTL_SEGV);
}

TEST(PtlMd, UpdateRefusedWhenTestEqNonEmpty) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle me = p.me(4, 1);
  MdHandle md = p.md_on(me, 0, 100, PTL_MD_OP_PUT, eq);
  p.lib.eq_object(eq)->post(Event{});
  MdDesc nd;
  nd.start = 0;
  nd.length = 50;
  nd.options = PTL_MD_OP_PUT;
  EXPECT_EQ(p.lib.md_update(md, nullptr, &nd, eq), PTL_MD_NO_UPDATE);
  Event ev;
  (void)p.lib.eq_get(eq, &ev);
  EXPECT_EQ(p.lib.md_update(md, nullptr, &nd, eq), PTL_OK);
}

// --------------------------------------------------------------- ACL ----

TEST(PtlAcl, RejectsWrongSource) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle me = p.me(4, 1);
  p.md_on(me, 0, 100, PTL_MD_OP_PUT, eq);
  // Restrict AC index 0 to nid 5 only.
  ASSERT_EQ(p.lib.ac_entry(0, ProcessId{5, kPidAny}, kPtIndexAny), PTL_OK);
  EXPECT_FALSE(p.lib.on_put_header(put_hdr(8, 1, /*src_nid=*/1)).deliver);
  EXPECT_TRUE(p.lib.on_put_header(put_hdr(8, 1, /*src_nid=*/5)).deliver);
  EXPECT_EQ(p.lib.status(SrIndex::kPermissionsViolations), 1u);
}

TEST(PtlAcl, UnsetIndexRejects) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle me = p.me(4, 1);
  p.md_on(me, 0, 100, PTL_MD_OP_PUT, eq);
  WireHeader h = put_hdr(8, 1);
  h.ac_index = 3;  // never configured
  EXPECT_FALSE(p.lib.on_put_header(h).deliver);
  EXPECT_EQ(p.lib.status(SrIndex::kPermissionsViolations), 1u);
}

// ----------------------------------------------------- initiator side ----

TEST(PtlPut, SendsWireHeaderAndEvents) {
  Proc p;
  EqHandle eq = p.eq();
  MdDesc d;
  d.start = 100;
  d.length = 64;
  d.options = PTL_MD_OP_PUT;
  d.eq = eq;
  MdHandle md;
  ASSERT_EQ(p.lib.md_bind(d, Unlink::kRetain, &md), PTL_OK);
  ASSERT_EQ(p.lib.put(md, AckReq::kAck, ProcessId{3, 9}, 4, 0, 0xBEEF, 0,
                      0x1234),
            PTL_OK);
  ASSERT_EQ(p.nal.sent.size(), 1u);
  const auto& s = p.nal.sent[0];
  EXPECT_EQ(s.kind, Nal::TxKind::kPut);
  EXPECT_EQ(s.hdr.op, WireOp::kPut);
  EXPECT_EQ(s.hdr.src_nid, 7u);
  EXPECT_EQ(s.hdr.src_pid, 3);
  EXPECT_EQ(s.hdr.dst_pid, 9);
  EXPECT_EQ(s.hdr.match_bits, 0xBEEFu);
  EXPECT_EQ(s.hdr.length, 64u);
  EXPECT_EQ(s.hdr.hdr_data, 0x1234u);
  EXPECT_EQ(s.addr(), 100u);
  EXPECT_EQ(s.len(), 64u);

  auto evs = p.drain(eq);
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].type, EventType::kSendStart);

  p.lib.send_complete(s.token);
  evs = p.drain(eq);
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].type, EventType::kSendEnd);

  // The target's ack arrives.
  WireHeader ack;
  ack.op = WireOp::kAck;
  ack.length = 64;
  ack.md_id = s.hdr.md_id;
  ack.md_gen = s.hdr.md_gen;
  p.lib.on_ack(ack);
  evs = p.drain(eq);
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].type, EventType::kAck);
  EXPECT_EQ(evs[0].mlength, 64u);
}

TEST(PtlPut, RegionSendsSubrange) {
  Proc p;
  MdDesc d;
  d.start = 0;
  d.length = 1000;
  MdHandle md;
  ASSERT_EQ(p.lib.md_bind(d, Unlink::kRetain, &md), PTL_OK);
  ASSERT_EQ(p.lib.put_region(md, 100, 50, AckReq::kNone, ProcessId{1, 1}, 0,
                             0, 0, 0, 0),
            PTL_OK);
  EXPECT_EQ(p.nal.sent[0].addr(), 100u);
  EXPECT_EQ(p.nal.sent[0].len(), 50u);
  EXPECT_EQ(p.lib.put_region(md, 990, 50, AckReq::kNone, ProcessId{1, 1}, 0,
                             0, 0, 0, 0),
            PTL_MD_ILLEGAL);
}

TEST(PtlPut, InactiveMdRejected) {
  Proc p;
  MdDesc d;
  d.start = 0;
  d.length = 8;
  d.threshold = 1;
  MdHandle md;
  ASSERT_EQ(p.lib.md_bind(d, Unlink::kRetain, &md), PTL_OK);
  EXPECT_EQ(p.lib.put(md, AckReq::kNone, ProcessId{1, 1}, 0, 0, 0, 0, 0),
            PTL_OK);
  EXPECT_EQ(p.lib.put(md, AckReq::kNone, ProcessId{1, 1}, 0, 0, 0, 0, 0),
            PTL_MD_INVALID);  // threshold exhausted
}

// ------------------------------------------------------------ get flow ----

TEST(PtlGet, TargetBuildsReplyAndGetEvents) {
  Proc target;
  EqHandle eq = target.eq();
  MeHandle me = target.me(4, 11);
  target.md_on(me, 200, 512, PTL_MD_OP_GET, eq);
  for (std::size_t i = 0; i < 512; ++i) {
    target.mem_write(200 + i, static_cast<std::byte>(i));
  }
  WireHeader g;
  g.op = WireOp::kGet;
  g.src_nid = 1;
  g.src_pid = 2;
  g.pt_index = 4;
  g.match_bits = 11;
  g.length = 128;
  g.md_id = 55;
  auto d = target.lib.on_get_header(g);
  ASSERT_TRUE(d.deliver);
  EXPECT_EQ(d.mlength, 128u);
  ASSERT_FALSE(d.segments.empty());
  EXPECT_EQ(d.segments[0].start, 200u);
  EXPECT_EQ(d.reply_header.op, WireOp::kReply);
  EXPECT_EQ(d.reply_header.dst_pid, 2);
  EXPECT_EQ(d.reply_header.length, 128u);
  EXPECT_EQ(d.reply_header.md_id, 55u);

  auto evs = target.drain(eq);
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].type, EventType::kGetStart);

  target.lib.reply_sent(d.token);
  evs = target.drain(eq);
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].type, EventType::kGetEnd);
}

TEST(PtlGet, InitiatorReplyFlow) {
  Proc p;
  EqHandle eq = p.eq();
  MdDesc d;
  d.start = 0;
  d.length = 256;
  d.options = PTL_MD_OP_GET;
  d.eq = eq;
  MdHandle md;
  ASSERT_EQ(p.lib.md_bind(d, Unlink::kRetain, &md), PTL_OK);
  ASSERT_EQ(p.lib.get(md, ProcessId{3, 9}, 4, 0, 11, 0), PTL_OK);
  ASSERT_EQ(p.nal.sent.size(), 1u);
  EXPECT_EQ(p.nal.sent[0].kind, Nal::TxKind::kGetRequest);
  EXPECT_EQ(p.nal.sent[0].len(), 0u);  // requests carry no payload
  EXPECT_EQ(p.drain(eq).size(), 0u);  // no send events for gets

  WireHeader reply;
  reply.op = WireOp::kReply;
  reply.length = 256;
  reply.md_id = p.nal.sent[0].hdr.md_id;
  reply.md_gen = p.nal.sent[0].hdr.md_gen;
  auto rd = p.lib.on_reply_header(reply);
  ASSERT_TRUE(rd.deliver);
  EXPECT_EQ(rd.mlength, 256u);
  ASSERT_FALSE(rd.segments.empty());
  EXPECT_EQ(rd.segments[0].start, 0u);
  auto evs = p.drain(eq);
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].type, EventType::kReplyStart);

  (void)p.lib.deposited(rd.token);
  evs = p.drain(eq);
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].type, EventType::kReplyEnd);
}

TEST(PtlGet, StrayReplyDropped) {
  Proc p;
  WireHeader reply;
  reply.op = WireOp::kReply;
  reply.md_id = 12345;
  EXPECT_FALSE(p.lib.on_reply_header(reply).deliver);
  EXPECT_EQ(p.lib.status(SrIndex::kDropCount), 1u);
}

// -------------------------------------------------------- target acks ----

TEST(PtlAck, TargetBuildsAckAfterDeposit) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle me = p.me(4, 1);
  p.md_on(me, 0, 100, PTL_MD_OP_PUT | PTL_MD_TRUNCATE, eq);
  WireHeader h = put_hdr(400, 1);
  h.ack_req = AckReq::kAck;
  auto d = p.lib.on_put_header(h);
  ASSERT_TRUE(d.deliver);
  auto ack = p.lib.deposited(d.token);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->op, WireOp::kAck);
  EXPECT_EQ(ack->length, 100u);  // truncated mlength reported
  EXPECT_EQ(ack->dst_pid, 2);
  EXPECT_EQ(ack->md_id, 99u);
}

TEST(PtlAck, AckDisableSuppressesAck) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle me = p.me(4, 1);
  p.md_on(me, 0, 100, PTL_MD_OP_PUT | PTL_MD_ACK_DISABLE, eq);
  WireHeader h = put_hdr(50, 1);
  h.ack_req = AckReq::kAck;
  auto d = p.lib.on_put_header(h);
  ASSERT_TRUE(d.deliver);
  EXPECT_FALSE(p.lib.deposited(d.token).has_value());
}

// ------------------------------------------------------- event options ----

TEST(PtlEvents, StartDisableSuppressesStartOnly) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle me = p.me(4, 1);
  p.md_on(me, 0, 100,
          PTL_MD_OP_PUT | PTL_MD_EVENT_START_DISABLE, eq);
  auto d = p.lib.on_put_header(put_hdr(10, 1));
  (void)p.lib.deposited(d.token);
  auto evs = p.drain(eq);
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].type, EventType::kPutEnd);
}

TEST(PtlEvents, EventFieldsPopulated) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle me = p.me(4, 21);
  MdDesc desc;
  desc.start = 64;
  desc.length = 512;
  desc.options = PTL_MD_OP_PUT;
  desc.eq = eq;
  desc.user_ptr = 0xCAFE;
  MdHandle md;
  ASSERT_EQ(p.lib.md_attach(me, desc, Unlink::kRetain, &md), PTL_OK);
  WireHeader h = put_hdr(32, 21, /*src_nid=*/5, /*src_pid=*/6);
  h.hdr_data = 0x77;
  auto d = p.lib.on_put_header(h);
  (void)p.lib.deposited(d.token);
  auto evs = p.drain(eq);
  ASSERT_EQ(evs.size(), 2u);
  const Event& e = evs[1];
  EXPECT_EQ(e.type, EventType::kPutEnd);
  EXPECT_EQ(e.initiator, (ProcessId{5, 6}));
  EXPECT_EQ(e.pt_index, 4u);
  EXPECT_EQ(e.match_bits, 21u);
  EXPECT_EQ(e.rlength, 32u);
  EXPECT_EQ(e.mlength, 32u);
  EXPECT_EQ(e.offset, 0u);
  EXPECT_EQ(e.hdr_data, 0x77u);
  EXPECT_EQ(e.user_ptr, 0xCAFEu);
  EXPECT_EQ(e.link, evs[0].link);  // START/END pairing
}

// ------------------------------------------------------ failure paths ----

TEST(PtlFail, RxDroppedPostsFailedEndEvent) {
  Proc p;
  EqHandle eq = p.eq();
  MeHandle me = p.me(4, 1);
  p.md_on(me, 0, 100, PTL_MD_OP_PUT, eq);
  auto d = p.lib.on_put_header(put_hdr(10, 1));
  ASSERT_TRUE(d.deliver);
  p.lib.rx_dropped(d.token);
  auto evs = p.drain(eq);
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[1].type, EventType::kPutEnd);
  EXPECT_EQ(evs[1].ni_fail, PTL_NI_FAIL_DROPPED);
}

}  // namespace
}  // namespace xt::ptl
