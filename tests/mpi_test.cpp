// Tests for the mini-MPI layer (src/mpi) over the full simulated stack.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "host/node.hpp"
#include "mpi/mpi.hpp"

namespace xt::mpi {
namespace {

using host::Machine;
using host::Process;
using ptl::PTL_OK;
using sim::CoTask;
using sim::Time;

constexpr ptl::Pid kPid = 9;

/// A job: one Comm per rank on consecutive nodes of a small machine.
struct Job {
  explicit Job(int nranks, Flavor flavor = Flavor::mpich1(),
               net::Shape shape = {})
      : m(shape.count() >= nranks ? shape
                                  : net::Shape::xt3(nranks, 1, 1)) {
    std::vector<ptl::ProcessId> ids;
    for (int r = 0; r < nranks; ++r) {
      ids.push_back(ptl::ProcessId{static_cast<net::NodeId>(r), kPid});
    }
    for (int r = 0; r < nranks; ++r) {
      procs.push_back(&m.node(static_cast<net::NodeId>(r))
                           .spawn_process(kPid));
      comms.push_back(std::make_unique<Comm>(*procs.back(), ids, r, flavor));
    }
    for (auto& c : comms) {
      sim::spawn([](Comm& comm) -> CoTask<void> {
        EXPECT_EQ(co_await comm.init(), PTL_OK);
      }(*c));
    }
    m.run();
  }
  Comm& comm(int r) { return *comms[static_cast<std::size_t>(r)]; }
  Process& proc(int r) { return *procs[static_cast<std::size_t>(r)]; }

  Machine m;
  std::vector<Process*> procs;
  std::vector<std::unique_ptr<Comm>> comms;
};

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 37 + seed) & 0xFF);
  }
  return v;
}

/// Simple blocking exchange: rank 0 sends `len` bytes to rank 1.
void run_send_recv(std::uint32_t len, Flavor flavor, bool recv_first) {
  Job job(2, flavor);
  const auto data = pattern(len, 5);
  const std::uint64_t sbuf = job.proc(0).alloc(len ? len : 1);
  const std::uint64_t rbuf = job.proc(1).alloc(len ? len : 1);
  if (len > 0) job.proc(0).write_bytes(sbuf, data);

  bool sdone = false, rdone = false;
  Status st;
  auto sender = [](Comm& c, std::uint64_t buf, std::uint32_t n,
                   bool* done) -> CoTask<void> {
    EXPECT_EQ(co_await c.send(buf, n, 1, 42), PTL_OK);
    *done = true;
  };
  auto receiver = [](Comm& c, std::uint64_t buf, std::uint32_t n, Status* s,
                     bool* done) -> CoTask<void> {
    EXPECT_EQ(co_await c.recv(buf, n, 0, 42, s), PTL_OK);
    *done = true;
  };
  if (recv_first) {
    sim::spawn(receiver(job.comm(1), rbuf, len, &st, &rdone));
    sim::spawn(sender(job.comm(0), sbuf, len, &sdone));
  } else {
    sim::spawn(sender(job.comm(0), sbuf, len, &sdone));
    sim::spawn(receiver(job.comm(1), rbuf, len, &st, &rdone));
  }
  job.m.run();
  ASSERT_TRUE(sdone);
  ASSERT_TRUE(rdone);
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(st.tag, 42);
  EXPECT_EQ(st.len, len);
  if (len > 0) {
    std::vector<std::byte> got(len);
    job.proc(1).read_bytes(rbuf, got);
    EXPECT_EQ(got, data);
  }
  EXPECT_FALSE(job.m.node(0).firmware().panicked());
  EXPECT_FALSE(job.m.node(1).firmware().panicked());
}

TEST(MpiSendRecv, ZeroBytes) { run_send_recv(0, Flavor::mpich1(), true); }
TEST(MpiSendRecv, OneByteExpected) {
  run_send_recv(1, Flavor::mpich1(), true);
}
TEST(MpiSendRecv, OneByteUnexpected) {
  run_send_recv(1, Flavor::mpich1(), false);
}
TEST(MpiSendRecv, EagerMidSize) { run_send_recv(8192, Flavor::mpich1(), true); }
TEST(MpiSendRecv, EagerMidSizeUnexpected) {
  run_send_recv(8192, Flavor::mpich1(), false);
}
TEST(MpiSendRecv, EagerMaxBoundary) {
  run_send_recv(Flavor::mpich1().eager_max, Flavor::mpich1(), true);
}
TEST(MpiSendRecv, RendezvousExpected) {
  run_send_recv(512 * 1024, Flavor::mpich1(), true);
}
TEST(MpiSendRecv, RendezvousUnexpected) {
  run_send_recv(512 * 1024, Flavor::mpich1(), false);
}
TEST(MpiSendRecv, Mpich2FlavorWorks) {
  run_send_recv(1024, Flavor::mpich2(), true);
}

TEST(MpiSendRecv, ProtocolCountersReflectPath) {
  Job job(2);
  const std::uint64_t sbuf = job.proc(0).alloc(1 << 20);
  const std::uint64_t rbuf = job.proc(1).alloc(1 << 20);
  bool sdone = false, rdone = false;
  sim::spawn([](Comm& c, std::uint64_t b, bool* done) -> CoTask<void> {
    EXPECT_EQ(co_await c.send(b, 100, 1, 1), PTL_OK);          // eager
    EXPECT_EQ(co_await c.send(b, 1 << 20, 1, 2), PTL_OK);      // rndv
    *done = true;
  }(job.comm(0), sbuf, &sdone));
  sim::spawn([](Comm& c, std::uint64_t b, bool* done) -> CoTask<void> {
    EXPECT_EQ(co_await c.recv(b, 100, 0, 1, nullptr), PTL_OK);
    EXPECT_EQ(co_await c.recv(b, 1 << 20, 0, 2, nullptr), PTL_OK);
    *done = true;
  }(job.comm(1), rbuf, &rdone));
  job.m.run();
  ASSERT_TRUE(sdone && rdone);
  EXPECT_EQ(job.comm(0).counters().eager_sent, 1u);
  EXPECT_EQ(job.comm(0).counters().rndv_sent, 1u);
}

// ------------------------------------------------------------ matching ----

TEST(MpiMatching, TagsSelectMessages) {
  Job job(2);
  const std::uint64_t sbuf = job.proc(0).alloc(8);
  const std::uint64_t rbuf = job.proc(1).alloc(8);
  job.proc(0).write_bytes(sbuf, pattern(8));
  bool sdone = false, rdone = false;
  sim::spawn([](Comm& c, std::uint64_t b, bool* done) -> CoTask<void> {
    EXPECT_EQ(co_await c.send(b, 4, 1, 10), PTL_OK);
    EXPECT_EQ(co_await c.send(b, 8, 1, 20), PTL_OK);
    *done = true;
  }(job.comm(0), sbuf, &sdone));
  sim::spawn([](Comm& c, std::uint64_t b, bool* done) -> CoTask<void> {
    Status s20, s10;
    // Receive tag 20 first even though tag 10 was sent first.
    EXPECT_EQ(co_await c.recv(b, 8, 0, 20, &s20), PTL_OK);
    EXPECT_EQ(s20.tag, 20);
    EXPECT_EQ(s20.len, 8u);
    EXPECT_EQ(co_await c.recv(b, 8, 0, 10, &s10), PTL_OK);
    EXPECT_EQ(s10.tag, 10);
    EXPECT_EQ(s10.len, 4u);
    *done = true;
  }(job.comm(1), rbuf, &rdone));
  job.m.run();
  EXPECT_TRUE(sdone && rdone);
}

TEST(MpiMatching, AnySourceAnyTag) {
  Job job(3);
  const std::uint64_t b0 = job.proc(0).alloc(8);
  const std::uint64_t b2 = job.proc(2).alloc(8);
  const std::uint64_t rbuf = job.proc(1).alloc(8);
  bool d0 = false, d2 = false, rdone = false;
  sim::spawn([](Comm& c, std::uint64_t b, bool* done) -> CoTask<void> {
    EXPECT_EQ(co_await c.send(b, 8, 1, 5), PTL_OK);
    *done = true;
  }(job.comm(0), b0, &d0));
  sim::spawn([](Comm& c, std::uint64_t b, bool* done) -> CoTask<void> {
    EXPECT_EQ(co_await c.send(b, 8, 1, 6), PTL_OK);
    *done = true;
  }(job.comm(2), b2, &d2));
  sim::spawn([](Comm& c, std::uint64_t b, bool* done) -> CoTask<void> {
    Status a, b2s;
    EXPECT_EQ(co_await c.recv(b, 8, kAnySource, kAnyTag, &a), PTL_OK);
    EXPECT_EQ(co_await c.recv(b, 8, kAnySource, kAnyTag, &b2s), PTL_OK);
    // Both messages arrived, from ranks 0 and 2 in some order.
    EXPECT_TRUE((a.source == 0 && b2s.source == 2) ||
                (a.source == 2 && b2s.source == 0));
    *done = true;
  }(job.comm(1), rbuf, &rdone));
  job.m.run();
  EXPECT_TRUE(d0 && d2 && rdone);
}

TEST(MpiMatching, OrderPreservedPerSenderAndTag) {
  Job job(2);
  constexpr int kN = 16;
  const std::uint64_t sbuf = job.proc(0).alloc(kN * 4);
  const std::uint64_t rbuf = job.proc(1).alloc(4);
  bool sdone = false, rdone = false;
  sim::spawn([](Comm& c, std::uint64_t b, bool* done) -> CoTask<void> {
    for (int i = 0; i < kN; ++i) {
      std::uint32_t v = static_cast<std::uint32_t>(i) * 1000 + 7;
      std::byte raw[4];
      std::memcpy(raw, &v, 4);
      c.process().write_bytes(b + static_cast<std::uint64_t>(i) * 4,
                              std::span<const std::byte>(raw, 4));
      EXPECT_EQ(co_await c.send(b + static_cast<std::uint64_t>(i) * 4, 4, 1,
                                3),
                PTL_OK);
    }
    *done = true;
  }(job.comm(0), sbuf, &sdone));
  sim::spawn([](Comm& c, std::uint64_t b, bool* done) -> CoTask<void> {
    for (int i = 0; i < kN; ++i) {
      EXPECT_EQ(co_await c.recv(b, 4, 0, 3, nullptr), PTL_OK);
      std::byte raw[4];
      c.process().read_bytes(b, std::span<std::byte>(raw, 4));
      std::uint32_t v;
      std::memcpy(&v, raw, 4);
      EXPECT_EQ(v, static_cast<std::uint32_t>(i) * 1000 + 7);
    }
    *done = true;
  }(job.comm(1), rbuf, &rdone));
  job.m.run();
  EXPECT_TRUE(sdone && rdone);
}

TEST(MpiMatching, TruncationFlagsStatus) {
  Job job(2);
  const std::uint64_t sbuf = job.proc(0).alloc(1000);
  const std::uint64_t rbuf = job.proc(1).alloc(100);
  bool sdone = false, rdone = false;
  sim::spawn([](Comm& c, std::uint64_t b, bool* done) -> CoTask<void> {
    EXPECT_EQ(co_await c.send(b, 1000, 1, 1), PTL_OK);
    *done = true;
  }(job.comm(0), sbuf, &sdone));
  sim::spawn([](Comm& c, std::uint64_t b, bool* done) -> CoTask<void> {
    Status s;
    EXPECT_EQ(co_await c.recv(b, 100, 0, 1, &s), PTL_OK);
    EXPECT_TRUE(s.truncated);
    EXPECT_EQ(s.len, 100u);
    *done = true;
  }(job.comm(1), rbuf, &rdone));
  job.m.run();
  EXPECT_TRUE(sdone && rdone);
}

// --------------------------------------------------------- nonblocking ----

TEST(MpiNonblocking, IsendIrecvWaitall) {
  Job job(2);
  constexpr int kN = 8;
  constexpr std::uint32_t kLen = 2048;
  const std::uint64_t sbuf = job.proc(0).alloc(kN * kLen);
  const std::uint64_t rbuf = job.proc(1).alloc(kN * kLen);
  for (int i = 0; i < kN; ++i) {
    job.proc(0).write_bytes(sbuf + static_cast<std::uint64_t>(i) * kLen,
                            pattern(kLen, static_cast<unsigned>(i)));
  }
  bool sdone = false, rdone = false;
  sim::spawn([](Comm& c, std::uint64_t b, bool* done) -> CoTask<void> {
    std::vector<Request> reqs(kN);
    for (int i = 0; i < kN; ++i) {
      EXPECT_EQ(co_await c.isend(b + static_cast<std::uint64_t>(i) * kLen,
                                 kLen, 1, i, &reqs[static_cast<size_t>(i)]),
                PTL_OK);
    }
    EXPECT_EQ(co_await c.waitall(reqs), PTL_OK);
    *done = true;
  }(job.comm(0), sbuf, &sdone));
  sim::spawn([](Comm& c, std::uint64_t b, bool* done) -> CoTask<void> {
    std::vector<Request> reqs(kN);
    // Post in reverse tag order to force out-of-order matching.
    for (int i = kN - 1; i >= 0; --i) {
      EXPECT_EQ(co_await c.irecv(b + static_cast<std::uint64_t>(i) * kLen,
                                 kLen, 0, i, &reqs[static_cast<size_t>(i)]),
                PTL_OK);
    }
    EXPECT_EQ(co_await c.waitall(reqs), PTL_OK);
    *done = true;
  }(job.comm(1), rbuf, &rdone));
  job.m.run();
  ASSERT_TRUE(sdone && rdone);
  for (int i = 0; i < kN; ++i) {
    std::vector<std::byte> got(kLen);
    job.proc(1).read_bytes(rbuf + static_cast<std::uint64_t>(i) * kLen, got);
    EXPECT_EQ(got, pattern(kLen, static_cast<unsigned>(i))) << "msg " << i;
  }
}

// ----------------------------------------------------------- collectives ----

TEST(MpiCollectives, BarrierSynchronizesRanks) {
  constexpr int kRanks = 5;
  Job job(kRanks);
  std::vector<Time> after(kRanks);
  int arrived = 0;
  for (int r = 0; r < kRanks; ++r) {
    sim::spawn([](Job& j, int rank, std::vector<Time>* out,
                  int* count) -> CoTask<void> {
      // Stagger arrival: rank r waits r*10us before the barrier.
      co_await sim::delay(j.m.engine(), Time::us(rank * 10));
      ++*count;
      EXPECT_EQ(co_await j.comm(rank).barrier(), PTL_OK);
      // No rank may exit before the last one arrived.
      EXPECT_EQ(*count, 5);
      (*out)[static_cast<std::size_t>(rank)] = j.m.engine().now();
    }(job, r, &after, &arrived));
  }
  job.m.run();
  EXPECT_EQ(arrived, kRanks);
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_GE(after[static_cast<std::size_t>(r)], Time::us(40));
  }
}

TEST(MpiCollectives, SendrecvExchanges) {
  Job job(2);
  const std::uint64_t a_s = job.proc(0).alloc(64), a_r = job.proc(0).alloc(64);
  const std::uint64_t b_s = job.proc(1).alloc(64), b_r = job.proc(1).alloc(64);
  job.proc(0).write_bytes(a_s, pattern(64, 1));
  job.proc(1).write_bytes(b_s, pattern(64, 2));
  bool d0 = false, d1 = false;
  sim::spawn([](Comm& c, std::uint64_t s, std::uint64_t r,
                bool* done) -> CoTask<void> {
    EXPECT_EQ(co_await c.sendrecv(s, 64, 1, 0, r, 64, 1, 0, nullptr), PTL_OK);
    *done = true;
  }(job.comm(0), a_s, a_r, &d0));
  sim::spawn([](Comm& c, std::uint64_t s, std::uint64_t r,
                bool* done) -> CoTask<void> {
    EXPECT_EQ(co_await c.sendrecv(s, 64, 0, 0, r, 64, 0, 0, nullptr), PTL_OK);
    *done = true;
  }(job.comm(1), b_s, b_r, &d1));
  job.m.run();
  ASSERT_TRUE(d0 && d1);
  std::vector<std::byte> got(64);
  job.proc(0).read_bytes(a_r, got);
  EXPECT_EQ(got, pattern(64, 2));
  job.proc(1).read_bytes(b_r, got);
  EXPECT_EQ(got, pattern(64, 1));
}

// --------------------------------------------------------------- perf ----

TEST(MpiPerf, MpiSlowerThanRawPortalsButSameOrder) {
  // One-way small-message latency through MPI must exceed raw put latency
  // (the MPI library adds host overhead) but stay in the same few-us range.
  Job job(2);
  const std::uint64_t sbuf = job.proc(0).alloc(8);
  const std::uint64_t rbuf = job.proc(1).alloc(8);
  constexpr int kIters = 20;
  bool done = false;
  Time elapsed{};
  sim::spawn([](Job& j, std::uint64_t sb, bool*) -> CoTask<void> {
    for (int i = 0; i < kIters; ++i) {
      EXPECT_EQ(co_await j.comm(0).send(sb, 8, 1, 1), PTL_OK);
      EXPECT_EQ(co_await j.comm(0).recv(sb, 8, 1, 2, nullptr), PTL_OK);
    }
  }(job, sbuf, nullptr));
  sim::spawn([](Job& j, std::uint64_t rb, bool* d,
                Time* out) -> CoTask<void> {
    const Time start = j.m.engine().now();
    for (int i = 0; i < kIters; ++i) {
      EXPECT_EQ(co_await j.comm(1).recv(rb, 8, 0, 1, nullptr), PTL_OK);
      EXPECT_EQ(co_await j.comm(1).send(rb, 8, 0, 2), PTL_OK);
    }
    *out = j.m.engine().now() - start;
    *d = true;
  }(job, rbuf, &done, &elapsed));
  job.m.run();
  ASSERT_TRUE(done);
  const double one_way_us = elapsed.to_us() / (2.0 * kIters);
  EXPECT_GT(one_way_us, 5.39);  // must exceed raw portals put
  EXPECT_LT(one_way_us, 20.0);  // but stay in range
}

}  // namespace
}  // namespace xt::mpi
