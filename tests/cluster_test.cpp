// Unit tests for the multi-tenant cluster layer (src/cluster): placement
// policies, Poisson trace generation, and the FIFO scheduler's isolation,
// queueing, and determinism guarantees.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cluster/placement.hpp"
#include "cluster/scheduler.hpp"

namespace xt::cluster {
namespace {

// ----------------------------------------------------------- Placement ----

TEST(Placement, NamesRoundTrip) {
  for (Placement p : {Placement::kContiguous, Placement::kScattered,
                      Placement::kRandom}) {
    const auto back = placement_from_name(placement_name(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  EXPECT_EQ(placement_from_name("block"), Placement::kContiguous);
  EXPECT_EQ(placement_from_name("stride"), Placement::kScattered);
  EXPECT_FALSE(placement_from_name("nope").has_value());
}

TEST(Placement, ContiguousIsLowestConsecutiveRun) {
  NodeAllocator a(16, 1);
  const auto nodes = a.allocate(4, Placement::kContiguous);
  ASSERT_EQ(nodes.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(nodes[static_cast<std::size_t>(i)],
              static_cast<net::NodeId>(i));
  }
}

TEST(Placement, ContiguousFallsBackWhenFragmented) {
  NodeAllocator a(8, 1);
  auto first = a.allocate(3, Placement::kContiguous);  // takes 0,1,2
  ASSERT_EQ(first.size(), 3u);
  auto second = a.allocate(4, Placement::kContiguous);  // run 3..6
  ASSERT_EQ(second.size(), 4u);
  EXPECT_EQ(second.front(), 3u);
  // Free = {7} plus the released 0,1,2: no run of 4 remains, so the
  // allocator falls back to the n lowest free ids.
  a.release(first);
  auto third = a.allocate(4, Placement::kContiguous);
  ASSERT_EQ(third.size(), 4u);
  EXPECT_EQ(third, (std::vector<net::NodeId>{0, 1, 2, 7}));
}

TEST(Placement, ScatteredStridesTheFreeSet) {
  NodeAllocator a(16, 1);
  const auto nodes = a.allocate(4, Placement::kScattered);
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes, (std::vector<net::NodeId>{0, 4, 8, 12}));
}

TEST(Placement, RandomIsValidDisjointAndSeedDeterministic) {
  NodeAllocator a(32, 7);
  NodeAllocator b(32, 7);
  const auto na = a.allocate(8, Placement::kRandom);
  const auto nb = b.allocate(8, Placement::kRandom);
  EXPECT_EQ(na, nb);  // same seed, same draw
  std::set<net::NodeId> seen(na.begin(), na.end());
  EXPECT_EQ(seen.size(), na.size());  // no duplicates
  for (net::NodeId n : na) EXPECT_LT(n, 32u);
  // A second allocation from the same allocator is disjoint.
  const auto nc = a.allocate(8, Placement::kRandom);
  ASSERT_EQ(nc.size(), 8u);
  for (net::NodeId n : nc) EXPECT_EQ(seen.count(n), 0u);
}

TEST(Placement, AllocateFailsWhenShortAndReleaseRestores) {
  NodeAllocator a(8, 1);
  const auto first = a.allocate(6, Placement::kContiguous);
  ASSERT_EQ(first.size(), 6u);
  EXPECT_EQ(a.free_count(), 2);
  EXPECT_TRUE(a.allocate(3, Placement::kRandom).empty());
  EXPECT_EQ(a.free_count(), 2);  // failed allocation takes nothing
  a.release(first);
  EXPECT_EQ(a.free_count(), 8);
  EXPECT_EQ(a.allocate(8, Placement::kScattered).size(), 8u);
}

// -------------------------------------------------------- poisson_trace ----

TraceSpec small_trace() {
  TraceSpec ts;
  ts.jobs = 6;
  ts.arrival_rate_per_sec = 1000.0;
  JobTemplate tpl;
  tpl.work.pattern = workload::PatternKind::kUniform;
  tpl.work.ranks = 4;
  tpl.work.msgs_per_sender = 4;
  ts.mix.push_back(tpl);
  tpl.work.pattern = workload::PatternKind::kIncast;
  ts.mix.push_back(tpl);
  ts.seed = 42;
  return ts;
}

TEST(PoissonTrace, DeterministicAndSortedArrivals) {
  const auto a = poisson_trace(small_trace());
  const auto b = poisson_trace(small_trace());
  ASSERT_EQ(a.size(), 6u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].work.seed, b[i].work.seed);
    EXPECT_EQ(a[i].id, static_cast<int>(i));
    if (i > 0) {
      EXPECT_GE(a[i].arrival, a[i - 1].arrival);
    }
  }
}

TEST(PoissonTrace, CyclesMixAndForksSeeds) {
  const auto jobs = poisson_trace(small_trace());
  std::set<std::uint64_t> seeds;
  for (const JobSpec& j : jobs) {
    EXPECT_EQ(j.work.pattern, j.id % 2 == 0
                                  ? workload::PatternKind::kUniform
                                  : workload::PatternKind::kIncast);
    seeds.insert(j.work.seed);
  }
  EXPECT_EQ(seeds.size(), jobs.size());  // every job's traffic independent
}

// ---------------------------------------------------------- run_cluster ----

JobSpec light_job(int id, workload::PatternKind pk, int ranks,
                  std::uint64_t seed, Placement pl = Placement::kContiguous) {
  JobSpec j;
  j.id = id;
  j.work.pattern = pk;
  j.work.ranks = ranks;
  j.work.bytes = 1024;
  j.work.msgs_per_sender = 5;
  j.work.seed = seed;
  j.placement = pl;
  return j;
}

TEST(RunCluster, SingleJobCompletesWithExactCounts) {
  ClusterSpec cs;
  cs.nodes = 16;
  cs.jobs = {light_job(0, workload::PatternKind::kUniform, 8, 5)};
  const ClusterResult r = run_cluster(cs);
  ASSERT_EQ(r.jobs.size(), 1u);
  const JobResult& j = r.jobs[0];
  EXPECT_TRUE(j.placed);
  EXPECT_TRUE(j.work.complete);
  EXPECT_EQ(j.work.sent, 8u * 5u);
  EXPECT_EQ(j.work.delivered, 8u * 5u);
  EXPECT_EQ(j.nodes.size(), 8u);
  EXPECT_GT(r.makespan.to_ps(), 0);
  EXPECT_GT(r.utilization, 0.0);
  EXPECT_EQ(r.adaptive_deflections, 0u);
}

TEST(RunCluster, ConcurrentJobsAreIsolated) {
  // Two jobs sharing the machine: every message of each lands in its own
  // job, with exact per-job counts (match-bit namespaces keep traffic from
  // crossing over even though the wires are shared).
  ClusterSpec cs;
  cs.nodes = 16;
  cs.jobs = {light_job(0, workload::PatternKind::kUniform, 6, 5),
             light_job(1, workload::PatternKind::kIncast, 6, 9)};
  const ClusterResult r = run_cluster(cs);
  ASSERT_EQ(r.jobs.size(), 2u);
  EXPECT_EQ(r.jobs[0].work.delivered, 6u * 5u);
  EXPECT_EQ(r.jobs[1].work.delivered, 5u * 5u);  // incast: ranks-1 senders
  EXPECT_TRUE(r.jobs[0].work.complete);
  EXPECT_TRUE(r.jobs[1].work.complete);
  // Space sharing: node sets are disjoint.
  std::set<net::NodeId> a(r.jobs[0].nodes.begin(), r.jobs[0].nodes.end());
  for (net::NodeId n : r.jobs[1].nodes) EXPECT_EQ(a.count(n), 0u);
}

TEST(RunCluster, FifoQueuesWhenMachineIsFull) {
  // Both jobs want more than half the machine; the second must wait for
  // the first to depart even though it arrived immediately after.
  ClusterSpec cs;
  cs.nodes = 8;
  cs.jobs = {light_job(0, workload::PatternKind::kUniform, 6, 5),
             light_job(1, workload::PatternKind::kUniform, 6, 9)};
  cs.jobs[1].arrival = sim::Time::ns(1);
  const ClusterResult r = run_cluster(cs);
  EXPECT_TRUE(r.jobs[0].placed);
  EXPECT_TRUE(r.jobs[1].placed);
  EXPECT_GE(r.jobs[1].start, r.jobs[0].end);
  EXPECT_GT(r.jobs[1].queue_wait().to_ps(), 0);
}

TEST(RunCluster, UnplaceableJobIsDroppedNotQueuedForever) {
  ClusterSpec cs;
  cs.nodes = 8;
  cs.jobs = {light_job(0, workload::PatternKind::kUniform, 64, 5),
             light_job(1, workload::PatternKind::kUniform, 4, 9)};
  const ClusterResult r = run_cluster(cs);
  EXPECT_FALSE(r.jobs[0].placed);
  EXPECT_TRUE(r.jobs[1].placed);
  EXPECT_TRUE(r.jobs[1].work.complete);
}

TEST(RunCluster, RerunIsByteDeterministic) {
  ClusterSpec cs;
  cs.nodes = 16;
  cs.seed = 3;
  cs.jobs = {light_job(0, workload::PatternKind::kRpc, 6, 5,
                       Placement::kRandom),
             light_job(1, workload::PatternKind::kHalo3d, 8, 9,
                       Placement::kRandom)};
  cs.jobs[0].work.rpc_clients = 3;
  const ClusterResult a = run_cluster(cs);
  const ClusterResult b = run_cluster(cs);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].nodes, b.jobs[i].nodes);
    EXPECT_EQ(a.jobs[i].start, b.jobs[i].start);
    EXPECT_EQ(a.jobs[i].end, b.jobs[i].end);
    EXPECT_EQ(a.jobs[i].work.latency_ps, b.jobs[i].work.latency_ps);
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.utilization, b.utilization);
}

TEST(RunCluster, AdaptiveRoutingDeliversEverythingAndCounts) {
  ClusterSpec cs;
  cs.nodes = 16;
  cs.routing = net::Routing::kAdaptive;
  cs.jobs = {light_job(0, workload::PatternKind::kUniform, 8, 5,
                       Placement::kScattered),
             light_job(1, workload::PatternKind::kUniform, 8, 9,
                       Placement::kScattered)};
  const ClusterResult r = run_cluster(cs);
  EXPECT_TRUE(r.jobs[0].work.complete);
  EXPECT_TRUE(r.jobs[1].work.complete);
  EXPECT_EQ(r.jobs[0].work.delivered, 8u * 5u);
  EXPECT_EQ(r.jobs[1].work.delivered, 8u * 5u);
}

TEST(RunCluster, TwoVcArbitrationDeliversEverything) {
  ClusterSpec cs;
  cs.nodes = 16;
  cs.vcs = 2;
  cs.jobs = {light_job(0, workload::PatternKind::kUniform, 6, 5),
             light_job(1, workload::PatternKind::kIncast, 6, 9)};
  const ClusterResult r = run_cluster(cs);
  EXPECT_TRUE(r.jobs[0].work.complete);
  EXPECT_TRUE(r.jobs[1].work.complete);
}

TEST(RunCluster, MatchesStandaloneWorkloadShapeOfTraffic) {
  // A single contiguous job on a machine exactly its size behaves like the
  // standalone workload runner: identity rank->node map, same counts.
  ClusterSpec cs;
  cs.nodes = 8;
  cs.jobs = {light_job(0, workload::PatternKind::kUniform, 8, 5)};
  const ClusterResult r = run_cluster(cs);
  ASSERT_TRUE(r.jobs[0].placed);
  for (std::size_t i = 0; i < r.jobs[0].nodes.size(); ++i) {
    EXPECT_EQ(r.jobs[0].nodes[i], static_cast<net::NodeId>(i));
  }
  EXPECT_TRUE(r.jobs[0].work.complete);
}

}  // namespace
}  // namespace xt::cluster
