// Tests for the NetPIPE harness (src/netpipe), including the properties of
// the measured curves that reproduce the paper's figures.

#include <gtest/gtest.h>

#include "harness/netpipe_bench.hpp"
#include "netpipe/netpipe.hpp"

namespace xt::np {
namespace {

using harness::measure;

// ------------------------------------------------------------- ladder ----

TEST(SizeLadder, CoversPowersOfTwoWithPerturbation) {
  Options o;
  o.min_bytes = 1;
  o.max_bytes = 64;
  o.perturbation = 3;
  const auto l = size_ladder(o);
  // Must include 1..64 powers of two and their +/-3 neighbours in range.
  for (const std::size_t want : {1u, 2u, 4u, 5u, 7u, 8u, 11u, 13u, 16u, 19u,
                                 29u, 32u, 35u, 61u, 64u}) {
    EXPECT_NE(std::find(l.begin(), l.end(), want), l.end()) << want;
  }
  EXPECT_TRUE(std::is_sorted(l.begin(), l.end()));
  EXPECT_EQ(std::adjacent_find(l.begin(), l.end()), l.end());  // unique
  EXPECT_LE(l.back(), 64u + 3u);
}

TEST(SizeLadder, RespectsBounds) {
  Options o;
  o.min_bytes = 100;
  o.max_bytes = 1000;
  for (const auto s : size_ladder(o)) {
    EXPECT_GE(s, 100u);
    EXPECT_LE(s, 1000u);
  }
}

TEST(FormatTable, ContainsSeriesAndRows) {
  std::vector<Sample> s{{64, 5.0, 12.8}};
  const auto t = format_table("put", Pattern::kPingPong, s);
  EXPECT_NE(t.find("put"), std::string::npos);
  EXPECT_NE(t.find("64"), std::string::npos);
  EXPECT_NE(t.find("ping-pong"), std::string::npos);
}

// ---------------------------------------------- figure-shape properties ----

Options small_sweep(std::size_t max) {
  Options o;
  o.max_bytes = max;
  o.base_iters = 8;
  o.min_iters = 2;
  return o;
}

TEST(Figure4, PutLatencyMatchesPaperAnchor) {
  const auto s = measure(Transport::kPut, Pattern::kPingPong, small_sweep(16));
  ASSERT_FALSE(s.empty());
  // Paper: 5.39 us one-way at 1 byte.  Calibrated within 2%.
  EXPECT_NEAR(s.front().usec_per_transfer, 5.39, 0.11);
}

TEST(Figure4, InlineStepAtThirteenBytes) {
  const auto s = measure(Transport::kPut, Pattern::kPingPong, small_sweep(16));
  double at12 = 0, at13 = 0;
  for (const auto& x : s) {
    if (x.bytes == 11) at12 = x.usec_per_transfer;  // ladder: 8+3
    if (x.bytes == 13) at13 = x.usec_per_transfer;
  }
  ASSERT_GT(at12, 0);
  ASSERT_GT(at13, 0);
  // The second interrupt appears: a jump of well over a microsecond.
  EXPECT_GT(at13 - at12, 1.5);
}

TEST(Figure4, TransportOrderingMatchesPaper) {
  // put < get, put < mpich-1.2.6 < mpich2 at 1 byte.
  const auto put =
      measure(Transport::kPut, Pattern::kPingPong, small_sweep(1));
  const auto get =
      measure(Transport::kGet, Pattern::kPingPong, small_sweep(1));
  const auto m1 =
      measure(Transport::kMpich1, Pattern::kPingPong, small_sweep(1));
  const auto m2 =
      measure(Transport::kMpich2, Pattern::kPingPong, small_sweep(1));
  const double p = put.front().usec_per_transfer;
  EXPECT_LT(p, get.front().usec_per_transfer);
  EXPECT_LT(p, m1.front().usec_per_transfer);
  EXPECT_LT(m1.front().usec_per_transfer, m2.front().usec_per_transfer);
  // MPI anchors: 7.97 and 8.40 us.
  EXPECT_NEAR(m1.front().usec_per_transfer, 7.97, 0.25);
  EXPECT_NEAR(m2.front().usec_per_transfer, 8.40, 0.25);
}

TEST(Figure5, PeakBandwidthNearPaperAnchor) {
  Options o = small_sweep(4 << 20);
  o.perturbation = 0;
  const auto s = measure(Transport::kPut, Pattern::kPingPong, o);
  // Paper: 1108.76 MB/s at 8 MB; by 4 MB the curve is within ~1% of peak.
  EXPECT_NEAR(s.back().mbytes_per_sec, 1108.0, 25.0);
}

TEST(Figure5, BandwidthMonotonicallyRises) {
  Options o = small_sweep(1 << 20);
  o.perturbation = 0;
  const auto s = measure(Transport::kPut, Pattern::kPingPong, o);
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_GE(s[i].mbytes_per_sec, s[i - 1].mbytes_per_sec * 0.95)
        << "at " << s[i].bytes;
  }
}

TEST(Figure6, StreamingBeatsPingPongAtSmallSizes) {
  Options o = small_sweep(4096);
  o.perturbation = 0;
  const auto pp = measure(Transport::kPut, Pattern::kPingPong, o);
  const auto st = measure(Transport::kPut, Pattern::kStream, o);
  // "the graph is steeper for this curve": streaming reaches a given
  // bandwidth at smaller sizes.
  for (std::size_t i = 0; i < pp.size(); ++i) {
    EXPECT_GT(st[i].mbytes_per_sec, pp[i].mbytes_per_sec) << pp[i].bytes;
  }
}

TEST(Figure6, StreamingGetCannotPipeline) {
  // The gap is widest where per-message overhead dominates: each get is a
  // full blocking round trip, while puts pipeline back to back.
  Options o = small_sweep(8192);
  o.perturbation = 0;
  const auto put = measure(Transport::kPut, Pattern::kStream, o);
  const auto get = measure(Transport::kGet, Pattern::kStream, o);
  // "a much greater impact on the performance of the get operation".
  EXPECT_LT(get.back().mbytes_per_sec, put.back().mbytes_per_sec * 0.6);
}

TEST(Figure7, BidirDoublesUnidir) {
  Options o = small_sweep(4 << 20);
  o.perturbation = 0;
  const auto uni = measure(Transport::kPut, Pattern::kPingPong, o);
  const auto bi = measure(Transport::kPut, Pattern::kBidir, o);
  // Paper: 2203.19 vs 1108.76 MB/s at the top end (ratio ~1.99).
  const double ratio =
      bi.back().mbytes_per_sec / uni.back().mbytes_per_sec;
  EXPECT_NEAR(ratio, 2.0, 0.1);
  EXPECT_NEAR(bi.back().mbytes_per_sec, 2203.0, 60.0);
}

TEST(Figures, MpiTracksPutBandwidthClosely) {
  // "The MPI bandwidth is only slightly less" (Fig. 5).
  Options o = small_sweep(1 << 20);
  o.perturbation = 0;
  const auto put = measure(Transport::kPut, Pattern::kPingPong, o);
  const auto mpi = measure(Transport::kMpich1, Pattern::kPingPong, o);
  EXPECT_GT(mpi.back().mbytes_per_sec, put.back().mbytes_per_sec * 0.85);
  EXPECT_LE(mpi.back().mbytes_per_sec, put.back().mbytes_per_sec * 1.001);
}

}  // namespace
}  // namespace xt::np
