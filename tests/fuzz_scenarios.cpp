// Scenario fuzzer: random (pattern x transport config x FaultPlan) tuples,
// invariants armed, replayable from a one-line reproducer.
//
// Every tuple is a pure function of its 64-bit seed, and every run of a
// tuple is deterministic (single-threaded event loop, all randomness from
// forked sim::Rng streams), so:
//   * `fuzz_scenarios --seeds N` explores N tuples, fanned out over --jobs
//     workers with input-ordered results — stdout is byte-identical for any
//     --jobs value;
//   * a failure prints `--seed S --faults "<plan>"`, and replaying exactly
//     that line reproduces the failing run bit-for-bit;
//   * a failure also dumps the engine's flight recorder (the last 256
//     dispatched events) to fuzz_flight_<seed>.txt next to the reproducer
//     line, so the post-mortem starts from the simulator's last moments.
//
// A seed FAILS when the InvariantChecker collected violations, when a
// firmware panicked for a reason fault injection cannot explain, or when
// the run threw.  Incomplete delivery is NOT a failure by itself: plans
// without go-back-n lose messages by design; the invariants assert those
// losses are *accounted* (explicit failure events, no stranded initiators,
// conservation balance), which is the property under test.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "fault/invariants.hpp"
#include "fault/plan.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "sim/rng.hpp"
#include "sim/strf.hpp"
#include "telemetry/flight_recorder.hpp"
#include "workload/generator.hpp"

namespace {

using xt::fault::FaultPlan;

struct Tuple {
  xt::workload::WorkloadSpec spec;
  xt::host::ProcMode mode = xt::host::ProcMode::kUser;
  xt::ss::Config cfg{};
  FaultPlan plan{};
  std::uint64_t scenario_seed = 1;
};

/// Derives the whole tuple from one seed.  Changing this function changes
/// what every seed means, so reproducer lines are only stable within one
/// build — which is all a fuzzer needs.
Tuple derive(std::uint64_t seed) {
  xt::sim::Rng rng(seed ^ 0x5eedf0cc1aull);
  Tuple t;

  t.cfg.gobackn = rng.chance(0.5);
  t.mode = rng.chance(0.3) ? xt::host::ProcMode::kAccel
                           : xt::host::ProcMode::kUser;

  using PK = xt::workload::PatternKind;
  static constexpr PK kPats[] = {PK::kUniform, PK::kHalo3d, PK::kPermutation,
                                 PK::kIncast, PK::kRpc};
  t.spec.pattern = kPats[rng.below(5)];
  t.spec.ranks = rng.chance(0.5) ? 4 : 8;
  t.spec.bytes = 64u << rng.below(6);  // 64 B .. 2 KB
  t.spec.msgs_per_sender = 10 + static_cast<int>(rng.below(30));
  t.spec.loop = rng.chance(0.5) ? xt::workload::Loop::kOpen
                                : xt::workload::Loop::kClosed;
  t.spec.offered_msgs_per_sec = 2e5 + rng.uniform01() * 8e5;
  t.spec.outstanding = 2 + static_cast<int>(rng.below(5));
  // Without retransmission, lost deliveries must still terminate the run:
  // pace on send-end and let receivers count dropped attempts.
  t.spec.count_drops = !t.cfg.gobackn;
  // Match-list churn storms: decoy ME attach/insert/unlink interleaved
  // with traffic (stresses the indexed matcher's maintenance paths).
  t.spec.me_churn = rng.chance(0.35);
  t.spec.seed = rng.u64();
  t.scenario_seed = rng.u64();

  const std::uint32_t allowed =
      t.cfg.gobackn ? xt::fault::kAllKinds : xt::fault::kNoRetryKinds;
  std::uint32_t kinds = 0;
  for (std::uint32_t bit = 1; bit <= xt::fault::kNodeDeath; bit <<= 1) {
    if ((allowed & bit) != 0 && rng.chance(0.25)) kinds |= bit;
  }
  if (kinds == 0) kinds = xt::fault::kDrop;  // at least one rate fault
  t.plan.kinds = kinds;
  t.plan.seed = rng.u64();
  t.plan.rate = 0.002 + rng.uniform01() * 0.03;
  t.plan.horizon_ns = 500'000;
  // Keep the quiesce horizon short: every armed timeout extends the run.
  t.plan.ack_timeout_ns = 20'000'000;
  if ((kinds & xt::fault::kNodeDeath) != 0) {
    t.plan.death_node = static_cast<int>(rng.below(
        static_cast<std::uint64_t>(t.spec.ranks)));
    t.plan.death_at_ns = 50'000 + rng.below(150'000);
    t.plan.revive_after_ns = rng.chance(0.5) ? 100'000 : 0;
  }
  return t;
}

struct SeedResult {
  std::uint64_t seed = 0;
  bool ok = false;
  std::string line;    ///< one printable summary line
  std::string detail;  ///< violations / reproducer on failure
};

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

SeedResult run_one(std::uint64_t seed, const FaultPlan* plan_override) {
  Tuple t = derive(seed);
  if (plan_override != nullptr) t.plan = *plan_override;

  SeedResult r;
  r.seed = seed;
  const std::string repro = xt::sim::strf(
      "  reproduce: fuzz_scenarios --seed %llu --faults \"%s\"",
      static_cast<unsigned long long>(seed), t.plan.to_cli().c_str());
  // Black box for the post-mortem: on any failure, dump the engine's
  // last-dispatches ring next to the reproducer line.
  std::unique_ptr<xt::harness::Instance> inst;
  const auto flight_dump = [&inst, seed]() -> std::string {
    if (inst == nullptr) return {};
    const std::string path = xt::sim::strf(
        "fuzz_flight_%llu.txt", static_cast<unsigned long long>(seed));
    if (!inst->engine().flight_recorder().dump_to(path)) return {};
    return "  flight recorder: " + path + "\n";
  };
  try {
    xt::harness::Scenario sc = xt::workload::workload_scenario(
        t.spec, t.mode, t.cfg, t.scenario_seed);
    sc.with_faults(t.plan);
    inst = sc.build();
    const xt::workload::WorkloadResult res =
        xt::workload::run_workload(*inst, t.spec);

    xt::fault::InvariantChecker* chk = inst->invariants();
    // A panicked firmware is a dead node as far as conservation goes: its
    // in-flight messages can never settle.  Whether the panic itself was
    // acceptable is judged separately below.
    for (std::size_t n = 0; n < inst->machine().node_count(); ++n) {
      if (inst->machine().node(static_cast<xt::net::NodeId>(n))
              .firmware()
              .panicked()) {
        chk->node_died(static_cast<std::uint32_t>(n));
      }
    }
    chk->finish();

    std::vector<std::string> problems = chk->violations();
    const std::string panic = inst->machine().first_panic();
    // Acceptable deaths: the plan's injected kill, and — without go-back-n
    // only — resource exhaustion, which panics by design (incast overload
    // has nowhere to push back without a retry protocol).
    const bool panic_excused =
        panic.empty() ||
        panic.find("fault injection: node killed") != std::string::npos ||
        (!t.cfg.gobackn &&
         (panic.find("exhausted") != std::string::npos ||
          panic.find("out of RX pendings") != std::string::npos));
    if (!panic_excused) problems.push_back("unexpected panic: " + panic);

    const xt::fault::Injector::Totals tot = inst->injector()->totals();
    const std::uint64_t injected = tot.drops + tot.scripted_drops +
                                   tot.reorders + tot.silent_corrupts +
                                   tot.corrupt_bursts + tot.sram_denials +
                                   tot.irq_dropped + tot.irq_delayed +
                                   tot.stalls + tot.kills + tot.revives;

    std::uint64_t digest = 0xcbf29ce484222325ull;
    digest = fnv(digest, res.sent);
    digest = fnv(digest, res.delivered);
    digest = fnv(digest, res.dropped);
    digest = fnv(digest, chk->accepted());
    digest = fnv(digest, chk->delivered());
    digest = fnv(digest, chk->failed());
    digest = fnv(digest, injected);
    digest = fnv(digest, tot.ack_timeouts);
    digest = fnv(digest,
                 static_cast<std::uint64_t>(inst->engine().now().to_ps()));

    r.ok = problems.empty();
    r.line = xt::sim::strf(
        "seed %4llu %s %-11s ranks=%d %s%s%s sent=%llu delivered=%llu "
        "faults=%llu timeouts=%llu digest=%016llx",
        static_cast<unsigned long long>(seed), r.ok ? "ok  " : "FAIL",
        xt::workload::pattern_name(t.spec.pattern), t.spec.ranks,
        t.cfg.gobackn ? "gbn" : "raw",
        t.mode == xt::host::ProcMode::kAccel ? "+accel" : "",
        t.spec.me_churn ? "+churn" : "",
        static_cast<unsigned long long>(res.sent),
        static_cast<unsigned long long>(res.delivered),
        static_cast<unsigned long long>(injected),
        static_cast<unsigned long long>(tot.ack_timeouts),
        static_cast<unsigned long long>(digest));
    if (!r.ok) {
      for (const std::string& v : problems) r.detail += "  ! " + v + "\n";
      r.detail += repro + "\n";
      r.detail += flight_dump();
    }
  } catch (const std::exception& e) {
    r.ok = false;
    r.line = xt::sim::strf("seed %4llu FAIL (exception)",
                           static_cast<unsigned long long>(seed));
    r.detail = std::string("  ! threw: ") + e.what() + "\n" + repro + "\n";
    r.detail += flight_dump();
  }
  return r;
}

[[noreturn]] void usage(int rc) {
  std::fprintf(stderr,
               "usage: fuzz_scenarios [--seeds N] [--seed S] [--base B]\n"
               "                      [--faults SPEC] [--jobs N]\n"
               "  --seeds N     fuzz seeds B..B+N-1 (default 20)\n"
               "  --seed S      run exactly one seed (replay mode)\n"
               "  --base B      first seed of the range (default 1)\n"
               "  --faults SPEC override the derived fault plan (replay)\n"
               "  --jobs N      worker threads; output identical for any N\n");
  std::exit(rc);
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 20, jobs = 0;
  std::uint64_t base = 1;
  bool single = false;
  std::uint64_t single_seed = 0;
  FaultPlan override_plan;
  bool have_override = false;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--seeds") == 0 && i + 1 < argc) {
      seeds = std::atoi(argv[++i]);
    } else if (std::strcmp(a, "--seed") == 0 && i + 1 < argc) {
      single = true;
      single_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(a, "--base") == 0 && i + 1 < argc) {
      base = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(a, "--faults") == 0 && i + 1 < argc) {
      if (!FaultPlan::parse(argv[++i], &override_plan)) {
        std::fprintf(stderr, "bad --faults spec '%s'\n", argv[i]);
        return 2;
      }
      have_override = true;
    } else if (std::strcmp(a, "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(a, "--help") == 0) {
      usage(0);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a);
      usage(2);
    }
  }

  std::vector<std::uint64_t> todo;
  if (single) {
    todo.push_back(single_seed);
  } else {
    for (int i = 0; i < seeds; ++i) {
      todo.push_back(base + static_cast<std::uint64_t>(i));
    }
  }

  const FaultPlan* ovr = have_override ? &override_plan : nullptr;
  std::vector<std::function<SeedResult()>> tasks;
  tasks.reserve(todo.size());
  for (const std::uint64_t s : todo) {
    tasks.push_back([s, ovr] { return run_one(s, ovr); });
  }
  const std::vector<SeedResult> results =
      xt::harness::SweepRunner(jobs).run(std::move(tasks));

  int failures = 0;
  for (const SeedResult& r : results) {
    std::printf("%s\n", r.line.c_str());
    if (!r.ok) {
      ++failures;
      std::fputs(r.detail.c_str(), stdout);
    }
  }
  std::printf("fuzz: %zu seed(s), %d failure(s)\n", results.size(), failures);
  return failures == 0 ? 0 : 1;
}
