// Tests for src/workload: pattern determinism, torus adjacency, message
// conservation over the live stack, --jobs invariance of results,
// percentile cross-checks, the link-corruption/e2e-CRC regression, and the
// closed-loop-RPC vs Figure-4 ping-pong anchor.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "harness/netpipe_bench.hpp"
#include "harness/scenario.hpp"
#include "net/coord.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/provenance.hpp"
#include "workload/generator.hpp"
#include "workload/incast.hpp"
#include "workload/load_runner.hpp"
#include "workload/pattern.hpp"

namespace xt {
namespace {

using workload::Pattern;
using workload::PatternKind;

// ------------------------------------------------------------ patterns --

TEST(WorkloadPattern, NameRoundTrip) {
  for (PatternKind k : workload::all_patterns()) {
    const auto back = workload::pattern_from_name(workload::pattern_name(k));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(workload::pattern_from_name("bogus").has_value());
}

TEST(WorkloadPattern, DeterministicAcrossInstances) {
  const net::Shape shape = harness::shape_for_ranks(8);
  for (PatternKind k : workload::all_patterns()) {
    Pattern a(k, shape, 8, 42);
    Pattern b(k, shape, 8, 42);
    for (int r = 0; r < 8; ++r) {
      if (!a.is_sender(r)) continue;
      for (std::uint64_t i = 0; i < 64; ++i) {
        ASSERT_EQ(a.dest(r, i), b.dest(r, i))
            << workload::pattern_name(k) << " rank " << r << " msg " << i;
      }
    }
  }
}

TEST(WorkloadPattern, SeedChangesUniformSchedule) {
  const net::Shape shape = harness::shape_for_ranks(8);
  Pattern a(PatternKind::kUniform, shape, 8, 1);
  Pattern b(PatternKind::kUniform, shape, 8, 2);
  bool differs = false;
  for (int r = 0; r < 8 && !differs; ++r) {
    for (std::uint64_t i = 0; i < 64 && !differs; ++i) {
      differs = a.dest(r, i) != b.dest(r, i);
    }
  }
  EXPECT_TRUE(differs);
}

TEST(WorkloadPattern, DestinationsNeverSelfAndInRange) {
  const net::Shape shape = harness::shape_for_ranks(8);
  for (PatternKind k : workload::all_patterns()) {
    Pattern p(k, shape, 8, 7);
    for (int r = 0; r < 8; ++r) {
      if (!p.is_sender(r)) continue;
      for (std::uint64_t i = 0; i < 32; ++i) {
        const int d = p.dest(r, i);
        EXPECT_GE(d, 0);
        EXPECT_LT(d, 8);
        EXPECT_NE(d, r) << workload::pattern_name(k);
      }
    }
  }
}

// Brute-force Coord adjacency under `shape` (ranks map 1:1 onto nodes).
std::set<int> coord_neighbors(const net::Shape& shape, int rank) {
  const net::Coord c = shape.to_coord(static_cast<net::NodeId>(rank));
  std::set<int> out;
  // Step one dimension by +/-1, wrapping only where the shape wraps.
  const auto step = [](int a, int extent, bool wrap, bool up) {
    const int b = up ? a + 1 : a - 1;
    if (b >= 0 && b < extent) return b;
    return wrap ? (b + extent) % extent : -1;
  };
  const auto add = [&](net::Coord nc) {
    if (!shape.contains(nc)) return;
    const int id = static_cast<int>(shape.to_id(nc));
    if (id != rank) out.insert(id);
  };
  for (bool up : {true, false}) {
    add(net::Coord{step(c.x, shape.nx, shape.wrap_x, up), c.y, c.z});
    add(net::Coord{c.x, step(c.y, shape.ny, shape.wrap_y, up), c.z});
    add(net::Coord{c.x, c.y, step(c.z, shape.nz, shape.wrap_z, up)});
  }
  return out;
}

TEST(WorkloadPattern, HaloNeighborsMatchCoordAdjacency) {
  const std::vector<net::Shape> shapes = {
      net::Shape::xt3(2, 2, 2), net::Shape::xt3(4, 2, 2),
      net::Shape::red_storm(3, 2, 4), net::Shape::xt3(4, 1, 1)};
  for (const net::Shape& shape : shapes) {
    for (int r = 0; r < shape.count(); ++r) {
      const std::vector<int> got = workload::halo_neighbors(shape, r);
      const std::set<int> want = coord_neighbors(shape, r);
      EXPECT_EQ(std::set<int>(got.begin(), got.end()), want)
          << shape.nx << "x" << shape.ny << "x" << shape.nz << " rank " << r;
      // Probe order must be deduplicated, not merely set-equal.
      EXPECT_EQ(got.size(), want.size());
    }
  }
}

TEST(WorkloadPattern, HaloRoundRobinsOverNeighbors) {
  const net::Shape shape = net::Shape::xt3(2, 2, 2);
  Pattern p(PatternKind::kHalo3d, shape, 8, 3);
  const std::vector<int> nbrs = workload::halo_neighbors(shape, 5);
  ASSERT_FALSE(nbrs.empty());
  for (std::uint64_t i = 0; i < 3 * nbrs.size(); ++i) {
    EXPECT_EQ(p.dest(5, i), nbrs[i % nbrs.size()]);
  }
}

TEST(WorkloadPattern, HaloClipsNeighborsBeyondRankCount) {
  // 24 ranks round up to a 4x4x2 virtual torus with 32 slots; the 8 empty
  // slots are not ranks, so no destination may point at them.  Regression
  // for an out-of-bounds halo3d crash on non-power-of-two jobs.
  const int ranks = 24;
  const net::Shape shape = harness::shape_for_ranks(ranks);
  ASSERT_GT(shape.count(), ranks);
  Pattern p(PatternKind::kHalo3d, shape, ranks, 7);
  for (int r = 0; r < ranks; ++r) {
    if (!p.is_sender(r)) continue;
    for (std::uint64_t i = 0; i < 8; ++i) {
      const int d = p.dest(r, i);
      EXPECT_GE(d, 0);
      EXPECT_LT(d, ranks) << "rank " << r << " msg " << i;
    }
  }
}

TEST(WorkloadPattern, PermutationIsDerangement) {
  const net::Shape shape = harness::shape_for_ranks(16);
  Pattern p(PatternKind::kPermutation, shape, 16, 9);
  const std::vector<int>& perm = p.permutation();
  ASSERT_EQ(perm.size(), 16u);
  std::set<int> targets(perm.begin(), perm.end());
  EXPECT_EQ(targets.size(), 16u);  // bijection
  for (int r = 0; r < 16; ++r) {
    EXPECT_NE(perm[static_cast<std::size_t>(r)], r);  // no fixed points
    EXPECT_EQ(p.dest(r, 0), perm[static_cast<std::size_t>(r)]);
    EXPECT_EQ(p.dest(r, 5), perm[static_cast<std::size_t>(r)]);  // fixed
  }
}

TEST(WorkloadPattern, IncastOnlyNonRootSendsToRoot) {
  const net::Shape shape = harness::shape_for_ranks(8);
  Pattern p(PatternKind::kIncast, shape, 8, 1);
  EXPECT_FALSE(p.is_sender(0));
  for (int r = 1; r < 8; ++r) {
    EXPECT_TRUE(p.is_sender(r));
    EXPECT_EQ(p.dest(r, 0), 0);
    EXPECT_EQ(p.dest(r, 17), 0);
  }
}

// ----------------------------------------------------------- generator --

workload::WorkloadResult run_spec(const workload::WorkloadSpec& spec,
                                  host::ProcMode mode = host::ProcMode::kUser) {
  return workload::run_load_point(spec, mode, ss::Config{}, /*seed=*/1);
}

TEST(WorkloadGenerator, ClosedLoopConservesMessages) {
  workload::WorkloadSpec spec;
  spec.pattern = PatternKind::kUniform;
  spec.ranks = 4;
  spec.bytes = 512;
  spec.msgs_per_sender = 20;
  spec.loop = workload::Loop::kClosed;
  spec.outstanding = 4;
  const workload::WorkloadResult r = run_spec(spec);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.sent, 4u * 20u);
  EXPECT_EQ(r.delivered, r.sent);  // lossless fabric: nothing vanishes
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(r.latency_ps.size(), r.delivered);
  EXPECT_GT(r.span.to_ps(), 0);
}

TEST(WorkloadGenerator, OpenLoopConservesMessagesOnEveryPattern) {
  for (PatternKind k :
       {PatternKind::kUniform, PatternKind::kHalo3d, PatternKind::kPermutation,
        PatternKind::kIncast}) {
    workload::WorkloadSpec spec;
    spec.pattern = k;
    spec.ranks = 4;
    spec.bytes = 256;
    spec.msgs_per_sender = 10;
    spec.loop = workload::Loop::kOpen;
    spec.offered_msgs_per_sec = 2e5;
    const workload::WorkloadResult r = run_spec(spec);
    const int senders = k == PatternKind::kIncast ? 3 : 4;
    EXPECT_TRUE(r.complete) << workload::pattern_name(k);
    EXPECT_EQ(r.sent, static_cast<std::uint64_t>(senders) * 10u);
    EXPECT_EQ(r.delivered, r.sent);
    EXPECT_EQ(r.latency_ps.size(), r.delivered);
    EXPECT_GT(r.sched_span.to_ps(), 0);
    EXPECT_GT(r.offered_effective_per_sec(), 0.0);
  }
}

TEST(WorkloadGenerator, RpcEveryRequestGetsExactlyOneReply) {
  workload::WorkloadSpec spec;
  spec.pattern = PatternKind::kRpc;
  spec.ranks = 4;
  spec.bytes = 128;
  spec.msgs_per_sender = 15;
  spec.loop = workload::Loop::kClosed;
  spec.outstanding = 2;
  const workload::WorkloadResult r = run_spec(spec);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.sent, 4u * 15u);
  EXPECT_EQ(r.delivered, r.sent);   // requests landing on servers
  EXPECT_EQ(r.replies, r.sent);     // one reply per request, all tracked
  EXPECT_EQ(r.latency_ps.size(), r.sent);  // RTT per request
}

TEST(WorkloadGenerator, ResultsIdenticalAcrossRerunsAndModes) {
  workload::WorkloadSpec spec;
  spec.pattern = PatternKind::kUniform;
  spec.ranks = 4;
  spec.msgs_per_sender = 12;
  spec.loop = workload::Loop::kOpen;
  spec.offered_msgs_per_sec = 4e5;
  const workload::WorkloadResult a = run_spec(spec);
  const workload::WorkloadResult b = run_spec(spec);
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.span.to_ps(), b.span.to_ps());
  EXPECT_EQ(a.latency_ps, b.latency_ps);  // full sample vector, not summary
}

TEST(WorkloadLoadRunner, SweepIsJobsInvariant) {
  workload::LoadSweepSpec ls;
  ls.base.pattern = PatternKind::kPermutation;
  ls.base.ranks = 4;
  ls.base.bytes = 1024;
  ls.base.msgs_per_sender = 10;
  ls.offered = {1e5, 1e6};
  ls.seed = 5;
  ls.jobs = 1;
  const workload::LoadCurve serial = workload::run_load_sweep(ls);
  ls.jobs = 2;
  const workload::LoadCurve parallel = workload::run_load_sweep(ls);
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    const workload::WorkloadResult& a = serial.points[i].result;
    const workload::WorkloadResult& b = parallel.points[i].result;
    EXPECT_EQ(a.sent, b.sent);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.span.to_ps(), b.span.to_ps());
    EXPECT_EQ(a.latency_ps, b.latency_ps);
  }
  EXPECT_EQ(serial.saturation_index, parallel.saturation_index);
}

// --------------------------------------------------------- percentiles --

TEST(WorkloadPercentile, NearestRankMatchesBruteForce) {
  workload::WorkloadResult r;
  sim::Rng rng(11);
  for (int i = 0; i < 257; ++i) r.latency_ps.push_back(rng.below(1'000'000));
  std::vector<std::uint64_t> sorted = r.latency_ps;
  std::sort(sorted.begin(), sorted.end());
  for (int p : {1, 25, 50, 90, 99, 100}) {
    const std::size_t n = sorted.size();
    std::size_t rank = (n * static_cast<std::size_t>(p) + 99) / 100;
    rank = std::min(std::max<std::size_t>(rank, 1), n);
    EXPECT_EQ(r.percentile_ps(p), sorted[rank - 1]) << "p" << p;
  }
  EXPECT_EQ(workload::WorkloadResult{}.percentile_ps(50), 0u);
}

TEST(WorkloadPercentile, HistogramBucketBoundsBracketExactValue) {
  // The log2-bucketed histogram reports the containing bucket's upper
  // bound; cross-check it brackets the brute-force nearest-rank value.
  telemetry::Histogram h;
  std::vector<std::uint64_t> vals;
  sim::Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = 1 + rng.below(1u << 20);
    vals.push_back(v);
    h.record(v);
  }
  std::sort(vals.begin(), vals.end());
  for (int p : {50, 90, 99}) {
    std::size_t rank = (vals.size() * static_cast<std::size_t>(p) + 99) / 100;
    rank = std::min(std::max<std::size_t>(rank, 1), vals.size());
    const std::uint64_t exact = vals[rank - 1];
    const std::uint64_t got = h.percentile(p);
    EXPECT_GE(got, exact) << "p" << p;
    EXPECT_EQ(got, telemetry::Histogram::bucket_hi(
                       telemetry::Histogram::bucket_index(exact)))
        << "p" << p;
  }
}

// ----------------------------------------------- telemetry integration --

TEST(WorkloadTelemetry, MetricsAndProvenanceRecorded) {
  workload::WorkloadSpec spec;
  spec.pattern = PatternKind::kUniform;
  spec.ranks = 4;
  spec.msgs_per_sender = 8;
  spec.loop = workload::Loop::kOpen;
  spec.offered_msgs_per_sec = 2e5;

  harness::Scenario sc = workload::workload_scenario(
      spec, host::ProcMode::kUser, ss::Config{}, /*scenario_seed=*/1);
  sc.telemetry.sampling = true;
  sc.telemetry.provenance = true;
  auto inst = sc.build();
  const workload::WorkloadResult r = workload::run_workload(*inst, spec);
  ASSERT_TRUE(r.complete);

  const std::string json = inst->metrics_json();
  EXPECT_NE(json.find("workload.sent"), std::string::npos);
  EXPECT_NE(json.find("workload.delivered"), std::string::npos);
  EXPECT_NE(json.find("workload.latency_ps"), std::string::npos);

  // Open-loop records open at the intended arrival and are stamped through
  // the stack; every workload message shows up in the waterfall.
  ASSERT_NE(inst->provenance(), nullptr);
  std::uint64_t app_opened = 0;
  for (const telemetry::MsgRecord& m : inst->provenance()->messages()) {
    if (!m.stamps.empty() &&
        m.stamps.front().first == telemetry::Stage::kAppArrival) {
      ++app_opened;
      EXPECT_GE(m.stamps.size(), 2u);  // at least arrival + queue
      EXPECT_EQ(m.stamps[1].first, telemetry::Stage::kAppQueue);
    }
  }
  EXPECT_EQ(app_opened, r.sent);
}

// ------------------------------------- link corruption / e2e CRC guard --

// Regression for the paper's end-to-end CRC-32 claim: corruption that
// slips the link-level CRC must always be caught at the destination NIC
// and never surface as a successful delivery.

TEST(WorkloadCrc, UndetectedCorruptionNeverDeliversWithoutGobackn) {
  workload::IncastSpec spec;
  spec.senders = 4;
  spec.msgs_each = 30;
  spec.bytes = 2048;
  spec.cfg.gobackn = false;
  spec.cfg.net.link.undetected_corrupt_prob = 0.05;  // slips the link CRC
  spec.exit = workload::IncastSpec::Exit::kCountDrops;
  const workload::IncastResult r = workload::run_incast(spec);
  const int total = spec.senders * spec.msgs_each;
  ASSERT_FALSE(r.panicked) << r.panic_reason;
  EXPECT_GT(r.dropped, 0);                    // corruption actually struck
  EXPECT_EQ(r.delivered + r.dropped, total);  // every message accounted for
  EXPECT_LT(r.delivered, total);              // and none delivered corrupt
  // Every failed delivery is an e2e CRC rejection — no other drop cause.
  EXPECT_EQ(r.crc_drops, static_cast<std::uint64_t>(r.dropped));
  EXPECT_EQ(r.exhaustion_drops, 0u);
  EXPECT_EQ(r.retransmits, 0u);  // no recovery protocol in this mode
}

TEST(WorkloadCrc, GobacknRetransmitsEveryCrcDropToCompletion) {
  workload::IncastSpec spec;
  spec.senders = 4;
  spec.msgs_each = 30;
  spec.bytes = 2048;
  spec.cfg.gobackn = true;
  spec.cfg.net.link.undetected_corrupt_prob = 0.05;
  spec.exit = workload::IncastSpec::Exit::kRetryUntilOk;
  const workload::IncastResult r = workload::run_incast(spec);
  const int total = spec.senders * spec.msgs_each;
  ASSERT_FALSE(r.panicked) << r.panic_reason;
  EXPECT_EQ(r.delivered, total);   // go-back-n recovers every loss
  EXPECT_GT(r.crc_drops, 0u);      // the e2e CRC kept catching corruption
  EXPECT_GT(r.retransmits, 0u);    // recovery actually ran
}

// ------------------------------------------------------- fig 4 anchor --

TEST(WorkloadAnchor, ClosedLoopRpcMatchesFig4PingPong) {
  // A 1-outstanding 8-byte RPC is the same wire exchange as the Figure-4
  // ping-pong; the two independent harnesses must agree within 5%.
  workload::WorkloadSpec spec;
  spec.pattern = PatternKind::kRpc;
  spec.ranks = 2;
  spec.rpc_clients = 1;
  spec.bytes = 8;
  spec.msgs_per_sender = 128;
  spec.loop = workload::Loop::kClosed;
  spec.outstanding = 1;
  const workload::WorkloadResult r = run_spec(spec);
  ASSERT_TRUE(r.complete);
  ASSERT_EQ(r.latency_ps.size(), 128u);
  double mean_rtt = 0.0;
  for (std::uint64_t v : r.latency_ps) mean_rtt += static_cast<double>(v);
  mean_rtt /= static_cast<double>(r.latency_ps.size());
  const double rpc_usec = mean_rtt * 1e-6 / 2.0;  // one-way, like Fig 4

  np::Options nopt;
  nopt.min_bytes = 8;
  nopt.max_bytes = 8;
  nopt.perturbation = 0;
  const auto fig4 =
      harness::measure(np::Transport::kPut, np::Pattern::kPingPong, nopt);
  ASSERT_FALSE(fig4.empty());
  const double fig4_usec = fig4[0].usec_per_transfer;
  ASSERT_GT(fig4_usec, 0.0);
  EXPECT_LT(std::abs(rpc_usec - fig4_usec) / fig4_usec, 0.05)
      << "rpc " << rpc_usec << " us vs fig4 " << fig4_usec << " us";
}

}  // namespace
}  // namespace xt
