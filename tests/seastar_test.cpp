// Unit tests for the SeaStar NIC model (src/seastar): DMA serialization,
// the rate-limited Rx deposit pipe, and end-to-end CRC behaviour.

#include <gtest/gtest.h>

#include <vector>

#include "net/crc.hpp"
#include "seastar/nic.hpp"
#include "transport/sim_transport.hpp"

namespace xt::ss {
namespace {

using sim::CoTask;
using sim::Time;

class NullClient final : public RxClient {
 public:
  void on_rx_header(const net::MessagePtr& m) override {
    headers.push_back(m);
  }
  void on_rx_complete(const net::MessagePtr& m, bool ok) override {
    completes.emplace_back(m, ok);
  }
  std::vector<net::MessagePtr> headers;
  std::vector<std::pair<net::MessagePtr, bool>> completes;
};

struct Rig {
  sim::Engine eng;
  Config cfg;
  net::Network net{eng, net::Shape::xt3(2, 1, 1), cfg.net};
  transport::SimTransport tp{net};
  Nic nic0{eng, cfg, tp, 0};
  Nic nic1{eng, cfg, tp, 1};
  NullClient c0, c1;
  Rig() {
    nic0.set_rx_client(c0);
    nic1.set_rx_client(c1);
  }
  net::MessagePtr make_msg(std::size_t hdr_fill = 64) {
    auto m = std::make_shared<net::Message>();
    m->src = 0;
    m->dst = 1;
    m->header.assign(hdr_fill, std::byte{0x42});
    return m;
  }
};

TEST(Nic, TransmitStreamsPayloadFromReader) {
  Rig r;
  auto msg = r.make_msg();
  std::vector<std::byte> src(10000);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i * 3);
  }
  sim::spawn([](Rig& rig, net::MessagePtr m,
                std::vector<std::byte>* data) -> CoTask<void> {
    co_await rig.nic0.transmit(
        m,
        [data](std::size_t off, std::span<std::byte> out) {
          std::copy_n(data->begin() + static_cast<std::ptrdiff_t>(off),
                      out.size(), out.begin());
        },
        data->size(), 1);
  }(r, msg, &src));
  r.eng.run();
  ASSERT_EQ(r.c1.completes.size(), 1u);
  EXPECT_TRUE(r.c1.completes[0].second);  // CRC valid
  EXPECT_EQ(r.c1.completes[0].first->payload, src);
  EXPECT_EQ(r.nic0.msgs_sent(), 1u);
  EXPECT_EQ(r.nic1.msgs_received(), 1u);
  EXPECT_EQ(r.nic0.bytes_sent(), src.size());
}

TEST(Nic, TransmitsSerializeOnTxEngine) {
  Rig r;
  std::vector<Time> done;
  for (int i = 0; i < 3; ++i) {
    sim::spawn([](Rig& rig, std::vector<Time>* out) -> CoTask<void> {
      auto m = rig.make_msg();
      co_await rig.nic0.transmit(m, nullptr, 111'500, 1);  // 100 us payload
      out->push_back(rig.eng.now());
    }(r, &done));
  }
  r.eng.run();
  ASSERT_EQ(done.size(), 3u);
  // Each transmit holds the Tx engine for ~100 us of payload reads.
  EXPECT_NEAR((done[1] - done[0]).to_us(), 100.0, 2.0);
  EXPECT_NEAR((done[2] - done[1]).to_us(), 100.0, 2.0);
}

TEST(Nic, DepositLoneMessagePaysOnlyTrailingBurst) {
  Rig r;
  Time elapsed{};
  sim::spawn([](Rig& rig, Time* out) -> CoTask<void> {
    // The deposit call happens AFTER the message body arrived (that is the
    // firmware's contract), so the cut-through window exists; model that
    // by placing the call past the would-be arrival interval.
    co_await sim::delay(rig.eng, Time::ms(1));
    const Time t0 = rig.eng.now();
    co_await rig.nic1.deposit(256 * 1024, 1);
    *out = rig.eng.now() - t0;
  }(r, &elapsed));
  r.eng.run();
  // 1 KiB trailing burst at ~1.115 GB/s is ~0.92 us, NOT the ~235 us a
  // full serialized crossing would cost.
  EXPECT_LT(elapsed, Time::us(2));
  EXPECT_GT(elapsed, Time::ns(500));
}

TEST(Nic, ConcurrentDepositsShareThePipe) {
  // Two simultaneous 256 KiB deposits: the second completes roughly one
  // full service time after the first (the incast cap).
  Rig r;
  std::vector<Time> done;
  for (int i = 0; i < 2; ++i) {
    sim::spawn([](Rig& rig, std::vector<Time>* out) -> CoTask<void> {
      co_await sim::delay(rig.eng, Time::ms(1));
      co_await rig.nic1.deposit(256 * 1024, 1);
      out->push_back(rig.eng.now());
    }(r, &done));
  }
  r.eng.run();
  ASSERT_EQ(done.size(), 2u);
  const double service_us = 256.0 * 1024.0 / 1115.0;  // ~235 us
  EXPECT_NEAR((done[1] - done[0]).to_us(), service_us, 5.0);
}

TEST(Nic, DepositAccountsBusyTime) {
  Rig r;
  sim::spawn([](Rig& rig) -> CoTask<void> {
    co_await sim::delay(rig.eng, Time::ms(2));
    co_await rig.nic1.deposit(1024 * 1024, 1);
  }(r));
  r.eng.run();
  EXPECT_NEAR(r.nic1.rx_busy().to_us(), 1024.0 * 1024.0 / 1115.0, 5.0);
}

TEST(Nic, CrcFailureReportedToClient) {
  Rig r;
  auto msg = r.make_msg();
  msg->corrupted = true;  // as if corruption slipped the link CRC
  r.net.send(msg);
  r.eng.run();
  ASSERT_EQ(r.c1.completes.size(), 1u);
  EXPECT_FALSE(r.c1.completes[0].second);
  EXPECT_EQ(r.nic1.crc_drops(), 1u);
}

TEST(Nic, HeaderBeforeCompleteForBodyMessages) {
  Rig r;
  auto msg = r.make_msg();
  sim::spawn([](Rig& rig, net::MessagePtr m) -> CoTask<void> {
    co_await rig.nic0.transmit(m, nullptr, 64 * 1024, 1);
  }(r, msg));
  r.eng.run();
  ASSERT_EQ(r.c1.headers.size(), 1u);
  ASSERT_EQ(r.c1.completes.size(), 1u);
  EXPECT_LT(r.c1.headers[0]->header_at, r.c1.completes[0].first->completed_at);
}

}  // namespace
}  // namespace xt::ss
