// Tests for the tracing facility (src/sim/trace) and its instrumentation
// hooks in the firmware/host layers.

#include <gtest/gtest.h>

#include "host/node.hpp"
#include "portals/api.hpp"
#include "sim/trace.hpp"

namespace xt::sim {
namespace {

TEST(Trace, DisabledByDefault) {
  Engine eng;
  EXPECT_FALSE(eng.trace_enabled());
  // Emitting with no sink is a safe no-op.
  trace_begin(eng, "t", "x");
  trace_end(eng, "t", "x");
  trace_instant(eng, "t", "y");
}

TEST(Trace, SinkIsPerEngine) {
  Engine a, b;
  Trace tr;
  a.set_trace(&tr);
  EXPECT_TRUE(a.trace_enabled());
  EXPECT_FALSE(b.trace_enabled());  // installing on one engine leaks nowhere
  trace_instant(a, "t", "x");
  trace_instant(b, "t", "y");
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_EQ(tr.records()[0].name, "x");
}

TEST(Trace, RecordsInOrderWithPhases) {
  Trace tr;
  tr.begin("cpu", "work", Time::us(1));
  tr.instant("cpu", "tick", Time::us(2), 7);
  tr.end("cpu", "work", Time::us(3));
  tr.counter("q", "depth", Time::us(4), 42);
  ASSERT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.records()[0].phase, Trace::Phase::kBegin);
  EXPECT_EQ(tr.records()[1].arg, 7);
  EXPECT_EQ(tr.records()[2].phase, Trace::Phase::kEnd);
  EXPECT_EQ(tr.records()[3].arg, 42);
}

TEST(Trace, ChromeJsonIsWellFormed) {
  Trace tr;
  tr.begin("n0.fw", "rx \"quoted\"", Time::us(1));
  tr.end("n0.fw", "rx \"quoted\"", Time::us(2));
  tr.counter("n0.q", "depth", Time::us(3), 5);
  const std::string json = tr.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // Balanced braces as a cheap well-formedness proxy.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Trace, FullStackRunEmitsFirmwareAndCpuSpans) {
  Trace tr;
  {
    host::Machine m(net::Shape::xt3(2, 1, 1));
    m.engine().set_trace(&tr);
    host::Process& a = m.node(0).spawn_process(4);
    host::Process& b = m.node(1).spawn_process(4);
    const std::uint64_t sbuf = a.alloc(4096);
    const std::uint64_t rbuf = b.alloc(4096);
    sim::spawn([](host::Process& p, std::uint64_t buf) -> CoTask<void> {
      auto& api = p.api();
      auto eq = co_await api.PtlEQAlloc(16);
      auto me = co_await api.PtlMEAttach(
          0, ptl::ProcessId{ptl::kNidAny, ptl::kPidAny}, 1, 0,
          ptl::Unlink::kRetain, ptl::InsPos::kAfter);
      ptl::MdDesc d;
      d.start = buf;
      d.length = 4096;
      d.options = ptl::PTL_MD_OP_PUT;
      d.eq = eq.value;
      (void)co_await api.PtlMDAttach(me.value, d, ptl::Unlink::kRetain);
      for (;;) {
        auto ev = co_await api.PtlEQWait(eq.value);
        if (ev.value.type == ptl::EventType::kPutEnd) break;
      }
    }(b, rbuf));
    sim::spawn([](host::Process& p, std::uint64_t buf) -> CoTask<void> {
      auto& api = p.api();
      auto eq = co_await api.PtlEQAlloc(16);
      ptl::MdDesc d;
      d.start = buf;
      d.length = 4096;
      d.eq = eq.value;
      auto md = co_await api.PtlMDBind(d, ptl::Unlink::kRetain);
      (void)co_await api.PtlPut(md.value, ptl::AckReq::kNone,
                                ptl::ProcessId{1, 4}, 0, 0, 1, 0, 0);
      for (;;) {
        auto ev = co_await api.PtlEQWait(eq.value);
        if (ev.value.type == ptl::EventType::kSendEnd) break;
      }
    }(a, sbuf));
    m.run();
  }

  bool saw_fw = false, saw_irq = false, saw_tx = false, saw_deposit = false;
  for (const auto& r : tr.records()) {
    if (r.track == "n1.fw" && r.name == "rx_header") saw_fw = true;
    if (r.track == "n1.cpu" && r.name == "interrupt") saw_irq = true;
    if (r.track == "n0.txdma") saw_tx = true;
    if (r.track == "n1.rxdma") saw_deposit = true;
  }
  EXPECT_TRUE(saw_fw);
  EXPECT_TRUE(saw_irq);
  EXPECT_TRUE(saw_tx);
  EXPECT_TRUE(saw_deposit);
  // Begin/end pairs balance per track+name.
  int depth = 0;
  for (const auto& r : tr.records()) {
    if (r.phase == Trace::Phase::kBegin) ++depth;
    if (r.phase == Trace::Phase::kEnd) --depth;
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace xt::sim
