// Property-based tests: randomized traffic and parameter sweeps over the
// full stack, checking the invariants the design promises rather than
// specific scenarios.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "host/node.hpp"
#include "mpi/mpi.hpp"
#include "portals/api.hpp"
#include "sim/rng.hpp"

namespace xt {
namespace {

using host::Machine;
using host::Process;
using ptl::AckReq;
using ptl::EventType;
using ptl::InsPos;
using ptl::MdDesc;
using ptl::ProcessId;
using ptl::PTL_OK;
using ptl::Unlink;
using sim::CoTask;

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> v(n);
  sim::Rng rng(seed);
  for (auto& b : v) b = static_cast<std::byte>(rng.below(256));
  return v;
}

// ------------------------------------------- truncation invariant sweep ----

// Invariant: for a put of rlength bytes into an MD of `space` bytes with
// TRUNCATE, mlength == min(rlength, space) and exactly mlength bytes land.
class TruncSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

INSTANTIATE_TEST_SUITE_P(
    Sizes, TruncSweep,
    ::testing::Values(std::pair{1u, 1u}, std::pair{100u, 100u},
                      std::pair{100u, 37u}, std::pair{37u, 100u},
                      std::pair{5000u, 4096u}, std::pair{4096u, 5000u},
                      std::pair{70000u, 1000u}, std::pair{12u, 5u},
                      std::pair{13u, 12u}, std::pair{1u, 0u}));

TEST_P(TruncSweep, MlengthIsMinAndBytesExact) {
  const auto [rlength, space] = GetParam();
  Machine m(net::Shape::xt3(2, 1, 1));
  Process& src = m.node(0).spawn_process(4);
  Process& dst = m.node(1).spawn_process(4);
  const auto data = pattern(rlength, rlength * 131 + space);
  const std::uint64_t sbuf = src.alloc(rlength + 1);
  // Guard bytes around the receive window to catch overruns.
  const std::uint64_t rbuf = dst.alloc(space + 64);
  src.write_bytes(sbuf, data);
  std::vector<std::byte> guard(space + 64, std::byte{0xEE});
  dst.write_bytes(rbuf, guard);

  std::uint64_t got_mlength = ~0ull;
  sim::spawn([](Process& p, std::uint64_t buf, std::uint32_t cap,
                std::uint64_t* out) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(16);
    auto me = co_await api.PtlMEAttach(
        0, ProcessId{ptl::kNidAny, ptl::kPidAny}, 9, 0, Unlink::kRetain,
        InsPos::kAfter);
    MdDesc d;
    d.start = buf;
    d.length = cap;
    d.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_TRUNCATE;
    d.eq = eq.value;
    (void)co_await api.PtlMDAttach(me.value, d, Unlink::kRetain);
    for (;;) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kPutEnd) {
        *out = ev.value.mlength;
        break;
      }
    }
  }(dst, rbuf, space, &got_mlength));
  sim::spawn([](Process& p, std::uint64_t buf,
                std::uint32_t len) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(16);
    MdDesc d;
    d.start = buf;
    d.length = len;
    d.eq = eq.value;
    auto md = co_await api.PtlMDBind(d, Unlink::kRetain);
    (void)co_await api.PtlPut(md.value, AckReq::kNone, ProcessId{1, 4}, 0, 0,
                              9, 0, 0);
    for (;;) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kSendEnd) break;
    }
  }(src, sbuf, rlength));
  m.run();

  const std::uint64_t want = std::min(rlength, space);
  EXPECT_EQ(got_mlength, want);
  // Exactly mlength bytes deposited; everything past it untouched.
  std::vector<std::byte> after(space + 64);
  dst.read_bytes(rbuf, after);
  for (std::uint64_t i = 0; i < want; ++i) {
    ASSERT_EQ(after[i], data[i]) << "byte " << i;
  }
  for (std::uint64_t i = want; i < space + 64; ++i) {
    ASSERT_EQ(after[i], std::byte{0xEE}) << "overrun at " << i;
  }
}

// ---------------------------------------------- inline boundary sweep ----

class InlineSweep : public ::testing::TestWithParam<std::uint32_t> {};
INSTANTIATE_TEST_SUITE_P(Sizes, InlineSweep,
                         ::testing::Range(0u, 16u));  // straddles 12

TEST_P(InlineSweep, EverySizeDeliversExactly) {
  const std::uint32_t len = GetParam();
  Machine m(net::Shape::xt3(2, 1, 1));
  Process& src = m.node(0).spawn_process(4);
  Process& dst = m.node(1).spawn_process(4);
  const auto data = pattern(len, len + 1);
  const std::uint64_t sbuf = src.alloc(len + 1);
  const std::uint64_t rbuf = dst.alloc(len + 1);
  if (len > 0) src.write_bytes(sbuf, data);
  bool done = false;
  sim::spawn([](Process& p, std::uint64_t buf, std::uint32_t cap,
                bool* d) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(16);
    auto me = co_await api.PtlMEAttach(
        0, ProcessId{ptl::kNidAny, ptl::kPidAny}, 9, 0, Unlink::kRetain,
        InsPos::kAfter);
    MdDesc desc;
    desc.start = buf;
    desc.length = cap;
    desc.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_TRUNCATE;
    desc.eq = eq.value;
    (void)co_await api.PtlMDAttach(me.value, desc, Unlink::kRetain);
    for (;;) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kPutEnd) break;
    }
    *d = true;
  }(dst, rbuf, len + 1, &done));
  sim::spawn([](Process& p, std::uint64_t buf,
                std::uint32_t len_) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(16);
    MdDesc d;
    d.start = buf;
    d.length = len_;
    d.eq = eq.value;
    auto md = co_await api.PtlMDBind(d, Unlink::kRetain);
    (void)co_await api.PtlPut(md.value, AckReq::kNone, ProcessId{1, 4}, 0, 0,
                              9, 0, 0);
    for (;;) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kSendEnd) break;
    }
  }(src, sbuf, len));
  m.run();
  ASSERT_TRUE(done);
  if (len > 0) {
    std::vector<std::byte> got(len);
    dst.read_bytes(rbuf, got);
    EXPECT_EQ(got, data);
  }
}

// ------------------------------------------------ random torus traffic ----

class TrafficSeed : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, TrafficSeed,
                         ::testing::Values(1, 2, 3, 42, 1234));

// N random puts between random pairs on a 2x2x2 torus: every message
// arrives intact (unique match bits route each to its own buffer).
TEST_P(TrafficSeed, RandomPairsAllDelivered) {
  sim::Rng rng(GetParam());
  constexpr int kNodes = 8;
  constexpr int kMsgs = 24;
  Machine m(net::Shape::xt3(2, 2, 2));
  std::vector<Process*> procs;
  for (int i = 0; i < kNodes; ++i) {
    procs.push_back(
        &m.node(static_cast<net::NodeId>(i)).spawn_process(4, 64u << 20));
  }

  struct Msg {
    int src, dst;
    std::uint32_t len;
    std::uint64_t sbuf, rbuf;
    std::vector<std::byte> data;
  };
  std::vector<Msg> msgs;
  int delivered = 0;
  for (int i = 0; i < kMsgs; ++i) {
    Msg mm;
    mm.src = static_cast<int>(rng.below(kNodes));
    do {
      mm.dst = static_cast<int>(rng.below(kNodes));
    } while (mm.dst == mm.src);
    mm.len = static_cast<std::uint32_t>(1 + rng.below(100000));
    mm.data = pattern(mm.len, GetParam() * 1000 + static_cast<unsigned>(i));
    mm.sbuf = procs[static_cast<std::size_t>(mm.src)]->alloc(mm.len);
    mm.rbuf = procs[static_cast<std::size_t>(mm.dst)]->alloc(mm.len);
    procs[static_cast<std::size_t>(mm.src)]->write_bytes(mm.sbuf, mm.data);
    msgs.push_back(std::move(mm));
  }

  for (std::size_t i = 0; i < msgs.size(); ++i) {
    const Msg& mm = msgs[i];
    // Receiver: one ME per message with unique bits.
    sim::spawn([](Process& p, std::uint64_t buf, std::uint32_t len,
                  std::uint64_t bits, int* count) -> CoTask<void> {
      auto& api = p.api();
      auto eq = co_await api.PtlEQAlloc(8);
      auto me = co_await api.PtlMEAttach(
          0, ProcessId{ptl::kNidAny, ptl::kPidAny}, bits, 0, Unlink::kRetain,
          InsPos::kAfter);
      MdDesc d;
      d.start = buf;
      d.length = len;
      d.options = ptl::PTL_MD_OP_PUT;
      d.eq = eq.value;
      (void)co_await api.PtlMDAttach(me.value, d, Unlink::kRetain);
      for (;;) {
        auto ev = co_await api.PtlEQWait(eq.value);
        if (ev.value.type == EventType::kPutEnd) break;
      }
      ++*count;
    }(*procs[static_cast<std::size_t>(mm.dst)], mm.rbuf, mm.len, 100 + i,
      &delivered));
    // Sender: staggered start.
    sim::spawn([](Process& p, std::uint64_t buf, std::uint32_t len,
                  std::uint64_t bits, ProcessId target,
                  sim::Time start) -> CoTask<void> {
      co_await sim::delay(p.node().engine(), start);
      auto& api = p.api();
      auto eq = co_await api.PtlEQAlloc(8);
      MdDesc d;
      d.start = buf;
      d.length = len;
      d.eq = eq.value;
      auto md = co_await api.PtlMDBind(d, Unlink::kRetain);
      (void)co_await api.PtlPut(md.value, AckReq::kNone, target, 0, 0, bits,
                                0, 0);
      for (;;) {
        auto ev = co_await api.PtlEQWait(eq.value);
        if (ev.value.type == EventType::kSendEnd) break;
      }
    }(*procs[static_cast<std::size_t>(mm.src)], mm.sbuf, mm.len, 100 + i,
      procs[static_cast<std::size_t>(mm.dst)]->id(),
      sim::Time::us(static_cast<std::int64_t>(rng.below(50)))));
  }
  m.run();
  ASSERT_EQ(delivered, kMsgs);
  for (const Msg& mm : msgs) {
    std::vector<std::byte> got(mm.len);
    procs[static_cast<std::size_t>(mm.dst)]->read_bytes(mm.rbuf, got);
    ASSERT_EQ(got, mm.data) << "message " << mm.src << "->" << mm.dst;
  }
  for (int i = 0; i < kNodes; ++i) {
    EXPECT_FALSE(m.node(static_cast<net::NodeId>(i)).firmware().panicked());
  }
}

// ------------------------------------------------------ MPI random mix ----

TEST_P(TrafficSeed, MpiRandomSizesAndTags) {
  sim::Rng rng(GetParam() * 7 + 1);
  Machine m(net::Shape::xt3(2, 1, 1));
  std::vector<ptl::ProcessId> ids{{0, 9}, {1, 9}};
  Process& p0 = m.node(0).spawn_process(9, 256u << 20);
  Process& p1 = m.node(1).spawn_process(9, 256u << 20);
  mpi::Comm c0(p0, ids, 0), c1(p1, ids, 1);

  constexpr int kMsgs = 20;
  struct Xfer {
    std::uint32_t len;
    int tag;
    std::uint64_t sbuf, rbuf;
    std::vector<std::byte> data;
  };
  std::vector<Xfer> xfers;
  for (int i = 0; i < kMsgs; ++i) {
    Xfer x;
    // Mix of inline, eager, boundary and rendezvous sizes.
    const std::uint64_t kind = rng.below(4);
    x.len = kind == 0   ? static_cast<std::uint32_t>(rng.below(16))
            : kind == 1 ? static_cast<std::uint32_t>(rng.below(8192))
            : kind == 2 ? 128 * 1024 + static_cast<std::uint32_t>(
                                           rng.below(1024)) -
                              512
                        : static_cast<std::uint32_t>(rng.below(400000));
    x.tag = static_cast<int>(rng.below(5));
    x.data = pattern(x.len, GetParam() * 999 + static_cast<unsigned>(i));
    x.sbuf = p0.alloc(x.len ? x.len : 1);
    x.rbuf = p1.alloc(x.len ? x.len : 1);
    if (x.len > 0) p0.write_bytes(x.sbuf, x.data);
    xfers.push_back(std::move(x));
  }

  bool sdone = false, rdone = false;
  sim::spawn([](mpi::Comm& c, std::vector<Xfer>* xs,
                bool* d) -> CoTask<void> {
    EXPECT_EQ(co_await c.init(), PTL_OK);
    for (const Xfer& x : *xs) {
      EXPECT_EQ(co_await c.send(x.sbuf, x.len, 1, x.tag), PTL_OK);
    }
    *d = true;
  }(c0, &xfers, &sdone));
  sim::spawn([](mpi::Comm& c, std::vector<Xfer>* xs,
                bool* d) -> CoTask<void> {
    EXPECT_EQ(co_await c.init(), PTL_OK);
    // Receive in sending order per tag, but post them in a scrambled
    // global order (same tag keeps FIFO per MPI semantics).
    for (const Xfer& x : *xs) {
      mpi::Status st;
      EXPECT_EQ(co_await c.recv(x.rbuf, x.len, 0, x.tag, &st), PTL_OK);
      EXPECT_EQ(st.len, x.len);
    }
    *d = true;
  }(c1, &xfers, &rdone));
  m.run();
  ASSERT_TRUE(sdone);
  ASSERT_TRUE(rdone);
  for (const Xfer& x : xfers) {
    if (x.len == 0) continue;
    std::vector<std::byte> got(x.len);
    p1.read_bytes(x.rbuf, got);
    ASSERT_EQ(got, x.data) << "len " << x.len << " tag " << x.tag;
  }
}

// -------------------------------------------------------- determinism ----

TEST(Determinism, IdenticalRunsBitIdentical) {
  auto run_once = [] {
    Machine m(net::Shape::xt3(2, 2, 1));
    std::vector<Process*> procs;
    for (int i = 0; i < 4; ++i) {
      procs.push_back(&m.node(static_cast<net::NodeId>(i)).spawn_process(4));
    }
    int done = 0;
    for (int i = 0; i < 4; ++i) {
      const int peer = (i + 1) % 4;
      sim::spawn([](Process& p, ProcessId target, int idx,
                    int* d) -> CoTask<void> {
        auto& api = p.api();
        auto eq = co_await api.PtlEQAlloc(64);
        auto me = co_await api.PtlMEAttach(
            0, ProcessId{ptl::kNidAny, ptl::kPidAny}, 1, 0, Unlink::kRetain,
            InsPos::kAfter);
        MdDesc rd;
        rd.start = p.alloc(4096);
        rd.length = 4096;
        rd.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE |
                     ptl::PTL_MD_TRUNCATE;
        rd.eq = eq.value;
        (void)co_await api.PtlMDAttach(me.value, rd, Unlink::kRetain);
        MdDesc ld;
        ld.start = p.alloc(4096);
        ld.length = static_cast<std::uint32_t>(64 * (idx + 1));
        ld.eq = eq.value;
        auto md = co_await api.PtlMDBind(ld, Unlink::kRetain);
        for (int k = 0; k < 8; ++k) {
          (void)co_await api.PtlPut(md.value, AckReq::kNone, target, 0, 0, 1,
                                    0, 0);
        }
        int sends = 0, puts = 0;
        while (sends < 8 || puts < 8) {
          auto ev = co_await api.PtlEQWait(eq.value);
          if (ev.value.type == EventType::kSendEnd) ++sends;
          if (ev.value.type == EventType::kPutEnd) ++puts;
        }
        ++*d;
      }(*procs[static_cast<std::size_t>(i)],
        ProcessId{static_cast<net::NodeId>(peer), 4}, i, &done));
    }
    m.run();
    EXPECT_EQ(done, 4);
    return std::pair{m.engine().now(), m.engine().executed()};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// ------------------------------------------------ fault injection sweep ----

class FaultSweep : public ::testing::TestWithParam<double> {};
INSTANTIATE_TEST_SUITE_P(Rates, FaultSweep,
                         ::testing::Values(0.001, 0.01, 0.05));

// Link-level corruption is always caught by the CRC-16 retry protocol:
// delivery stays lossless, only slower.
TEST_P(FaultSweep, LinkCrcRetriesKeepDeliveryLossless) {
  ss::Config cfg;
  cfg.net.link.pkt_corrupt_prob = GetParam();
  Machine m(net::Shape::xt3(2, 1, 1), cfg);
  Process& src = m.node(0).spawn_process(4, 64u << 20);
  Process& dst = m.node(1).spawn_process(4, 64u << 20);
  constexpr int kMsgs = 20;
  constexpr std::uint32_t kLen = 4096;
  const std::uint64_t rbuf = dst.alloc(kLen);
  int delivered = 0;
  sim::spawn([](Process& p, std::uint64_t buf, int* count) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(256);
    auto me = co_await api.PtlMEAttach(
        0, ProcessId{ptl::kNidAny, ptl::kPidAny}, 1, 0, Unlink::kRetain,
        InsPos::kAfter);
    MdDesc d;
    d.start = buf;
    d.length = kLen;
    d.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE;
    d.eq = eq.value;
    (void)co_await api.PtlMDAttach(me.value, d, Unlink::kRetain);
    while (*count < kMsgs) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kPutEnd) ++*count;
    }
  }(dst, rbuf, &delivered));
  sim::spawn([](Process& p) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(256);
    MdDesc d;
    d.start = p.alloc(kLen);
    d.length = kLen;
    d.eq = eq.value;
    auto md = co_await api.PtlMDBind(d, Unlink::kRetain);
    for (int i = 0; i < kMsgs; ++i) {
      (void)co_await api.PtlPut(md.value, AckReq::kNone, ProcessId{1, 4}, 0,
                                0, 1, 0, 0);
    }
    int sends = 0;
    while (sends < kMsgs) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kSendEnd) ++sends;
    }
  }(src));
  m.run();
  EXPECT_EQ(delivered, kMsgs);
  EXPECT_EQ(m.node(1).nic().crc_drops(), 0u);  // nothing slipped through
}

}  // namespace
}  // namespace xt
