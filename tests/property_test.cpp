// Property-based tests: randomized traffic and parameter sweeps over the
// full stack, checking the invariants the design promises rather than
// specific scenarios.
//
// The second half is the fault-layer property suite: each property derives
// 32 seeded (workload x transport x FaultPlan) cases, runs them with the
// InvariantChecker armed, and on failure shrinks the plan's scripted-drop
// list one event at a time while the failure still reproduces, so the
// assertion message carries a minimal `--faults` reproducer.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "fault/invariants.hpp"
#include "fault/plan.hpp"
#include "harness/scenario.hpp"
#include "host/node.hpp"
#include "mpi/mpi.hpp"
#include "portals/api.hpp"
#include "sim/rng.hpp"
#include "sim/strf.hpp"
#include "telemetry/metrics.hpp"
#include "workload/generator.hpp"

namespace xt {
namespace {

using host::Machine;
using host::Process;
using ptl::AckReq;
using ptl::EventType;
using ptl::InsPos;
using ptl::MdDesc;
using ptl::ProcessId;
using ptl::PTL_OK;
using ptl::Unlink;
using sim::CoTask;

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> v(n);
  sim::Rng rng(seed);
  for (auto& b : v) b = static_cast<std::byte>(rng.below(256));
  return v;
}

// ------------------------------------------- truncation invariant sweep ----

// Invariant: for a put of rlength bytes into an MD of `space` bytes with
// TRUNCATE, mlength == min(rlength, space) and exactly mlength bytes land.
class TruncSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

INSTANTIATE_TEST_SUITE_P(
    Sizes, TruncSweep,
    ::testing::Values(std::pair{1u, 1u}, std::pair{100u, 100u},
                      std::pair{100u, 37u}, std::pair{37u, 100u},
                      std::pair{5000u, 4096u}, std::pair{4096u, 5000u},
                      std::pair{70000u, 1000u}, std::pair{12u, 5u},
                      std::pair{13u, 12u}, std::pair{1u, 0u}));

TEST_P(TruncSweep, MlengthIsMinAndBytesExact) {
  const auto [rlength, space] = GetParam();
  Machine m(net::Shape::xt3(2, 1, 1));
  Process& src = m.node(0).spawn_process(4);
  Process& dst = m.node(1).spawn_process(4);
  const auto data = pattern(rlength, rlength * 131 + space);
  const std::uint64_t sbuf = src.alloc(rlength + 1);
  // Guard bytes around the receive window to catch overruns.
  const std::uint64_t rbuf = dst.alloc(space + 64);
  src.write_bytes(sbuf, data);
  std::vector<std::byte> guard(space + 64, std::byte{0xEE});
  dst.write_bytes(rbuf, guard);

  std::uint64_t got_mlength = ~0ull;
  sim::spawn([](Process& p, std::uint64_t buf, std::uint32_t cap,
                std::uint64_t* out) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(16);
    auto me = co_await api.PtlMEAttach(
        0, ProcessId{ptl::kNidAny, ptl::kPidAny}, 9, 0, Unlink::kRetain,
        InsPos::kAfter);
    MdDesc d;
    d.start = buf;
    d.length = cap;
    d.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_TRUNCATE;
    d.eq = eq.value;
    (void)co_await api.PtlMDAttach(me.value, d, Unlink::kRetain);
    for (;;) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kPutEnd) {
        *out = ev.value.mlength;
        break;
      }
    }
  }(dst, rbuf, space, &got_mlength));
  sim::spawn([](Process& p, std::uint64_t buf,
                std::uint32_t len) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(16);
    MdDesc d;
    d.start = buf;
    d.length = len;
    d.eq = eq.value;
    auto md = co_await api.PtlMDBind(d, Unlink::kRetain);
    (void)co_await api.PtlPut(md.value, AckReq::kNone, ProcessId{1, 4}, 0, 0,
                              9, 0, 0);
    for (;;) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kSendEnd) break;
    }
  }(src, sbuf, rlength));
  m.run();

  const std::uint64_t want = std::min(rlength, space);
  EXPECT_EQ(got_mlength, want);
  // Exactly mlength bytes deposited; everything past it untouched.
  std::vector<std::byte> after(space + 64);
  dst.read_bytes(rbuf, after);
  for (std::uint64_t i = 0; i < want; ++i) {
    ASSERT_EQ(after[i], data[i]) << "byte " << i;
  }
  for (std::uint64_t i = want; i < space + 64; ++i) {
    ASSERT_EQ(after[i], std::byte{0xEE}) << "overrun at " << i;
  }
}

// ---------------------------------------------- inline boundary sweep ----

class InlineSweep : public ::testing::TestWithParam<std::uint32_t> {};
INSTANTIATE_TEST_SUITE_P(Sizes, InlineSweep,
                         ::testing::Range(0u, 16u));  // straddles 12

TEST_P(InlineSweep, EverySizeDeliversExactly) {
  const std::uint32_t len = GetParam();
  Machine m(net::Shape::xt3(2, 1, 1));
  Process& src = m.node(0).spawn_process(4);
  Process& dst = m.node(1).spawn_process(4);
  const auto data = pattern(len, len + 1);
  const std::uint64_t sbuf = src.alloc(len + 1);
  const std::uint64_t rbuf = dst.alloc(len + 1);
  if (len > 0) src.write_bytes(sbuf, data);
  bool done = false;
  sim::spawn([](Process& p, std::uint64_t buf, std::uint32_t cap,
                bool* d) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(16);
    auto me = co_await api.PtlMEAttach(
        0, ProcessId{ptl::kNidAny, ptl::kPidAny}, 9, 0, Unlink::kRetain,
        InsPos::kAfter);
    MdDesc desc;
    desc.start = buf;
    desc.length = cap;
    desc.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_TRUNCATE;
    desc.eq = eq.value;
    (void)co_await api.PtlMDAttach(me.value, desc, Unlink::kRetain);
    for (;;) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kPutEnd) break;
    }
    *d = true;
  }(dst, rbuf, len + 1, &done));
  sim::spawn([](Process& p, std::uint64_t buf,
                std::uint32_t len_) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(16);
    MdDesc d;
    d.start = buf;
    d.length = len_;
    d.eq = eq.value;
    auto md = co_await api.PtlMDBind(d, Unlink::kRetain);
    (void)co_await api.PtlPut(md.value, AckReq::kNone, ProcessId{1, 4}, 0, 0,
                              9, 0, 0);
    for (;;) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kSendEnd) break;
    }
  }(src, sbuf, len));
  m.run();
  ASSERT_TRUE(done);
  if (len > 0) {
    std::vector<std::byte> got(len);
    dst.read_bytes(rbuf, got);
    EXPECT_EQ(got, data);
  }
}

// ------------------------------------------------ random torus traffic ----

class TrafficSeed : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, TrafficSeed,
                         ::testing::Values(1, 2, 3, 42, 1234));

// N random puts between random pairs on a 2x2x2 torus: every message
// arrives intact (unique match bits route each to its own buffer).
TEST_P(TrafficSeed, RandomPairsAllDelivered) {
  sim::Rng rng(GetParam());
  constexpr int kNodes = 8;
  constexpr int kMsgs = 24;
  Machine m(net::Shape::xt3(2, 2, 2));
  std::vector<Process*> procs;
  for (int i = 0; i < kNodes; ++i) {
    procs.push_back(
        &m.node(static_cast<net::NodeId>(i)).spawn_process(4, 64u << 20));
  }

  struct Msg {
    int src, dst;
    std::uint32_t len;
    std::uint64_t sbuf, rbuf;
    std::vector<std::byte> data;
  };
  std::vector<Msg> msgs;
  int delivered = 0;
  for (int i = 0; i < kMsgs; ++i) {
    Msg mm;
    mm.src = static_cast<int>(rng.below(kNodes));
    do {
      mm.dst = static_cast<int>(rng.below(kNodes));
    } while (mm.dst == mm.src);
    mm.len = static_cast<std::uint32_t>(1 + rng.below(100000));
    mm.data = pattern(mm.len, GetParam() * 1000 + static_cast<unsigned>(i));
    mm.sbuf = procs[static_cast<std::size_t>(mm.src)]->alloc(mm.len);
    mm.rbuf = procs[static_cast<std::size_t>(mm.dst)]->alloc(mm.len);
    procs[static_cast<std::size_t>(mm.src)]->write_bytes(mm.sbuf, mm.data);
    msgs.push_back(std::move(mm));
  }

  for (std::size_t i = 0; i < msgs.size(); ++i) {
    const Msg& mm = msgs[i];
    // Receiver: one ME per message with unique bits.
    sim::spawn([](Process& p, std::uint64_t buf, std::uint32_t len,
                  std::uint64_t bits, int* count) -> CoTask<void> {
      auto& api = p.api();
      auto eq = co_await api.PtlEQAlloc(8);
      auto me = co_await api.PtlMEAttach(
          0, ProcessId{ptl::kNidAny, ptl::kPidAny}, bits, 0, Unlink::kRetain,
          InsPos::kAfter);
      MdDesc d;
      d.start = buf;
      d.length = len;
      d.options = ptl::PTL_MD_OP_PUT;
      d.eq = eq.value;
      (void)co_await api.PtlMDAttach(me.value, d, Unlink::kRetain);
      for (;;) {
        auto ev = co_await api.PtlEQWait(eq.value);
        if (ev.value.type == EventType::kPutEnd) break;
      }
      ++*count;
    }(*procs[static_cast<std::size_t>(mm.dst)], mm.rbuf, mm.len, 100 + i,
      &delivered));
    // Sender: staggered start.
    sim::spawn([](Process& p, std::uint64_t buf, std::uint32_t len,
                  std::uint64_t bits, ProcessId target,
                  sim::Time start) -> CoTask<void> {
      co_await sim::delay(p.node().engine(), start);
      auto& api = p.api();
      auto eq = co_await api.PtlEQAlloc(8);
      MdDesc d;
      d.start = buf;
      d.length = len;
      d.eq = eq.value;
      auto md = co_await api.PtlMDBind(d, Unlink::kRetain);
      (void)co_await api.PtlPut(md.value, AckReq::kNone, target, 0, 0, bits,
                                0, 0);
      for (;;) {
        auto ev = co_await api.PtlEQWait(eq.value);
        if (ev.value.type == EventType::kSendEnd) break;
      }
    }(*procs[static_cast<std::size_t>(mm.src)], mm.sbuf, mm.len, 100 + i,
      procs[static_cast<std::size_t>(mm.dst)]->id(),
      sim::Time::us(static_cast<std::int64_t>(rng.below(50)))));
  }
  m.run();
  ASSERT_EQ(delivered, kMsgs);
  for (const Msg& mm : msgs) {
    std::vector<std::byte> got(mm.len);
    procs[static_cast<std::size_t>(mm.dst)]->read_bytes(mm.rbuf, got);
    ASSERT_EQ(got, mm.data) << "message " << mm.src << "->" << mm.dst;
  }
  for (int i = 0; i < kNodes; ++i) {
    EXPECT_FALSE(m.node(static_cast<net::NodeId>(i)).firmware().panicked());
  }
}

// ------------------------------------------------------ MPI random mix ----

TEST_P(TrafficSeed, MpiRandomSizesAndTags) {
  sim::Rng rng(GetParam() * 7 + 1);
  Machine m(net::Shape::xt3(2, 1, 1));
  std::vector<ptl::ProcessId> ids{{0, 9}, {1, 9}};
  Process& p0 = m.node(0).spawn_process(9, 256u << 20);
  Process& p1 = m.node(1).spawn_process(9, 256u << 20);
  mpi::Comm c0(p0, ids, 0), c1(p1, ids, 1);

  constexpr int kMsgs = 20;
  struct Xfer {
    std::uint32_t len;
    int tag;
    std::uint64_t sbuf, rbuf;
    std::vector<std::byte> data;
  };
  std::vector<Xfer> xfers;
  for (int i = 0; i < kMsgs; ++i) {
    Xfer x;
    // Mix of inline, eager, boundary and rendezvous sizes.
    const std::uint64_t kind = rng.below(4);
    x.len = kind == 0   ? static_cast<std::uint32_t>(rng.below(16))
            : kind == 1 ? static_cast<std::uint32_t>(rng.below(8192))
            : kind == 2 ? 128 * 1024 + static_cast<std::uint32_t>(
                                           rng.below(1024)) -
                              512
                        : static_cast<std::uint32_t>(rng.below(400000));
    x.tag = static_cast<int>(rng.below(5));
    x.data = pattern(x.len, GetParam() * 999 + static_cast<unsigned>(i));
    x.sbuf = p0.alloc(x.len ? x.len : 1);
    x.rbuf = p1.alloc(x.len ? x.len : 1);
    if (x.len > 0) p0.write_bytes(x.sbuf, x.data);
    xfers.push_back(std::move(x));
  }

  bool sdone = false, rdone = false;
  sim::spawn([](mpi::Comm& c, std::vector<Xfer>* xs,
                bool* d) -> CoTask<void> {
    EXPECT_EQ(co_await c.init(), PTL_OK);
    for (const Xfer& x : *xs) {
      EXPECT_EQ(co_await c.send(x.sbuf, x.len, 1, x.tag), PTL_OK);
    }
    *d = true;
  }(c0, &xfers, &sdone));
  sim::spawn([](mpi::Comm& c, std::vector<Xfer>* xs,
                bool* d) -> CoTask<void> {
    EXPECT_EQ(co_await c.init(), PTL_OK);
    // Receive in sending order per tag, but post them in a scrambled
    // global order (same tag keeps FIFO per MPI semantics).
    for (const Xfer& x : *xs) {
      mpi::Status st;
      EXPECT_EQ(co_await c.recv(x.rbuf, x.len, 0, x.tag, &st), PTL_OK);
      EXPECT_EQ(st.len, x.len);
    }
    *d = true;
  }(c1, &xfers, &rdone));
  m.run();
  ASSERT_TRUE(sdone);
  ASSERT_TRUE(rdone);
  for (const Xfer& x : xfers) {
    if (x.len == 0) continue;
    std::vector<std::byte> got(x.len);
    p1.read_bytes(x.rbuf, got);
    ASSERT_EQ(got, x.data) << "len " << x.len << " tag " << x.tag;
  }
}

// -------------------------------------------------------- determinism ----

TEST(Determinism, IdenticalRunsBitIdentical) {
  auto run_once = [] {
    Machine m(net::Shape::xt3(2, 2, 1));
    std::vector<Process*> procs;
    for (int i = 0; i < 4; ++i) {
      procs.push_back(&m.node(static_cast<net::NodeId>(i)).spawn_process(4));
    }
    int done = 0;
    for (int i = 0; i < 4; ++i) {
      const int peer = (i + 1) % 4;
      sim::spawn([](Process& p, ProcessId target, int idx,
                    int* d) -> CoTask<void> {
        auto& api = p.api();
        auto eq = co_await api.PtlEQAlloc(64);
        auto me = co_await api.PtlMEAttach(
            0, ProcessId{ptl::kNidAny, ptl::kPidAny}, 1, 0, Unlink::kRetain,
            InsPos::kAfter);
        MdDesc rd;
        rd.start = p.alloc(4096);
        rd.length = 4096;
        rd.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE |
                     ptl::PTL_MD_TRUNCATE;
        rd.eq = eq.value;
        (void)co_await api.PtlMDAttach(me.value, rd, Unlink::kRetain);
        MdDesc ld;
        ld.start = p.alloc(4096);
        ld.length = static_cast<std::uint32_t>(64 * (idx + 1));
        ld.eq = eq.value;
        auto md = co_await api.PtlMDBind(ld, Unlink::kRetain);
        for (int k = 0; k < 8; ++k) {
          (void)co_await api.PtlPut(md.value, AckReq::kNone, target, 0, 0, 1,
                                    0, 0);
        }
        int sends = 0, puts = 0;
        while (sends < 8 || puts < 8) {
          auto ev = co_await api.PtlEQWait(eq.value);
          if (ev.value.type == EventType::kSendEnd) ++sends;
          if (ev.value.type == EventType::kPutEnd) ++puts;
        }
        ++*d;
      }(*procs[static_cast<std::size_t>(i)],
        ProcessId{static_cast<net::NodeId>(peer), 4}, i, &done));
    }
    m.run();
    EXPECT_EQ(done, 4);
    return std::pair{m.engine().now(), m.engine().executed()};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// ------------------------------------------------ fault injection sweep ----

class FaultSweep : public ::testing::TestWithParam<double> {};
INSTANTIATE_TEST_SUITE_P(Rates, FaultSweep,
                         ::testing::Values(0.001, 0.01, 0.05));

// Link-level corruption is always caught by the CRC-16 retry protocol:
// delivery stays lossless, only slower.
TEST_P(FaultSweep, LinkCrcRetriesKeepDeliveryLossless) {
  ss::Config cfg;
  cfg.net.link.pkt_corrupt_prob = GetParam();
  Machine m(net::Shape::xt3(2, 1, 1), cfg);
  Process& src = m.node(0).spawn_process(4, 64u << 20);
  Process& dst = m.node(1).spawn_process(4, 64u << 20);
  constexpr int kMsgs = 20;
  constexpr std::uint32_t kLen = 4096;
  const std::uint64_t rbuf = dst.alloc(kLen);
  int delivered = 0;
  sim::spawn([](Process& p, std::uint64_t buf, int* count) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(256);
    auto me = co_await api.PtlMEAttach(
        0, ProcessId{ptl::kNidAny, ptl::kPidAny}, 1, 0, Unlink::kRetain,
        InsPos::kAfter);
    MdDesc d;
    d.start = buf;
    d.length = kLen;
    d.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE;
    d.eq = eq.value;
    (void)co_await api.PtlMDAttach(me.value, d, Unlink::kRetain);
    while (*count < kMsgs) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kPutEnd) ++*count;
    }
  }(dst, rbuf, &delivered));
  sim::spawn([](Process& p) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(256);
    MdDesc d;
    d.start = p.alloc(kLen);
    d.length = kLen;
    d.eq = eq.value;
    auto md = co_await api.PtlMDBind(d, Unlink::kRetain);
    for (int i = 0; i < kMsgs; ++i) {
      (void)co_await api.PtlPut(md.value, AckReq::kNone, ProcessId{1, 4}, 0,
                                0, 1, 0, 0);
    }
    int sends = 0;
    while (sends < kMsgs) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kSendEnd) ++sends;
    }
  }(src));
  m.run();
  EXPECT_EQ(delivered, kMsgs);
  EXPECT_EQ(m.node(1).nic().crc_drops(), 0u);  // nothing slipped through
}

// ------------------------------------------- fault-layer property suite ----

namespace faultprop {

constexpr std::uint64_t kSeedsPerProperty = 32;

/// One concrete case: a workload, a transport configuration and a fault
/// plan, all pure functions of the property seed.
struct Case {
  workload::WorkloadSpec spec;
  host::ProcMode mode = host::ProcMode::kUser;
  ss::Config cfg{};
  fault::FaultPlan plan{};
  std::uint64_t scenario_seed = 1;
};

struct Outcome {
  workload::WorkloadResult res;
  fault::Injector::Totals tot{};
  std::vector<std::string> violations;
  std::uint64_t accepted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t failed = 0;
  std::string panic;
  std::int64_t end_ps = 0;
  std::map<std::string, std::uint64_t> counters;  ///< fault.* registry view
};

constexpr const char* kFaultCounters[] = {
    "fault.drops",        "fault.scripted_drops", "fault.reorders",
    "fault.silent_corrupts", "fault.corrupt_bursts", "fault.sram_denials",
    "fault.irq_dropped",  "fault.irq_delayed",    "fault.fw_stalls",
    "fault.node_kills",   "fault.node_revives",   "fault.ack_timeouts"};

Outcome run_case(const Case& c) {
  harness::Scenario sc =
      workload::workload_scenario(c.spec, c.mode, c.cfg, c.scenario_seed);
  sc.with_faults(c.plan);
  auto inst = sc.build();
  Outcome o;
  o.res = workload::run_workload(*inst, c.spec);
  fault::InvariantChecker* chk = inst->invariants();
  // A panicked firmware is a dead node for conservation purposes: its
  // in-flight messages can never settle.  Whether the panic itself is a
  // failure is each property's call (via Outcome::panic).
  for (std::size_t n = 0; n < inst->machine().node_count(); ++n) {
    if (inst->machine()
            .node(static_cast<net::NodeId>(n))
            .firmware()
            .panicked()) {
      chk->node_died(static_cast<std::uint32_t>(n));
    }
  }
  chk->finish();
  o.violations = chk->violations();
  o.accepted = chk->accepted();
  o.delivered = chk->delivered();
  o.failed = chk->failed();
  o.panic = inst->machine().first_panic();
  o.tot = inst->injector()->totals();
  o.end_ps = inst->engine().now().to_ps();
  for (const char* name : kFaultCounters) {
    o.counters[name] = inst->engine().metrics().counter(name).value;
  }
  return o;
}

/// A check returns "" when the property holds, else a description of what
/// broke (which doubles as the shrinker's failure oracle).
using Check = std::function<std::string(const Case&, const Outcome&)>;

/// Greedy event-level shrinking: repeatedly drop one scripted-drop entry
/// as long as the check still fails.  Rate faults are seed-derived and not
/// individually removable, so the scripted list is the shrinkable part.
fault::FaultPlan shrink_plan(const Case& base, const Check& check) {
  fault::FaultPlan plan = base.plan;
  bool shrunk = true;
  while (shrunk && !plan.scripted_drops.empty()) {
    shrunk = false;
    for (std::size_t k = 0; k < plan.scripted_drops.size(); ++k) {
      fault::FaultPlan cand = plan;
      cand.scripted_drops.erase(cand.scripted_drops.begin() +
                                static_cast<std::ptrdiff_t>(k));
      Case cc = base;
      cc.plan = cand;
      if (!check(cc, run_case(cc)).empty()) {
        plan = std::move(cand);
        shrunk = true;
        break;
      }
    }
  }
  return plan;
}

void run_property(const char* name,
                  const std::function<Case(std::uint64_t)>& make,
                  const Check& check) {
  for (std::uint64_t seed = 1; seed <= kSeedsPerProperty; ++seed) {
    Case c = make(seed);
    const std::string why = check(c, run_case(c));
    if (why.empty()) continue;
    const fault::FaultPlan minimal = shrink_plan(c, check);
    FAIL() << name << " failed at seed " << seed << ": " << why
           << "\n  minimal reproducer: --faults \"" << minimal.to_cli()
           << "\" (scenario_seed=" << c.scenario_seed
           << " spec.seed=" << c.spec.seed << ")";
    return;  // first failing seed is enough; the reproducer pins it
  }
}

/// Small, fast default case; properties override what they stress.
Case small_case(std::uint64_t seed) {
  Case c;
  c.spec.pattern = workload::PatternKind::kUniform;
  c.spec.ranks = 4;
  c.spec.bytes = 512;
  c.spec.msgs_per_sender = 12;
  c.spec.loop = workload::Loop::kClosed;
  c.spec.outstanding = 4;
  c.spec.seed = seed * 977 + 11;
  c.scenario_seed = seed * 131 + 7;
  c.plan.seed = seed;
  c.plan.rate = 0.02;
  c.plan.ack_timeout_ns = 10'000'000;
  return c;
}

std::string violations_or_panic(const Outcome& o) {
  if (!o.violations.empty()) {
    return "invariant violated: " + o.violations.front();
  }
  if (!o.panic.empty()) return "unexpected panic: " + o.panic;
  return {};
}

/// Full delivery: the recovery protocol hid every injected fault.
std::string lossless(const Case&, const Outcome& o) {
  if (std::string s = violations_or_panic(o); !s.empty()) return s;
  if (!o.res.complete) return "run incomplete: " + o.res.failure;
  if (o.res.delivered != o.res.sent) {
    return sim::strf("delivered %llu of %llu sent",
                     static_cast<unsigned long long>(o.res.delivered),
                     static_cast<unsigned long long>(o.res.sent));
  }
  return {};
}

// Property: with go-back-n on, whole-message drops are invisible to the
// application — every accepted message is delivered exactly once.
TEST(FaultProperty, GobacknDeliversAllUnderDrops) {
  run_property(
      "GobacknDeliversAllUnderDrops",
      [](std::uint64_t seed) {
        Case c = small_case(seed);
        c.cfg.gobackn = true;
        c.mode = (seed % 2 == 0) ? host::ProcMode::kAccel
                                 : host::ProcMode::kUser;
        c.plan.kinds = fault::kDrop;
        c.plan.rate = 0.03;
        return c;
      },
      lossless);
}

// Property: corruption — both CRC-16-visible bursts and CRC-16-evading
// silent flips — never costs a message under go-back-n; the link retry and
// the e2e CRC-32 + retransmit paths recover everything.
TEST(FaultProperty, GobacknDeliversAllUnderCorruption) {
  run_property(
      "GobacknDeliversAllUnderCorruption",
      [](std::uint64_t seed) {
        Case c = small_case(seed);
        c.cfg.gobackn = true;
        c.mode = (seed % 2 == 0) ? host::ProcMode::kAccel
                                 : host::ProcMode::kUser;
        c.plan.kinds = fault::kLinkCorrupt | fault::kSilentCorrupt;
        c.plan.rate = 0.03;
        return c;
      },
      lossless);
}

// Property: transient SRAM allocation failures are NACKed and retried, not
// lost — and the SRAM ledger invariant stays balanced throughout.
TEST(FaultProperty, GobacknSurvivesSramDenials) {
  run_property(
      "GobacknSurvivesSramDenials",
      [](std::uint64_t seed) {
        Case c = small_case(seed);
        c.cfg.gobackn = true;
        c.mode = (seed % 2 == 0) ? host::ProcMode::kAccel
                                 : host::ProcMode::kUser;
        c.plan.kinds = fault::kSramFail;
        c.plan.rate = 0.05;
        return c;
      },
      lossless);
}

// Property: reordering alone never loses a message, even without any retry
// protocol (delivery order is not a Portals guarantee, delivery is).
TEST(FaultProperty, ReorderNeverLosesMessages) {
  run_property(
      "ReorderNeverLosesMessages",
      [](std::uint64_t seed) {
        Case c = small_case(seed);
        c.mode = (seed % 2 == 0) ? host::ProcMode::kAccel
                                 : host::ProcMode::kUser;
        c.plan.kinds = fault::kReorder;
        c.plan.rate = 0.05;
        return c;
      },
      lossless);
}

// Property: a silently corrupted message (CRC-16-evading) is never
// delivered as data — the e2e CRC-32 fails it explicitly, and the failure
// count matches the injection count exactly.
TEST(FaultProperty, SilentCorruptionNeverDeliveredRaw) {
  run_property(
      "SilentCorruptionNeverDeliveredRaw",
      [](std::uint64_t seed) {
        Case c = small_case(seed);
        c.spec.count_drops = true;  // no retry: pace on send-end
        c.plan.kinds = fault::kSilentCorrupt;
        c.plan.rate = 0.04;
        return c;
      },
      [](const Case&, const Outcome& o) -> std::string {
        if (std::string s = violations_or_panic(o); !s.empty()) return s;
        if (o.failed != o.tot.silent_corrupts ||
            o.res.dropped != o.tot.silent_corrupts ||
            o.res.delivered != o.res.sent - o.tot.silent_corrupts) {
          return sim::strf(
              "corruption accounting off: %llu injected, %llu failed, "
              "%llu dropped, %llu/%llu delivered",
              static_cast<unsigned long long>(o.tot.silent_corrupts),
              static_cast<unsigned long long>(o.failed),
              static_cast<unsigned long long>(o.res.dropped),
              static_cast<unsigned long long>(o.res.delivered),
              static_cast<unsigned long long>(o.res.sent));
        }
        return {};
      });
}

// Property: without retransmission, every router-egress drop is accounted:
// delivered == sent - drops, and the loss shows up as an explicit
// incomplete-run reason rather than a hang or an invariant violation.
TEST(FaultProperty, DropsAccountedExactlyRaw) {
  run_property(
      "DropsAccountedExactlyRaw",
      [](std::uint64_t seed) {
        Case c = small_case(seed);
        c.spec.count_drops = true;
        c.plan.kinds = fault::kDrop;
        c.plan.rate = 0.04;
        return c;
      },
      [](const Case&, const Outcome& o) -> std::string {
        if (std::string s = violations_or_panic(o); !s.empty()) return s;
        const std::uint64_t lost = o.tot.drops + o.tot.scripted_drops;
        if (o.res.delivered != o.res.sent - lost) {
          return sim::strf("delivered %llu, want %llu - %llu",
                           static_cast<unsigned long long>(o.res.delivered),
                           static_cast<unsigned long long>(o.res.sent),
                           static_cast<unsigned long long>(lost));
        }
        if (lost > 0 && o.res.complete) {
          return "run claims completion despite unrecovered losses";
        }
        if (lost > 0 && o.res.failure.empty()) {
          return "incomplete run reported no failure reason";
        }
        return {};
      });
}

// Property: late and lost host interrupts delay delivery (housekeeping
// picks up lost ones) but never lose a message.  Generic mode only — the
// accelerated path has no host interrupts to fault.
TEST(FaultProperty, IrqFaultsNeverLoseMessages) {
  run_property(
      "IrqFaultsNeverLoseMessages",
      [](std::uint64_t seed) {
        Case c = small_case(seed);
        c.plan.kinds = fault::kIrqDelay | fault::kIrqDrop;
        c.plan.rate = 0.10;
        return c;
      },
      lossless);
}

// Property: every scheduled firmware stall fires exactly once, slows the
// run but breaks nothing, and the fault.fw_stalls counter agrees.
TEST(FaultProperty, FirmwareStallsFireExactly) {
  run_property(
      "FirmwareStallsFireExactly",
      [](std::uint64_t seed) {
        Case c = small_case(seed);
        c.plan.kinds = fault::kFwStall;
        c.plan.stall_count = 3;
        c.plan.stall_ns = 5'000;
        c.plan.horizon_ns = 200'000;
        return c;
      },
      [](const Case& c, const Outcome& o) -> std::string {
        if (std::string s = lossless(c, o); !s.empty()) return s;
        if (o.tot.stalls != 3 || o.counters.at("fault.fw_stalls") != 3) {
          return sim::strf(
              "expected 3 stalls, injector saw %llu, counter %llu",
              static_cast<unsigned long long>(o.tot.stalls),
              static_cast<unsigned long long>(
                  o.counters.at("fault.fw_stalls")));
        }
        return {};
      });
}

// Property: killing a node mid-run strands no initiator — every in-flight
// op on a surviving node resolves (ack, go-back-n give-up, or the ack
// timeout surfacing PTL_NI_FAIL_DROPPED), and conservation holds for the
// survivors.  The only permitted panic is the injected kill itself.
TEST(FaultProperty, NodeDeathNeverStrandsInitiators) {
  run_property(
      "NodeDeathNeverStrandsInitiators",
      [](std::uint64_t seed) {
        Case c = small_case(seed);
        c.cfg.gobackn = true;
        c.plan.kinds = fault::kNodeDeath;
        c.plan.rate = 0.0;
        c.plan.death_node = static_cast<int>(seed % 4);
        c.plan.death_at_ns = 40'000 + seed * 3'000;
        c.plan.revive_after_ns = (seed % 3 == 0) ? 150'000 : 0;
        c.plan.ack_timeout_ns = 5'000'000;
        return c;
      },
      [](const Case& c, const Outcome& o) -> std::string {
        if (!o.violations.empty()) {
          return "invariant violated: " + o.violations.front();
        }
        // A revived node clears its panic, so judge mortality by the
        // injector's books, and only accept the injected kill as a panic.
        if (!o.panic.empty() &&
            o.panic.find("fault injection: node killed") ==
                std::string::npos) {
          return "unexpected panic: " + o.panic;
        }
        const std::uint64_t want_revives =
            c.plan.revive_after_ns > 0 ? 1u : 0u;
        if (o.tot.kills != 1 || o.tot.revives != want_revives) {
          return sim::strf("mortality off: %llu kill(s), %llu revive(s)",
                           static_cast<unsigned long long>(o.tot.kills),
                           static_cast<unsigned long long>(o.tot.revives));
        }
        return {};
      });
}

// Property: the whole faulted run is a pure function of (scenario, plan) —
// rerunning the same case is bit-identical in time, traffic and injected
// fault totals.  This is what makes reproducer lines trustworthy.
TEST(FaultProperty, SameSeedSamePlanBitIdentical) {
  run_property(
      "SameSeedSamePlanBitIdentical",
      [](std::uint64_t seed) {
        Case c = small_case(seed);
        c.cfg.gobackn = true;
        c.plan.kinds = fault::kDrop | fault::kSilentCorrupt | fault::kReorder;
        c.plan.rate = 0.03;
        return c;
      },
      [](const Case& c, const Outcome& a) -> std::string {
        const Outcome b = run_case(c);
        if (a.end_ps != b.end_ps || a.res.sent != b.res.sent ||
            a.res.delivered != b.res.delivered ||
            a.res.dropped != b.res.dropped || a.counters != b.counters) {
          return sim::strf(
              "replay diverged: end %lld vs %lld ps, delivered %llu vs %llu",
              static_cast<long long>(a.end_ps),
              static_cast<long long>(b.end_ps),
              static_cast<unsigned long long>(a.res.delivered),
              static_cast<unsigned long long>(b.res.delivered));
        }
        return {};
      });
}

// Property: the fault.* registry counters account for exactly the events
// the injector reports — telemetry and injection never drift apart.
TEST(FaultProperty, CountersMatchInjectorTotals) {
  run_property(
      "CountersMatchInjectorTotals",
      [](std::uint64_t seed) {
        Case c = small_case(seed);
        c.cfg.gobackn = true;
        c.plan.kinds = fault::kDrop | fault::kReorder | fault::kSilentCorrupt |
                       fault::kLinkCorrupt;
        c.plan.rate = 0.03;
        return c;
      },
      [](const Case& c, const Outcome& o) -> std::string {
        if (std::string s = lossless(c, o); !s.empty()) return s;
        const std::pair<const char*, std::uint64_t> want[] = {
            {"fault.drops", o.tot.drops},
            {"fault.scripted_drops", o.tot.scripted_drops},
            {"fault.reorders", o.tot.reorders},
            {"fault.silent_corrupts", o.tot.silent_corrupts},
            {"fault.corrupt_bursts", o.tot.corrupt_bursts},
            {"fault.sram_denials", o.tot.sram_denials},
            {"fault.irq_dropped", o.tot.irq_dropped},
            {"fault.irq_delayed", o.tot.irq_delayed},
            {"fault.fw_stalls", o.tot.stalls},
            {"fault.node_kills", o.tot.kills},
            {"fault.node_revives", o.tot.revives},
            {"fault.ack_timeouts", o.tot.ack_timeouts}};
        for (const auto& [name, v] : want) {
          if (o.counters.at(name) != v) {
            return sim::strf("counter %s = %llu but injector says %llu", name,
                             static_cast<unsigned long long>(
                                 o.counters.at(name)),
                             static_cast<unsigned long long>(v));
          }
        }
        return {};
      });
}

// Property: scripted drops hit exactly the wire messages they name — the
// deterministic complement of the rate faults, and the contract the
// go-back-n edge-case tests and the shrinker both lean on.
TEST(FaultProperty, ScriptedDropsHitExactly) {
  run_property(
      "ScriptedDropsHitExactly",
      [](std::uint64_t seed) {
        Case c = small_case(seed);
        c.spec.pattern = workload::PatternKind::kIncast;
        c.spec.count_drops = true;
        c.plan.kinds = 0;
        c.plan.rate = 0.0;
        const auto msgs = static_cast<std::uint32_t>(c.spec.msgs_per_sender);
        c.plan.scripted_drops = {
            {1, 0, static_cast<std::uint32_t>(seed) % msgs},
            {2, 0, static_cast<std::uint32_t>(seed * 7) % msgs}};
        return c;
      },
      [](const Case& c, const Outcome& o) -> std::string {
        if (std::string s = violations_or_panic(o); !s.empty()) return s;
        const auto planned =
            static_cast<std::uint64_t>(c.plan.scripted_drops.size());
        if (o.tot.scripted_drops != planned ||
            o.res.delivered != o.res.sent - planned) {
          return sim::strf(
              "scripted %llu, hit %llu, delivered %llu of %llu",
              static_cast<unsigned long long>(planned),
              static_cast<unsigned long long>(o.tot.scripted_drops),
              static_cast<unsigned long long>(o.res.delivered),
              static_cast<unsigned long long>(o.res.sent));
        }
        return {};
      });
}

// Meta-property: the shrinker minimizes.  Start from four scripted drops,
// each individually sufficient to fail a "no loss" oracle, and check the
// greedy pass shrinks the plan to exactly one event that still fails.
TEST(FaultProperty, ShrinkerMinimizesScriptedPlan) {
  Case base = small_case(1);
  base.spec.pattern = workload::PatternKind::kIncast;
  base.spec.count_drops = true;
  base.plan.kinds = 0;
  base.plan.rate = 0.0;
  base.plan.scripted_drops = {{1, 0, 0}, {1, 0, 3}, {2, 0, 1}, {3, 0, 2}};

  const faultprop::Check any_loss = [](const Case&,
                                       const Outcome& o) -> std::string {
    if (std::string s = violations_or_panic(o); !s.empty()) return s;
    return o.res.delivered < o.res.sent ? "lost at least one message"
                                        : std::string{};
  };
  ASSERT_FALSE(any_loss(base, run_case(base)).empty())
      << "oracle must fail on the unshrunk plan";

  const fault::FaultPlan minimal = shrink_plan(base, any_loss);
  EXPECT_EQ(minimal.scripted_drops.size(), 1u)
      << "shrinker left a non-minimal plan: " << minimal.to_cli();

  // The survivor still fails, and removing it passes — true minimality.
  Case one = base;
  one.plan = minimal;
  EXPECT_FALSE(any_loss(one, run_case(one)).empty());
  Case none = base;
  none.plan.scripted_drops.clear();
  EXPECT_TRUE(any_loss(none, run_case(none)).empty());
}

}  // namespace faultprop

}  // namespace
}  // namespace xt
