// End-to-end integration tests: Portals operations through the full stack
// (API -> bridge -> kernel library -> firmware -> NIC -> torus -> firmware
// -> interrupt -> host matching -> DMA deposit -> events).

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "host/node.hpp"
#include "portals/api.hpp"

namespace xt {
namespace {

using host::Machine;
using host::OsType;
using host::Process;
using ptl::AckReq;
using ptl::EqHandle;
using ptl::Event;
using ptl::EventType;
using ptl::InsPos;
using ptl::kNidAny;
using ptl::kPidAny;
using ptl::MatchBits;
using ptl::MdDesc;
using ptl::MdHandle;
using ptl::MeHandle;
using ptl::ProcessId;
using ptl::PTL_OK;
using ptl::Unlink;
using sim::CoTask;
using sim::Time;

constexpr ptl::Pid kPid = 4;

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 131 + seed) & 0xFF);
  }
  return v;
}

/// Posts a match entry + MD accepting puts at pt 0 and reports readiness.
CoTask<void> receiver_task(Process& p, std::uint64_t buf, std::uint32_t len,
                           MatchBits bits, int n_msgs, bool* done,
                           std::vector<Event>* events,
                           unsigned extra_opts = 0) {
  auto& api = p.api();
  auto eq = co_await api.PtlEQAlloc(64);
  EXPECT_EQ(eq.rc, PTL_OK);
  auto me = co_await api.PtlMEAttach(0, ProcessId{kNidAny, kPidAny}, bits, 0,
                                     Unlink::kRetain, InsPos::kAfter);
  EXPECT_EQ(me.rc, PTL_OK);
  MdDesc d;
  d.start = buf;
  d.length = len;
  d.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_OP_GET | extra_opts;
  d.eq = eq.value;
  auto md = co_await api.PtlMDAttach(me.value, d, Unlink::kRetain);
  EXPECT_EQ(md.rc, PTL_OK);
  int ends = 0;
  while (ends < n_msgs) {
    auto ev = co_await api.PtlEQWait(eq.value);
    EXPECT_EQ(ev.rc, PTL_OK);
    events->push_back(ev.value);
    if (ev.value.type == EventType::kPutEnd ||
        ev.value.type == EventType::kGetEnd) {
      ++ends;
    }
  }
  *done = true;
}

/// Sends one put and waits for SEND_END (and optionally the ACK).
CoTask<void> sender_task(Process& p, std::uint64_t buf, std::uint32_t len,
                         ProcessId target, MatchBits bits, AckReq ack,
                         bool* done, std::vector<Event>* events) {
  auto& api = p.api();
  auto eq = co_await api.PtlEQAlloc(64);
  EXPECT_EQ(eq.rc, PTL_OK);
  MdDesc d;
  d.start = buf;
  d.length = len;
  d.eq = eq.value;
  auto md = co_await api.PtlMDBind(d, Unlink::kRetain);
  EXPECT_EQ(md.rc, PTL_OK);
  EXPECT_EQ(co_await api.PtlPut(md.value, ack, target, 0, 0, bits, 0, 0),
            PTL_OK);
  bool sent = false;
  bool acked = ack != AckReq::kAck;
  while (!sent || !acked) {
    auto ev = co_await api.PtlEQWait(eq.value);
    EXPECT_EQ(ev.rc, PTL_OK);
    events->push_back(ev.value);
    if (ev.value.type == EventType::kSendEnd) sent = true;
    if (ev.value.type == EventType::kAck) acked = true;
  }
  *done = true;
}

struct PutResult {
  bool ok = false;
  Time elapsed{};
  std::vector<Event> sender_events;
  std::vector<Event> receiver_events;
};

/// Runs one put of `len` bytes from node 0 to node 1 and verifies delivery.
PutResult run_put(std::uint32_t len, AckReq ack = AckReq::kNone,
                  OsType os = OsType::kCatamount) {
  Machine m(net::Shape::xt3(2, 1, 1), ss::Config{},
            [os](net::NodeId) { return os; });
  Process& src = m.node(0).spawn_process(kPid);
  Process& dst = m.node(1).spawn_process(kPid);

  const auto data = pattern(len);
  const std::uint64_t sbuf = src.alloc(std::max<std::uint32_t>(len, 1));
  const std::uint64_t rbuf = dst.alloc(std::max<std::uint32_t>(len, 1));
  if (len > 0) src.write_bytes(sbuf, data);

  PutResult r;
  bool sdone = false, rdone = false;
  sim::spawn(receiver_task(dst, rbuf, len, 7, 1, &rdone,
                           &r.receiver_events));
  sim::spawn(sender_task(src, sbuf, len, dst.id(), 7, ack, &sdone,
                         &r.sender_events));
  m.run();
  r.elapsed = m.engine().now();
  if (!sdone || !rdone) return r;

  if (len > 0) {
    std::vector<std::byte> got(len);
    dst.read_bytes(rbuf, got);
    if (got != data) return r;
  }
  if (m.node(0).firmware().panicked() || m.node(1).firmware().panicked()) {
    return r;
  }
  r.ok = true;
  return r;
}

// ------------------------------------------------------------- basics ----

TEST(PutIntegration, OneBytePutDeliversAndCompletes) {
  const PutResult r = run_put(1);
  ASSERT_TRUE(r.ok);
  // Sanity on the latency scale: several microseconds, not millis.
  EXPECT_GT(r.elapsed, Time::us(2));
  EXPECT_LT(r.elapsed, Time::us(30));
}

TEST(PutIntegration, ZeroLengthPut) {
  EXPECT_TRUE(run_put(0).ok);
}

TEST(PutIntegration, InlineBoundary12Bytes) {
  EXPECT_TRUE(run_put(12).ok);
}

TEST(PutIntegration, JustAboveInline13Bytes) {
  EXPECT_TRUE(run_put(13).ok);
}

TEST(PutIntegration, MediumPut4KiB) {
  EXPECT_TRUE(run_put(4096).ok);
}

TEST(PutIntegration, LargePut1MiB) {
  const PutResult r = run_put(1 << 20);
  ASSERT_TRUE(r.ok);
  // ~1 MiB at ~1.1 GB/s plus overheads: around a millisecond.
  EXPECT_GT(r.elapsed, Time::us(800));
  EXPECT_LT(r.elapsed, Time::ms(3));
}

TEST(PutIntegration, ReceiverSeesStartAndEnd) {
  const PutResult r = run_put(4096);
  ASSERT_TRUE(r.ok);
  ASSERT_GE(r.receiver_events.size(), 2u);
  EXPECT_EQ(r.receiver_events[0].type, EventType::kPutStart);
  EXPECT_EQ(r.receiver_events[1].type, EventType::kPutEnd);
  EXPECT_EQ(r.receiver_events[1].mlength, 4096u);
  EXPECT_EQ(r.receiver_events[1].initiator, (ProcessId{0, kPid}));
}

TEST(PutIntegration, SenderSeesSendStartAndEnd) {
  const PutResult r = run_put(64);
  ASSERT_TRUE(r.ok);
  ASSERT_GE(r.sender_events.size(), 2u);
  EXPECT_EQ(r.sender_events[0].type, EventType::kSendStart);
  EXPECT_EQ(r.sender_events[1].type, EventType::kSendEnd);
}

TEST(PutIntegration, AckRequestedDeliversAckEvent) {
  const PutResult r = run_put(256, AckReq::kAck);
  ASSERT_TRUE(r.ok);
  bool saw_ack = false;
  for (const auto& ev : r.sender_events) {
    if (ev.type == EventType::kAck) {
      saw_ack = true;
      EXPECT_EQ(ev.mlength, 256u);
    }
  }
  EXPECT_TRUE(saw_ack);
}

TEST(PutIntegration, SmallMessageUsesOneInterruptLargeUsesTwo) {
  // The §6 small-message optimization: <= 12 B needs a single interrupt at
  // the receiver, larger messages need two (header + completion).
  {
    Machine m(net::Shape::xt3(2, 1, 1));
    Process& src = m.node(0).spawn_process(kPid);
    Process& dst = m.node(1).spawn_process(kPid);
    const std::uint64_t sbuf = src.alloc(64);
    const std::uint64_t rbuf = dst.alloc(64);
    bool sdone = false, rdone = false;
    std::vector<Event> sev, rev;
    sim::spawn(receiver_task(dst, rbuf, 12, 7, 1, &rdone, &rev));
    sim::spawn(sender_task(src, sbuf, 12, dst.id(), 7, AckReq::kNone, &sdone,
                           &sev));
    m.run();
    ASSERT_TRUE(sdone && rdone);
    // Receiver-side interrupts: exactly 1 for the inline message.
    EXPECT_EQ(m.node(1).firmware().counters().interrupts, 1u);
    EXPECT_EQ(m.node(1).firmware().counters().inline_deliveries, 1u);
  }
  {
    Machine m(net::Shape::xt3(2, 1, 1));
    Process& src = m.node(0).spawn_process(kPid);
    Process& dst = m.node(1).spawn_process(kPid);
    const std::uint64_t sbuf = src.alloc(64);
    const std::uint64_t rbuf = dst.alloc(64);
    bool sdone = false, rdone = false;
    std::vector<Event> sev, rev;
    sim::spawn(receiver_task(dst, rbuf, 13, 7, 1, &rdone, &rev));
    sim::spawn(sender_task(src, sbuf, 13, dst.id(), 7, AckReq::kNone, &sdone,
                           &sev));
    m.run();
    ASSERT_TRUE(sdone && rdone);
    EXPECT_EQ(m.node(1).firmware().counters().interrupts, 2u);
    EXPECT_EQ(m.node(1).firmware().counters().inline_deliveries, 0u);
  }
}

TEST(PutIntegration, LinuxNodesDeliverToo) {
  EXPECT_TRUE(run_put(100000, AckReq::kNone, OsType::kLinux).ok);
}

TEST(PutIntegration, ManyBackToBackPutsAllArriveInOrder) {
  Machine m(net::Shape::xt3(2, 1, 1));
  Process& src = m.node(0).spawn_process(kPid);
  Process& dst = m.node(1).spawn_process(kPid);
  constexpr int kN = 32;
  constexpr std::uint32_t kLen = 700;
  const std::uint64_t rbuf = dst.alloc(kN * kLen);
  bool rdone = false;
  std::vector<Event> rev;
  sim::spawn(receiver_task(dst, rbuf, kN * kLen, 7, kN, &rdone, &rev));
  bool sdone = false;
  sim::spawn([](Process& p, int n, std::uint32_t len,
                ProcessId target, bool* done) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(128);
    MdDesc d;
    d.start = p.alloc(static_cast<std::size_t>(n) * len);
    d.length = static_cast<std::uint32_t>(n) * len;
    d.eq = eq.value;
    auto md = co_await api.PtlMDBind(d, Unlink::kRetain);
    for (int i = 0; i < n; ++i) {
      // Stamp each message so ordering is verifiable at the receiver.
      std::vector<std::byte> stamp(len,
                                   static_cast<std::byte>(i & 0xFF));
      p.write_bytes(d.start + static_cast<std::uint64_t>(i) * len, stamp);
      EXPECT_EQ(co_await api.PtlPutRegion(
                    md.value, static_cast<std::uint64_t>(i) * len, len,
                    AckReq::kNone, target, 0, 0, 7, 0, 0),
                PTL_OK);
    }
    int sends = 0;
    while (sends < n) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kSendEnd) ++sends;
    }
    *done = true;
  }(src, kN, kLen, dst.id(), &sdone));
  m.run();
  ASSERT_TRUE(sdone && rdone);
  // Locally-managed offset => message i landed at offset i*len; verify the
  // stamps ended up in order.
  for (int i = 0; i < kN; ++i) {
    std::vector<std::byte> got(kLen);
    dst.read_bytes(rbuf + static_cast<std::uint64_t>(i) * kLen, got);
    EXPECT_EQ(got[0], static_cast<std::byte>(i & 0xFF)) << "message " << i;
  }
  EXPECT_FALSE(m.node(1).firmware().panicked());
}

// ---------------------------------------------------------------- get ----

CoTask<void> getter_task(Process& p, std::uint64_t buf, std::uint32_t len,
                         ProcessId target, MatchBits bits, bool* done,
                         std::vector<Event>* events) {
  auto& api = p.api();
  auto eq = co_await api.PtlEQAlloc(64);
  EXPECT_EQ(eq.rc, PTL_OK);
  MdDesc d;
  d.start = buf;
  d.length = len;
  d.options = ptl::PTL_MD_OP_GET;
  d.eq = eq.value;
  auto md = co_await api.PtlMDBind(d, Unlink::kRetain);
  EXPECT_EQ(md.rc, PTL_OK);
  EXPECT_EQ(co_await api.PtlGet(md.value, target, 0, 0, bits, 0), PTL_OK);
  for (;;) {
    auto ev = co_await api.PtlEQWait(eq.value);
    EXPECT_EQ(ev.rc, PTL_OK);
    events->push_back(ev.value);
    if (ev.value.type == EventType::kReplyEnd) break;
  }
  *done = true;
}

TEST(GetIntegration, GetFetchesRemoteData) {
  Machine m(net::Shape::xt3(2, 1, 1));
  Process& ini = m.node(0).spawn_process(kPid);
  Process& tgt = m.node(1).spawn_process(kPid);
  constexpr std::uint32_t kLen = 8192;
  const auto data = pattern(kLen, 9);
  const std::uint64_t tbuf = tgt.alloc(kLen);
  tgt.write_bytes(tbuf, data);
  const std::uint64_t ibuf = ini.alloc(kLen);

  bool idone = false, tdone = false;
  std::vector<Event> iev, tev;
  sim::spawn(receiver_task(tgt, tbuf, kLen, 7, 1, &tdone, &tev));
  sim::spawn(getter_task(ini, ibuf, kLen, tgt.id(), 7, &idone, &iev));
  m.run();
  ASSERT_TRUE(idone && tdone);
  std::vector<std::byte> got(kLen);
  ini.read_bytes(ibuf, got);
  EXPECT_EQ(got, data);
  // Initiator: REPLY_START then REPLY_END.  Target: GET_START, GET_END.
  ASSERT_GE(iev.size(), 2u);
  EXPECT_EQ(iev[0].type, EventType::kReplyStart);
  EXPECT_EQ(iev[1].type, EventType::kReplyEnd);
  ASSERT_GE(tev.size(), 2u);
  EXPECT_EQ(tev[0].type, EventType::kGetStart);
  EXPECT_EQ(tev[1].type, EventType::kGetEnd);
}

TEST(GetIntegration, SmallGetUsesInlineReply) {
  Machine m(net::Shape::xt3(2, 1, 1));
  Process& ini = m.node(0).spawn_process(kPid);
  Process& tgt = m.node(1).spawn_process(kPid);
  const auto data = pattern(8, 3);
  const std::uint64_t tbuf = tgt.alloc(8);
  tgt.write_bytes(tbuf, data);
  const std::uint64_t ibuf = ini.alloc(8);
  bool idone = false, tdone = false;
  std::vector<Event> iev, tev;
  sim::spawn(receiver_task(tgt, tbuf, 8, 7, 1, &tdone, &tev));
  sim::spawn(getter_task(ini, ibuf, 8, tgt.id(), 7, &idone, &iev));
  m.run();
  ASSERT_TRUE(idone && tdone);
  std::vector<std::byte> got(8);
  ini.read_bytes(ibuf, got);
  EXPECT_EQ(got, data);
  EXPECT_EQ(m.node(0).firmware().counters().inline_deliveries, 1u);
}

// --------------------------------------------------------- truncation ----

TEST(TruncIntegration, OversizePutTruncatedWithMlength) {
  Machine m(net::Shape::xt3(2, 1, 1));
  Process& src = m.node(0).spawn_process(kPid);
  Process& dst = m.node(1).spawn_process(kPid);
  const std::uint64_t sbuf = src.alloc(1000);
  const std::uint64_t rbuf = dst.alloc(100);
  src.write_bytes(sbuf, pattern(1000));
  bool sdone = false, rdone = false;
  std::vector<Event> sev, rev;
  sim::spawn(receiver_task(dst, rbuf, 100, 7, 1, &rdone, &rev,
                           ptl::PTL_MD_TRUNCATE));
  sim::spawn(sender_task(src, sbuf, 1000, dst.id(), 7, AckReq::kAck, &sdone,
                         &sev));
  m.run();
  ASSERT_TRUE(sdone && rdone);
  // Receiver got the 100-byte prefix.
  std::vector<std::byte> got(100);
  dst.read_bytes(rbuf, got);
  const auto expect = pattern(1000);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), expect.begin()));
  bool saw_end = false;
  for (const auto& ev : rev) {
    if (ev.type == EventType::kPutEnd) {
      saw_end = true;
      EXPECT_EQ(ev.rlength, 1000u);
      EXPECT_EQ(ev.mlength, 100u);
    }
  }
  EXPECT_TRUE(saw_end);
  // The ack reports the truncated length to the sender.
  for (const auto& ev : sev) {
    if (ev.type == EventType::kAck) {
      EXPECT_EQ(ev.mlength, 100u);
    }
  }
}

TEST(TruncIntegration, UnmatchedPutIsDroppedAndCounted) {
  Machine m(net::Shape::xt3(2, 1, 1));
  Process& src = m.node(0).spawn_process(kPid);
  Process& dst = m.node(1).spawn_process(kPid);
  const std::uint64_t sbuf = src.alloc(512);
  bool sdone = false;
  std::vector<Event> sev;
  // Receiver posts nothing; sender's put cannot match.
  sim::spawn(sender_task(src, sbuf, 512, dst.id(), 7, AckReq::kNone, &sdone,
                         &sev));
  m.run();
  ASSERT_TRUE(sdone);  // SEND_END still fires locally
  auto& api = dst.api();
  bool checked = false;
  sim::spawn([](ptl::Api& a, bool* done) -> CoTask<void> {
    auto st = co_await a.PtlNIStatus(ptl::SrIndex::kDropCount);
    EXPECT_EQ(st.rc, PTL_OK);
    EXPECT_EQ(st.value, 1u);
    *done = true;
  }(api, &checked));
  m.run();
  EXPECT_TRUE(checked);
  EXPECT_FALSE(m.node(1).firmware().panicked());
}

// -------------------------------------------------------- local sends ----

TEST(Loopback, PutToSelfNode) {
  Machine m(net::Shape::xt3(2, 1, 1));
  Process& a = m.node(0).spawn_process(kPid);
  Process& b = m.node(0).spawn_process(static_cast<ptl::Pid>(kPid + 1));
  const auto data = pattern(300);
  const std::uint64_t sbuf = a.alloc(300);
  const std::uint64_t rbuf = b.alloc(300);
  a.write_bytes(sbuf, data);
  bool sdone = false, rdone = false;
  std::vector<Event> sev, rev;
  sim::spawn(receiver_task(b, rbuf, 300, 7, 1, &rdone, &rev));
  sim::spawn(sender_task(a, sbuf, 300, b.id(), 7, AckReq::kNone, &sdone,
                         &sev));
  m.run();
  ASSERT_TRUE(sdone && rdone);
  std::vector<std::byte> got(300);
  b.read_bytes(rbuf, got);
  EXPECT_EQ(got, data);
}

}  // namespace
}  // namespace xt
