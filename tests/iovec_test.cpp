// Tests for PTL_MD_IOVEC scatter/gather memory descriptors: slicing logic,
// validation, and end-to-end gathers/scatters through the full stack.

#include <gtest/gtest.h>

#include <vector>

#include "host/node.hpp"
#include "portals/api.hpp"
#include "portals/library.hpp"

namespace xt {
namespace {

using host::Machine;
using host::Process;
using ptl::AckReq;
using ptl::EventType;
using ptl::InsPos;
using ptl::IoVec;
using ptl::MdDesc;
using ptl::ProcessId;
using ptl::PTL_OK;
using ptl::Unlink;
using sim::CoTask;

// --------------------------------------------------------------- slicing ----

TEST(MdSlice, ContiguousIsOneSegment) {
  MdDesc d;
  d.start = 1000;
  d.length = 500;
  const auto segs = ptl::Library::md_slice(d, 100, 50);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].start, 1100u);
  EXPECT_EQ(segs[0].length, 50u);
}

TEST(MdSlice, IovecSpansSegments) {
  MdDesc d;
  d.options = ptl::PTL_MD_IOVEC;
  d.iovecs = {{1000, 100}, {5000, 50}, {9000, 200}};
  // Logical [80, 230): 20 bytes of seg0, all of seg1, 80 of seg2.
  const auto segs = ptl::Library::md_slice(d, 80, 150);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], (IoVec{1080, 20}));
  EXPECT_EQ(segs[1], (IoVec{5000, 50}));
  EXPECT_EQ(segs[2], (IoVec{9000, 80}));
}

TEST(MdSlice, IovecWithinOneSegment) {
  MdDesc d;
  d.options = ptl::PTL_MD_IOVEC;
  d.iovecs = {{1000, 100}, {5000, 100}};
  const auto segs = ptl::Library::md_slice(d, 110, 30);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], (IoVec{5010, 30}));
}

TEST(MdSlice, ZeroLengthIsEmpty) {
  MdDesc d;
  d.start = 0;
  d.length = 100;
  EXPECT_TRUE(ptl::Library::md_slice(d, 10, 0).empty());
}

// ----------------------------------------------------------- validation ----

TEST(IovecValidation, RejectsEmptyAndMismatchedLists) {
  Machine m(net::Shape::xt3(1, 1, 1));
  Process& p = m.node(0).spawn_process(7);
  bool done = false;
  sim::spawn([](Process& pr, bool* d) -> CoTask<void> {
    auto& api = pr.api();
    MdDesc bad;
    bad.options = ptl::PTL_MD_IOVEC;  // flag set, list empty
    auto r1 = co_await api.PtlMDBind(bad, Unlink::kRetain);
    EXPECT_EQ(r1.rc, ptl::PTL_MD_ILLEGAL);

    MdDesc mismatch;  // list set, flag missing
    mismatch.iovecs = {{pr.alloc(64), 64}};
    auto r2 = co_await api.PtlMDBind(mismatch, Unlink::kRetain);
    EXPECT_EQ(r2.rc, ptl::PTL_MD_ILLEGAL);

    MdDesc segv;
    segv.options = ptl::PTL_MD_IOVEC;
    segv.iovecs = {{1ull << 40, 64}};  // outside the address space
    auto r3 = co_await api.PtlMDBind(segv, Unlink::kRetain);
    EXPECT_EQ(r3.rc, ptl::PTL_SEGV);
    *d = true;
  }(p, &done));
  m.run();
  EXPECT_TRUE(done);
}

// ------------------------------------------------------------ end-to-end ----

std::vector<std::byte> pattern(std::size_t n, unsigned seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 17 + seed) & 0xFF);
  }
  return v;
}

/// Sends from a 3-segment gather MD on node 0 into a 3-segment scatter MD
/// on node 1; verifies byte-exact reassembly in logical order.
void run_iovec_put(host::OsType os, std::uint32_t seg_len) {
  Machine m(net::Shape::xt3(2, 1, 1), ss::Config{},
            [os](net::NodeId) { return os; });
  Process& src = m.node(0).spawn_process(7, 64u << 20);
  Process& dst = m.node(1).spawn_process(7, 64u << 20);
  const std::uint32_t total = 3 * seg_len;
  const auto data = pattern(total, 3);

  // Source: three disjoint segments, filled with consecutive thirds.
  std::vector<IoVec> sseg, rseg;
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t a = src.alloc(seg_len + 4096);  // spread them out
    src.write_bytes(a, std::span(data).subspan(
                           static_cast<std::size_t>(i) * seg_len, seg_len));
    sseg.push_back({a, seg_len});
    rseg.push_back({dst.alloc(seg_len + 4096), seg_len});
  }

  bool sdone = false, rdone = false;
  sim::spawn([](Process& p, std::vector<IoVec> segs, std::uint32_t len,
                bool* d) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(16);
    auto me = co_await api.PtlMEAttach(0, ProcessId{ptl::kNidAny,
                                                    ptl::kPidAny},
                                       1, 0, Unlink::kRetain, InsPos::kAfter);
    MdDesc md;
    md.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_IOVEC;
    md.iovecs = std::move(segs);
    md.eq = eq.value;
    auto h = co_await api.PtlMDAttach(me.value, md, Unlink::kRetain);
    EXPECT_EQ(h.rc, PTL_OK);
    for (;;) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kPutEnd) {
        EXPECT_EQ(ev.value.mlength, len);
        break;
      }
    }
    *d = true;
  }(dst, rseg, total, &rdone));
  sim::spawn([](Process& p, std::vector<IoVec> segs, bool* d) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(16);
    MdDesc md;
    md.options = ptl::PTL_MD_IOVEC;
    md.iovecs = std::move(segs);
    md.eq = eq.value;
    auto h = co_await api.PtlMDBind(md, Unlink::kRetain);
    EXPECT_EQ(h.rc, PTL_OK);
    EXPECT_EQ(co_await api.PtlPut(h.value, AckReq::kNone, ProcessId{1, 7}, 0,
                                  0, 1, 0, 0),
              PTL_OK);
    for (;;) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kSendEnd) break;
    }
    *d = true;
  }(src, sseg, &sdone));
  m.run();
  ASSERT_TRUE(sdone && rdone);
  for (int i = 0; i < 3; ++i) {
    std::vector<std::byte> got(seg_len);
    dst.read_bytes(rseg[static_cast<std::size_t>(i)].start, got);
    ASSERT_TRUE(std::equal(
        got.begin(), got.end(),
        data.begin() + static_cast<std::ptrdiff_t>(i) * seg_len))
        << "segment " << i;
  }
  EXPECT_FALSE(m.node(1).firmware().panicked());
}

TEST(IovecEndToEnd, GatherScatterPutCatamount) {
  run_iovec_put(host::OsType::kCatamount, 5000);
}

TEST(IovecEndToEnd, GatherScatterPutLinuxPaged) {
  run_iovec_put(host::OsType::kLinux, 20000);  // segments span pages
}

TEST(IovecEndToEnd, InlineIovecPut) {
  // A 3x4-byte gather still fits the 12-byte inline path.
  run_iovec_put(host::OsType::kCatamount, 4);
}

TEST(IovecEndToEnd, GetGathersFromIovecTarget) {
  Machine m(net::Shape::xt3(2, 1, 1));
  Process& ini = m.node(0).spawn_process(7, 64u << 20);
  Process& tgt = m.node(1).spawn_process(7, 64u << 20);
  constexpr std::uint32_t kSeg = 3000;
  const auto data = pattern(2 * kSeg, 9);
  std::vector<IoVec> tseg;
  for (int i = 0; i < 2; ++i) {
    const std::uint64_t a = tgt.alloc(kSeg + 512);
    tgt.write_bytes(a, std::span(data).subspan(
                           static_cast<std::size_t>(i) * kSeg, kSeg));
    tseg.push_back({a, kSeg});
  }
  const std::uint64_t ibuf = ini.alloc(2 * kSeg);
  bool idone = false, tdone = false;
  sim::spawn([](Process& p, std::vector<IoVec> segs, bool* d) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(16);
    auto me = co_await api.PtlMEAttach(0, ProcessId{ptl::kNidAny,
                                                    ptl::kPidAny},
                                       1, 0, Unlink::kRetain, InsPos::kAfter);
    MdDesc md;
    md.options = ptl::PTL_MD_OP_GET | ptl::PTL_MD_IOVEC;
    md.iovecs = std::move(segs);
    md.eq = eq.value;
    (void)co_await api.PtlMDAttach(me.value, md, Unlink::kRetain);
    for (;;) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kGetEnd) break;
    }
    *d = true;
  }(tgt, tseg, &tdone));
  sim::spawn([](Process& p, std::uint64_t buf, bool* d) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(16);
    MdDesc md;
    md.start = buf;
    md.length = 2 * kSeg;
    md.options = ptl::PTL_MD_OP_GET;
    md.eq = eq.value;
    auto h = co_await api.PtlMDBind(md, Unlink::kRetain);
    EXPECT_EQ(co_await api.PtlGet(h.value, ProcessId{1, 7}, 0, 0, 1, 0),
              PTL_OK);
    for (;;) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kReplyEnd) break;
    }
    *d = true;
  }(ini, ibuf, &idone));
  m.run();
  ASSERT_TRUE(idone && tdone);
  std::vector<std::byte> got(2 * kSeg);
  ini.read_bytes(ibuf, got);
  EXPECT_EQ(got, data);
}

}  // namespace
}  // namespace xt
