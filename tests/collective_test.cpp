// Tests for the firmware counting-event/triggered-op engine
// (src/firmware + portals/triggered.hpp) and the collective engine built
// on it (src/collective): counter thresholds, trigger firing order, SRAM
// and trigger-table exhaustion, offload correctness with zero host
// interrupts, and host-vs-offload result equivalence.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "collective/collective.hpp"
#include "host/node.hpp"
#include "portals/api.hpp"

namespace xt {
namespace {

using host::Machine;
using host::Process;
using ptl::CtHandle;
using ptl::InsPos;
using ptl::MdDesc;
using ptl::ProcessId;
using ptl::PTL_FAIL;
using ptl::PTL_NO_SPACE;
using ptl::PTL_OK;
using ptl::Unlink;
using sim::CoTask;
using sim::Time;

constexpr ptl::Pid kPid = 9;

std::uint64_t machine_interrupts(Machine& m) {
  std::uint64_t sum = 0;
  for (net::NodeId i = 0; i < m.node_count(); ++i) {
    sum += m.node(i).firmware().counters().interrupts;
  }
  return sum;
}

std::uint64_t machine_triggered_fires(Machine& m) {
  std::uint64_t sum = 0;
  for (net::NodeId i = 0; i < m.node_count(); ++i) {
    sum += m.node(i).firmware().counters().triggered_fires;
  }
  return sum;
}

// ------------------------------------------------ counting-event basics ----

TEST(TriggeredCt, AllocSetIncWaitAndExhaustion) {
  Machine m(net::Shape::xt3(1, 1, 1));
  Process& p = m.node(0).spawn_accel_process(kPid);
  const std::size_t limit = m.config().n_accel_counters;
  bool done = false;
  sim::spawn([](Process& proc, std::size_t cap, bool* d) -> CoTask<void> {
    auto& api = proc.api();
    auto ct = co_await api.PtlCTAlloc();
    EXPECT_EQ(ct.rc, PTL_OK);
    auto g = co_await api.PtlCTGet(ct.value);
    EXPECT_EQ(g.rc, PTL_OK);
    EXPECT_EQ(g.value, 0u);
    EXPECT_EQ(co_await api.PtlCTSet(ct.value, 41), PTL_OK);
    // Mailbox increment: goes through the firmware command path.
    EXPECT_EQ(co_await api.PtlCTInc(ct.value, 1), PTL_OK);
    auto w = co_await api.PtlCTWait(ct.value, 42);
    EXPECT_EQ(w.rc, PTL_OK);
    EXPECT_EQ(w.value, 42u);

    // The counter table is finite firmware SRAM: allocation stops at the
    // configured limit and resumes after a free.
    std::vector<CtHandle> all{ct.value};
    for (;;) {
      auto c = co_await api.PtlCTAlloc();
      if (c.rc != PTL_OK) {
        EXPECT_EQ(c.rc, PTL_NO_SPACE);
        break;
      }
      all.push_back(c.value);
    }
    EXPECT_EQ(all.size(), cap);
    EXPECT_EQ(co_await api.PtlCTFree(all.back()), PTL_OK);
    auto again = co_await api.PtlCTAlloc();
    EXPECT_EQ(again.rc, PTL_OK);
    *d = true;
  }(p, limit, &done));
  m.run();
  EXPECT_TRUE(done);
}

TEST(TriggeredCt, TriggeredCtIncFiresAtThresholdAndRearms) {
  Machine m(net::Shape::xt3(1, 1, 1));
  Process& p = m.node(0).spawn_accel_process(kPid);
  bool done = false;
  sim::spawn([](Process& proc, bool* d) -> CoTask<void> {
    auto& api = proc.api();
    auto a = co_await api.PtlCTAlloc();
    auto b = co_await api.PtlCTAlloc();
    EXPECT_EQ(a.rc, PTL_OK);
    EXPECT_EQ(b.rc, PTL_OK);
    EXPECT_EQ(co_await api.PtlTriggeredCTInc(a.value, 3, b.value, 7),
              PTL_OK);

    // Below threshold: nothing fires.
    EXPECT_EQ(co_await api.PtlCTInc(a.value, 1), PTL_OK);
    co_await sim::delay(proc.node().engine(), Time::us(50));
    auto gb = co_await api.PtlCTGet(b.value);
    EXPECT_EQ(gb.value, 0u);

    // Crossing the threshold fires exactly once.
    EXPECT_EQ(co_await api.PtlCTInc(a.value, 2), PTL_OK);
    auto wb = co_await api.PtlCTWait(b.value, 7);
    EXPECT_EQ(wb.rc, PTL_OK);
    EXPECT_EQ(wb.value, 7u);
    EXPECT_EQ(co_await api.PtlCTInc(a.value, 5), PTL_OK);
    co_await sim::delay(proc.node().engine(), Time::us(50));
    gb = co_await api.PtlCTGet(b.value);
    EXPECT_EQ(gb.value, 7u);

    // Rearm protocol: counters to zero FIRST, then clear fired flags.
    EXPECT_EQ(co_await api.PtlCTSet(a.value, 0), PTL_OK);
    EXPECT_EQ(co_await api.PtlCTRearm(), PTL_OK);
    EXPECT_EQ(co_await api.PtlCTInc(a.value, 3), PTL_OK);
    wb = co_await api.PtlCTWait(b.value, 14);
    EXPECT_EQ(wb.value, 14u);
    *d = true;
  }(p, &done));
  m.run();
  EXPECT_TRUE(done);
}

// Two triggered puts on one counter, armed in REVERSE threshold order:
// only the lower threshold fires at ct=1, both have fired at ct=2, and
// deposits land where each trigger aimed.
TEST(TriggeredCt, TriggeredPutsFireByThresholdNotArmOrder) {
  Machine m(net::Shape::xt3(2, 1, 1));
  Process& src = m.node(0).spawn_accel_process(kPid);
  Process& dst = m.node(1).spawn_accel_process(kPid);
  const std::uint64_t sbuf = src.alloc(64);
  const std::uint64_t rbuf = dst.alloc(64);
  std::vector<double> vals = {1.5, 2.5};
  src.write_bytes(sbuf, std::as_bytes(std::span(vals)));

  struct Shared {
    CtHandle rct{};
    bool target_ready = false;
    bool done = false;
  } sh;

  sim::spawn([](Process& proc, std::uint64_t buf, Shared* s) -> CoTask<void> {
    auto& api = proc.api();
    auto ct = co_await api.PtlCTAlloc();
    EXPECT_EQ(ct.rc, PTL_OK);
    s->rct = ct.value;
    auto me = co_await api.PtlMEAttach(
        0, ProcessId{ptl::kNidAny, ptl::kPidAny}, 7, 0, Unlink::kRetain,
        InsPos::kAfter);
    EXPECT_EQ(me.rc, PTL_OK);
    MdDesc d;
    d.start = buf;
    d.length = 64;
    d.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE |
                ptl::PTL_MD_EVENT_CT_PUT;
    d.ct = ct.value;
    auto md = co_await api.PtlMDAttach(me.value, d, Unlink::kRetain);
    EXPECT_EQ(md.rc, PTL_OK);
    s->target_ready = true;
  }(dst, rbuf, &sh));
  m.run();
  ASSERT_TRUE(sh.target_ready);

  sim::spawn([](Process& proc, Process& target, std::uint64_t buf,
                std::uint64_t tbuf, Shared* s) -> CoTask<void> {
    auto& api = proc.api();
    auto& tapi = target.api();
    auto ct = co_await api.PtlCTAlloc();
    EXPECT_EQ(ct.rc, PTL_OK);
    MdDesc d;
    d.start = buf;
    d.length = 64;
    auto md = co_await api.PtlMDBind(d, Unlink::kRetain);
    EXPECT_EQ(md.rc, PTL_OK);
    // Armed first, fires second: threshold 2, second double to offset 8.
    EXPECT_EQ(co_await api.PtlTriggeredPut(md.value, 8, 8, target.id(), 0, 0,
                                           7, 8, 0, ct.value, 2),
              PTL_OK);
    // Armed second, fires first: threshold 1, first double to offset 0.
    EXPECT_EQ(co_await api.PtlTriggeredPut(md.value, 0, 8, target.id(), 0, 0,
                                           7, 0, 0, ct.value, 1),
              PTL_OK);

    EXPECT_EQ(co_await api.PtlCTInc(ct.value, 1), PTL_OK);
    auto w = co_await tapi.PtlCTWait(s->rct, 1);
    EXPECT_EQ(w.rc, PTL_OK);
    std::vector<double> got(2);
    target.read_bytes(tbuf, std::as_writable_bytes(std::span(got)));
    EXPECT_DOUBLE_EQ(got[0], 1.5);  // low threshold landed
    EXPECT_DOUBLE_EQ(got[1], 0.0);  // high threshold has not fired

    EXPECT_EQ(co_await api.PtlCTInc(ct.value, 1), PTL_OK);
    w = co_await tapi.PtlCTWait(s->rct, 2);
    EXPECT_EQ(w.rc, PTL_OK);
    target.read_bytes(tbuf, std::as_writable_bytes(std::span(got)));
    EXPECT_DOUBLE_EQ(got[0], 1.5);
    EXPECT_DOUBLE_EQ(got[1], 2.5);
    s->done = true;
  }(src, dst, sbuf, rbuf, &sh));
  m.run();
  EXPECT_TRUE(sh.done);
  EXPECT_EQ(machine_interrupts(m), 0u);
  EXPECT_EQ(machine_triggered_fires(m), 2u);
}

TEST(TriggeredCt, TriggerTableExhaustsAtConfiguredSize) {
  ss::Config cfg;
  cfg.n_accel_triggers = 4;
  Machine m(net::Shape::xt3(1, 1, 1), cfg);
  Process& p = m.node(0).spawn_accel_process(kPid);
  bool done = false;
  sim::spawn([](Process& proc, bool* d) -> CoTask<void> {
    auto& api = proc.api();
    auto a = co_await api.PtlCTAlloc();
    auto b = co_await api.PtlCTAlloc();
    EXPECT_EQ(a.rc, PTL_OK);
    EXPECT_EQ(b.rc, PTL_OK);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(co_await api.PtlTriggeredCTInc(a.value, 100, b.value, 1),
                PTL_OK);
    }
    // The table is a fixed SRAM reservation: entry 5 does not fit.
    EXPECT_EQ(co_await api.PtlTriggeredCTInc(a.value, 100, b.value, 1),
              PTL_NO_SPACE);
    // Reset frees the whole table.
    EXPECT_EQ(co_await api.PtlCTResetTriggers(), PTL_OK);
    EXPECT_EQ(co_await api.PtlTriggeredCTInc(a.value, 100, b.value, 1),
              PTL_OK);
    *d = true;
  }(p, &done));
  m.run();
  EXPECT_TRUE(done);
}

// The counter + trigger tables are part of the firmware's 384 KB SRAM
// budget: a configuration that does not fit must fail at boot
// (registration), not corrupt silently.
TEST(TriggeredCt, CtTablesMustFitSramBudget) {
  ss::Config cfg;
  cfg.n_accel_triggers = 8192;  // 8192 * 96 B = 768 KB > 384 KB
  Machine m(net::Shape::xt3(1, 1, 1), cfg);
  EXPECT_THROW(m.node(0).spawn_accel_process(kPid), std::length_error);
}

// ------------------------------------------------- collective fixtures ----

struct CollJob {
  CollJob(int nranks, coll::Mode mode, int arity = 2)
      : m(net::Shape::xt3(nranks, 1, 1)) {
    std::vector<ProcessId> ids;
    for (int r = 0; r < nranks; ++r) {
      ids.push_back(ProcessId{static_cast<net::NodeId>(r), kPid});
    }
    coll::Config cc;
    cc.mode = mode;
    cc.tree_arity = arity;
    for (int r = 0; r < nranks; ++r) {
      auto& node = m.node(static_cast<net::NodeId>(r));
      Process& p = mode == coll::Mode::kOffload
                       ? node.spawn_accel_process(kPid, 8u << 20)
                       : node.spawn_process(kPid, 32u << 20);
      procs.push_back(&p);
      colls.push_back(std::make_unique<coll::Coll>(p, ids, r, cc));
    }
    for (auto& c : colls) {
      sim::spawn([](coll::Coll& cl) -> CoTask<void> {
        EXPECT_EQ(co_await cl.init(), PTL_OK);
      }(*c));
    }
    m.run();
  }
  coll::Coll& coll(int r) { return *colls[static_cast<std::size_t>(r)]; }
  Process& proc(int r) { return *procs[static_cast<std::size_t>(r)]; }
  Machine m;
  std::vector<Process*> procs;
  std::vector<std::unique_ptr<coll::Coll>> colls;
};

/// Runs one barrier on every rank with staggered arrivals and checks no
/// rank leaves before the last one arrives.
void run_barrier_iteration(CollJob& job, int n, coll::BarrierAlgo algo) {
  std::vector<Time> done_at(static_cast<std::size_t>(n));
  Time last_start = Time{};
  int done = 0;
  for (int r = 0; r < n; ++r) {
    const Time stagger = Time::us(3) * r;
    last_start = std::max(last_start, stagger);
    sim::spawn([](CollJob& j, int rk, Time delay, coll::BarrierAlgo a,
                  std::vector<Time>* out, int* d) -> CoTask<void> {
      co_await sim::delay(j.m.engine(), delay);
      EXPECT_EQ(co_await j.coll(rk).barrier(a), PTL_OK);
      (*out)[static_cast<std::size_t>(rk)] = j.m.engine().now();
      ++*d;
    }(job, r, stagger, algo, &done_at, &done));
  }
  job.m.run();
  ASSERT_EQ(done, n);
  for (int r = 0; r < n; ++r) {
    EXPECT_GE(done_at[static_cast<std::size_t>(r)], last_start)
        << "rank " << r << " left the barrier before the last arrival";
  }
}

void rearm_all(CollJob& job, int n) {
  for (int r = 0; r < n; ++r) {
    sim::spawn([](coll::Coll& c) -> CoTask<void> {
      EXPECT_EQ(co_await c.rearm_iteration(), PTL_OK);
    }(job.coll(r)));
  }
  job.m.run();
}

class OffloadSizes : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(RankCounts, OffloadSizes,
                         ::testing::Values(2, 3, 4, 5, 8));

TEST_P(OffloadSizes, BarrierDisseminationHoldsEveryRank) {
  const int n = GetParam();
  CollJob job(n, coll::Mode::kOffload);
  for (int r = 0; r < n; ++r) {
    sim::spawn([](coll::Coll& c) -> CoTask<void> {
      EXPECT_EQ(co_await c.prepare_barrier(coll::BarrierAlgo::kDissemination),
                PTL_OK);
    }(job.coll(r)));
  }
  job.m.run();
  for (int iter = 0; iter < 3; ++iter) {
    run_barrier_iteration(job, n, coll::BarrierAlgo::kDissemination);
    rearm_all(job, n);
  }
  EXPECT_EQ(machine_interrupts(job.m), 0u);
  EXPECT_GT(machine_triggered_fires(job.m), 0u);
}

TEST_P(OffloadSizes, BarrierTreeHoldsEveryRank) {
  const int n = GetParam();
  CollJob job(n, coll::Mode::kOffload);
  for (int r = 0; r < n; ++r) {
    sim::spawn([](coll::Coll& c) -> CoTask<void> {
      EXPECT_EQ(co_await c.prepare_barrier(coll::BarrierAlgo::kTree),
                PTL_OK);
    }(job.coll(r)));
  }
  job.m.run();
  for (int iter = 0; iter < 2; ++iter) {
    run_barrier_iteration(job, n, coll::BarrierAlgo::kTree);
    rearm_all(job, n);
  }
  EXPECT_EQ(machine_interrupts(job.m), 0u);
}

void run_allreduce_and_check(CollJob& job, int n, coll::AllreduceAlgo algo,
                             std::uint32_t count, double salt) {
  std::vector<std::uint64_t> bufs;
  for (int r = 0; r < n; ++r) {
    bufs.push_back(job.proc(r).alloc(count * 8));
    std::vector<double> v(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      v[i] = (r + 1) * 1.25 + i * salt;
    }
    job.proc(r).write_bytes(bufs.back(), std::as_bytes(std::span(v)));
  }
  int done = 0;
  for (int r = 0; r < n; ++r) {
    sim::spawn([](coll::Coll& c, coll::AllreduceAlgo a, std::uint64_t b,
                  std::uint32_t cnt, int* d) -> CoTask<void> {
      EXPECT_EQ(co_await c.allreduce(a, b, cnt), PTL_OK);
      ++*d;
    }(job.coll(r), algo, bufs[static_cast<std::size_t>(r)], count, &done));
  }
  job.m.run();
  ASSERT_EQ(done, n);
  for (int r = 0; r < n; ++r) {
    std::vector<double> got(count);
    job.proc(r).read_bytes(bufs[static_cast<std::size_t>(r)],
                           std::as_writable_bytes(std::span(got)));
    for (std::uint32_t i = 0; i < count; ++i) {
      double want = 0;
      for (int k = 0; k < n; ++k) want += (k + 1) * 1.25 + i * salt;
      EXPECT_DOUBLE_EQ(got[i], want) << "rank " << r << " element " << i;
    }
  }
}

TEST_P(OffloadSizes, AllreduceTreeSumsEverywhereWithZeroInterrupts) {
  const int n = GetParam();
  CollJob job(n, coll::Mode::kOffload);
  constexpr std::uint32_t kCount = 16;
  for (int r = 0; r < n; ++r) {
    sim::spawn([](coll::Coll& c) -> CoTask<void> {
      EXPECT_EQ(co_await c.prepare_allreduce(coll::AllreduceAlgo::kTree,
                                             kCount),
                PTL_OK);
    }(job.coll(r)));
  }
  job.m.run();
  run_allreduce_and_check(job, n, coll::AllreduceAlgo::kTree, kCount, 0.5);
  rearm_all(job, n);
  run_allreduce_and_check(job, n, coll::AllreduceAlgo::kTree, kCount, 0.25);
  EXPECT_EQ(machine_interrupts(job.m), 0u);
}

class OffloadPow2 : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(RankCounts, OffloadPow2,
                         ::testing::Values(2, 4, 8));

TEST_P(OffloadPow2, AllreduceRecursiveDoublingSumsEverywhere) {
  const int n = GetParam();
  CollJob job(n, coll::Mode::kOffload);
  constexpr std::uint32_t kCount = 16;
  for (int r = 0; r < n; ++r) {
    sim::spawn([](coll::Coll& c) -> CoTask<void> {
      EXPECT_EQ(co_await c.prepare_allreduce(
                    coll::AllreduceAlgo::kRecursiveDoubling, kCount),
                PTL_OK);
    }(job.coll(r)));
  }
  job.m.run();
  run_allreduce_and_check(job, n, coll::AllreduceAlgo::kRecursiveDoubling,
                          kCount, 0.5);
  rearm_all(job, n);
  run_allreduce_and_check(job, n, coll::AllreduceAlgo::kRecursiveDoubling,
                          kCount, 2.0);
  EXPECT_EQ(machine_interrupts(job.m), 0u);
}

TEST(Collective, OffloadBcastDeliversFromNonzeroRoot) {
  const int n = 6;
  const int root = 2;
  constexpr std::uint32_t kLen = 256;
  CollJob job(n, coll::Mode::kOffload, /*arity=*/3);
  std::vector<std::byte> payload(kLen);
  for (std::size_t i = 0; i < kLen; ++i) {
    payload[i] = static_cast<std::byte>(i * 7 + 3);
  }
  std::vector<std::uint64_t> bufs;
  for (int r = 0; r < n; ++r) {
    bufs.push_back(job.proc(r).alloc(kLen));
    if (r == root) job.proc(r).write_bytes(bufs.back(), payload);
    sim::spawn([](coll::Coll& c) -> CoTask<void> {
      EXPECT_EQ(co_await c.prepare_bcast(kLen, 2), PTL_OK);
    }(job.coll(r)));
  }
  job.m.run();
  int done = 0;
  for (int r = 0; r < n; ++r) {
    sim::spawn([](coll::Coll& c, std::uint64_t b, int* d) -> CoTask<void> {
      EXPECT_EQ(co_await c.bcast(b, kLen, 2), PTL_OK);
      ++*d;
    }(job.coll(r), bufs[static_cast<std::size_t>(r)], &done));
  }
  job.m.run();
  ASSERT_EQ(done, n);
  for (int r = 0; r < n; ++r) {
    std::vector<std::byte> got(kLen);
    job.proc(r).read_bytes(bufs[static_cast<std::size_t>(r)], got);
    EXPECT_EQ(got, payload) << "rank " << r;
  }
  EXPECT_EQ(machine_interrupts(job.m), 0u);
}

TEST(Collective, ConsumedScheduleRejectsRunWithoutRearm) {
  const int n = 2;
  CollJob job(n, coll::Mode::kOffload);
  for (int r = 0; r < n; ++r) {
    sim::spawn([](coll::Coll& c) -> CoTask<void> {
      EXPECT_EQ(co_await c.prepare_barrier(coll::BarrierAlgo::kDissemination),
                PTL_OK);
    }(job.coll(r)));
  }
  job.m.run();
  run_barrier_iteration(job, n, coll::BarrierAlgo::kDissemination);
  int rc = -1;
  sim::spawn([](coll::Coll& c, int* out) -> CoTask<void> {
    *out = co_await c.barrier(coll::BarrierAlgo::kDissemination);
  }(job.coll(0), &rc));
  job.m.run();
  EXPECT_EQ(rc, PTL_FAIL);
}

// ------------------------------------------------- host-mode algorithms ----

class HostSizes : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(RankCounts, HostSizes, ::testing::Values(2, 5, 8));

TEST_P(HostSizes, HostBarrierBothAlgosHoldEveryRank) {
  const int n = GetParam();
  CollJob job(n, coll::Mode::kHost);
  run_barrier_iteration(job, n, coll::BarrierAlgo::kDissemination);
  run_barrier_iteration(job, n, coll::BarrierAlgo::kTree);
}

TEST_P(HostSizes, HostAllreduceBothAlgosSumEverywhere) {
  const int n = GetParam();
  CollJob job(n, coll::Mode::kHost);
  run_allreduce_and_check(job, n, coll::AllreduceAlgo::kRecursiveDoubling,
                          16, 0.5);
  run_allreduce_and_check(job, n, coll::AllreduceAlgo::kTree, 16, 0.5);
}

TEST(Collective, HostBcastTreeDeliversFromNonzeroRoot) {
  const int n = 5;
  const int root = 3;
  constexpr std::uint32_t kLen = 512;
  CollJob job(n, coll::Mode::kHost, /*arity=*/2);
  std::vector<std::byte> payload(kLen, std::byte{0xA7});
  std::vector<std::uint64_t> bufs;
  for (int r = 0; r < n; ++r) {
    bufs.push_back(job.proc(r).alloc(kLen));
    if (r == root) job.proc(r).write_bytes(bufs.back(), payload);
  }
  int done = 0;
  for (int r = 0; r < n; ++r) {
    sim::spawn([](coll::Coll& c, std::uint64_t b, int rt,
                  int* d) -> CoTask<void> {
      EXPECT_EQ(co_await c.bcast(b, kLen, rt), PTL_OK);
      ++*d;
    }(job.coll(r), bufs[static_cast<std::size_t>(r)], root, &done));
  }
  job.m.run();
  ASSERT_EQ(done, n);
  for (int r = 0; r < n; ++r) {
    std::vector<std::byte> got(kLen);
    job.proc(r).read_bytes(bufs[static_cast<std::size_t>(r)], got);
    EXPECT_EQ(got, payload) << "rank " << r;
  }
}

// Host and offload must compute identical results (pairwise double sums
// associate the same way in both schedules).
TEST(Collective, HostAndOffloadAllreduceAgree) {
  const int n = 4;
  constexpr std::uint32_t kCount = 8;
  std::vector<std::vector<double>> results;
  for (const coll::Mode mode : {coll::Mode::kHost, coll::Mode::kOffload}) {
    CollJob job(n, mode);
    std::vector<std::uint64_t> bufs;
    for (int r = 0; r < n; ++r) {
      bufs.push_back(job.proc(r).alloc(kCount * 8));
      std::vector<double> v(kCount);
      for (std::uint32_t i = 0; i < kCount; ++i) {
        v[i] = (r + 1) * 0.3 + i * 1.7;
      }
      job.proc(r).write_bytes(bufs.back(), std::as_bytes(std::span(v)));
      sim::spawn([](coll::Coll& c) -> CoTask<void> {
        EXPECT_EQ(co_await c.prepare_allreduce(
                      coll::AllreduceAlgo::kRecursiveDoubling, kCount),
                  PTL_OK);
      }(job.coll(r)));
    }
    job.m.run();
    int done = 0;
    for (int r = 0; r < n; ++r) {
      sim::spawn([](coll::Coll& c, std::uint64_t b, int* d) -> CoTask<void> {
        EXPECT_EQ(co_await c.allreduce(
                      coll::AllreduceAlgo::kRecursiveDoubling, b, kCount),
                  PTL_OK);
        ++*d;
      }(job.coll(r), bufs[static_cast<std::size_t>(r)], &done));
    }
    job.m.run();
    EXPECT_EQ(done, n);
    std::vector<double> got(kCount);
    job.proc(0).read_bytes(bufs[0], std::as_writable_bytes(std::span(got)));
    results.push_back(got);
  }
  ASSERT_EQ(results.size(), 2u);
  for (std::uint32_t i = 0; i < kCount; ++i) {
    EXPECT_DOUBLE_EQ(results[0][i], results[1][i]) << "element " << i;
  }
}

TEST(Collective, SramFootprintReportedAgainstBudget) {
  CollJob job(2, coll::Mode::kOffload);
  const std::size_t fp = job.coll(0).sram_footprint();
  const ss::Config& cfg = job.m.config();
  EXPECT_EQ(fp, cfg.n_accel_counters * cfg.counter_bytes +
                    cfg.n_accel_triggers * cfg.trigger_bytes);
  EXPECT_LT(fp, cfg.sram_bytes);
  EXPECT_LE(job.m.node(0).nic().sram().used(), cfg.sram_bytes);
  // Host mode occupies nothing.
  CollJob host(2, coll::Mode::kHost);
  EXPECT_EQ(host.coll(0).sram_footprint(), 0u);
}

}  // namespace
}  // namespace xt
