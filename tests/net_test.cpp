// Unit tests for the 3D torus network substrate (src/net).

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "fault/injector.hpp"
#include "fault/invariants.hpp"
#include "fault/plan.hpp"
#include "harness/scenario.hpp"
#include "net/coord.hpp"
#include "net/crc.hpp"
#include "net/link.hpp"
#include "net/network.hpp"
#include "net/routing.hpp"
#include "sim/rng.hpp"
#include "workload/generator.hpp"

namespace xt::net {
namespace {

using sim::Time;

std::vector<std::byte> bytes_of(const char* s) {
  std::vector<std::byte> v(std::strlen(s));
  std::memcpy(v.data(), s, v.size());
  return v;
}

// --------------------------------------------------------------- Shape ----

TEST(Shape, IdCoordRoundTrip) {
  const Shape s = Shape::xt3(4, 3, 5);
  for (NodeId id = 0; id < static_cast<NodeId>(s.count()); ++id) {
    EXPECT_EQ(s.to_id(s.to_coord(id)), id);
  }
}

TEST(Shape, CountAndContains) {
  const Shape s = Shape::red_storm(27, 16, 24);  // Red Storm scale
  EXPECT_EQ(s.count(), 27 * 16 * 24);
  EXPECT_TRUE(s.contains(Coord{0, 0, 0}));
  EXPECT_TRUE(s.contains(Coord{26, 15, 23}));
  EXPECT_FALSE(s.contains(Coord{27, 0, 0}));
  EXPECT_FALSE(s.contains(Coord{0, -1, 0}));
}

TEST(Shape, RedStormWrapsOnlyZ) {
  const Shape s = Shape::red_storm(4, 4, 4);
  EXPECT_FALSE(s.wrap_x);
  EXPECT_FALSE(s.wrap_y);
  EXPECT_TRUE(s.wrap_z);
}

// ------------------------------------------------------------- Routing ----

TEST(Routing, ResolvesDimensionsInXyzOrder) {
  const Shape s = Shape::xt3(4, 4, 4);
  const Coord self{0, 0, 0};
  EXPECT_EQ(route_step(s, self, Coord{1, 1, 1}), Port::kXPlus);
  EXPECT_EQ(route_step(s, self, Coord{0, 1, 1}), Port::kYPlus);
  EXPECT_EQ(route_step(s, self, Coord{0, 0, 1}), Port::kZPlus);
  EXPECT_EQ(route_step(s, self, Coord{0, 0, 0}), Port::kLocal);
}

TEST(Routing, TorusTakesShorterRingDirection) {
  const Shape s = Shape::xt3(8, 1, 1);
  // 0 -> 7 is one hop backward around the ring.
  EXPECT_EQ(route_step(s, Coord{0, 0, 0}, Coord{7, 0, 0}), Port::kXMinus);
  // 0 -> 3 is three hops forward, shorter than five backward.
  EXPECT_EQ(route_step(s, Coord{0, 0, 0}, Coord{3, 0, 0}), Port::kXPlus);
  // Tie (0 -> 4: four either way) breaks toward +.
  EXPECT_EQ(route_step(s, Coord{0, 0, 0}, Coord{4, 0, 0}), Port::kXPlus);
}

TEST(Routing, MeshNeverWraps) {
  const Shape s = Shape::red_storm(8, 1, 1);
  // Without wraparound, 0 -> 7 must go all the way forward.
  EXPECT_EQ(route_step(s, Coord{0, 0, 0}, Coord{7, 0, 0}), Port::kXPlus);
  EXPECT_EQ(hop_count(s, 0, 7), 7);
}

TEST(Routing, HopCountMatchesManhattanDistanceOnMesh) {
  const Shape s = Shape::red_storm(5, 4, 3);
  s.to_coord(0);
  const NodeId a = s.to_id(Coord{0, 1, 0});
  const NodeId b = s.to_id(Coord{4, 3, 2});
  // x: 4, y: 2, z: min(2, 1 wrap) = 1 (z wraps in red storm).
  EXPECT_EQ(hop_count(s, a, b), 4 + 2 + 1);
}

TEST(Routing, PathEndpointsAndContinuity) {
  const Shape s = Shape::xt3(4, 4, 4);
  const auto path = route_path(s, 5, 62);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), 5u);
  EXPECT_EQ(path.back(), 62u);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_EQ(hop_count(s, path[i], path[i + 1]), 1);
  }
}

TEST(Routing, TableMatchesRouteStep) {
  const Shape s = Shape::xt3(3, 3, 3);
  for (NodeId self = 0; self < static_cast<NodeId>(s.count()); ++self) {
    const RoutingTable t(s, s.to_coord(self));
    for (NodeId dst = 0; dst < static_cast<NodeId>(s.count()); ++dst) {
      EXPECT_EQ(t.next_port(dst),
                route_step(s, s.to_coord(self), s.to_coord(dst)));
    }
  }
}

TEST(Routing, FixedPathsAreDeterministic) {
  const Shape s = Shape::xt3(4, 4, 4);
  EXPECT_EQ(route_path(s, 3, 40), route_path(s, 3, 40));
}

TEST(Routing, NeighborInverts) {
  const Shape s = Shape::xt3(4, 4, 4);
  const NodeId n = s.to_id(Coord{1, 2, 3});
  EXPECT_EQ(neighbor(s, neighbor(s, n, Port::kXPlus), Port::kXMinus), n);
  EXPECT_EQ(neighbor(s, neighbor(s, n, Port::kZPlus), Port::kZMinus), n);
}

TEST(Routing, NeighborWrapsTorus) {
  const Shape s = Shape::xt3(4, 1, 1);
  EXPECT_EQ(neighbor(s, 3, Port::kXPlus), 0u);
  EXPECT_EQ(neighbor(s, 0, Port::kXMinus), 3u);
}

// ----------------------------------------------------------------- CRC ----

TEST(Crc, Crc16KnownVector) {
  // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
  EXPECT_EQ(crc16(bytes_of("123456789")), 0x29B1);
}

TEST(Crc, Crc32KnownVector) {
  // CRC-32/IEEE("123456789") = 0xCBF43926.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
}

TEST(Crc, Crc32IncrementalMatchesOneShot) {
  const auto data = bytes_of("the quick brown fox jumps over the lazy dog");
  std::uint32_t st = crc32_init();
  st = crc32_update(st, std::span(data).subspan(0, 10));
  st = crc32_update(st, std::span(data).subspan(10));
  EXPECT_EQ(crc32_finish(st), crc32(data));
}

TEST(Crc, DetectsSingleBitFlip) {
  auto data = bytes_of("payload payload payload");
  const auto orig16 = crc16(data);
  const auto orig32 = crc32(data);
  data[5] ^= std::byte{0x10};
  EXPECT_NE(crc16(data), orig16);
  EXPECT_NE(crc32(data), orig32);
}

TEST(Crc, EmptyInput) {
  EXPECT_EQ(crc16({}), 0xFFFF);
  EXPECT_EQ(crc32({}), 0x00000000u);
}

// ---------------------------------------------------------------- Link ----

TEST(Link, SerializeTimeIsPacketGranular) {
  sim::Engine eng;
  LinkConfig cfg;  // 2.5 GB/s, 64 B packets
  Link l(eng, cfg, 1, "l");
  // 1 byte still occupies a whole 64-byte packet: 25.6 ns.
  EXPECT_EQ(l.serialize_time(1), Time::ps(25600));
  EXPECT_EQ(l.serialize_time(64), Time::ps(25600));
  EXPECT_EQ(l.serialize_time(65), Time::ps(51200));
  // Zero-byte carry still needs one packet.
  EXPECT_EQ(l.serialize_time(0), Time::ps(25600));
}

TEST(Link, CarryTakesSerializationPlusHop) {
  sim::Engine eng;
  LinkConfig cfg;
  cfg.hop_latency = Time::ns(40);
  Link l(eng, cfg, 1, "l");
  Time done{};
  sim::spawn([](sim::Engine& e, Link& lk, Time& out) -> sim::CoTask<void> {
    (void)co_await lk.carry(64);
    out = e.now();
  }(eng, l, done));
  eng.run();
  EXPECT_EQ(done, Time::ps(25600) + Time::ns(40));
}

TEST(Link, BackToBackChunksSerialize) {
  sim::Engine eng;
  LinkConfig cfg;
  cfg.hop_latency = Time{};
  Link l(eng, cfg, 1, "l");
  std::vector<Time> done;
  for (int i = 0; i < 3; ++i) {
    sim::spawn([](sim::Engine& e, Link& lk, auto& out) -> sim::CoTask<void> {
      (void)co_await lk.carry(6400);  // 100 packets = 2.56 us
      out.push_back(e.now());
    }(eng, l, done));
  }
  eng.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], Time::ps(2560000));
  EXPECT_EQ(done[1], Time::ps(5120000));
  EXPECT_EQ(done[2], Time::ps(7680000));
}

TEST(Link, FaultInjectionCausesRetries) {
  sim::Engine eng;
  LinkConfig cfg;
  cfg.pkt_corrupt_prob = 0.05;
  Link l(eng, cfg, 42, "l");
  sim::spawn([](Link& lk) -> sim::CoTask<void> {
    for (int i = 0; i < 200; ++i) (void)co_await lk.carry(64 * 100);
  }(l));
  eng.run();
  // 200 chunks x 100 packets x 5% => virtually certain to see retries.
  EXPECT_GT(l.retries(), 0u);
}

TEST(Link, NoFaultsMeansNoRetries) {
  sim::Engine eng;
  Link l(eng, LinkConfig{}, 42, "l");
  sim::spawn([](Link& lk) -> sim::CoTask<void> {
    for (int i = 0; i < 100; ++i) (void)co_await lk.carry(4096);
  }(l));
  eng.run();
  EXPECT_EQ(l.retries(), 0u);
}

// ------------------------------------------------------------- Network ----

/// Records delivery milestones.
class Probe final : public Endpoint {
 public:
  void on_header(const MessagePtr& m) override { headers.push_back(m); }
  void on_complete(const MessagePtr& m) override { completes.push_back(m); }
  std::vector<MessagePtr> headers;
  std::vector<MessagePtr> completes;
};

struct TwoNode {
  sim::Engine eng;
  Network net{eng, Shape::xt3(2, 1, 1)};
  Probe p0, p1;
  TwoNode() {
    net.attach(0, p0);
    net.attach(1, p1);
  }
  MessagePtr make(NodeId src, NodeId dst, std::size_t payload) {
    auto m = std::make_shared<Message>();
    m->src = src;
    m->dst = dst;
    m->header.resize(64);
    m->payload.resize(payload, std::byte{0xAB});
    return m;
  }
};

TEST(Network, HeaderOnlyMessageDelivered) {
  TwoNode t;
  t.net.send(t.make(0, 1, 0));
  t.eng.run();
  ASSERT_EQ(t.p1.headers.size(), 1u);
  ASSERT_EQ(t.p1.completes.size(), 1u);
  // One 64 B packet at 2.5 GB/s + 40 ns hop = 65.6 ns.
  EXPECT_EQ(t.p1.headers[0]->header_at, Time::ps(65600));
  EXPECT_EQ(t.p1.completes[0]->completed_at, Time::ps(65600));
}

TEST(Network, HeaderArrivesBeforeBodyCompletes) {
  TwoNode t;
  t.net.send(t.make(0, 1, 256 * 1024));
  t.eng.run();
  ASSERT_EQ(t.p1.headers.size(), 1u);
  ASSERT_EQ(t.p1.completes.size(), 1u);
  EXPECT_LT(t.p1.headers[0]->header_at, t.p1.completes[0]->completed_at);
  // 256 KiB at 2.5 GB/s is ~105 us of serialization.
  EXPECT_NEAR(t.p1.completes[0]->completed_at.to_us(), 105.0, 5.0);
}

TEST(Network, PayloadBytesSurviveTransit) {
  TwoNode t;
  auto m = t.make(0, 1, 1000);
  for (std::size_t i = 0; i < m->payload.size(); ++i) {
    m->payload[i] = static_cast<std::byte>(i * 7);
  }
  const auto expect = m->payload;
  t.net.send(m);
  t.eng.run();
  ASSERT_EQ(t.p1.completes.size(), 1u);
  EXPECT_EQ(t.p1.completes[0]->payload, expect);
}

TEST(Network, E2eCrcMatchesContents) {
  TwoNode t;
  auto m = t.make(0, 1, 5000);
  t.net.send(m);
  t.eng.run();
  const auto& got = *t.p1.completes[0];
  std::uint32_t c = crc32_init();
  c = crc32_update(c, got.header);
  c = crc32_update(c, got.payload);
  EXPECT_EQ(crc32_finish(c), got.e2e_crc);
}

TEST(Network, InOrderDeliveryPerPair) {
  TwoNode t;
  for (int i = 0; i < 20; ++i) {
    t.net.send(t.make(0, 1, static_cast<std::size_t>(1 + 977 * i % 9000)));
  }
  t.eng.run();
  ASSERT_EQ(t.p1.completes.size(), 20u);
  for (std::size_t i = 0; i + 1 < 20; ++i) {
    EXPECT_LT(t.p1.completes[i]->seq, t.p1.completes[i + 1]->seq);
  }
}

TEST(Network, LoopbackDelivers) {
  TwoNode t;
  t.net.send(t.make(0, 0, 100));
  t.eng.run();
  EXPECT_EQ(t.p0.completes.size(), 1u);
}

TEST(Network, BidirectionalTrafficDoesNotShareLinks) {
  // Opposite directions use independent links: simultaneous sends finish
  // at (nearly) the same time as a single send.
  TwoNode t;
  t.net.send(t.make(0, 1, 1 << 20));
  t.net.send(t.make(1, 0, 1 << 20));
  t.eng.run();
  ASSERT_EQ(t.p0.completes.size(), 1u);
  ASSERT_EQ(t.p1.completes.size(), 1u);
  const double a = t.p0.completes[0]->completed_at.to_us();
  const double b = t.p1.completes[0]->completed_at.to_us();
  EXPECT_NEAR(a, b, 1.0);
  // 1 MiB at 2.5 GB/s ~ 420 us; far less than 2x if links were shared.
  EXPECT_LT(a, 500.0);
}

TEST(Network, SharedLinkHalvesThroughput) {
  // Two flows (0->2 and 1->2 ... actually 0->1 and 0->1) through the same
  // link take twice as long as one.
  TwoNode t;
  t.net.send(t.make(0, 1, 1 << 20));
  t.net.send(t.make(0, 1, 1 << 20));
  t.eng.run();
  ASSERT_EQ(t.p1.completes.size(), 2u);
  EXPECT_NEAR(t.p1.completes[1]->completed_at.to_us(), 840.0, 40.0);
}

TEST(Network, MultiHopAddsPerHopLatency) {
  sim::Engine eng;
  Network net(eng, Shape::red_storm(5, 1, 1));
  Probe p;
  net.attach(4, p);
  auto m = std::make_shared<Message>();
  m->src = 0;
  m->dst = 4;
  m->header.resize(64);
  net.send(m);
  eng.run();
  ASSERT_EQ(p.completes.size(), 1u);
  // 4 hops: 4 x (25.6 ns serialize + 40 ns hop).
  EXPECT_EQ(p.completes[0]->completed_at, Time::ps(4 * (25600 + 40000)));
}

TEST(Network, PathLinksMatchesHopCount) {
  sim::Engine eng;
  const Shape s = Shape::xt3(4, 4, 4);
  Network net(eng, s);
  EXPECT_EQ(net.path_links(0, 63).size(),
            static_cast<std::size_t>(hop_count(s, 0, 63)));
}

TEST(Network, UndetectedCorruptionFlagsMessage) {
  sim::Engine eng;
  NetConfig cfg;
  cfg.link.undetected_corrupt_prob = 1.0;  // force it
  Network net(eng, Shape::xt3(2, 1, 1), cfg);
  Probe p;
  net.attach(1, p);
  auto m = std::make_shared<Message>();
  m->src = 0;
  m->dst = 1;
  m->header.resize(64);
  net.send(m);
  eng.run();
  ASSERT_EQ(p.completes.size(), 1u);
  EXPECT_TRUE(p.completes[0]->corrupted);
}

// Property: random pairs on a Red Storm shaped machine always route, with
// hop count <= sum of dimension extents.
TEST(NetworkProperty, AllPairsRouteOnRedStormShape) {
  const Shape s = Shape::red_storm(6, 5, 4);
  sim::Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    const auto a = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(s.count())));
    const auto b = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(s.count())));
    const int h = hop_count(s, a, b);
    EXPECT_GE(h, 0);
    EXPECT_LE(h, (s.nx - 1) + (s.ny - 1) + s.nz / 2);
    if (a == b) {
      EXPECT_EQ(h, 0);
    }
  }
}

// ------------------------------------- go-back-n edge cases under loss ----
//
// Table-driven full-stack scenarios: a 2-node incast (rank 1 streams to
// rank 0) with go-back-n on and *scripted* drops — exact wire-message
// indices in (src, dst) injection order, so each case deterministically
// provokes one recovery path.  Retransmits are themselves wire messages
// and count against later indices, which is how a case expresses "drop the
// retransmit too".  Every case must end lossless with the expected number
// of rewinds.

namespace gbn_edge {

struct GbnCase {
  const char* name;
  std::vector<fault::ScriptedDrop> drops;
  std::uint64_t min_rewinds;  ///< recovery attempts the case must provoke
};

std::vector<fault::ScriptedDrop> drop_range(std::uint32_t lo,
                                            std::uint32_t hi) {
  std::vector<fault::ScriptedDrop> v;
  for (std::uint32_t n = lo; n < hi; ++n) v.push_back({1, 0, n});
  return v;
}

class GbnEdge : public ::testing::TestWithParam<GbnCase> {};

INSTANTIATE_TEST_SUITE_P(
    Cases, GbnEdge,
    ::testing::Values(
        // One lost first transmission: NACK/watchdog rewinds once.
        GbnCase{"single_loss", {{1, 0, 2}}, 1},
        // A second loss lands while the first rewind is in flight: the
        // in-progress rewind absorbs it (or the watchdog catches it) —
        // retransmit-during-retransmit must not wedge the stream.
        GbnCase{"loss_during_rewind", {{1, 0, 1}, {1, 0, 4}}, 1},
        // Drop the first transmissions AND the entire first retransmit
        // burst (wire messages 12..19 are the rewind of seq 2..9): the
        // double fault forces a second full rewind.
        GbnCase{"dropped_retransmit_double_fault", drop_range(2, 20), 2},
        // A long outage: three consecutive rewind bursts are lost, so the
        // watchdog's exponential backoff must escalate toward its ceiling
        // and the stream still recovers once the outage lifts.
        GbnCase{"long_outage_backoff_escalation", drop_range(2, 34), 3}),
    [](const ::testing::TestParamInfo<GbnCase>& pinfo) {
      return pinfo.param.name;
    });

TEST_P(GbnEdge, RecoversLosslessly) {
  const GbnCase& tc = GetParam();

  workload::WorkloadSpec spec;
  spec.pattern = workload::PatternKind::kIncast;  // rank 1 -> rank 0 only
  spec.ranks = 2;
  spec.bytes = 1024;
  spec.msgs_per_sender = 12;
  spec.loop = workload::Loop::kClosed;
  spec.outstanding = 12;  // all first transmissions go out as 0..11
  spec.seed = 7;

  ss::Config cfg;
  cfg.gobackn = true;

  fault::FaultPlan plan;  // no rate faults: only the scripted drops
  plan.scripted_drops = tc.drops;

  harness::Scenario sc =
      workload::workload_scenario(spec, host::ProcMode::kUser, cfg, 3);
  sc.with_faults(plan);
  auto inst = sc.build();
  const workload::WorkloadResult res = workload::run_workload(*inst, spec);

  // Lossless recovery, and the invariant checker saw nothing wrong.
  EXPECT_TRUE(res.complete) << res.failure;
  EXPECT_EQ(res.delivered, res.sent);
  inst->invariants()->finish();
  EXPECT_TRUE(inst->invariants()->ok())
      << inst->invariants()->violations().front();

  // Every scripted drop actually hit its wire message.
  EXPECT_EQ(inst->injector()->totals().scripted_drops, tc.drops.size());

  // The sender's firmware went through the expected recovery motions.
  const auto c = inst->machine().node(1).firmware().counters();
  EXPECT_GE(c.rewinds, tc.min_rewinds) << "retransmits=" << c.retransmits;
  EXPECT_GE(c.retransmits, static_cast<std::uint64_t>(1));
  for (NodeId n = 0; n < 2; ++n) {
    EXPECT_FALSE(inst->machine().node(n).firmware().panicked());
  }
}

}  // namespace gbn_edge

// ---------------------------------------------- productive_ports (mt) ----

TEST(Routing, ProductivePortsFirstEntryMatchesRouteStep) {
  for (const Shape& s : {Shape::xt3(4, 4, 4), Shape::xt3(8, 2, 1),
                         Shape::red_storm(5, 4, 3)}) {
    for (NodeId a = 0; a < static_cast<NodeId>(s.count()); ++a) {
      for (NodeId b = 0; b < static_cast<NodeId>(s.count()); ++b) {
        const auto ports =
            productive_ports(s, s.to_coord(a), s.to_coord(b));
        if (a == b) {
          EXPECT_TRUE(ports.empty());
        } else {
          ASSERT_FALSE(ports.empty());
          EXPECT_EQ(ports.front(),
                    route_step(s, s.to_coord(a), s.to_coord(b)));
        }
      }
    }
  }
}

TEST(Routing, ProductivePortsEvenRingTieOffersBothDirections) {
  // 0 -> 4 on an 8-ring: four hops either way, so both X directions are
  // minimal; dimension-order commits to +, adaptive may pick either.
  const Shape s = Shape::xt3(8, 1, 1);
  const auto ports = productive_ports(s, Coord{0, 0, 0}, Coord{4, 0, 0});
  ASSERT_EQ(ports.size(), 2u);
  EXPECT_EQ(ports[0], Port::kXPlus);
  EXPECT_EQ(ports[1], Port::kXMinus);
}

TEST(Routing, ProductivePortsOffTieIsSingleDirection) {
  const Shape s = Shape::xt3(8, 1, 1);
  EXPECT_EQ(productive_ports(s, Coord{0, 0, 0}, Coord{3, 0, 0}),
            (std::vector<Port>{Port::kXPlus}));
  EXPECT_EQ(productive_ports(s, Coord{0, 0, 0}, Coord{7, 0, 0}),
            (std::vector<Port>{Port::kXMinus}));
}

TEST(Routing, ProductivePortsMeshNeverWraps) {
  // Red Storm X is a mesh: 0 -> 7 has no backward shortcut even though a
  // torus would tie or win going -x.
  const Shape s = Shape::red_storm(8, 1, 1);
  EXPECT_EQ(productive_ports(s, Coord{0, 0, 0}, Coord{7, 0, 0}),
            (std::vector<Port>{Port::kXPlus}));
}

TEST(Routing, ProductivePortsSingleNodeDimsContributeNothing) {
  // ny = nz = 1: only X can ever be productive.
  const Shape s = Shape::xt3(4, 1, 1);
  for (int x = 1; x < 4; ++x) {
    for (Port p : productive_ports(s, Coord{0, 0, 0}, Coord{x, 0, 0})) {
      EXPECT_TRUE(p == Port::kXPlus || p == Port::kXMinus);
    }
  }
}

TEST(Routing, ProductivePortsSpanAllUnresolvedDims) {
  // From a corner to the opposite corner of a 4x4x4 torus (distance 2 in
  // each dimension, no ties): exactly one productive port per dimension.
  const Shape s = Shape::xt3(4, 4, 4);
  const auto ports = productive_ports(s, Coord{0, 0, 0}, Coord{2, 2, 2});
  ASSERT_EQ(ports.size(), 6u);  // distance 2 each way = tie in every dim
  // 4-ring, 0 -> 2: two hops either direction, both offered per dim.
  EXPECT_EQ(ports,
            (std::vector<Port>{Port::kXPlus, Port::kXMinus, Port::kYPlus,
                               Port::kYMinus, Port::kZPlus, Port::kZMinus}));
  const auto one = productive_ports(s, Coord{0, 0, 0}, Coord{1, 3, 0});
  EXPECT_EQ(one, (std::vector<Port>{Port::kXPlus, Port::kYMinus}));
}

// ----------------------------------------------- adaptive routing (mt) ----

TEST(Network, AdaptiveOnIdleNetworkMatchesDimOrderExactly) {
  // With every link idle, the occupancy tie-break always picks the
  // dimension-order port: no deflections, same delivery time.
  NetConfig cfg;
  cfg.routing = Routing::kAdaptive;
  sim::Engine e1, e2;
  Network adaptive(e1, Shape::xt3(4, 4, 4), cfg);
  Network dimorder(e2, Shape::xt3(4, 4, 4));
  Probe pa, pd;
  adaptive.attach(42, pa);
  dimorder.attach(42, pd);
  for (Network* n : {&adaptive, &dimorder}) {
    auto m = std::make_shared<Message>();
    m->src = 0;
    m->dst = 42;
    m->header.resize(64);
    m->payload.resize(4096, std::byte{0x5A});
    n->send(m);
  }
  e1.run();
  e2.run();
  ASSERT_EQ(pa.completes.size(), 1u);
  ASSERT_EQ(pd.completes.size(), 1u);
  EXPECT_EQ(pa.completes[0]->completed_at, pd.completes[0]->completed_at);
  EXPECT_EQ(adaptive.adaptive_deflections(), 0u);
}

TEST(Network, AdaptiveDeflectsAroundBusyLink) {
  // Saturate the dimension-order first hop (0 -> +x on a ring with a tie),
  // then inject a tied message: adaptive should take the idle -x route and
  // count one deflection.
  NetConfig cfg;
  cfg.routing = Routing::kAdaptive;
  sim::Engine eng;
  Network net(eng, Shape::xt3(8, 1, 1), cfg);
  Probe mid, far;
  net.attach(1, mid);
  net.attach(4, far);
  auto hog = std::make_shared<Message>();
  hog->src = 0;
  hog->dst = 1;  // one hop +x, occupies link 0:+x
  hog->header.resize(64);
  hog->payload.resize(1 << 20, std::byte{0x11});
  net.send(hog);
  eng.schedule_after(Time::us(1), [&net] {
    auto tied = std::make_shared<Message>();
    tied->src = 0;
    tied->dst = 4;  // 4 hops either way around the 8-ring
    tied->header.resize(64);
    net.send(tied);
  });
  eng.run();
  ASSERT_EQ(far.completes.size(), 1u);
  EXPECT_EQ(net.adaptive_deflections(), 1u);
  // The deflected header never waited for the 1 MiB hog: 4 idle hops.
  EXPECT_EQ(far.completes[0]->completed_at,
            Time::us(1) + Time::ps(4 * (25600 + 40000)));
}

// ------------------------------------------------- vc arbitration (mt) ----

TEST(Network, TwoVcRoundRobinBoundsCrossClassQueueing) {
  // Class 1 sends one small message behind class 0's deep backlog on the
  // same link.  With one VC it waits out the whole backlog; with two VCs
  // round-robin lets it through after ~one chunk.
  auto run_once = [](int vcs) {
    NetConfig cfg;
    cfg.link.vcs = vcs;
    sim::Engine eng;
    Network net(eng, Shape::xt3(2, 1, 1), cfg);
    net.set_service_class(0, 0);
    Probe p;
    net.attach(1, p);
    for (int i = 0; i < 8; ++i) {
      auto m = std::make_shared<Message>();
      m->src = 0;
      m->dst = 1;
      m->header.resize(64);
      m->payload.resize(64 * 1024, std::byte{0x22});
      net.send(m);
    }
    Time small_done{};
    eng.schedule_after(Time::ns(100), [&net] {
      net.set_service_class(0, 1);
      auto m = std::make_shared<Message>();
      m->src = 0;
      m->dst = 1;
      m->header.resize(64);
      net.send(m);
    });
    eng.run();
    Time latest{};
    for (const auto& m : p.completes) {
      if (m->payload.empty()) small_done = m->completed_at;
      latest = std::max(latest, m->completed_at);
    }
    EXPECT_EQ(p.completes.size(), 9u);
    return small_done;
  };
  const Time with_one_vc = run_once(1);
  const Time with_two_vc = run_once(2);
  // Two VCs: the small header interleaves with the backlog instead of
  // queueing behind all of it.
  EXPECT_LT(with_two_vc, with_one_vc);
}


}  // namespace
}  // namespace xt::net
