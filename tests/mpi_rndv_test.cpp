// Rendezvous-protocol edge cases (ISSUE 9): get- vs push-protocol
// selection, the movable eager/rendezvous threshold, protocol-leg
// counting, recovery under injected drops, and the unexpected-queue
// bound's drop/repost behaviour.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "harness/scenario.hpp"
#include "host/node.hpp"
#include "mpi/mpi.hpp"
#include "telemetry/metrics.hpp"

namespace xt::mpi {
namespace {

using host::Machine;
using host::Process;
using ptl::PTL_OK;
using sim::CoTask;
using sim::Time;

constexpr ptl::Pid kPid = 9;

Flavor flavor_for(Flavor::RndvProto proto, std::uint32_t threshold = 0) {
  Flavor f = Flavor::mpich1();
  f.rndv_proto = proto;
  f.rndv_threshold = threshold;
  return f;
}

/// Same two-rank job rig as mpi_test.
struct Job {
  explicit Job(int nranks, Flavor flavor = Flavor::mpich1())
      : m(net::Shape::xt3(nranks, 1, 1)) {
    std::vector<ptl::ProcessId> ids;
    for (int r = 0; r < nranks; ++r) {
      ids.push_back(ptl::ProcessId{static_cast<net::NodeId>(r), kPid});
    }
    for (int r = 0; r < nranks; ++r) {
      procs.push_back(&m.node(static_cast<net::NodeId>(r))
                           .spawn_process(kPid));
      comms.push_back(std::make_unique<Comm>(*procs.back(), ids, r, flavor));
    }
    for (auto& c : comms) {
      sim::spawn([](Comm& comm) -> CoTask<void> {
        EXPECT_EQ(co_await comm.init(), PTL_OK);
      }(*c));
    }
    m.run();
  }
  Comm& comm(int r) { return *comms[static_cast<std::size_t>(r)]; }
  Process& proc(int r) { return *procs[static_cast<std::size_t>(r)]; }

  Machine m;
  std::vector<Process*> procs;
  std::vector<std::unique_ptr<Comm>> comms;
};

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 37 + seed) & 0xFF);
  }
  return v;
}

/// One verified transfer on `job`; `recv_delay` holds the receive back so
/// the RTS lands unexpected and the sender runs ahead of the match.
void run_transfer(Job& job, std::uint32_t len, Time recv_delay = {}) {
  const auto data = pattern(len, 5);
  const std::uint64_t sbuf = job.proc(0).alloc(len);
  const std::uint64_t rbuf = job.proc(1).alloc(len);
  job.proc(0).write_bytes(sbuf, data);
  bool sdone = false, rdone = false;
  Status st;
  sim::spawn([](Comm& c, std::uint64_t b, std::uint32_t n,
                bool* done) -> CoTask<void> {
    Request req;
    EXPECT_EQ(co_await c.isend(b, n, 1, 7, &req), PTL_OK);
    EXPECT_EQ(co_await c.wait(&req), PTL_OK);
    *done = true;
  }(job.comm(0), sbuf, len, &sdone));
  sim::spawn([](Comm& c, std::uint64_t b, std::uint32_t n, Time delay,
                Status* s, bool* done) -> CoTask<void> {
    if (delay > Time{}) co_await c.process().node().cpu().run(delay);
    EXPECT_EQ(co_await c.recv(b, n, 0, 7, s), PTL_OK);
    *done = true;
  }(job.comm(1), rbuf, len, recv_delay, &st, &rdone));
  job.m.run();
  ASSERT_TRUE(sdone);
  ASSERT_TRUE(rdone);
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(st.len, len);
  std::vector<std::byte> got(len);
  job.proc(1).read_bytes(rbuf, got);
  EXPECT_EQ(got, data);
  EXPECT_EQ(job.m.first_panic(), "");
}

// ----------------------------------------------------- threshold cutoff ----

TEST(MpiRndvThreshold, BoundarySelectsProtocolGet) {
  Job job(2, flavor_for(Flavor::RndvProto::kGet, 4096));
  run_transfer(job, 4096);  // at the threshold: still eager
  EXPECT_EQ(job.comm(0).counters().eager_sent, 1u);
  EXPECT_EQ(job.comm(0).counters().rndv_sent, 0u);
  run_transfer(job, 4097);  // one past: rendezvous
  EXPECT_EQ(job.comm(0).counters().eager_sent, 1u);
  EXPECT_EQ(job.comm(0).counters().rndv_sent, 1u);
}

TEST(MpiRndvThreshold, BoundarySelectsProtocolPush) {
  Job job(2, flavor_for(Flavor::RndvProto::kPush, 4096));
  run_transfer(job, 4096);
  EXPECT_EQ(job.comm(0).counters().eager_sent, 1u);
  EXPECT_EQ(job.comm(0).counters().rndv_sent, 0u);
  run_transfer(job, 4097);
  EXPECT_EQ(job.comm(0).counters().rndv_sent, 1u);
}

TEST(MpiRndvThreshold, ClampedToEagerMax) {
  Flavor f = Flavor::mpich1();
  f.rndv_threshold = f.eager_max * 2;  // slabs can't grow: clamps down
  EXPECT_EQ(f.eager_cutoff(), f.eager_max);
  f.rndv_threshold = 0;
  EXPECT_EQ(f.eager_cutoff(), f.eager_max);
  f.rndv_threshold = 1024;
  EXPECT_EQ(f.eager_cutoff(), 1024u);
}

// ------------------------------------------------------- push rendezvous ----

TEST(MpiRndvPush, DeliversExpected) {
  Job job(2, flavor_for(Flavor::RndvProto::kPush));
  run_transfer(job, 512 * 1024);
  EXPECT_EQ(job.comm(0).counters().rndv_sent, 1u);
  EXPECT_EQ(job.comm(1).counters().expected_recvs +
                job.comm(1).counters().unexpected_recvs,
            1u);
}

TEST(MpiRndvPush, DeliversWhenSenderRunsAhead) {
  // The receiver matches 200us late: the RTS sits in the unexpected queue
  // and the whole CTS/put/ack chain starts from consume_ux.
  Job job(2, flavor_for(Flavor::RndvProto::kPush));
  run_transfer(job, 512 * 1024, Time::us(200));
  EXPECT_EQ(job.comm(1).counters().unexpected_recvs, 1u);
}

TEST(MpiRndvGet, DeliversWhenSenderRunsAhead) {
  Job job(2, flavor_for(Flavor::RndvProto::kGet));
  run_transfer(job, 512 * 1024, Time::us(200));
  EXPECT_EQ(job.comm(1).counters().unexpected_recvs, 1u);
}

// ------------------------------------------------- protocol leg counting ----

TEST(MpiRndvLegs, GetUsesTwoPushUsesThree) {
  // One rendezvous transfer per protocol; legs are counted at whichever
  // rank emits them, so the job-wide total is the per-transfer leg count.
  Job get_job(2, flavor_for(Flavor::RndvProto::kGet));
  run_transfer(get_job, 256 * 1024);
  const std::uint64_t get_legs = get_job.comm(0).counters().rndv_ctrl_msgs +
                                 get_job.comm(1).counters().rndv_ctrl_msgs;
  EXPECT_EQ(get_legs, 2u);  // RTS + get request; payload rides the reply

  Job push_job(2, flavor_for(Flavor::RndvProto::kPush));
  run_transfer(push_job, 256 * 1024);
  const std::uint64_t push_legs =
      push_job.comm(0).counters().rndv_ctrl_msgs +
      push_job.comm(1).counters().rndv_ctrl_msgs;
  EXPECT_EQ(push_legs, 3u);  // RTS + CTS + end-to-end ack

  // The registry mirrors must agree with the library's own books.
  auto& gm = get_job.m.engine().metrics();
  EXPECT_EQ(gm.counter("mpi.n0.rndv_ctrl_msgs").value +
                gm.counter("mpi.n1.rndv_ctrl_msgs").value,
            get_legs);
  auto& pm = push_job.m.engine().metrics();
  EXPECT_EQ(pm.counter("mpi.n0.rndv_ctrl_msgs").value +
                pm.counter("mpi.n1.rndv_ctrl_msgs").value,
            push_legs);
}

// ------------------------------------------------- drops with go-back-n ----

void run_dropped_transfer(Flavor::RndvProto proto) {
  // Deterministic targeted loss: the RTS itself, an early payload-bearing
  // message, and the receiver's first control leg (get request or CTS).
  // Go-back-n must retransmit all three, so the transfer stays lossless.
  fault::FaultPlan plan;
  plan.scripted_drops = {{0, 1, 0}, {0, 1, 1}, {1, 0, 0}};
  harness::Scenario sc = harness::Scenario::pair(host::ProcMode::kUser, kPid);
  sc.config.gobackn = true;  // recovery protocol on: losses must be healed
  sc.with_faults(plan);
  auto inst = sc.build();

  const std::vector<ptl::ProcessId> ids = {inst->proc(0).id(),
                                           inst->proc(1).id()};
  Comm c0(inst->proc(0), ids, 0, flavor_for(proto));
  Comm c1(inst->proc(1), ids, 1, flavor_for(proto));
  for (Comm* c : {&c0, &c1}) {
    sim::spawn([](Comm& comm) -> CoTask<void> {
      EXPECT_EQ(co_await comm.init(), PTL_OK);
    }(*c));
  }
  inst->run();

  const std::uint32_t len = 512 * 1024;
  const auto data = pattern(len, 3);
  const std::uint64_t sbuf = inst->proc(0).alloc(len);
  const std::uint64_t rbuf = inst->proc(1).alloc(len);
  inst->proc(0).write_bytes(sbuf, data);
  bool sdone = false, rdone = false;
  sim::spawn([](Comm& c, std::uint64_t b, std::uint32_t n,
                bool* d) -> CoTask<void> {
    EXPECT_EQ(co_await c.send(b, n, 1, 3), PTL_OK);
    *d = true;
  }(c0, sbuf, len, &sdone));
  sim::spawn([](Comm& c, std::uint64_t b, std::uint32_t n,
                bool* d) -> CoTask<void> {
    EXPECT_EQ(co_await c.recv(b, n, 0, 3, nullptr), PTL_OK);
    *d = true;
  }(c1, rbuf, len, &rdone));
  inst->run();

  ASSERT_TRUE(sdone);
  ASSERT_TRUE(rdone);
  std::vector<std::byte> got(len);
  inst->proc(1).read_bytes(rbuf, got);
  EXPECT_EQ(got, data);
  // The plan must actually have bitten for the test to mean anything.
  EXPECT_GE(inst->injector()->totals().scripted_drops, 3u);
  EXPECT_EQ(c0.counters().rndv_sent, 1u);
}

TEST(MpiRndvFaults, GetRecoversInjectedDrops) {
  run_dropped_transfer(Flavor::RndvProto::kGet);
}

TEST(MpiRndvFaults, PushRecoversInjectedDrops) {
  run_dropped_transfer(Flavor::RndvProto::kPush);
}

// ------------------------------------------------ unexpected-queue bound ----

TEST(MpiUnexpectedBound, FloodIsBoundedAndSlabsRepost) {
  Flavor f = Flavor::mpich1();
  f.eager_max = 512;
  f.ux_slab_bytes = 2048;
  f.n_ux_slabs = 2;
  f.max_unexpected = 4;
  Job job(2, f);

  constexpr int kFlood = 40;
  constexpr std::uint32_t kLen = 256;
  const auto final_data = pattern(kLen, 77);
  const std::uint64_t sbuf = job.proc(0).alloc(kLen);
  const std::uint64_t go = job.proc(1).alloc(4);
  const std::uint64_t gor = job.proc(0).alloc(4);
  const std::uint64_t fbuf = job.proc(1).alloc(kLen);
  bool flood_done = false;
  int received = 0;
  bool sdone = false, rdone = false;

  sim::spawn([](Comm& c, std::uint64_t sb, std::uint64_t gb,
                const std::vector<std::byte>& fd, bool* fdone,
                bool* d) -> CoTask<void> {
    // Eager sends complete at kSendEnd whether or not a slab accepted
    // them, so the flood runs ahead of any receive.
    for (int i = 0; i < kFlood; ++i) {
      EXPECT_EQ(co_await c.send(sb, kLen, 1, 7), PTL_OK);
    }
    *fdone = true;
    EXPECT_EQ(co_await c.recv(gb, 4, 1, 9, nullptr), PTL_OK);
    c.process().write_bytes(sb, fd);
    EXPECT_EQ(co_await c.send(sb, kLen, 1, 11), PTL_OK);
    *d = true;
  }(job.comm(0), sbuf, gor, final_data, &flood_done, &sdone));

  sim::spawn([](Comm& c, std::uint64_t gb, std::uint64_t fb,
                const std::vector<std::byte>& fd, const bool* fdone,
                int* got_n, bool* d) -> CoTask<void> {
    // Pump (iprobe progresses the EQ without consuming) but post no
    // receive, so the unexpected queue absorbs the whole flood.
    while (!*fdone) {
      bool flag = false;
      EXPECT_EQ(co_await c.iprobe(0, 7, &flag, nullptr), PTL_OK);
      co_await c.process().node().cpu().run(Time::us(2));
    }
    // Drain whatever the bound let in.
    std::uint64_t buf = c.process().alloc(kLen);
    for (;;) {
      bool flag = false;
      EXPECT_EQ(co_await c.iprobe(0, 7, &flag, nullptr), PTL_OK);
      if (!flag) break;
      EXPECT_EQ(co_await c.recv(buf, kLen, 0, 7, nullptr), PTL_OK);
      ++*got_n;
    }
    // Draining reposted the retired slabs: a fresh unexpected eager
    // message must land intact.
    EXPECT_EQ(co_await c.send(gb, 4, 0, 9), PTL_OK);
    EXPECT_EQ(co_await c.recv(fb, kLen, 0, 11, nullptr), PTL_OK);
    std::vector<std::byte> got(kLen);
    c.process().read_bytes(fb, got);
    EXPECT_EQ(got, fd);
    *d = true;
  }(job.comm(1), go, fbuf, final_data, &flood_done, &received, &rdone));

  job.m.run();
  ASSERT_TRUE(sdone);
  ASSERT_TRUE(rdone);
  EXPECT_EQ(job.m.first_panic(), "");

  // Two 2 KB slabs can land at most 16 x 256 B messages before both
  // retire; with the queue over its bound of 4 they are not reposted, so
  // the rest of the flood is dropped (honest NI backpressure).
  EXPECT_GE(received, 4);
  EXPECT_LE(received, 16);
  EXPECT_LT(received, kFlood);
  const auto& gauge =
      job.m.engine().metrics().gauge("mpi.n1.unexpected_depth");
  EXPECT_GE(gauge.high_water, 4);
  EXPECT_LE(gauge.high_water, 16);
}

}  // namespace
}  // namespace xt::mpi
