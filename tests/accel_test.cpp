// Tests for accelerated mode (src/host/accel): user-space library,
// firmware-offloaded matching, no traps or interrupts on the data path.

#include <gtest/gtest.h>

#include <vector>

#include "host/node.hpp"
#include "portals/api.hpp"

namespace xt {
namespace {

using host::Machine;
using host::Process;
using ptl::AckReq;
using ptl::Event;
using ptl::EventType;
using ptl::InsPos;
using ptl::MdDesc;
using ptl::ProcessId;
using ptl::PTL_OK;
using ptl::Unlink;
using sim::CoTask;
using sim::Time;

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 3) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 59 + seed) & 0xFF);
  }
  return v;
}

CoTask<void> accel_receiver(Process& p, std::uint64_t buf, std::uint32_t len,
                            int n_msgs, bool* done,
                            std::vector<Event>* events) {
  auto& api = p.api();
  auto eq = co_await api.PtlEQAlloc(64);
  EXPECT_EQ(eq.rc, PTL_OK);
  auto me = co_await api.PtlMEAttach(0, ProcessId{ptl::kNidAny, ptl::kPidAny},
                                     7, 0, Unlink::kRetain, InsPos::kAfter);
  MdDesc d;
  d.start = buf;
  d.length = len;
  d.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_OP_GET;
  d.eq = eq.value;
  (void)co_await api.PtlMDAttach(me.value, d, Unlink::kRetain);
  int ends = 0;
  while (ends < n_msgs) {
    auto ev = co_await api.PtlEQWait(eq.value);
    EXPECT_EQ(ev.rc, PTL_OK);
    events->push_back(ev.value);
    if (ev.value.type == EventType::kPutEnd ||
        ev.value.type == EventType::kGetEnd) {
      ++ends;
    }
  }
  *done = true;
}

CoTask<void> accel_sender(Process& p, std::uint64_t buf, std::uint32_t len,
                          ProcessId target, AckReq ack, bool* done) {
  auto& api = p.api();
  auto eq = co_await api.PtlEQAlloc(64);
  MdDesc d;
  d.start = buf;
  d.length = len;
  d.eq = eq.value;
  auto md = co_await api.PtlMDBind(d, Unlink::kRetain);
  EXPECT_EQ(co_await api.PtlPut(md.value, ack, target, 0, 0, 7, 0, 0),
            PTL_OK);
  bool sent = false, acked = ack != AckReq::kAck;
  while (!sent || !acked) {
    auto ev = co_await api.PtlEQWait(eq.value);
    EXPECT_EQ(ev.rc, PTL_OK);
    if (ev.value.type == EventType::kSendEnd) sent = true;
    if (ev.value.type == EventType::kAck) acked = true;
  }
  *done = true;
}

struct AccelPair {
  Machine m{net::Shape::xt3(2, 1, 1)};
  Process& src;
  Process& dst;
  AccelPair()
      : src(m.node(0).spawn_accel_process(4)),
        dst(m.node(1).spawn_accel_process(4)) {}
};

TEST(Accel, PutDeliversWithZeroInterrupts) {
  AccelPair p;
  const auto data = pattern(4096);
  const std::uint64_t sbuf = p.src.alloc(4096);
  const std::uint64_t rbuf = p.dst.alloc(4096);
  p.src.write_bytes(sbuf, data);
  bool sdone = false, rdone = false;
  std::vector<Event> rev;
  sim::spawn(accel_receiver(p.dst, rbuf, 4096, 1, &rdone, &rev));
  sim::spawn(accel_sender(p.src, sbuf, 4096, p.dst.id(), AckReq::kNone,
                          &sdone));
  p.m.run();
  ASSERT_TRUE(sdone && rdone);
  std::vector<std::byte> got(4096);
  p.dst.read_bytes(rbuf, got);
  EXPECT_EQ(got, data);
  // The whole point of accelerated mode: no interrupts anywhere.
  EXPECT_EQ(p.m.node(0).firmware().counters().interrupts, 0u);
  EXPECT_EQ(p.m.node(1).firmware().counters().interrupts, 0u);
  EXPECT_GT(p.m.node(1).firmware().counters().accel_matches, 0u);
}

TEST(Accel, InlinePutDelivers) {
  AccelPair p;
  const auto data = pattern(8);
  const std::uint64_t sbuf = p.src.alloc(8);
  const std::uint64_t rbuf = p.dst.alloc(8);
  p.src.write_bytes(sbuf, data);
  bool sdone = false, rdone = false;
  std::vector<Event> rev;
  sim::spawn(accel_receiver(p.dst, rbuf, 8, 1, &rdone, &rev));
  sim::spawn(accel_sender(p.src, sbuf, 8, p.dst.id(), AckReq::kNone,
                          &sdone));
  p.m.run();
  ASSERT_TRUE(sdone && rdone);
  std::vector<std::byte> got(8);
  p.dst.read_bytes(rbuf, got);
  EXPECT_EQ(got, data);
}

TEST(Accel, AckRoundTrip) {
  AccelPair p;
  const std::uint64_t sbuf = p.src.alloc(256);
  const std::uint64_t rbuf = p.dst.alloc(256);
  bool sdone = false, rdone = false;
  std::vector<Event> rev;
  sim::spawn(accel_receiver(p.dst, rbuf, 256, 1, &rdone, &rev));
  sim::spawn(accel_sender(p.src, sbuf, 256, p.dst.id(), AckReq::kAck,
                          &sdone));
  p.m.run();
  EXPECT_TRUE(sdone && rdone);
}

TEST(Accel, GetFetchesData) {
  AccelPair p;
  const auto data = pattern(10000, 9);
  const std::uint64_t tbuf = p.dst.alloc(10000);
  p.dst.write_bytes(tbuf, data);
  const std::uint64_t ibuf = p.src.alloc(10000);
  bool tdone = false, idone = false;
  std::vector<Event> tev;
  sim::spawn(accel_receiver(p.dst, tbuf, 10000, 1, &tdone, &tev));
  sim::spawn([](Process& pr, std::uint64_t buf, ProcessId tgt,
                bool* done) -> CoTask<void> {
    auto& api = pr.api();
    auto eq = co_await api.PtlEQAlloc(64);
    MdDesc d;
    d.start = buf;
    d.length = 10000;
    d.options = ptl::PTL_MD_OP_GET;
    d.eq = eq.value;
    auto md = co_await api.PtlMDBind(d, Unlink::kRetain);
    EXPECT_EQ(co_await api.PtlGet(md.value, tgt, 0, 0, 7, 0), PTL_OK);
    for (;;) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kReplyEnd) break;
    }
    *done = true;
  }(p.src, ibuf, p.dst.id(), &idone));
  p.m.run();
  ASSERT_TRUE(tdone && idone);
  std::vector<std::byte> got(10000);
  p.src.read_bytes(ibuf, got);
  EXPECT_EQ(got, data);
  EXPECT_EQ(p.m.node(0).firmware().counters().interrupts, 0u);
  EXPECT_EQ(p.m.node(1).firmware().counters().interrupts, 0u);
}

TEST(Accel, LowerLatencyThanGenericMode) {
  // One-way 1-byte latency, accelerated vs generic, same machine model.
  auto one_way = [](bool accel) {
    Machine m(net::Shape::xt3(2, 1, 1));
    Process& a = accel ? m.node(0).spawn_accel_process(4)
                       : m.node(0).spawn_process(4);
    Process& b = accel ? m.node(1).spawn_accel_process(4)
                       : m.node(1).spawn_process(4);
    const std::uint64_t sbuf = a.alloc(8);
    const std::uint64_t rbuf = b.alloc(8);
    constexpr int kIters = 10;
    bool done = false;
    Time elapsed{};
    // Simple ping-pong at Portals level.
    sim::spawn([](Process& p, std::uint64_t sb, int it) -> CoTask<void> {
      auto& api = p.api();
      auto eq = co_await api.PtlEQAlloc(256);
      auto me = co_await api.PtlMEAttach(
          0, ProcessId{ptl::kNidAny, ptl::kPidAny}, 7, 0, Unlink::kRetain,
          InsPos::kAfter);
      MdDesc rd;
      rd.start = sb;
      rd.length = 1;
      rd.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE;
      rd.eq = eq.value;
      (void)co_await api.PtlMDAttach(me.value, rd, Unlink::kRetain);
      MdDesc ld;
      ld.start = sb;
      ld.length = 1;
      ld.eq = eq.value;
      auto md = co_await api.PtlMDBind(ld, Unlink::kRetain);
      for (int i = 0; i < it; ++i) {
        (void)co_await api.PtlPut(md.value, AckReq::kNone, ProcessId{1, 4},
                                  0, 0, 7, 0, 0);
        int put_end = 0;
        while (put_end == 0) {
          auto ev = co_await api.PtlEQWait(eq.value);
          if (ev.value.type == EventType::kPutEnd) ++put_end;
        }
      }
    }(a, sbuf, kIters));
    sim::spawn([](Process& p, std::uint64_t rb, int it, bool* d,
                  Time* out, sim::Engine* eng) -> CoTask<void> {
      auto& api = p.api();
      auto eq = co_await api.PtlEQAlloc(256);
      auto me = co_await api.PtlMEAttach(
          0, ProcessId{ptl::kNidAny, ptl::kPidAny}, 7, 0, Unlink::kRetain,
          InsPos::kAfter);
      MdDesc rd;
      rd.start = rb;
      rd.length = 1;
      rd.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE;
      rd.eq = eq.value;
      (void)co_await api.PtlMDAttach(me.value, rd, Unlink::kRetain);
      MdDesc ld;
      ld.start = rb;
      ld.length = 1;
      ld.eq = eq.value;
      auto md = co_await api.PtlMDBind(ld, Unlink::kRetain);
      const Time start = eng->now();
      for (int i = 0; i < it; ++i) {
        int put_end = 0;
        while (put_end == 0) {
          auto ev = co_await api.PtlEQWait(eq.value);
          if (ev.value.type == EventType::kPutEnd) ++put_end;
        }
        (void)co_await api.PtlPut(md.value, AckReq::kNone, ProcessId{0, 4},
                                  0, 0, 7, 0, 0);
      }
      *out = eng->now() - start;
      *d = true;
    }(b, rbuf, kIters, &done, &elapsed, &m.engine()));
    m.run();
    EXPECT_TRUE(done);
    return elapsed.to_us() / (2.0 * kIters);
  };
  const double generic_us = one_way(false);
  const double accel_us = one_way(true);
  // Offload removes both interrupts and all traps from the path (§3.3).
  EXPECT_LT(accel_us, generic_us - 1.5);
  EXPECT_GT(accel_us, 1.0);
}

TEST(Accel, CoexistsWithGenericProcessOnOneNode) {
  Machine m(net::Shape::xt3(2, 1, 1));
  Process& accel = m.node(1).spawn_accel_process(4);
  Process& generic = m.node(1).spawn_process(5);
  Process& src = m.node(0).spawn_process(4);
  const std::uint64_t sbuf = src.alloc(128);
  const std::uint64_t abuf = accel.alloc(128);
  const std::uint64_t gbuf = generic.alloc(128);
  src.write_bytes(sbuf, pattern(128, 1));

  bool a_done = false, g_done = false, s_done = false;
  std::vector<Event> aev, gev;
  sim::spawn(accel_receiver(accel, abuf, 128, 1, &a_done, &aev));
  sim::spawn(accel_receiver(generic, gbuf, 128, 1, &g_done, &gev));
  sim::spawn([](Process& p, std::uint64_t b, bool* d) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(64);
    MdDesc desc;
    desc.start = b;
    desc.length = 128;
    desc.eq = eq.value;
    auto md = co_await api.PtlMDBind(desc, Unlink::kRetain);
    // One message to the accelerated pid, one to the generic pid.
    EXPECT_EQ(co_await api.PtlPut(md.value, AckReq::kNone, ProcessId{1, 4},
                                  0, 0, 7, 0, 0),
              PTL_OK);
    EXPECT_EQ(co_await api.PtlPut(md.value, AckReq::kNone, ProcessId{1, 5},
                                  0, 0, 7, 0, 0),
              PTL_OK);
    int sends = 0;
    while (sends < 2) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type == EventType::kSendEnd) ++sends;
    }
    *d = true;
  }(src, sbuf, &s_done));
  m.run();
  EXPECT_TRUE(a_done);
  EXPECT_TRUE(g_done);
  EXPECT_TRUE(s_done);
  std::vector<std::byte> got(128);
  accel.read_bytes(abuf, got);
  EXPECT_EQ(got, pattern(128, 1));
  generic.read_bytes(gbuf, got);
  EXPECT_EQ(got, pattern(128, 1));
}

}  // namespace
}  // namespace xt
