// Tests for the harness layer: Scenario construction, SweepRunner ordering
// and determinism, and the re-entrancy guarantee the parallel evaluation
// suite rests on — any number of Machines in one process, interleaved on
// one thread or spread across several, produce identical results.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/netpipe_bench.hpp"
#include "harness/options.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"

namespace xt {
namespace {

using sim::CoTask;

// ------------------------------------------------------------ Scenario ----

TEST(Scenario, PairBuildsTwoNeighborProcesses) {
  auto inst = harness::Scenario::pair().build();
  ASSERT_EQ(inst->proc_count(), 2u);
  EXPECT_EQ(inst->proc(0).node().id(), 0);
  EXPECT_EQ(inst->proc(1).node().id(), 1);
  EXPECT_EQ(inst->proc(0).mode(), host::ProcMode::kUser);
}

TEST(Scenario, BuilderAppliesConfigOsAndMode) {
  ss::Config cfg;
  cfg.inline_payload_max = 7;
  auto inst = harness::Scenario::pair(host::ProcMode::kUser)
                  .with_config(cfg)
                  .with_os(host::OsType::kLinux)
                  .with_seed(42)
                  .build();
  EXPECT_EQ(inst->proc(0).mode(), host::ProcMode::kUser);
  EXPECT_EQ(inst->machine().node(0).os(), host::OsType::kLinux);
  // Accelerated mode asserts Catamount (physically contiguous memory,
  // §3.3), so request it on the default OS.
  auto accel = harness::Scenario::pair(host::ProcMode::kAccel).build();
  EXPECT_EQ(accel->proc(0).mode(), host::ProcMode::kAccel);
  EXPECT_EQ(accel->machine().node(0).os(), host::OsType::kCatamount);
}

TEST(Scenario, IncastSpansAllNodes) {
  auto inst = harness::Scenario::incast(4).build();
  ASSERT_EQ(inst->proc_count(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(inst->proc(i).node().id(), static_cast<net::NodeId>(i));
  }
}

// --------------------------------------------------------- SweepRunner ----

TEST(SweepRunner, ResultsComeBackInInputOrder) {
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 32; ++i) {
    tasks.push_back([i] {
      // Stagger the work so completion order differs from input order.
      volatile int spin = (31 - i) * 1000;
      while (spin > 0) spin = spin - 1;
      return i;
    });
  }
  const auto out = harness::SweepRunner(4).run(std::move(tasks));
  ASSERT_EQ(out.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(SweepRunner, SerialAndParallelAgree) {
  auto make_tasks = [] {
    std::vector<std::function<std::uint64_t()>> tasks;
    for (std::uint64_t i = 0; i < 8; ++i) {
      tasks.push_back([i] {
        sim::Engine eng;
        std::uint64_t acc = 0;
        for (std::uint64_t k = 0; k < 50; ++k) {
          eng.schedule_at(sim::Time::ns(static_cast<std::int64_t>((i + 1) * k)),
                          [&acc, k] { acc += k; });
        }
        eng.run();
        return acc * eng.executed() +
               static_cast<std::uint64_t>(eng.now().to_ps());
      });
    }
    return tasks;
  };
  const auto serial = harness::SweepRunner(1).run(make_tasks());
  const auto parallel = harness::SweepRunner(4).run(make_tasks());
  EXPECT_EQ(serial, parallel);
}

TEST(SweepRunner, PropagatesTaskException) {
  std::vector<std::function<int()>> tasks;
  tasks.push_back([] { return 1; });
  tasks.push_back([]() -> int { throw std::runtime_error("boom"); });
  tasks.push_back([] { return 3; });
  EXPECT_THROW(harness::SweepRunner(2).run(std::move(tasks)),
               std::runtime_error);
}

TEST(SweepRunner, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(harness::default_jobs(), 1);
  EXPECT_GE(harness::SweepRunner(0).jobs(), 1);
}

// ----------------------------------------------------------- re-entrancy ----

struct Rig {
  std::unique_ptr<harness::Instance> inst;
  std::unique_ptr<np::Module> mod;
};

Rig make_rig() {
  Rig r;
  r.inst = harness::Scenario::pair().build();
  r.mod = np::make_portals_module(r.inst->proc(0), r.inst->proc(1),
                                  /*use_get=*/false);
  sim::spawn([](np::Module& m) -> CoTask<void> {
    co_await m.setup(4096);
    co_await m.pingpong(64, 4);
  }(*r.mod));
  return r;
}

TEST(Reentrancy, InterleavedSteppingMatchesStraightRun) {
  // Reference: one machine run straight to quiescence.
  Rig ref = make_rig();
  ref.inst->run();

  // Two identical machines stepped alternately on ONE thread: neither may
  // perturb the other.
  Rig a = make_rig();
  Rig b = make_rig();
  bool more = true;
  while (more) {
    more = false;
    if (a.inst->engine().step()) more = true;
    if (b.inst->engine().step()) more = true;
  }
  EXPECT_EQ(a.inst->engine().now(), ref.inst->engine().now());
  EXPECT_EQ(b.inst->engine().now(), ref.inst->engine().now());
  EXPECT_EQ(a.inst->engine().executed(), ref.inst->engine().executed());
  EXPECT_EQ(b.inst->engine().executed(), ref.inst->engine().executed());
}

TEST(Reentrancy, TwoThreadsMatchStraightRun) {
  Rig ref = make_rig();
  ref.inst->run();

  // The same two machines, each run to quiescence on its own thread.
  Rig a = make_rig();
  Rig b = make_rig();
  std::thread ta([&] { a.inst->run(); });
  std::thread tb([&] { b.inst->run(); });
  ta.join();
  tb.join();
  EXPECT_EQ(a.inst->engine().now(), ref.inst->engine().now());
  EXPECT_EQ(b.inst->engine().now(), ref.inst->engine().now());
  EXPECT_EQ(a.inst->engine().executed(), ref.inst->engine().executed());
  EXPECT_EQ(b.inst->engine().executed(), ref.inst->engine().executed());
}

TEST(Reentrancy, MeasureIsJobCountInvariant) {
  // The actual determinism guarantee the benches advertise: the measured
  // samples are byte-identical whether the series run serially or fanned
  // out across workers.
  np::Options o;
  o.max_bytes = 256;
  o.base_iters = 4;
  o.min_iters = 2;
  o.perturbation = 0;
  const std::vector<np::Transport> ts = {np::Transport::kPut,
                                         np::Transport::kGet};
  const auto serial = harness::measure_series(ts, np::Pattern::kPingPong, o,
                                              {}, /*jobs=*/1);
  const auto parallel = harness::measure_series(ts, np::Pattern::kPingPong, o,
                                                {}, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t s = 0; s < serial.size(); ++s) {
    ASSERT_EQ(serial[s].samples.size(), parallel[s].samples.size());
    for (std::size_t i = 0; i < serial[s].samples.size(); ++i) {
      EXPECT_EQ(serial[s].samples[i].bytes, parallel[s].samples[i].bytes);
      EXPECT_EQ(serial[s].samples[i].usec_per_transfer,
                parallel[s].samples[i].usec_per_transfer);
      EXPECT_EQ(serial[s].samples[i].mbytes_per_sec,
                parallel[s].samples[i].mbytes_per_sec);
    }
  }
}

// ------------------------------------------------------------- options ----

TEST(BenchOptions, ParsesAllFlags) {
  const char* argv[] = {"bench",  "--max",  "4096", "--quick", "--jobs",
                        "3",      "--json", "/tmp/out.json",   "--seed",
                        "99"};
  const auto o = harness::BenchOptions::parse(
      static_cast<int>(std::size(argv)), const_cast<char**>(argv), 1 << 20);
  EXPECT_EQ(o.np.max_bytes, 4096u);
  EXPECT_TRUE(o.quick);
  EXPECT_EQ(o.jobs, 3);
  EXPECT_EQ(o.json_path, "/tmp/out.json");
  EXPECT_EQ(o.seed, 99u);
}

TEST(BenchOptions, DefaultsApply) {
  const char* argv[] = {"bench"};
  const auto o = harness::BenchOptions::parse(1, const_cast<char**>(argv),
                                              2048);
  EXPECT_EQ(o.np.max_bytes, 2048u);
  EXPECT_FALSE(o.quick);
  EXPECT_EQ(o.jobs, 0);
  EXPECT_TRUE(o.json_path.empty());
  EXPECT_EQ(o.seed, 1u);
}

}  // namespace
}  // namespace xt
