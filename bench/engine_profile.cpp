// Simulator self-profile: host-side dispatch throughput by category.
//
// Unlike every fig*/abl* bench, this one measures the simulator ITSELF:
// how many events per HOST second the engine dispatches, and which layer
// of the simulated stack the host time goes to (telemetry::Profiler).  It
// replays a fixed set of load_sweep --smoke-class scenarios serially with
// the profiler attached and prints the per-category breakdown.
//
//   --json FILE   write the machine-readable profile (BENCH_engine.json,
//                 committed at the repo root as the regression anchor)
//   --check FILE  re-measure and compare against a committed baseline:
//                 exit 1 when aggregate events/sec regressed more than
//                 kMaxRegression; event-count drift (a simulation-behavior
//                 change, not a perf change) is reported but only fails
//                 the run when --check-strict is also given.
//
// Event *counts* are deterministic; events/sec and wall columns are host
// time and only comparable between profiled runs on similar hardware
// (the 25% tolerance absorbs runner-to-runner noise).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/options.hpp"
#include "sim/strf.hpp"
#include "telemetry/profiler.hpp"
#include "workload/load_runner.hpp"

namespace {

using namespace xt;

/// Largest tolerated events/sec drop vs the committed baseline.
constexpr double kMaxRegression = 0.25;

struct Scn {
  const char* name;
  workload::PatternKind pattern;
  host::ProcMode mode;
};

struct ScnResult {
  std::string name;
  telemetry::Profiler profile;
};

/// Reads a whole file; empty string on failure.
std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string s;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) s.append(buf, n);
  std::fclose(f);
  return s;
}

/// First number following `"key": ` in a JSON text; 0.0 when absent.
/// (Keys are emitted in sorted order, so the top-level "events_per_sec"
/// precedes every per-scenario one.)
double json_number(const std::string& text, const char* key) {
  const std::string needle = std::string("\"") + key + "\": ";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return 0.0;
  return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the flags BenchOptions does not know before delegating.
  std::string check_path;
  bool check_strict = false;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    } else if (std::strncmp(argv[i], "--check=", 8) == 0) {
      check_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--check-strict") == 0) {
      check_strict = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  const harness::BenchOptions o = harness::BenchOptions::parse(
      static_cast<int>(rest.size()), rest.data());
  if (o.transport != "sim") {
    std::fprintf(stderr, "engine_profile runs on the sim transport only\n");
    return 2;
  }

  // load_sweep --smoke-class points: 8 ranks, 2 KB, open loop at a rate
  // near the generic stack's knee, both proc modes.  Serial on purpose —
  // events/sec is a host measurement and sweep threads would contend.
  const int ranks = 8;
  const int msgs = o.quick ? 40 : 120;
  const double offered = 4e5;
  const std::vector<Scn> scns = {
      {"uniform/generic", workload::PatternKind::kUniform,
       host::ProcMode::kUser},
      {"incast/generic", workload::PatternKind::kIncast,
       host::ProcMode::kUser},
      {"rpc/generic", workload::PatternKind::kRpc, host::ProcMode::kUser},
      {"uniform/accel", workload::PatternKind::kUniform,
       host::ProcMode::kAccel},
      {"halo3d/accel", workload::PatternKind::kHalo3d,
       host::ProcMode::kAccel},
  };

  std::printf("=== Engine self-profile: dispatches per host second "
              "(%d ranks, %d msgs/sender, serial) ===\n\n",
              ranks, msgs);
  std::printf("   %-18s %12s %10s %14s\n", "scenario", "events", "wall ms",
              "events/s");

  telemetry::Profiler total;
  std::vector<ScnResult> results;
  bool all_ok = true;
  for (std::size_t i = 0; i < scns.size(); ++i) {
    workload::WorkloadSpec ws;
    ws.pattern = scns[i].pattern;
    ws.ranks = ranks;
    ws.bytes = 2048;
    ws.msgs_per_sender = msgs;
    ws.loop = workload::Loop::kOpen;
    ws.offered_msgs_per_sec = offered;
    ws.seed = o.seed;
    if (ws.pattern == workload::PatternKind::kRpc) {
      ws.rpc_clients = ranks / 2;
    }
    harness::Scenario::TelemetrySpec tel;
    tel.profile = true;
    workload::PointTelemetry pt;
    const workload::WorkloadResult r = workload::run_load_point(
        ws, scns[i].mode, ss::Config{}, o.seed + i, tel, &pt);
    all_ok = all_ok && r.failure.empty();
    std::printf("   %-18s %12llu %10.2f %14.0f%s\n", scns[i].name,
                static_cast<unsigned long long>(pt.profile.total_events()),
                static_cast<double>(pt.profile.total_wall_ns()) * 1e-6,
                pt.profile.events_per_sec(),
                r.failure.empty() ? "" : "   [failed]");
    results.push_back({scns[i].name, pt.profile});
    total.merge(pt.profile);
  }
  std::printf("\n");
  std::fputs(total.report().c_str(), stdout);

  std::string scn_json;
  for (const ScnResult& s : results) {
    if (!scn_json.empty()) scn_json += ",\n";
    scn_json += sim::strf(
        "    {\"events\": %llu, \"events_per_sec\": %.0f, \"name\": \"%s\"}",
        static_cast<unsigned long long>(s.profile.total_events()),
        s.profile.events_per_sec(), s.name.c_str());
  }
  const std::string json = sim::strf(
      "{\n  \"bench\": \"engine_profile\",\n"
      "  \"events_per_sec\": %.0f,\n  \"git\": \"%s\",\n"
      "  \"msgs\": %d,\n  \"profile\": %s,\n  \"quick\": %s,\n"
      "  \"ranks\": %d,\n  \"scenarios\": [\n%s\n  ],\n"
      "  \"seed\": %llu,\n  \"total_events\": %llu\n}\n",
      total.events_per_sec(), harness::git_describe(), msgs,
      total.to_json().c_str(), o.quick ? "true" : "false", ranks,
      scn_json.c_str(), static_cast<unsigned long long>(o.seed),
      static_cast<unsigned long long>(total.total_events()));
  if (!o.json_path.empty() && !harness::write_text_file(o.json_path, json)) {
    return 1;
  }

  if (!check_path.empty()) {
    const std::string base = slurp(check_path);
    if (base.empty()) {
      std::fprintf(stderr, "cannot read baseline '%s'\n", check_path.c_str());
      return 2;
    }
    const double base_rate = json_number(base, "events_per_sec");
    const double base_events = json_number(base, "total_events");
    const double cur_rate = total.events_per_sec();
    const double cur_events = static_cast<double>(total.total_events());
    std::printf("\n-- check vs %s\n", check_path.c_str());
    std::printf("   events/s: baseline %.0f, current %.0f (%+.1f%%)\n",
                base_rate, cur_rate,
                base_rate > 0.0 ? (cur_rate - base_rate) / base_rate * 100.0
                                : 0.0);
    if (base_events != cur_events) {
      std::printf("   NOTE: total_events changed (%.0f -> %.0f) — the "
                  "simulation itself changed; refresh the baseline with "
                  "--json\n",
                  base_events, cur_events);
      if (check_strict) return 1;
    }
    if (base_rate > 0.0 && cur_rate < (1.0 - kMaxRegression) * base_rate) {
      std::printf("   FAIL: events/sec regressed more than %.0f%%\n",
                  kMaxRegression * 100.0);
      return 1;
    }
    std::printf("   ok (tolerance %.0f%%)\n", kMaxRegression * 100.0);
  }
  return all_ok ? 0 : 1;
}
