// Multi-tenant interference and tail-latency SLOs on the shared torus.
//
// Space-sharing the machine between jobs leaves the *wires* shared: a
// scattered neighbor's traffic rides the same links and moves your tail.
// This bench quantifies that three ways, all through cluster::run_cluster
// (one engine per point, FIFO scheduler, per-job match-bit namespaces):
//
//   1. Isolated baselines — each latency-class pattern alone on the
//      machine; its p50 / p99 / p999 define the job class's SLO reference.
//   2. Interference matrix — each latency-class victim co-scheduled with
//      each pattern run as a bandwidth hog (wide, saturating, big
//      messages); the cell is the victim's p99 slowdown over its isolated
//      baseline, averaged over hog traffic seeds.  The asymmetry is
//      deliberate: a light job's tail is moved by a heavy neighbor, not
//      by another light job (two sub-saturation jobs leave every shared
//      link ~idle and the matrix reads 1.00x — measured, not assumed).
//   3. SLO-violation curves — Poisson job traces at increasing arrival
//      rates; a placed job violates its SLO when its p99 exceeds
//      kSloMult x its pattern's isolated p99.  Plotted against *achieved*
//      machine utilization, this is the classic tail-vs-utilization knee.
//
// A routing section re-runs a canonical contended pairing (rpc victim
// against a uniform hog) under adaptive (congestion-aware minimal)
// routing and under 2-VC service-class arbitration, against the
// dimension-order default — the two mechanisms the paper's fixed
// table-based routers deliberately trade away for in-order delivery
// (EXPERIMENTS.md records the measured p99 gap).
//
// All output (stdout and --json) is byte-identical for any --jobs value.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "cluster/scheduler.hpp"
#include "harness/options.hpp"
#include "harness/sweep.hpp"
#include "sim/strf.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace_export.hpp"
#include "workload/pattern.hpp"

namespace {

using namespace xt;

double us(std::uint64_t ps) { return static_cast<double>(ps) * 1e-6; }

/// p99 of a job's latency samples; the SLO metric everywhere below.
std::uint64_t job_p99(const cluster::JobResult& j) {
  return j.work.percentile_ps(99);
}

struct MixEntry {
  workload::PatternKind pattern;
  int ranks;
  bool hog = false;  ///< runs in bandwidth-hog config, not latency config
};

/// Parses --jobs-spec ("incast:8,rpc:8,uniform:16:hog"); empty on error.
std::vector<MixEntry> parse_jobs_spec(const std::string& spec) {
  std::vector<MixEntry> mix;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string item = spec.substr(pos, comma - pos);
    bool hog = false;
    if (item.size() > 4 && item.compare(item.size() - 4, 4, ":hog") == 0) {
      hog = true;
      item.resize(item.size() - 4);
    }
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) return {};
    const auto pk = workload::pattern_from_name(item.substr(0, colon));
    const int ranks = std::atoi(item.c_str() + colon + 1);
    if (!pk || ranks <= 0) return {};
    mix.push_back({*pk, ranks, hog});
    pos = comma + 1;
  }
  return mix;
}

workload::WorkloadSpec make_work(const MixEntry& m, std::uint32_t bytes,
                                 int msgs, double load, std::uint64_t seed) {
  workload::WorkloadSpec ws;
  ws.pattern = m.pattern;
  ws.ranks = m.ranks;
  ws.bytes = bytes;
  ws.msgs_per_sender = msgs;
  ws.loop = workload::Loop::kOpen;
  ws.offered_msgs_per_sec = load;
  ws.seed = seed;
  if (m.pattern == workload::PatternKind::kRpc) {
    ws.rpc_clients = m.ranks / 2;
  }
  return ws;
}

struct BenchParams {
  int nodes = 64;
  // Latency-class (victim / trace) jobs: small messages at a rate that
  // leaves their own links and NICs lightly loaded, so the tail is
  // network-sensitive rather than self-inflicted.
  int msgs = 60;
  std::uint32_t bytes = 2048;
  double load = 1e5;  ///< offered msgs/s per latency-class job
  // Bandwidth-hog (aggressor) jobs: wide, big messages, offered load far
  // past per-NIC injection capacity, so every link on every hog path runs
  // saturated for the whole victim window.
  int hog_ranks = 32;
  int hog_msgs = 200;
  std::uint32_t hog_bytes = 65536;
  double hog_load = 2e6;
  int reps = 2;  ///< hog traffic seeds averaged per matrix cell
  /// Random is the *contended* default: stride-scattered placement on a
  /// power-of-two torus drops each job into its own X-plane, which
  /// dimension-order routing never routes across — jobs then share no
  /// links at all (the matrix reads 1.00x everywhere).  A random draw
  /// mixes X coordinates, so victim and aggressor actually meet on wires.
  cluster::Placement placement = cluster::Placement::kRandom;
  net::Routing routing = net::Routing::kDimOrder;
  int vcs = 1;
  std::uint64_t seed = 1;
  bool profile = false;  ///< self-profile every cluster engine
};

cluster::ClusterSpec make_cluster(const BenchParams& bp,
                                  std::vector<cluster::JobSpec> jobs) {
  cluster::ClusterSpec cs;
  cs.nodes = bp.nodes;
  cs.jobs = std::move(jobs);
  cs.routing = bp.routing;
  cs.vcs = bp.vcs;
  cs.seed = bp.seed;
  cs.profile = bp.profile;
  return cs;
}

/// A mix entry in its native config: latency-class unless marked hog.
cluster::JobSpec make_job(int id, sim::Time arrival, const MixEntry& m,
                          const BenchParams& bp, std::uint64_t work_seed) {
  cluster::JobSpec job;
  job.id = id;
  job.arrival = arrival;
  job.work = m.hog ? make_work(m, bp.hog_bytes, bp.hog_msgs, bp.hog_load,
                               work_seed)
                   : make_work(m, bp.bytes, bp.msgs, bp.load, work_seed);
  job.placement = bp.placement;
  return job;
}

/// The same pattern re-cast as a bandwidth hog (aggressor config).
cluster::JobSpec make_hog(int id, workload::PatternKind pk,
                          const BenchParams& bp, std::uint64_t work_seed) {
  const MixEntry hog{pk, bp.hog_ranks, true};
  cluster::JobSpec job;
  job.id = id;
  job.arrival = sim::Time{};
  job.work =
      make_work(hog, bp.hog_bytes, bp.hog_msgs, bp.hog_load, work_seed);
  job.placement = bp.placement;
  return job;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::BenchOptions o = harness::BenchOptions::parse(argc, argv);
  if (o.transport != "sim") {
    std::fprintf(stderr, "interference runs on the sim transport only\n");
    return 2;
  }

  BenchParams bp;
  bp.seed = o.seed;
  bp.profile = o.profile;
  if (o.smoke || o.quick) {
    bp.nodes = 16;
    bp.msgs = 20;
    bp.hog_ranks = 8;
    bp.hog_msgs = 50;
    bp.reps = 1;
  }
  if (!o.placement.empty()) {
    const auto p = cluster::placement_from_name(o.placement);
    if (!p) {
      std::fprintf(stderr, "unknown placement '%s'\n", o.placement.c_str());
      return 2;
    }
    bp.placement = *p;
  }
  if (!o.routing.empty()) {
    const auto r = net::routing_from_name(o.routing);
    if (!r) {
      std::fprintf(stderr, "unknown routing '%s'\n", o.routing.c_str());
      return 2;
    }
    bp.routing = *r;
  }
  if (o.vcs > 0) bp.vcs = o.vcs;
  if (o.offered_load > 0.0) bp.load = o.offered_load;

  std::vector<MixEntry> mix;
  if (!o.jobs_spec.empty()) {
    mix = parse_jobs_spec(o.jobs_spec);
    if (mix.empty()) {
      std::fprintf(stderr, "bad --jobs-spec '%s'\n", o.jobs_spec.c_str());
      return 2;
    }
  } else {
    const int r = o.ranks > 0 ? o.ranks : (o.smoke || o.quick ? 4 : 16);
    mix = {{workload::PatternKind::kIncast, r},
           {workload::PatternKind::kHalo3d, r},
           {workload::PatternKind::kRpc, r},
           {workload::PatternKind::kUniform, bp.hog_ranks, true}};
  }
  const std::size_t m = mix.size();

  std::printf("=== Interference: multi-tenant tails on a shared torus "
              "(%d+ nodes, %s placement, %s routing, %d vc) ===\n\n",
              bp.nodes, cluster::placement_name(bp.placement),
              net::routing_name(bp.routing), bp.vcs);

  // ---- 1. isolated baselines -------------------------------------------
  std::vector<std::function<cluster::ClusterResult()>> base_tasks;
  for (std::size_t i = 0; i < m; ++i) {
    BenchParams p = bp;
    p.seed = o.seed + i;
    const cluster::ClusterSpec cs = make_cluster(
        p, {make_job(0, sim::Time{}, mix[i], p, o.seed + 100 + i)});
    base_tasks.push_back([cs] { return cluster::run_cluster(cs); });
  }
  const std::vector<cluster::ClusterResult> base =
      harness::SweepRunner(o.jobs).run(std::move(base_tasks));

  std::printf("-- isolated baselines (per-job SLO reference)\n");
  std::printf("   %-12s %6s %5s %10s %10s %10s %10s\n", "pattern", "ranks",
              "class", "p50 us", "p99 us", "p999 us", "complete");
  std::vector<std::uint64_t> base_p99(m, 0);
  std::string base_json;
  bool all_ok = true;
  for (std::size_t i = 0; i < m; ++i) {
    const cluster::JobResult& j = base[i].jobs[0];
    base_p99[i] = job_p99(j);
    all_ok = all_ok && j.placed && j.work.complete;
    std::printf("   %-12s %6d %5s %10.3f %10.3f %10.3f %10s\n",
                workload::pattern_name(mix[i].pattern), mix[i].ranks,
                mix[i].hog ? "hog" : "lat",
                us(j.work.percentile_ps(50)), us(base_p99[i]),
                us(j.work.percentile_tenths_ps(999)),
                j.work.complete ? "yes" : "NO");
    if (!base_json.empty()) base_json += ",\n";
    base_json += sim::strf(
        "    {\"complete\": %s, \"failure\": \"%s\", \"hog\": %s, "
        "\"p50_us\": %.3f, \"p999_us\": %.3f, \"p99_us\": %.3f, "
        "\"pattern\": \"%s\", \"ranks\": %d}",
        j.work.complete ? "true" : "false", j.work.failure.c_str(),
        mix[i].hog ? "true" : "false", us(j.work.percentile_ps(50)),
        us(j.work.percentile_tenths_ps(999)), us(base_p99[i]),
        workload::pattern_name(mix[i].pattern), mix[i].ranks);
  }
  std::printf("\n");

  // ---- 2. interference matrix ------------------------------------------
  // Victim (light, baseline work seed and cluster stream — identical
  // placement and traffic as its isolated run) co-scheduled with each
  // pattern as a bandwidth hog; each cell averages `reps` hog traffic
  // seeds because one random draw can place the hog's hot paths entirely
  // off the victim's links.
  const int reps = bp.reps;
  // Rows: the latency-class entries (a hog's own tail is not an SLO).
  std::vector<std::size_t> victims;
  for (std::size_t i = 0; i < m; ++i) {
    if (!mix[i].hog) victims.push_back(i);
  }
  if (victims.empty()) {
    for (std::size_t i = 0; i < m; ++i) victims.push_back(i);
  }
  const std::size_t nv = victims.size();
  std::vector<std::function<cluster::ClusterResult()>> pair_tasks;
  for (std::size_t vi = 0; vi < nv; ++vi) {
    const std::size_t v = victims[vi];
    for (std::size_t a = 0; a < m; ++a) {
      for (int r = 0; r < reps; ++r) {
        BenchParams p = bp;
        p.seed = o.seed + v;  // victim cluster stream matches its baseline
        const cluster::ClusterSpec cs = make_cluster(
            p, {make_job(0, sim::Time{}, mix[v], p, o.seed + 100 + v),
                make_hog(1, mix[a].pattern, p,
                         o.seed + 300 + a + 97 * static_cast<unsigned>(r))});
        pair_tasks.push_back([cs] { return cluster::run_cluster(cs); });
      }
    }
  }
  const std::vector<cluster::ClusterResult> pairs =
      harness::SweepRunner(o.jobs).run(std::move(pair_tasks));

  std::printf("-- interference matrix: victim p99 slowdown vs isolated "
              "(victim rows; columns = pattern as %d-rank %u KiB hog; "
              "mean of %d hog seeds)\n",
              bp.hog_ranks, bp.hog_bytes / 1024, reps);
  std::printf("   %-12s", "");
  for (std::size_t a = 0; a < m; ++a) {
    std::printf(" %10s", workload::pattern_name(mix[a].pattern));
  }
  std::printf("\n");
  std::string matrix_json;
  for (std::size_t vi = 0; vi < nv; ++vi) {
    const std::size_t v = victims[vi];
    std::printf("   %-12s", workload::pattern_name(mix[v].pattern));
    for (std::size_t a = 0; a < m; ++a) {
      double slow_sum = 0.0, p99_sum = 0.0;
      bool cell_ok = true;
      for (int r = 0; r < reps; ++r) {
        const cluster::ClusterResult& cr =
            pairs[(vi * m + a) * static_cast<std::size_t>(reps) +
                  static_cast<std::size_t>(r)];
        const cluster::JobResult& victim = cr.jobs[0];
        slow_sum += base_p99[v] > 0
                        ? static_cast<double>(job_p99(victim)) /
                              static_cast<double>(base_p99[v])
                        : 0.0;
        p99_sum += us(job_p99(victim));
        cell_ok = cell_ok && victim.placed && victim.work.complete &&
                  cr.jobs[1].placed && cr.jobs[1].work.complete;
      }
      all_ok = all_ok && cell_ok;
      const double slow = slow_sum / reps;
      std::printf(" %9.2fx", slow);
      if (!matrix_json.empty()) matrix_json += ",\n";
      matrix_json += sim::strf(
          "    {\"complete\": %s, \"hog\": \"%s\", "
          "\"slowdown_p99\": %.3f, \"victim\": \"%s\", "
          "\"victim_p99_us\": %.3f}",
          cell_ok ? "true" : "false",
          workload::pattern_name(mix[a].pattern), slow,
          workload::pattern_name(mix[v].pattern), p99_sum / reps);
    }
    std::printf("\n");
  }
  std::printf("\n");

  // ---- 3. routing / arbitration under the most contended pair ----------
  // Canonical pairing independent of --jobs-spec: an rpc victim (request/
  // reply tail, convergence on its servers) against a uniform hog whose
  // saturated paths criss-cross the whole machine.  Re-run under each
  // mechanism with identical placement and traffic streams.
  const MixEntry rvictim{workload::PatternKind::kRpc,
                         o.smoke || o.quick ? 4 : 16};
  struct RoutingCase {
    const char* name;
    net::Routing routing;
    int vcs;
  };
  const std::vector<RoutingCase> rcases = {
      {"dimension", net::Routing::kDimOrder, 1},
      {"adaptive", net::Routing::kAdaptive, 1},
      {"dimension+2vc", net::Routing::kDimOrder, 2},
  };
  std::vector<std::function<cluster::ClusterResult()>> rtasks;
  for (const RoutingCase& rc : rcases) {
    BenchParams p = bp;
    p.routing = rc.routing;
    p.vcs = rc.vcs;
    p.seed = o.seed;
    const cluster::ClusterSpec cs = make_cluster(
        p, {make_job(0, sim::Time{}, rvictim, p, o.seed + 100),
            make_hog(1, workload::PatternKind::kUniform, p, o.seed + 300)});
    rtasks.push_back([cs] { return cluster::run_cluster(cs); });
  }
  const std::vector<cluster::ClusterResult> routed =
      harness::SweepRunner(o.jobs).run(std::move(rtasks));

  std::printf("-- routing under contention: rpc:%d victim + uniform:%d "
              "hog, %s\n",
              rvictim.ranks, bp.hog_ranks,
              cluster::placement_name(bp.placement));
  std::printf("   %-14s %12s %12s %13s\n", "mechanism", "victim p99",
              "aggr p99", "deflections");
  std::string routing_json;
  for (std::size_t i = 0; i < rcases.size(); ++i) {
    const cluster::ClusterResult& cr = routed[i];
    all_ok = all_ok && cr.jobs[0].work.complete && cr.jobs[1].work.complete;
    std::printf("   %-14s %9.3f us %9.3f us %13llu\n", rcases[i].name,
                us(job_p99(cr.jobs[0])), us(job_p99(cr.jobs[1])),
                static_cast<unsigned long long>(cr.adaptive_deflections));
    if (!routing_json.empty()) routing_json += ",\n";
    routing_json += sim::strf(
        "    {\"aggressor_p99_us\": %.3f, \"complete\": %s, "
        "\"deflections\": %llu, \"mechanism\": \"%s\", "
        "\"victim_p99_us\": %.3f}",
        us(job_p99(cr.jobs[1])),
        cr.jobs[0].work.complete && cr.jobs[1].work.complete ? "true"
                                                             : "false",
        static_cast<unsigned long long>(cr.adaptive_deflections),
        rcases[i].name, us(job_p99(cr.jobs[0])));
  }
  std::printf("\n");

  // ---- 4. SLO violations vs utilization --------------------------------
  // Poisson traces over the mix at increasing arrival rates; a placed job
  // violates when its p99 exceeds kSloMult x its entry's isolated p99.
  // Two SLOs per job, because the two ways a multi-tenant machine hurts
  // you are different in kind:
  //   * tail SLO — p99 > kSloMult x the entry's isolated p99.  Wire
  //     interference: a latency job co-resident with a hog lands
  //     ~1.1-1.2x, so 1.15x is past seed noise (<=1.06x measured) but
  //     within one hog neighbour's reach.
  //   * wait SLO — queue wait > kWaitSloUs.  Scheduling delay: under
  //     FIFO space-sharing, high arrival rates back jobs up behind wide
  //     hogs long before the wires melt — this column is the knee.
  constexpr double kSloMult = 1.15;
  constexpr double kWaitSloUs = 1000.0;
  std::vector<double> rates;
  if (o.smoke || o.quick) {
    rates = {200.0, 800.0};
  } else {
    rates = {100.0, 250.0, 500.0, 1000.0, 2000.0};
  }
  const int trace_jobs = o.smoke || o.quick ? 6 : 12;

  std::vector<std::function<cluster::ClusterResult()>> slo_tasks;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    cluster::TraceSpec ts;
    ts.jobs = trace_jobs;
    ts.arrival_rate_per_sec = rates[i];
    for (const MixEntry& me : mix) {
      cluster::JobTemplate tpl;
      tpl.work = me.hog ? make_work(me, bp.hog_bytes, bp.hog_msgs,
                                    bp.hog_load, 0 /* per-job fork */)
                        : make_work(me, bp.bytes, bp.msgs, bp.load,
                                    0 /* per-job fork */);
      tpl.placement = bp.placement;
      ts.mix.push_back(tpl);
    }
    ts.seed = o.seed + 50 + i;
    BenchParams p = bp;
    p.seed = o.seed + 70 + i;
    const cluster::ClusterSpec cs =
        make_cluster(p, cluster::poisson_trace(ts));
    slo_tasks.push_back([cs] { return cluster::run_cluster(cs); });
  }
  const std::vector<cluster::ClusterResult> slo =
      harness::SweepRunner(o.jobs).run(std::move(slo_tasks));

  std::printf("-- SLO violations vs utilization (%d-job Poisson traces; "
              "tail: p99 > %.2fx isolated, wait: queue > %.0f us)\n",
              trace_jobs, kSloMult, kWaitSloUs);
  std::printf("   %12s %12s %9s %10s %10s %12s\n", "arrivals/s",
              "utilization", "placed", "tail viol", "wait viol",
              "mean wait us");
  std::string slo_json;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const cluster::ClusterResult& cr = slo[i];
    int placed = 0, tail_viol = 0, wait_viol = 0;
    double wait_ps = 0.0;
    for (const cluster::JobResult& j : cr.jobs) {
      if (!j.placed) continue;
      ++placed;
      all_ok = all_ok && j.work.complete;
      const double wus =
          static_cast<double>(j.queue_wait().to_ps()) * 1e-6;
      wait_ps += static_cast<double>(j.queue_wait().to_ps());
      if (wus > kWaitSloUs) ++wait_viol;
      // Which mix entry produced this job: traces cycle the mix in job
      // order (job.id % mix.size()).
      const std::uint64_t ref =
          base_p99[static_cast<std::size_t>(j.id) % m];
      if (ref > 0 &&
          static_cast<double>(job_p99(j)) > kSloMult *
              static_cast<double>(ref)) {
        ++tail_viol;
      }
    }
    const double mean_wait_us =
        placed > 0 ? wait_ps / placed * 1e-6 : 0.0;
    std::printf("   %12.0f %12.3f %9d %10d %10d %12.3f\n", rates[i],
                cr.utilization, placed, tail_viol, wait_viol, mean_wait_us);
    if (!slo_json.empty()) slo_json += ",\n";
    slo_json += sim::strf(
        "    {\"arrivals_per_sec\": %.1f, \"mean_wait_us\": %.3f, "
        "\"placed\": %d, \"utilization\": %.4f, "
        "\"violations_tail\": %d, \"violations_wait\": %d}",
        rates[i], mean_wait_us, placed, cr.utilization, tail_viol,
        wait_viol);
  }
  std::printf("\n");
  std::printf("-- every job placed and complete: %s\n",
              all_ok ? "yes" : "NO");

  if (o.profile) {
    telemetry::Profiler prof;
    for (const cluster::ClusterResult& cr : base) prof.merge(cr.profile);
    for (const cluster::ClusterResult& cr : pairs) prof.merge(cr.profile);
    for (const cluster::ClusterResult& cr : routed) prof.merge(cr.profile);
    for (const cluster::ClusterResult& cr : slo) prof.merge(cr.profile);
    std::printf("\n");
    std::fputs(prof.report().c_str(), stdout);
  }

  // One canonical traced run for --trace-json: the contended routing pair
  // under the default mechanism, run serially here so the timeline is
  // identical for any --jobs value.
  if (!o.trace_json_path.empty()) {
    BenchParams p = bp;
    p.routing = net::Routing::kDimOrder;
    p.vcs = 1;
    p.seed = o.seed;
    cluster::ClusterSpec cs = make_cluster(
        p, {make_job(0, sim::Time{}, rvictim, p, o.seed + 100),
            make_hog(1, workload::PatternKind::kUniform, p, o.seed + 300)});
    cs.trace = true;
    const cluster::ClusterResult tr = cluster::run_cluster(cs);
    const std::vector<telemetry::TraceSeries> series = {
        {"rpc+uniform-hog/dimension", &tr.trace_records, &tr.provenance}};
    if (!harness::write_text_file(o.trace_json_path,
                                  telemetry::export_chrome_trace(series))) {
      return 1;
    }
  }

  std::string mix_json;
  for (const MixEntry& me : mix) {
    if (!mix_json.empty()) mix_json += ", ";
    mix_json += sim::strf("\"%s:%d%s\"", workload::pattern_name(me.pattern),
                          me.ranks, me.hog ? ":hog" : "");
  }
  const std::string json = sim::strf(
      "{\n  \"baselines\": [\n%s\n  ],\n  \"bench\": \"interference\",\n"
      "  \"git\": \"%s\",\n  \"hog_bytes\": %u,\n  \"hog_load\": %.0f,\n"
      "  \"hog_ranks\": %d,\n  \"matrix\": [\n%s\n  ],\n"
      "  \"mix\": [%s],\n  \"nodes\": %d,\n  \"ok\": %s,\n"
      "  \"placement\": \"%s\",\n  \"quick\": %s,\n  \"reps\": %d,\n"
      "  \"routing\": [\n%s\n  ],\n  \"seed\": %llu,\n"
      "  \"slo\": [\n%s\n  ],\n  \"slo_mult\": %.2f,\n"
      "  \"transport\": \"sim\",\n  \"vcs\": %d,\n"
      "  \"wait_slo_us\": %.0f\n}\n",
      base_json.c_str(), harness::git_describe(), bp.hog_bytes, bp.hog_load,
      bp.hog_ranks, matrix_json.c_str(), mix_json.c_str(), bp.nodes,
      all_ok ? "true" : "false", cluster::placement_name(bp.placement),
      o.quick ? "true" : "false", bp.reps, routing_json.c_str(),
      static_cast<unsigned long long>(o.seed), slo_json.c_str(), kSloMult,
      bp.vcs, kWaitSloUs);
  if (!o.json_path.empty() && !harness::write_text_file(o.json_path, json)) {
    return 1;
  }
  return all_ok ? 0 : 1;
}
