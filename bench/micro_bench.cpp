// google-benchmark micro-benchmarks of the simulator's own hot paths.
//
// These measure HOST performance of the simulation infrastructure (events
// per second, matching throughput, CRC speed) — useful when scaling runs
// up to many nodes — as opposed to the fig*/abl* binaries, which measure
// SIMULATED time.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "host/node.hpp"
#include "net/crc.hpp"
#include "net/routing.hpp"
#include "portals/library.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "telemetry/profiler.hpp"

// ------------------------------------------- allocation accounting ----
// Replaceable global new/delete that count heap allocations, so hot-path
// benchmarks can report allocs/op and hard-assert that the segment-list
// path stays allocation-free (the IoVecList small-vector contract).  Must
// live at global scope with external linkage to actually replace.

static std::atomic<std::uint64_t> g_heap_allocs{0};

// Opaque to the optimizer: stops -Wmismatched-new-delete from pairing the
// malloc in the replaced new with frees it inlines elsewhere.
[[gnu::noinline]] static void* counted_malloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
[[gnu::noinline]] static void counted_free(void* p) { std::free(p); }

void* operator new(std::size_t size) {
  if (void* p = counted_malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }

namespace {

using namespace xt;

// ------------------------------------------------------------ engine ----

/// The pre-slab scheduler, kept verbatim as the measurement baseline: a
/// heap of (time, seq, id) plus an id->callback hash map, with cancelled
/// ids collected in a hash set.  Every BM_Engine* benchmark below runs
/// against both this and sim::Engine so the slab rewrite's win stays
/// measured, not remembered.
class BaselineEngine {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  sim::Time now() const { return now_; }

  EventId schedule_at(sim::Time t, Callback cb) {
    const EventId id = next_id_++;
    heap_.push(Ent{t, id});
    cbs_.emplace(id, std::move(cb));
    return id;
  }
  EventId schedule_after(sim::Time d, Callback cb) {
    return schedule_at(now_ + d, std::move(cb));
  }
  void cancel(EventId id) {
    auto it = cbs_.find(id);
    if (it == cbs_.end()) return;
    cbs_.erase(it);
    cancelled_.insert(id);
  }

  std::uint64_t run() {
    std::uint64_t executed = 0;
    while (!heap_.empty()) {
      const Ent e = heap_.top();
      heap_.pop();
      if (auto c = cancelled_.find(e.id); c != cancelled_.end()) {
        cancelled_.erase(c);
        continue;
      }
      auto it = cbs_.find(e.id);
      Callback cb = std::move(it->second);
      cbs_.erase(it);
      now_ = e.t;
      ++executed;
      cb();
    }
    return executed;
  }

 private:
  struct Ent {
    sim::Time t;
    EventId id;
  };
  struct Later {
    bool operator()(const Ent& a, const Ent& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;
    }
  };
  sim::Time now_{};
  EventId next_id_ = 1;
  std::priority_queue<Ent, std::vector<Ent>, Later> heap_;
  std::unordered_map<EventId, Callback> cbs_;
  std::unordered_set<EventId> cancelled_;
};

template <typename E>
void schedule_run(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    E eng;
    for (int i = 0; i < n; ++i) {
      eng.schedule_at(sim::Time::ns(i), [] {});
    }
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_EngineScheduleRun(benchmark::State& state) {
  schedule_run<sim::Engine>(state);
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(100000);

void BM_BaselineEngineScheduleRun(benchmark::State& state) {
  schedule_run<BaselineEngine>(state);
}
BENCHMARK(BM_BaselineEngineScheduleRun)->Arg(1000)->Arg(100000);

/// The same workload with the self-profiler attached: the delta against
/// BM_EngineScheduleRun is the profiling tax (two monotonic clock reads
/// plus one table update per dispatch) — the number the profiler.hpp cost
/// contract quotes.
void BM_EngineScheduleRunProfiled(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  telemetry::Profiler prof;
  for (auto _ : state) {
    sim::Engine eng;
    eng.set_profiler(&prof);
    for (int i = 0; i < n; ++i) {
      eng.schedule_at(sim::Time::ns(i), [] {});
    }
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["profiled_events"] =
      static_cast<double>(prof.total_events());
}
BENCHMARK(BM_EngineScheduleRunProfiled)->Arg(1000)->Arg(100000);

/// Schedule/cancel churn: the pattern of protocol timeouts — almost every
/// timer is cancelled before it fires (acks arrive first).  This is where
/// hash-map erase vs O(1) generation-checked disarm diverges hardest.
template <typename E>
void churn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    E eng;
    std::vector<typename E::EventId> ids;
    ids.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      ids.push_back(
          eng.schedule_at(sim::Time::us(1000 + i), [] {}));  // "timeout"
      eng.schedule_at(sim::Time::ns(i), [] {});              // "ack"
    }
    for (const auto id : ids) eng.cancel(id);  // acks beat the timeouts
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}

void BM_EngineScheduleCancelChurn(benchmark::State& state) {
  churn<sim::Engine>(state);
}
BENCHMARK(BM_EngineScheduleCancelChurn)->Arg(1000)->Arg(100000);

void BM_BaselineEngineScheduleCancelChurn(benchmark::State& state) {
  churn<BaselineEngine>(state);
}
BENCHMARK(BM_BaselineEngineScheduleCancelChurn)->Arg(1000)->Arg(100000);

/// Timer-wheel workload: a rolling window of outstanding timers where each
/// expiry schedules its successor — the steady state of a long simulation
/// (slab occupancy stays flat, slots recycle continuously).
template <typename E>
void timer_wheel(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));
  constexpr int kTicks = 10000;
  for (auto _ : state) {
    E eng;
    int fired = 0;
    std::function<void()> arm = [&] {
      if (++fired < kTicks) eng.schedule_after(sim::Time::ns(window), arm);
    };
    for (int i = 0; i < window; ++i) {
      eng.schedule_at(sim::Time::ns(i), arm);
    }
    benchmark::DoNotOptimize(eng.run());
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * kTicks);
}

void BM_EngineTimerWheel(benchmark::State& state) {
  timer_wheel<sim::Engine>(state);
}
BENCHMARK(BM_EngineTimerWheel)->Arg(16)->Arg(256);

void BM_BaselineEngineTimerWheel(benchmark::State& state) {
  timer_wheel<BaselineEngine>(state);
}
BENCHMARK(BM_BaselineEngineTimerWheel)->Arg(16)->Arg(256);

void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    sim::WaitQueue wq(eng);
    int count = 0;
    sim::spawn([](sim::Engine& e, sim::WaitQueue& q,
                  int& c) -> sim::CoTask<void> {
      for (int i = 0; i < 1000; ++i) {
        co_await sim::delay(e, sim::Time::ns(1));
        q.notify_all();
        ++c;
      }
    }(eng, wq, count));
    eng.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutinePingPong);

// --------------------------------------------------------------- CRC ----

void BM_Crc32(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Crc16(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::crc16(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc16)->Arg(64)->Arg(4096);

// ------------------------------------------------------------ routing ----

void BM_RoutePath(benchmark::State& state) {
  const net::Shape s = net::Shape::red_storm(27, 16, 24);
  sim::Rng rng(1);
  const auto count = static_cast<std::uint64_t>(s.count());
  for (auto _ : state) {
    const auto a = static_cast<net::NodeId>(rng.below(count));
    const auto b = static_cast<net::NodeId>(rng.below(count));
    benchmark::DoNotOptimize(net::hop_count(s, a, b));
  }
}
BENCHMARK(BM_RoutePath);

// ----------------------------------------------------------- matching ----

/// Match-list walk cost as a function of list length (the host_match_per_me
/// constant in the timing model reflects this real walk).
void BM_MatchWalk(benchmark::State& state) {
  const auto n_entries = static_cast<std::uint32_t>(state.range(0));
  sim::Engine eng;
  class NullNal final : public ptl::Nal {
    int send(TxKind, std::uint32_t, const ptl::WireHeader&,
             ptl::IoVecList, std::uint64_t) override {
      return ptl::PTL_OK;
    }
    std::uint32_t nid() const override { return 0; }
    int distance(std::uint32_t) const override { return 1; }
  } nal;
  class NullMem final : public ptl::Memory {
    bool valid(std::uint64_t, std::size_t) const override { return true; }
    void read(std::uint64_t, std::span<std::byte>) const override {}
    void write(std::uint64_t, std::span<const std::byte>) override {}
  } mem;
  ptl::Library::Config cfg;
  cfg.id = ptl::ProcessId{0, 1};
  cfg.limits.max_mes = 70000;
  cfg.limits.max_me_list = 70000;
  cfg.limits.max_mds = 70000;
  ptl::Library lib(eng, cfg, nal, mem);
  // n_entries non-matching MEs followed by one that matches.
  for (std::uint32_t i = 0; i < n_entries; ++i) {
    ptl::MeHandle me;
    lib.me_attach(0, ptl::ProcessId{ptl::kNidAny, ptl::kPidAny}, 1000 + i, 0,
                  ptl::Unlink::kRetain, ptl::InsPos::kAfter, &me);
    ptl::MdDesc d;
    d.length = 64;
    d.options = ptl::PTL_MD_OP_PUT;
    ptl::MdHandle md;
    lib.md_attach(me, d, ptl::Unlink::kRetain, &md);
  }
  ptl::MeHandle me;
  lib.me_attach(0, ptl::ProcessId{ptl::kNidAny, ptl::kPidAny}, 7, 0,
                ptl::Unlink::kRetain, ptl::InsPos::kAfter, &me);
  ptl::MdDesc d;
  d.length = 64;
  d.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE |
              ptl::PTL_MD_TRUNCATE;
  ptl::MdHandle md;
  lib.md_attach(me, d, ptl::Unlink::kRetain, &md);

  ptl::WireHeader h;
  h.op = ptl::WireOp::kPut;
  h.match_bits = 7;
  h.length = 8;
  for (auto _ : state) {
    auto dec = lib.on_put_header(h);
    benchmark::DoNotOptimize(dec);
    (void)lib.deposited(dec.token);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatchWalk)->Arg(1)->Arg(64)->Arg(4096);

/// Linear vs. indexed match-list search, head-to-head on the shapes that
/// separate them.  Args: {list length, scenario, mode}.
///   scenario 0 = hit-first (target ME at the head — linear's best case)
///   scenario 1 = hit-last  (target at the tail behind N-1 decoys —
///                           linear's worst case, the index's headline win)
///   scenario 2 = wildcard  (ignore-bits target at the tail: the index
///                           must merge the wildcard chain, its hard case)
///   scenario 3 = miss      (no entry matches — the unexpected-message
///                           storm case; the index answers without
///                           walking, linear walks the whole list)
///   mode 0 = kLinear, 1 = kIndexed
///
/// On a deep HIT the two converge: the indexed walk still has to report
/// the reference-identical entries_walked (it feeds the simulated match
/// cost), which takes an O(position) prev-pointer chase — cheap hops, but
/// the same order as linear's acceptance tests.  The index's wins are
/// early/keyed hits and, above all, misses.
void BM_MatchListSearch(benchmark::State& state) {
  const auto n_entries = static_cast<std::uint32_t>(state.range(0));
  const auto scenario = static_cast<int>(state.range(1));
  const bool indexed = state.range(2) != 0;
  sim::Engine eng;
  class NullNal final : public ptl::Nal {
    int send(TxKind, std::uint32_t, const ptl::WireHeader&,
             ptl::IoVecList, std::uint64_t) override {
      return ptl::PTL_OK;
    }
    std::uint32_t nid() const override { return 0; }
    int distance(std::uint32_t) const override { return 1; }
  } nal;
  class NullMem final : public ptl::Memory {
    bool valid(std::uint64_t, std::size_t) const override { return true; }
    void read(std::uint64_t, std::span<std::byte>) const override {}
    void write(std::uint64_t, std::span<const std::byte>) override {}
  } mem;
  ptl::Library::Config cfg;
  cfg.id = ptl::ProcessId{0, 1};
  cfg.limits.max_mes = 70000;
  cfg.limits.max_me_list = 70000;
  cfg.limits.max_mds = 70000;
  cfg.match_mode = indexed ? ptl::MatchMode::kIndexed : ptl::MatchMode::kLinear;
  ptl::Library lib(eng, cfg, nal, mem);

  const auto attach = [&lib](ptl::MatchBits mbits, ptl::MatchBits ibits) {
    ptl::MeHandle me;
    lib.me_attach(0, ptl::ProcessId{ptl::kNidAny, ptl::kPidAny}, mbits, ibits,
                  ptl::Unlink::kRetain, ptl::InsPos::kAfter, &me);
    ptl::MdDesc d;
    d.length = 64;
    d.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE |
                ptl::PTL_MD_TRUNCATE;
    ptl::MdHandle md;
    lib.md_attach(me, d, ptl::Unlink::kRetain, &md);
  };
  // n_entries total: the target (or a final decoy for the miss scenario)
  // plus n_entries-1 unique-bits decoys.
  if (scenario == 0) attach(7, 0);
  for (std::uint32_t i = 0; i + 1 < n_entries; ++i) attach(1000 + i, 0);
  if (scenario == 1) attach(7, 0);
  if (scenario == 2) attach(0, ~0ull);
  if (scenario == 3) attach(999, 0);

  ptl::WireHeader h;
  h.op = ptl::WireOp::kPut;
  h.match_bits = scenario == 3 ? 0xDEADBEEFull : 7;
  h.length = 8;
  for (auto _ : state) {
    auto dec = lib.on_put_header(h);
    benchmark::DoNotOptimize(dec);
    if (dec.deliver) (void)lib.deposited(dec.token);
  }
  state.SetItemsProcessed(state.iterations());
  static constexpr const char* kScenario[] = {"hit-first", "hit-last",
                                              "wildcard", "miss"};
  state.SetLabel(std::string(kScenario[scenario]) +
                 (indexed ? "/indexed" : "/linear"));
}
BENCHMARK(BM_MatchListSearch)
    ->ArgsProduct({{1, 16, 256, 4096}, {0, 1, 2, 3}, {0, 1}});

// ------------------------------------------------------ segment lists ----

/// The transmit segment-list builder.  Contiguous MDs and IOVEC MDs of up
/// to IoVecList::kInlineCapacity segments must build entirely inline —
/// the benchmark FAILS if a single heap allocation happens.
void BM_MdSliceSmall(benchmark::State& state) {
  ptl::MdDesc contig;
  contig.start = 4096;
  contig.length = 1u << 20;
  ptl::MdDesc iov;
  iov.options = ptl::PTL_MD_IOVEC;
  iov.iovecs = {{0, 8192}, {16384, 8192}, {32768, 8192}};
  iov.length = 3 * 8192;

  const std::uint64_t before = g_heap_allocs.load();
  for (auto _ : state) {
    auto a = ptl::Library::md_slice(contig, 64, 4096);
    benchmark::DoNotOptimize(a);
    auto b = ptl::Library::md_slice(iov, 100, 20000);
    benchmark::DoNotOptimize(b);
  }
  const std::uint64_t allocs = g_heap_allocs.load() - before;
  state.counters["allocs"] = static_cast<double>(allocs);
  if (allocs != 0) {
    state.SkipWithError("md_slice allocated for a small segment list");
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_MdSliceSmall);

/// Allocations per small put at the library->NAL seam.  The segment list
/// itself must contribute ZERO (verified by delta against an identical put
/// whose only difference is a 6-segment IOVEC source, which costs exactly
/// one spill allocation); the remaining per-op allocations are op-record
/// bookkeeping, not the payload path.
void BM_SmallPutAllocs(benchmark::State& state) {
  sim::Engine eng;
  class TokenNal final : public ptl::Nal {
   public:
    std::uint64_t last_token = 0;

   private:
    int send(TxKind, std::uint32_t, const ptl::WireHeader&,
             ptl::IoVecList payload, std::uint64_t token) override {
      benchmark::DoNotOptimize(payload);
      last_token = token;
      return ptl::PTL_OK;
    }
    std::uint32_t nid() const override { return 0; }
    int distance(std::uint32_t) const override { return 1; }
  } nal;
  class NullMem final : public ptl::Memory {
    bool valid(std::uint64_t, std::size_t) const override { return true; }
    void read(std::uint64_t, std::span<std::byte>) const override {}
    void write(std::uint64_t, std::span<const std::byte>) override {}
  } mem;
  ptl::Library::Config cfg;
  cfg.id = ptl::ProcessId{0, 1};
  ptl::Library lib(eng, cfg, nal, mem);

  const bool spill = state.range(0) != 0;
  ptl::MdDesc d;
  if (spill) {
    d.options = ptl::PTL_MD_IOVEC;
    for (std::uint64_t i = 0; i < 6; ++i) d.iovecs.push_back({i * 4096, 8});
  } else {
    d.start = 0;
    d.length = 8;
  }
  ptl::MdHandle md;
  lib.md_bind(d, ptl::Unlink::kRetain, &md);

  // Warm up container capacity (op maps) so the loop measures steady state.
  lib.put(md, ptl::AckReq::kNone, ptl::ProcessId{1, 1}, 0, 0, 7, 0, 0);
  lib.send_complete(nal.last_token);

  const std::uint64_t before = g_heap_allocs.load();
  for (auto _ : state) {
    lib.put(md, ptl::AckReq::kNone, ptl::ProcessId{1, 1}, 0, 0, 7, 0, 0);
    lib.send_complete(nal.last_token);  // retire the op record
  }
  const std::uint64_t allocs = g_heap_allocs.load() - before;
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SmallPutAllocs)->Arg(0)->Arg(1);

// ---------------------------------------------------------- full stack ----

/// End-to-end simulated puts per host-second: the figure that determines
/// how large an experiment the simulator can carry.
void BM_SimulatedPut(benchmark::State& state) {
  const auto bytes = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    host::Machine m(net::Shape::xt3(2, 1, 1));
    host::Process& a = m.node(0).spawn_process(4, 16u << 20);
    host::Process& b = m.node(1).spawn_process(4, 16u << 20);
    const std::uint64_t sbuf = a.alloc(bytes ? bytes : 1);
    const std::uint64_t rbuf = b.alloc(bytes ? bytes : 1);
    bool done = false;
    state.ResumeTiming();
    sim::spawn([](host::Process& p, std::uint64_t buf,
                  std::uint32_t len) -> sim::CoTask<void> {
      auto& api = p.api();
      auto eq = co_await api.PtlEQAlloc(64);
      auto me = co_await api.PtlMEAttach(
          0, ptl::ProcessId{ptl::kNidAny, ptl::kPidAny}, 1, 0,
          ptl::Unlink::kRetain, ptl::InsPos::kAfter);
      ptl::MdDesc d;
      d.start = buf;
      d.length = len;
      d.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE;
      d.eq = eq.value;
      (void)co_await api.PtlMDAttach(me.value, d, ptl::Unlink::kRetain);
    }(b, rbuf, bytes));
    sim::spawn([](host::Process& p, std::uint64_t buf, std::uint32_t len,
                  bool* d) -> sim::CoTask<void> {
      auto& api = p.api();
      auto eq = co_await api.PtlEQAlloc(64);
      ptl::MdDesc md;
      md.start = buf;
      md.length = len;
      md.eq = eq.value;
      auto h = co_await api.PtlMDBind(md, ptl::Unlink::kRetain);
      (void)co_await api.PtlPut(h.value, ptl::AckReq::kNone,
                                ptl::ProcessId{1, 4}, 0, 0, 1, 0, 0);
      for (;;) {
        auto ev = co_await api.PtlEQWait(eq.value);
        if (ev.value.type == ptl::EventType::kSendEnd) break;
      }
      *d = true;
    }(a, sbuf, bytes, &done));
    m.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedPut)->Arg(8)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
