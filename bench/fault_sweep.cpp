// Delivered-throughput and recovery-latency curves vs. injected fault rate.
//
// For each transport configuration (generic/accel x go-back-n on/off) the
// bench replays the same closed-loop uniform workload under a ladder of
// fault rates (whole-message drops at router egress plus CRC-16-evading
// silent corruption) and prints, per point: delivered fraction, delivered
// throughput, latency percentiles, the p99 inflation over the same
// config's fault-free baseline (the recovery-latency cost of retransmits),
// and the injector's event totals.
//
// Two cross-checks ride along, mirroring the invariants the fuzzer and
// property suite assert:
//   * with go-back-n on, every accepted message is delivered at every
//     tested rate (delivered == sent, run complete) while the no-retry
//     configs degrade — the headline recovery claim;
//   * the fault.* metrics counters account for every event the injector
//     reports (drift fails the bench).
//
// Output (stdout and --json) is byte-identical for any --jobs value.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "harness/options.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "sim/strf.hpp"
#include "telemetry/metrics.hpp"
#include "workload/generator.hpp"

namespace {

using namespace xt;

struct TransportConfig {
  const char* name;
  host::ProcMode mode;
  bool gobackn;
};

struct Point {
  double rate = 0.0;
  workload::WorkloadResult res;
  fault::Injector::Totals tot{};
  std::uint64_t injected = 0;  ///< rate-fault events (drops + corrupts)
  bool counters_ok = true;
};

double us(std::uint64_t ps) { return static_cast<double>(ps) * 1e-6; }

Point run_point(const TransportConfig& tc, double rate,
                workload::WorkloadSpec spec, fault::FaultPlan plan,
                std::uint64_t scenario_seed) {
  spec.count_drops = !tc.gobackn;  // no retry: pace on send-end, count losses
  plan.rate = rate;
  ss::Config cfg;
  cfg.gobackn = tc.gobackn;

  harness::Scenario sc =
      workload::workload_scenario(spec, tc.mode, cfg, scenario_seed);
  sc.with_faults(plan, /*invariants=*/false);  // measuring, not auditing
  auto inst = sc.build();

  Point p;
  p.rate = rate;
  p.res = workload::run_workload(*inst, spec);
  p.tot = inst->injector()->totals();
  p.injected = p.tot.drops + p.tot.scripted_drops + p.tot.silent_corrupts +
               p.tot.reorders + p.tot.corrupt_bursts;

  // Telemetry cross-check: the registry's fault.* counters must agree with
  // the injector's own books, event for event.
  const std::pair<const char*, std::uint64_t> want[] = {
      {"fault.drops", p.tot.drops},
      {"fault.scripted_drops", p.tot.scripted_drops},
      {"fault.reorders", p.tot.reorders},
      {"fault.silent_corrupts", p.tot.silent_corrupts},
      {"fault.corrupt_bursts", p.tot.corrupt_bursts},
      {"fault.sram_denials", p.tot.sram_denials},
      {"fault.irq_dropped", p.tot.irq_dropped},
      {"fault.irq_delayed", p.tot.irq_delayed},
      {"fault.fw_stalls", p.tot.stalls},
      {"fault.node_kills", p.tot.kills},
      {"fault.node_revives", p.tot.revives},
      {"fault.ack_timeouts", p.tot.ack_timeouts}};
  for (const auto& [name, v] : want) {
    if (inst->engine().metrics().counter(name).value != v) {
      p.counters_ok = false;
    }
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::BenchOptions o = harness::BenchOptions::parse(argc, argv);
  if (o.transport != "sim") {
    std::fprintf(stderr,
                 "fault_sweep: --transport udp is not supported — the fault "
                 "injector scripts in-fabric events (router-egress drops, "
                 "CRC-evading corruption) that only exist in the simulated "
                 "SeaStar model; use --transport sim, or udp drop injection "
                 "via the live benches (fig4/fig5/load_sweep --transport "
                 "udp)\n");
    return 2;
  }

  const int ranks = o.ranks > 0 ? o.ranks : 8;
  const int msgs = o.quick ? 30 : 80;

  std::vector<double> rates;
  if (o.faults_set && o.faults.rate > 0.0) {
    rates = {0.0, o.faults.rate};
  } else if (o.quick) {
    rates = {0.0, 0.01, 0.05};
  } else {
    rates = {0.0, 0.005, 0.01, 0.02, 0.05};
  }

  workload::WorkloadSpec spec;
  spec.pattern = workload::PatternKind::kUniform;
  spec.ranks = ranks;
  spec.bytes = 2048;
  spec.msgs_per_sender = msgs;
  spec.loop = workload::Loop::kClosed;
  spec.outstanding = 4;
  spec.seed = o.seed;

  fault::FaultPlan plan;
  plan.kinds = o.faults_set && o.faults.kinds != 0
                   ? o.faults.kinds
                   : (fault::kDrop | fault::kSilentCorrupt);
  plan.seed = o.faults_set ? o.faults.seed : o.seed;
  plan.ack_timeout_ns = 10'000'000;

  const std::vector<TransportConfig> configs = {
      {"generic", host::ProcMode::kUser, false},
      {"generic+gbn", host::ProcMode::kUser, true},
      {"accel", host::ProcMode::kAccel, false},
      {"accel+gbn", host::ProcMode::kAccel, true},
  };

  std::printf("=== Fault sweep: delivery and recovery vs. fault rate "
              "(%d ranks, %d msgs/sender, 2 KB, kinds=%s) ===\n\n",
              ranks, msgs, fault::FaultPlan::kinds_str(plan.kinds).c_str());

  bool accounting_ok = true;
  bool gbn_lossless = true;
  std::string curves_json;
  std::uint64_t seed = o.seed;
  for (const TransportConfig& tc : configs) {
    std::vector<std::function<Point()>> tasks;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      const double rate = rates[i];
      const std::uint64_t sseed = seed + i;
      tasks.push_back([&tc, rate, spec, plan, sseed] {
        return run_point(tc, rate, spec, plan, sseed);
      });
    }
    seed += rates.size();
    const std::vector<Point> points =
        harness::SweepRunner(o.jobs).run(std::move(tasks));

    std::printf("-- %s\n", tc.name);
    std::printf("   %7s %8s %10s %6s %12s %9s %9s %11s %8s %9s\n", "rate",
                "sent", "delivered", "del%", "delivered/s", "p50 us",
                "p99 us", "recov99 us", "faults", "timeouts");
    const std::uint64_t base_p99 = points[0].res.percentile_ps(99);
    std::string pts;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      const workload::WorkloadResult& r = p.res;
      const double del_pct =
          r.sent > 0 ? 100.0 * static_cast<double>(r.delivered) /
                           static_cast<double>(r.sent)
                     : 0.0;
      // Recovery latency: how much the tail stretched relative to this
      // config's own fault-free run — the latency price of retransmits
      // (gbn) or of timeouts surfacing losses (no retry).
      const std::uint64_t p99 = r.percentile_ps(99);
      const double recov_us =
          p99 > base_p99 ? us(p99 - base_p99) : 0.0;
      std::printf("   %7.3f %8llu %10llu %6.1f %12.1f %9.3f %9.3f %11.3f "
                  "%8llu %8llu%s%s\n",
                  p.rate, static_cast<unsigned long long>(r.sent),
                  static_cast<unsigned long long>(r.delivered), del_pct,
                  r.delivered_per_sec(), us(r.percentile_ps(50)), us(p99),
                  recov_us, static_cast<unsigned long long>(p.injected),
                  static_cast<unsigned long long>(p.tot.ack_timeouts),
                  p.counters_ok ? "" : "   [counter drift]",
                  !tc.gobackn || r.complete ? "" : "   [incomplete]");
      accounting_ok = accounting_ok && p.counters_ok;
      if (tc.gobackn && (r.delivered != r.sent || !r.complete)) {
        gbn_lossless = false;
      }
      pts += sim::strf(
          "%s{\"rate\": %.3f, \"sent\": %llu, \"delivered\": %llu, "
          "\"delivered_per_sec\": %.1f, \"p50_us\": %.3f, \"p99_us\": %.3f, "
          "\"recovery_p99_us\": %.3f, \"faults\": %llu, "
          "\"ack_timeouts\": %llu, \"complete\": %s, \"failure\": \"%s\"}",
          i == 0 ? "" : ", ", p.rate,
          static_cast<unsigned long long>(r.sent),
          static_cast<unsigned long long>(r.delivered),
          r.delivered_per_sec(), us(r.percentile_ps(50)), us(p99), recov_us,
          static_cast<unsigned long long>(p.injected),
          static_cast<unsigned long long>(p.tot.ack_timeouts),
          r.complete ? "true" : "false", r.failure.c_str());
    }
    std::printf("\n");
    if (!curves_json.empty()) curves_json += ",\n";
    curves_json += sim::strf(
        "    {\"config\": \"%s\", \"gobackn\": %s, \"points\": [%s]}",
        tc.name, tc.gobackn ? "true" : "false", pts.c_str());
  }

  std::printf("-- go-back-n lossless at every rate: %s; "
              "fault counters account for every event: %s\n",
              gbn_lossless ? "yes" : "NO", accounting_ok ? "yes" : "NO");

  const std::string json = sim::strf(
      "{\n  \"bench\": \"fault_sweep\",\n  \"counters_ok\": %s,\n"
      "  \"curves\": [\n%s\n  ],\n  \"gbn_lossless\": %s,\n"
      "  \"git\": \"%s\",\n"
      "  \"kinds\": \"%s\",\n  \"quick\": %s,\n  \"seed\": %llu,\n"
      "  \"transport\": \"sim\"\n}\n",
      accounting_ok ? "true" : "false", curves_json.c_str(),
      gbn_lossless ? "true" : "false", harness::git_describe(),
      fault::FaultPlan::kinds_str(plan.kinds).c_str(),
      o.quick ? "true" : "false", static_cast<unsigned long long>(o.seed));
  if (!o.json_path.empty() && !harness::write_text_file(o.json_path, json)) {
    return 1;
  }
  return (gbn_lossless && accounting_ok) ? 0 : 1;
}
