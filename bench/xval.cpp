// Cross-validation: the simulated SeaStar backend vs. the live UDP
// loopback backend, same stack, same workloads (BENCH_xval.json).
//
// The transport seam promises that everything above the NAL — Portals
// semantics, firmware, mini-MPI — is backend-agnostic.  This bench runs
// the same NetPIPE put ping-pong ladder and the same 4-rank mini-MPI
// allreduce through both backends and emits the two curves side by side:
// DES-model microseconds vs. real wall-clock microseconds (per-rung
// iteration counts are shared via np::iters_for, so the workloads are
// identical).  The curves are NOT expected to coincide — the sim models a
// 2004 SeaStar/HyperTransport fabric, the live path is kernel loopback
// sockets — but both must complete, verify every payload byte, and show
// the same qualitative shape (latency flat then linear in size).
//
// An acceptance soak rides along: >=100k NIC messages of live ping-pong
// under injected socket drops, requiring zero lost or corrupted messages
// — go-back-n must recover every injected loss (retransmits > 0 proves
// the recovery path actually ran).
//
//   --quick     small ladder + short soak (CI smoke; skips the 100k gate)
//   --max N     ladder top (default 1 MB)
//   --json F    dump the curves + soak verdict as JSON (BENCH_xval.json)
//   --seed N    drop-injection / sim-fabric seed

#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "conduit/selftest.hpp"
#include "harness/netpipe_bench.hpp"
#include "harness/options.hpp"
#include "harness/scenario.hpp"
#include "host/live_cluster.hpp"
#include "host/node.hpp"
#include "mpi/mpi.hpp"
#include "netpipe/live.hpp"
#include "netpipe/netpipe.hpp"
#include "sim/strf.hpp"
#include "sim/task.hpp"

namespace {

using namespace xt;

constexpr ptl::Pid kPid = 11;
constexpr int kAllreduceRanks = 4;
constexpr std::uint32_t kAllreduceCount = 64;  // doubles per rank

struct AllreduceResult {
  double usec_per_round = 0.0;
  bool ok = false;
};

/// `rounds` verified allreduce_sum rounds over the simulated fabric;
/// returns DES time per round (first round is warmup, not timed).
AllreduceResult sim_allreduce(int n, int rounds, std::uint64_t seed) {
  ss::Config cfg;
  cfg.net.seed = seed;
  host::Machine m(harness::shape_for_ranks(n), cfg);

  std::vector<ptl::ProcessId> ids;
  for (int r = 0; r < n; ++r) {
    ids.push_back(ptl::ProcessId{static_cast<net::NodeId>(r), kPid});
  }
  std::vector<host::Process*> procs;
  std::vector<std::unique_ptr<mpi::Comm>> comms;
  for (int r = 0; r < n; ++r) {
    host::Process& p = m.node(static_cast<net::NodeId>(r)).spawn_process(kPid);
    procs.push_back(&p);
    comms.push_back(std::make_unique<mpi::Comm>(p, ids, r));
    sim::spawn([](mpi::Comm& c) -> sim::CoTask<void> {
      if (co_await c.init() != ptl::PTL_OK) {
        throw std::runtime_error("mpi init failed");
      }
    }(*comms.back()));
  }
  m.run();

  AllreduceResult res;
  res.ok = true;
  // Same integer-valued fill and closed-form check as the live app
  // (netpipe/live.cpp), so both backends verify identical arithmetic.
  std::vector<std::uint64_t> bufs;
  for (int r = 0; r < n; ++r) {
    bufs.push_back(
        procs[static_cast<std::size_t>(r)]->alloc(kAllreduceCount * 8));
  }
  double measured_us = 0.0;
  int measured = 0;
  for (int round = 0; round < rounds + 1; ++round) {
    for (int r = 0; r < n; ++r) {
      std::vector<double> v(kAllreduceCount);
      for (std::uint32_t i = 0; i < kAllreduceCount; ++i) {
        v[i] = static_cast<double>(r + 1) + static_cast<double>(i) +
               static_cast<double>(round);
      }
      procs[static_cast<std::size_t>(r)]->write_bytes(
          bufs[static_cast<std::size_t>(r)], std::as_bytes(std::span(v)));
    }
    const sim::Time t0 = m.engine().now();
    for (int r = 0; r < n; ++r) {
      sim::spawn([](mpi::Comm& c, std::uint64_t b) -> sim::CoTask<void> {
        if (co_await c.allreduce_sum(b, kAllreduceCount) != ptl::PTL_OK) {
          throw std::runtime_error("allreduce failed");
        }
      }(*comms[static_cast<std::size_t>(r)],
        bufs[static_cast<std::size_t>(r)]));
    }
    m.run();
    if (round > 0) {
      measured_us += (m.engine().now() - t0).to_us();
      ++measured;
    }
    for (int r = 0; r < n; ++r) {
      std::vector<double> v(kAllreduceCount);
      procs[static_cast<std::size_t>(r)]->read_bytes(
          bufs[static_cast<std::size_t>(r)],
          std::as_writable_bytes(std::span(v)));
      for (std::uint32_t i = 0; i < kAllreduceCount; ++i) {
        const double expect =
            static_cast<double>(n) * static_cast<double>(n + 1) / 2.0 +
            static_cast<double>(n) *
                (static_cast<double>(i) + static_cast<double>(round));
        if (v[i] != expect) res.ok = false;
      }
    }
  }
  res.usec_per_round = measured > 0 ? measured_us / measured : 0.0;
  return res;
}

/// Same rounds over live UDP: every rank a real thread, rank 0's
/// wall-clock time per round (engine time tracks the wall in live mode).
AllreduceResult live_allreduce(int n, int rounds, std::uint64_t seed) {
  host::LiveOptions opts;
  opts.ranks = n;
  opts.udp.drop_seed = seed;
  std::vector<std::uint8_t> ok(static_cast<std::size_t>(n), 1);
  double usec = 0.0;

  host::LiveApp app = [&](host::LiveRank& lr) -> sim::CoTask<void> {
    std::vector<ptl::ProcessId> ids;
    for (int r = 0; r < n; ++r) ids.push_back(lr.peer(r));
    mpi::Comm comm(lr.process(), ids, lr.rank());
    (void)co_await comm.init();
    co_await lr.barrier();

    const std::uint64_t buf = lr.process().alloc(kAllreduceCount * 8);
    std::vector<double> v(kAllreduceCount);
    sim::Time t0{};
    for (int round = 0; round < rounds + 1; ++round) {
      if (round == 1) {  // round 0 is warmup
        co_await lr.barrier();
        t0 = lr.engine().now();
      }
      for (std::uint32_t i = 0; i < kAllreduceCount; ++i) {
        v[i] = static_cast<double>(lr.rank() + 1) + static_cast<double>(i) +
               static_cast<double>(round);
      }
      lr.process().write_bytes(buf, std::as_bytes(std::span(v)));
      (void)co_await comm.allreduce_sum(buf, kAllreduceCount);
      lr.process().read_bytes(buf, std::as_writable_bytes(std::span(v)));
      for (std::uint32_t i = 0; i < kAllreduceCount; ++i) {
        const double expect =
            static_cast<double>(n) * static_cast<double>(n + 1) / 2.0 +
            static_cast<double>(n) *
                (static_cast<double>(i) + static_cast<double>(round));
        if (v[i] != expect) ok[static_cast<std::size_t>(lr.rank())] = 0;
      }
    }
    if (lr.rank() == 0) {
      usec = (lr.engine().now() - t0).to_us() / rounds;
    }
    co_await lr.barrier();
  };

  auto ranks = host::run_live_cluster(opts, app);
  AllreduceResult res;
  res.usec_per_round = usec;
  res.ok = true;
  for (const auto& r : ranks) res.ok = res.ok && r.ok();
  for (const auto o : ok) res.ok = res.ok && o != 0;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::BenchOptions o =
      harness::BenchOptions::parse(argc, argv, /*max_bytes_default=*/1u << 20);

  np::Options nopts = o.np;
  if (o.quick && nopts.max_bytes > (64u << 10)) nopts.max_bytes = 64u << 10;

  std::printf("=== Cross-validation: simulated SeaStar vs. live UDP "
              "loopback ===\n");
  std::printf("(same stack above the NAL; sim = DES model time, udp = "
              "wall clock on real\nrank threads; iteration counts per rung "
              "are identical)\n\n");

  // ---- ping-pong ladder, both backends -------------------------------
  ss::Config cfg;
  cfg.net.seed = o.seed;
  const std::vector<np::Sample> sim_pp =
      harness::measure(np::Transport::kPut, np::Pattern::kPingPong, nopts,
                       cfg);

  host::LiveOptions lopts;
  lopts.ranks = 2;
  lopts.udp.drop_seed = o.seed;
  const np::LiveRunResult live_pp = np::run_live_pingpong_sweep(lopts, nopts);

  bool ok = live_pp.ok();
  if (sim_pp.size() != live_pp.samples.size()) {
    std::fprintf(stderr, "error: ladder mismatch (sim %zu vs live %zu)\n",
                 sim_pp.size(), live_pp.samples.size());
    return 1;
  }
  std::printf("-- put ping-pong (one-way usec per transfer)\n");
  std::printf("   %9s %6s %12s %12s %10s\n", "bytes", "iters", "sim us",
              "udp-live us", "wall/sim");
  std::string pp_json;
  for (std::size_t i = 0; i < sim_pp.size(); ++i) {
    const np::Sample& s = sim_pp[i];
    const np::Sample& l = live_pp.samples[i];
    if (s.bytes != l.bytes) {
      std::fprintf(stderr, "error: rung mismatch at %zu\n", i);
      return 1;
    }
    const double ratio =
        s.usec_per_transfer > 0 ? l.usec_per_transfer / s.usec_per_transfer
                                : 0.0;
    std::printf("   %9zu %6d %12.3f %12.3f %9.2fx\n", s.bytes,
                np::iters_for(s.bytes, nopts), s.usec_per_transfer,
                l.usec_per_transfer, ratio);
    pp_json += sim::strf(
        "%s\n      {\"bytes\": %zu, \"iters\": %d, \"sim_usec\": %.3f, "
        "\"live_usec\": %.3f, \"wall_over_sim\": %.3f}",
        i == 0 ? "" : ",", s.bytes, np::iters_for(s.bytes, nopts),
        s.usec_per_transfer, l.usec_per_transfer, ratio);
  }
  std::printf("   live run clean: %s (crc drops %llu, retransmits %llu, "
              "injected drops %llu)\n\n",
              live_pp.ok() ? "yes" : "NO",
              static_cast<unsigned long long>(live_pp.crc_drops),
              static_cast<unsigned long long>(live_pp.fw_retransmits),
              static_cast<unsigned long long>(live_pp.transport_drops));

  // ---- 4-rank allreduce, both backends -------------------------------
  const int rounds = o.quick ? 8 : 32;
  const AllreduceResult ar_sim =
      sim_allreduce(kAllreduceRanks, rounds, o.seed);
  const AllreduceResult ar_live =
      live_allreduce(kAllreduceRanks, rounds, o.seed);
  ok = ok && ar_sim.ok && ar_live.ok;
  std::printf("-- allreduce_sum, %d ranks, %u doubles, %d rounds\n",
              kAllreduceRanks, kAllreduceCount, rounds);
  std::printf("   sim: %9.3f us/round   udp-live: %9.3f us/round   "
              "(%0.2fx)\n",
              ar_sim.usec_per_round, ar_live.usec_per_round,
              ar_sim.usec_per_round > 0
                  ? ar_live.usec_per_round / ar_sim.usec_per_round
                  : 0.0);
  std::printf("   results verified on every rank, both backends: %s\n\n",
              ar_sim.ok && ar_live.ok ? "yes" : "NO");

  // ---- conduit AM/put/get, both backends -----------------------------
  // Same one-sided script (put fan-out, get round trips, an AM ring) on
  // the simulated fabric and on live UDP; per-rank checksums over every
  // verified byte must match each other AND the locally computed
  // expectation.
  const int cd_ranks = 4;
  const std::vector<std::uint64_t> cd_exp =
      conduit::xval_expect(cd_ranks, o.seed);
  const conduit::XvalResult cd_sim = conduit::xval_sim(cd_ranks, o.seed);
  const conduit::XvalResult cd_live = conduit::xval_live(cd_ranks, o.seed);
  bool cd_same = cd_sim.ok && cd_live.ok;
  for (int r = 0; r < cd_ranks; ++r) {
    const std::size_t u = static_cast<std::size_t>(r);
    if (cd_sim.sum[u] != cd_exp[u] || cd_live.sum[u] != cd_exp[u]) {
      cd_same = false;
    }
  }
  ok = ok && cd_same;
  std::printf("-- conduit one-sided script, %d ranks (AM ring + put/get "
              "round trips)\n", cd_ranks);
  std::printf("   %4s %18s %18s %18s\n", "rank", "expected", "sim",
              "udp-live");
  std::string cd_json;
  for (int r = 0; r < cd_ranks; ++r) {
    const std::size_t u = static_cast<std::size_t>(r);
    std::printf("   %4d   %016llx   %016llx   %016llx\n", r,
                static_cast<unsigned long long>(cd_exp[u]),
                static_cast<unsigned long long>(cd_sim.sum[u]),
                static_cast<unsigned long long>(cd_live.sum[u]));
    cd_json += sim::strf("%s\"%016llx\"", r == 0 ? "" : ", ",
                         static_cast<unsigned long long>(cd_sim.sum[u]));
  }
  if (!cd_sim.failure.empty()) {
    std::printf("   sim: %s\n", cd_sim.failure.c_str());
  }
  if (!cd_live.failure.empty()) {
    std::printf("   live: %s\n", cd_live.failure.c_str());
  }
  std::printf("   checksums byte-identical across backends: %s\n\n",
              cd_same ? "yes" : "NO");

  // ---- acceptance soak: >=100k live messages under injected drops ----
  const std::size_t soak_bytes = 512;
  const int soak_iters = o.quick ? 2000 : 30000;
  const double soak_drop = 0.01;
  host::LiveOptions sopts;
  sopts.ranks = 2;
  sopts.udp.drop_rate = soak_drop;
  sopts.udp.drop_seed = o.seed;
  const np::LiveRunResult soak =
      np::run_live_pingpong(sopts, soak_bytes, soak_iters);

  const bool lossless = soak.ok();
  const bool recovered = soak.fw_retransmits > 0 && soak.transport_drops > 0;
  const bool enough = o.quick || soak.total_msgs_sent >= 100000;
  ok = ok && lossless && recovered && enough;
  std::printf("-- soak: %d x %zu B live round trips at %.0f%% injected "
              "datagram loss\n",
              soak_iters, soak_bytes, soak_drop * 100);
  std::printf("   nic messages %llu%s, datagrams dropped %llu, "
              "retransmits %llu,\n   crc drops %llu, data verified: %s, "
              "lossless: %s\n\n",
              static_cast<unsigned long long>(soak.total_msgs_sent),
              enough ? "" : " [below 100k gate]",
              static_cast<unsigned long long>(soak.transport_drops),
              static_cast<unsigned long long>(soak.fw_retransmits),
              static_cast<unsigned long long>(soak.crc_drops),
              soak.data_ok ? "yes" : "NO", lossless ? "yes" : "NO");

  std::printf("cross-validation %s\n", ok ? "PASSED" : "FAILED");

  if (!o.json_path.empty()) {
    const std::string json = sim::strf(
        "{\n  \"bench\": \"xval\",\n  \"git\": \"%s\",\n"
        "  \"transport\": \"sim+udp\",\n"
        "  \"seed\": %llu,\n  \"quick\": %s,\n  \"ok\": %s,\n"
        "  \"pingpong\": {\n    \"pattern\": \"put ping-pong\",\n"
        "    \"max_bytes\": %zu,\n    \"points\": [%s\n    ]\n  },\n"
        "  \"allreduce\": {\"ranks\": %d, \"count\": %u, \"rounds\": %d, "
        "\"sim_usec_per_round\": %.3f, \"live_usec_per_round\": %.3f, "
        "\"verified\": %s},\n"
        "  \"conduit\": {\"ranks\": %d, \"checksums\": [%s], "
        "\"identical\": %s},\n"
        "  \"soak\": {\"bytes\": %zu, \"iters\": %d, \"drop_rate\": %.3f, "
        "\"nic_msgs\": %llu, \"datagrams_dropped\": %llu, "
        "\"retransmits\": %llu, \"crc_drops\": %llu, \"lossless\": %s}\n"
        "}\n",
        harness::git_describe(),
        static_cast<unsigned long long>(o.seed), o.quick ? "true" : "false",
        ok ? "true" : "false", nopts.max_bytes, pp_json.c_str(),
        kAllreduceRanks, kAllreduceCount, rounds, ar_sim.usec_per_round,
        ar_live.usec_per_round, ar_sim.ok && ar_live.ok ? "true" : "false",
        cd_ranks, cd_json.c_str(), cd_same ? "true" : "false",
        soak_bytes, soak_iters, soak_drop,
        static_cast<unsigned long long>(soak.total_msgs_sent),
        static_cast<unsigned long long>(soak.transport_drops),
        static_cast<unsigned long long>(soak.fw_retransmits),
        static_cast<unsigned long long>(soak.crc_drops),
        lossless ? "true" : "false");
    if (!harness::write_text_file(o.json_path, json)) return 1;
  }
  return ok ? 0 : 1;
}
