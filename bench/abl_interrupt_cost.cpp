// Ablation — sensitivity to the host interrupt overhead (§3.3).
//
// "Interrupts ... are very costly, requiring at least 2 us of overhead
// each.  Clearly, it will be necessary to eliminate all interrupts from
// the data path in order to meet the performance requirements of the XT3."
// This bench sweeps the modeled interrupt cost and reports 1-byte latency
// and the half-bandwidth message size — the two figures of merit the paper
// ties to interrupt overhead.

#include <cstdio>

#include "netpipe/netpipe.hpp"

int main() {
  using namespace xt;
  std::printf("=== Ablation: interrupt overhead sweep ===\n\n");
  std::printf("  %12s %14s %18s %14s\n", "irq cost us", "1B latency us",
              "half-bw bytes", "peak MB/s");

  for (const int ns : {0, 500, 1000, 2000, 4000, 8000}) {
    ss::Config cfg;
    cfg.interrupt = sim::Time::ns(ns);

    np::Options lat;
    lat.max_bytes = 1;
    lat.perturbation = 0;
    const auto l = np::measure(np::Transport::kPut, np::Pattern::kPingPong,
                               lat, cfg);

    np::Options bw;
    bw.max_bytes = 1 << 20;
    bw.base_iters = 12;
    const auto b = np::measure(np::Transport::kPut, np::Pattern::kPingPong,
                               bw, cfg);
    const double peak = b.back().mbytes_per_sec;
    std::size_t half = b.back().bytes;
    for (const auto& s : b) {
      if (s.mbytes_per_sec >= peak / 2) {
        half = s.bytes;
        break;
      }
    }
    std::printf("  %12.1f %14.3f %18zu %14.1f\n", ns / 1000.0,
                l.front().usec_per_transfer, half, peak);
  }
  std::printf("\n  expected: latency rises ~2x the interrupt cost "
              "(two interrupts above 12 B,\n  one at 1 B) and the "
              "half-bandwidth point scales with total overhead; the peak\n"
              "  is interrupt-insensitive (DMA-limited)\n");
  return 0;
}
