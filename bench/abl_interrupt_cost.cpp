// Ablation — sensitivity to the host interrupt overhead (§3.3).
//
// "Interrupts ... are very costly, requiring at least 2 us of overhead
// each.  Clearly, it will be necessary to eliminate all interrupts from
// the data path in order to meet the performance requirements of the XT3."
// This bench sweeps the modeled interrupt cost and reports 1-byte latency
// and the half-bandwidth message size — the two figures of merit the paper
// ties to interrupt overhead.

#include <cstdio>
#include <functional>
#include <vector>

#include "harness/netpipe_bench.hpp"
#include "harness/sweep.hpp"
#include "sim/strf.hpp"

namespace {

using namespace xt;

struct Row {
  double one_byte_us = 0;
  std::size_t half_bytes = 0;
  double peak = 0;
  std::vector<np::Sample> bw;
};

Row point(int irq_ns, const harness::BenchOptions& o, std::uint64_t seed) {
  ss::Config cfg;
  cfg.interrupt = sim::Time::ns(irq_ns);
  cfg.net.seed = seed;

  np::Options lat = o.np;
  lat.max_bytes = 1;
  lat.perturbation = 0;
  const auto l = harness::measure(np::Transport::kPut,
                                  np::Pattern::kPingPong, lat, cfg);

  np::Options bw = o.np;
  bw.base_iters = o.quick ? bw.base_iters : 12;
  const auto b = harness::measure(np::Transport::kPut,
                                  np::Pattern::kPingPong, bw, cfg);
  Row r;
  r.one_byte_us = l.front().usec_per_transfer;
  r.peak = b.back().mbytes_per_sec;
  r.half_bytes = b.back().bytes;
  for (const auto& s : b) {
    if (s.mbytes_per_sec >= r.peak / 2) {
      r.half_bytes = s.bytes;
      break;
    }
  }
  r.bw = b;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xt;
  const harness::BenchOptions o =
      harness::BenchOptions::parse(argc, argv, 1u << 20);

  const std::vector<int> irq_ns = {0, 500, 1000, 2000, 4000, 8000};
  std::vector<std::function<Row()>> tasks;
  for (std::size_t i = 0; i < irq_ns.size(); ++i) {
    const int ns = irq_ns[i];
    const std::uint64_t seed = o.seed + i;
    tasks.push_back([ns, o, seed] { return point(ns, o, seed); });
  }
  const auto rows = harness::SweepRunner(o.jobs).run(std::move(tasks));

  std::printf("=== Ablation: interrupt overhead sweep ===\n\n");
  std::printf("  %12s %14s %18s %14s\n", "irq cost us", "1B latency us",
              "half-bw bytes", "peak MB/s");
  for (std::size_t i = 0; i < irq_ns.size(); ++i) {
    std::printf("  %12.1f %14.3f %18zu %14.1f\n", irq_ns[i] / 1000.0,
                rows[i].one_byte_us, rows[i].half_bytes, rows[i].peak);
  }
  std::printf("\n  expected: latency rises ~2x the interrupt cost "
              "(two interrupts above 12 B,\n  one at 1 B) and the "
              "half-bandwidth point scales with total overhead; the peak\n"
              "  is interrupt-insensitive (DMA-limited)\n");

  if (!o.json_path.empty()) {
    std::vector<harness::SeriesResult> series;
    for (std::size_t i = 0; i < irq_ns.size(); ++i) {
      harness::SeriesResult sr;
      sr.name = sim::strf("irq=%dns", irq_ns[i]);
      sr.pattern = np::Pattern::kPingPong;
      sr.samples = rows[i].bw;
      series.push_back(std::move(sr));
    }
    if (!harness::write_series_json(o.json_path,
                                    "Ablation: interrupt overhead", o.jobs,
                                    series)) {
      return 1;
    }
  }
  return 0;
}
