// Table B — the cost structure of generic mode (§3.3, §6).
//
// The paper's latency story rests on two measured host costs — a NULL trap
// into Catamount (~75 ns) and an interrupt (>= 2 us) — and on how many
// interrupts each message needs: one for <= 12-byte messages (header and
// data arrive together), two beyond that (header processing + completion).
// This bench measures interrupts-per-message from the firmware counters
// and decomposes the 1-byte one-way latency.

#include <cstdio>
#include <functional>
#include <vector>

#include "harness/options.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "netpipe/netpipe.hpp"
#include "sim/strf.hpp"

namespace {

using namespace xt;

/// Sends `iters` puts of `bytes` from node 0 to node 1 on a fresh machine
/// and reports the receive-side interrupt count per message.
double interrupts_per_message(std::size_t bytes, int iters,
                              std::uint64_t seed) {
  auto inst = harness::Scenario::pair(host::ProcMode::kUser, 10, 32u << 20)
                  .with_seed(seed)
                  .build();
  auto mod = np::make_portals_module(inst->proc(0), inst->proc(1),
                                     /*use_get=*/false);
  bool done = false;
  sim::spawn([](np::Module& mm, std::size_t n, int it,
                bool* d) -> sim::CoTask<void> {
    co_await mm.setup(1 << 20);
    // Ping-pong spaces the messages out so receive interrupts cannot
    // coalesce — each message's cost is fully visible.
    co_await mm.pingpong(n, it);
    *d = true;
  }(*mod, bytes, iters, &done));
  inst->run();
  if (!done) return -1.0;
  // Node 1 takes one TxComplete interrupt per pong it sends back; subtract
  // those to isolate the receive-side count per incoming message.
  return static_cast<double>(
             inst->machine().node(1).firmware().counters().interrupts) /
             iters -
         1.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xt;
  const harness::BenchOptions o = harness::BenchOptions::parse(argc, argv);
  const ss::Config cfg;
  std::printf("=== Table B: generic-mode cost structure ===\n\n");
  std::printf("  host crossing costs (model inputs, from the paper):\n");
  std::printf("    Catamount NULL trap     %8.0f ns   (paper: ~75 ns)\n",
              cfg.trap_catamount.to_ns());
  std::printf("    Linux syscall           %8.0f ns\n",
              cfg.trap_linux.to_ns());
  std::printf("    interrupt overhead      %8.0f ns   (paper: >= 2 us)\n",
              cfg.interrupt.to_ns());
  std::printf("    ratio interrupt/trap    %8.1f x\n\n",
              cfg.interrupt.to_ns() / cfg.trap_catamount.to_ns());

  // Each probed size is a self-contained machine — fan them out.
  const std::vector<std::size_t> sizes = {1, 8, 12, 13, 64, 4096};
  std::vector<std::function<double()>> tasks;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t bytes = sizes[i];
    const std::uint64_t seed = o.seed + i;
    tasks.push_back(
        [bytes, seed] { return interrupts_per_message(bytes, 12, seed); });
  }
  const auto ipms = harness::SweepRunner(o.jobs).run(std::move(tasks));

  std::printf("  receive-side interrupts per message (measured):\n");
  std::string json = "{\n  \"table\": \"B\",\n  \"interrupts_per_message\": [\n";
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("    %6zu bytes   %5.2f interrupts/message%s\n", sizes[i],
                ipms[i],
                sizes[i] <= cfg.inline_payload_max
                    ? "   (inline: header+data together)"
                    : "   (header + completion)");
    json += sim::strf("    {\"bytes\": %zu, \"ipm\": %.2f}%s\n", sizes[i],
                      ipms[i], i + 1 < sizes.size() ? "," : "");
  }
  json += "  ]\n}\n";

  std::printf("\n  1-byte one-way latency decomposition (model):\n");
  const double trap_api =
      (cfg.trap_catamount + cfg.host_api_call + cfg.host_cmd_build).to_ns();
  const double host_tx = cfg.host_cmd_build.to_ns();
  const double ht = (cfg.ht_write_latency * 2 + cfg.ht_read_latency).to_ns();
  const double fw = (cfg.fw_poll + cfg.fw_tx_cmd + cfg.fw_tx_start +
                     cfg.fw_rx_header + cfg.fw_rx_complete +
                     cfg.fw_event_post)
                        .to_ns();
  const double wire = 64.0 / 2.5 + cfg.net.link.hop_latency.to_ns();
  const double irq = cfg.interrupt.to_ns();
  const double match =
      (cfg.host_match_base + cfg.host_match_per_me).to_ns();
  const double deliver =
      (cfg.host_event_post + cfg.trap_catamount + cfg.host_api_call).to_ns();
  const double total =
      trap_api + host_tx + ht + fw + wire + irq + match + deliver;
  std::printf("    API call + trap          %7.0f ns\n", trap_api);
  std::printf("    host command build       %7.0f ns\n", host_tx);
  std::printf("    HyperTransport crossings %7.0f ns\n", ht);
  std::printf("    firmware handlers        %7.0f ns\n", fw);
  std::printf("    wire (1 hop)             %7.0f ns\n", wire);
  std::printf("    interrupt                %7.0f ns  <-- dominant term\n",
              irq);
  std::printf("    host matching            %7.0f ns\n", match);
  std::printf("    event delivery + wakeup  %7.0f ns\n", deliver);
  std::printf("    ------------------------------------\n");
  std::printf("    sum                      %7.0f ns  (measured one-way: "
              "~5390 ns; paper: 5390 ns)\n",
              total);
  std::printf("\n  interrupt share of the 1-byte path: %.0f%%  (the paper: "
              "\"a significant amount of the current latency is due to\n"
              "   interrupt processing by the host\")\n",
              100.0 * irq / total);

  if (!o.json_path.empty() && !harness::write_text_file(o.json_path, json)) {
    return 1;
  }
  return 0;
}
