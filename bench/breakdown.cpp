// Per-stage latency attribution — the paper's Table-B cost breakdown
// reproduced from MEASUREMENT instead of from the config constants.
//
// Runs a ping-pong for generic and accelerated mode at an inline (8 B) and
// a body (4 KiB) size with message provenance enabled, then prints where
// every nanosecond of the end-to-end one-way latency went, stage by stage,
// next to the configured cost composite for that stage.  Attribution is by
// telescoping interval (telemetry/provenance.hpp), so the per-stage sums
// equal the measured end-to-end latency EXACTLY — the bench asserts it and
// exits non-zero on any mismatch.
//
// Divergence flags ('!') mark stages whose measured mean strays from the
// configured composite by more than max(35%, 300 ns) — expected for stages
// that include queueing (mailbox poll alignment, DMA backlog), alarming
// for the pure-CPU ones.

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "harness/netpipe_bench.hpp"
#include "harness/options.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "netpipe/netpipe.hpp"
#include "sim/strf.hpp"
#include "telemetry/provenance.hpp"

namespace {

using namespace xt;
using telemetry::Stage;

struct PointSpec {
  const char* name;
  host::ProcMode mode;
  std::size_t bytes;
};

struct PointResult {
  telemetry::Attribution att;
  std::string metrics_json;
  std::vector<sim::Trace::Record> trace_records;
  bool done = false;
};

PointResult run_point(const PointSpec& p, std::uint64_t seed,
                      bool want_trace) {
  harness::Scenario sc = harness::Scenario::pair(p.mode, 10, 32u << 20);
  sc.with_seed(seed);
  harness::Scenario::TelemetrySpec tel;
  tel.sampling = true;
  tel.provenance = true;
  tel.trace = want_trace;
  sc.with_telemetry(tel);
  auto inst = sc.build();
  auto mod = np::make_portals_module(inst->proc(0), inst->proc(1),
                                     /*use_get=*/false);
  PointResult r;
  sim::spawn([](np::Module& mm, std::size_t n,
                bool* d) -> sim::CoTask<void> {
    co_await mm.setup(1 << 20);
    co_await mm.pingpong(n, 12);
    *d = true;
  }(*mod, p.bytes, &r.done));
  inst->run();
  r.att = inst->provenance()->attribute();
  r.metrics_json = inst->metrics_json();
  if (want_trace && inst->trace() != nullptr) {
    r.trace_records = inst->trace()->records();
  }
  return r;
}

/// The configured cost composite a stage's telescoped interval should
/// match, in ns; < 0 when the stage has no clean constant decomposition
/// (queueing-dominated stages).  Mirrors tableB_costs' model decomposition.
double configured_ns(Stage s, bool accel, bool is_inline, std::size_t bytes,
                     const ss::Config& cfg) {
  const double ht_w = cfg.ht_write_latency.to_ns();
  const double wire_ns_per_byte =
      1e9 / static_cast<double>(cfg.net.link.rate_bytes_per_sec);
  switch (s) {
    case Stage::kFwTxCmd:
      // Host command build, mailbox write, firmware Tx-command handler
      // (plus up to one fw_poll of mailbox alignment — left out).
      return cfg.host_cmd_build.to_ns() + ht_w + cfg.fw_tx_cmd.to_ns();
    case Stage::kTxDma:
      return cfg.fw_tx_start.to_ns();
    case Stage::kWireHeader:
      // The one HT read round-trip of the transmit DMA program.
      return cfg.ht_read_latency.to_ns();
    case Stage::kRxNicHeader:
      // 64-byte header serialization plus one router hop.
      return 64.0 * wire_ns_per_byte + cfg.net.link.hop_latency.to_ns();
    case Stage::kRxNicComplete:
      // Payload streams behind the header at the wire rate.
      return static_cast<double>(bytes) * wire_ns_per_byte;
    case Stage::kFwRxHeader:
      return cfg.fw_rx_header.to_ns();
    case Stage::kFwMatch:
      return cfg.fw_match_per_me.to_ns();
    case Stage::kFwRxCmd:
      // Host mailbox write plus the firmware Rx-command handler.
      return ht_w + cfg.fw_rx_cmd.to_ns();
    case Stage::kRxDma:
      return -1.0;  // cut-through deposit: overlap, no single constant
    case Stage::kFwComplete:
      return cfg.fw_rx_complete.to_ns();
    case Stage::kIrqRaise:
    case Stage::kEventPost:
      // HT write of the event plus the firmware event-post cost.
      return ht_w + cfg.fw_event_post.to_ns();
    case Stage::kHostMatch:
      // Interrupt entry + match walk; inline deliveries fold the event
      // post into the same CPU charge, body deliveries the Rx command
      // build (kernel_agent.cpp keeps these as one run_interrupt).
      return cfg.interrupt.to_ns() + cfg.host_match_base.to_ns() +
             cfg.host_match_per_me.to_ns() +
             (is_inline ? cfg.host_event_post.to_ns()
                        : cfg.host_cmd_build.to_ns());
    case Stage::kHostDeliver:
      if (accel) return cfg.host_event_post.to_ns();  // polled, no irq
      // Inline: delivered inside the kHostMatch charge (zero-width).
      // Body: the second interrupt plus the completion event.
      return is_inline ? 0.0
                       : cfg.interrupt.to_ns() + cfg.host_event_post.to_ns();
    default:
      return -1.0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xt;
  const harness::BenchOptions o = harness::BenchOptions::parse(argc, argv);
  const ss::Config cfg;

  const std::vector<PointSpec> points = {
      {"generic-8B", host::ProcMode::kUser, 8},
      {"generic-4KiB", host::ProcMode::kUser, 4096},
      {"accel-8B", host::ProcMode::kAccel, 8},
      {"accel-4KiB", host::ProcMode::kAccel, 4096},
  };

  const bool want_trace = !o.trace_path.empty();
  std::vector<std::function<PointResult()>> tasks;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointSpec p = points[i];
    const std::uint64_t seed = o.seed + i;
    tasks.push_back(
        [p, seed, want_trace] { return run_point(p, seed, want_trace); });
  }
  const auto results = harness::SweepRunner(o.jobs).run(std::move(tasks));

  std::printf("=== breakdown: measured per-stage latency attribution ===\n");
  std::printf("(telescoped per-message stamps; stage sums equal the\n"
              " end-to-end latency exactly, by construction — verified)\n");

  int rc = 0;
  std::string json = "{\n  \"bench\": \"breakdown\",\n  \"transport\": \"sim\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointSpec& p = points[i];
    const PointResult& r = results[i];
    const bool accel = p.mode == host::ProcMode::kAccel;
    const bool is_inline = p.bytes <= cfg.inline_payload_max;
    std::printf("\n--- %s (%s path) ---\n", p.name,
                is_inline ? "inline" : "body");
    if (!r.done || r.att.messages == 0) {
      std::printf("  NO ATTRIBUTED MESSAGES (workload %s)\n",
                  r.done ? "finished" : "did not finish");
      rc = 1;
      continue;
    }
    const double msgs = static_cast<double>(r.att.messages);
    const double e2e = static_cast<double>(r.att.e2e_ps);
    const double per_msg = e2e / 1000.0 / msgs;
    std::printf("  messages end-to-end: %llu   mean one-way: %.0f ns\n\n",
                static_cast<unsigned long long>(r.att.messages), per_msg);
    std::printf("  %-16s %7s %12s %7s %14s\n", "stage", "visits",
                "mean ns", "share", "configured ns");
    std::uint64_t sum_ps = 0;
    for (const telemetry::StageRow& row : r.att.rows) {
      sum_ps += row.total_ps;
      const double mean_ns =
          row.visits == 0 ? 0.0
                          : static_cast<double>(row.total_ps) / 1000.0 /
                                static_cast<double>(row.visits);
      const double share = 100.0 * static_cast<double>(row.total_ps) / e2e;
      const double conf =
          configured_ns(row.stage, accel, is_inline, p.bytes, cfg);
      std::string conf_col = "--";
      if (conf >= 0.0) {
        const bool diverges =
            std::fabs(mean_ns - conf) > std::max(0.35 * conf, 300.0);
        conf_col = sim::strf("%10.0f%s", conf, diverges ? " !" : "");
      }
      std::printf("  %-16s %7llu %12.0f %6.1f%% %14s\n",
                  telemetry::stage_name(row.stage),
                  static_cast<unsigned long long>(row.visits), mean_ns,
                  share, conf_col.c_str());
    }
    const bool exact = sum_ps == r.att.e2e_ps;
    std::printf("  %-16s         %12.0f 100.0%%\n", "sum",
                static_cast<double>(sum_ps) / 1000.0 / msgs);
    std::printf("  stage sums == end-to-end: %s\n", exact ? "OK" : "FAIL");
    if (!exact) rc = 1;

    json += sim::strf(
        "    {\"name\": \"%s\", \"messages\": %llu, \"e2e_ps\": %llu, "
        "\"stages\": [\n",
        p.name, static_cast<unsigned long long>(r.att.messages),
        static_cast<unsigned long long>(r.att.e2e_ps));
    for (std::size_t k = 0; k < r.att.rows.size(); ++k) {
      const telemetry::StageRow& row = r.att.rows[k];
      json += sim::strf(
          "      {\"stage\": \"%s\", \"total_ps\": %llu, \"visits\": "
          "%llu}%s\n",
          telemetry::stage_name(row.stage),
          static_cast<unsigned long long>(row.total_ps),
          static_cast<unsigned long long>(row.visits),
          k + 1 < r.att.rows.size() ? "," : "");
    }
    json += sim::strf("    ]}%s\n", i + 1 < points.size() ? "," : "");
  }
  json += "  ]\n}\n";

  std::printf("\n  paper check: generic mode's host_match + host_deliver "
              "stages carry the\n  interrupt costs the paper blames for "
              "latency; accel mode replaces them\n  with fw_match + "
              "event_post (no interrupt on the critical path).\n");

  if (!o.json_path.empty() && !harness::write_text_file(o.json_path, json)) {
    rc = 1;
  }
  if (!o.metrics_path.empty() || !o.trace_path.empty()) {
    // Reuse the harness mergers via per-point SeriesResult shells.
    std::vector<harness::SeriesResult> series;
    for (std::size_t i = 0; i < points.size(); ++i) {
      harness::SeriesResult s;
      s.name = points[i].name;
      s.pattern = np::Pattern::kPingPong;
      s.metrics_json = results[i].metrics_json;
      s.trace_records = results[i].trace_records;
      series.push_back(std::move(s));
    }
    if (!o.metrics_path.empty() &&
        !harness::write_text_file(
            o.metrics_path, harness::metrics_json("breakdown", series))) {
      rc = 1;
    }
    if (!o.trace_path.empty() &&
        !harness::write_text_file(o.trace_path,
                                  harness::merged_trace_json(series))) {
      rc = 1;
    }
  }
  return rc;
}
