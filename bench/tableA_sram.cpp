// Table A — SeaStar SRAM occupancy (§4.2).
//
// The paper gives the occupancy formula
//
//     M = S*Ssize + sum_i (Pi * Psize)
//
// with 1,024 global source structures and 1,274 pendings for the generic
// process, and notes that "several more similarly sized pending pools can
// be supported for additional firmware-level processes" within the 384 KB
// of SRAM.  This bench prints the live accounting from the simulated NIC
// and computes how many accelerated-process pools fit in the headroom.

#include <cstdio>

#include "host/node.hpp"

int main() {
  using namespace xt;
  const ss::Config cfg;
  host::Machine m(net::Shape::xt3(1, 1, 1), cfg);
  host::Node& node = m.node(0);

  std::printf("=== Table A: SeaStar local SRAM occupancy ===\n\n");
  ss::Sram& sram = node.nic().sram();
  std::printf("  %-28s %10s\n", "region", "bytes");
  for (const auto& [name, bytes] : sram.table()) {
    std::printf("  %-28s %10zu\n", name.c_str(), bytes);
  }
  std::printf("  %-28s %10zu of %zu (%.1f%%)\n", "TOTAL", sram.used(),
              sram.capacity(),
              100.0 * static_cast<double>(sram.used()) /
                  static_cast<double>(sram.capacity()));

  // The paper's formula, evaluated symbolically.
  const std::size_t S = cfg.n_sources;
  const std::size_t P1 = cfg.n_generic_rx_pendings + cfg.n_generic_tx_pendings;
  const std::size_t M =
      S * cfg.source_bytes + P1 * cfg.lower_pending_bytes;
  std::printf("\n  formula M = S*Ssize + sum(Pi*Psize)\n");
  std::printf("          M = %zu*%zu + %zu*%zu = %zu bytes (%.1f KB)\n", S,
              cfg.source_bytes, P1, cfg.lower_pending_bytes, M,
              static_cast<double>(M) / 1024.0);

  // Headroom: accelerated-process pending pools that still fit.
  const std::size_t pool =
      (cfg.n_accel_rx_pendings + cfg.n_accel_tx_pendings) *
          cfg.lower_pending_bytes +
      cfg.per_process_bytes;
  const std::size_t extra = sram.free_bytes() / pool;
  std::printf("\n  headroom: %zu bytes free -> %zu additional "
              "accelerated-process pools of %zu bytes each\n",
              sram.free_bytes(), extra, pool);
  std::printf("  (paper: \"several more similarly sized pending pools can "
              "be supported\")\n");
  return 0;
}
