// Table A — SeaStar SRAM occupancy (§4.2).
//
// The paper gives the occupancy formula
//
//     M = S*Ssize + sum_i (Pi * Psize)
//
// with 1,024 global source structures and 1,274 pendings for the generic
// process, and notes that "several more similarly sized pending pools can
// be supported for additional firmware-level processes" within the 384 KB
// of SRAM.  This bench prints the live accounting from the simulated NIC
// and computes how many accelerated-process pools fit in the headroom.

#include <cstdio>

#include "harness/options.hpp"
#include "harness/scenario.hpp"
#include "sim/strf.hpp"

int main(int argc, char** argv) {
  using namespace xt;
  const harness::BenchOptions o = harness::BenchOptions::parse(argc, argv);
  const ss::Config cfg;
  auto inst = harness::Scenario{}
                  .with_shape(net::Shape::xt3(1, 1, 1))
                  .with_config(cfg)
                  .with_seed(o.seed)
                  .build();
  host::Node& node = inst->machine().node(0);

  std::printf("=== Table A: SeaStar local SRAM occupancy ===\n\n");
  ss::Sram& sram = node.nic().sram();
  std::printf("  %-28s %10s\n", "region", "bytes");
  std::string json = "{\n  \"table\": \"A\",\n  \"regions\": [\n";
  const auto table = sram.table();
  for (std::size_t i = 0; i < table.size(); ++i) {
    const auto& [name, bytes] = table[i];
    std::printf("  %-28s %10zu\n", name.c_str(), bytes);
    json += sim::strf("    {\"region\": \"%s\", \"bytes\": %zu}%s\n",
                      name.c_str(), bytes, i + 1 < table.size() ? "," : "");
  }
  std::printf("  %-28s %10zu of %zu (%.1f%%)\n", "TOTAL", sram.used(),
              sram.capacity(),
              100.0 * static_cast<double>(sram.used()) /
                  static_cast<double>(sram.capacity()));
  json += sim::strf("  ],\n  \"used\": %zu,\n  \"capacity\": %zu\n}\n",
                    sram.used(), sram.capacity());

  // The paper's formula, evaluated symbolically.
  const std::size_t S = cfg.n_sources;
  const std::size_t P1 = cfg.n_generic_rx_pendings + cfg.n_generic_tx_pendings;
  const std::size_t M =
      S * cfg.source_bytes + P1 * cfg.lower_pending_bytes;
  std::printf("\n  formula M = S*Ssize + sum(Pi*Psize)\n");
  std::printf("          M = %zu*%zu + %zu*%zu = %zu bytes (%.1f KB)\n", S,
              cfg.source_bytes, P1, cfg.lower_pending_bytes, M,
              static_cast<double>(M) / 1024.0);

  // Headroom: accelerated-process pending pools that still fit.
  const std::size_t pool =
      (cfg.n_accel_rx_pendings + cfg.n_accel_tx_pendings) *
          cfg.lower_pending_bytes +
      cfg.per_process_bytes;
  const std::size_t extra = sram.free_bytes() / pool;
  std::printf("\n  headroom: %zu bytes free -> %zu additional "
              "accelerated-process pools of %zu bytes each\n",
              sram.free_bytes(), extra, pool);
  std::printf("  (paper: \"several more similarly sized pending pools can "
              "be supported\")\n");

  if (!o.json_path.empty() && !harness::write_text_file(o.json_path, json)) {
    return 1;
  }
  return 0;
}
