// Collective scaling: host-driven vs NIC-offloaded (triggered ops).
//
// Sweeps communicator size x algorithm x mode and reports the latency of
// an 8-byte-token barrier and a 64-double allreduce.  Host mode runs the
// algorithms over the src/mpi point-to-point layer (the paper's measured
// configuration); offload mode arms the firmware counting-event/triggered-
// operation schedule (src/collective) so every hop after the start
// increment happens on the NICs.  The sweep locates the crossover size
// where taking the host out of the loop starts to pay, and verifies the
// offload runs took zero host interrupts.  Per-process firmware SRAM cost
// of the offload machinery is reported against the 384 KB budget.
//
//   --quick    cap the ladder at 64 ranks (CI smoke)
//   --jobs N   sweep worker threads (output is jobs-invariant)
//   --json F   dump the curves as JSON

#include <cstdio>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "collective/collective.hpp"
#include "harness/netpipe_bench.hpp"
#include "harness/scenario.hpp"
#include "harness/options.hpp"
#include "harness/sweep.hpp"
#include "host/node.hpp"
#include "sim/strf.hpp"
#include "sim/trace.hpp"

namespace {

using namespace xt;

constexpr ptl::Pid kPid = 11;
constexpr std::uint32_t kAllreduceCount = 64;  // doubles per rank

enum class Op : std::uint8_t {
  kBarrierDissem,
  kBarrierTree,
  kAllreduceRecDbl,
  kAllreduceTree,
};

const char* op_str(Op op) {
  switch (op) {
    case Op::kBarrierDissem: return "barrier/dissemination";
    case Op::kBarrierTree: return "barrier/tree";
    case Op::kAllreduceRecDbl: return "allreduce/recdbl";
    case Op::kAllreduceTree: return "allreduce/tree";
  }
  return "?";
}

struct Row {
  Op op = Op::kBarrierDissem;
  coll::Mode mode = coll::Mode::kHost;
  int n = 0;
  double usec = 0;             // per-operation completion latency
  std::uint64_t interrupts = 0;
  std::uint64_t fires = 0;     // triggered operations launched on NICs
  std::size_t sram_footprint = 0;
  std::size_t sram_used = 0;
  std::string metrics_json;    // set when --metrics was given
  std::vector<sim::Trace::Record> trace_records;  // set when --trace
};

/// Near-cubic power-of-two torus for n = 2^e ranks.
/// Small-footprint MPI flavor so a 4096-rank host-mode machine fits in
/// memory; every collective message here is well under the eager limit.
mpi::Flavor small_flavor() {
  mpi::Flavor f = mpi::Flavor::mpich1();
  f.eager_max = 4096;
  f.n_ux_slabs = 4;
  f.ux_slab_bytes = 16 * 1024;
  return f;
}

Row point(Op op, coll::Mode mode, int n, bool quick, bool want_metrics,
          bool want_trace) {
  host::Machine m(harness::shape_for_ranks(n));
  // This bench builds its Machine directly (no Scenario), so the
  // telemetry sinks are wired by hand: sampling on the engine registry,
  // a per-point Trace collected into the Row.
  if (want_metrics) m.engine().metrics().set_sampling(true);
  sim::Trace tr;
  if (want_trace) m.engine().set_trace(&tr);
  std::vector<ptl::ProcessId> ids;
  for (int r = 0; r < n; ++r) {
    ids.push_back(ptl::ProcessId{static_cast<net::NodeId>(r), kPid});
  }
  coll::Config cc;
  cc.mode = mode;
  cc.flavor = small_flavor();
  std::vector<host::Process*> procs;
  std::vector<std::unique_ptr<coll::Coll>> colls;
  for (int r = 0; r < n; ++r) {
    auto& node = m.node(static_cast<net::NodeId>(r));
    host::Process& p = mode == coll::Mode::kOffload
                           ? node.spawn_accel_process(kPid, 128u << 10)
                           : node.spawn_process(kPid, 256u << 10);
    procs.push_back(&p);
    colls.push_back(std::make_unique<coll::Coll>(p, ids, r, cc));
    sim::spawn([](coll::Coll& c) -> sim::CoTask<void> {
      if (co_await c.init() != ptl::PTL_OK) {
        throw std::runtime_error("coll init failed");
      }
    }(*colls.back()));
  }
  m.run();

  std::vector<std::uint64_t> bufs;
  for (int r = 0; r < n; ++r) {
    bufs.push_back(procs[static_cast<std::size_t>(r)]->alloc(
        kAllreduceCount * 8));
    std::vector<double> v(kAllreduceCount,
                          static_cast<double>(r % 7) * 0.5 + 1.0);
    procs[static_cast<std::size_t>(r)]->write_bytes(
        bufs.back(), std::as_bytes(std::span(v)));
  }

  for (int r = 0; r < n; ++r) {
    sim::spawn([](coll::Coll& c, Op o) -> sim::CoTask<void> {
      int rc = ptl::PTL_OK;
      switch (o) {
        case Op::kBarrierDissem:
          rc = co_await c.prepare_barrier(coll::BarrierAlgo::kDissemination);
          break;
        case Op::kBarrierTree:
          rc = co_await c.prepare_barrier(coll::BarrierAlgo::kTree);
          break;
        case Op::kAllreduceRecDbl:
          rc = co_await c.prepare_allreduce(
              coll::AllreduceAlgo::kRecursiveDoubling, kAllreduceCount);
          break;
        case Op::kAllreduceTree:
          rc = co_await c.prepare_allreduce(coll::AllreduceAlgo::kTree,
                                            kAllreduceCount);
          break;
      }
      if (rc != ptl::PTL_OK) throw std::runtime_error("prepare failed");
    }(*colls[static_cast<std::size_t>(r)], op));
  }
  m.run();

  auto fires = [&] {
    std::uint64_t s = 0;
    for (net::NodeId i = 0; i < m.node_count(); ++i) {
      s += m.node(i).firmware().counters().triggered_fires;
    }
    return s;
  };
  auto interrupts = [&] {
    std::uint64_t s = 0;
    for (net::NodeId i = 0; i < m.node_count(); ++i) {
      s += m.node(i).firmware().counters().interrupts;
    }
    return s;
  };

  const int iters = quick ? 2 : 3;  // first is warmup
  const std::uint64_t irq0 = interrupts();
  const std::uint64_t fires0 = fires();
  double measured_us = 0;
  int measured = 0;
  for (int it = 0; it < iters; ++it) {
    const sim::Time t0 = m.engine().now();
    for (int r = 0; r < n; ++r) {
      sim::spawn([](coll::Coll& c, Op o, std::uint64_t b) -> sim::CoTask<void> {
        int rc = ptl::PTL_OK;
        switch (o) {
          case Op::kBarrierDissem:
            rc = co_await c.barrier(coll::BarrierAlgo::kDissemination);
            break;
          case Op::kBarrierTree:
            rc = co_await c.barrier(coll::BarrierAlgo::kTree);
            break;
          case Op::kAllreduceRecDbl:
            rc = co_await c.allreduce(coll::AllreduceAlgo::kRecursiveDoubling,
                                      b, kAllreduceCount);
            break;
          case Op::kAllreduceTree:
            rc = co_await c.allreduce(coll::AllreduceAlgo::kTree, b,
                                      kAllreduceCount);
            break;
        }
        if (rc != ptl::PTL_OK) throw std::runtime_error("collective failed");
      }(*colls[static_cast<std::size_t>(r)], op,
        bufs[static_cast<std::size_t>(r)]));
    }
    m.run();
    if (it > 0) {
      measured_us += (m.engine().now() - t0).to_us();
      ++measured;
    }
    for (int r = 0; r < n; ++r) {
      sim::spawn([](coll::Coll& c) -> sim::CoTask<void> {
        if (co_await c.rearm_iteration() != ptl::PTL_OK) {
          throw std::runtime_error("rearm failed");
        }
      }(*colls[static_cast<std::size_t>(r)]));
    }
    m.run();
  }

  Row row;
  row.op = op;
  row.mode = mode;
  row.n = n;
  row.usec = measured_us / measured;
  row.interrupts = interrupts() - irq0;
  row.fires = fires() - fires0;
  row.sram_footprint = colls[0]->sram_footprint();
  row.sram_used = m.node(0).nic().sram().used();
  if (want_metrics) row.metrics_json = m.engine().metrics().to_json();
  if (want_trace) {
    row.trace_records = tr.records();
    m.engine().set_trace(nullptr);
  }
  if (mode == coll::Mode::kOffload && row.interrupts != 0) {
    throw std::runtime_error(sim::strf(
        "offload %s n=%d took %llu host interrupts (want 0)", op_str(op), n,
        static_cast<unsigned long long>(row.interrupts)));
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::BenchOptions o = harness::BenchOptions::parse(argc, argv);

  const int max_n = o.quick ? 64 : 4096;
  std::vector<int> sizes;
  for (int n = 2; n <= max_n; n *= 2) sizes.push_back(n);
  const std::vector<Op> ops = {Op::kBarrierDissem, Op::kBarrierTree,
                               Op::kAllreduceRecDbl, Op::kAllreduceTree};
  const std::vector<coll::Mode> modes = {coll::Mode::kHost,
                                         coll::Mode::kOffload};

  std::vector<std::function<Row()>> tasks;
  for (const Op op : ops) {
    for (const coll::Mode mode : modes) {
      for (const int n : sizes) {
        const bool quick = o.quick;
        const bool wm = !o.metrics_path.empty();
        const bool wt = !o.trace_path.empty();
        tasks.push_back([op, mode, n, quick, wm, wt] {
          return point(op, mode, n, quick, wm, wt);
        });
      }
    }
  }
  const auto rows = harness::SweepRunner(o.jobs).run(std::move(tasks));

  auto find = [&](Op op, coll::Mode mode, int n) -> const Row& {
    for (const Row& r : rows) {
      if (r.op == op && r.mode == mode && r.n == n) return r;
    }
    throw std::logic_error("missing sweep point");
  };

  std::printf("=== Collective scaling: host vs NIC-offloaded "
              "(triggered ops) ===\n");
  std::printf("\nbarrier: 8 B tokens; allreduce: %u doubles; latency is "
              "all-ranks completion,\naveraged over %d iterations after "
              "warmup\n",
              kAllreduceCount, o.quick ? 1 : 2);
  for (const Op op : ops) {
    std::printf("\n-- %s --\n", op_str(op));
    std::printf("  %6s %12s %12s %10s %10s\n", "ranks", "host us",
                "offload us", "speedup", "nic fires");
    int crossover = 0;
    for (const int n : sizes) {
      const Row& h = find(op, coll::Mode::kHost, n);
      const Row& f = find(op, coll::Mode::kOffload, n);
      std::printf("  %6d %12.3f %12.3f %9.2fx %10llu\n", n, h.usec, f.usec,
                  h.usec / f.usec,
                  static_cast<unsigned long long>(f.fires));
      if (crossover == 0 && f.usec < h.usec) crossover = n;
    }
    if (crossover != 0) {
      std::printf("  crossover: offload wins from n=%d\n", crossover);
    } else {
      std::printf("  crossover: host wins across the swept range\n");
    }
  }

  const Row& any = find(ops[0], coll::Mode::kOffload, sizes[0]);
  std::printf("\nfirmware SRAM for offload machinery: %zu B per process "
              "(counter + trigger\ntables) of the %d KB SeaStar SRAM; "
              "node total in use: %zu B\n",
              any.sram_footprint, 384, any.sram_used);
  std::printf("every offload point completed with 0 host interrupts\n");

  if (!o.json_path.empty()) {
    std::string j = "{\n  \"bench\": \"coll_scaling\",\n  \"transport\": \"sim\",\n";
    j += sim::strf("  \"jobs\": %d,\n", o.jobs);
    j += sim::strf("  \"allreduce_count\": %u,\n", kAllreduceCount);
    j += sim::strf("  \"sram_footprint_bytes\": %zu,\n", any.sram_footprint);
    j += sim::strf("  \"sram_budget_bytes\": %zu,\n",
                   static_cast<std::size_t>(384 * 1024));
    j += "  \"series\": [\n";
    bool first = true;
    for (const Op op : ops) {
      for (const coll::Mode mode : modes) {
        if (!first) j += ",\n";
        first = false;
        j += sim::strf("    {\"op\": \"%s\", \"mode\": \"%s\", \"points\": [",
                       op_str(op), coll::mode_str(mode));
        for (std::size_t i = 0; i < sizes.size(); ++i) {
          const Row& r = find(op, mode, sizes[i]);
          j += sim::strf("%s\n      {\"ranks\": %d, \"usec\": %.3f, "
                         "\"interrupts\": %llu, \"nic_fires\": %llu}",
                         i == 0 ? "" : ",", r.n, r.usec,
                         static_cast<unsigned long long>(r.interrupts),
                         static_cast<unsigned long long>(r.fires));
        }
        j += "\n    ]}";
      }
    }
    j += "\n  ]\n}\n";
    if (!harness::write_text_file(o.json_path, j)) return 1;
  }

  if (!o.metrics_path.empty() || !o.trace_path.empty()) {
    // Merge the per-point registries/timelines through the harness
    // helpers; points are named "op/mode/nN" so the exports stay
    // self-describing (and byte-identical for any --jobs).
    std::vector<harness::SeriesResult> series;
    for (const Op op : ops) {
      for (const coll::Mode mode : modes) {
        for (const int n : sizes) {
          const Row& r = find(op, mode, n);
          harness::SeriesResult s;
          s.name = sim::strf("%s/%s/n%d", op_str(op), coll::mode_str(mode),
                             r.n);
          s.pattern = np::Pattern::kPingPong;
          s.metrics_json = r.metrics_json;
          s.trace_records = r.trace_records;
          series.push_back(std::move(s));
        }
      }
    }
    if (!o.metrics_path.empty() &&
        !harness::write_text_file(
            o.metrics_path, harness::metrics_json("coll_scaling", series))) {
      return 1;
    }
    if (!o.trace_path.empty() &&
        !harness::write_text_file(o.trace_path,
                                  harness::merged_trace_json(series))) {
      return 1;
    }
  }
  return 0;
}
