// Ablation — latency across the torus (§1, §2).
//
// The XT3/Red Storm network requirements were an MPI one-way latency of
// 2 us between nearest neighbors and 5 us between the two furthest nodes —
// i.e. per-hop cost must be tiny compared to endpoint cost.  This bench
// measures Portals put latency from a corner node to targets at increasing
// hop distance on a Red Storm-shaped mesh/torus and fits the per-hop cost.
// It also shows why the paper says interrupts must go: generic mode's
// endpoint cost alone (~5.4 us) already exceeds the whole-machine budget,
// while accelerated mode gets back under it.

#include <cstdio>
#include <functional>
#include <vector>

#include "harness/options.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "portals/api.hpp"
#include "sim/strf.hpp"

namespace {

using namespace xt;
using ptl::AckReq;
using ptl::EventType;
using ptl::InsPos;
using ptl::MdDesc;
using ptl::ProcessId;
using ptl::Unlink;
using sim::CoTask;

constexpr ptl::Pid kPid = 12;

/// One-way 1-byte put latency from node 0 to `dst` (ping-pong halved),
/// on a fresh self-contained machine.
double one_way_us(const net::Shape& shape, net::NodeId dst, bool accel,
                  std::uint64_t seed) {
  const host::ProcMode mode =
      accel ? host::ProcMode::kAccel : host::ProcMode::kUser;
  auto inst = harness::Scenario{}
                  .with_shape(shape)
                  .with_seed(seed)
                  .add_proc(0, kPid, 64u << 20, mode)
                  .add_proc(dst, kPid, 64u << 20, mode)
                  .build();
  host::Process& a = inst->proc(0);
  host::Process& b = inst->proc(1);
  constexpr int kIters = 8;
  sim::Time elapsed{};
  bool done = false;

  auto side = [](host::Process& p, ProcessId peer, bool first, int iters,
                 sim::Time* out, bool* dn) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(256);
    auto me = co_await api.PtlMEAttach(
        0, ProcessId{ptl::kNidAny, ptl::kPidAny}, 5, 0, Unlink::kRetain,
        InsPos::kAfter);
    MdDesc rd;
    rd.start = p.alloc(8);
    rd.length = 1;
    rd.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE;
    rd.eq = eq.value;
    (void)co_await api.PtlMDAttach(me.value, rd, Unlink::kRetain);
    MdDesc ld;
    ld.start = p.alloc(8);
    ld.length = 1;
    ld.eq = eq.value;
    auto md = co_await api.PtlMDBind(ld, Unlink::kRetain);
    const sim::Time start = p.node().engine().now();
    for (int i = 0; i < iters; ++i) {
      if (first) {
        (void)co_await api.PtlPut(md.value, AckReq::kNone, peer, 0, 0, 5, 0,
                                  0);
      }
      for (;;) {
        auto ev = co_await api.PtlEQWait(eq.value);
        if (ev.value.type == EventType::kPutEnd) break;
      }
      if (!first) {
        (void)co_await api.PtlPut(md.value, AckReq::kNone, peer, 0, 0, 5, 0,
                                  0);
      }
    }
    if (out != nullptr) {
      *out = p.node().engine().now() - start;
      *dn = true;
    }
  };

  sim::spawn(side(a, b.id(), true, kIters, nullptr, nullptr));
  sim::spawn(side(b, a.id(), false, kIters, &elapsed, &done));
  inst->run();
  if (!done) return -1;
  return elapsed.to_us() / (2.0 * kIters);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xt;
  const harness::BenchOptions o = harness::BenchOptions::parse(argc, argv);

  // A Red Storm-flavored slice: mesh in X and Y, torus in Z.
  const net::Shape shape = net::Shape::red_storm(8, 4, 4);
  std::printf("=== Ablation: latency across the torus (%dx%dx%d, torus in "
              "Z only) ===\n\n",
              shape.nx, shape.ny, shape.nz);

  // Targets at increasing dimension-order distance from node 0; each
  // (target, mode) point is a self-contained machine, fanned across
  // workers.
  const net::Coord targets[] = {{1, 0, 0}, {4, 0, 0}, {7, 0, 0},
                                {7, 3, 0}, {7, 3, 2}, {7, 3, 1}};
  std::vector<std::function<double()>> tasks;
  std::uint64_t seed = o.seed;
  for (const auto c : targets) {
    const net::NodeId dst = shape.to_id(c);
    for (const bool accel : {false, true}) {
      const std::uint64_t s = seed++;
      tasks.push_back(
          [shape, dst, accel, s] { return one_way_us(shape, dst, accel, s); });
    }
  }
  const auto us = harness::SweepRunner(o.jobs).run(std::move(tasks));

  std::printf("  %-12s %6s %14s %14s\n", "target", "hops", "generic us",
              "accel us");
  double g1 = 0, gmax = 0;
  int h1 = 1, hmax = 1;
  std::string json = "{\n  \"ablation\": \"topology\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < std::size(targets); ++i) {
    const net::Coord c = targets[i];
    const net::NodeId dst = shape.to_id(c);
    const int hops = net::hop_count(shape, 0, dst);
    const double g = us[2 * i];
    const double a = us[2 * i + 1];
    std::printf("  (%2d,%2d,%2d)   %6d %14.3f %14.3f\n", c.x, c.y, c.z,
                hops, g, a);
    json += sim::strf("    {\"hops\": %d, \"generic_us\": %.3f, "
                      "\"accel_us\": %.3f}%s\n",
                      hops, g, a, i + 1 < std::size(targets) ? "," : "");
    if (hops == 1) {
      g1 = g;
      h1 = hops;
    }
    if (hops > hmax) {
      hmax = hops;
      gmax = g;
    }
  }
  json += "  ]\n}\n";
  const double per_hop = (gmax - g1) / (hmax - h1);
  std::printf("\n  fitted per-hop cost: %.0f ns/hop — endpoint processing "
              "dominates the wire\n",
              per_hop * 1000.0);
  std::printf("  XT3 requirement: 2 us nearest / 5 us furthest.  Generic "
              "mode misses it on\n  endpoint cost alone (the paper: "
              "\"it will be necessary to eliminate all\n  interrupts from "
              "the data path\"); accelerated mode comes back within "
              "reach.\n");

  if (!o.json_path.empty() &&
      !harness::write_text_file(o.json_path, json)) {
    return 1;
  }
  return 0;
}
