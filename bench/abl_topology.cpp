// Ablation — latency across the torus (§1, §2).
//
// The XT3/Red Storm network requirements were an MPI one-way latency of
// 2 us between nearest neighbors and 5 us between the two furthest nodes —
// i.e. per-hop cost must be tiny compared to endpoint cost.  This bench
// measures Portals put latency from a corner node to targets at increasing
// hop distance on a Red Storm-shaped mesh/torus and fits the per-hop cost.
// It also shows why the paper says interrupts must go: generic mode's
// endpoint cost alone (~5.4 us) already exceeds the whole-machine budget,
// while accelerated mode gets back under it.

#include <cstdio>
#include <vector>

#include "host/node.hpp"
#include "portals/api.hpp"

namespace {

using namespace xt;
using ptl::AckReq;
using ptl::EventType;
using ptl::InsPos;
using ptl::MdDesc;
using ptl::ProcessId;
using ptl::Unlink;
using sim::CoTask;

constexpr ptl::Pid kPid = 12;

/// One-way 1-byte put latency from node 0 to `dst` (ping-pong halved).
double one_way_us(host::Machine& m, net::NodeId dst, bool accel) {
  host::Node& n0 = m.node(0);
  host::Node& nd = m.node(dst);
  host::Process& a =
      accel ? n0.spawn_accel_process(kPid) : n0.spawn_process(kPid);
  host::Process& b =
      accel ? nd.spawn_accel_process(kPid) : nd.spawn_process(kPid);
  constexpr int kIters = 8;
  sim::Time elapsed{};
  bool done = false;

  auto side = [](host::Process& p, ProcessId peer, bool first, int iters,
                 sim::Time* out, bool* dn) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(256);
    auto me = co_await api.PtlMEAttach(
        0, ProcessId{ptl::kNidAny, ptl::kPidAny}, 5, 0, Unlink::kRetain,
        InsPos::kAfter);
    MdDesc rd;
    rd.start = p.alloc(8);
    rd.length = 1;
    rd.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE;
    rd.eq = eq.value;
    (void)co_await api.PtlMDAttach(me.value, rd, Unlink::kRetain);
    MdDesc ld;
    ld.start = p.alloc(8);
    ld.length = 1;
    ld.eq = eq.value;
    auto md = co_await api.PtlMDBind(ld, Unlink::kRetain);
    const sim::Time start = p.node().engine().now();
    for (int i = 0; i < iters; ++i) {
      if (first) {
        (void)co_await api.PtlPut(md.value, AckReq::kNone, peer, 0, 0, 5, 0,
                                  0);
      }
      for (;;) {
        auto ev = co_await api.PtlEQWait(eq.value);
        if (ev.value.type == EventType::kPutEnd) break;
      }
      if (!first) {
        (void)co_await api.PtlPut(md.value, AckReq::kNone, peer, 0, 0, 5, 0,
                                  0);
      }
    }
    if (out != nullptr) {
      *out = p.node().engine().now() - start;
      *dn = true;
    }
  };

  sim::spawn(side(a, b.id(), true, kIters, nullptr, nullptr));
  sim::spawn(side(b, a.id(), false, kIters, &elapsed, &done));
  m.run();
  if (!done) return -1;
  return elapsed.to_us() / (2.0 * kIters);
}

}  // namespace

int main() {
  // A Red Storm-flavored slice: mesh in X and Y, torus in Z.
  const net::Shape shape = net::Shape::red_storm(8, 4, 4);
  std::printf("=== Ablation: latency across the torus (%dx%dx%d, torus in "
              "Z only) ===\n\n",
              shape.nx, shape.ny, shape.nz);

  // Targets at increasing dimension-order distance from node 0.
  const net::Coord targets[] = {{1, 0, 0}, {4, 0, 0}, {7, 0, 0},
                                {7, 3, 0}, {7, 3, 2}, {7, 3, 1}};
  std::printf("  %-12s %6s %14s %14s\n", "target", "hops", "generic us",
              "accel us");
  double g1 = 0, gmax = 0;
  int h1 = 1, hmax = 1;
  for (const auto c : targets) {
    const net::NodeId dst = shape.to_id(c);
    const int hops = net::hop_count(shape, 0, dst);
    host::Machine mg(shape);
    const double g = one_way_us(mg, dst, false);
    host::Machine ma(shape);
    const double a = one_way_us(ma, dst, true);
    std::printf("  (%2d,%2d,%2d)   %6d %14.3f %14.3f\n", c.x, c.y, c.z,
                hops, g, a);
    if (hops == 1) {
      g1 = g;
      h1 = hops;
    }
    if (hops > hmax) {
      hmax = hops;
      gmax = g;
    }
  }
  const double per_hop = (gmax - g1) / (hmax - h1);
  std::printf("\n  fitted per-hop cost: %.0f ns/hop — endpoint processing "
              "dominates the wire\n",
              per_hop * 1000.0);
  std::printf("  XT3 requirement: 2 us nearest / 5 us furthest.  Generic "
              "mode misses it on\n  endpoint cost alone (the paper: "
              "\"it will be necessary to eliminate all\n  interrupts from "
              "the data path\"); accelerated mode comes back within "
              "reach.\n");
  return 0;
}
