// Figure 5 — uni-directional (ping-pong) bandwidth, 1 B .. 8 MB.
//
// Paper anchors: put tops out at 1108.76 MB/s for an 8 MB message;
// half-bandwidth is reached around a 7 KB message; both MPI
// implementations sit slightly below raw put.

#include <cstdio>

#include "harness/netpipe_bench.hpp"

int main(int argc, char** argv) {
  using namespace xt;
  const harness::FigureSpec spec{"Figure 5", "uni-directional bandwidth",
                                 np::Pattern::kPingPong, 8u << 20};
  const int rc = harness::run_figure(spec, argc, argv);

  std::printf("--- paper anchors: put peak 1108.76 MB/s @ 8 MB; "
              "half-bandwidth near 7 KB; MPI slightly below put\n");
  return rc;
}
