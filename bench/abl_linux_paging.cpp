// Ablation — Catamount vs Linux memory handling (§3.3).
//
// "Under Linux, the host is responsible for pinning physical pages,
// finding appropriate virtual to physical mappings for each page, and
// pushing all of these mappings to the network interface.  In contrast,
// Catamount maps virtually contiguous pages to physically contiguous
// pages ... a single command is sufficient."  This bench measures the
// put path under both operating systems and reports the per-page cost
// visible in latency and bandwidth.

#include <cstdio>
#include <functional>
#include <vector>

#include "harness/netpipe_bench.hpp"
#include "harness/sweep.hpp"

namespace {

using namespace xt;

std::vector<np::Sample> sweep(host::OsType os, const np::Options& o,
                              std::uint64_t seed) {
  ss::Config cfg;
  cfg.net.seed = seed;
  auto inst = harness::Scenario::pair()
                  .with_config(cfg)
                  .with_os(os)
                  .build();
  auto mod = np::make_portals_module(inst->proc(0), inst->proc(1),
                                     /*use_get=*/false);
  return np::run_sweep(inst->machine(), *mod, np::Pattern::kPingPong, o);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xt;
  harness::BenchOptions o = harness::BenchOptions::parse(argc, argv, 1u << 20);
  o.np.perturbation = 0;

  std::printf("=== Ablation: Catamount vs Linux send/receive path ===\n\n");
  std::vector<std::function<std::vector<np::Sample>()>> tasks;
  tasks.push_back(
      [o] { return sweep(host::OsType::kCatamount, o.np, o.seed); });
  tasks.push_back(
      [o] { return sweep(host::OsType::kLinux, o.np, o.seed + 1); });
  const auto results = harness::SweepRunner(o.jobs).run(std::move(tasks));
  const auto& cat = results[0];
  const auto& lin = results[1];

  std::printf("  %10s %16s %16s %12s %10s\n", "bytes", "catamount us",
              "linux us", "overhead us", "pages");
  const ss::Config cfg;
  for (std::size_t i = 0; i < cat.size(); ++i) {
    const std::size_t pages =
        (cat[i].bytes + cfg.linux_page_size - 1) / cfg.linux_page_size;
    std::printf("  %10zu %16.3f %16.3f %12.3f %10zu\n", cat[i].bytes,
                cat[i].usec_per_transfer, lin[i].usec_per_transfer,
                lin[i].usec_per_transfer - cat[i].usec_per_transfer, pages);
  }
  std::printf("\n  expected: identical until the message spans multiple "
              "4 KB pages; beyond\n  that Linux pays trap-cost and "
              "per-page pinning/translation plus per-DMA-command\n"
              "  firmware work on both sides, growing with the page "
              "count\n");

  if (!o.json_path.empty()) {
    std::vector<harness::SeriesResult> series(2);
    series[0].name = "catamount";
    series[0].pattern = np::Pattern::kPingPong;
    series[0].samples = cat;
    series[1].name = "linux";
    series[1].pattern = np::Pattern::kPingPong;
    series[1].samples = lin;
    if (!harness::write_series_json(o.json_path,
                                    "Ablation: Catamount vs Linux", o.jobs,
                                    series)) {
      return 1;
    }
  }
  return 0;
}
