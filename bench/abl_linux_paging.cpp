// Ablation — Catamount vs Linux memory handling (§3.3).
//
// "Under Linux, the host is responsible for pinning physical pages,
// finding appropriate virtual to physical mappings for each page, and
// pushing all of these mappings to the network interface.  In contrast,
// Catamount maps virtually contiguous pages to physically contiguous
// pages ... a single command is sufficient."  This bench measures the
// put path under both operating systems and reports the per-page cost
// visible in latency and bandwidth.

#include <cstdio>

#include "netpipe/netpipe.hpp"

namespace {

using namespace xt;

std::vector<np::Sample> sweep(host::OsType os, const np::Options& o) {
  ss::Config cfg;
  host::Machine m(net::Shape::xt3(2, 1, 1), cfg,
                  [os](net::NodeId) { return os; });
  host::Process& a = m.node(0).spawn_process(10, 64u << 20);
  host::Process& b = m.node(1).spawn_process(10, 64u << 20);
  auto mod = np::make_portals_module(a, b, false);
  return np::run_sweep(m, *mod, np::Pattern::kPingPong, o);
}

}  // namespace

int main() {
  using namespace xt;
  np::Options o;
  o.max_bytes = 1 << 20;
  o.perturbation = 0;

  std::printf("=== Ablation: Catamount vs Linux send/receive path ===\n\n");
  const auto cat = sweep(host::OsType::kCatamount, o);
  const auto lin = sweep(host::OsType::kLinux, o);

  std::printf("  %10s %16s %16s %12s %10s\n", "bytes", "catamount us",
              "linux us", "overhead us", "pages");
  const ss::Config cfg;
  for (std::size_t i = 0; i < cat.size(); ++i) {
    const std::size_t pages =
        (cat[i].bytes + cfg.linux_page_size - 1) / cfg.linux_page_size;
    std::printf("  %10zu %16.3f %16.3f %12.3f %10zu\n", cat[i].bytes,
                cat[i].usec_per_transfer, lin[i].usec_per_transfer,
                lin[i].usec_per_transfer - cat[i].usec_per_transfer, pages);
  }
  std::printf("\n  expected: identical until the message spans multiple "
              "4 KB pages; beyond\n  that Linux pays trap-cost and "
              "per-page pinning/translation plus per-DMA-command\n"
              "  firmware work on both sides, growing with the page "
              "count\n");
  return 0;
}
