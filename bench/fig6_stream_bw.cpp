// Figure 6 — streaming (uni-directional, pipelined) bandwidth.
//
// Paper anchors: steeper than the ping-pong curve, half-bandwidth around
// 5 KB, and a much lower curve for get, "a blocking operation (for this
// benchmark) that cannot be pipelined".

#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace xt;
  np::Options o = bench::parse_options(argc, argv, 8 * 1024 * 1024);
  bench::run_figure("Figure 6", "streaming bandwidth", np::Pattern::kStream,
                    o);

  std::printf("--- paper anchors: steeper curve than Figure 5 "
              "(half-bandwidth ~5 KB); get far below put (unpipelined)\n");
  return 0;
}
