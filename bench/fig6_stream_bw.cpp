// Figure 6 — streaming (uni-directional, pipelined) bandwidth.
//
// Paper anchors: steeper than the ping-pong curve, half-bandwidth around
// 5 KB, and a much lower curve for get, "a blocking operation (for this
// benchmark) that cannot be pipelined".

#include <cstdio>

#include "harness/netpipe_bench.hpp"

int main(int argc, char** argv) {
  using namespace xt;
  const harness::FigureSpec spec{"Figure 6", "streaming bandwidth",
                                 np::Pattern::kStream, 8u << 20};
  const int rc = harness::run_figure(spec, argc, argv);

  std::printf("--- paper anchors: steeper curve than Figure 5 "
              "(half-bandwidth ~5 KB); get far below put (unpipelined)\n");
  return rc;
}
