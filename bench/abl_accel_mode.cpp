// Ablation — generic vs accelerated mode (§3.3, §4.1).
//
// The paper: "In the future ... Much of the Portals library functionality,
// including matching, will be offloaded to the SeaStar firmware ... both
// interrupts will be eliminated".  This bench runs the same NetPIPE sweeps
// with generic-mode processes (host matching, interrupt-driven) and
// accelerated-mode processes (firmware matching, polled events) and prints
// both, quantifying what the offload buys.

#include <algorithm>
#include <cstdio>

#include "netpipe/netpipe.hpp"

namespace {

using namespace xt;

std::vector<np::Sample> sweep(bool accel, np::Pattern pattern,
                              const np::Options& o) {
  host::Machine m(net::Shape::xt3(2, 1, 1));
  host::Process& a = accel
                         ? m.node(0).spawn_accel_process(10, 64u << 20)
                         : m.node(0).spawn_process(10, 64u << 20);
  host::Process& b = accel
                         ? m.node(1).spawn_accel_process(10, 64u << 20)
                         : m.node(1).spawn_process(10, 64u << 20);
  auto mod = np::make_portals_module(a, b, /*use_get=*/false);
  return np::run_sweep(m, *mod, pattern, o);
}

}  // namespace

int main() {
  using namespace xt;
  np::Options o;
  o.max_bytes = 1 << 20;

  std::printf("=== Ablation: generic vs accelerated mode (put) ===\n\n");
  const auto gen_pp = sweep(false, np::Pattern::kPingPong, o);
  const auto acc_pp = sweep(true, np::Pattern::kPingPong, o);

  std::printf("  %10s %14s %14s %9s\n", "bytes", "generic us", "accel us",
              "speedup");
  for (std::size_t i = 0; i < gen_pp.size(); ++i) {
    std::printf("  %10zu %14.3f %14.3f %8.2fx\n", gen_pp[i].bytes,
                gen_pp[i].usec_per_transfer, acc_pp[i].usec_per_transfer,
                gen_pp[i].usec_per_transfer / acc_pp[i].usec_per_transfer);
  }

  // Half-bandwidth crossover for both modes, interpolated against the
  // asymptotic DMA-limited rate.
  auto half_point = [](const std::vector<np::Sample>& s) -> double {
    double plateau = 0;
    for (const auto& x : s) plateau = std::max(plateau, x.mbytes_per_sec);
    const double half = plateau / 2;
    for (std::size_t i = 1; i < s.size(); ++i) {
      if (s[i].mbytes_per_sec >= half && s[i - 1].mbytes_per_sec < half) {
        const double f = (half - s[i - 1].mbytes_per_sec) /
                         (s[i].mbytes_per_sec - s[i - 1].mbytes_per_sec);
        return static_cast<double>(s[i - 1].bytes) +
               f * static_cast<double>(s[i].bytes - s[i - 1].bytes);
      }
    }
    return static_cast<double>(s.back().bytes);
  };
  std::printf("\n  half-bandwidth message size: generic ~%.0f B, "
              "accelerated ~%.0f B\n",
              half_point(gen_pp), half_point(acc_pp));
  std::printf("  (the paper: \"we expect a dramatic decrease in the point "
              "at which half\n   bandwidth is achieved as processing is "
              "offloaded ... and the costly\n   interrupt latency is "
              "eliminated\")\n");
  return 0;
}
