// Ablation — generic vs accelerated mode (§3.3, §4.1).
//
// The paper: "In the future ... Much of the Portals library functionality,
// including matching, will be offloaded to the SeaStar firmware ... both
// interrupts will be eliminated".  This bench runs the same NetPIPE sweeps
// with generic-mode processes (host matching, interrupt-driven) and
// accelerated-mode processes (firmware matching, polled events) and prints
// both, quantifying what the offload buys.

#include <algorithm>
#include <cstdio>

#include "harness/netpipe_bench.hpp"

int main(int argc, char** argv) {
  using namespace xt;
  const harness::BenchOptions o =
      harness::BenchOptions::parse(argc, argv, 1u << 20);
  ss::Config cfg;
  cfg.net.seed = o.seed;

  std::printf("=== Ablation: generic vs accelerated mode (put) ===\n\n");
  const auto series = harness::measure_series(
      {np::Transport::kPut, np::Transport::kPutAccel}, np::Pattern::kPingPong,
      o.np, cfg, o.jobs);
  const auto& gen_pp = series[0].samples;
  const auto& acc_pp = series[1].samples;

  std::printf("  %10s %14s %14s %9s\n", "bytes", "generic us", "accel us",
              "speedup");
  for (std::size_t i = 0; i < gen_pp.size(); ++i) {
    std::printf("  %10zu %14.3f %14.3f %8.2fx\n", gen_pp[i].bytes,
                gen_pp[i].usec_per_transfer, acc_pp[i].usec_per_transfer,
                gen_pp[i].usec_per_transfer / acc_pp[i].usec_per_transfer);
  }

  // Half-bandwidth crossover for both modes, interpolated against the
  // asymptotic DMA-limited rate.
  auto half_point = [](const std::vector<np::Sample>& s) -> double {
    double plateau = 0;
    for (const auto& x : s) plateau = std::max(plateau, x.mbytes_per_sec);
    const double half = plateau / 2;
    for (std::size_t i = 1; i < s.size(); ++i) {
      if (s[i].mbytes_per_sec >= half && s[i - 1].mbytes_per_sec < half) {
        const double f = (half - s[i - 1].mbytes_per_sec) /
                         (s[i].mbytes_per_sec - s[i - 1].mbytes_per_sec);
        return static_cast<double>(s[i - 1].bytes) +
               f * static_cast<double>(s[i].bytes - s[i - 1].bytes);
      }
    }
    return static_cast<double>(s.back().bytes);
  };
  std::printf("\n  half-bandwidth message size: generic ~%.0f B, "
              "accelerated ~%.0f B\n",
              half_point(gen_pp), half_point(acc_pp));
  std::printf("  (the paper: \"we expect a dramatic decrease in the point "
              "at which half\n   bandwidth is achieved as processing is "
              "offloaded ... and the costly\n   interrupt latency is "
              "eliminated\")\n");

  if (!o.json_path.empty() &&
      !harness::write_series_json(o.json_path, "Ablation: accelerated mode",
                                  o.jobs, series)) {
    return 1;
  }
  return 0;
}
