// Figure 7 — bi-directional bandwidth.
//
// Paper anchors: put tops out at 2203.19 MB/s for 8 MB messages — about
// twice the uni-directional rate, demonstrating that the SeaStar's
// independent send and receive DMA engines sustain full duplex.

#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace xt;
  np::Options o = bench::parse_options(argc, argv, 8 * 1024 * 1024);
  bench::run_figure("Figure 7", "bi-directional bandwidth",
                    np::Pattern::kBidir, o);

  std::printf("--- paper anchors: put peak 2203.19 MB/s @ 8 MB "
              "(~2x uni-directional: independent Tx/Rx DMA engines)\n");
  return 0;
}
