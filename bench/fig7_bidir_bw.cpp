// Figure 7 — bi-directional bandwidth.
//
// Paper anchors: put tops out at 2203.19 MB/s for 8 MB messages — about
// twice the uni-directional rate, demonstrating that the SeaStar's
// independent send and receive DMA engines sustain full duplex.

#include <cstdio>

#include "harness/netpipe_bench.hpp"

int main(int argc, char** argv) {
  using namespace xt;
  const harness::FigureSpec spec{"Figure 7", "bi-directional bandwidth",
                                 np::Pattern::kBidir, 8u << 20};
  const int rc = harness::run_figure(spec, argc, argv);

  std::printf("--- paper anchors: put peak 2203.19 MB/s @ 8 MB "
              "(~2x uni-directional: independent Tx/Rx DMA engines)\n");
  return rc;
}
