// App-level one-sided workloads over the conduit (src/conduit).
//
// Two scenarios, both pure put/get against remote segments:
//
//   stencil  3D halo exchange on the torus — a rank ladder reports
//            iterations/s and the boundary-exchange latency (one sample
//            per rank per iteration: puts issued, local completion,
//            deposit count reached).
//   kv       parameter-server traffic — closed-loop clients against
//            passive value tables, an outstanding-window ladder reports
//            ops/s and per-op RTT percentiles (puts ride the Portals ack,
//            gets the reply).
//
// Each point runs in its own Instance, so points fan out across --jobs
// workers with byte-identical output for any --jobs value.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "harness/options.hpp"
#include "harness/sweep.hpp"
#include "sim/strf.hpp"
#include "workload/generator.hpp"
#include "workload/oneside.hpp"

namespace {

using namespace xt;

struct ModeConfig {
  const char* name;
  host::ProcMode mode;
};

double us(std::uint64_t ps) { return static_cast<double>(ps) * 1e-6; }

double per_sec(std::uint64_t n, sim::Time span) {
  const double s = static_cast<double>(span.to_ps()) * 1e-12;
  return s <= 0.0 ? 0.0 : static_cast<double>(n) / s;
}

workload::WorkloadResult run_point(const workload::WorkloadSpec& spec,
                                   host::ProcMode mode) {
  const harness::Scenario sc =
      workload::workload_scenario(spec, mode, {}, spec.seed);
  const auto inst = sc.build();
  return workload::run_workload(*inst, spec);
}

std::string point_json(const char* cfg, const workload::WorkloadSpec& spec,
                       const workload::WorkloadResult& r, double rate,
                       const char* rate_key) {
  return sim::strf(
      "{\"complete\": %s, \"config\": \"%s\", \"delivered\": %llu, "
      "\"failure\": \"%s\", \"outstanding\": %d, "
      "\"p50_us\": %.3f, \"p99_us\": %.3f, \"ranks\": %d, "
      "\"%s\": %.1f}",
      r.complete ? "true" : "false", cfg,
      static_cast<unsigned long long>(r.delivered), r.failure.c_str(),
      spec.outstanding, us(r.percentile_ps(50)), us(r.percentile_ps(99)),
      spec.ranks, rate_key, rate);
}

}  // namespace

int main(int argc, char** argv) {
  const harness::BenchOptions o = harness::BenchOptions::parse(argc, argv);
  const harness::SweepRunner runner(o.jobs);
  int rc = 0;

  const std::vector<ModeConfig> modes = {
      {"generic", host::ProcMode::kUser},
      {"accel", host::ProcMode::kAccel},
  };

  // ---------------------------------------------------------- stencil --
  const int iters = o.quick ? 20 : 100;
  std::vector<int> rank_ladder = o.quick ? std::vector<int>{4, 8}
                                         : std::vector<int>{4, 8, 16};
  if (o.ranks > 0) rank_ladder = {o.ranks};

  std::printf("=== Conduit stencil: 3D halo exchange, %d iterations, "
              "4 KB faces ===\n\n", iters);
  std::printf("   %-8s %6s %14s %12s %12s\n", "config", "ranks", "iters/s",
              "exch p50 us", "exch p99 us");

  std::string stencil_json;
  for (const ModeConfig& mc : modes) {
    std::vector<workload::WorkloadSpec> specs;
    for (int ranks : rank_ladder) {
      workload::WorkloadSpec ws;
      ws.pattern = workload::PatternKind::kStencil;
      ws.ranks = ranks;
      ws.bytes = 4096;
      ws.msgs_per_sender = iters;
      ws.seed = o.seed;
      specs.push_back(ws);
    }
    std::vector<std::function<workload::WorkloadResult()>> tasks;
    for (const workload::WorkloadSpec& ws : specs) {
      tasks.emplace_back([ws, &mc] { return run_point(ws, mc.mode); });
    }
    const std::vector<workload::WorkloadResult> results =
        runner.run(std::move(tasks));
    for (std::size_t i = 0; i < results.size(); ++i) {
      const workload::WorkloadResult& r = results[i];
      if (!r.complete) {
        std::printf("   %-8s %6d  FAILED: %s\n", mc.name, specs[i].ranks,
                    r.failure.c_str());
        rc = 1;
      } else {
        std::printf("   %-8s %6d %14.1f %12.3f %12.3f\n", mc.name,
                    specs[i].ranks,
                    per_sec(static_cast<std::uint64_t>(iters), r.span),
                    us(r.percentile_ps(50)), us(r.percentile_ps(99)));
      }
      if (!stencil_json.empty()) stencil_json += ",\n";
      stencil_json += "    " +
                      point_json(mc.name, specs[i], r,
                                 per_sec(static_cast<std::uint64_t>(iters),
                                         r.span),
                                 "iters_per_sec");
    }
  }
  std::printf("\n");

  // --------------------------------------------------------------- kv --
  const int kv_ranks = 8;
  const int kv_ops = o.quick ? 100 : 400;
  std::vector<int> windows = o.quick ? std::vector<int>{1, 4}
                                     : std::vector<int>{1, 2, 4, 8};
  if (o.outstanding > 0) windows = {o.outstanding};

  std::printf("=== Conduit KV: %d clients -> %d servers, %d ops/client, "
              "64 B values ===\n\n",
              kv_ranks - 2, 2, kv_ops);
  std::printf("   %-8s %11s %14s %12s %12s\n", "config", "outstanding",
              "ops/s", "rtt p50 us", "rtt p99 us");

  std::string kv_json;
  for (const ModeConfig& mc : modes) {
    std::vector<workload::WorkloadSpec> specs;
    for (int w : windows) {
      workload::WorkloadSpec ws;
      ws.pattern = workload::PatternKind::kKv;
      ws.ranks = kv_ranks;
      ws.bytes = 64;
      ws.msgs_per_sender = kv_ops;
      ws.outstanding = w;
      ws.seed = o.seed;
      specs.push_back(ws);
    }
    std::vector<std::function<workload::WorkloadResult()>> tasks;
    for (const workload::WorkloadSpec& ws : specs) {
      tasks.emplace_back([ws, &mc] { return run_point(ws, mc.mode); });
    }
    const std::vector<workload::WorkloadResult> results =
        runner.run(std::move(tasks));
    for (std::size_t i = 0; i < results.size(); ++i) {
      const workload::WorkloadResult& r = results[i];
      if (!r.complete) {
        std::printf("   %-8s %11d  FAILED: %s\n", mc.name,
                    specs[i].outstanding, r.failure.c_str());
        rc = 1;
      } else {
        std::printf("   %-8s %11d %14.1f %12.3f %12.3f\n", mc.name,
                    specs[i].outstanding, per_sec(r.delivered, r.span),
                    us(r.percentile_ps(50)), us(r.percentile_ps(99)));
      }
      if (!kv_json.empty()) kv_json += ",\n";
      kv_json += "    " + point_json(mc.name, specs[i], r,
                                     per_sec(r.delivered, r.span),
                                     "ops_per_sec");
    }
  }
  std::printf("\n%s\n", rc == 0 ? "CONDUIT BENCH PASSED"
                                : "CONDUIT BENCH FAILED");

  if (!o.json_path.empty()) {
    const std::string json = sim::strf(
        "{\n  \"bench\": \"conduit\",\n  \"git\": \"%s\",\n"
        "  \"kv\": [\n%s\n  ],\n  \"quick\": %s,\n  \"seed\": %llu,\n"
        "  \"stencil\": [\n%s\n  ]\n}\n",
        harness::git_describe(), kv_json.c_str(),
        o.quick ? "true" : "false",
        static_cast<unsigned long long>(o.seed), stencil_json.c_str());
    if (!harness::write_text_file(o.json_path, json)) return 1;
  }
  return rc;
}
