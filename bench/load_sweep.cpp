// Throughput–latency load sweeps over the full Portals stack.
//
// For each (transport config x traffic pattern) the bench replays an
// open-loop workload across a ladder of offered loads and prints the
// delivered-throughput / latency-percentile curve with its saturation
// point (workload/load_runner.hpp).  A closed-loop RPC section sweeps the
// outstanding-request window, and a final anchor cross-checks the
// 1-outstanding 8-byte RPC against the Figure-4 ping-pong measurement —
// the same wire exchange measured by two independent harnesses, so the
// two numbers must agree.
//
// All output (stdout and --json) is byte-identical for any --jobs value.

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "harness/netpipe_bench.hpp"
#include "harness/options.hpp"
#include "harness/sweep.hpp"
#include "sim/strf.hpp"
#include "workload/live.hpp"
#include "workload/load_runner.hpp"

namespace {

using namespace xt;

struct TransportConfig {
  const char* name;
  host::ProcMode mode;
  bool gobackn;
};

double us(std::uint64_t ps) { return static_cast<double>(ps) * 1e-6; }

std::string point_json(const workload::LoadPoint& p) {
  const workload::WorkloadResult& r = p.result;
  return sim::strf(
      "{\"complete\": %s, \"delivered\": %llu, \"delivered_per_sec\": %.1f, "
      "\"failure\": \"%s\", "
      "\"offered_eff_per_sec\": %.1f, \"offered_per_sec\": %.1f, "
      "\"p50_us\": %.3f, \"p90_us\": %.3f, \"p99_us\": %.3f, "
      "\"sent\": %llu}",
      r.complete ? "true" : "false",
      static_cast<unsigned long long>(r.delivered), r.delivered_per_sec(),
      r.failure.c_str(), r.offered_effective_per_sec(), p.offered_msgs_per_sec,
      us(r.percentile_ps(50)), us(r.percentile_ps(90)),
      us(r.percentile_ps(99)), static_cast<unsigned long long>(r.sent));
}

/// --transport udp: the same open-loop patterns as genuine multi-process
/// traffic — each rank a real thread, offered-load pacing and latency both
/// wall-clock.  One configuration (the live stack always runs go-back-n;
/// there is no accel/generic split in a real process), serial points (they
/// own the machine's cores while running).
int run_live(const harness::BenchOptions& o) {
  const int ranks = o.ranks > 0 ? o.ranks : 4;
  const int msgs = o.quick ? 40 : 200;

  std::vector<double> ladder;
  if (o.offered_load > 0.0) {
    ladder = {o.offered_load};
  } else if (o.quick) {
    ladder = {5e4, 2e5};
  } else {
    ladder = {5e4, 1e5, 2e5, 4e5};
  }

  std::vector<workload::PatternKind> patterns = {
      workload::PatternKind::kUniform, workload::PatternKind::kHalo3d,
      workload::PatternKind::kPermutation, workload::PatternKind::kIncast};
  if (!o.pattern.empty()) {
    const auto k = workload::pattern_from_name(o.pattern);
    if (!k || *k == workload::PatternKind::kRpc) {
      std::fprintf(stderr, "unsupported live pattern '%s'\n",
                   o.pattern.c_str());
      return 2;
    }
    patterns = {*k};
  }

  std::printf("=== Load sweep [udp loopback, wall-clock]: offered vs "
              "delivered throughput (%d ranks, %d msgs/sender, 2 KB) ===\n\n",
              ranks, msgs);

  std::string curves_json;
  int rc = 0;
  for (workload::PatternKind pk : patterns) {
    std::printf("-- udp-live / %s\n", workload::pattern_name(pk));
    std::printf("   %12s %14s %10s %10s %10s\n", "offered/s", "delivered/s",
                "p50 us", "p90 us", "p99 us");
    std::string pts;
    for (std::size_t i = 0; i < ladder.size(); ++i) {
      workload::WorkloadSpec ws;
      ws.pattern = pk;
      ws.ranks = ranks;
      ws.bytes = 2048;
      ws.msgs_per_sender = msgs;
      ws.offered_msgs_per_sec = ladder[i];
      ws.seed = o.seed;
      host::LiveOptions lopts;
      lopts.udp.drop_seed = o.seed + i;
      const workload::LiveWorkloadResult lr =
          workload::run_live_workload(lopts, ws);
      const workload::WorkloadResult& r = lr.result;
      if (!lr.ok()) {
        std::printf("   %12.0f  FAILED: %s\n", ladder[i],
                    r.failure.c_str());
        rc = 1;
        continue;
      }
      std::printf("   %12.0f %14.1f %10.3f %10.3f %10.3f\n", ladder[i],
                  r.delivered_per_sec(), us(r.percentile_ps(50)),
                  us(r.percentile_ps(90)), us(r.percentile_ps(99)));
      workload::LoadPoint p;
      p.offered_msgs_per_sec = ladder[i];
      p.result = r;
      pts += (pts.empty() ? "" : ", ") + point_json(p);
    }
    std::printf("\n");
    if (!curves_json.empty()) curves_json += ",\n";
    curves_json += sim::strf(
        "    {\"config\": \"udp-live\", \"gobackn\": true, "
        "\"pattern\": \"%s\", \"points\": [%s], \"ranks\": %d}",
        workload::pattern_name(pk), pts.c_str(), ranks);
  }

  const std::string json = sim::strf(
      "{\n  \"bench\": \"load_sweep\",\n  \"curves\": [\n%s\n  ],\n"
      "  \"git\": \"%s\",\n"
      "  \"quick\": %s,\n  \"seed\": %llu,\n  \"transport\": \"udp\"\n}\n",
      curves_json.c_str(), harness::git_describe(),
      o.quick ? "true" : "false",
      static_cast<unsigned long long>(o.seed));
  if (!o.json_path.empty() && !harness::write_text_file(o.json_path, json)) {
    return 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::BenchOptions o = harness::BenchOptions::parse(argc, argv);
  if (o.transport == "udp") return run_live(o);

  const int ranks = o.ranks > 0 ? o.ranks : (o.quick ? 8 : 16);
  const int msgs = o.quick ? 40 : 120;

  std::vector<double> ladder;
  if (o.offered_load > 0.0) {
    ladder = {o.offered_load};
  } else if (o.quick) {
    ladder = {1e5, 4e5, 1.6e6};
  } else {
    ladder = {5e4, 1e5, 2e5, 4e5, 8e5, 1.6e6, 3.2e6};
  }

  const std::vector<TransportConfig> configs = {
      {"generic", host::ProcMode::kUser, false},
      {"generic+gbn", host::ProcMode::kUser, true},
      {"accel", host::ProcMode::kAccel, false},
      {"accel+gbn", host::ProcMode::kAccel, true},
  };
  std::vector<workload::PatternKind> patterns = {
      workload::PatternKind::kUniform, workload::PatternKind::kHalo3d,
      workload::PatternKind::kPermutation, workload::PatternKind::kIncast};
  bool want_rpc = true;
  if (!o.pattern.empty()) {
    const auto k = workload::pattern_from_name(o.pattern);
    if (!k) {
      std::fprintf(stderr, "unknown pattern '%s'\n", o.pattern.c_str());
      return 2;
    }
    want_rpc = *k == workload::PatternKind::kRpc;
    patterns.clear();
    if (!want_rpc) patterns.push_back(*k);
  }

  std::printf("=== Load sweep: offered vs delivered throughput (%d ranks, "
              "%d msgs/sender, 2 KB) ===\n\n",
              ranks, msgs);

  std::string curves_json;
  telemetry::Profiler prof;
  std::uint64_t seed = o.seed;
  for (const TransportConfig& tc : configs) {
    for (workload::PatternKind pk : patterns) {
      workload::LoadSweepSpec ls;
      ls.base.pattern = pk;
      ls.base.ranks = ranks;
      ls.base.bytes = 2048;
      ls.base.msgs_per_sender = msgs;
      ls.base.seed = o.seed;
      ls.mode = tc.mode;
      ls.cfg.gobackn = tc.gobackn;
      ls.offered = ladder;
      ls.jobs = o.jobs;
      ls.seed = seed;
      ls.telemetry.profile = o.profile;
      seed += ladder.size();

      const workload::LoadCurve curve = workload::run_load_sweep(ls);
      for (const workload::LoadPoint& p : curve.points) {
        prof.merge(p.profile);
      }

      std::printf("-- %s / %s\n", tc.name, workload::pattern_name(pk));
      std::printf("   %12s %14s %10s %10s %10s\n", "offered/s", "delivered/s",
                  "p50 us", "p90 us", "p99 us");
      std::string pts;
      for (std::size_t i = 0; i < curve.points.size(); ++i) {
        const workload::LoadPoint& p = curve.points[i];
        const workload::WorkloadResult& r = p.result;
        std::printf("   %12.0f %14.1f %10.3f %10.3f %10.3f%s%s\n",
                    p.offered_msgs_per_sec, r.delivered_per_sec(),
                    us(r.percentile_ps(50)), us(r.percentile_ps(90)),
                    us(r.percentile_ps(99)),
                    static_cast<int>(i) == curve.saturation_index
                        ? "   <-- saturated"
                        : "",
                    r.complete ? "" : "   [incomplete]");
        pts += (i == 0 ? "" : ", ") + point_json(p);
      }
      if (curve.saturation_index < 0) {
        std::printf("   (not saturated within the ladder)\n");
      }
      std::printf("\n");

      if (!curves_json.empty()) curves_json += ",\n";
      curves_json += sim::strf(
          "    {\"config\": \"%s\", \"gobackn\": %s, \"pattern\": \"%s\", "
          "\"points\": [%s], \"ranks\": %d, \"saturation_index\": %d, "
          "\"saturation_per_sec\": %.1f}",
          tc.name, tc.gobackn ? "true" : "false", workload::pattern_name(pk),
          pts.c_str(), ranks, curve.saturation_index,
          curve.saturation_msgs_per_sec);
    }
  }

  // Closed-loop RPC: latency vs outstanding-request window.
  std::string closed_json;
  if (want_rpc) {
    std::vector<int> windows;
    if (o.outstanding > 0) {
      windows = {o.outstanding};
    } else if (o.quick) {
      windows = {1, 4};
    } else {
      windows = {1, 2, 4, 8};
    }
    std::printf("-- closed-loop rpc, %d ranks, 2 KB requests\n", ranks);
    std::printf("   %-12s %11s %12s %10s %10s %10s\n", "config",
                "outstanding", "requests/s", "rtt p50", "rtt p90", "rtt p99");
    for (const char* cname : {"generic", "accel"}) {
      const host::ProcMode mode = std::string(cname) == "accel"
                                      ? host::ProcMode::kAccel
                                      : host::ProcMode::kUser;
      std::vector<std::function<workload::WorkloadResult()>> tasks;
      for (std::size_t i = 0; i < windows.size(); ++i) {
        workload::WorkloadSpec ws;
        ws.pattern = workload::PatternKind::kRpc;
        ws.ranks = ranks;
        ws.bytes = 2048;
        ws.msgs_per_sender = msgs;
        ws.loop = workload::Loop::kClosed;
        ws.outstanding = windows[i];
        ws.seed = o.seed;
        const std::uint64_t sseed = seed + i;
        tasks.push_back([ws, mode, sseed] {
          return workload::run_load_point(ws, mode, ss::Config{}, sseed);
        });
      }
      seed += windows.size();
      const auto results =
          harness::SweepRunner(o.jobs).run(std::move(tasks));
      for (std::size_t i = 0; i < windows.size(); ++i) {
        const workload::WorkloadResult& r = results[i];
        std::printf("   %-12s %11d %12.1f %10.3f %10.3f %10.3f\n", cname,
                    windows[i], r.delivered_per_sec(),
                    us(r.percentile_ps(50)), us(r.percentile_ps(90)),
                    us(r.percentile_ps(99)));
        if (!closed_json.empty()) closed_json += ",\n";
        closed_json += sim::strf(
            "    {\"config\": \"%s\", \"outstanding\": %d, "
            "\"pattern\": \"rpc\", \"per_sec\": %.1f, "
            "\"rtt_p50_us\": %.3f, \"rtt_p90_us\": %.3f, "
            "\"rtt_p99_us\": %.3f}",
            cname, windows[i], r.delivered_per_sec(),
            us(r.percentile_ps(50)), us(r.percentile_ps(90)),
            us(r.percentile_ps(99)));
      }
    }
    std::printf("\n");
  }

  // Anchor: the 1-outstanding 8-byte closed-loop RPC is the same wire
  // exchange as the Figure-4 ping-pong; the two harnesses must agree.
  workload::WorkloadSpec anchor;
  anchor.pattern = workload::PatternKind::kRpc;
  anchor.ranks = 2;
  anchor.rpc_clients = 1;
  anchor.bytes = 8;
  anchor.msgs_per_sender = o.quick ? 256 : 512;
  anchor.loop = workload::Loop::kClosed;
  anchor.outstanding = 1;
  anchor.seed = o.seed;
  const workload::WorkloadResult ar =
      workload::run_load_point(anchor, host::ProcMode::kUser, ss::Config{},
                               seed);
  double mean_rtt_ps = 0.0;
  for (std::uint64_t v : ar.latency_ps) mean_rtt_ps += static_cast<double>(v);
  if (!ar.latency_ps.empty()) {
    mean_rtt_ps /= static_cast<double>(ar.latency_ps.size());
  }
  const double rpc_usec = mean_rtt_ps * 1e-6 / 2.0;  // one-way, like Fig 4

  np::Options nopt;
  nopt.min_bytes = 8;
  nopt.max_bytes = 8;
  nopt.perturbation = 0;
  const auto fig4 =
      harness::measure(np::Transport::kPut, np::Pattern::kPingPong, nopt);
  const double fig4_usec = fig4.empty() ? 0.0 : fig4[0].usec_per_transfer;
  const double div_pct =
      fig4_usec > 0.0 ? (rpc_usec - fig4_usec) / fig4_usec * 100.0 : 0.0;
  std::printf("-- anchor: 8 B 1-outstanding rpc one-way %.3f us vs fig4 "
              "ping-pong %.3f us (%+.2f%%)\n",
              rpc_usec, fig4_usec, div_pct);

  if (o.profile) {
    std::printf("\n");
    std::fputs(prof.report().c_str(), stdout);
  }

  // --trace-json: one canonical traced replay of the first (config,
  // pattern) point at the ladder's lowest rung — a single serial run, so
  // the timeline is byte-identical for any --jobs value.
  if (!o.trace_json_path.empty()) {
    workload::WorkloadSpec ws;
    ws.pattern = patterns.empty() ? workload::PatternKind::kUniform
                                  : patterns.front();
    ws.ranks = ranks;
    ws.bytes = 2048;
    ws.msgs_per_sender = msgs;
    ws.loop = workload::Loop::kOpen;
    ws.offered_msgs_per_sec = ladder.front();
    ws.seed = o.seed;
    harness::Scenario::TelemetrySpec tel;
    tel.trace = true;
    tel.provenance = true;
    workload::PointTelemetry pt;
    (void)workload::run_load_point(ws, host::ProcMode::kUser, ss::Config{},
                                   o.seed, tel, &pt);
    const std::string label =
        std::string("generic/") + workload::pattern_name(ws.pattern);
    const std::vector<telemetry::TraceSeries> ts = {
        {label, &pt.trace_records, &pt.provenance}};
    if (!harness::write_text_file(o.trace_json_path,
                                  telemetry::export_chrome_trace(ts))) {
      return 1;
    }
  }

  const std::string json = sim::strf(
      "{\n  \"anchor\": {\"divergence_pct\": %.2f, \"fig4_usec\": %.3f, "
      "\"rpc_usec\": %.3f},\n  \"bench\": \"load_sweep\",\n"
      "  \"closed_loop\": [\n%s\n  ],\n  \"curves\": [\n%s\n  ],\n"
      "  \"git\": \"%s\",\n"
      "  \"quick\": %s,\n  \"seed\": %llu,\n  \"transport\": \"sim\"\n}\n",
      div_pct, fig4_usec, rpc_usec, closed_json.c_str(), curves_json.c_str(),
      harness::git_describe(), o.quick ? "true" : "false",
      static_cast<unsigned long long>(o.seed));
  if (!o.json_path.empty() && !harness::write_text_file(o.json_path, json)) {
    return 1;
  }
  return 0;
}
