// Figure 4 — latency performance (1 B .. 1 KB, ping-pong).
//
// Paper anchors (Red Storm, CLUSTER'05):
//   put            5.39 us   (one-way, 1 byte)
//   get            6.60 us
//   mpich-1.2.6    7.97 us
//   mpich2         8.40 us
// plus the step just above 12 bytes where the inline-payload optimization
// stops applying and the second receive-side interrupt appears.

#include <cstdio>

#include "harness/netpipe_bench.hpp"

int main(int argc, char** argv) {
  using namespace xt;
  const harness::FigureSpec spec{"Figure 4",
                                 "one-way latency vs message size",
                                 np::Pattern::kPingPong, 1024};
  const int rc = harness::run_figure(spec, argc, argv);

  std::printf("--- paper anchors (1 byte): put 5.39us  get 6.60us  "
              "mpich-1.2.6 7.97us  mpich2 8.40us\n");
  std::printf("--- expected shape: flat to 12 bytes, step at 13 bytes "
              "(second interrupt), slow rise beyond\n");
  return rc;
}
