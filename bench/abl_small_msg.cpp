// Ablation — the inline-payload ("small message") optimization (§6).
//
// 12 bytes is not arbitrary: the router packet is 64 bytes and the packed
// Portals header is 52, so exactly 12 user bytes ride along with the
// header, letting the firmware deliver arrival and completion in ONE
// interrupt.  This bench sweeps the inline threshold from 0 (optimization
// off) to the full 12 and shows the latency step moving accordingly.

#include <cstdio>

#include "netpipe/netpipe.hpp"
#include "portals/wire.hpp"

int main() {
  using namespace xt;
  std::printf("=== Ablation: inline-payload threshold ===\n\n");
  std::printf("  header packet %zu B - packed Portals header %zu B = "
              "%zu B inline capacity\n\n",
              ptl::kHeaderPacketBytes, ptl::kWireHeaderBytes,
              ptl::kMaxInlineBytes);

  np::Options o;
  o.max_bytes = 64;
  o.perturbation = 4;  // puts 4, 12, 20, ... on the ladder

  std::printf("  one-way put latency (us) by message size:\n");
  std::printf("  %10s", "inline<=");
  const std::size_t probe_sizes[] = {1, 4, 8, 12, 16, 32, 64};
  for (const auto s : probe_sizes) std::printf(" %8zu", s);
  std::printf("\n");

  for (const std::size_t thresh : {0u, 4u, 8u, 12u}) {
    ss::Config cfg;
    cfg.inline_payload_max = thresh;
    const auto samples = np::measure(np::Transport::kPut,
                                     np::Pattern::kPingPong, o, cfg);
    std::printf("  %10zu", thresh);
    for (const auto want : probe_sizes) {
      double us = 0;
      for (const auto& s : samples) {
        if (s.bytes == want) us = s.usec_per_transfer;
      }
      std::printf(" %8.2f", us);
    }
    std::printf("\n");
  }
  std::printf("\n  expected: with threshold T, sizes <= T stay on the "
              "one-interrupt fast path;\n  the ~3 us step moves to T+1 "
              "(paper: \"At 12 bytes we see the results of a small\n"
              "  message optimization\")\n");
  return 0;
}
