// Ablation — the inline-payload ("small message") optimization (§6).
//
// 12 bytes is not arbitrary: the router packet is 64 bytes and the packed
// Portals header is 52, so exactly 12 user bytes ride along with the
// header, letting the firmware deliver arrival and completion in ONE
// interrupt.  This bench sweeps the inline threshold from 0 (optimization
// off) to the full 12 and shows the latency step moving accordingly.

#include <cstdio>
#include <functional>
#include <vector>

#include "harness/netpipe_bench.hpp"
#include "harness/sweep.hpp"
#include "portals/wire.hpp"
#include "sim/strf.hpp"

int main(int argc, char** argv) {
  using namespace xt;
  harness::BenchOptions o = harness::BenchOptions::parse(argc, argv, 64);
  o.np.perturbation = 4;  // puts 4, 12, 20, ... on the ladder

  std::printf("=== Ablation: inline-payload threshold ===\n\n");
  std::printf("  header packet %zu B - packed Portals header %zu B = "
              "%zu B inline capacity\n\n",
              ptl::kHeaderPacketBytes, ptl::kWireHeaderBytes,
              ptl::kMaxInlineBytes);

  // One self-contained measurement per threshold, fanned across workers.
  const std::vector<std::size_t> thresholds = {0, 4, 8, 12};
  std::vector<std::function<std::vector<np::Sample>()>> tasks;
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    ss::Config cfg;
    cfg.inline_payload_max = thresholds[i];
    cfg.net.seed = o.seed + i;
    tasks.push_back([o, cfg] {
      return harness::measure(np::Transport::kPut, np::Pattern::kPingPong,
                              o.np, cfg);
    });
  }
  const auto results = harness::SweepRunner(o.jobs).run(std::move(tasks));

  std::printf("  one-way put latency (us) by message size:\n");
  std::printf("  %10s", "inline<=");
  const std::size_t probe_sizes[] = {1, 4, 8, 12, 16, 32, 64};
  for (const auto s : probe_sizes) std::printf(" %8zu", s);
  std::printf("\n");

  std::vector<harness::SeriesResult> series;
  for (std::size_t t = 0; t < thresholds.size(); ++t) {
    const auto& samples = results[t];
    std::printf("  %10zu", thresholds[t]);
    for (const auto want : probe_sizes) {
      double us = 0;
      for (const auto& s : samples) {
        if (s.bytes == want) us = s.usec_per_transfer;
      }
      std::printf(" %8.2f", us);
    }
    std::printf("\n");
    harness::SeriesResult sr;
    sr.name = sim::strf("inline<=%zu", thresholds[t]);
    sr.pattern = np::Pattern::kPingPong;
    sr.samples = samples;
    series.push_back(std::move(sr));
  }
  std::printf("\n  expected: with threshold T, sizes <= T stay on the "
              "one-interrupt fast path;\n  the ~3 us step moves to T+1 "
              "(paper: \"At 12 bytes we see the results of a small\n"
              "  message optimization\")\n");

  if (!o.json_path.empty() &&
      !harness::write_series_json(o.json_path,
                                  "Ablation: inline-payload threshold",
                                  o.jobs, series)) {
    return 1;
  }
  return 0;
}
