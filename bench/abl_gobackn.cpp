// Ablation — resource exhaustion: panic vs go-back-n (§4.3).
//
// The shipped firmware "assumes that resource exhaustion does not occur
// ... The current approach is to panic the node, which results in
// application failure", with a go-back-n recovery protocol in progress.
// This bench drives a many-to-one incast at a receiver whose RX pending
// pool is made artificially tiny, and compares the two policies.

#include <cstdio>
#include <functional>
#include <vector>

#include "harness/options.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "portals/api.hpp"
#include "sim/strf.hpp"

namespace {

using namespace xt;
using ptl::AckReq;
using ptl::EventType;
using ptl::InsPos;
using ptl::MdDesc;
using ptl::ProcessId;
using ptl::Unlink;
using sim::CoTask;

struct IncastResult {
  bool panicked = false;
  std::string panic_reason;
  int delivered = 0;
  std::uint64_t nacks = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t drops = 0;
  double ms = 0.0;
};

IncastResult run_incast(bool gobackn, int senders, int msgs_each,
                        std::uint32_t bytes, std::uint64_t seed) {
  ss::Config cfg;
  cfg.gobackn = gobackn;
  // Starve the receiver: a handful of RX pendings for the whole node.
  cfg.n_generic_rx_pendings = 4;
  harness::Scenario sc = harness::Scenario::incast(senders, 7);
  sc.with_config(cfg).with_seed(seed);
  sc.procs[0].mem_bytes = 128u << 20;
  auto inst = sc.build();
  host::Machine& m = inst->machine();

  host::Process& rx = inst->proc(0);
  const std::uint64_t rbuf = rx.alloc(1u << 20);
  int delivered = 0;
  sim::spawn([](host::Process& p, std::uint64_t buf, int total,
                int* count) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(8192);
    auto me = co_await api.PtlMEAttach(
        0, ProcessId{ptl::kNidAny, ptl::kPidAny}, 1, 0, Unlink::kRetain,
        InsPos::kAfter);
    MdDesc d;
    d.start = buf;
    d.length = 1u << 20;
    d.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE |
                ptl::PTL_MD_TRUNCATE;
    d.eq = eq.value;
    (void)co_await api.PtlMDAttach(me.value, d, Unlink::kRetain);
    while (*count < total) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.rc != ptl::PTL_OK && ev.rc != ptl::PTL_EQ_DROPPED) co_return;
      if (ev.value.type == EventType::kPutEnd) ++*count;
    }
  }(rx, rbuf, senders * msgs_each, &delivered));

  for (int sidx = 1; sidx <= senders; ++sidx) {
    host::Process& tx = inst->proc(static_cast<std::size_t>(sidx));
    sim::spawn([](host::Process& p, int n, std::uint32_t len)
                   -> CoTask<void> {
      auto& api = p.api();
      auto eq = co_await api.PtlEQAlloc(8192);
      MdDesc d;
      d.start = p.alloc(len);
      d.length = len;
      d.eq = eq.value;
      auto md = co_await api.PtlMDBind(d, Unlink::kRetain);
      int sent = 0;
      for (int i = 0; i < n; ++i) {
        (void)co_await api.PtlPut(md.value, AckReq::kNone, ProcessId{0, 7},
                                  0, 0, 1, 0, 0);
      }
      while (sent < n) {
        auto ev = co_await api.PtlEQWait(eq.value);
        if (ev.rc != ptl::PTL_OK) co_return;
        if (ev.value.type == EventType::kSendEnd) ++sent;
      }
    }(tx, msgs_each, bytes));
  }

  inst->run();

  IncastResult r;
  r.panicked = m.node(0).firmware().panicked();
  r.panic_reason = m.node(0).firmware().panic_reason();
  r.delivered = delivered;
  const auto& c = m.node(0).firmware().counters();
  r.nacks = c.nacks_sent;
  r.drops = c.exhaustion_drops;
  std::uint64_t rt = 0;
  for (int sidx = 1; sidx <= senders; ++sidx) {
    rt += m.node(static_cast<net::NodeId>(sidx))
              .firmware()
              .counters()
              .retransmits;
  }
  r.retransmits = rt;
  r.ms = m.engine().now().to_ms();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xt;
  const harness::BenchOptions o = harness::BenchOptions::parse(argc, argv);
  constexpr int kSenders = 8;
  constexpr int kMsgs = 40;
  constexpr std::uint32_t kBytes = 2048;

  std::printf("=== Ablation: resource exhaustion, panic vs go-back-n ===\n");
  std::printf("(incast: %d senders x %d messages of %u B into a receiver "
              "with only 4 RX pendings)\n\n",
              kSenders, kMsgs, kBytes);

  std::vector<std::function<IncastResult()>> tasks;
  for (std::size_t i = 0; i < 2; ++i) {
    const bool gbn = i == 1;
    const std::uint64_t seed = o.seed + i;
    tasks.push_back(
        [gbn, seed] { return run_incast(gbn, kSenders, kMsgs, kBytes, seed); });
  }
  const auto results = harness::SweepRunner(o.jobs).run(std::move(tasks));

  std::string json = "{\n  \"ablation\": \"gobackn\",\n  \"policies\": [\n";
  for (std::size_t i = 0; i < 2; ++i) {
    const bool gbn = i == 1;
    const IncastResult& r = results[i];
    std::printf("  policy: %-10s  ", gbn ? "go-back-n" : "panic");
    if (r.panicked) {
      std::printf("NODE PANIC (\"%s\") after %d/%d messages\n",
                  r.panic_reason.c_str(), r.delivered, kSenders * kMsgs);
    } else {
      std::printf("delivered %d/%d in %.2f ms  "
                  "(drops %llu, nacks %llu, retransmits %llu)\n",
                  r.delivered, kSenders * kMsgs, r.ms,
                  static_cast<unsigned long long>(r.drops),
                  static_cast<unsigned long long>(r.nacks),
                  static_cast<unsigned long long>(r.retransmits));
    }
    json += sim::strf(
        "    {\"policy\": \"%s\", \"panicked\": %s, \"delivered\": %d, "
        "\"ms\": %.3f, \"drops\": %llu, \"nacks\": %llu, "
        "\"retransmits\": %llu}%s\n",
        gbn ? "go-back-n" : "panic", r.panicked ? "true" : "false",
        r.delivered, r.ms, static_cast<unsigned long long>(r.drops),
        static_cast<unsigned long long>(r.nacks),
        static_cast<unsigned long long>(r.retransmits), i == 0 ? "," : "");
  }
  json += "  ]\n}\n";
  std::printf("\n  paper: \"The current approach is to panic the node, "
              "which results in\n  application failure.  We are currently "
              "working on a simple go-back-n\n  protocol to resolve "
              "resource exhaustion gracefully.\"\n");

  if (!o.json_path.empty() && !harness::write_text_file(o.json_path, json)) {
    return 1;
  }
  return 0;
}
