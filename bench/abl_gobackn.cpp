// Ablation — resource exhaustion: panic vs go-back-n (§4.3).
//
// The shipped firmware "assumes that resource exhaustion does not occur
// ... The current approach is to panic the node, which results in
// application failure", with a go-back-n recovery protocol in progress.
// This bench drives a many-to-one incast (workload::run_incast) at a
// receiver whose RX pending pool is made artificially tiny, and compares
// the two policies.

#include <cstdio>
#include <functional>
#include <vector>

#include "harness/options.hpp"
#include "harness/sweep.hpp"
#include "sim/strf.hpp"
#include "workload/incast.hpp"

int main(int argc, char** argv) {
  using namespace xt;
  const harness::BenchOptions o = harness::BenchOptions::parse(argc, argv);
  constexpr int kSenders = 8;
  constexpr int kMsgs = 40;
  constexpr std::uint32_t kBytes = 2048;

  std::printf("=== Ablation: resource exhaustion, panic vs go-back-n ===\n");
  std::printf("(incast: %d senders x %d messages of %u B into a receiver "
              "with only 4 RX pendings)\n\n",
              kSenders, kMsgs, kBytes);

  std::vector<std::function<workload::IncastResult()>> tasks;
  for (std::size_t i = 0; i < 2; ++i) {
    workload::IncastSpec spec;
    spec.senders = kSenders;
    spec.msgs_each = kMsgs;
    spec.bytes = kBytes;
    spec.seed = o.seed + i;
    spec.cfg.gobackn = i == 1;
    // Starve the receiver: a handful of RX pendings for the whole node.
    spec.cfg.n_generic_rx_pendings = 4;
    tasks.push_back([spec] { return workload::run_incast(spec); });
  }
  const auto results = harness::SweepRunner(o.jobs).run(std::move(tasks));

  std::string json = "{\n  \"ablation\": \"gobackn\",\n  \"policies\": [\n";
  for (std::size_t i = 0; i < 2; ++i) {
    const bool gbn = i == 1;
    const workload::IncastResult& r = results[i];
    std::printf("  policy: %-10s  ", gbn ? "go-back-n" : "panic");
    if (r.panicked) {
      std::printf("NODE PANIC (\"%s\") after %d/%d messages\n",
                  r.panic_reason.c_str(), r.delivered, kSenders * kMsgs);
    } else {
      std::printf("delivered %d/%d in %.2f ms  "
                  "(drops %llu, nacks %llu, retransmits %llu)\n",
                  r.delivered, kSenders * kMsgs, r.ms,
                  static_cast<unsigned long long>(r.exhaustion_drops),
                  static_cast<unsigned long long>(r.nacks),
                  static_cast<unsigned long long>(r.retransmits));
    }
    json += sim::strf(
        "    {\"policy\": \"%s\", \"panicked\": %s, \"delivered\": %d, "
        "\"ms\": %.3f, \"drops\": %llu, \"nacks\": %llu, "
        "\"retransmits\": %llu}%s\n",
        gbn ? "go-back-n" : "panic", r.panicked ? "true" : "false",
        r.delivered, r.ms,
        static_cast<unsigned long long>(r.exhaustion_drops),
        static_cast<unsigned long long>(r.nacks),
        static_cast<unsigned long long>(r.retransmits), i == 0 ? "," : "");
  }
  json += "  ]\n}\n";
  std::printf("\n  paper: \"The current approach is to panic the node, "
              "which results in\n  application failure.  We are currently "
              "working on a simple go-back-n\n  protocol to resolve "
              "resource exhaustion gracefully.\"\n");

  if (!o.json_path.empty() && !harness::write_text_file(o.json_path, json)) {
    return 1;
  }
  return 0;
}
