// Ablation — resource exhaustion: panic vs go-back-n (§4.3).
//
// The shipped firmware "assumes that resource exhaustion does not occur
// ... The current approach is to panic the node, which results in
// application failure", with a go-back-n recovery protocol in progress.
// This bench drives a many-to-one incast at a receiver whose RX pending
// pool is made artificially tiny, and compares the two policies.

#include <cstdio>
#include <vector>

#include "host/node.hpp"
#include "portals/api.hpp"

namespace {

using namespace xt;
using ptl::AckReq;
using ptl::EventType;
using ptl::InsPos;
using ptl::MdDesc;
using ptl::ProcessId;
using ptl::Unlink;
using sim::CoTask;

struct IncastResult {
  bool panicked = false;
  std::string panic_reason;
  int delivered = 0;
  std::uint64_t nacks = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t drops = 0;
  double ms = 0.0;
};

IncastResult run_incast(bool gobackn, int senders, int msgs_each,
                        std::uint32_t bytes) {
  ss::Config cfg;
  cfg.gobackn = gobackn;
  // Starve the receiver: a handful of RX pendings for the whole node.
  cfg.n_generic_rx_pendings = 4;
  host::Machine m(net::Shape::xt3(senders + 1, 1, 1), cfg);

  host::Process& rx = m.node(0).spawn_process(7, 128u << 20);
  const std::uint64_t rbuf = rx.alloc(1u << 20);
  int delivered = 0;
  sim::spawn([](host::Process& p, std::uint64_t buf, int total,
                int* count) -> CoTask<void> {
    auto& api = p.api();
    auto eq = co_await api.PtlEQAlloc(8192);
    auto me = co_await api.PtlMEAttach(
        0, ProcessId{ptl::kNidAny, ptl::kPidAny}, 1, 0, Unlink::kRetain,
        InsPos::kAfter);
    MdDesc d;
    d.start = buf;
    d.length = 1u << 20;
    d.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE |
                ptl::PTL_MD_TRUNCATE;
    d.eq = eq.value;
    (void)co_await api.PtlMDAttach(me.value, d, Unlink::kRetain);
    while (*count < total) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.rc != ptl::PTL_OK && ev.rc != ptl::PTL_EQ_DROPPED) co_return;
      if (ev.value.type == EventType::kPutEnd) ++*count;
    }
  }(rx, rbuf, senders * msgs_each, &delivered));

  for (int sidx = 1; sidx <= senders; ++sidx) {
    host::Process& tx =
        m.node(static_cast<net::NodeId>(sidx)).spawn_process(7, 16u << 20);
    sim::spawn([](host::Process& p, int n, std::uint32_t len)
                   -> CoTask<void> {
      auto& api = p.api();
      auto eq = co_await api.PtlEQAlloc(8192);
      MdDesc d;
      d.start = p.alloc(len);
      d.length = len;
      d.eq = eq.value;
      auto md = co_await api.PtlMDBind(d, Unlink::kRetain);
      int sent = 0;
      for (int i = 0; i < n; ++i) {
        (void)co_await api.PtlPut(md.value, AckReq::kNone, ProcessId{0, 7},
                                  0, 0, 1, 0, 0);
      }
      while (sent < n) {
        auto ev = co_await api.PtlEQWait(eq.value);
        if (ev.rc != ptl::PTL_OK) co_return;
        if (ev.value.type == EventType::kSendEnd) ++sent;
      }
    }(tx, msgs_each, bytes));
  }

  m.run();

  IncastResult r;
  r.panicked = m.node(0).firmware().panicked();
  r.panic_reason = m.node(0).firmware().panic_reason();
  r.delivered = delivered;
  const auto& c = m.node(0).firmware().counters();
  r.nacks = c.nacks_sent;
  r.drops = c.exhaustion_drops;
  std::uint64_t rt = 0;
  for (int sidx = 1; sidx <= senders; ++sidx) {
    rt += m.node(static_cast<net::NodeId>(sidx))
              .firmware()
              .counters()
              .retransmits;
  }
  r.retransmits = rt;
  r.ms = m.engine().now().to_ms();
  return r;
}

}  // namespace

int main() {
  constexpr int kSenders = 8;
  constexpr int kMsgs = 40;
  constexpr std::uint32_t kBytes = 2048;

  std::printf("=== Ablation: resource exhaustion, panic vs go-back-n ===\n");
  std::printf("(incast: %d senders x %d messages of %u B into a receiver "
              "with only 4 RX pendings)\n\n",
              kSenders, kMsgs, kBytes);

  for (const bool gbn : {false, true}) {
    const IncastResult r = run_incast(gbn, kSenders, kMsgs, kBytes);
    std::printf("  policy: %-10s  ", gbn ? "go-back-n" : "panic");
    if (r.panicked) {
      std::printf("NODE PANIC (\"%s\") after %d/%d messages\n",
                  r.panic_reason.c_str(), r.delivered, kSenders * kMsgs);
    } else {
      std::printf("delivered %d/%d in %.2f ms  "
                  "(drops %llu, nacks %llu, retransmits %llu)\n",
                  r.delivered, kSenders * kMsgs, r.ms,
                  static_cast<unsigned long long>(r.drops),
                  static_cast<unsigned long long>(r.nacks),
                  static_cast<unsigned long long>(r.retransmits));
    }
  }
  std::printf("\n  paper: \"The current approach is to panic the node, "
              "which results in\n  application failure.  We are currently "
              "working on a simple go-back-n\n  protocol to resolve "
              "resource exhaustion gracefully.\"\n");
  return 0;
}
