// Ablation — where the bandwidth limits live (§2).
//
// The SeaStar spec the paper quotes: 2.5 GB/s of link payload per
// direction, an HT interface that practically delivers ~1.1 GB/s into the
// node in this era, and independent Tx/Rx engines.  Two experiments make
// those limits visible:
//
//   1. INCAST — k senders stream to one receiver.  Aggregate delivered
//      bandwidth must plateau at the receiver's HT/Rx-DMA rate (~1.1 GB/s),
//      no matter how much link capacity feeds it.
//   2. SHARED LINK — two flows forced through one link (a 1D chain where
//      both cross the same middle hop).  Each flow gets half the link's
//      2.5 GB/s... unless the endpoints' ~1.1 GB/s is the tighter bound,
//      which is exactly what the numbers show.

#include <cstdio>
#include <functional>
#include <vector>

#include "harness/options.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "portals/api.hpp"
#include "sim/strf.hpp"

namespace {

using namespace xt;
using ptl::AckReq;
using ptl::EventType;
using ptl::InsPos;
using ptl::MdDesc;
using ptl::ProcessId;
using ptl::Unlink;
using sim::CoTask;
using sim::Time;

constexpr ptl::Pid kPid = 14;
constexpr std::uint32_t kMsg = 256 * 1024;
constexpr int kMsgsPerSender = 12;

CoTask<void> receiver(host::Process& p, int total, Time* done_at) {
  auto& api = p.api();
  auto eq = co_await api.PtlEQAlloc(8192);
  auto me = co_await api.PtlMEAttach(0, ProcessId{ptl::kNidAny,
                                                  ptl::kPidAny},
                                     1, 0, Unlink::kRetain, InsPos::kAfter);
  MdDesc d;
  d.start = p.alloc(kMsg);
  d.length = kMsg;
  d.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE |
              ptl::PTL_MD_TRUNCATE;
  d.eq = eq.value;
  (void)co_await api.PtlMDAttach(me.value, d, Unlink::kRetain);
  int got = 0;
  while (got < total) {
    auto ev = co_await api.PtlEQWait(eq.value);
    if (ev.value.type == EventType::kPutEnd) ++got;
  }
  *done_at = p.node().engine().now();
}

CoTask<void> sender(host::Process& p, ProcessId target, int n) {
  auto& api = p.api();
  auto eq = co_await api.PtlEQAlloc(8192);
  MdDesc d;
  d.start = p.alloc(kMsg);
  d.length = kMsg;
  d.eq = eq.value;
  auto md = co_await api.PtlMDBind(d, Unlink::kRetain);
  int sent = 0;
  for (int i = 0; i < n; ++i) {
    (void)co_await api.PtlPut(md.value, AckReq::kNone, target, 0, 0, 1, 0,
                              0);
    if (i - sent >= 4) {  // keep a small window
      while (i - sent >= 4) {
        auto ev = co_await api.PtlEQWait(eq.value);
        if (ev.value.type == EventType::kSendEnd) ++sent;
      }
    }
  }
  while (sent < n) {
    auto ev = co_await api.PtlEQWait(eq.value);
    if (ev.value.type == EventType::kSendEnd) ++sent;
  }
}

double incast_bw(int senders, std::uint64_t seed) {
  auto inst =
      harness::Scenario::incast(senders, kPid).with_seed(seed).build();
  Time done{};
  sim::spawn(receiver(inst->proc(0), senders * kMsgsPerSender, &done));
  for (int s = 1; s <= senders; ++s) {
    sim::spawn(sender(inst->proc(static_cast<std::size_t>(s)),
                      inst->proc(0).id(), kMsgsPerSender));
  }
  inst->run();
  const double bytes =
      static_cast<double>(senders) * kMsgsPerSender * kMsg;
  return bytes / done.to_us();  // MB/s (1e6)
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xt;
  const harness::BenchOptions o = harness::BenchOptions::parse(argc, argv);

  // Every incast point is a self-contained machine — fan them out.
  const std::vector<int> ks = {1, 2, 4, 8};
  std::vector<std::function<double()>> tasks;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const int k = ks[i];
    const std::uint64_t seed = o.seed + i;
    tasks.push_back([k, seed] { return incast_bw(k, seed); });
  }
  const auto bw = harness::SweepRunner(o.jobs).run(std::move(tasks));

  std::printf("=== Ablation: bandwidth limits under contention ===\n\n");
  std::printf("  incast (k senders -> 1 receiver, %u KB puts):\n",
              kMsg / 1024);
  std::printf("  %10s %18s\n", "senders", "aggregate MB/s");
  std::string json = "{\n  \"ablation\": \"contention\",\n  \"incast\": [\n";
  for (std::size_t i = 0; i < ks.size(); ++i) {
    std::printf("  %10d %18.1f\n", ks[i], bw[i]);
    json += sim::strf("    {\"senders\": %d, \"aggregate_mbs\": %.1f}%s\n",
                      ks[i], bw[i], i + 1 < ks.size() ? "," : "");
  }
  json += "  ],\n";
  std::printf("\n  expected: ~1100 MB/s regardless of k — the receiver's\n"
              "  HT/Rx-DMA practical rate is the bottleneck, not the\n"
              "  2.5 GB/s links (\"a practical rate somewhat lower\", §2)\n");

  // Shared link: nodes 0 and 1 both send to nodes 2 and 3 on a 4-chain —
  // flows 0->2 and 1->3 both cross the 1->2 link.
  {
    auto inst = harness::Scenario{}
                    .with_shape(net::Shape::red_storm(4, 1, 1))
                    .with_seed(o.seed + ks.size())
                    .add_proc(0, kPid, 16u << 20)
                    .add_proc(1, kPid, 16u << 20)
                    .add_proc(2, kPid, 16u << 20)
                    .add_proc(3, kPid, 16u << 20)
                    .build();
    host::Process& tx0 = inst->proc(0);
    host::Process& tx1 = inst->proc(1);
    host::Process& rx2 = inst->proc(2);
    host::Process& rx3 = inst->proc(3);
    Time d2{}, d3{};
    sim::spawn(receiver(rx2, kMsgsPerSender, &d2));
    sim::spawn(receiver(rx3, kMsgsPerSender, &d3));
    sim::spawn(sender(tx0, rx2.id(), kMsgsPerSender));
    sim::spawn(sender(tx1, rx3.id(), kMsgsPerSender));
    inst->run();
    const double bytes = static_cast<double>(kMsgsPerSender) * kMsg;
    std::printf("\n  shared middle link (flows 0->2 and 1->3 on a chain):\n");
    std::printf("    flow 0->2: %8.1f MB/s\n", bytes / d2.to_us());
    std::printf("    flow 1->3: %8.1f MB/s\n", bytes / d3.to_us());
    std::printf("  expected: both still ~1100 MB/s — two ~1.1 GB/s flows "
                "fit inside one\n  2.5 GB/s link, so endpoint rate (not "
                "the wire) remains the limit;\n  the XT3's 2 GB/s links "
                "were sized for exactly this headroom\n");
    json += sim::strf("  \"shared_link\": {\"flow02_mbs\": %.1f, "
                      "\"flow13_mbs\": %.1f}\n}\n",
                      bytes / d2.to_us(), bytes / d3.to_us());
  }

  if (!o.json_path.empty() && !harness::write_text_file(o.json_path, json)) {
    return 1;
  }
  return 0;
}
