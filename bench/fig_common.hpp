#pragma once

// Shared driver for the figure-reproduction benches (Figures 4-7).
//
// Each bench binary measures the paper's four series (Portals put, Portals
// get, MPICH-1.2.6, MPICH2) under one NetPIPE pattern and prints the data
// the corresponding figure plots, followed by the paper's anchor values
// for eyeball comparison.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "netpipe/netpipe.hpp"

namespace xt::bench {

inline np::Options parse_options(int argc, char** argv, std::size_t max_def) {
  np::Options o;
  o.max_bytes = max_def;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max") == 0 && i + 1 < argc) {
      o.max_bytes = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      o.base_iters = 8;
      o.min_iters = 2;
    }
  }
  return o;
}

inline void run_figure(const char* figure, const char* title,
                       np::Pattern pattern, const np::Options& opts) {
  std::printf("=== %s: %s ===\n", figure, title);
  std::printf("(series x sizes, NetPIPE-style ladder to %zu bytes)\n\n",
              opts.max_bytes);
  const np::Transport series[] = {np::Transport::kPut, np::Transport::kGet,
                                  np::Transport::kMpich1,
                                  np::Transport::kMpich2};
  for (const auto t : series) {
    const auto samples = np::measure(t, pattern, opts);
    std::fputs(
        np::format_table(np::transport_name(t), pattern, samples).c_str(),
        stdout);
    std::fputs("\n", stdout);
  }
}

}  // namespace xt::bench
