// Quickstart: the smallest complete xtportals program.
//
// Builds a two-node XT3, posts a match entry + memory descriptor on node 1,
// and moves data both ways from node 0: a PtlPut into the posted buffer and
// a PtlGet back out of it.  Prints every Portals event with its simulated
// timestamp so the anatomy of the protocol (§3-§4 of the paper) is visible:
// SEND_START/SEND_END at the initiator, PUT_START/PUT_END at the target,
// REPLY_START/REPLY_END for the get.
//
// Run:  ./build/examples/quickstart

#include <cstdio>
#include <cstring>
#include <string_view>

#include "host/node.hpp"
#include "portals/api.hpp"
#include "sim/trace.hpp"

using namespace xt;
using ptl::AckReq;
using ptl::EventType;
using ptl::InsPos;
using ptl::MdDesc;
using ptl::ProcessId;
using ptl::Unlink;
using sim::CoTask;

namespace {

constexpr ptl::Pid kPid = 4;
constexpr ptl::MatchBits kBits = 0xC0FFEE;

void show(const char* who, sim::Time t, const ptl::Event& ev) {
  std::printf("  [%8.3f us] %-6s %-12s mlength=%llu\n", t.to_us(), who,
              ptl::event_type_str(ev.type),
              static_cast<unsigned long long>(ev.mlength));
}

/// Node 1: expose a buffer for puts and gets, then watch events.
CoTask<void> target(host::Process& p) {
  auto& api = p.api();
  const std::uint64_t buf = p.alloc(1024);

  // A Portals target is a match entry (who/what may land here) plus a
  // memory descriptor (where it lands).
  auto eq = co_await api.PtlEQAlloc(32);
  auto me = co_await api.PtlMEAttach(/*pt_index=*/0,
                                     ProcessId{ptl::kNidAny, ptl::kPidAny},
                                     kBits, /*ignore=*/0, Unlink::kRetain,
                                     InsPos::kAfter);
  MdDesc md;
  md.start = buf;
  md.length = 1024;
  // MANAGE_REMOTE: the initiator's remote_offset addresses the buffer, so
  // the put lands at 0 and the get reads the same bytes back from 0
  // (locally-managed offsets would advance past the put's data).
  md.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_OP_GET |
               ptl::PTL_MD_MANAGE_REMOTE;
  md.eq = eq.value;
  (void)co_await api.PtlMDAttach(me.value, md, Unlink::kRetain);
  std::printf("node 1: posted ME (bits=0x%llX) + 1 KiB MD at pt 0\n",
              static_cast<unsigned long long>(kBits));

  int puts = 0, gets = 0;
  while (puts < 1 || gets < 1) {
    auto ev = co_await api.PtlEQWait(eq.value);
    show("target", p.node().engine().now(), ev.value);
    if (ev.value.type == EventType::kPutEnd) ++puts;
    if (ev.value.type == EventType::kGetEnd) ++gets;
  }

  char text[32] = {};
  p.read_bytes(buf, std::as_writable_bytes(std::span(text, 31)));
  std::printf("node 1: buffer now contains \"%s\"\n", text);
}

/// Node 0: put a string into node 1's buffer, then get it back.
CoTask<void> initiator(host::Process& p, ProcessId peer) {
  auto& api = p.api();
  const char msg[] = "hello, red storm";
  const std::uint64_t out = p.alloc(64);
  const std::uint64_t in = p.alloc(64);
  p.write_bytes(out, std::as_bytes(std::span(msg, sizeof(msg))));

  auto eq = co_await api.PtlEQAlloc(32);
  MdDesc md;
  md.start = out;
  md.length = sizeof(msg);
  md.eq = eq.value;
  auto omd = co_await api.PtlMDBind(md, Unlink::kRetain);

  std::printf("node 0: PtlPut(\"%s\") -> node 1\n", msg);
  (void)co_await api.PtlPut(omd.value, AckReq::kAck, peer, 0, 0, kBits, 0, 0);
  bool acked = false;
  while (!acked) {
    auto ev = co_await api.PtlEQWait(eq.value);
    show("init", p.node().engine().now(), ev.value);
    if (ev.value.type == EventType::kAck) acked = true;
  }

  // Fetch the same bytes back with a get.
  MdDesc gmd;
  gmd.start = in;
  gmd.length = sizeof(msg);
  gmd.options = ptl::PTL_MD_OP_GET;
  gmd.eq = eq.value;
  auto imd = co_await api.PtlMDBind(gmd, Unlink::kRetain);
  std::printf("node 0: PtlGet <- node 1\n");
  (void)co_await api.PtlGet(imd.value, peer, 0, 0, kBits, 0);
  for (;;) {
    auto ev = co_await api.PtlEQWait(eq.value);
    show("init", p.node().engine().now(), ev.value);
    if (ev.value.type == EventType::kReplyEnd) break;
  }
  char text[32] = {};
  p.read_bytes(in, std::as_writable_bytes(std::span(text, 31)));
  std::printf("node 0: got back \"%s\"\n", text);
}

}  // namespace

int main(int argc, char** argv) {
  // Optional: --trace <file> dumps a Chrome trace-event JSON timeline of
  // the run (open in chrome://tracing or ui.perfetto.dev).
  sim::Trace trace;
  const char* trace_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--trace") trace_path = argv[i + 1];
  }
  // A 2-node XT3: Opterons, SeaStars, Catamount, the works.
  host::Machine m(net::Shape::xt3(2, 1, 1));
  if (trace_path != nullptr) m.engine().set_trace(&trace);
  host::Process& a = m.node(0).spawn_process(kPid);
  host::Process& b = m.node(1).spawn_process(kPid);

  sim::spawn(target(b));
  sim::spawn(initiator(a, b.id()));
  m.run();

  std::printf("\nsimulated time: %s; node-1 interrupts: %llu\n",
              m.engine().now().str().c_str(),
              static_cast<unsigned long long>(
                  m.node(1).firmware().counters().interrupts));
  if (trace_path != nullptr) {
    if (trace.write_chrome_json(trace_path)) {
      std::printf("trace (%zu records) written to %s\n", trace.size(),
                  trace_path);
    }
  }
  return 0;
}
