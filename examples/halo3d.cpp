// halo3d: the workload XT3-class machines were built for — a 3D stencil
// code exchanging halo (ghost-cell) faces with its six neighbors every
// iteration, running on MPI over Portals over the simulated SeaStar torus.
//
// Each rank owns an NxNxN block of doubles.  Per iteration it posts
// nonblocking receives for its six incoming faces, sends its six outgoing
// faces, waits for all, and "computes" (a fixed per-cell cost).  The
// exchange is verified: every received face must carry the sender's rank
// stamp for that iteration.
//
// Run:  ./build/examples/halo3d [block_n] [iters]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "mpi/mpi.hpp"

using namespace xt;
using mpi::Comm;
using sim::CoTask;
using sim::Time;

namespace {

constexpr int kPx = 2, kPy = 2, kPz = 2;  // 8 ranks on a 2x2x2 torus
constexpr ptl::Pid kPid = 11;

int rank_of(int x, int y, int z) {
  auto w = [](int v, int n) { return ((v % n) + n) % n; };
  return (w(z, kPz) * kPy + w(y, kPy)) * kPx + w(x, kPx);
}

struct Face {
  int neighbor;   // peer rank
  int tag;        // direction tag (recv tag == peer's send tag mirrored)
};

CoTask<void> rank_task(Comm& comm, int n, int iters, double* ms_per_iter,
                       bool* ok) {
  (void)co_await comm.init();
  (void)co_await comm.barrier();

  const int r = comm.rank();
  const int x = r % kPx, y = (r / kPx) % kPy, z = r / (kPx * kPy);
  const std::uint32_t face_bytes =
      static_cast<std::uint32_t>(n) * static_cast<std::uint32_t>(n) * 8;

  // Six faces: -x +x -y +y -z +z.  Tag encodes the axis and direction so a
  // send in +x matches the neighbor's receive from -x.
  const Face send_faces[6] = {
      {rank_of(x - 1, y, z), 0}, {rank_of(x + 1, y, z), 1},
      {rank_of(x, y - 1, z), 2}, {rank_of(x, y + 1, z), 3},
      {rank_of(x, y, z - 1), 4}, {rank_of(x, y, z + 1), 5}};
  const Face recv_faces[6] = {
      {rank_of(x + 1, y, z), 0}, {rank_of(x - 1, y, z), 1},
      {rank_of(x, y + 1, z), 2}, {rank_of(x, y - 1, z), 3},
      {rank_of(x, y, z + 1), 4}, {rank_of(x, y, z - 1), 5}};

  std::uint64_t sbuf[6], rbuf[6];
  for (int f = 0; f < 6; ++f) {
    sbuf[f] = comm.process().alloc(face_bytes);
    rbuf[f] = comm.process().alloc(face_bytes);
  }

  auto& eng = comm.process().node().engine();
  const Time t0 = eng.now();
  bool all_ok = true;
  for (int it = 0; it < iters; ++it) {
    // Stamp outgoing faces: (rank, iteration, face) in the first cell.
    for (int f = 0; f < 6; ++f) {
      const double stamp = r * 1000.0 + it * 10.0 + f;
      comm.process().write_bytes(
          sbuf[f], std::as_bytes(std::span(&stamp, 1)));
    }
    std::vector<mpi::Request> reqs(12);
    for (int f = 0; f < 6; ++f) {
      (void)co_await comm.irecv(rbuf[f], face_bytes, recv_faces[f].neighbor,
                                recv_faces[f].tag,
                                &reqs[static_cast<std::size_t>(f)]);
    }
    for (int f = 0; f < 6; ++f) {
      (void)co_await comm.isend(sbuf[f], face_bytes, send_faces[f].neighbor,
                                send_faces[f].tag,
                                &reqs[static_cast<std::size_t>(6 + f)]);
    }
    (void)co_await comm.waitall(reqs);

    // Verify stamps: face f arrived from recv_faces[f].neighbor, which sent
    // it as ITS face f.
    for (int f = 0; f < 6; ++f) {
      double stamp = 0;
      comm.process().read_bytes(
          rbuf[f], std::as_writable_bytes(std::span(&stamp, 1)));
      const double want = recv_faces[f].neighbor * 1000.0 + it * 10.0 + f;
      if (stamp != want) all_ok = false;
    }

    // "Compute": 40 ns per interior cell.
    const auto cells =
        static_cast<std::int64_t>(n) * n * n;
    co_await comm.process().node().cpu().run(Time::ns(40) * cells);
    (void)co_await comm.barrier();
  }
  *ms_per_iter = (eng.now() - t0).to_ms() / iters;
  *ok = all_ok;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 64;
  const int iters = argc > 2 ? std::atoi(argv[2]) : 5;

  host::Machine m(net::Shape::xt3(kPx, kPy, kPz));
  std::vector<ptl::ProcessId> ids;
  for (int r = 0; r < kPx * kPy * kPz; ++r) {
    ids.push_back(ptl::ProcessId{static_cast<net::NodeId>(r), kPid});
  }
  std::vector<std::unique_ptr<Comm>> comms;
  std::vector<double> ms(static_cast<std::size_t>(kPx * kPy * kPz));
  bool okbuf[8] = {};
  for (int r = 0; r < kPx * kPy * kPz; ++r) {
    host::Process& p =
        m.node(static_cast<net::NodeId>(r)).spawn_process(kPid);
    comms.push_back(std::make_unique<Comm>(p, ids, r));
    sim::spawn(rank_task(*comms.back(), n, iters,
                         &ms[static_cast<std::size_t>(r)],
                         &okbuf[r]));
  }
  m.run();

  std::printf("halo3d: %d ranks on a %dx%dx%d torus, %d^3 doubles/rank, "
              "%d iterations\n",
              kPx * kPy * kPz, kPx, kPy, kPz, n, iters);
  bool all_ok = true;
  double worst = 0;
  for (int r = 0; r < kPx * kPy * kPz; ++r) {
    all_ok = all_ok && okbuf[r];
    worst = std::max(worst, ms[static_cast<std::size_t>(r)]);
  }
  std::printf("  halo faces: %d x %zu bytes per rank per iteration\n", 6,
              static_cast<std::size_t>(n) * static_cast<std::size_t>(n) * 8);
  std::printf("  time per iteration: %.3f ms (slowest rank)\n", worst);
  std::printf("  verification: %s\n", all_ok ? "all stamps correct"
                                             : "FAILED");
  return all_ok ? 0 : 1;
}
