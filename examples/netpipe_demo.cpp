// netpipe_demo: a pocket-sized NetPIPE run (§5.2).
//
// Measures the four transports of the paper's figures over a handful of
// sizes and prints them side by side — a quick way to see the performance
// landscape without running the full figure benches.  The four series are
// independent scenarios, so the harness fans them out across cores.
//
// Run:  ./build/examples/netpipe_demo

#include <cstdio>

#include "harness/netpipe_bench.hpp"

int main() {
  using namespace xt;
  np::Options o;
  o.max_bytes = 64 * 1024;
  o.perturbation = 0;
  o.base_iters = 8;
  o.min_iters = 3;

  const std::vector<np::Transport> series = {
      np::Transport::kPut, np::Transport::kGet, np::Transport::kMpich1,
      np::Transport::kMpich2};
  const auto results = harness::measure_series(
      series, np::Pattern::kPingPong, o, {}, /*jobs=*/0);

  std::printf("NetPIPE ping-pong on a simulated Cray XT3 (2 neighbor "
              "nodes)\n\n");
  std::printf("  %10s |", "bytes");
  for (const auto& r : results) std::printf(" %11s |", r.name.c_str());
  std::printf("\n  %10s |", "");
  for (std::size_t i = 0; i < 4; ++i) std::printf(" %8s    |", "us  MB/s");
  std::printf("\n");
  for (std::size_t row = 0; row < results[0].samples.size(); ++row) {
    std::printf("  %10zu |", results[0].samples[row].bytes);
    for (const auto& r : results) {
      std::printf(" %5.2f %5.0f |", r.samples[row].usec_per_transfer,
                  r.samples[row].mbytes_per_sec);
    }
    std::printf("\n");
  }
  std::printf("\npaper anchors at 1 B: put 5.39 us, get 6.60 us, "
              "mpich-1.2.6 7.97 us, mpich2 8.40 us\n");
  return 0;
}
