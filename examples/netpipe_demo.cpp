// netpipe_demo: a pocket-sized NetPIPE run (§5.2).
//
// Measures the four transports of the paper's figures over a handful of
// sizes and prints them side by side — a quick way to see the performance
// landscape without running the full figure benches.
//
// Run:  ./build/examples/netpipe_demo

#include <cstdio>

#include "netpipe/netpipe.hpp"

int main() {
  using namespace xt;
  np::Options o;
  o.max_bytes = 64 * 1024;
  o.perturbation = 0;
  o.base_iters = 8;
  o.min_iters = 3;

  const np::Transport series[] = {np::Transport::kPut, np::Transport::kGet,
                                  np::Transport::kMpich1,
                                  np::Transport::kMpich2};
  std::vector<std::vector<np::Sample>> results;
  for (const auto t : series) {
    results.push_back(np::measure(t, np::Pattern::kPingPong, o));
  }

  std::printf("NetPIPE ping-pong on a simulated Cray XT3 (2 neighbor "
              "nodes)\n\n");
  std::printf("  %10s |", "bytes");
  for (const auto t : series) std::printf(" %11s |", np::transport_name(t));
  std::printf("\n  %10s |", "");
  for (std::size_t i = 0; i < 4; ++i) std::printf(" %8s    |", "us  MB/s");
  std::printf("\n");
  for (std::size_t row = 0; row < results[0].size(); ++row) {
    std::printf("  %10zu |", results[0][row].bytes);
    for (const auto& r : results) {
      std::printf(" %5.2f %5.0f |", r[row].usec_per_transfer,
                  r[row].mbytes_per_sec);
    }
    std::printf("\n");
  }
  std::printf("\npaper anchors at 1 B: put 5.39 us, get 6.60 us, "
              "mpich-1.2.6 7.97 us, mpich2 8.40 us\n");
  return 0;
}
