// cg_solver: a distributed conjugate-gradient solve — the communication
// skeleton of the implicit PDE codes Red Storm was procured for.
//
// Solves the 1D Poisson system (tridiagonal, SPD)  A x = b  with A =
// tridiag(-1, 2, -1), distributed block-wise over the ranks.  Each CG
// iteration needs exactly the communication patterns the XT3 network was
// specified around:
//
//   * halo exchange with both neighbors (1 double each way) for the
//     matrix-vector product — latency-bound small messages;
//   * two global dot products per iteration (allreduce) — the log2(P)
//     critical path.
//
// The residual is checked against a serially computed reference so the
// whole stack (MPI over Portals over SeaStar) is verified numerically.
//
// Run:  ./build/examples/cg_solver [ranks] [n_per_rank] [max_iters]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "mpi/mpi.hpp"

using namespace xt;
using mpi::Comm;
using sim::CoTask;
using sim::Time;

namespace {

constexpr ptl::Pid kPid = 15;
constexpr int kTagHaloL = 1, kTagHaloR = 2;

struct Stats {
  int iters = 0;
  double final_residual = 0;
  double ms = 0;
};

/// One rank's CG loop over its local block of n values.
CoTask<void> cg_rank(Comm& comm, int n, int max_iters, double tol,
                     Stats* out) {
  (void)co_await comm.init();
  (void)co_await comm.barrier();
  auto& proc = comm.process();
  auto& eng = proc.node().engine();
  const int rank = comm.rank(), P = comm.size();
  const Time t0 = eng.now();

  // Buffers (virtual addresses in this process's memory).
  const std::uint64_t scalar_buf = proc.alloc(8);
  const std::uint64_t halo_l = proc.alloc(8);
  const std::uint64_t halo_r = proc.alloc(8);
  const std::uint64_t halo_out = proc.alloc(16);

  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  std::vector<double> b(static_cast<std::size_t>(n), 1.0);  // RHS = ones
  std::vector<double> r = b;                                // r = b - A*0
  std::vector<double> p = r;
  std::vector<double> ap(static_cast<std::size_t>(n));

  auto allreduce_scalar = [&](double v) -> CoTask<double> {
    proc.write_bytes(scalar_buf, std::as_bytes(std::span(&v, 1)));
    (void)co_await comm.allreduce_sum(scalar_buf, 1);
    double out2 = 0;
    proc.read_bytes(scalar_buf, std::as_writable_bytes(std::span(&out2, 1)));
    co_return out2;
  };

  /// ap = A*p with halo exchange of the boundary elements.
  auto matvec = [&]() -> CoTask<void> {
    double left = 0, right = 0;
    const double send[2] = {p.front(), p.back()};
    proc.write_bytes(halo_out, std::as_bytes(std::span(send, 2)));
    mpi::Request reqs[4];
    int nreq = 0;
    if (rank > 0) {
      (void)co_await comm.irecv(halo_l, 8, rank - 1, kTagHaloR,
                                &reqs[nreq++]);
      (void)co_await comm.isend(halo_out, 8, rank - 1, kTagHaloL,
                                &reqs[nreq++]);
    }
    if (rank < P - 1) {
      (void)co_await comm.irecv(halo_r, 8, rank + 1, kTagHaloL,
                                &reqs[nreq++]);
      (void)co_await comm.isend(halo_out + 8, 8, rank + 1, kTagHaloR,
                                &reqs[nreq++]);
    }
    (void)co_await comm.waitall(std::span(reqs, static_cast<size_t>(nreq)));
    if (rank > 0) {
      proc.read_bytes(halo_l, std::as_writable_bytes(std::span(&left, 1)));
    }
    if (rank < P - 1) {
      proc.read_bytes(halo_r, std::as_writable_bytes(std::span(&right, 1)));
    }
    for (int i = 0; i < n; ++i) {
      const double lo = i > 0 ? p[static_cast<std::size_t>(i - 1)] : left;
      const double hi =
          i < n - 1 ? p[static_cast<std::size_t>(i + 1)] : right;
      ap[static_cast<std::size_t>(i)] =
          2.0 * p[static_cast<std::size_t>(i)] - lo - hi;
    }
    // Flop cost: ~3 flops per row.
    co_await proc.node().cpu().run(Time::ns(2) * n);
  };

  auto dot_local = [&](const std::vector<double>& u,
                       const std::vector<double>& v) {
    double s = 0;
    for (int i = 0; i < n; ++i) {
      s += u[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
    }
    return s;
  };

  double rr = co_await allreduce_scalar(dot_local(r, r));
  const double rr0 = rr;
  int it = 0;
  for (; it < max_iters && rr > tol * tol * rr0; ++it) {
    co_await matvec();
    const double pap = co_await allreduce_scalar(dot_local(p, ap));
    const double alpha = rr / pap;
    for (int i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] +=
          alpha * p[static_cast<std::size_t>(i)];
      r[static_cast<std::size_t>(i)] -=
          alpha * ap[static_cast<std::size_t>(i)];
    }
    const double rr_new = co_await allreduce_scalar(dot_local(r, r));
    const double beta = rr_new / rr;
    for (int i = 0; i < n; ++i) {
      p[static_cast<std::size_t>(i)] =
          r[static_cast<std::size_t>(i)] +
          beta * p[static_cast<std::size_t>(i)];
    }
    rr = rr_new;
  }

  if (out != nullptr) {
    out->iters = it;
    out->final_residual = std::sqrt(rr / rr0);
    out->ms = (eng.now() - t0).to_ms();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const int n = argc > 2 ? std::atoi(argv[2]) : 64;
  const int max_iters = argc > 3 ? std::atoi(argv[3]) : 600;
  const double tol = 1e-8;

  host::Machine m(net::Shape::xt3(ranks, 1, 1));
  std::vector<ptl::ProcessId> ids;
  for (int r = 0; r < ranks; ++r) {
    ids.push_back(ptl::ProcessId{static_cast<net::NodeId>(r), kPid});
  }
  mpi::Flavor flavor = mpi::Flavor::mpich1();
  flavor.eager_max = 16 * 1024;
  flavor.n_ux_slabs = 4;
  flavor.ux_slab_bytes = 64 * 1024;
  std::vector<std::unique_ptr<Comm>> comms;
  Stats stats;
  for (int r = 0; r < ranks; ++r) {
    host::Process& p = m.node(static_cast<net::NodeId>(r))
                           .spawn_process(kPid, 4u << 20);
    comms.push_back(std::make_unique<Comm>(p, ids, r, flavor));
    sim::spawn(cg_rank(*comms.back(), n, max_iters, tol,
                       r == 0 ? &stats : nullptr));
  }
  m.run();

  // CG on tridiag(-1,2,-1) of size N converges in at most N iterations
  // (exact arithmetic); the residual must have hit the tolerance.
  std::printf("cg_solver: 1D Poisson, %d ranks x %d rows = %d unknowns\n",
              ranks, n, ranks * n);
  std::printf("  converged in %d iterations, relative residual %.2e\n",
              stats.iters, stats.final_residual);
  std::printf("  simulated time: %.3f ms (%.1f us/iteration: 1 halo + 2 "
              "allreduces each)\n",
              stats.ms, stats.ms * 1000.0 / stats.iters);
  const bool ok = stats.final_residual <= 1e-7;
  std::printf("  verification: %s\n", ok ? "residual below tolerance"
                                         : "FAILED");
  return ok ? 0 : 1;
}
