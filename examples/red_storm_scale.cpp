// red_storm_scale: the simulator at machine scale.
//
// Builds a 512-node (8x8x8) XT3 slice — every node with its own SeaStar,
// firmware, Catamount kernel agent and MPI rank — and runs two canonical
// machine-scale patterns:
//
//   1. a 16-ranks-deep allreduce chain (dot-product style), timing the
//      log2(P) critical path;
//   2. a full-machine barrier storm.
//
// The point is that nothing in the stack is special-cased for two nodes:
// the same firmware, routing tables and MPI run at 512 nodes, and the run
// stays deterministic.
//
// Run:  ./build/examples/red_storm_scale [nx] [ny] [nz]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "mpi/mpi.hpp"

using namespace xt;
using mpi::Comm;
using sim::CoTask;
using sim::Time;

namespace {

constexpr ptl::Pid kPid = 13;

struct Result {
  double allreduce_us = 0;
  double barrier_us = 0;
  bool ok = false;
};

CoTask<void> rank_task(Comm& comm, Result* res) {
  (void)co_await comm.init();
  (void)co_await comm.barrier();
  auto& eng = comm.process().node().engine();

  // 16 allreduces of a 64-double vector (dot products of a CG iteration).
  const std::uint64_t buf = comm.process().alloc(64 * 8);
  std::vector<double> v(64, 1.0);
  bool ok = true;
  const Time t0 = eng.now();
  for (int it = 0; it < 16; ++it) {
    comm.process().write_bytes(buf, std::as_bytes(std::span(v)));
    (void)co_await comm.allreduce_sum(buf, 64);
    std::vector<double> got(64);
    comm.process().read_bytes(buf,
                              std::as_writable_bytes(std::span(got)));
    for (const double g : got) ok = ok && g == comm.size();
  }
  const Time t1 = eng.now();

  for (int it = 0; it < 4; ++it) {
    (void)co_await comm.barrier();
  }
  const Time t2 = eng.now();

  if (res != nullptr) {
    res->allreduce_us = (t1 - t0).to_us() / 16.0;
    res->barrier_us = (t2 - t1).to_us() / 4.0;
    res->ok = ok;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int nx = argc > 1 ? std::atoi(argv[1]) : 8;
  const int ny = argc > 2 ? std::atoi(argv[2]) : 8;
  const int nz = argc > 3 ? std::atoi(argv[3]) : 8;
  const int ranks = nx * ny * nz;

  host::Machine m(net::Shape::red_storm(nx, ny, nz));
  std::vector<ptl::ProcessId> ids;
  for (int r = 0; r < ranks; ++r) {
    ids.push_back(ptl::ProcessId{static_cast<net::NodeId>(r), kPid});
  }
  std::vector<std::unique_ptr<Comm>> comms;
  Result res;
  // Collective traffic is small: shrink the eager threshold and the
  // unexpected slabs so 512 ranks fit comfortably in host memory.
  mpi::Flavor flavor = mpi::Flavor::mpich1();
  flavor.eager_max = 16 * 1024;
  flavor.n_ux_slabs = 4;
  flavor.ux_slab_bytes = 64 * 1024;
  for (int r = 0; r < ranks; ++r) {
    host::Process& p = m.node(static_cast<net::NodeId>(r))
                           .spawn_process(kPid, 4u << 20);
    comms.push_back(std::make_unique<Comm>(p, ids, r, flavor));
    sim::spawn(rank_task(*comms.back(), r == 0 ? &res : nullptr));
  }
  const auto t_wall = std::chrono::steady_clock::now();
  const std::uint64_t events = m.run();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_wall)
          .count();

  std::printf("red_storm_scale: %d nodes (%dx%dx%d, torus in Z)\n", ranks,
              nx, ny, nz);
  std::printf("  allreduce(64 doubles): %8.1f us  (log2(%d)=%d rounds x 2)\n",
              res.allreduce_us, ranks,
              32 - __builtin_clz(static_cast<unsigned>(ranks - 1)));
  std::printf("  barrier:               %8.1f us\n", res.barrier_us);
  std::printf("  verification: %s\n",
              res.ok ? "all sums correct" : "FAILED");
  std::printf("  simulated %.3f ms in %.1f s of host time "
              "(%.1fM events, %.2fM ev/s)\n",
              m.engine().now().to_ms(), wall_s,
              static_cast<double>(events) / 1e6,
              static_cast<double>(events) / wall_s / 1e6);
  return res.ok ? 0 : 1;
}
