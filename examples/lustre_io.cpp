// lustre_io: a Lustre-style object storage service over Portals.
//
// The paper notes Portals "was also adopted by Cluster File Systems, Inc.
// as the transport layer for their Lustre file system", running as a
// kernel-level service on Linux nodes via the kbridge.  This example
// reproduces that shape:
//
//   * node 0 is a Linux SERVICE node; an object storage service runs as a
//     kernel-level Portals client (kbridge — no syscall crossing);
//   * nodes 1..N are Catamount COMPUTE nodes whose clients (qkbridge)
//     write and read objects with the classic Lustre bulk protocol:
//       WRITE: client exposes its data buffer, sends a small request RPC;
//              the server PtlGets the bulk straight out of client memory
//              and acks with a small reply put.
//       READ:  client exposes an empty buffer; the server PtlPuts the
//              object into it, then sends the reply.
//
// Every byte is verified after the round trip.
//
// Run:  ./build/examples/lustre_io [clients] [object_kb]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <vector>

#include "host/node.hpp"
#include "portals/api.hpp"

using namespace xt;
using ptl::AckReq;
using ptl::EventType;
using ptl::InsPos;
using ptl::MdDesc;
using ptl::ProcessId;
using ptl::Unlink;
using sim::CoTask;

namespace {

constexpr ptl::Pid kServicePid = 20;
constexpr ptl::Pid kClientPid = 21;
constexpr std::uint32_t kPtRpc = 0;    // request RPCs land here
constexpr std::uint32_t kPtBulk = 1;   // clients expose bulk buffers here
constexpr std::uint32_t kPtReply = 2;  // replies land here
constexpr ptl::MatchBits kRpcBits = 0x4C55;  // "LU"

enum OpCode : std::uint32_t { kWrite = 1, kRead = 2 };

/// Fixed 32-byte RPC descriptor carried as request payload.
struct Rpc {
  std::uint32_t op = 0;
  std::uint32_t object = 0;
  std::uint64_t length = 0;
  std::uint64_t bulk_bits = 0;   // client's exposed bulk buffer
  std::uint64_t reply_bits = 0;  // client's reply buffer
};

std::byte pattern_byte(std::uint32_t object, std::size_t i) {
  return static_cast<std::byte>((object * 131 + i * 7 + 3) & 0xFF);
}

/// The object storage service (kernel-level, Linux, kbridge).
CoTask<void> ost_service(host::Process& p, int expected_rpcs, int* served) {
  auto& api = p.api();
  auto eq = co_await api.PtlEQAlloc(1024);

  // Request landing zone: locally-managed offsets append RPCs; MAX_SIZE
  // retirement is not needed for this demo's request count.
  const std::size_t kSlab = 64 * 1024;
  const std::uint64_t slab = p.alloc(kSlab);
  auto me = co_await api.PtlMEAttach(kPtRpc,
                                     ProcessId{ptl::kNidAny, ptl::kPidAny},
                                     kRpcBits, 0, Unlink::kRetain,
                                     InsPos::kAfter);
  MdDesc rd;
  rd.start = slab;
  rd.length = kSlab;
  rd.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_TRUNCATE;
  rd.eq = eq.value;
  rd.user_ptr = 1;  // marks "incoming RPC" events
  (void)co_await api.PtlMDAttach(me.value, rd, Unlink::kRetain);

  // Bulk staging area + object store.
  const std::uint64_t stage = p.alloc(4 << 20);
  std::map<std::uint32_t, std::vector<std::byte>> store;

  // RPCs that arrived while the service was mid-transfer are queued here
  // rather than lost (the inner bulk waits see every event on the EQ).
  std::deque<ptl::Event> backlog;
  auto is_rpc = [](const ptl::Event& e) {
    return e.type == EventType::kPutEnd && e.user_ptr == 1;
  };
  // Bulk-MD events are tagged user_ptr=3: the small reply MDs also post
  // SEND_* events into this EQ, and consuming one of those here would let
  // the service reuse the staging buffer while the bulk DMA still reads it.
  auto bulk_wait = [&](EventType want) -> CoTask<void> {
    for (;;) {
      auto e = co_await api.PtlEQWait(eq.value);
      if (e.value.type == want && e.value.user_ptr == 3) co_return;
      if (is_rpc(e.value)) backlog.push_back(e.value);
    }
  };

  MdDesc bd;  // bulk MD, re-bound per transfer
  while (*served < expected_rpcs) {
    ptl::Event rpc_ev;
    if (!backlog.empty()) {
      rpc_ev = backlog.front();
      backlog.pop_front();
    } else {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (!is_rpc(ev.value)) continue;
      rpc_ev = ev.value;
    }

    Rpc rpc;
    p.read_bytes(slab + rpc_ev.offset,
                 std::as_writable_bytes(std::span(&rpc, 1)));
    const ProcessId client{rpc_ev.initiator.nid, rpc_ev.initiator.pid};

    std::uint64_t status = 0;
    if (rpc.op == kWrite) {
      // Pull the bulk data straight out of the client's exposed buffer.
      bd.start = stage;
      bd.length = static_cast<std::uint32_t>(rpc.length);
      bd.options = ptl::PTL_MD_OP_GET;
      bd.threshold = 1;
      bd.eq = eq.value;
      bd.user_ptr = 3;
      auto bmd = co_await api.PtlMDBind(bd, Unlink::kUnlink);
      (void)co_await api.PtlGet(bmd.value, client, kPtBulk, 0,
                                rpc.bulk_bits, 0);
      co_await bulk_wait(EventType::kReplyEnd);
      auto& obj = store[rpc.object];
      obj.resize(rpc.length);
      p.read_bytes(stage, obj);
      status = rpc.length;
    } else if (rpc.op == kRead) {
      auto it = store.find(rpc.object);
      if (it != store.end()) {
        p.write_bytes(stage, it->second);
        bd.start = stage;
        bd.length = static_cast<std::uint32_t>(it->second.size());
        bd.options = 0;
        bd.threshold = 1;
        bd.eq = eq.value;
        bd.user_ptr = 3;
        auto bmd = co_await api.PtlMDBind(bd, Unlink::kUnlink);
        (void)co_await api.PtlPut(bmd.value, AckReq::kNone, client, kPtBulk,
                                  0, rpc.bulk_bits, 0, 0);
        co_await bulk_wait(EventType::kSendEnd);
        status = it->second.size();
      }
    }

    // Small reply put to the client's reply buffer.
    const std::uint64_t rbuf = p.alloc(8);
    p.write_bytes(rbuf, std::as_bytes(std::span(&status, 1)));
    MdDesc reply;
    reply.start = rbuf;
    reply.length = 8;
    reply.threshold = 2;  // send + nothing else
    reply.eq = eq.value;
    auto rmd = co_await api.PtlMDBind(reply, Unlink::kUnlink);
    (void)co_await api.PtlPut(rmd.value, AckReq::kNone, client, kPtReply, 0,
                              rpc.reply_bits, 0, 0);
    ++*served;
  }
}

/// One compute-node client: write an object, read it back, verify.
CoTask<void> client(host::Process& p, ProcessId service,
                    std::uint32_t object, std::uint32_t len, bool* ok) {
  auto& api = p.api();
  auto eq = co_await api.PtlEQAlloc(256);

  const std::uint64_t data = p.alloc(len);
  const std::uint64_t back = p.alloc(len);
  std::vector<std::byte> bytes(len);
  for (std::size_t i = 0; i < len; ++i) bytes[i] = pattern_byte(object, i);
  p.write_bytes(data, bytes);

  // Reply landing zone.
  const std::uint64_t rbuf = p.alloc(8);
  const std::uint64_t reply_bits = 0xEE00 + object;  // unique per client
  auto rme = co_await api.PtlMEAttach(kPtReply,
                                      ProcessId{ptl::kNidAny, ptl::kPidAny},
                                      reply_bits, 0, Unlink::kRetain,
                                      InsPos::kAfter);
  MdDesc rmd;
  rmd.start = rbuf;
  rmd.length = 8;
  rmd.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE;
  rmd.eq = eq.value;
  (void)co_await api.PtlMDAttach(rme.value, rmd, Unlink::kRetain);

  auto rpc_call = [&](Rpc rpc, std::uint64_t bulk_addr, unsigned bulk_opts,
                      bool wait_bulk) -> CoTask<std::uint64_t> {
    // Expose the bulk buffer for the server to get from / put into.
    auto bme = co_await api.PtlMEAttach(
        kPtBulk, ProcessId{ptl::kNidAny, ptl::kPidAny}, rpc.bulk_bits, 0,
        Unlink::kUnlink, InsPos::kAfter);
    MdDesc bmd;
    bmd.start = bulk_addr;
    bmd.length = rpc.length ? static_cast<std::uint32_t>(rpc.length) : 1;
    bmd.options = bulk_opts;
    bmd.threshold = 1;
    bmd.eq = eq.value;
    bmd.user_ptr = 2;  // distinguishes bulk events from the reply's
    (void)co_await api.PtlMDAttach(bme.value, bmd, Unlink::kUnlink);

    // Send the 32-byte request descriptor.
    const std::uint64_t req = p.alloc(sizeof(Rpc));
    p.write_bytes(req, std::as_bytes(std::span(&rpc, 1)));
    MdDesc qmd;
    qmd.start = req;
    qmd.length = sizeof(Rpc);
    qmd.threshold = 2;
    qmd.eq = eq.value;
    auto qh = co_await api.PtlMDBind(qmd, Unlink::kUnlink);
    (void)co_await api.PtlPut(qh.value, AckReq::kNone, service, kPtRpc, 0,
                              kRpcBits, 0, 0);
    // Wait for the reply put AND — for reads — the bulk landing in our
    // buffer.  The small inline reply can complete BEFORE the multi-chunk
    // bulk deposit (Portals orders message delivery, not completion), so
    // gating on the reply alone would read the buffer too early.
    bool reply_seen = false, bulk_seen = !wait_bulk;
    while (!reply_seen || !bulk_seen) {
      auto ev = co_await api.PtlEQWait(eq.value);
      if (ev.value.type != EventType::kPutEnd) continue;
      if (ev.value.user_ptr == 2) {
        bulk_seen = true;
      } else {
        reply_seen = true;
      }
    }
    std::uint64_t status = 0;
    p.read_bytes(rbuf, std::as_writable_bytes(std::span(&status, 1)));
    co_return status;
  };

  Rpc w;
  w.op = kWrite;
  w.object = object;
  w.length = len;
  w.bulk_bits = 0xB000 + object * 2;
  w.reply_bits = reply_bits;
  const auto wst =
      co_await rpc_call(w, data, ptl::PTL_MD_OP_GET, /*wait_bulk=*/false);

  Rpc rr;
  rr.op = kRead;
  rr.object = object;
  rr.length = len;
  rr.bulk_bits = 0xB001 + object * 2;
  rr.reply_bits = reply_bits;
  const auto rst =
      co_await rpc_call(rr, back, ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE,
                        /*wait_bulk=*/true);

  std::vector<std::byte> got(len);
  p.read_bytes(back, got);
  std::size_t bad = 0, first = len;
  for (std::size_t i = 0; i < len; ++i) {
    if (got[i] != bytes[i]) {
      if (first == len) first = i;
      ++bad;
    }
  }
  if (bad || wst != len || rst != len) {
    std::printf("  client %u FAIL: wst=%llu rst=%llu bad=%zu first=%zu "
                "got0=%u want0=%u\n",
                object, (unsigned long long)wst, (unsigned long long)rst,
                bad, first, (unsigned)got[0], (unsigned)bytes[0]);
  }
  *ok = (wst == len) && (rst == len) && (got == bytes);
}

}  // namespace

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 3;
  const std::uint32_t len =
      (argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 256) *
      1024;

  // Node 0 is a Linux service node; the rest run Catamount.
  host::Machine m(net::Shape::xt3(clients + 1, 1, 1), ss::Config{},
                  [](net::NodeId id) {
                    return id == 0 ? host::OsType::kLinux
                                   : host::OsType::kCatamount;
                  });
  host::Process& svc =
      m.node(0).spawn_kernel_process(kServicePid, 64u << 20);
  int served = 0;
  sim::spawn(ost_service(svc, clients * 2, &served));

  std::vector<bool> oks(static_cast<std::size_t>(clients), false);
  bool okbuf[64] = {};
  for (int c = 0; c < clients; ++c) {
    host::Process& cp = m.node(static_cast<net::NodeId>(c + 1))
                            .spawn_process(kClientPid, 64u << 20);
    sim::spawn(client(cp, svc.id(), static_cast<std::uint32_t>(c + 1), len,
                      &okbuf[c]));
  }
  m.run();

  std::printf("lustre_io: %d clients x %u KiB objects via a kbridge "
              "service on a Linux node\n",
              clients, len / 1024);
  std::printf("  RPCs served: %d (write+read per client)\n", served);
  bool all = true;
  for (int c = 0; c < clients; ++c) all = all && okbuf[c];
  std::printf("  verification: %s\n",
              all ? "all objects round-tripped byte-exact" : "FAILED");
  std::printf("  simulated time: %s\n", m.engine().now().str().c_str());
  return all ? 0 : 1;
}
