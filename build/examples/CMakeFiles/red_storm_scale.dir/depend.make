# Empty dependencies file for red_storm_scale.
# This may be replaced when dependencies are built.
