file(REMOVE_RECURSE
  "CMakeFiles/red_storm_scale.dir/red_storm_scale.cpp.o"
  "CMakeFiles/red_storm_scale.dir/red_storm_scale.cpp.o.d"
  "red_storm_scale"
  "red_storm_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/red_storm_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
