file(REMOVE_RECURSE
  "CMakeFiles/halo3d.dir/halo3d.cpp.o"
  "CMakeFiles/halo3d.dir/halo3d.cpp.o.d"
  "halo3d"
  "halo3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
