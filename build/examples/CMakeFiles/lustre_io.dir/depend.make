# Empty dependencies file for lustre_io.
# This may be replaced when dependencies are built.
