
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/lustre_io.cpp" "examples/CMakeFiles/lustre_io.dir/lustre_io.cpp.o" "gcc" "examples/CMakeFiles/lustre_io.dir/lustre_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netpipe/CMakeFiles/xt_netpipe.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/xt_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/xt_host.dir/DependInfo.cmake"
  "/root/repo/build/src/portals/CMakeFiles/xt_portals.dir/DependInfo.cmake"
  "/root/repo/build/src/firmware/CMakeFiles/xt_firmware.dir/DependInfo.cmake"
  "/root/repo/build/src/seastar/CMakeFiles/xt_seastar.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/portals/CMakeFiles/xt_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
