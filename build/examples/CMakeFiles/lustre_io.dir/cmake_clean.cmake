file(REMOVE_RECURSE
  "CMakeFiles/lustre_io.dir/lustre_io.cpp.o"
  "CMakeFiles/lustre_io.dir/lustre_io.cpp.o.d"
  "lustre_io"
  "lustre_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lustre_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
