file(REMOVE_RECURSE
  "CMakeFiles/netpipe_demo.dir/netpipe_demo.cpp.o"
  "CMakeFiles/netpipe_demo.dir/netpipe_demo.cpp.o.d"
  "netpipe_demo"
  "netpipe_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netpipe_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
