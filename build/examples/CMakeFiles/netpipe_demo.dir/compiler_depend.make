# Empty compiler generated dependencies file for netpipe_demo.
# This may be replaced when dependencies are built.
