file(REMOVE_RECURSE
  "CMakeFiles/seastar_test.dir/seastar_test.cpp.o"
  "CMakeFiles/seastar_test.dir/seastar_test.cpp.o.d"
  "seastar_test"
  "seastar_test.pdb"
  "seastar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seastar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
