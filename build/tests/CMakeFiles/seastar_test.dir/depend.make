# Empty dependencies file for seastar_test.
# This may be replaced when dependencies are built.
