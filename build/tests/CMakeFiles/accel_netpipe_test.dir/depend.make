# Empty dependencies file for accel_netpipe_test.
# This may be replaced when dependencies are built.
