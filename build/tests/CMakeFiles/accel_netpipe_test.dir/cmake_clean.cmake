file(REMOVE_RECURSE
  "CMakeFiles/accel_netpipe_test.dir/accel_netpipe_test.cpp.o"
  "CMakeFiles/accel_netpipe_test.dir/accel_netpipe_test.cpp.o.d"
  "accel_netpipe_test"
  "accel_netpipe_test.pdb"
  "accel_netpipe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accel_netpipe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
