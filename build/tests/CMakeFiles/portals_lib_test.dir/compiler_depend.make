# Empty compiler generated dependencies file for portals_lib_test.
# This may be replaced when dependencies are built.
