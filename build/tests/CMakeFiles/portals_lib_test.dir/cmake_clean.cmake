file(REMOVE_RECURSE
  "CMakeFiles/portals_lib_test.dir/portals_lib_test.cpp.o"
  "CMakeFiles/portals_lib_test.dir/portals_lib_test.cpp.o.d"
  "portals_lib_test"
  "portals_lib_test.pdb"
  "portals_lib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portals_lib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
