# Empty compiler generated dependencies file for iovec_test.
# This may be replaced when dependencies are built.
