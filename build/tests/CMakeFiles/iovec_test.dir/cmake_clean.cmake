file(REMOVE_RECURSE
  "CMakeFiles/iovec_test.dir/iovec_test.cpp.o"
  "CMakeFiles/iovec_test.dir/iovec_test.cpp.o.d"
  "iovec_test"
  "iovec_test.pdb"
  "iovec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iovec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
