file(REMOVE_RECURSE
  "CMakeFiles/netpipe_test.dir/netpipe_test.cpp.o"
  "CMakeFiles/netpipe_test.dir/netpipe_test.cpp.o.d"
  "netpipe_test"
  "netpipe_test.pdb"
  "netpipe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netpipe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
