# Empty dependencies file for netpipe_test.
# This may be replaced when dependencies are built.
