# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/portals_lib_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/accel_test[1]_include.cmake")
include("/root/repo/build/tests/firmware_test[1]_include.cmake")
include("/root/repo/build/tests/host_test[1]_include.cmake")
include("/root/repo/build/tests/netpipe_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_coll_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/api_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/lifecycle_test[1]_include.cmake")
include("/root/repo/build/tests/seastar_test[1]_include.cmake")
include("/root/repo/build/tests/accel_netpipe_test[1]_include.cmake")
include("/root/repo/build/tests/iovec_test[1]_include.cmake")
