file(REMOVE_RECURSE
  "libxt_portals.a"
)
