# Empty compiler generated dependencies file for xt_portals.
# This may be replaced when dependencies are built.
