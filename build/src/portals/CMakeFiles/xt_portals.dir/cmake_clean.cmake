file(REMOVE_RECURSE
  "CMakeFiles/xt_portals.dir/api.cpp.o"
  "CMakeFiles/xt_portals.dir/api.cpp.o.d"
  "CMakeFiles/xt_portals.dir/library.cpp.o"
  "CMakeFiles/xt_portals.dir/library.cpp.o.d"
  "libxt_portals.a"
  "libxt_portals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt_portals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
