# Empty compiler generated dependencies file for xt_wire.
# This may be replaced when dependencies are built.
