file(REMOVE_RECURSE
  "libxt_wire.a"
)
