file(REMOVE_RECURSE
  "CMakeFiles/xt_wire.dir/wire.cpp.o"
  "CMakeFiles/xt_wire.dir/wire.cpp.o.d"
  "libxt_wire.a"
  "libxt_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
