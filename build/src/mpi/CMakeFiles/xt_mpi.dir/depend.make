# Empty dependencies file for xt_mpi.
# This may be replaced when dependencies are built.
