file(REMOVE_RECURSE
  "libxt_mpi.a"
)
