file(REMOVE_RECURSE
  "CMakeFiles/xt_mpi.dir/coll.cpp.o"
  "CMakeFiles/xt_mpi.dir/coll.cpp.o.d"
  "CMakeFiles/xt_mpi.dir/mpi.cpp.o"
  "CMakeFiles/xt_mpi.dir/mpi.cpp.o.d"
  "libxt_mpi.a"
  "libxt_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
