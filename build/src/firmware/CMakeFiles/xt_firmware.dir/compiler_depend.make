# Empty compiler generated dependencies file for xt_firmware.
# This may be replaced when dependencies are built.
