file(REMOVE_RECURSE
  "CMakeFiles/xt_firmware.dir/firmware.cpp.o"
  "CMakeFiles/xt_firmware.dir/firmware.cpp.o.d"
  "libxt_firmware.a"
  "libxt_firmware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
