file(REMOVE_RECURSE
  "libxt_firmware.a"
)
