# Empty dependencies file for xt_sim.
# This may be replaced when dependencies are built.
