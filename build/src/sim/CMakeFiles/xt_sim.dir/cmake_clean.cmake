file(REMOVE_RECURSE
  "CMakeFiles/xt_sim.dir/engine.cpp.o"
  "CMakeFiles/xt_sim.dir/engine.cpp.o.d"
  "CMakeFiles/xt_sim.dir/log.cpp.o"
  "CMakeFiles/xt_sim.dir/log.cpp.o.d"
  "CMakeFiles/xt_sim.dir/stats.cpp.o"
  "CMakeFiles/xt_sim.dir/stats.cpp.o.d"
  "CMakeFiles/xt_sim.dir/time.cpp.o"
  "CMakeFiles/xt_sim.dir/time.cpp.o.d"
  "CMakeFiles/xt_sim.dir/trace.cpp.o"
  "CMakeFiles/xt_sim.dir/trace.cpp.o.d"
  "libxt_sim.a"
  "libxt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
