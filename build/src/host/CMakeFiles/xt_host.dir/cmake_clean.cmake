file(REMOVE_RECURSE
  "CMakeFiles/xt_host.dir/accel.cpp.o"
  "CMakeFiles/xt_host.dir/accel.cpp.o.d"
  "CMakeFiles/xt_host.dir/kernel_agent.cpp.o"
  "CMakeFiles/xt_host.dir/kernel_agent.cpp.o.d"
  "CMakeFiles/xt_host.dir/node.cpp.o"
  "CMakeFiles/xt_host.dir/node.cpp.o.d"
  "libxt_host.a"
  "libxt_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
