file(REMOVE_RECURSE
  "libxt_host.a"
)
