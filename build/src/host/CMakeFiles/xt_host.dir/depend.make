# Empty dependencies file for xt_host.
# This may be replaced when dependencies are built.
