file(REMOVE_RECURSE
  "libxt_seastar.a"
)
