# Empty dependencies file for xt_seastar.
# This may be replaced when dependencies are built.
