file(REMOVE_RECURSE
  "CMakeFiles/xt_seastar.dir/nic.cpp.o"
  "CMakeFiles/xt_seastar.dir/nic.cpp.o.d"
  "libxt_seastar.a"
  "libxt_seastar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt_seastar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
