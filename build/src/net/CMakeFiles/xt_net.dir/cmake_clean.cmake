file(REMOVE_RECURSE
  "CMakeFiles/xt_net.dir/crc.cpp.o"
  "CMakeFiles/xt_net.dir/crc.cpp.o.d"
  "CMakeFiles/xt_net.dir/link.cpp.o"
  "CMakeFiles/xt_net.dir/link.cpp.o.d"
  "CMakeFiles/xt_net.dir/network.cpp.o"
  "CMakeFiles/xt_net.dir/network.cpp.o.d"
  "CMakeFiles/xt_net.dir/routing.cpp.o"
  "CMakeFiles/xt_net.dir/routing.cpp.o.d"
  "libxt_net.a"
  "libxt_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
