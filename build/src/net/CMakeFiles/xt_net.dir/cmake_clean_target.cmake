file(REMOVE_RECURSE
  "libxt_net.a"
)
