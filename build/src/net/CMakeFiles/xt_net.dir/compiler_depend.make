# Empty compiler generated dependencies file for xt_net.
# This may be replaced when dependencies are built.
