# Empty compiler generated dependencies file for xt_netpipe.
# This may be replaced when dependencies are built.
