file(REMOVE_RECURSE
  "CMakeFiles/xt_netpipe.dir/netpipe.cpp.o"
  "CMakeFiles/xt_netpipe.dir/netpipe.cpp.o.d"
  "libxt_netpipe.a"
  "libxt_netpipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt_netpipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
