file(REMOVE_RECURSE
  "libxt_netpipe.a"
)
