# Empty dependencies file for fig5_unidir_bw.
# This may be replaced when dependencies are built.
