file(REMOVE_RECURSE
  "CMakeFiles/fig5_unidir_bw.dir/fig5_unidir_bw.cpp.o"
  "CMakeFiles/fig5_unidir_bw.dir/fig5_unidir_bw.cpp.o.d"
  "fig5_unidir_bw"
  "fig5_unidir_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_unidir_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
