file(REMOVE_RECURSE
  "CMakeFiles/abl_gobackn.dir/abl_gobackn.cpp.o"
  "CMakeFiles/abl_gobackn.dir/abl_gobackn.cpp.o.d"
  "abl_gobackn"
  "abl_gobackn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_gobackn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
