# Empty compiler generated dependencies file for abl_gobackn.
# This may be replaced when dependencies are built.
