file(REMOVE_RECURSE
  "CMakeFiles/abl_linux_paging.dir/abl_linux_paging.cpp.o"
  "CMakeFiles/abl_linux_paging.dir/abl_linux_paging.cpp.o.d"
  "abl_linux_paging"
  "abl_linux_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_linux_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
