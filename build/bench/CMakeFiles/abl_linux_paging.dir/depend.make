# Empty dependencies file for abl_linux_paging.
# This may be replaced when dependencies are built.
