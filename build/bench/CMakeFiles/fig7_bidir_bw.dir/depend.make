# Empty dependencies file for fig7_bidir_bw.
# This may be replaced when dependencies are built.
