file(REMOVE_RECURSE
  "CMakeFiles/fig7_bidir_bw.dir/fig7_bidir_bw.cpp.o"
  "CMakeFiles/fig7_bidir_bw.dir/fig7_bidir_bw.cpp.o.d"
  "fig7_bidir_bw"
  "fig7_bidir_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_bidir_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
