# Empty compiler generated dependencies file for tableA_sram.
# This may be replaced when dependencies are built.
