file(REMOVE_RECURSE
  "CMakeFiles/tableA_sram.dir/tableA_sram.cpp.o"
  "CMakeFiles/tableA_sram.dir/tableA_sram.cpp.o.d"
  "tableA_sram"
  "tableA_sram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableA_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
