# Empty dependencies file for abl_small_msg.
# This may be replaced when dependencies are built.
