file(REMOVE_RECURSE
  "CMakeFiles/abl_small_msg.dir/abl_small_msg.cpp.o"
  "CMakeFiles/abl_small_msg.dir/abl_small_msg.cpp.o.d"
  "abl_small_msg"
  "abl_small_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_small_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
