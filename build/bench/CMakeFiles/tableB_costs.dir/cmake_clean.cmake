file(REMOVE_RECURSE
  "CMakeFiles/tableB_costs.dir/tableB_costs.cpp.o"
  "CMakeFiles/tableB_costs.dir/tableB_costs.cpp.o.d"
  "tableB_costs"
  "tableB_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableB_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
