# Empty dependencies file for tableB_costs.
# This may be replaced when dependencies are built.
