# Empty compiler generated dependencies file for fig6_stream_bw.
# This may be replaced when dependencies are built.
