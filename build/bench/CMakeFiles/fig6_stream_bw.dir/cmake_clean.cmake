file(REMOVE_RECURSE
  "CMakeFiles/fig6_stream_bw.dir/fig6_stream_bw.cpp.o"
  "CMakeFiles/fig6_stream_bw.dir/fig6_stream_bw.cpp.o.d"
  "fig6_stream_bw"
  "fig6_stream_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_stream_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
