# Empty compiler generated dependencies file for abl_accel_mode.
# This may be replaced when dependencies are built.
