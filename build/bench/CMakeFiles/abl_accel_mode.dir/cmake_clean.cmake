file(REMOVE_RECURSE
  "CMakeFiles/abl_accel_mode.dir/abl_accel_mode.cpp.o"
  "CMakeFiles/abl_accel_mode.dir/abl_accel_mode.cpp.o.d"
  "abl_accel_mode"
  "abl_accel_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_accel_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
