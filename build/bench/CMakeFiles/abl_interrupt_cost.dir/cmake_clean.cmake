file(REMOVE_RECURSE
  "CMakeFiles/abl_interrupt_cost.dir/abl_interrupt_cost.cpp.o"
  "CMakeFiles/abl_interrupt_cost.dir/abl_interrupt_cost.cpp.o.d"
  "abl_interrupt_cost"
  "abl_interrupt_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_interrupt_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
