# Empty dependencies file for abl_interrupt_cost.
# This may be replaced when dependencies are built.
