#include "telemetry/trace_export.hpp"

#include <cstdio>
#include <map>
#include <set>
#include <string_view>
#include <tuple>
#include <utility>

#include "sim/strf.hpp"
#include "telemetry/provenance.hpp"

namespace xt::telemetry {
namespace {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Microseconds from integer picoseconds, fixed-point so the rendering is
/// exact and deterministic ("12.345678", never scientific notation).
std::string ts_us(std::int64_t ps) {
  const long long whole = ps / 1'000'000;
  const long long frac = ps % 1'000'000;
  return sim::strf("%lld.%06lld", whole, frac);
}

struct TrackKey {
  int pid;
  int tid;
};

/// Maps a series' track strings onto (pid, tid).  "n<N>.<layer>" tracks
/// become per-node processes with a fixed tid for the well-known layers;
/// everything else (links, routers) shares the series' net process.
class TrackMapper {
 public:
  explicit TrackMapper(int pid_base) : base_(pid_base) {}

  TrackKey key(const std::string& track) {
    const auto it = cache_.find(track);
    if (it != cache_.end()) return it->second;
    const TrackKey k = classify(track);
    cache_.emplace(track, k);
    return k;
  }

  /// (pid, name) pairs for process_name metadata, insertion order.
  const std::vector<std::pair<int, std::string>>& processes() const {
    return procs_;
  }
  /// (pid, tid, name) triples for thread_name metadata, insertion order.
  const std::vector<std::tuple<int, int, std::string>>& threads() const {
    return threads_;
  }

  void name_process(int pid, std::string name) {
    procs_.emplace_back(pid, std::move(name));
  }

 private:
  static int well_known_layer(std::string_view layer) {
    if (layer == "cpu") return 0;
    if (layer == "fw") return 1;
    if (layer == "txdma") return 2;
    if (layer == "rxdma") return 3;
    return -1;
  }

  TrackKey classify(const std::string& track) {
    // "n<digits>.<layer>" → per-node process.
    if (track.size() > 1 && track[0] == 'n' &&
        track[1] >= '0' && track[1] <= '9') {
      std::size_t i = 1;
      int node = 0;
      while (i < track.size() && track[i] >= '0' && track[i] <= '9') {
        node = node * 10 + (track[i] - '0');
        ++i;
      }
      if (i < track.size() && track[i] == '.') {
        const std::string_view layer =
            std::string_view(track).substr(i + 1);
        const int pid = base_ + 1 + node;
        int tid = well_known_layer(layer);
        if (tid < 0) tid = alloc_tid(pid);
        remember(pid, sim::strf("node%d", node), tid, std::string(layer));
        return {pid, tid};
      }
    }
    // Anything else: links, routers, ad-hoc tracks.
    const int pid = base_ + 900;
    const int tid = alloc_tid(pid);
    remember(pid, "net", tid, track);
    return {pid, tid};
  }

  int alloc_tid(int pid) {
    // Dynamic tids start at 8, clear of the well-known layer slots.
    int& next = next_tid_[pid];
    if (next < 8) next = 8;
    return next++;
  }

  void remember(int pid, std::string pname, int tid, std::string tname) {
    if (!seen_pids_.count(pid)) {
      seen_pids_.insert(pid);
      procs_.emplace_back(pid, std::move(pname));
    }
    threads_.emplace_back(pid, tid, std::move(tname));
  }

  int base_;
  std::map<std::string, TrackKey> cache_;
  std::map<int, int> next_tid_;
  std::set<int> seen_pids_;
  std::vector<std::pair<int, std::string>> procs_;
  std::vector<std::tuple<int, int, std::string>> threads_;
};

void append_event(std::string& out, bool& first, const std::string& body) {
  if (!first) out += ",\n";
  first = false;
  out += body;
}

}  // namespace

std::string export_chrome_trace(const std::vector<TraceSeries>& series) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;

  for (std::size_t si = 0; si < series.size(); ++si) {
    const TraceSeries& s = series[si];
    const int base = static_cast<int>(si) * 1000;
    TrackMapper mapper(base);
    const std::string label = escape(s.label);

    // Pass 1: classify every track so metadata precedes the events that
    // reference it (viewers tolerate either order; files read better).
    if (s.records != nullptr) {
      for (const sim::Trace::Record& r : *s.records) {
        mapper.key(r.track);
      }
    }

    const bool have_msgs =
        s.provenance != nullptr && s.provenance->size() > 0;
    if (have_msgs) mapper.name_process(base, "messages");

    for (const auto& [pid, pname] : mapper.processes()) {
      append_event(
          out, first,
          sim::strf("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                    "\"tid\":0,\"ts\":0.0,\"args\":{\"name\":\"%s/%s\"}}",
                    pid, label.c_str(), escape(pname).c_str()));
    }
    for (const auto& [pid, tid, tname] : mapper.threads()) {
      append_event(
          out, first,
          sim::strf("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                    "\"tid\":%d,\"ts\":0.0,\"args\":{\"name\":\"%s\"}}",
                    pid, tid, escape(tname).c_str()));
    }

    // Trace records, input order (== engine-time order per series).
    if (s.records != nullptr) {
      for (const sim::Trace::Record& r : *s.records) {
        const TrackKey k = mapper.key(r.track);
        const std::string ts = ts_us(r.t.to_ps());
        switch (r.phase) {
          case sim::Trace::Phase::kBegin:
          case sim::Trace::Phase::kEnd:
            append_event(
                out, first,
                sim::strf("{\"name\":\"%s\",\"ph\":\"%c\",\"pid\":%d,"
                          "\"tid\":%d,\"ts\":%s}",
                          escape(r.name).c_str(),
                          static_cast<char>(r.phase), k.pid, k.tid,
                          ts.c_str()));
            break;
          case sim::Trace::Phase::kInstant:
            append_event(
                out, first,
                sim::strf("{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                          "\"pid\":%d,\"tid\":%d,\"ts\":%s,"
                          "\"args\":{\"arg\":%lld}}",
                          escape(r.name).c_str(), k.pid, k.tid, ts.c_str(),
                          static_cast<long long>(r.arg)));
            break;
          case sim::Trace::Phase::kCounter:
            append_event(
                out, first,
                sim::strf("{\"name\":\"%s\",\"ph\":\"C\",\"pid\":%d,"
                          "\"tid\":%d,\"ts\":%s,"
                          "\"args\":{\"value\":%lld}}",
                          escape(r.name).c_str(), k.pid, k.tid, ts.c_str(),
                          static_cast<long long>(r.arg)));
            break;
        }
      }
    }

    // Message lifelines: one nestable async span per provenance record,
    // id scoped by series so concurrent series never collide.
    if (have_msgs) {
      for (const MsgRecord& m : s.provenance->messages()) {
        if (m.stamps.empty()) continue;
        const std::string id = sim::strf("s%zu.m%llu", si,
                                         static_cast<unsigned long long>(
                                             m.id));
        const std::string name =
            sim::strf("msg n%u\\u2192n%u %uB", m.src, m.dst, m.bytes);
        append_event(
            out, first,
            sim::strf("{\"name\":\"%s\",\"cat\":\"msg\",\"ph\":\"b\","
                      "\"id\":\"%s\",\"pid\":%d,\"tid\":0,\"ts\":%s,"
                      "\"args\":{\"bytes\":%u}}",
                      name.c_str(), id.c_str(), base,
                      ts_us(m.stamps.front().second.to_ps()).c_str(),
                      m.bytes));
        for (std::size_t j = 1; j + 1 < m.stamps.size(); ++j) {
          append_event(
              out, first,
              sim::strf("{\"name\":\"%s\",\"cat\":\"msg\",\"ph\":\"n\","
                        "\"id\":\"%s\",\"pid\":%d,\"tid\":0,\"ts\":%s}",
                        stage_name(m.stamps[j].first), id.c_str(), base,
                        ts_us(m.stamps[j].second.to_ps()).c_str()));
        }
        if (m.stamps.size() > 1) {
          append_event(
              out, first,
              sim::strf("{\"name\":\"%s\",\"cat\":\"msg\",\"ph\":\"e\","
                        "\"id\":\"%s\",\"pid\":%d,\"tid\":0,\"ts\":%s}",
                        name.c_str(), id.c_str(), base,
                        ts_us(m.stamps.back().second.to_ps()).c_str()));
        }
      }
    }
  }

  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<TraceSeries>& series) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = export_chrome_trace(series);
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

}  // namespace xt::telemetry
