#include "telemetry/metrics.hpp"

#include <bit>

#include "sim/strf.hpp"

namespace xt::telemetry {

using sim::strf;

int Histogram::bucket_index(std::uint64_t v) {
  // 0 -> 0; otherwise 1 + floor(log2 v), i.e. std::bit_width.
  return static_cast<int>(std::bit_width(v));
}

std::uint64_t Histogram::bucket_lo(int i) {
  if (i <= 0) return 0;
  return std::uint64_t{1} << (i - 1);
}

std::uint64_t Histogram::bucket_hi(int i) {
  if (i <= 0) return 0;
  if (i >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << i) - 1;
}

std::uint64_t Histogram::percentile(int p) const {
  if (count == 0) return 0;
  // rank = ceil(count * p / 100), clamped to [1, count].
  std::uint64_t rank = (count * static_cast<std::uint64_t>(p) + 99) / 100;
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += buckets[static_cast<std::size_t>(i)];
    if (cum >= rank) return bucket_hi(i);
  }
  return bucket_hi(kBuckets - 1);
}

std::uint64_t Histogram::percentile_x10(int p_tenths) const {
  if (count == 0) return 0;
  // rank = ceil(count * p / 1000), clamped to [1, count].
  std::uint64_t rank =
      (count * static_cast<std::uint64_t>(p_tenths) + 999) / 1000;
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = buckets[static_cast<std::size_t>(i)];
    if (cum + n < rank) {
      cum += n;
      continue;
    }
    // Bucket 0 holds exactly the value 0; nothing to interpolate.
    if (i == 0) return 0;
    const std::uint64_t lo = bucket_lo(i);
    const std::uint64_t span = bucket_hi(i) - lo;
    const std::uint64_t j = rank - cum;  // 1 <= j <= n
    // span * (j / n) <= span, so the double product cannot overflow and
    // converts back to uint64 exactly enough for picosecond tails.
    return lo + static_cast<std::uint64_t>(
                    static_cast<double>(span) *
                    (static_cast<double>(j) / static_cast<double>(n)));
  }
  return bucket_hi(kBuckets - 1);
}

namespace {

template <typename Map, typename Emit>
void emit_object(std::string& out, const char* key, const Map& m,
                 Emit&& emit) {
  out += strf("\"%s\":{", key);
  bool first = true;
  for (const auto& [name, inst] : m) {
    if (!first) out += ',';
    first = false;
    out += strf("\"%s\":", name.c_str());
    emit(out, *inst);
  }
  out += '}';
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  counter_slab_.emplace_back();
  Counter* c = &counter_slab_.back();
  counters_.emplace(std::string(name), c);
  return *c;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  gauge_slab_.emplace_back();
  Gauge* g = &gauge_slab_.back();
  gauges_.emplace(std::string(name), g);
  return *g;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  histogram_slab_.emplace_back();
  Histogram* h = &histogram_slab_.back();
  histograms_.emplace(std::string(name), h);
  return *h;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{";
  emit_object(out, "counters", counters_,
              [](std::string& o, const Counter& c) {
                o += strf("%llu",
                          static_cast<unsigned long long>(c.value));
              });
  out += ',';
  emit_object(out, "gauges", gauges_, [](std::string& o, const Gauge& g) {
    o += strf("{\"value\":%lld,\"high_water\":%lld}",
              static_cast<long long>(g.value),
              static_cast<long long>(g.high_water));
  });
  out += ',';
  emit_object(
      out, "histograms", histograms_,
      [](std::string& o, const Histogram& h) {
        o += strf("{\"count\":%llu,\"sum\":%llu,\"p50\":%llu,\"p90\":%llu,"
                  "\"p99\":%llu,\"p999\":%llu,\"buckets\":[",
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum),
                  static_cast<unsigned long long>(h.percentile(50)),
                  static_cast<unsigned long long>(h.percentile(90)),
                  static_cast<unsigned long long>(h.percentile(99)),
                  static_cast<unsigned long long>(h.percentile_x10(999)));
        bool first = true;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          const std::uint64_t n = h.buckets[static_cast<std::size_t>(i)];
          if (n == 0) continue;
          if (!first) o += ',';
          first = false;
          o += strf("[%llu,%llu,%llu]",
                    static_cast<unsigned long long>(Histogram::bucket_lo(i)),
                    static_cast<unsigned long long>(Histogram::bucket_hi(i)),
                    static_cast<unsigned long long>(n));
        }
        o += "]}";
      });
  out += '}';
  return out;
}

}  // namespace xt::telemetry
