#pragma once

// Simulator self-profiling: wall-clock cost of the simulator ITSELF.
//
// Everything else in src/telemetry accounts for *simulated* time; the
// Profiler accounts for the *host* time the event loop spends dispatching,
// split by handler category — which layer of the stack the dispatched
// event belongs to.  That is the instrument the ROADMAP's "hot-path
// micro-optimization driven by self-profiling" item needs: events/sec by
// category tells you whether the next microsecond should come out of the
// firmware mailbox churn, the match walk, or the event-queue allocator.
//
// Cost contract (mirroring the other sinks): the profiler is per-engine
// and null by default.  When absent, the dispatch loop pays one
// predicted-not-taken branch; when installed, each dispatch pays two
// steady-clock reads (~20 ns each) — fine for profiling runs, which is
// why the events/sec trend in BENCH_engine.json is only comparable to
// other *profiled* runs.
//
// Categories are assigned at schedule time: the engine stamps each event
// with its current scheduling category (sim::Engine::tag_category), which
// layer handler entry points set and which nested schedules inherit — an
// event scheduled while a firmware handler runs is firmware work unless
// someone says otherwise.  Attribution is therefore best-effort at layer
// seams, but exact in total: the per-category event counts always sum to
// Engine::executed().

#include <array>
#include <cstdint>
#include <string>

namespace xt::telemetry {

/// Handler categories, the tracks of the self-profile.  Fits in a byte so
/// every event slab record can carry its tag for free.
enum class Cat : std::uint8_t {
  kOther = 0,  ///< setup, workload generators, host application code
  kNic,        ///< SeaStar NIC: DMA engines, HT crossings, rx/tx pumps
  kFirmware,   ///< firmware event loop: mailbox polls, handlers
  kAgent,      ///< kernel agent + accel agent: interrupts, API pumps
  kPortals,    ///< portals library deferred work (EQ posts, timeouts)
  kNet,        ///< links and routers: serialization, VC arbitration
  kCluster,    ///< multi-tenant scheduler: arrivals, dispatch, placement
};

inline constexpr int kCatCount = static_cast<int>(Cat::kCluster) + 1;

const char* cat_name(Cat c);

class Profiler {
 public:
  struct Slot {
    std::uint64_t events = 0;   ///< dispatches attributed to the category
    std::uint64_t wall_ns = 0;  ///< host nanoseconds spent inside them
  };

  /// Monotonic host clock in nanoseconds (CLOCK_MONOTONIC).
  static std::uint64_t now_ns();

  void account(Cat c, std::uint64_t ns) {
    Slot& s = slots_[static_cast<std::size_t>(c)];
    ++s.events;
    s.wall_ns += ns;
  }

  /// Sums another profile into this one (sweep merging; addition
  /// commutes, so merge order does not change the counts).
  void merge(const Profiler& o) {
    for (int i = 0; i < kCatCount; ++i) {
      slots_[static_cast<std::size_t>(i)].events +=
          o.slots_[static_cast<std::size_t>(i)].events;
      slots_[static_cast<std::size_t>(i)].wall_ns +=
          o.slots_[static_cast<std::size_t>(i)].wall_ns;
    }
  }

  const Slot& slot(Cat c) const {
    return slots_[static_cast<std::size_t>(c)];
  }
  std::uint64_t total_events() const;
  std::uint64_t total_wall_ns() const;
  /// Dispatches per host second over the whole profile; 0 when no wall
  /// time was recorded.
  double events_per_sec() const;

  /// Human-readable per-category table (events, wall ms, events/sec,
  /// share), categories in enum order, zero-event categories included so
  /// the layout is stable.
  std::string report() const;

  /// JSON object: {"categories":{"other":{"events":..,"wall_ns":..},...},
  /// "events_per_sec":..,"total_events":..,"total_wall_ns":..}.
  /// Categories in enum order; event counts are deterministic, wall
  /// fields are host time.
  std::string to_json() const;

 private:
  std::array<Slot, kCatCount> slots_{};
};

}  // namespace xt::telemetry
