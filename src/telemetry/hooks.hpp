#pragma once

// Engine-gated provenance emit helpers, mirroring trace_begin/trace_end in
// sim/trace.hpp: no-ops (and no allocation) unless a ProvenanceLog is
// installed on the engine.  Lives in its own header so the core telemetry
// library stays independent of the sim kernel.

#include <cstdint>

#include "sim/engine.hpp"
#include "telemetry/provenance.hpp"

namespace xt::telemetry {

/// Opens a provenance record for a message posted now; returns its id, or
/// 0 (the untracked sentinel) when provenance is disabled on `eng`.
inline std::uint64_t prov_begin(sim::Engine& eng, std::uint32_t src,
                                std::uint32_t dst, std::uint32_t bytes) {
  if (ProvenanceLog* p = eng.provenance()) {
    return p->begin_message(src, dst, bytes, eng.now());
  }
  return 0;
}

/// Opens a provenance record whose first stamp is `first` instead of
/// kHostPost — workload generators open request records at kAppArrival.
inline std::uint64_t prov_begin_at(sim::Engine& eng, std::uint32_t src,
                                   std::uint32_t dst, std::uint32_t bytes,
                                   Stage first) {
  if (ProvenanceLog* p = eng.provenance()) {
    return p->begin_message(src, dst, bytes, eng.now(), first);
  }
  return 0;
}

/// Stamps stage `s` on message `id` at eng.now(); no-op for id 0 or when
/// provenance is disabled.
inline void prov_stamp(sim::Engine& eng, std::uint64_t id, Stage s) {
  if (id == 0) return;
  if (ProvenanceLog* p = eng.provenance()) p->stamp(id, s, eng.now());
}

}  // namespace xt::telemetry
