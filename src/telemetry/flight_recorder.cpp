#include "telemetry/flight_recorder.hpp"

#include <cstdio>

#include "sim/strf.hpp"

namespace xt::telemetry {

std::vector<FlightEntry> FlightRecorder::snapshot() const {
  const std::size_t n = size();
  std::vector<FlightEntry> out;
  out.reserve(n);
  // Oldest entry: head_ when wrapped (head_ points at the next victim),
  // index 0 before the first wrap.
  const std::size_t start = recorded_ < ring_.size() ? 0 : head_;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string FlightRecorder::dump() const {
  const std::vector<FlightEntry> entries = snapshot();
  std::string out = sim::strf(
      "flight recorder: last %zu of %llu dispatched events "
      "(oldest first)\n",
      entries.size(), static_cast<unsigned long long>(recorded_));
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const FlightEntry& e = entries[i];
    out += sim::strf("[%3zu] t=%lldps seq=%llu cat=%s node=%d\n", i,
                     static_cast<long long>(e.t_ps),
                     static_cast<unsigned long long>(e.seq),
                     cat_name(e.cat), static_cast<int>(e.node));
  }
  return out;
}

bool FlightRecorder::dump_to(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = dump();
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

}  // namespace xt::telemetry
