#pragma once

// Per-engine metrics registry.
//
// Counters, gauges and log2-bucketed histograms, registered by name and
// snapshotable to deterministic JSON.  One registry per sim::Engine (never
// process-global), so parallel sweeps collect independent snapshots that
// merge byte-identically regardless of --jobs.
//
// Cost model, in the spirit of Engine::trace_enabled():
//   * Counter::add / Gauge::set are a single integer op on a cached handle —
//     always live, cheap enough for every hot path (this is where the
//     firmware and kernel-agent op counts live).
//   * Distribution *sampling* (histograms, occupancy/depth gauges) is gated
//     behind MetricsRegistry::sampling(), default off, so runs that never
//     ask for --metrics pay one predicted-not-taken branch.
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime (deque storage): components look them up once at
// construction and keep the pointer.
//
// Everything snapshotted is an integer (counts, picoseconds, bucket
// bounds), so to_json() is bit-reproducible across runs and platforms.

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>

namespace xt::telemetry {

struct Counter {
  std::uint64_t value = 0;
  void add(std::uint64_t n = 1) { value += n; }
};

/// Last-value gauge that also tracks its high-water mark.
struct Gauge {
  std::int64_t value = 0;
  std::int64_t high_water = 0;
  void set(std::int64_t v) {
    value = v;
    if (v > high_water) high_water = v;
  }
};

/// Log2-bucketed histogram.  Bucket 0 holds exactly the value 0; bucket
/// i >= 1 holds [2^(i-1), 2^i - 1].  64-bit values need at most 65 buckets.
struct Histogram {
  static constexpr int kBuckets = 65;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  static int bucket_index(std::uint64_t v);
  /// Inclusive [lo, hi] range covered by bucket `i`.
  static std::uint64_t bucket_lo(int i);
  static std::uint64_t bucket_hi(int i);

  void record(std::uint64_t v) {
    ++count;
    sum += v;
    ++buckets[static_cast<std::size_t>(bucket_index(v))];
  }

  /// Upper bound of the bucket containing the p-th percentile sample
  /// (rank = ceil(count * p / 100), integer math only).  0 when empty.
  std::uint64_t percentile(int p) const;

  /// Percentile in tenths of a percent (p999 = 99.9%), linearly
  /// interpolated within the log2 bucket: the bucket's samples are assumed
  /// uniform over [lo, hi], so the j-th of its n samples sits at
  /// lo + (hi - lo) * j / n.  Needed for SLO tails — p999 would otherwise
  /// collapse onto bucket_hi, a 2x overestimate in the worst case.  The
  /// interpolation uses one double ratio (j/n <= 1), which is IEEE-exact
  /// enough to stay reproducible across runs.
  std::uint64_t percentile_x10(int p_tenths) const;
};

class MetricsRegistry {
 public:
  /// Looks up or creates the named instrument.  The reference stays valid
  /// for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Gate for distribution sampling (histograms, occupancy gauges).
  /// Counters ignore this — they are always live.
  bool sampling() const { return sampling_; }
  void set_sampling(bool on) { sampling_ = on; }

  /// Deterministic snapshot: sorted names, integer values only.
  /// {"counters":{...},"gauges":{...},"histograms":{...}}
  std::string to_json() const;

 private:
  bool sampling_ = false;
  std::deque<Counter> counter_slab_;
  std::deque<Gauge> gauge_slab_;
  std::deque<Histogram> histogram_slab_;
  std::map<std::string, Counter*, std::less<>> counters_;
  std::map<std::string, Gauge*, std::less<>> gauges_;
  std::map<std::string, Histogram*, std::less<>> histograms_;
};

}  // namespace xt::telemetry
