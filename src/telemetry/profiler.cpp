#include "telemetry/profiler.hpp"

#include <ctime>

#include "sim/strf.hpp"

namespace xt::telemetry {

const char* cat_name(Cat c) {
  switch (c) {
    case Cat::kOther:
      return "other";
    case Cat::kNic:
      return "nic";
    case Cat::kFirmware:
      return "firmware";
    case Cat::kAgent:
      return "agent";
    case Cat::kPortals:
      return "portals";
    case Cat::kNet:
      return "net";
    case Cat::kCluster:
      return "cluster";
  }
  return "?";
}

std::uint64_t Profiler::now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint64_t Profiler::total_events() const {
  std::uint64_t n = 0;
  for (const Slot& s : slots_) n += s.events;
  return n;
}

std::uint64_t Profiler::total_wall_ns() const {
  std::uint64_t n = 0;
  for (const Slot& s : slots_) n += s.wall_ns;
  return n;
}

double Profiler::events_per_sec() const {
  const std::uint64_t ns = total_wall_ns();
  if (ns == 0) return 0.0;
  return static_cast<double>(total_events()) * 1e9 /
         static_cast<double>(ns);
}

std::string Profiler::report() const {
  const double tot_ns = static_cast<double>(total_wall_ns());
  std::string out = sim::strf("  %-10s %12s %10s %14s %7s\n", "category",
                              "events", "wall ms", "events/sec", "share");
  for (int i = 0; i < kCatCount; ++i) {
    const Slot& s = slots_[static_cast<std::size_t>(i)];
    const double evps =
        s.wall_ns == 0 ? 0.0
                       : static_cast<double>(s.events) * 1e9 /
                             static_cast<double>(s.wall_ns);
    const double share =
        tot_ns == 0.0 ? 0.0
                      : 100.0 * static_cast<double>(s.wall_ns) / tot_ns;
    out += sim::strf("  %-10s %12llu %10.2f %14.0f %6.1f%%\n",
                     cat_name(static_cast<Cat>(i)),
                     static_cast<unsigned long long>(s.events),
                     static_cast<double>(s.wall_ns) * 1e-6, evps, share);
  }
  out += sim::strf("  %-10s %12llu %10.2f %14.0f\n", "total",
                   static_cast<unsigned long long>(total_events()),
                   static_cast<double>(total_wall_ns()) * 1e-6,
                   events_per_sec());
  return out;
}

std::string Profiler::to_json() const {
  std::string cats;
  for (int i = 0; i < kCatCount; ++i) {
    const Slot& s = slots_[static_cast<std::size_t>(i)];
    const double evps =
        s.wall_ns == 0 ? 0.0
                       : static_cast<double>(s.events) * 1e9 /
                             static_cast<double>(s.wall_ns);
    if (!cats.empty()) cats += ", ";
    cats += sim::strf(
        "\"%s\": {\"events\": %llu, \"events_per_sec\": %.0f, "
        "\"wall_ns\": %llu}",
        cat_name(static_cast<Cat>(i)),
        static_cast<unsigned long long>(s.events), evps,
        static_cast<unsigned long long>(s.wall_ns));
  }
  return sim::strf(
      "{\"categories\": {%s}, \"events_per_sec\": %.0f, "
      "\"total_events\": %llu, \"total_wall_ns\": %llu}",
      cats.c_str(), events_per_sec(),
      static_cast<unsigned long long>(total_events()),
      static_cast<unsigned long long>(total_wall_ns()));
}

}  // namespace xt::telemetry
