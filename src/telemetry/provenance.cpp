#include "telemetry/provenance.hpp"

#include <array>

#include "sim/strf.hpp"

namespace xt::telemetry {

using sim::strf;

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kAppArrival: return "app_arrival";
    case Stage::kAppQueue: return "app_queue";
    case Stage::kHostPost: return "host_post";
    case Stage::kFwTxCmd: return "fw_tx_cmd";
    case Stage::kTxDma: return "tx_dma";
    case Stage::kWireHeader: return "wire_header";
    case Stage::kRetransmit: return "retransmit";
    case Stage::kRxNicHeader: return "rx_nic_header";
    case Stage::kRxNicComplete: return "rx_nic_complete";
    case Stage::kFwRxHeader: return "fw_rx_header";
    case Stage::kFwMatch: return "fw_match";
    case Stage::kFwRxCmd: return "fw_rx_cmd";
    case Stage::kRxDma: return "rx_dma";
    case Stage::kFwComplete: return "fw_complete";
    case Stage::kIrqRaise: return "irq_raise";
    case Stage::kEventPost: return "event_post";
    case Stage::kHostMatch: return "host_match";
    case Stage::kHostDeliver: return "host_deliver";
  }
  return "?";
}

std::uint64_t ProvenanceLog::begin_message(std::uint32_t src,
                                           std::uint32_t dst,
                                           std::uint32_t bytes, sim::Time t,
                                           Stage first) {
  MsgRecord rec;
  rec.id = msgs_.size() + 1;
  rec.src = src;
  rec.dst = dst;
  rec.bytes = bytes;
  rec.stamps.emplace_back(first, t);
  msgs_.push_back(std::move(rec));
  return msgs_.back().id;
}

void ProvenanceLog::stamp(std::uint64_t id, Stage s, sim::Time t) {
  if (id == 0 || id > msgs_.size()) return;
  msgs_[id - 1].stamps.emplace_back(s, t);
}

Attribution ProvenanceLog::attribute() const {
  std::array<std::uint64_t, kStageCount> total{};
  std::array<std::uint64_t, kStageCount> visits{};
  Attribution out;
  for (const MsgRecord& m : msgs_) {
    if (m.stamps.size() < 2) continue;
    if (m.stamps.front().first != Stage::kHostPost &&
        m.stamps.front().first != Stage::kAppArrival) {
      continue;
    }
    if (m.stamps.back().first != Stage::kHostDeliver) continue;
    ++out.messages;
    out.e2e_ps += static_cast<std::uint64_t>(
        (m.stamps.back().second - m.stamps.front().second).to_ps());
    for (std::size_t i = 1; i < m.stamps.size(); ++i) {
      const auto idx = static_cast<std::size_t>(m.stamps[i].first);
      total[idx] += static_cast<std::uint64_t>(
          (m.stamps[i].second - m.stamps[i - 1].second).to_ps());
      ++visits[idx];
    }
  }
  for (int i = 0; i < kStageCount; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (visits[idx] == 0) continue;
    out.rows.push_back(
        StageRow{static_cast<Stage>(i), total[idx], visits[idx]});
  }
  return out;
}

std::string ProvenanceLog::to_json() const {
  std::string out = "{\"messages\":[";
  bool first_msg = true;
  for (const MsgRecord& m : msgs_) {
    if (!first_msg) out += ',';
    first_msg = false;
    out += strf("{\"id\":%llu,\"src\":%u,\"dst\":%u,\"bytes\":%u,"
                "\"stamps\":[",
                static_cast<unsigned long long>(m.id), m.src, m.dst,
                m.bytes);
    bool first_st = true;
    for (const auto& [stage, t] : m.stamps) {
      if (!first_st) out += ',';
      first_st = false;
      out += strf("[\"%s\",%lld]", stage_name(stage),
                  static_cast<long long>(t.to_ps()));
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace xt::telemetry
