#pragma once

// Message provenance: per-stage latency attribution.
//
// Each wire message can be stamped with a provenance id at the host that
// posts it; every layer it traverses then appends a (stage, time) stamp to
// the message's record.  The result is a per-message latency waterfall
// (host post -> HT crossing -> Tx DMA -> wire -> Rx DMA -> firmware
// match/deposit -> interrupt raise -> host event delivery) and, aggregated,
// a measured stage-attribution table — the paper's Table-B cost breakdown
// reproduced from measurement instead of from the config constants.
//
// Attribution is by telescoping interval: the time between consecutive
// stamps is charged to the *later* stamp's stage, so per-stage sums equal
// the end-to-end latency exactly.  Records are append-only and the engine
// is single-threaded, so stamps within one message are time-ordered.
//
// Like sim::Trace, the log is installed per-engine (Engine::set_provenance)
// and null by default; the prov_begin/prov_stamp helpers in
// telemetry/hooks.hpp no-op when disabled (id 0 is the "untracked"
// sentinel that propagates for free through message structs).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace xt::telemetry {

/// Pipeline stages, in path order.  A single message only visits a subset
/// (e.g. inline deliveries skip the Rx DMA stages; accelerated mode skips
/// the interrupt/host-match stages in favour of kFwMatch/kEventPost).
/// The two kApp* stages sit above the Portals API: workload generators use
/// them to split request latency into queueing (arrival -> issue) and
/// service (issue -> delivery) without touching the per-message NIC path.
enum class Stage : std::uint8_t {
  kAppArrival = 0,    // request generated (open-loop intended arrival)
  kAppQueue,          // request issued to the API (time since arrival =
                      // generator queueing delay)
  kHostPost,          // application/agent issues the send
  kFwTxCmd,           // firmware picked the Tx command off the mailbox
  kTxDma,             // Tx DMA program started
  kWireHeader,        // header handed to the link (HT read done)
  kRetransmit,        // go-back-n resent the message (fault recovery);
                      // the interval charged here is the recovery latency
  kRxNicHeader,       // header arrived at the destination NIC
  kRxNicComplete,     // last payload flit arrived at the destination NIC
  kFwRxHeader,        // destination firmware parsed the header
  kFwMatch,           // firmware-side match walk finished (accel mode)
  kFwRxCmd,           // firmware picked the host's Rx command (generic mode)
  kRxDma,             // Rx DMA deposit finished
  kFwComplete,        // firmware completion processing done
  kIrqRaise,          // event posted + interrupt raised (generic mode)
  kEventPost,         // event posted for host polling (accel mode)
  kHostMatch,         // host-side match walk finished (generic mode)
  kHostDeliver,       // full event delivered to the application
};

inline constexpr int kStageCount = static_cast<int>(Stage::kHostDeliver) + 1;

const char* stage_name(Stage s);

struct MsgRecord {
  std::uint64_t id = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t bytes = 0;
  std::vector<std::pair<Stage, sim::Time>> stamps;
};

/// One aggregated attribution row: total time charged to `stage` across
/// all attributed messages, and how many messages visited it.
struct StageRow {
  Stage stage;
  std::uint64_t total_ps = 0;
  std::uint64_t visits = 0;
};

struct Attribution {
  std::vector<StageRow> rows;   // path order, only visited stages
  std::uint64_t messages = 0;   // complete records aggregated
  std::uint64_t e2e_ps = 0;     // sum of (last - first) over those records
};

class ProvenanceLog {
 public:
  /// Starts a record and stamps `first` (default kHostPost) at `t`.
  /// Returns the new id (never 0; 0 means "untracked" at stamp sites).
  /// Workload generators open their records at kAppArrival.
  std::uint64_t begin_message(std::uint32_t src, std::uint32_t dst,
                              std::uint32_t bytes, sim::Time t,
                              Stage first = Stage::kHostPost);

  /// Appends a stamp to message `id`.  No-op for id 0 / unknown ids.
  void stamp(std::uint64_t id, Stage s, sim::Time t);

  const std::vector<MsgRecord>& messages() const { return msgs_; }
  std::size_t size() const { return msgs_.size(); }
  void clear() { msgs_.clear(); }

  /// Aggregates every record whose first stamp is kHostPost or kAppArrival
  /// and whose last stamp is kHostDeliver (i.e. messages/requests observed
  /// end to end).  By construction sum(rows[i].total_ps) == e2e_ps.
  Attribution attribute() const;

  /// Deterministic JSON: the per-message waterfalls, times in ps.
  std::string to_json() const;

 private:
  std::vector<MsgRecord> msgs_;
};

}  // namespace xt::telemetry
