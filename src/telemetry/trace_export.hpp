#pragma once

// Chrome-trace timeline export.
//
// Serializes one or more simulation runs ("series") into the Trace Event
// Format that chrome://tracing and https://ui.perfetto.dev load: numeric
// pid/tid tracks named through 'M' metadata events, B/E/i/C records from
// the per-engine sim::Trace, and — when a ProvenanceLog is present — one
// nestable async span ('b'…'n'…'e') per message, so a message's lifeline
// telescopes to exactly the end-to-end latency the breakdown bench
// reports for it.
//
// Track model (per series `i`, pid base = i * 1000):
//   pid base+0          "<label>/messages"  — async message lifelines
//   pid base+1+node     "<label>/node<N>"   — tracks named "n<N>.<layer>";
//                       tid is the layer (cpu=0, fw=1, txdma=2, rxdma=3,
//                       others in first-appearance order from 8)
//   pid base+900        "<label>/net"       — link/router tracks (counter
//                       samples for occupancy and VC arbitration); tid in
//                       first-appearance order
//
// Determinism: output is a pure function of the inputs in input order —
// no host time, no pointers, no hashing — so two runs of the same
// deterministic simulation serialize byte-identically regardless of how
// many worker threads produced the series.  Timestamps are microseconds
// rendered in fixed-point from integer picoseconds (exact, locale-free).
// Within one series each sim::Trace is appended in engine-time order, so
// every (pid, tid) track is sorted by ts by construction.

#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace xt::telemetry {

class ProvenanceLog;

/// One simulation run's worth of timeline input.  Both sources are
/// optional; a series with neither contributes only its metadata.
struct TraceSeries {
  std::string label;
  const std::vector<sim::Trace::Record>* records = nullptr;
  const ProvenanceLog* provenance = nullptr;
};

/// Serializes `series` as a Trace Event Format JSON object
/// ({"traceEvents":[...]}).  Every event carries pid, tid, ts and ph.
std::string export_chrome_trace(const std::vector<TraceSeries>& series);

/// Writes export_chrome_trace() to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const std::vector<TraceSeries>& series);

}  // namespace xt::telemetry
