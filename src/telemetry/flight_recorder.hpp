#pragma once

// Crash flight recorder: the last N dispatched events, always on.
//
// Every sim::Engine carries one fixed-size ring of cheap per-dispatch
// records (sim time, sequence number, handler category, node).  When a run
// dies — an InvariantChecker violation, a firmware panic, a fuzzer seed
// failing — the ring is dumped next to the failing seed, so the post-
// mortem starts from "what was the simulator doing in its last moments"
// instead of from nothing.  Think of it as the black box the fuzz
// reproducer line replays toward.
//
// Recording is unconditional by design (the crash you want recorded is
// the one you did not arm instrumentation for), so the record path must
// stay trivially cheap: four stores into a preallocated ring, no
// branches beyond the wrap mask, no allocation after construction.
// Measured overhead on load_sweep --smoke is under 2% (EXPERIMENTS.md).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/profiler.hpp"  // Cat

namespace xt::telemetry {

struct FlightEntry {
  std::int64_t t_ps = 0;    ///< simulated time of the dispatch
  std::uint64_t seq = 0;    ///< engine-wide schedule sequence number
  Cat cat = Cat::kOther;    ///< handler category (schedule-time tag)
  std::int16_t node = -1;   ///< node the scheduling layer claimed, or -1
};

class FlightRecorder {
 public:
  /// Default ring depth: enough to see the whole recent causal
  /// neighborhood of a failure (several firmware poll cycles across a
  /// handful of nodes) while keeping the engine's footprint trivial.
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  void record(std::int64_t t_ps, std::uint64_t seq, Cat cat,
              std::int16_t node) noexcept {
    FlightEntry& e = ring_[head_];
    e.t_ps = t_ps;
    e.seq = seq;
    e.cat = cat;
    e.node = node;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    ++recorded_;
  }

  std::size_t capacity() const { return ring_.size(); }
  /// Entries currently held (== capacity once the ring has wrapped).
  std::size_t size() const {
    return recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                                    : ring_.size();
  }
  /// Total events ever recorded (dispatch count witnessed).
  std::uint64_t recorded() const { return recorded_; }

  /// The held entries, oldest first.
  std::vector<FlightEntry> snapshot() const;

  /// Text dump, one line per entry oldest-first:
  ///   [  i] t=<ps>ps seq=<seq> cat=<name> node=<n>
  /// preceded by a header with the totals.  Deterministic for a
  /// deterministic run, so dumps diff cleanly across replays.
  std::string dump() const;

  /// Writes dump() to `path`; false on I/O failure.
  bool dump_to(const std::string& path) const;

 private:
  std::vector<FlightEntry> ring_;
  std::size_t head_ = 0;
  std::uint64_t recorded_ = 0;
};

}  // namespace xt::telemetry
