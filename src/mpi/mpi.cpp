#include "mpi/mpi.hpp"

#include <algorithm>

#include <cassert>

#include "sim/strf.hpp"
#include "telemetry/metrics.hpp"

namespace xt::mpi {

using ptl::AckReq;
using ptl::Event;
using ptl::EventType;
using ptl::InsPos;
using ptl::MdDesc;
using ptl::ProcessId;
using ptl::PTL_OK;
using ptl::Unlink;
using sim::CoTask;
using sim::Time;

namespace {

/// Portal table indices used by the MPI library.
constexpr std::uint32_t kPtMpi = 1;
constexpr std::uint32_t kPtRndv = 2;

/// Match-bits layout: [63:48] context | [47:32] src rank | [31:8] tag |
/// [7:0] flags.
constexpr std::uint64_t kContext = 0x4D50ull << 48;  // "MP"
constexpr std::uint64_t kFlagRndv = 0x01;
constexpr std::uint64_t kSrcMask = 0xFFFFull << 32;
constexpr std::uint64_t kTagMask = 0xFFFFFFull << 8;
constexpr std::uint64_t kFlagMask = 0xFFull;
/// Sentinel entry bits: flag byte 0xFF is never sent by the protocol.
constexpr std::uint64_t kSentinelBits = kContext | 0xFF;

/// user_ptr values at or above this identify unexpected slabs.
constexpr std::uint64_t kSlabBase = 1ull << 48;

/// Rendezvous match-bit spaces on kPtRndv.  The raw 31-bit token names the
/// sender's get-exposed buffer (get protocol); kRndvCts|token is the
/// sender's CTS catcher and kRndvData|rtoken the receiver's exposed buffer
/// (push protocol).  RTS hdr_data carries the token in its low 32 bits
/// with bit 31 (kRtsPushFlag) selecting the protocol, hence 31-bit tokens.
constexpr std::uint64_t kRtsPushFlag = 0x80000000ull;
constexpr std::uint64_t kRndvTokenMask = 0x7FFFFFFFull;
constexpr std::uint64_t kRndvCts = 1ull << 32;
constexpr std::uint64_t kRndvData = 2ull << 32;

int bits_src(std::uint64_t bits) {
  return static_cast<int>((bits & kSrcMask) >> 32);
}
int bits_tag(std::uint64_t bits) {
  return static_cast<int>((bits & kTagMask) >> 8);
}

constexpr int kTagBarrier = 0xFFFF00;  // above any sane user tag

}  // namespace

Flavor Flavor::mpich1() {
  Flavor f;
  f.name = "mpich-1.2.6";
  f.send_overhead = Time::ns(1200);
  f.recv_overhead = Time::ns(1200);
  f.wait_overhead = Time::ns(1250);
  f.eager_max = 128 * 1024;
  return f;
}

Flavor Flavor::mpich2() {
  Flavor f;
  f.name = "mpich2";
  f.send_overhead = Time::ns(1420);
  f.recv_overhead = Time::ns(1350);
  f.wait_overhead = Time::ns(1450);
  f.eager_max = 128 * 1024;
  return f;
}

std::uint64_t Comm::encode_bits(int src_rank, int tag, bool rndv) {
  return kContext | (static_cast<std::uint64_t>(src_rank & 0xFFFF) << 32) |
         (static_cast<std::uint64_t>(tag & 0xFFFFFF) << 8) |
         (rndv ? kFlagRndv : 0);
}

struct Comm::ReqState {
  enum class Kind : std::uint8_t { kSendEager, kSendRndv, kRecv };
  Kind kind = Kind::kRecv;
  std::uint64_t id = 0;
  bool done = false;
  Status status;
  // Receive side.
  std::uint64_t buf = 0;
  std::uint32_t cap = 0;
  int want_src = kAnySource;
  int want_tag = kAnyTag;
  ptl::MeHandle me;
  ptl::MdHandle md;
  bool armed = false;
  // Push-rendezvous roles: a sender waiting for a CTS (buf/cap double as
  // the send buffer), a receiver expecting the pushed payload.
  bool push_send = false;
  bool push_recv = false;
};

Comm::Comm(host::Process& proc, std::vector<ptl::ProcessId> ranks, int rank,
           Flavor flavor)
    : proc_(proc),
      api_(proc.api()),
      ranks_(std::move(ranks)),
      rank_(rank),
      flavor_(flavor) {
  assert(rank_ >= 0 && rank_ < static_cast<int>(ranks_.size()));
}

Comm::~Comm() = default;

CoTask<int> Comm::init() {
  auto eq = co_await api_.PtlEQAlloc(8192);
  if (eq.rc != PTL_OK) co_return eq.rc;
  eq_ = eq.value;

  // Permanent sentinel at the head of the unexpected block: posted receives
  // are inserted before it, slabs are appended after it.  It carries no MD,
  // so matching always passes it by.
  auto sent = co_await api_.PtlMEAttach(kPtMpi, ProcessId{ptl::kNidAny,
                                                          ptl::kPidAny},
                                        kSentinelBits, 0, Unlink::kRetain,
                                        InsPos::kAfter);
  if (sent.rc != PTL_OK) co_return sent.rc;
  ux_first_ = sent.value;

  slabs_.resize(flavor_.n_ux_slabs);
  for (std::size_t i = 0; i < slabs_.size(); ++i) {
    slabs_[i].buf = proc_.alloc(flavor_.ux_slab_bytes);
    co_await repost_slab(slabs_[i]);
  }

  auto& reg = proc_.node().engine().metrics();
  const std::string prefix = sim::strf("mpi.n%u.", proc_.nid());
  g_ux_depth_ = &reg.gauge(prefix + "unexpected_depth");
  m_rndv_ctrl_ = &reg.counter(prefix + "rndv_ctrl_msgs");
  inited_ = true;
  co_return PTL_OK;
}

void Comm::note_ux_depth() {
  if (g_ux_depth_ != nullptr) {
    g_ux_depth_->set(static_cast<std::int64_t>(uq_.size()));
  }
}

void Comm::count_ctrl() {
  ++counters_.rndv_ctrl_msgs;
  if (m_rndv_ctrl_ != nullptr) m_rndv_ctrl_->add();
}

CoTask<void> Comm::repost_ready_slabs() {
  if (uq_.size() >= flavor_.max_unexpected) co_return;
  for (Slab& slab : slabs_) {
    if (!slab.posted) co_await repost_slab(slab);
  }
}

CoTask<void> Comm::repost_slab(Slab& slab) {
  const std::size_t idx = static_cast<std::size_t>(&slab - slabs_.data());
  auto me = co_await api_.PtlMEAttach(
      kPtMpi, ProcessId{ptl::kNidAny, ptl::kPidAny}, kContext,
      kSrcMask | kTagMask | kFlagMask, Unlink::kUnlink, InsPos::kAfter);
  slab.me = me.value;
  MdDesc d;
  d.start = slab.buf;
  d.length = static_cast<std::uint32_t>(flavor_.ux_slab_bytes);
  d.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_TRUNCATE | ptl::PTL_MD_MAX_SIZE;
  d.max_size = flavor_.eager_max;
  d.threshold = ptl::PTL_MD_THRESH_INF;
  d.eq = eq_;
  d.user_ptr = kSlabBase + idx;
  auto md = co_await api_.PtlMDAttach(me.value, d, Unlink::kUnlink);
  slab.md = md.value;
  slab.posted = true;
}

CoTask<int> Comm::progress_once() {
  auto r = co_await api_.PtlEQGet(eq_);
  if (r.rc == ptl::PTL_EQ_EMPTY) {
    ptl::EventQueue* q = api_.bridge().library().eq_object(eq_);
    if (q == nullptr) co_return ptl::PTL_EQ_INVALID;
    co_await q->waiters().wait();
    co_return 0;
  }
  if (r.rc != PTL_OK && r.rc != ptl::PTL_EQ_DROPPED) co_return r.rc;
  co_await dispatch(r.value);
  co_return 1;
}

CoTask<void> Comm::drain_all() {
  for (;;) {
    auto r = co_await api_.PtlEQGet(eq_);
    if (r.rc == ptl::PTL_EQ_EMPTY) co_return;
    if (r.rc != PTL_OK && r.rc != ptl::PTL_EQ_DROPPED) co_return;
    co_await dispatch(r.value);
  }
}

CoTask<void> Comm::dispatch(const Event& ev) {
  // Unexpected-slab events.
  if (ev.user_ptr >= kSlabBase) {
    Slab& slab = slabs_[static_cast<std::size_t>(ev.user_ptr - kSlabBase)];
    if (ev.type == EventType::kUnlink) {
      // Slab retired (space below eager_max); every message in it has
      // already been copied out, so it can go right back on the list —
      // unless the unexpected queue is at its bound, in which case the
      // slab stays retired until receives drain the queue
      // (repost_ready_slabs).
      slab.posted = false;
      if (uq_.size() < flavor_.max_unexpected) co_await repost_slab(slab);
      co_return;
    }
    if (ev.type == EventType::kPutStart) {
      // Portals accepted a message into the slab: reserve its place in the
      // unexpected queue NOW — this is the MPI match order.
      UxMsg m;
      m.link = ev.link;
      m.src_rank = bits_src(ev.match_bits);
      m.tag = bits_tag(ev.match_bits);
      uq_.push_back(std::move(m));
      note_ux_depth();
      co_return;
    }
    if (ev.type != EventType::kPutEnd) co_return;
    // Deposit finished: find the placeholder its PUT_START created.
    UxMsg* m = nullptr;
    for (auto& e : uq_) {
      if (!e.ready && e.link == ev.link) {
        m = &e;
        break;
      }
    }
    if (m == nullptr) {
      // START was lost (EQ overflow); degrade gracefully with a fresh
      // entry at the tail.
      uq_.push_back(UxMsg{});
      note_ux_depth();
      m = &uq_.back();
      m->link = ev.link;
      m->src_rank = bits_src(ev.match_bits);
      m->tag = bits_tag(ev.match_bits);
    }
    m->sender = ev.initiator;
    if (ev.hdr_data != 0) {
      m->rndv = true;
      m->rndv_bits = ev.hdr_data & 0xFFFFFFFFull;
      m->len = static_cast<std::uint32_t>(ev.hdr_data >> 32);
    } else {
      m->len = static_cast<std::uint32_t>(ev.rlength);
      // Copy the payload out of the slab into library memory (the
      // unexpected-message copy that posted receives avoid).
      const auto n = static_cast<std::size_t>(ev.mlength);
      if (n > 0) {
        co_await proc_.node().cpu().run(
            Time::for_bytes(n, proc_.node().config().host_memcpy_rate));
        m->data.resize(n);
        proc_.read_bytes(slab.buf + ev.offset, m->data);
      }
    }
    m->ready = true;
    ++counters_.unexpected_recvs;
    co_await match_armed();
    co_return;
  }

  // Request events.
  auto it = reqs_.find(ev.user_ptr);
  if (it == reqs_.end()) co_return;  // stale (e.g. RTS SEND_END)
  ReqState& st = *it->second;
  switch (ev.type) {
    case EventType::kSendEnd:
      if (st.kind == ReqState::Kind::kSendEager) {
        st.done = true;
        st.status.len = ev.rlength;
      }
      break;
    case EventType::kGetEnd:
      if (st.kind == ReqState::Kind::kSendRndv) {
        st.done = true;
        st.status.len = ev.mlength;
      }
      break;
    case EventType::kAck:
      if (st.kind == ReqState::Kind::kSendRndv && st.push_send) {
        // Push payload acknowledged end-to-end: the transfer is done.
        st.done = true;
        st.status.len = ev.mlength;
      }
      break;
    case EventType::kPutEnd:
      if (st.kind == ReqState::Kind::kSendRndv && st.push_send) {
        // CTS: the receiver exposed (rtoken, send_len).  Push the payload
        // with an end-to-end ack; completion is the ACK event above.
        const std::uint64_t rtoken = ev.hdr_data >> 32;
        const auto send_len = static_cast<std::uint32_t>(ev.hdr_data);
        MdDesc d;
        d.start = st.buf;
        d.length = st.cap;
        d.threshold = 1;
        d.eq = eq_;
        d.user_ptr = st.id;
        auto md = co_await api_.PtlMDBind(d, Unlink::kUnlink);
        (void)co_await api_.PtlPutRegion(md.value, 0, send_len, AckReq::kAck,
                                         ev.initiator, kPtRndv, 0,
                                         kRndvData | rtoken, 0, 0);
        break;
      }
      if (st.kind == ReqState::Kind::kRecv && st.push_recv &&
          ev.hdr_data == 0) {
        // Pushed rendezvous payload landed in the user buffer.  Source and
        // tag were already filled in from the RTS — the payload's match
        // bits are just the rtoken.  The ack the NI returns is the push
        // protocol's third control leg; count it here, where it is issued.
        count_ctrl();
        ++counters_.expected_recvs;
        st.status.len = ev.mlength;
        st.done = true;
        break;
      }
      if (st.kind == ReqState::Kind::kRecv) {
        if (ev.hdr_data != 0) {
          // Rendezvous RTS landed in the posted receive: pull the payload.
          const auto full = static_cast<std::uint32_t>(ev.hdr_data >> 32);
          st.status.source = bits_src(ev.match_bits);
          st.status.tag = bits_tag(ev.match_bits);
          st.status.truncated = full > st.cap;
          co_await start_rndv(st, ev.initiator, ev.hdr_data & 0xFFFFFFFFull,
                              full);
        } else {
          ++counters_.expected_recvs;
          st.status.source = bits_src(ev.match_bits);
          st.status.tag = bits_tag(ev.match_bits);
          st.status.len = ev.mlength;
          st.status.truncated = ev.rlength > ev.mlength;
          st.done = true;
        }
      }
      break;
    case EventType::kReplyEnd:
      if (st.kind == ReqState::Kind::kRecv) {
        ++counters_.expected_recvs;
        st.status.len = ev.mlength;
        st.done = true;
      }
      break;
    default:
      break;  // START events, UNLINK, ACK: nothing to do
  }
}

CoTask<void> Comm::match_armed() {
  // Oldest request first (ids are monotonic), preserving MPI ordering.
  std::vector<std::uint64_t> armed;
  for (const auto& [id, st] : reqs_) {
    if (st->kind == ReqState::Kind::kRecv && st->armed && !st->done) {
      armed.push_back(id);
    }
  }
  std::sort(armed.begin(), armed.end());
  for (const std::uint64_t id : armed) {
    auto it = reqs_.find(id);
    if (it == reqs_.end()) continue;
    ReqState& st = *it->second;
    auto r = ux_lookup(st.want_src, st.want_tag);
    if (r.msg == nullptr) continue;  // none ready (pending ones wait)
    const int rc = co_await api_.PtlMEUnlink(st.me);
    if (rc != PTL_OK) {
      // The posted MD already caught a (newer) message; leave the queued
      // one for the next receive.
      r.msg->ready = true;
      uq_.push_front(std::move(*r.msg));
      note_ux_depth();
      continue;
    }
    st.armed = false;
    co_await consume_ux(st, std::move(r.msg));
  }
}

Comm::UxLookup Comm::ux_lookup(int src, int tag) {
  for (auto it = uq_.begin(); it != uq_.end(); ++it) {
    const bool src_ok = src == kAnySource || it->src_rank == src;
    const bool tag_ok = tag == kAnyTag || it->tag == tag;
    if (!src_ok || !tag_ok) continue;
    UxLookup r;
    if (!it->ready) {
      r.pending = true;  // oldest match still depositing: wait for it
      return r;
    }
    r.msg = std::make_unique<UxMsg>(std::move(*it));
    uq_.erase(it);
    note_ux_depth();
    return r;
  }
  return {};
}

CoTask<void> Comm::consume_ux(ReqState& st, std::unique_ptr<UxMsg> m) {
  // Every dequeue funnels through here: if the bound had retired slabs,
  // bring them back now that the queue has shrunk.
  co_await repost_ready_slabs();
  st.status.source = m->src_rank;
  st.status.tag = m->tag;
  st.status.truncated = m->len > st.cap;
  if (m->rndv) {
    co_await start_rndv(st, m->sender, m->rndv_bits, m->len);
    co_return;
  }
  const auto n = std::min<std::uint32_t>(
      st.cap, static_cast<std::uint32_t>(m->data.size()));
  if (n > 0) {
    co_await proc_.node().cpu().run(
        Time::for_bytes(n, proc_.node().config().host_memcpy_rate));
    proc_.write_bytes(st.buf, std::span(m->data).first(n));
  }
  st.status.len = n;
  st.done = true;
}

CoTask<void> Comm::start_rndv(ReqState& st, ProcessId sender,
                              std::uint64_t token_field,
                              std::uint32_t full_len) {
  const std::uint64_t token = token_field & kRndvTokenMask;
  if ((token_field & kRtsPushFlag) == 0) {
    // Get protocol: pull the payload straight out of the sender's exposed
    // buffer.  The get request is the only control leg on this side.
    MdDesc d;
    d.start = st.buf;
    d.length = st.cap;
    d.options = ptl::PTL_MD_OP_GET;
    d.threshold = 1;
    d.eq = eq_;
    d.user_ptr = st.id;
    auto md = co_await api_.PtlMDBind(d, Unlink::kUnlink);
    count_ctrl();
    (void)co_await api_.PtlGet(md.value, sender, kPtRndv, 0, token, 0);
    co_return;
  }

  // Push protocol: expose the user buffer under a fresh token, then tell
  // the sender where to put with a zero-byte CTS carrying
  // (rtoken << 32 | send length).
  st.push_recv = true;
  const std::uint64_t rtoken = next_rndv_++ & kRndvTokenMask;
  const std::uint32_t send_len = std::min(st.cap, full_len);
  auto me = co_await api_.PtlMEAttach(kPtRndv,
                                      ProcessId{ptl::kNidAny, ptl::kPidAny},
                                      kRndvData | rtoken, 0, Unlink::kUnlink,
                                      InsPos::kAfter);
  MdDesc d;
  d.start = st.buf;
  d.length = send_len;
  d.options = ptl::PTL_MD_OP_PUT;
  d.threshold = 1;
  d.eq = eq_;
  d.user_ptr = st.id;
  (void)co_await api_.PtlMDAttach(me.value, d, Unlink::kUnlink);

  MdDesc cts;
  cts.start = 0;
  cts.length = 0;
  cts.threshold = 1;
  cts.eq = ptl::kEqNone;  // CTS completion is uninteresting
  auto cts_md = co_await api_.PtlMDBind(cts, Unlink::kUnlink);
  count_ctrl();
  (void)co_await api_.PtlPut(
      cts_md.value, AckReq::kNone, sender, kPtRndv, 0, kRndvCts | token, 0,
      (rtoken << 32) | send_len);
}

CoTask<int> Comm::isend(std::uint64_t buf, std::uint32_t len, int dst,
                        int tag, Request* req) {
  assert(inited_);
  co_await proc_.node().cpu().run(flavor_.send_overhead);
  const std::uint64_t id = next_req_++;
  auto st = std::make_unique<ReqState>();
  st->id = id;
  req->id = id;
  req->done = false;

  if (len <= flavor_.eager_cutoff()) {
    st->kind = ReqState::Kind::kSendEager;
    MdDesc d;
    d.start = buf;
    d.length = len;
    d.threshold = 1;
    d.eq = eq_;
    d.user_ptr = id;
    auto md = co_await api_.PtlMDBind(d, Unlink::kUnlink);
    reqs_.emplace(id, std::move(st));
    ++counters_.eager_sent;
    co_return co_await api_.PtlPut(md.value, AckReq::kNone,
                                   ranks_[static_cast<std::size_t>(dst)],
                                   kPtMpi, 0, encode_bits(rank_, tag, false),
                                   0, 0);
  }

  // Rendezvous: stage protocol state, then send a zero-byte RTS whose
  // hdr_data carries (full length << 32 | push flag | token).
  st->kind = ReqState::Kind::kSendRndv;
  const bool push = flavor_.rndv_proto == Flavor::RndvProto::kPush;
  const std::uint64_t token = next_rndv_++ & kRndvTokenMask;
  std::uint64_t hdr = (static_cast<std::uint64_t>(len) << 32) | token;
  if (push) {
    // Push protocol: catch the CTS under kRndvCts|token; the payload put
    // happens in dispatch() when it lands.
    st->push_send = true;
    st->buf = buf;
    st->cap = len;
    hdr |= kRtsPushFlag;
    auto me = co_await api_.PtlMEAttach(
        kPtRndv, ProcessId{ptl::kNidAny, ptl::kPidAny}, kRndvCts | token, 0,
        Unlink::kUnlink, InsPos::kAfter);
    MdDesc d;
    d.start = 0;
    d.length = 0;
    d.options = ptl::PTL_MD_OP_PUT;
    d.threshold = 1;
    d.eq = eq_;
    d.user_ptr = id;
    (void)co_await api_.PtlMDAttach(me.value, d, Unlink::kUnlink);
  } else {
    // Get protocol: expose the buffer for the receiver's get.
    auto me = co_await api_.PtlMEAttach(
        kPtRndv, ProcessId{ptl::kNidAny, ptl::kPidAny}, token, 0,
        Unlink::kUnlink, InsPos::kAfter);
    MdDesc d;
    d.start = buf;
    d.length = len;
    d.options = ptl::PTL_MD_OP_GET;
    d.threshold = 1;
    d.eq = eq_;
    d.user_ptr = id;
    (void)co_await api_.PtlMDAttach(me.value, d, Unlink::kUnlink);
  }
  reqs_.emplace(id, std::move(st));

  MdDesc rts;
  rts.start = 0;
  rts.length = 0;
  rts.threshold = 1;
  rts.eq = ptl::kEqNone;  // RTS completion is uninteresting
  auto rts_md = co_await api_.PtlMDBind(rts, Unlink::kUnlink);
  ++counters_.rndv_sent;
  count_ctrl();
  co_return co_await api_.PtlPut(
      rts_md.value, AckReq::kNone, ranks_[static_cast<std::size_t>(dst)],
      kPtMpi, 0, encode_bits(rank_, tag, true), 0, hdr);
}

CoTask<int> Comm::irecv(std::uint64_t buf, std::uint32_t len, int src,
                        int tag, Request* req) {
  assert(inited_);
  co_await proc_.node().cpu().run(flavor_.recv_overhead);
  const std::uint64_t id = next_req_++;
  auto stp = std::make_unique<ReqState>();
  ReqState& st = *stp;
  st.id = id;
  st.kind = ReqState::Kind::kRecv;
  st.buf = buf;
  st.cap = len;
  st.want_src = src;
  st.want_tag = tag;
  req->id = id;
  req->done = false;
  reqs_.emplace(id, std::move(stp));

  // Ordering guard and fast path: the oldest matching unexpected message
  // must be taken (or waited for, if still depositing) before this receive
  // may arm a match entry.
  for (;;) {
    co_await drain_all();
    auto r = ux_lookup(src, tag);
    if (r.msg != nullptr) {
      co_await consume_ux(st, std::move(r.msg));
      co_return PTL_OK;
    }
    if (!r.pending) break;
    (void)co_await progress_once();
  }

  // Post the match entry with an INACTIVE MD, then activate it atomically
  // with respect to pending events (the PtlMDUpdate test-EQ idiom); any
  // message that raced in goes through the unexpected path instead.
  const std::uint64_t mbits =
      encode_bits(src == kAnySource ? 0 : src, tag == kAnyTag ? 0 : tag,
                  false);
  std::uint64_t ibits = kFlagMask;
  if (src == kAnySource) ibits |= kSrcMask;
  if (tag == kAnyTag) ibits |= kTagMask;
  auto me = co_await api_.PtlMEInsert(ux_first_,
                                      ProcessId{ptl::kNidAny, ptl::kPidAny},
                                      mbits, ibits, Unlink::kUnlink,
                                      InsPos::kBefore);
  st.me = me.value;
  MdDesc d;
  d.start = buf;
  d.length = len;
  d.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_TRUNCATE;
  d.threshold = 0;  // inactive until the update below succeeds
  d.eq = eq_;
  d.user_ptr = id;
  auto md = co_await api_.PtlMDAttach(me.value, d, Unlink::kUnlink);
  st.md = md.value;

  MdDesc active = d;
  active.threshold = 1;
  for (;;) {
    co_await drain_all();
    auto r = ux_lookup(src, tag);
    if (r.msg != nullptr) {
      (void)co_await api_.PtlMEUnlink(st.me);  // inactive: always succeeds
      co_await consume_ux(st, std::move(r.msg));
      co_return PTL_OK;
    }
    // A matching message mid-deposit MUST complete before we may arm, or a
    // newer message would overtake it in the armed MD.
    if (r.pending) {
      (void)co_await progress_once();
      continue;
    }
    auto rc = co_await api_.PtlMDUpdate(st.md, &active, eq_);
    if (rc.rc == PTL_OK) {
      st.armed = true;
      co_return PTL_OK;
    }
    if (rc.rc != ptl::PTL_MD_NO_UPDATE) co_return rc.rc;
    // Events are pending: loop to process them and retry.
  }
}

CoTask<int> Comm::wait(Request* req, Status* status) {
  if (req->id == 0) co_return PTL_OK;  // inactive request
  auto it = reqs_.find(req->id);
  if (it == reqs_.end()) co_return PTL_OK;
  ReqState& st = *it->second;
  while (!st.done) {
    (void)co_await progress_once();
  }
  // Completion-side library work (request retirement, status fill-in).
  co_await proc_.node().cpu().run(flavor_.wait_overhead);
  req->status = st.status;
  if (status != nullptr) *status = st.status;
  req->done = true;
  reqs_.erase(req->id);
  req->id = 0;
  co_return PTL_OK;
}

CoTask<int> Comm::waitany(std::span<Request> reqs, std::size_t* index,
                          Status* status) {
  for (;;) {
    bool any_active = false;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      Request& r = reqs[i];
      if (r.id == 0) continue;
      any_active = true;
      auto it = reqs_.find(r.id);
      if (it == reqs_.end() || it->second->done) {
        const int rc = co_await wait(&r, status);
        *index = i;
        co_return rc;
      }
    }
    if (!any_active) {
      *index = static_cast<std::size_t>(-1);
      co_return PTL_OK;
    }
    (void)co_await progress_once();
  }
}

CoTask<int> Comm::waitall(std::span<Request> reqs) {
  for (auto& r : reqs) {
    const int rc = co_await wait(&r, nullptr);
    if (rc != PTL_OK) co_return rc;
  }
  co_return PTL_OK;
}

CoTask<int> Comm::iprobe(int src, int tag, bool* flag, Status* status) {
  co_await proc_.node().cpu().run(flavor_.recv_overhead / 2);
  co_await drain_all();
  *flag = false;
  for (const UxMsg& m : uq_) {
    const bool src_ok = src == kAnySource || m.src_rank == src;
    const bool tag_ok = tag == kAnyTag || m.tag == tag;
    if (!src_ok || !tag_ok) continue;
    if (!m.ready) break;  // oldest match still depositing: report later
    *flag = true;
    if (status != nullptr) {
      status->source = m.src_rank;
      status->tag = m.tag;
      status->len = m.len;
      status->truncated = false;
    }
    break;
  }
  co_return PTL_OK;
}

CoTask<int> Comm::probe(int src, int tag, Status* status) {
  for (;;) {
    bool flag = false;
    const int rc = co_await iprobe(src, tag, &flag, status);
    if (rc != PTL_OK) co_return rc;
    if (flag) co_return PTL_OK;
    (void)co_await progress_once();
  }
}

CoTask<int> Comm::send(std::uint64_t buf, std::uint32_t len, int dst,
                       int tag) {
  Request req;
  const int rc = co_await isend(buf, len, dst, tag, &req);
  if (rc != PTL_OK) co_return rc;
  co_return co_await wait(&req);
}

CoTask<int> Comm::recv(std::uint64_t buf, std::uint32_t len, int src,
                       int tag, Status* status) {
  Request req;
  const int rc = co_await irecv(buf, len, src, tag, &req);
  if (rc != PTL_OK) co_return rc;
  co_return co_await wait(&req, status);
}

CoTask<int> Comm::sendrecv(std::uint64_t sbuf, std::uint32_t slen, int dst,
                           int stag, std::uint64_t rbuf, std::uint32_t rlen,
                           int src, int rtag, Status* status) {
  Request rreq, sreq;
  int rc = co_await irecv(rbuf, rlen, src, rtag, &rreq);
  if (rc != PTL_OK) co_return rc;
  rc = co_await isend(sbuf, slen, dst, stag, &sreq);
  if (rc != PTL_OK) co_return rc;
  rc = co_await wait(&sreq);
  if (rc != PTL_OK) co_return rc;
  co_return co_await wait(&rreq, status);
}

CoTask<int> Comm::barrier() {
  // Dissemination barrier: ceil(log2(n)) rounds of 0-byte exchanges.
  const int n = size();
  if (n == 1) co_return PTL_OK;
  const std::uint64_t dummy = 0;
  (void)dummy;
  for (int k = 1, round = 0; k < n; k <<= 1, ++round) {
    const int to = (rank_ + k) % n;
    const int from = (rank_ - k + n) % n;
    const int rc = co_await sendrecv(0, 0, to, kTagBarrier + round, 0, 0,
                                     from, kTagBarrier + round);
    if (rc != PTL_OK) co_return rc;
  }
  co_return PTL_OK;
}

}  // namespace xt::mpi
