#pragma once

// Mini-MPI over the Portals 3.3 public API.
//
// This reproduces the structure of the two MPI implementations the paper
// measures (§5.1): a port of MPICH 1.2.6 for Portals 3.3 and Cray's
// MPICH2.  Both are represented by one engine with per-flavor protocol
// constants (library overheads, eager threshold) — the curves in Figures
// 4-7 differ between the MPIs only by constant offsets.
//
// Protocol (the classic Portals MPI design):
//   * Posted receives are Portals match entries on the MPI portal index;
//     match bits encode (context, source rank, tag) with ignore-bits
//     wildcards, so PORTALS performs MPI matching and expected eager
//     messages land zero-copy in the user buffer.
//   * Unexpected eager messages fall through to a block of slab buffers at
//     the tail of the match list (locally-managed offset + PTL_MD_MAX_SIZE
//     carousel); the library copies them out on arrival (the extra memcpy
//     that makes unexpected receives expensive).
//   * The post-vs-unexpected race is closed with the PtlMDUpdate test-EQ
//     idiom: the receive MD is attached inactive and only activated by an
//     atomic update that fails while events are pending — precisely the
//     use case the ptl_md_update test_eq parameter exists for.
//   * Messages above the eager threshold use rendezvous, in one of two
//     selectable protocols (Flavor::rndv_proto):
//       - get (default): the sender exposes its buffer under a unique
//         match id on the rendezvous portal and sends a zero-byte RTS;
//         the receiver PtlGets the payload straight into the user buffer.
//         Two protocol messages per transfer (RTS + get request; the
//         payload rides the get reply) — no ack leg at all.
//       - push: the classic CTS scheme for comparison.  RTS, then the
//         receiver exposes its buffer and answers with a zero-byte CTS,
//         then the sender puts the payload with an end-to-end ack.
//         Three protocol messages per transfer (RTS + CTS + ack).
//     Counters::rndv_ctrl_msgs counts the protocol legs either way, so
//     benches can show the get protocol's message-count advantage.
//     Flavor::rndv_threshold moves the eager/rendezvous cutoff.
//
// All calls are coroutines (they cost simulated time); ranks are mapped to
// Portals ProcessIds at construction.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "host/node.hpp"
#include "portals/api.hpp"
#include "sim/task.hpp"

namespace xt::telemetry {
struct Counter;
struct Gauge;
}  // namespace xt::telemetry

namespace xt::mpi {

/// Per-implementation protocol constants.
struct Flavor {
  const char* name = "mpich-1.2.6";
  /// Library overhead charged on the host CPU per send / per receive
  /// (queue bookkeeping, request management, datatype handling) and per
  /// completed request (status handling in MPI_Wait).  In ping-pong, the
  /// receive-side posting cost is pre-paid while the message is in flight,
  /// so the visible per-message MPI cost is send_overhead + wait_overhead —
  /// which is what separates the MPI curves from raw put in Figure 4.
  sim::Time send_overhead = sim::Time::ns(1000);
  sim::Time recv_overhead = sim::Time::ns(1100);
  sim::Time wait_overhead = sim::Time::ns(400);
  /// Messages larger than this use the rendezvous protocol.
  std::uint32_t eager_max = 128 * 1024;
  /// Rendezvous protocol selector (see the header comment).
  enum class RndvProto : std::uint8_t { kGet, kPush };
  RndvProto rndv_proto = RndvProto::kGet;
  /// Eager/rendezvous cutoff override; 0 defers to eager_max.  Clamped to
  /// eager_max — the unexpected slabs size their carousel for eager_max,
  /// so the cutoff can move down freely but never up.
  std::uint32_t rndv_threshold = 0;
  std::uint32_t eager_cutoff() const {
    return rndv_threshold == 0 ? eager_max
                               : std::min(rndv_threshold, eager_max);
  }
  /// Unexpected-queue bound: once this many messages are queued, retired
  /// slabs are not reposted until receives drain the queue below the
  /// bound.  Further eager arrivals then find no buffer and are dropped —
  /// honest NI backpressure instead of unbounded library memory.  The
  /// queue can overshoot by the capacity of the still-posted slabs.
  std::size_t max_unexpected = 4096;
  /// Unexpected slab sizing.  Capacity must comfortably exceed the deepest
  /// unexpected burst the protocol can produce: a slab retires once its
  /// remaining space drops below eager_max, and an eager message arriving
  /// while every slab is retired (before the library reposts them) is
  /// dropped — the classic eager-protocol flow-control hazard.
  std::size_t n_ux_slabs = 16;
  std::size_t ux_slab_bytes = 512 * 1024;

  static Flavor mpich1();
  static Flavor mpich2();
};

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::uint64_t len = 0;
  bool truncated = false;
};

/// Nonblocking-operation handle.
class Comm;
struct Request {
  bool done = false;
  Status status;
  bool active() const { return id != 0; }

 private:
  friend class Comm;
  std::uint64_t id = 0;
};

class Comm {
 public:
  /// `ranks[i]` is the Portals id of rank i; `proc` must be ranks[rank].
  Comm(host::Process& proc, std::vector<ptl::ProcessId> ranks, int rank,
       Flavor flavor = Flavor::mpich1());
  ~Comm();

  /// Allocates EQs and posts the unexpected-message structures.  Must
  /// complete on every rank before traffic flows (spawn all inits, then
  /// run the engine; unexpected slabs absorb early arrivals).
  sim::CoTask<int> init();

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(ranks_.size()); }
  const Flavor& flavor() const { return flavor_; }

  // Blocking point-to-point.  Buffers are virtual addresses in the owning
  // process's address space.
  sim::CoTask<int> send(std::uint64_t buf, std::uint32_t len, int dst,
                        int tag);
  sim::CoTask<int> recv(std::uint64_t buf, std::uint32_t len, int src,
                        int tag, Status* status = nullptr);

  // Nonblocking.
  sim::CoTask<int> isend(std::uint64_t buf, std::uint32_t len, int dst,
                         int tag, Request* req);
  sim::CoTask<int> irecv(std::uint64_t buf, std::uint32_t len, int src,
                         int tag, Request* req);
  sim::CoTask<int> wait(Request* req, Status* status = nullptr);
  sim::CoTask<int> waitall(std::span<Request> reqs);
  /// MPI_Waitany: blocks until any request completes; `index` receives its
  /// position (or SIZE_MAX when every request was inactive).
  sim::CoTask<int> waitany(std::span<Request> reqs, std::size_t* index,
                           Status* status = nullptr);

  /// MPI_Iprobe: checks (without consuming) for a matching message that
  /// has not been received yet.  Only unexpected messages are visible —
  /// anything matching a posted receive is already owned by that receive.
  sim::CoTask<int> iprobe(int src, int tag, bool* flag,
                          Status* status = nullptr);
  /// MPI_Probe: blocks until a matching message can be reported.
  sim::CoTask<int> probe(int src, int tag, Status* status = nullptr);

  // Collectives used by the examples/benchmarks.
  sim::CoTask<int> barrier();
  sim::CoTask<int> sendrecv(std::uint64_t sbuf, std::uint32_t slen, int dst,
                            int stag, std::uint64_t rbuf, std::uint32_t rlen,
                            int src, int rtag, Status* status = nullptr);

  /// Binomial-tree broadcast of `len` bytes rooted at `root` (buf holds the
  /// payload at the root, receives it elsewhere).
  sim::CoTask<int> bcast(std::uint64_t buf, std::uint32_t len, int root);
  /// Binomial-tree sum-reduction of `count` doubles into `buf` at `root`
  /// (every rank contributes its own buf contents).
  sim::CoTask<int> reduce_sum(std::uint64_t buf, std::uint32_t count,
                              int root);
  /// Every rank ends with the sum: recursive doubling when the
  /// communicator size is a power of two (log2(n) rounds, all ranks busy
  /// every round), reduce_sum to rank 0 + bcast otherwise.
  sim::CoTask<int> allreduce_sum(std::uint64_t buf, std::uint32_t count);
  /// Root gathers `len` bytes from every rank into rbuf (rank i's block at
  /// offset i*len).  rbuf is only read at the root.
  sim::CoTask<int> gather(std::uint64_t sbuf, std::uint32_t len,
                          std::uint64_t rbuf, int root);
  /// Every rank sends a distinct `len`-byte block to every other rank:
  /// block for rank j starts at sbuf + j*len; block from rank i lands at
  /// rbuf + i*len.
  sim::CoTask<int> alltoall(std::uint64_t sbuf, std::uint64_t rbuf,
                            std::uint32_t len);

  host::Process& process() { return proc_; }

 private:
  struct ReqState;
  /// One unexpected message.  Created when its PUT_START fires (preserving
  /// MPI match order) and marked ready at PUT_END, when the payload has
  /// finished depositing; `link` pairs the two events.
  struct UxMsg {
    std::uint64_t link = 0;
    int src_rank = 0;
    int tag = 0;
    bool ready = false;
    std::uint32_t len = 0;          // sender's full length
    std::vector<std::byte> data;    // eager payload (copied out of a slab)
    bool rndv = false;
    std::uint64_t rndv_bits = 0;    // match bits exposing the sender buffer
    ptl::ProcessId sender;
  };
  struct UxLookup {
    bool pending = false;  // a matching message exists but is mid-deposit
    std::unique_ptr<UxMsg> msg;  // set when a ready match was dequeued
  };
  struct Slab {
    std::uint64_t buf = 0;
    ptl::MeHandle me;
    ptl::MdHandle md;
    bool posted = false;
  };

  static std::uint64_t encode_bits(int src_rank, int tag, bool rndv);
  sim::CoTask<int> progress_once();
  sim::CoTask<void> dispatch(const ptl::Event& ev);
  sim::CoTask<void> drain_all();
  /// Looks up the OLDEST matching unexpected message (match order = the
  /// order Portals accepted them).  Ready: dequeued and returned.  Still
  /// depositing: `pending` — the caller must wait for it rather than arm a
  /// receive or take a newer message, or per-(src,tag) order would break.
  UxLookup ux_lookup(int src, int tag);
  sim::CoTask<void> consume_ux(ReqState& st, std::unique_ptr<UxMsg> m);
  /// Offers freshly queued unexpected messages to already-armed receives.
  /// Closes the window where a message was matched to a slab (its PUT_START
  /// fired) before the receive armed, but its PUT_END — and thus its uq
  /// entry — only appeared after: the armed receive would otherwise wait on
  /// its posted MD forever.
  sim::CoTask<void> match_armed();
  sim::CoTask<void> start_rndv(ReqState& st, ptl::ProcessId sender,
                               std::uint64_t token_field,
                               std::uint32_t full_len);
  sim::CoTask<void> repost_slab(Slab& slab);
  /// Reposts slabs deferred by the unexpected-queue bound once the queue
  /// has drained below it.
  sim::CoTask<void> repost_ready_slabs();
  /// Publishes uq_.size() to the mpi.nN.unexpected_depth gauge.
  void note_ux_depth();
  /// Counts one rendezvous protocol leg (RTS / CTS / get request / ack).
  void count_ctrl();
  /// Reusable collective scratch buffer.  The simulated address space is a
  /// bump allocator with no free, so per-call allocs in collectives leak
  /// address space; this caches one grow-only region instead.
  std::uint64_t scratch(std::size_t bytes);

  host::Process& proc_;
  ptl::Api& api_;
  std::vector<ptl::ProcessId> ranks_;
  int rank_;
  Flavor flavor_;

  ptl::EqHandle eq_{};        // single EQ for all MPI Portals objects
  ptl::MeHandle ux_first_{};  // head of the unexpected block (insert point)
  std::vector<Slab> slabs_;
  std::deque<UxMsg> uq_;

  std::unordered_map<std::uint64_t, std::unique_ptr<ReqState>> reqs_;
  std::uint64_t next_req_ = 1;
  std::uint64_t next_rndv_ = 1;
  bool inited_ = false;

  std::uint64_t scratch_ = 0;
  std::size_t scratch_cap_ = 0;

  // Counters (for tests and the benchmark harness).
 public:
  struct Counters {
    std::uint64_t eager_sent = 0;
    std::uint64_t rndv_sent = 0;
    std::uint64_t expected_recvs = 0;
    std::uint64_t unexpected_recvs = 0;
    /// Rendezvous protocol legs, counted at whichever rank emits them:
    /// get = RTS + get request (2/transfer); push = RTS + CTS + ack
    /// (3/transfer).  Payload movement is never counted.
    std::uint64_t rndv_ctrl_msgs = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  Counters counters_;
  telemetry::Gauge* g_ux_depth_ = nullptr;        // mpi.nN.unexpected_depth
  telemetry::Counter* m_rndv_ctrl_ = nullptr;     // mpi.nN.rndv_ctrl_msgs
};

}  // namespace xt::mpi
