// MPI collectives, implemented on the point-to-point layer with the
// classic binomial-tree algorithms (what MPICH's intra-communicator
// collectives used at MPICH-1.2.x vintage).  Tags above the user range
// keep collective traffic from matching application receives.

#include <vector>

#include "mpi/mpi.hpp"

namespace xt::mpi {

using sim::CoTask;

namespace {

constexpr int kTagBcast = 0xFFFE00;
constexpr int kTagReduce = 0xFFFD00;
constexpr int kTagGather = 0xFFFC00;
constexpr int kTagAlltoall = 0xFFFB00;
constexpr int kTagAllred = 0xFFFA00;  // + round number

}  // namespace

std::uint64_t Comm::scratch(std::size_t bytes) {
  if (bytes > scratch_cap_) {
    scratch_ = proc_.alloc(bytes);
    scratch_cap_ = bytes;
  }
  return scratch_;
}

CoTask<int> Comm::bcast(std::uint64_t buf, std::uint32_t len, int root) {
  const int n = size();
  if (n == 1) co_return ptl::PTL_OK;
  // Rotate so the root is rank 0 in the virtual tree.
  const int vrank = (rank_ - root + n) % n;

  // Receive from the parent (the rank that differs in the highest set bit).
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const int parent = ((vrank ^ mask) + root) % n;
      const int rc = co_await recv(buf, len, parent, kTagBcast);
      if (rc != ptl::PTL_OK) co_return rc;
      break;
    }
    mask <<= 1;
  }
  // Forward to children below the received bit.
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < n) {
      const int child = ((vrank + mask) + root) % n;
      const int rc = co_await send(buf, len, child, kTagBcast);
      if (rc != ptl::PTL_OK) co_return rc;
    }
    mask >>= 1;
  }
  co_return ptl::PTL_OK;
}

CoTask<int> Comm::reduce_sum(std::uint64_t buf, std::uint32_t count,
                             int root) {
  const int n = size();
  if (n == 1) co_return ptl::PTL_OK;
  const int vrank = (rank_ - root + n) % n;
  const std::uint32_t bytes = count * 8;
  // Lazily grabbed from the scratch cache: pure leaves (odd vranks) send
  // and return without ever needing a receive staging buffer, and the bump
  // allocator would leak a per-call alloc anyway.
  std::uint64_t tmp = 0;

  // Accumulate children (low bits first), then send to the parent.
  std::vector<double> mine(count), theirs(count);
  proc_.read_bytes(buf, std::as_writable_bytes(std::span(mine)));
  for (int mask = 1; mask < n; mask <<= 1) {
    if (vrank & mask) {
      const int parent = ((vrank ^ mask) + root) % n;
      proc_.write_bytes(buf, std::as_bytes(std::span(mine)));
      co_return co_await send(buf, bytes, parent, kTagReduce);
    }
    if (vrank + mask < n) {
      const int child = ((vrank + mask) + root) % n;
      if (tmp == 0) tmp = scratch(bytes);
      const int rc = co_await recv(tmp, bytes, child, kTagReduce);
      if (rc != ptl::PTL_OK) co_return rc;
      proc_.read_bytes(tmp, std::as_writable_bytes(std::span(theirs)));
      // The arithmetic itself costs host time.
      co_await proc_.node().cpu().run(
          sim::Time::ns(2) * static_cast<std::int64_t>(count));
      for (std::uint32_t i = 0; i < count; ++i) mine[i] += theirs[i];
    }
  }
  proc_.write_bytes(buf, std::as_bytes(std::span(mine)));
  co_return ptl::PTL_OK;
}

CoTask<int> Comm::allreduce_sum(std::uint64_t buf, std::uint32_t count) {
  const int n = size();
  if (n == 1) co_return ptl::PTL_OK;
  if ((n & (n - 1)) != 0) {
    // Non-power-of-two: binomial reduce to rank 0, then bcast.
    const int rc = co_await reduce_sum(buf, count, 0);
    if (rc != ptl::PTL_OK) co_return rc;
    co_return co_await bcast(buf, count * 8, 0);
  }
  // Recursive doubling: log2(n) exchange rounds, every rank active in
  // every round, each ending with the full sum — half the root's serial
  // work of reduce+bcast and no fan-in hot spot.
  const std::uint32_t bytes = count * 8;
  const std::uint64_t tmp = scratch(bytes);
  std::vector<double> mine(count), theirs(count);
  proc_.read_bytes(buf, std::as_writable_bytes(std::span(mine)));
  int round = 0;
  for (int mask = 1; mask < n; mask <<= 1, ++round) {
    const int partner = rank_ ^ mask;
    proc_.write_bytes(buf, std::as_bytes(std::span(mine)));
    const int rc = co_await sendrecv(buf, bytes, partner, kTagAllred + round,
                                     tmp, bytes, partner, kTagAllred + round);
    if (rc != ptl::PTL_OK) co_return rc;
    proc_.read_bytes(tmp, std::as_writable_bytes(std::span(theirs)));
    co_await proc_.node().cpu().run(
        sim::Time::ns(2) * static_cast<std::int64_t>(count));
    for (std::uint32_t i = 0; i < count; ++i) mine[i] += theirs[i];
  }
  proc_.write_bytes(buf, std::as_bytes(std::span(mine)));
  co_return ptl::PTL_OK;
}

CoTask<int> Comm::gather(std::uint64_t sbuf, std::uint32_t len,
                         std::uint64_t rbuf, int root) {
  const int n = size();
  if (rank_ == root) {
    std::vector<std::byte> tmp(len);
    proc_.read_bytes(sbuf, tmp);
    proc_.write_bytes(rbuf + static_cast<std::uint64_t>(rank_) * len, tmp);
    std::vector<Request> reqs(static_cast<std::size_t>(n - 1));
    int q = 0;
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      const int rc = co_await irecv(
          rbuf + static_cast<std::uint64_t>(r) * len, len, r, kTagGather,
          &reqs[static_cast<std::size_t>(q++)]);
      if (rc != ptl::PTL_OK) co_return rc;
    }
    co_return co_await waitall(reqs);
  }
  co_return co_await send(sbuf, len, root, kTagGather);
}

CoTask<int> Comm::alltoall(std::uint64_t sbuf, std::uint64_t rbuf,
                           std::uint32_t len) {
  const int n = size();
  std::vector<Request> reqs(static_cast<std::size_t>(2 * (n - 1)));
  int q = 0;
  for (int r = 0; r < n; ++r) {
    if (r == rank_) continue;
    const int rc = co_await irecv(rbuf + static_cast<std::uint64_t>(r) * len,
                                  len, r, kTagAlltoall,
                                  &reqs[static_cast<std::size_t>(q++)]);
    if (rc != ptl::PTL_OK) co_return rc;
  }
  // Stagger the send order (rank+1, rank+2, ...) to avoid every rank
  // hammering rank 0 first — the standard alltoall schedule.
  for (int k = 1; k < n; ++k) {
    const int r = (rank_ + k) % n;
    const int rc = co_await isend(sbuf + static_cast<std::uint64_t>(r) * len,
                                  len, r, kTagAlltoall,
                                  &reqs[static_cast<std::size_t>(q++)]);
    if (rc != ptl::PTL_OK) co_return rc;
  }
  // Local block copies straight across.
  std::vector<std::byte> tmp(len);
  proc_.read_bytes(sbuf + static_cast<std::uint64_t>(rank_) * len, tmp);
  proc_.write_bytes(rbuf + static_cast<std::uint64_t>(rank_) * len, tmp);
  co_return co_await waitall(reqs);
}

}  // namespace xt::mpi
