#include "fault/plan.hpp"

#include <cstdio>
#include <cstdlib>

namespace xt::fault {

namespace {

struct KindName {
  std::uint32_t bit;
  const char* name;
};
constexpr KindName kKindNames[] = {
    {kLinkCorrupt, "corrupt"}, {kSilentCorrupt, "silent"},
    {kDrop, "drop"},           {kReorder, "reorder"},
    {kSramFail, "sram"},       {kIrqDelay, "irqdelay"},
    {kIrqDrop, "irqdrop"},     {kFwStall, "stall"},
    {kNodeDeath, "death"},
};

}  // namespace

std::string FaultPlan::kinds_str(std::uint32_t kinds) {
  if (kinds == 0) return "none";
  if (kinds == kAllKinds) return "all";
  std::string out;
  for (const KindName& k : kKindNames) {
    if ((kinds & k.bit) == 0) continue;
    if (!out.empty()) out += '+';
    out += k.name;
  }
  return out;
}

std::uint32_t FaultPlan::parse_kinds(std::string_view names) {
  if (names.empty() || names == "none") return 0;
  if (names == "all") return kAllKinds;
  std::uint32_t kinds = 0;
  std::size_t pos = 0;
  while (pos <= names.size()) {
    const std::size_t plus = names.find('+', pos);
    const std::string_view tok = names.substr(
        pos, plus == std::string_view::npos ? names.size() - pos : plus - pos);
    bool found = false;
    for (const KindName& k : kKindNames) {
      if (tok == k.name) {
        kinds |= k.bit;
        found = true;
        break;
      }
    }
    if (!found) return kAllKinds + 1;
    if (plus == std::string_view::npos) break;
    pos = plus + 1;
  }
  return kinds;
}

std::string FaultPlan::to_cli() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "kinds=%s,rate=%.4f,fseed=%llu",
                kinds_str(kinds).c_str(), rate,
                static_cast<unsigned long long>(seed));
  std::string out = buf;
  if ((kinds & kNodeDeath) != 0 && death_node >= 0) {
    std::snprintf(buf, sizeof(buf), ",death=%d@%lluns+r%lluns", death_node,
                  static_cast<unsigned long long>(death_at_ns),
                  static_cast<unsigned long long>(revive_after_ns));
    out += buf;
  }
  for (const ScriptedDrop& d : scripted_drops) {
    std::snprintf(buf, sizeof(buf), ",sdrop=%u>%u@%u", d.src, d.dst, d.nth);
    out += buf;
  }
  return out;
}

bool FaultPlan::parse(std::string_view spec, FaultPlan* out) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string_view item = spec.substr(
        pos, comma == std::string_view::npos ? spec.size() - pos : comma - pos);
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) return false;
    const std::string_view key = item.substr(0, eq);
    const std::string val(item.substr(eq + 1));
    if (key == "kinds") {
      const std::uint32_t k = parse_kinds(val);
      if (k > kAllKinds) return false;
      out->kinds = k;
    } else if (key == "rate") {
      out->rate = std::atof(val.c_str());
    } else if (key == "fseed") {
      out->seed = std::strtoull(val.c_str(), nullptr, 10);
    } else if (key == "death") {
      // death=NODE@ATns+rREVIVEns
      int node = -1;
      unsigned long long at = 0, revive = 0;
      if (std::sscanf(val.c_str(), "%d@%lluns+r%lluns", &node, &at, &revive) !=
          3) {
        return false;
      }
      out->death_node = node;
      out->death_at_ns = at;
      out->revive_after_ns = revive;
    } else if (key == "sdrop") {
      ScriptedDrop d;
      if (std::sscanf(val.c_str(), "%u>%u@%u", &d.src, &d.dst, &d.nth) != 3) {
        return false;
      }
      out->scripted_drops.push_back(d);
    } else if (key == "stall_ns") {
      out->stall_ns = std::strtoull(val.c_str(), nullptr, 10);
    } else if (key == "ack_timeout_ns") {
      out->ack_timeout_ns = std::strtoull(val.c_str(), nullptr, 10);
    } else {
      return false;
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return true;
}

}  // namespace xt::fault
