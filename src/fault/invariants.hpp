#pragma once

// InvariantChecker: stack-wide correctness properties, asserted live.
//
// The checker is installed on the engine next to the injector
// (Engine::set_invariants) and probed from the same hook points telemetry
// uses.  Probes take only primitive values, so every layer can report
// without the fault library depending on any of them.  Violations are
// collected as strings rather than aborting: the fuzzer and property suite
// decide what a failure means (and print a seed reproducer).
//
// Invariants checked:
//   * message conservation — every put accepted by target-side Portals
//     matching is delivered exactly once or explicitly failed (kRxDropped);
//   * no corrupt delivery — a message that fault injection corrupted past
//     the link CRC-16 must never pass the end-to-end CRC-32;
//   * EQ event ordering — per event queue, retrieved sequence numbers are
//     strictly increasing and posts are gap-free;
//   * SRAM ledger balance — per node, allocations - frees == live bytes,
//     never exceeding the 384 KB budget;
//   * no stranded initiators — every in-flight put/get completes or is
//     explicitly timed out (checked at end of run via finish()).

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace xt::telemetry {
class FlightRecorder;
}  // namespace xt::telemetry

namespace xt::fault {

class InvariantChecker {
 public:
  using Key = std::pair<std::uint64_t, std::uint64_t>;  // (nid:pid, token)

  static Key key(std::uint32_t nid, std::uint32_t pid, std::uint64_t token) {
    return {(static_cast<std::uint64_t>(nid) << 16) | pid, token};
  }

  // ------------------------------------------------ conservation probes ----
  void target_accepted(std::uint32_t nid, std::uint32_t pid,
                       std::uint64_t token);
  void target_delivered(std::uint32_t nid, std::uint32_t pid,
                        std::uint64_t token);
  void target_failed(std::uint32_t nid, std::uint32_t pid,
                     std::uint64_t token);

  /// Initiator-side liveness: op opened (ack/reply outstanding) / resolved
  /// (ack, reply, or timeout-with-failure-event).
  void initiator_open(std::uint32_t nid, std::uint32_t pid,
                      std::uint64_t token);
  void initiator_done(std::uint32_t nid, std::uint32_t pid,
                      std::uint64_t token);

  /// A node died: its accepted-but-undelivered messages and unresolved
  /// initiator ops are excused at finish() (mortality is an injected fault,
  /// not a stack bug).
  void node_died(std::uint32_t nid);

  // ------------------------------------------------------- CRC probe ----
  /// Rx DMA engine verdict for one completed message.
  void on_rx_verdict(bool crc_ok, bool corrupted);

  // ------------------------------------------------- EQ ordering probe ----
  /// `eq_key` identifies one event queue ((nid:pid << 16) | eq index);
  /// `seq` is the queue's post-time sequence stamp.
  void on_eq_post(std::uint64_t eq_key, std::uint64_t seq);
  void on_eq_get(std::uint64_t eq_key, std::uint64_t seq);

  // ------------------------------------------------- SRAM ledger probe ----
  /// Seeds the ledger with the bytes already live when the checker was
  /// installed (the boot-time reservations).
  void sram_baseline(std::uint32_t node, std::uint64_t used);
  /// Called after every reservation change on a node's SRAM with the
  /// accounting's view (`used`) and the change (`delta`, signed bytes).
  void on_sram(std::uint32_t node, std::uint64_t used, std::uint64_t capacity,
               std::int64_t delta);

  /// Records an externally detected violation (e.g. a firmware panic the
  /// scenario did not inject).
  void violation(std::string msg);

  /// End-of-run audit: conservation balance and stranded initiators.
  /// Idempotent; call after the engine quiesced.
  void finish();

  /// Optional black box: when set (the harness points it at the engine's
  /// flight recorder), the FIRST violation dumps the last-dispatches ring
  /// to stderr — the post-mortem starts from the simulator's final
  /// moments even when the caller only asserts ok() later.
  void set_flight_recorder(const telemetry::FlightRecorder* fr) {
    flight_ = fr;
  }

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }

  // Exposed tallies (for tests cross-checking counters).
  std::uint64_t accepted() const { return n_accepted_; }
  std::uint64_t delivered() const { return n_delivered_; }
  std::uint64_t failed() const { return n_failed_; }

 private:
  struct Track {
    std::uint8_t delivered = 0;
    std::uint8_t failed = 0;
  };

  std::map<Key, Track> targets_;
  std::set<Key> initiators_;
  std::set<std::uint32_t> dead_nodes_;
  std::map<std::uint64_t, std::uint64_t> eq_posted_;  // eq_key -> last seq+1
  std::map<std::uint64_t, std::uint64_t> eq_got_;     // eq_key -> last seq
  std::map<std::uint32_t, std::int64_t> sram_ledger_;
  const telemetry::FlightRecorder* flight_ = nullptr;
  std::vector<std::string> violations_;
  std::uint64_t n_accepted_ = 0;
  std::uint64_t n_delivered_ = 0;
  std::uint64_t n_failed_ = 0;
  bool finished_ = false;

  void add_violation(const std::string& msg);
};

}  // namespace xt::fault
