#include "fault/injector.hpp"

#include "telemetry/metrics.hpp"

namespace xt::fault {

Injector::Injector(sim::Engine& eng, FaultPlan plan)
    : eng_(eng), plan_(std::move(plan)), net_rng_(plan_.seed) {
  link_rng_ = net_rng_.fork();
  fw_rng_ = net_rng_.fork();
  auto& reg = eng_.metrics();
  c_drops_ = &reg.counter("fault.drops");
  c_scripted_ = &reg.counter("fault.scripted_drops");
  c_reorders_ = &reg.counter("fault.reorders");
  c_silent_ = &reg.counter("fault.silent_corrupts");
  c_bursts_ = &reg.counter("fault.corrupt_bursts");
  c_sram_ = &reg.counter("fault.sram_denials");
  c_irq_dropped_ = &reg.counter("fault.irq_dropped");
  c_irq_delayed_ = &reg.counter("fault.irq_delayed");
  c_stalls_ = &reg.counter("fault.fw_stalls");
  c_kills_ = &reg.counter("fault.node_kills");
  c_revives_ = &reg.counter("fault.node_revives");
  c_ack_timeouts_ = &reg.counter("fault.ack_timeouts");
  c_gbn_giveups_ = &reg.counter("fault.gbn_giveups");
}

void Injector::bump(telemetry::Counter* c) {
  if (c != nullptr) c->add();
}

bool Injector::drop_message(std::uint32_t src, std::uint32_t dst) {
  if (src == dst) return false;  // loopback never touches a router
  if (!plan_.scripted_drops.empty()) {
    const std::uint32_t nth = sent_[{src, dst}]++;
    for (const ScriptedDrop& d : plan_.scripted_drops) {
      if (d.src == src && d.dst == dst && d.nth == nth) {
        ++scripted_;
        ++drops_;
        bump(c_scripted_);
        bump(c_drops_);
        return true;
      }
    }
  }
  if ((plan_.kinds & kDrop) != 0 && net_rng_.chance(plan_.rate)) {
    ++drops_;
    bump(c_drops_);
    return true;
  }
  return false;
}

std::uint64_t Injector::reorder_delay_ps() {
  if ((plan_.kinds & kReorder) == 0 || !net_rng_.chance(plan_.rate)) return 0;
  ++reorders_;
  bump(c_reorders_);
  // 1..reorder_max_ns of extra latency, enough to slip behind later
  // messages of the same stream.
  return (1 + net_rng_.below(plan_.reorder_max_ns)) * 1000;
}

bool Injector::silently_corrupt() {
  if ((plan_.kinds & kSilentCorrupt) == 0 || !net_rng_.chance(plan_.rate)) {
    return false;
  }
  ++silent_;
  bump(c_silent_);
  return true;
}

std::uint32_t Injector::corrupt_burst_retries() {
  if ((plan_.kinds & kLinkCorrupt) == 0 || !link_rng_.chance(plan_.rate)) {
    return 0;
  }
  ++bursts_;
  bump(c_bursts_);
  // A short burst: 1..4 consecutive CRC-16 failures of the same chunk.
  return 1 + static_cast<std::uint32_t>(link_rng_.below(4));
}

bool Injector::sram_alloc_fails(std::uint32_t) {
  if ((plan_.kinds & kSramFail) == 0 || !fw_rng_.chance(plan_.rate)) {
    return false;
  }
  ++sram_denials_;
  bump(c_sram_);
  return true;
}

Injector::IrqFate Injector::irq_fate(std::uint32_t) {
  IrqFate f;
  if ((plan_.kinds & kIrqDrop) != 0 && fw_rng_.chance(plan_.rate)) {
    f.drop = true;
    f.recovery_ps = plan_.irq_recovery_ns * 1000;
    ++irq_dropped_;
    bump(c_irq_dropped_);
    return f;
  }
  if ((plan_.kinds & kIrqDelay) != 0 && fw_rng_.chance(plan_.rate)) {
    f.delay_ps = (1 + fw_rng_.below(plan_.irq_delay_ns)) * 1000;
    ++irq_delayed_;
    bump(c_irq_delayed_);
  }
  return f;
}

Injector::Totals Injector::totals() const {
  Totals t;
  t.drops = drops_;
  t.scripted_drops = scripted_;
  t.reorders = reorders_;
  t.silent_corrupts = silent_;
  t.corrupt_bursts = bursts_;
  t.sram_denials = sram_denials_;
  t.irq_dropped = irq_dropped_;
  t.irq_delayed = irq_delayed_;
  t.stalls = stalls_injected_;
  t.kills = kills_;
  t.revives = revives_;
  t.ack_timeouts = ack_timeouts_;
  return t;
}

}  // namespace xt::fault
