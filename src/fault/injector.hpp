#pragma once

// Injector: the imperative half of the fault-injection subsystem.
//
// One Injector is installed per sim::Engine (Engine::set_fault_injector),
// mirroring the trace/provenance sink pattern: layers that host an
// injection point ask the engine for the injector and consult it only when
// one is installed, so the zero-fault fast path costs a null check.
//
// Every decision is drawn from forked sim::Rng streams seeded from the
// plan's seed.  Because a simulation is a single-threaded event loop with
// deterministic event ordering, the decision sequence — and therefore the
// whole faulted run — is bit-reproducible from (scenario, plan).
//
// Each injected fault increments a "fault.*" counter in the engine's
// MetricsRegistry, so --metrics snapshots account for every event a plan
// injected (the accounting the fault_sweep bench cross-checks).

#include <cstdint>
#include <map>
#include <utility>

#include "fault/plan.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace xt::telemetry {
struct Counter;
}

namespace xt::fault {

class Injector {
 public:
  Injector(sim::Engine& eng, FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  sim::Engine& engine() const { return eng_; }

  // ---------------------------------------------- net injection points ----
  /// Consulted once per wire message at injection time (Network::begin).
  /// Also counts the message against the scripted-drop indices.
  bool drop_message(std::uint32_t src, std::uint32_t dst);
  /// Extra delivery delay for this message (0 = none); shifts the whole
  /// message so later traffic can overtake it.
  std::uint64_t reorder_delay_ps();
  /// CRC-16-evading flip: the message's payload is corrupted but every
  /// link-level check passes; only the e2e CRC-32 can catch it.
  bool silently_corrupt();
  /// Extra CRC-16-visible retries to charge this chunk (a corruption
  /// burst); 0 = clean chunk.
  std::uint32_t corrupt_burst_retries();

  // ----------------------------------- seastar/firmware injection points ----
  /// Transient SRAM allocation failure: the firmware's pending/source
  /// allocation fails this once even though the pool has space.
  bool sram_alloc_fails(std::uint32_t node);

  struct IrqFate {
    bool drop = false;             ///< lost: deliver via housekeeping poll
    std::uint64_t delay_ps = 0;    ///< late: deliver after this delay
    std::uint64_t recovery_ps = 0; ///< drop: housekeeping poll latency
  };
  IrqFate irq_fate(std::uint32_t node);

  // -------------------------------------------------- event accounting ----
  void count_stall() { ++stalls_injected_; bump(c_stalls_); }
  void count_kill() { ++kills_; bump(c_kills_); }
  void count_revive() { ++revives_; bump(c_revives_); }
  void count_ack_timeout() { ++ack_timeouts_; bump(c_ack_timeouts_); }
  void count_gbn_giveup() { bump(c_gbn_giveups_); }

  struct Totals {
    std::uint64_t drops = 0;
    std::uint64_t scripted_drops = 0;
    std::uint64_t reorders = 0;
    std::uint64_t silent_corrupts = 0;
    std::uint64_t corrupt_bursts = 0;
    std::uint64_t sram_denials = 0;
    std::uint64_t irq_dropped = 0;
    std::uint64_t irq_delayed = 0;
    std::uint64_t stalls = 0;
    std::uint64_t kills = 0;
    std::uint64_t revives = 0;
    std::uint64_t ack_timeouts = 0;
  };
  Totals totals() const;

 private:
  void bump(telemetry::Counter* c);

  sim::Engine& eng_;
  FaultPlan plan_;
  sim::Rng net_rng_;   // drop/reorder/silent decisions
  sim::Rng link_rng_;  // per-chunk corruption bursts
  sim::Rng fw_rng_;    // SRAM + interrupt fates

  /// Wire-message counts per (src, dst), for scripted drops.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> sent_;

  std::uint64_t drops_ = 0;
  std::uint64_t scripted_ = 0;
  std::uint64_t reorders_ = 0;
  std::uint64_t silent_ = 0;
  std::uint64_t bursts_ = 0;
  std::uint64_t sram_denials_ = 0;
  std::uint64_t irq_dropped_ = 0;
  std::uint64_t irq_delayed_ = 0;
  std::uint64_t stalls_injected_ = 0;
  std::uint64_t kills_ = 0;
  std::uint64_t revives_ = 0;
  std::uint64_t ack_timeouts_ = 0;

  telemetry::Counter* c_drops_ = nullptr;
  telemetry::Counter* c_scripted_ = nullptr;
  telemetry::Counter* c_reorders_ = nullptr;
  telemetry::Counter* c_silent_ = nullptr;
  telemetry::Counter* c_bursts_ = nullptr;
  telemetry::Counter* c_sram_ = nullptr;
  telemetry::Counter* c_irq_dropped_ = nullptr;
  telemetry::Counter* c_irq_delayed_ = nullptr;
  telemetry::Counter* c_stalls_ = nullptr;
  telemetry::Counter* c_kills_ = nullptr;
  telemetry::Counter* c_revives_ = nullptr;
  telemetry::Counter* c_ack_timeouts_ = nullptr;
  telemetry::Counter* c_gbn_giveups_ = nullptr;
};

}  // namespace xt::fault
