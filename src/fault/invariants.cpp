#include "fault/invariants.hpp"

#include <cstdio>

#include "sim/strf.hpp"
#include "telemetry/flight_recorder.hpp"

namespace xt::fault {

namespace {

std::uint32_t nid_of(const InvariantChecker::Key& k) {
  return static_cast<std::uint32_t>(k.first >> 16);
}

}  // namespace

void InvariantChecker::add_violation(const std::string& msg) {
  // The first violation dumps the flight recorder: later violations are
  // usually knock-on effects, so the interesting last-moments window is
  // the one around the first.
  if (violations_.empty() && flight_ != nullptr) {
    std::fprintf(stderr, "invariant violation: %s\n%s", msg.c_str(),
                 flight_->dump().c_str());
  }
  // Cap the list so a systematically broken run does not balloon memory.
  if (violations_.size() < 256) violations_.push_back(msg);
}

void InvariantChecker::target_accepted(std::uint32_t nid, std::uint32_t pid,
                                       std::uint64_t token) {
  ++n_accepted_;
  auto [it, fresh] = targets_.try_emplace(key(nid, pid, token));
  if (!fresh) {
    add_violation(sim::strf("conservation: token %llu accepted twice at "
                            "n%u.p%u",
                            static_cast<unsigned long long>(token), nid, pid));
  }
}

void InvariantChecker::target_delivered(std::uint32_t nid, std::uint32_t pid,
                                        std::uint64_t token) {
  ++n_delivered_;
  Track& t = targets_[key(nid, pid, token)];
  if (++t.delivered > 1) {
    add_violation(sim::strf("conservation: token %llu delivered %d times at "
                            "n%u.p%u",
                            static_cast<unsigned long long>(token),
                            static_cast<int>(t.delivered), nid, pid));
  }
  if (t.failed != 0) {
    add_violation(sim::strf("conservation: token %llu both failed and "
                            "delivered at n%u.p%u",
                            static_cast<unsigned long long>(token), nid, pid));
  }
}

void InvariantChecker::target_failed(std::uint32_t nid, std::uint32_t pid,
                                     std::uint64_t token) {
  ++n_failed_;
  Track& t = targets_[key(nid, pid, token)];
  ++t.failed;
  if (t.delivered != 0) {
    add_violation(sim::strf("conservation: token %llu both delivered and "
                            "failed at n%u.p%u",
                            static_cast<unsigned long long>(token), nid, pid));
  }
}

void InvariantChecker::initiator_open(std::uint32_t nid, std::uint32_t pid,
                                      std::uint64_t token) {
  initiators_.insert(key(nid, pid, token));
}

void InvariantChecker::initiator_done(std::uint32_t nid, std::uint32_t pid,
                                      std::uint64_t token) {
  initiators_.erase(key(nid, pid, token));
}

void InvariantChecker::node_died(std::uint32_t nid) {
  dead_nodes_.insert(nid);
}

void InvariantChecker::on_rx_verdict(bool crc_ok, bool corrupted) {
  if (crc_ok && corrupted) {
    add_violation(
        "crc: message corrupted past CRC-16 was delivered as CRC-32 clean");
  }
}

void InvariantChecker::on_eq_post(std::uint64_t eq_key, std::uint64_t seq) {
  auto [it, fresh] = eq_posted_.try_emplace(eq_key, seq);
  if (!fresh) {
    if (seq != it->second + 1) {
      add_violation(sim::strf("eq-order: queue %llx posted seq %llu after "
                              "%llu (gap or duplicate)",
                              static_cast<unsigned long long>(eq_key),
                              static_cast<unsigned long long>(seq),
                              static_cast<unsigned long long>(it->second)));
    }
    it->second = seq;
  }
}

void InvariantChecker::on_eq_get(std::uint64_t eq_key, std::uint64_t seq) {
  auto [it, fresh] = eq_got_.try_emplace(eq_key, seq);
  if (!fresh) {
    if (seq <= it->second) {
      add_violation(sim::strf("eq-order: queue %llx returned seq %llu after "
                              "%llu (reordered delivery)",
                              static_cast<unsigned long long>(eq_key),
                              static_cast<unsigned long long>(seq),
                              static_cast<unsigned long long>(it->second)));
    }
    it->second = seq;
  }
}

void InvariantChecker::sram_baseline(std::uint32_t node, std::uint64_t used) {
  sram_ledger_[node] = static_cast<std::int64_t>(used);
}

void InvariantChecker::on_sram(std::uint32_t node, std::uint64_t used,
                               std::uint64_t capacity, std::int64_t delta) {
  std::int64_t& ledger = sram_ledger_[node];
  ledger += delta;
  if (ledger < 0 || static_cast<std::uint64_t>(ledger) != used) {
    add_violation(sim::strf(
        "sram: node %u ledger imbalance (allocations-frees %lld, live bytes "
        "%llu)",
        node, static_cast<long long>(ledger),
        static_cast<unsigned long long>(used)));
  }
  if (used > capacity) {
    add_violation(sim::strf("sram: node %u live bytes %llu exceed capacity "
                            "%llu",
                            node, static_cast<unsigned long long>(used),
                            static_cast<unsigned long long>(capacity)));
  }
}

void InvariantChecker::violation(std::string msg) {
  add_violation(std::move(msg));
}

void InvariantChecker::finish() {
  if (finished_) return;
  finished_ = true;
  for (const auto& [k, t] : targets_) {
    if (t.delivered + t.failed == 0) {
      if (dead_nodes_.count(nid_of(k)) != 0) continue;  // excused: mortality
      add_violation(sim::strf(
          "conservation: token %llu accepted at n%u but neither delivered "
          "nor failed",
          static_cast<unsigned long long>(k.second), nid_of(k)));
    }
  }
  for (const Key& k : initiators_) {
    if (dead_nodes_.count(nid_of(k)) != 0) continue;
    add_violation(sim::strf(
        "liveness: initiator op token %llu at n%u never completed or timed "
        "out (stranded)",
        static_cast<unsigned long long>(k.second), nid_of(k)));
  }
}

}  // namespace xt::fault
