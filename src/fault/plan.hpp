#pragma once

// FaultPlan: the declarative half of the fault-injection subsystem.
//
// A plan is pure data — a 64-bit seed, a bitmask of fault kinds, a
// per-message rate and a handful of shape knobs — from which the Injector
// derives every fault decision deterministically.  Two runs of the same
// scenario under the same plan make byte-identical fault decisions, which
// is what lets the scenario fuzzer print `--seed N --faults ...` reproducer
// lines that replay exactly at any --jobs value.
//
// Plans round-trip through a compact CLI string (to_cli()/parse()), the
// format behind the fuzzer's reproducer lines and every bench's --faults
// flag.  Scripted drops (exact per-(src,dst) wire-message indices) are the
// deterministic complement used by the go-back-n edge-case tests and the
// property shrinker: unlike rate faults they can be removed one at a time
// while a failure still reproduces.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xt::fault {

/// Fault kinds, a bitmask.  Each bit corresponds to one injection point in
/// the stack (see docs/FAULTS.md for the taxonomy).
enum : std::uint32_t {
  kLinkCorrupt = 1u << 0,    ///< CRC-16-visible corruption burst (link retry)
  kSilentCorrupt = 1u << 1,  ///< CRC-16-evading flip (e2e CRC-32 must catch)
  kDrop = 1u << 2,           ///< whole-message loss at router egress
  kReorder = 1u << 3,        ///< extra per-message delay (reorders arrivals)
  kSramFail = 1u << 4,       ///< transient firmware SRAM allocation failure
  kIrqDelay = 1u << 5,       ///< host interrupt delivered late
  kIrqDrop = 1u << 6,        ///< host interrupt lost (recovered by housekeeping)
  kFwStall = 1u << 7,        ///< firmware PPC stalls for a configured duration
  kNodeDeath = 1u << 8,      ///< rank mortality: node dies at T, may restart
};
constexpr std::uint32_t kAllKinds = (1u << 9) - 1;
/// Kinds that are safe without go-back-n (they never wedge the firmware:
/// loss and exhaustion surface as initiator timeouts, not panics).
constexpr std::uint32_t kNoRetryKinds =
    kLinkCorrupt | kSilentCorrupt | kDrop | kReorder | kIrqDelay | kIrqDrop |
    kFwStall;

/// Deterministic targeted loss: drop the `nth` wire message (0-based, in
/// network-injection order) from `src` to `dst`.  Retransmits are new wire
/// messages, so {n, n+k} expresses "drop the retransmit too" (double fault).
struct ScriptedDrop {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t nth = 0;
  friend bool operator==(const ScriptedDrop&, const ScriptedDrop&) = default;
};

struct FaultPlan {
  std::uint64_t seed = 1;    ///< seeds every fault decision stream
  std::uint32_t kinds = 0;   ///< bitmask of enabled fault kinds
  double rate = 0.0;         ///< per-message probability of each rate fault

  // Shape knobs (defaults chosen so a bare "kinds=...,rate=..." plan is
  // already a sensible stress).
  std::uint64_t reorder_max_ns = 2'000;     ///< max extra delay per message
  std::uint64_t irq_delay_ns = 4'000;       ///< late-interrupt delay
  std::uint64_t irq_recovery_ns = 100'000;  ///< lost-irq housekeeping poll
  std::uint64_t stall_ns = 20'000;          ///< one firmware stall's duration
  int stall_count = 2;                      ///< stalls scheduled per node set
  std::uint64_t horizon_ns = 1'000'000;     ///< window for timed faults
  /// Initiator liveness: an in-flight put/get that saw neither its ack nor
  /// its reply within this bound completes with PTL_NI_FAIL_DROPPED instead
  /// of hanging.  Armed only while an Injector is installed on the engine.
  std::uint64_t ack_timeout_ns = 50'000'000;

  // Rank mortality (kNodeDeath): node `death_node` dies at `death_at_ns`;
  // with revive_after_ns > 0 its firmware restarts that much later.
  int death_node = -1;
  std::uint64_t death_at_ns = 200'000;
  std::uint64_t revive_after_ns = 0;

  /// Deterministic targeted drops (tests/shrinker); applied on top of the
  /// rate faults.
  std::vector<ScriptedDrop> scripted_drops;

  bool enabled() const { return kinds != 0 || !scripted_drops.empty(); }

  /// Compact one-line form, e.g.
  ///   "kinds=drop+silent,rate=0.0100,fseed=42,death=3@200us+r0"
  /// — exactly what parse() accepts and the fuzzer prints in reproducers.
  std::string to_cli() const;

  /// Parses a to_cli()-formatted spec into *out (fields not mentioned keep
  /// their current values).  Returns false on a malformed spec.
  static bool parse(std::string_view spec, FaultPlan* out);

  /// "drop+silent+stall" <-> bitmask helpers ("none" / "" -> 0,
  /// "all" -> kAllKinds).  parse_kinds returns kAllKinds+1 on unknown names.
  static std::string kinds_str(std::uint32_t kinds);
  static std::uint32_t parse_kinds(std::string_view names);
};

}  // namespace xt::fault
