#pragma once

// Dimension-ordered, table-based routing.
//
// The SeaStar routers are table-based and give every (src, dst) pair one
// fixed path, which is what guarantees in-order packet delivery (§2).  We
// reproduce that with classic dimension-order routing: resolve X, then Y,
// then Z; within a wrapped dimension take the shorter ring direction
// (ties broken toward +).  Each node precomputes a dest→port table, exactly
// like the hardware.

#include <vector>

#include "net/coord.hpp"

namespace xt::net {

/// Picks the port a packet at `self` should take toward `dest`.
/// Pure function of the shape; used to build tables and directly by tests.
Port route_step(const Shape& shape, Coord self, Coord dest);

/// Every minimal productive port at `self` toward `dest`, in +x,-x,+y,-y,
/// +z,-z order: for each unresolved dimension the shorter ring direction —
/// or BOTH directions when they tie (even-sized wrapped dimension at
/// distance size/2).  Empty iff self == dest.  route_step always returns
/// the first entry of the first unresolved dimension, which is what makes
/// adaptive routing with an empty network collapse to dimension order.
std::vector<Port> productive_ports(const Shape& shape, Coord self,
                                   Coord dest);

/// Per-node routing table (dest node id → output port).
class RoutingTable {
 public:
  RoutingTable(const Shape& shape, Coord self);

  Port next_port(NodeId dest) const { return table_[dest]; }
  Coord self() const { return self_; }

 private:
  Coord self_;
  std::vector<Port> table_;
};

/// Full node path from src to dst (inclusive of both endpoints); the length
/// minus one is the hop count.  Used by tests and by PtlNIDist.
std::vector<NodeId> route_path(const Shape& shape, NodeId src, NodeId dst);

/// Number of network hops between two nodes under dimension-order routing.
int hop_count(const Shape& shape, NodeId src, NodeId dst);

/// Node one hop away through `p` (with wraparound applied).  `p` must not
/// be kLocal.
NodeId neighbor(const Shape& shape, NodeId node, Port p);

}  // namespace xt::net
