#pragma once

// The machine-wide interconnect: routers + links on a 3D torus/mesh.
//
// Transfers move through the network as *chunks* (default 16 KiB): each
// chunk is a coroutine that walks the precomputed dimension-order path,
// occupying each link in turn for its serialization time.  Chunks of one
// message pipeline across hops (wormhole-style), and chunks of different
// messages interleave at shared links — both without simulating the
// 64-byte packets individually (packetization is accounted for inside
// Link::serialize_time).
//
// Ordering: links grant FIFO and paths are fixed, so all traffic between a
// given (src, dst) pair is delivered in injection order — the in-order
// guarantee the paper attributes to the table-based routers (§2).
//
// Buffering: router buffers are modeled as unbounded, i.e. a queued chunk
// waits at a link rather than back-pressuring the sender.  The resource
// exhaustion the paper worries about (§4.3) is NIC-level (pendings,
// sources), which the firmware model enforces; link-level congestion still
// shapes delivery times through queueing delay.

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "net/coord.hpp"
#include "net/link.hpp"
#include "net/message.hpp"
#include "net/routing.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace xt::net {

/// How each message's path is chosen.  kDimOrder is the hardware's
/// table-based routing (one fixed path per (src, dst), in-order delivery).
/// kAdaptive picks, per message at injection, the least-occupied productive
/// port at every hop along a minimal path — congestion-aware, still
/// minimal-length, but messages of one pair may overtake each other (the
/// torus routing trade-off the APEnet+ work studies under contention).
enum class Routing : std::uint8_t { kDimOrder, kAdaptive };

const char* routing_name(Routing r);
/// Parses "dimension"/"dimorder" or "adaptive"; nullopt otherwise.
std::optional<Routing> routing_from_name(std::string_view name);

struct NetConfig {
  LinkConfig link{};
  /// Path selection policy (see Routing).
  Routing routing = Routing::kDimOrder;
  /// Transfer granularity through the network (trade-off: fidelity of
  /// pipelining/interleaving vs. event count).  2 KiB keeps the wormhole
  /// pipeline fine enough that a mid-sized message's wire time overlaps
  /// its DMA injection (as the 64-byte-packet hardware does), while
  /// keeping an 8 MB transfer at ~4k simulation events.
  std::size_t chunk_size = 2 * 1024;
  /// Seed for the network's fault-injection RNG streams.  Every stochastic
  /// stream in a simulation derives from this one value, so a scenario is
  /// reproducible from (config, seed) alone and concurrent scenarios can
  /// be given independent streams.
  std::uint64_t seed = 1;
};

class Network {
 public:
  Network(sim::Engine& eng, Shape shape, NetConfig cfg = {},
          std::uint64_t seed = 1);

  /// Registers the receive endpoint (the NIC) for a node.
  void attach(NodeId node, Endpoint& ep);

  /// Service class of a node's injected traffic: messages from `node` ride
  /// virtual channel `cls % link.vcs`.  The multi-tenant layer maps each
  /// job to a class so per-VC arbitration isolates jobs at shared links;
  /// a no-op (class 0) when the links run a single FIFO.
  void set_service_class(NodeId node, std::uint8_t cls);

  /// Starts a message: assigns its sequence number, stamps the e2e CRC and
  /// injection time.  The caller (the sending NIC's Tx DMA model) then
  /// feeds the wire with inject_header / inject_payload as it reads bytes
  /// out of host memory.
  void begin(const MessagePtr& msg);

  /// Injects the 64-byte header packet.
  void inject_header(const MessagePtr& msg);

  /// Injects payload bytes [offset, offset+len).  `last` marks the final
  /// chunk; its arrival triggers Endpoint::on_complete.
  void inject_payload(const MessagePtr& msg, std::size_t offset,
                      std::size_t len, bool last);

  /// Convenience for tests and simple clients: pushes the whole message at
  /// the injection rate of the wire itself (no NIC pacing).
  void send(const MessagePtr& msg);

  const Shape& shape() const { return shape_; }
  sim::Engine& engine() const { return eng_; }
  std::size_t chunk_size() const { return cfg_.chunk_size; }

  /// Links along the path from src to dst, in traversal order.
  std::vector<Link*> path_links(NodeId src, NodeId dst);

  /// Total link-CRC retries across the machine (fault-injection stats).
  std::uint64_t total_retries() const;

  /// Messages whose adaptive path diverged from dimension order at one or
  /// more hops (0 under kDimOrder).
  std::uint64_t adaptive_deflections() const { return deflections_; }

 private:
  /// One directed link per (node, port) pair; kLocal has none.
  Link& link_out(NodeId node, Port p);
  /// Minimal congestion-aware path for one message (kAdaptive): at every
  /// hop pick the productive port whose link has the least occupancy,
  /// ties broken in dimension order.  Pure function of the link state at
  /// injection time, so runs stay deterministic.
  std::vector<Port> adaptive_route(NodeId src, NodeId dst);
  sim::CoTask<void> walk(MessagePtr msg, std::size_t bytes, bool is_header,
                         bool is_last);

  sim::Engine& eng_;
  Shape shape_;
  NetConfig cfg_;
  std::vector<RoutingTable> tables_;
  // links_[node * 6 + port]
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Endpoint*> endpoints_;
  std::vector<std::uint8_t> class_of_;  // per-node service class
  std::uint64_t next_seq_ = 1;
  std::uint64_t deflections_ = 0;
};

}  // namespace xt::net
