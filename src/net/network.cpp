#include "net/network.hpp"

#include <cassert>

#include "fault/injector.hpp"
#include "net/crc.hpp"
#include "sim/strf.hpp"

namespace xt::net {

const char* routing_name(Routing r) {
  switch (r) {
    case Routing::kDimOrder: return "dimension";
    case Routing::kAdaptive: return "adaptive";
  }
  return "?";
}

std::optional<Routing> routing_from_name(std::string_view name) {
  if (name == "dimension" || name == "dimorder") return Routing::kDimOrder;
  if (name == "adaptive") return Routing::kAdaptive;
  return std::nullopt;
}

Network::Network(sim::Engine& eng, Shape shape, NetConfig cfg,
                 std::uint64_t seed)
    : eng_(eng), shape_(shape), cfg_(cfg) {
  const auto n = static_cast<std::size_t>(shape_.count());
  tables_.reserve(n);
  links_.resize(n * 6);
  endpoints_.assign(n, nullptr);
  class_of_.assign(n, 0);
  sim::Rng seeder(seed);
  for (NodeId id = 0; id < n; ++id) {
    tables_.emplace_back(shape_, shape_.to_coord(id));
    for (int p = 0; p < 6; ++p) {
      links_[id * 6 + static_cast<std::size_t>(p)] = std::make_unique<Link>(
          eng_, cfg_.link, seeder.u64(),
          sim::strf("link.n%u.%s", id, port_name(static_cast<Port>(p))));
    }
  }
}

void Network::attach(NodeId node, Endpoint& ep) {
  assert(node < endpoints_.size());
  endpoints_[node] = &ep;
}

void Network::set_service_class(NodeId node, std::uint8_t cls) {
  assert(node < class_of_.size());
  class_of_[node] = cls;
}

Link& Network::link_out(NodeId node, Port p) {
  assert(p != Port::kLocal);
  return *links_[node * 6 + static_cast<std::size_t>(p)];
}

void Network::begin(const MessagePtr& msg) {
  msg->seq = next_seq_++;
  std::uint32_t c = crc32_init();
  c = crc32_update(c, msg->header);
  c = crc32_update(c, msg->payload);
  msg->e2e_crc = crc32_finish(c);
  msg->injected_at = eng_.now();
  if (cfg_.link.vcs > 1) {
    msg->vc = static_cast<std::uint8_t>(class_of_[msg->src] % cfg_.link.vcs);
  }
  if (cfg_.routing == Routing::kAdaptive && msg->src != msg->dst) {
    msg->route = adaptive_route(msg->src, msg->dst);
  }
  // Per-message fault decisions are made once, at injection: router-egress
  // loss, reordering delay, and CRC-16-evading corruption all act on whole
  // wire messages.  (Per-chunk corruption bursts live in Link::carry.)
  if (fault::Injector* inj = eng_.fault_injector()) {
    if (inj->drop_message(msg->src, msg->dst)) msg->net_dropped = true;
    msg->fault_delay = sim::Time::ps(
        static_cast<std::int64_t>(inj->reorder_delay_ps()));
    if (inj->silently_corrupt()) msg->corrupted = true;
  }
}

sim::CoTask<void> Network::walk(MessagePtr msg, std::size_t bytes,
                                bool is_header, bool is_last) {
  if (!msg->fault_delay.is_zero()) {
    // Injected reordering: every chunk of the message is held back by the
    // same amount, so the message arrives intact but late.
    co_await sim::delay(eng_, msg->fault_delay);
  }
  NodeId cur = msg->src;
  if (cur == msg->dst) {
    // Loopback: no links; charge one hop of latency.
    co_await sim::delay(eng_, cfg_.link.hop_latency);
  }
  std::size_t hop = 0;
  while (cur != msg->dst) {
    // Adaptive: every chunk follows the per-message path picked at
    // injection; otherwise the fixed dimension-order tables.
    const Port p = msg->route.empty() ? tables_[cur].next_port(msg->dst)
                                      : msg->route[hop++];
    assert(p != Port::kLocal);
    Link& l = link_out(cur, p);
    const bool slipped = co_await l.carry(bytes, msg->vc);
    if (slipped) msg->corrupted = true;
    cur = neighbor(shape_, cur, p);
  }
  if (msg->net_dropped) co_return;  // router-egress loss: never delivered
  Endpoint* ep = endpoints_[msg->dst];
  assert(ep != nullptr && "destination node has no attached NIC");
  if (is_header) {
    msg->header_at = eng_.now();
    ep->on_header(msg);
  }
  if (is_last) {
    msg->completed_at = eng_.now();
    ep->on_complete(msg);
  }
}

void Network::inject_header(const MessagePtr& msg) {
  // The header always occupies one full router packet.
  sim::spawn(walk(msg, cfg_.link.packet_size, /*is_header=*/true,
                  /*is_last=*/msg->payload.empty()));
}

void Network::inject_payload(const MessagePtr& msg, std::size_t offset,
                             std::size_t len, bool last) {
  assert(offset + len <= msg->payload.size());
  assert(len > 0);
  (void)offset;  // the chunk's byte range matters only for accounting
  sim::spawn(walk(msg, len, /*is_header=*/false, last));
}

void Network::send(const MessagePtr& msg) {
  begin(msg);
  inject_header(msg);
  const std::size_t total = msg->payload.size();
  for (std::size_t off = 0; off < total; off += cfg_.chunk_size) {
    const std::size_t len = std::min(cfg_.chunk_size, total - off);
    inject_payload(msg, off, len, off + len == total);
  }
}

std::vector<Link*> Network::path_links(NodeId src, NodeId dst) {
  std::vector<Link*> out;
  NodeId cur = src;
  while (cur != dst) {
    const Port p = tables_[cur].next_port(dst);
    out.push_back(&link_out(cur, p));
    cur = neighbor(shape_, cur, p);
  }
  return out;
}

std::vector<Port> Network::adaptive_route(NodeId src, NodeId dst) {
  std::vector<Port> route;
  bool deflected = false;
  NodeId cur = src;
  const Coord dest = shape_.to_coord(dst);
  while (cur != dst) {
    const std::vector<Port> cands =
        productive_ports(shape_, shape_.to_coord(cur), dest);
    assert(!cands.empty());
    Port best = cands.front();
    std::size_t best_occ = link_out(cur, best).occupancy();
    for (std::size_t i = 1; i < cands.size(); ++i) {
      const std::size_t occ = link_out(cur, cands[i]).occupancy();
      if (occ < best_occ) {
        best = cands[i];
        best_occ = occ;
      }
    }
    if (best != tables_[cur].next_port(dst)) deflected = true;
    route.push_back(best);
    cur = neighbor(shape_, cur, best);
  }
  if (deflected) ++deflections_;
  return route;
}

std::uint64_t Network::total_retries() const {
  std::uint64_t sum = 0;
  for (const auto& l : links_) sum += l->retries();
  return sum;
}

}  // namespace xt::net
