#include "net/crc.hpp"

#include <array>

namespace xt::net {

namespace {

std::array<std::uint16_t, 256> make_crc16_table() {
  std::array<std::uint16_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint16_t crc = static_cast<std::uint16_t>(i << 8);
    for (int b = 0; b < 8; ++b) {
      crc = static_cast<std::uint16_t>((crc & 0x8000u) ? (crc << 1) ^ 0x1021u
                                                       : (crc << 1));
    }
    t[i] = crc;
  }
  return t;
}

std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int b = 0; b < 8; ++b) {
      crc = (crc & 1u) ? (crc >> 1) ^ 0xEDB88320u : (crc >> 1);
    }
    t[i] = crc;
  }
  return t;
}

const auto kCrc16Table = make_crc16_table();
const auto kCrc32Table = make_crc32_table();

}  // namespace

std::uint16_t crc16(std::span<const std::byte> data, std::uint16_t seed) {
  std::uint16_t crc = seed;
  for (const std::byte b : data) {
    const auto idx =
        static_cast<std::uint8_t>((crc >> 8) ^ std::to_integer<unsigned>(b));
    crc = static_cast<std::uint16_t>((crc << 8) ^ kCrc16Table[idx]);
  }
  return crc;
}

std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::byte> data) {
  for (const std::byte b : data) {
    const auto idx = static_cast<std::uint8_t>(
        (state ^ std::to_integer<std::uint32_t>(b)) & 0xFFu);
    state = (state >> 8) ^ kCrc32Table[idx];
  }
  return state;
}

std::uint32_t crc32_finish(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed) {
  return crc32_finish(crc32_update(seed, data));
}

}  // namespace xt::net
