#pragma once

// CRC implementations used by the SeaStar reliability model (§2):
//   * CRC-16/CCITT-FALSE — the per-link check ("16 bit CRC check, with
//     retries, performed on each of the individual links").
//   * CRC-32/IEEE       — the end-to-end check added by the DMA engines
//     ("hardware support for an end-to-end 32 bit CRC check").

#include <cstddef>
#include <cstdint>
#include <span>

namespace xt::net {

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no reflection).
std::uint16_t crc16(std::span<const std::byte> data,
                    std::uint16_t seed = 0xFFFF);

/// CRC-32/IEEE (poly 0xEDB88320 reflected, init/final-xor 0xFFFFFFFF).
std::uint32_t crc32(std::span<const std::byte> data,
                    std::uint32_t seed = 0xFFFFFFFFu);

/// Continues a CRC-32 computation (pass the previous call's return value
/// through `resume`); finish with crc32_finish.
std::uint32_t crc32_update(std::uint32_t state, std::span<const std::byte> d);
std::uint32_t crc32_init();
std::uint32_t crc32_finish(std::uint32_t state);

}  // namespace xt::net
