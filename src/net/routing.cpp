#include "net/routing.hpp"

#include <cassert>

namespace xt::net {

const char* port_name(Port p) {
  switch (p) {
    case Port::kXPlus: return "x+";
    case Port::kXMinus: return "x-";
    case Port::kYPlus: return "y+";
    case Port::kYMinus: return "y-";
    case Port::kZPlus: return "z+";
    case Port::kZMinus: return "z-";
    case Port::kLocal: return "local";
  }
  return "?";
}

namespace {

/// Direction to move in one dimension: +1, -1, or 0 when already resolved.
int dim_step(int self, int dest, int size, bool wrap) {
  if (self == dest) return 0;
  if (!wrap) return dest > self ? 1 : -1;
  // Wrapped: shorter ring direction, ties toward +.
  const int fwd = (dest - self + size) % size;   // hops going +
  const int bwd = (self - dest + size) % size;   // hops going -
  return fwd <= bwd ? 1 : -1;
}

/// Appends the minimal direction(s) for one dimension — both when the two
/// ring directions tie (even-sized wrapped dimension at distance size/2).
void dim_ports(int self, int dest, int size, bool wrap, Port plus, Port minus,
               std::vector<Port>& out) {
  if (self == dest) return;
  if (!wrap) {
    out.push_back(dest > self ? plus : minus);
    return;
  }
  const int fwd = (dest - self + size) % size;
  const int bwd = (self - dest + size) % size;
  if (fwd <= bwd) out.push_back(plus);
  if (bwd <= fwd) out.push_back(minus);
}

}  // namespace

Port route_step(const Shape& shape, Coord self, Coord dest) {
  assert(shape.contains(self) && shape.contains(dest));
  if (int s = dim_step(self.x, dest.x, shape.nx, shape.wrap_x); s != 0) {
    return s > 0 ? Port::kXPlus : Port::kXMinus;
  }
  if (int s = dim_step(self.y, dest.y, shape.ny, shape.wrap_y); s != 0) {
    return s > 0 ? Port::kYPlus : Port::kYMinus;
  }
  if (int s = dim_step(self.z, dest.z, shape.nz, shape.wrap_z); s != 0) {
    return s > 0 ? Port::kZPlus : Port::kZMinus;
  }
  return Port::kLocal;
}

std::vector<Port> productive_ports(const Shape& shape, Coord self,
                                   Coord dest) {
  assert(shape.contains(self) && shape.contains(dest));
  std::vector<Port> out;
  dim_ports(self.x, dest.x, shape.nx, shape.wrap_x, Port::kXPlus,
            Port::kXMinus, out);
  dim_ports(self.y, dest.y, shape.ny, shape.wrap_y, Port::kYPlus,
            Port::kYMinus, out);
  dim_ports(self.z, dest.z, shape.nz, shape.wrap_z, Port::kZPlus,
            Port::kZMinus, out);
  return out;
}

RoutingTable::RoutingTable(const Shape& shape, Coord self) : self_(self) {
  table_.reserve(static_cast<std::size_t>(shape.count()));
  for (NodeId id = 0; id < static_cast<NodeId>(shape.count()); ++id) {
    table_.push_back(route_step(shape, self, shape.to_coord(id)));
  }
}

namespace {

Coord advance(const Shape& shape, Coord c, Port p) {
  auto wrap = [](int v, int n) { return ((v % n) + n) % n; };
  switch (p) {
    case Port::kXPlus: c.x = wrap(c.x + 1, shape.nx); break;
    case Port::kXMinus: c.x = wrap(c.x - 1, shape.nx); break;
    case Port::kYPlus: c.y = wrap(c.y + 1, shape.ny); break;
    case Port::kYMinus: c.y = wrap(c.y - 1, shape.ny); break;
    case Port::kZPlus: c.z = wrap(c.z + 1, shape.nz); break;
    case Port::kZMinus: c.z = wrap(c.z - 1, shape.nz); break;
    case Port::kLocal: break;
  }
  return c;
}

}  // namespace

std::vector<NodeId> route_path(const Shape& shape, NodeId src, NodeId dst) {
  std::vector<NodeId> path{src};
  Coord cur = shape.to_coord(src);
  const Coord dest = shape.to_coord(dst);
  // The path length is bounded by the sum of the dimension extents; guard
  // against a (would-be) routing bug looping forever.
  const int max_hops = shape.nx + shape.ny + shape.nz + 3;
  for (int i = 0; i <= max_hops; ++i) {
    const Port p = route_step(shape, cur, dest);
    if (p == Port::kLocal) return path;
    cur = advance(shape, cur, p);
    path.push_back(shape.to_id(cur));
  }
  assert(false && "routing did not converge");
  return path;
}

int hop_count(const Shape& shape, NodeId src, NodeId dst) {
  return static_cast<int>(route_path(shape, src, dst).size()) - 1;
}

NodeId neighbor(const Shape& shape, NodeId node, Port p) {
  assert(p != Port::kLocal);
  return shape.to_id(advance(shape, shape.to_coord(node), p));
}

}  // namespace xt::net
