#include "net/link.hpp"

#include <cmath>

#include "fault/injector.hpp"
#include "sim/strf.hpp"
#include "sim/trace.hpp"

namespace xt::net {

void Link::trace_occupancy() {
  sim::Engine& eng = res_.engine();
  if (!eng.trace_enabled()) return;
  sim::trace_counter(eng, sim::strf("link.%s", name().c_str()), "occupancy",
                     static_cast<std::int64_t>(occupancy()));
}

void Link::vc_release() {
  vc_busy_accum_ += res_.engine().now() - vc_held_since_;
  // Round robin: scan VCs starting after the one last served.
  const int n = cfg_.vcs;
  for (int i = 1; i <= n; ++i) {
    const int vc = (vc_last_ + i) % n;
    auto& q = vc_q_[static_cast<std::size_t>(vc)];
    if (q.empty()) continue;
    const std::coroutine_handle<> h = q.front();
    q.pop_front();
    // Stay busy across the handoff; the new holder's interval starts when
    // the scheduled resume runs (same timestamp, later event order).
    vc_last_ = vc;
    if (res_.engine().trace_enabled()) {
      sim::trace_counter(res_.engine(),
                         sim::strf("link.%s", name().c_str()), "vc_grant",
                         vc);
    }
    res_.engine().schedule_after(sim::Time{}, [this, h] {
      vc_held_since_ = res_.engine().now();
      h.resume();
    });
    return;
  }
  vc_busy_ = false;
}

sim::CoTask<bool> Link::carry(std::size_t bytes, int vc) {
  // Wire time is network work regardless of which layer issued the send.
  res_.engine().tag_category(telemetry::Cat::kNet);
  const sim::Time ser = serialize_time(bytes);
  const bool multi_vc = cfg_.vcs > 1;
  trace_occupancy();
  if (multi_vc) {
    if (vc < 0) vc = 0;
    if (vc >= cfg_.vcs) vc = vc % cfg_.vcs;
    co_await VcAcquire(*this, vc);
  } else {
    co_await res_.acquire();
  }
  co_await sim::delay(res_.engine(), ser);
  // Link-level CRC-16 with retries: the whole chunk is resent while any of
  // its packets was corrupted.  (The real hardware retries at packet
  // granularity; retrying the chunk is conservative and only matters under
  // fault injection, which is off by default.)
  if (cfg_.pkt_corrupt_prob > 0.0) {
    const double n = static_cast<double>(packets_for(bytes));
    const double chunk_fail_prob =
        1.0 - std::pow(1.0 - cfg_.pkt_corrupt_prob, n);
    while (rng_.chance(chunk_fail_prob)) {
      ++retries_;
      co_await sim::delay(res_.engine(), cfg_.retry_penalty + ser);
    }
  }
  // Injected corruption burst: a run of CRC-16 failures on this chunk,
  // each costing a retry, all caught by the link-level check.
  if (fault::Injector* inj = res_.engine().fault_injector()) {
    const std::uint32_t burst = inj->corrupt_burst_retries();
    for (std::uint32_t i = 0; i < burst; ++i) {
      ++retries_;
      co_await sim::delay(res_.engine(), cfg_.retry_penalty + ser);
    }
  }
  if (multi_vc) {
    vc_release();
  } else {
    res_.release();
  }
  trace_occupancy();
  co_await sim::delay(res_.engine(), cfg_.hop_latency);
  co_return cfg_.undetected_corrupt_prob > 0.0 &&
      rng_.chance(cfg_.undetected_corrupt_prob);
}

}  // namespace xt::net
