#include "net/link.hpp"

#include <cmath>

#include "fault/injector.hpp"

namespace xt::net {

sim::CoTask<bool> Link::carry(std::size_t bytes) {
  const sim::Time ser = serialize_time(bytes);
  co_await res_.acquire();
  co_await sim::delay(res_.engine(), ser);
  // Link-level CRC-16 with retries: the whole chunk is resent while any of
  // its packets was corrupted.  (The real hardware retries at packet
  // granularity; retrying the chunk is conservative and only matters under
  // fault injection, which is off by default.)
  if (cfg_.pkt_corrupt_prob > 0.0) {
    const double n = static_cast<double>(packets_for(bytes));
    const double chunk_fail_prob =
        1.0 - std::pow(1.0 - cfg_.pkt_corrupt_prob, n);
    while (rng_.chance(chunk_fail_prob)) {
      ++retries_;
      co_await sim::delay(res_.engine(), cfg_.retry_penalty + ser);
    }
  }
  // Injected corruption burst: a run of CRC-16 failures on this chunk,
  // each costing a retry, all caught by the link-level check.
  if (fault::Injector* inj = res_.engine().fault_injector()) {
    const std::uint32_t burst = inj->corrupt_burst_retries();
    for (std::uint32_t i = 0; i < burst; ++i) {
      ++retries_;
      co_await sim::delay(res_.engine(), cfg_.retry_penalty + ser);
    }
  }
  res_.release();
  co_await sim::delay(res_.engine(), cfg_.hop_latency);
  co_return cfg_.undetected_corrupt_prob > 0.0 &&
      rng_.chance(cfg_.undetected_corrupt_prob);
}

}  // namespace xt::net
