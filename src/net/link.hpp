#pragma once

// One unidirectional SeaStar link.
//
// Physical model (§2): 2.5 GB/s of data payload per direction, carried in
// 64-byte router packets; each link runs a 16-bit CRC with retries.  A link
// is a serially-reusable resource — a chunk occupies it for its
// serialization time, and chunks of different flows interleave FIFO, which
// is how the shared-link contention in multi-node runs arises.
//
// Fault injection: with probability `pkt_corrupt_prob` per packet the link
// CRC fails and the sender retries the chunk (paying serialization again
// plus a turnaround penalty).  With probability `undetected_corrupt_prob`
// per chunk a corruption slips past the link CRC — those must be caught by
// the end-to-end CRC-32 at the destination NIC.

#include <cstdint>
#include <string>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"

namespace xt::net {

struct LinkConfig {
  /// Payload bandwidth per direction (§2: 2.5 GB/s).
  std::uint64_t rate_bytes_per_sec = 2'500'000'000ull;
  /// Router pass-through plus wire time per hop.
  sim::Time hop_latency = sim::Time::ns(40);
  /// Router packet granularity (§2: 64-byte packets).
  std::size_t packet_size = 64;
  /// Probability that a packet fails the link CRC-16 and triggers a retry.
  double pkt_corrupt_prob = 0.0;
  /// Probability per chunk that corruption escapes the link CRC entirely.
  double undetected_corrupt_prob = 0.0;
  /// Extra turnaround time per retry (NACK + resend setup).
  sim::Time retry_penalty = sim::Time::ns(100);
};

class Link {
 public:
  Link(sim::Engine& eng, LinkConfig cfg, std::uint64_t seed, std::string name)
      : cfg_(cfg), res_(eng, std::move(name)), rng_(seed) {}

  /// Carries `bytes` of payload across the link: serialize (packetized,
  /// retrying corrupted packets), then incur the per-hop latency.
  /// Returns true if an undetected corruption happened on this link.
  sim::CoTask<bool> carry(std::size_t bytes);

  /// Serialization time for `bytes`, rounded up to whole packets.
  sim::Time serialize_time(std::size_t bytes) const {
    const std::size_t pkts = packets_for(bytes);
    return sim::Time::for_bytes(pkts * cfg_.packet_size,
                                cfg_.rate_bytes_per_sec);
  }

  std::size_t packets_for(std::size_t bytes) const {
    return bytes == 0 ? 1 : (bytes + cfg_.packet_size - 1) / cfg_.packet_size;
  }

  const LinkConfig& config() const { return cfg_; }
  std::uint64_t retries() const { return retries_; }
  sim::Time busy_time() const { return res_.busy_time(); }
  const std::string& name() const { return res_.name(); }

 private:
  LinkConfig cfg_;
  sim::Resource res_;
  sim::Rng rng_;
  std::uint64_t retries_ = 0;
};

}  // namespace xt::net
