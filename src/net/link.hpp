#pragma once

// One unidirectional SeaStar link.
//
// Physical model (§2): 2.5 GB/s of data payload per direction, carried in
// 64-byte router packets; each link runs a 16-bit CRC with retries.  A link
// is a serially-reusable resource — a chunk occupies it for its
// serialization time, and chunks of different flows interleave FIFO, which
// is how the shared-link contention in multi-node runs arises.
//
// Fault injection: with probability `pkt_corrupt_prob` per packet the link
// CRC fails and the sender retries the chunk (paying serialization again
// plus a turnaround penalty).  With probability `undetected_corrupt_prob`
// per chunk a corruption slips past the link CRC — those must be caught by
// the end-to-end CRC-32 at the destination NIC.
//
// Virtual channels: with `vcs > 1` the single FIFO becomes `vcs` queues
// with round-robin arbitration between non-empty VCs — one job class
// cannot monopolize a shared link by queueing depth alone (the APEnet-
// style arbitration alternative for multi-tenant contention studies).
// `vcs == 1` keeps the original strict-FIFO sim::Resource path, event for
// event.

#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"

namespace xt::net {

struct LinkConfig {
  /// Payload bandwidth per direction (§2: 2.5 GB/s).
  std::uint64_t rate_bytes_per_sec = 2'500'000'000ull;
  /// Router pass-through plus wire time per hop.
  sim::Time hop_latency = sim::Time::ns(40);
  /// Router packet granularity (§2: 64-byte packets).
  std::size_t packet_size = 64;
  /// Probability that a packet fails the link CRC-16 and triggers a retry.
  double pkt_corrupt_prob = 0.0;
  /// Probability per chunk that corruption escapes the link CRC entirely.
  double undetected_corrupt_prob = 0.0;
  /// Extra turnaround time per retry (NACK + resend setup).
  sim::Time retry_penalty = sim::Time::ns(100);
  /// Virtual channels per link.  1 = strict FIFO (the hardware's in-order
  /// guarantee); >1 = round-robin arbitration between per-VC queues.
  int vcs = 1;
};

class Link {
 public:
  Link(sim::Engine& eng, LinkConfig cfg, std::uint64_t seed, std::string name)
      : cfg_(cfg), res_(eng, std::move(name)), rng_(seed) {
    if (cfg_.vcs > 1) vc_q_.resize(static_cast<std::size_t>(cfg_.vcs));
  }

  /// Carries `bytes` of payload across the link on virtual channel `vc`:
  /// serialize (packetized, retrying corrupted packets), then incur the
  /// per-hop latency.  Returns true if an undetected corruption happened
  /// on this link.  `vc` is clamped into [0, vcs) and ignored when the
  /// link runs a single FIFO.
  sim::CoTask<bool> carry(std::size_t bytes, int vc = 0);

  /// Chunks currently holding or waiting for the link — the congestion
  /// signal adaptive routing reads when choosing between productive ports.
  std::size_t occupancy() const {
    std::size_t n = res_.queued() + (res_.busy() ? 1 : 0);
    if (cfg_.vcs > 1) {
      n += vc_busy_ ? 1 : 0;
      for (const auto& q : vc_q_) n += q.size();
    }
    return n;
  }

  /// Serialization time for `bytes`, rounded up to whole packets.
  sim::Time serialize_time(std::size_t bytes) const {
    const std::size_t pkts = packets_for(bytes);
    return sim::Time::for_bytes(pkts * cfg_.packet_size,
                                cfg_.rate_bytes_per_sec);
  }

  std::size_t packets_for(std::size_t bytes) const {
    return bytes == 0 ? 1 : (bytes + cfg_.packet_size - 1) / cfg_.packet_size;
  }

  const LinkConfig& config() const { return cfg_; }
  std::uint64_t retries() const { return retries_; }
  sim::Time busy_time() const { return res_.busy_time() + vc_busy_accum_; }
  const std::string& name() const { return res_.name(); }

 private:
  /// Round-robin VC arbitration (vcs > 1 only).  Mirrors sim::Resource's
  /// grant discipline — resumption always goes through the engine — but
  /// the wait queues are per VC and release() hands the link to the next
  /// non-empty VC after the one last served.
  class VcAcquire {
   public:
    VcAcquire(Link& l, int vc) : l_(l), vc_(vc) {}
    bool await_ready() const noexcept {
      if (l_.vc_busy_) return false;
      l_.vc_grant(vc_);
      return true;
    }
    void await_suspend(std::coroutine_handle<> h) {
      l_.vc_q_[static_cast<std::size_t>(vc_)].push_back(h);
    }
    void await_resume() const noexcept {}

   private:
    Link& l_;
    int vc_;
  };
  friend class VcAcquire;

  void vc_grant(int vc) {
    vc_busy_ = true;
    vc_last_ = vc;
    vc_held_since_ = res_.engine().now();
  }
  void vc_release();
  /// Samples the occupancy counter onto this link's trace track (no-op
  /// untraced).
  void trace_occupancy();

  LinkConfig cfg_;
  sim::Resource res_;
  sim::Rng rng_;
  std::uint64_t retries_ = 0;
  // vcs > 1 arbitration state.
  std::vector<std::deque<std::coroutine_handle<>>> vc_q_;
  bool vc_busy_ = false;
  int vc_last_ = 0;
  sim::Time vc_held_since_{};
  sim::Time vc_busy_accum_{};
};

}  // namespace xt::net
