#pragma once

// Network-level message representation.
//
// The network layer is deliberately ignorant of Portals: it moves a 64-byte
// header packet (whose contents the firmware defines — including the ≤12 B
// inline-payload optimization) followed by payload bytes, and reports two
// receive-side milestones that the SeaStar Rx path cares about:
//   * header arrival   — the firmware can start processing / interrupt the
//                        host for matching while the body is still flowing;
//   * body completion  — the last byte is available for DMA deposit.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/coord.hpp"
#include "sim/time.hpp"

namespace xt::net {

struct Message {
  NodeId src = 0;
  NodeId dst = 0;
  /// Network-assigned sequence number (global, for tracing/tests).
  std::uint64_t seq = 0;
  /// Provenance record id (telemetry::ProvenanceLog); 0 = untracked.
  std::uint64_t prov_id = 0;
  /// Virtual channel the message rides (service-class arbitration at each
  /// link; always 0 unless the network runs more than one VC).
  std::uint8_t vc = 0;
  /// Adaptive routing only: the per-message path chosen at injection (one
  /// port per hop).  Empty = follow the dimension-order tables.  All chunks
  /// of a message share the path, so a message arrives intact and in order
  /// with itself; *different* messages of one (src, dst) pair may take
  /// different paths and overtake each other — the in-order guarantee the
  /// paper attributes to table-based routing (§2) is deliberately given up.
  std::vector<Port> route;

  /// Contents of the header packet (at most Config::packet_size bytes).
  std::vector<std::byte> header;
  /// Payload carried in subsequent packets (may be empty).
  std::vector<std::byte> payload;

  /// End-to-end CRC-32 over header+payload, computed by the sending DMA
  /// engine; verified by the receiving DMA engine.
  std::uint32_t e2e_crc = 0;
  /// Set when fault injection corrupted the message past the link-level
  /// retry protection (so the e2e CRC check must catch it).
  bool corrupted = false;
  /// Router-egress loss (fault injection): the message traverses its path
  /// (bandwidth is consumed) but is never delivered to the endpoint.
  bool net_dropped = false;
  /// Extra delivery delay (fault injection): shifts the whole message so
  /// later traffic can overtake it on the wire.
  sim::Time fault_delay{};

  // Timestamps filled in by the network (for tests and traces).
  sim::Time injected_at{};
  sim::Time header_at{};
  sim::Time completed_at{};

  std::size_t wire_payload_bytes() const { return payload.size(); }
};

using MessagePtr = std::shared_ptr<Message>;

/// Receive side of a node (implemented by the SeaStar NIC model).
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  /// The header packet has crossed the last link into this node.
  virtual void on_header(const MessagePtr& msg) = 0;
  /// The final payload byte has crossed the last link into this node.
  /// Also called for payload-less messages (immediately after on_header).
  virtual void on_complete(const MessagePtr& msg) = 0;
};

}  // namespace xt::net
