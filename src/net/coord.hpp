#pragma once

// 3D torus coordinates and machine shape.
//
// Red Storm (the paper's platform, §5.1) is an XT3 variant whose network is
// a torus only in the Z dimension — the X and Y dimensions are meshes so
// cabinet sections can be switched between classified and unclassified use.
// Shape captures both the general XT3 torus and the Red Storm variant.

#include <cassert>
#include <cstdint>
#include <string>

namespace xt::net {

/// Flat node identifier, 0 .. count()-1.
using NodeId = std::uint32_t;

struct Coord {
  int x = 0;
  int y = 0;
  int z = 0;
  friend bool operator==(const Coord&, const Coord&) = default;
};

/// Machine dimensions and per-dimension wraparound.
struct Shape {
  int nx = 1;
  int ny = 1;
  int nz = 1;
  bool wrap_x = true;
  bool wrap_y = true;
  bool wrap_z = true;

  /// Red Storm: torus in Z only (paper §5.1).
  static Shape red_storm(int nx, int ny, int nz) {
    return Shape{nx, ny, nz, false, false, true};
  }
  /// Commercial XT3: full 3D torus.
  static Shape xt3(int nx, int ny, int nz) {
    return Shape{nx, ny, nz, true, true, true};
  }

  int count() const { return nx * ny * nz; }

  bool contains(Coord c) const {
    return c.x >= 0 && c.x < nx && c.y >= 0 && c.y < ny && c.z >= 0 &&
           c.z < nz;
  }

  NodeId to_id(Coord c) const {
    assert(contains(c));
    return static_cast<NodeId>((c.z * ny + c.y) * nx + c.x);
  }

  Coord to_coord(NodeId id) const {
    assert(id < static_cast<NodeId>(count()));
    const int i = static_cast<int>(id);
    return Coord{i % nx, (i / nx) % ny, i / (nx * ny)};
  }
};

/// Output ports of a SeaStar router (Figure 1), plus the local HT port.
enum class Port : std::uint8_t {
  kXPlus = 0,
  kXMinus,
  kYPlus,
  kYMinus,
  kZPlus,
  kZMinus,
  kLocal,
};

inline constexpr int kPortCount = 7;

const char* port_name(Port p);

}  // namespace xt::net
