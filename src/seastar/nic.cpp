#include "seastar/nic.hpp"

#include <algorithm>
#include <cassert>

#include "fault/invariants.hpp"
#include "net/crc.hpp"
#include "sim/strf.hpp"
#include "telemetry/hooks.hpp"

namespace xt::ss {

using telemetry::Stage;
using telemetry::prov_stamp;

Nic::Nic(sim::Engine& eng, const Config& cfg, transport::Transport& tp,
         net::NodeId node)
    : eng_(eng),
      cfg_(cfg),
      tp_(tp),
      node_(node),
      sram_(cfg.sram_bytes),
      tx_dma_(eng, sim::strf("nic%u.tx", node)),
      rx_dma_(eng, sim::strf("nic%u.rx", node)) {
  tp_.attach(node, *this);
  auto& reg = eng_.metrics();
  const std::string pre = sim::strf("nic.n%u.", node_);
  m_tx_busy_ps_ = &reg.gauge(pre + "tx_busy_ps");
  m_rx_busy_ps_ = &reg.gauge(pre + "rx_busy_ps");
  m_rx_queue_ps_ = &reg.histogram(pre + "rx_queue_ps");
  m_sram_used_ = &reg.histogram(pre + "sram_used");
}

sim::CoTask<void> Nic::transmit(net::MessagePtr msg, PayloadReader reader,
                                std::size_t payload_bytes,
                                std::size_t n_dma_cmds) {
  eng_.tag_category(telemetry::Cat::kNic, static_cast<int>(node_));
  co_await tx_dma_.acquire();
  // Fetch the 64-byte header out of the upper pending in host memory.  This
  // is the one HT read round-trip the transmit path cannot avoid.
  co_await sim::delay(eng_, cfg_.ht_read_latency);
  if (n_dma_cmds > 1) {
    co_await sim::delay(eng_,
                        cfg_.fw_per_dma_cmd * static_cast<std::int64_t>(
                                                  n_dma_cmds - 1));
  }
  msg->payload.resize(payload_bytes);
  if (eng_.metrics().sampling()) {
    m_sram_used_->record(sram_.used());
  }
  prov_stamp(eng_, msg->prov_id, Stage::kWireHeader);
  tp_.begin(msg);
  tp_.inject_header(msg);
  // Stream the payload: read each chunk from host memory at the effective
  // HT rate, then hand it to the wire (which is faster, so it never back-
  // pressures the engine in the uncongested case).  The end-to-end CRC-32
  // is accumulated as the engine streams — it must cover the bytes as
  // actually read from host memory, and the final value is sealed before
  // the last chunk is injected (the check happens at the far end after
  // that chunk lands).
  const std::size_t chunk = tp_.chunk_size();
  std::uint32_t crc = net::crc32_init();
  crc = net::crc32_update(crc, msg->header);
  for (std::size_t off = 0; off < payload_bytes; off += chunk) {
    const std::size_t len = std::min(chunk, payload_bytes - off);
    co_await sim::delay(eng_, sim::Time::for_bytes(len, cfg_.ht_tx_rate));
    const auto slice = std::span(msg->payload).subspan(off, len);
    if (reader) reader(off, slice);
    crc = net::crc32_update(crc, slice);
    if (off + len == payload_bytes) msg->e2e_crc = net::crc32_finish(crc);
    tp_.inject_payload(msg, off, len, off + len == payload_bytes);
  }
  ++msgs_sent_;
  bytes_sent_ += payload_bytes;
  tx_dma_.release();
  m_tx_busy_ps_->set(tx_dma_.busy_time().to_ps());
}

sim::CoTask<void> Nic::deposit(std::size_t bytes, std::size_t n_dma_cmds) {
  eng_.tag_category(telemetry::Cat::kNic, static_cast<int>(node_));
  const sim::Time service = sim::Time::for_bytes(bytes, cfg_.ht_rx_rate);
  // Ideally the deposit streamed concurrently with the wire arrival that
  // just finished — its service would have STARTED `service` ago.  It can
  // not have started before the pipe finished earlier messages, though:
  // that queueing is what caps an incast at ht_rx_rate.
  const sim::Time now = eng_.now();
  const sim::Time ideal_start = now - service;
  const sim::Time start = std::max(ideal_start, rx_free_at_);
  if (eng_.metrics().sampling()) {
    // How long the pipe's backlog delayed this deposit's ideal cut-through
    // start: 0 when uncongested, grows with incast pressure.
    m_rx_queue_ps_->record(
        static_cast<std::uint64_t>((start - ideal_start).to_ps()));
  }
  rx_free_at_ = start + service;
  rx_busy_accum_ += service;
  m_rx_busy_ps_->set(rx_busy_accum_.to_ps());

  const std::size_t burst = std::min(bytes, cfg_.rx_deposit_burst);
  sim::Time finish = std::max(
      rx_free_at_ + sim::Time::for_bytes(burst, cfg_.ht_rx_rate),
      now + sim::Time::for_bytes(burst, cfg_.ht_rx_rate));
  if (n_dma_cmds > 1) {
    finish += cfg_.fw_per_dma_cmd * static_cast<std::int64_t>(n_dma_cmds - 1);
  }
  co_await sim::delay(eng_, finish - now);
}

void Nic::on_header(const net::MessagePtr& msg) {
  assert(client_ != nullptr && "NIC has no firmware installed");
  prov_stamp(eng_, msg->prov_id, Stage::kRxNicHeader);
  client_->on_rx_header(msg);
}

void Nic::on_complete(const net::MessagePtr& msg) {
  assert(client_ != nullptr && "NIC has no firmware installed");
  ++msgs_received_;
  bytes_received_ += msg->payload.size();
  // End-to-end CRC-32 check performed by the Rx DMA engine (§2).
  std::uint32_t c = net::crc32_init();
  c = net::crc32_update(c, msg->header);
  c = net::crc32_update(c, msg->payload);
  const bool ok = net::crc32_finish(c) == msg->e2e_crc && !msg->corrupted;
  if (!ok) ++crc_drops_;
  if (fault::InvariantChecker* chk = eng_.invariants()) {
    // "No corrupt delivery": a corrupted message must never pass the CRC.
    chk->on_rx_verdict(ok, msg->corrupted);
  }
  // Header-only messages complete at header time; stamping the same
  // instant twice would only pad the waterfall.
  if (!msg->payload.empty()) {
    prov_stamp(eng_, msg->prov_id, Stage::kRxNicComplete);
  }
  client_->on_rx_complete(msg, ok);
}

}  // namespace xt::ss
