#pragma once

// SeaStar local SRAM accounting.
//
// The paper's central hardware constraint (§3.3): only 384 KB of on-chip
// SRAM is available to the firmware, which is why Portals matching stays on
// the host in the initial implementation.  The firmware pre-allocates every
// structure at initialization (§4.2: "There is no dynamic allocation of any
// data structures by the firmware"), so the model is a set of named regions
// reserved once at boot; exceeding the budget is a *boot-time* failure,
// mirroring how the real firmware's compile-time constants are sized.
//
// The §4.2 occupancy formula  M = S*Ssize + sum_i(Pi * Psize)  is what
// bench/tableA_sram prints from this accounting.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace xt::ss {

class Sram {
 public:
  explicit Sram(std::size_t capacity) : capacity_(capacity) {}
  Sram(const Sram&) = delete;
  Sram& operator=(const Sram&) = delete;

  /// RAII reservation of a named region.
  class Region {
   public:
    Region() = default;
    Region(Region&& o) noexcept
        : sram_(std::exchange(o.sram_, nullptr)), idx_(o.idx_) {}
    Region& operator=(Region&& o) noexcept {
      if (this != &o) {
        release();
        sram_ = std::exchange(o.sram_, nullptr);
        idx_ = o.idx_;
      }
      return *this;
    }
    Region(const Region&) = delete;
    Region& operator=(const Region&) = delete;
    ~Region() { release(); }

    std::size_t size() const {
      return sram_ ? sram_->entries_[idx_].bytes : 0;
    }
    bool valid() const { return sram_ != nullptr; }

   private:
    friend class Sram;
    Region(Sram* s, std::size_t idx) : sram_(s), idx_(idx) {}
    void release() {
      if (sram_ != nullptr) {
        sram_->release(idx_);
        sram_ = nullptr;
      }
    }
    Sram* sram_ = nullptr;
    std::size_t idx_ = 0;
  };

  /// Reserves `bytes` under `name`.  Throws std::length_error when the
  /// budget would be exceeded — the moral equivalent of the firmware image
  /// failing to fit at boot.
  Region reserve(std::string name, std::size_t bytes) {
    if (used_ + bytes > capacity_) {
      throw std::length_error("SeaStar SRAM exhausted reserving '" + name +
                              "': " + std::to_string(used_ + bytes) + " of " +
                              std::to_string(capacity_) + " bytes");
    }
    used_ += bytes;
    peak_ = std::max(peak_, used_);
    entries_.push_back(Entry{std::move(name), bytes, /*live=*/true});
    if (observer_) observer_(used_, static_cast<std::int64_t>(bytes));
    return Region{this, entries_.size() - 1};
  }

  /// Ledger observer: called after every reservation change with the live
  /// byte count and the signed delta.  Installed by the fault harness so
  /// the InvariantChecker can audit allocation/free balance.
  void set_observer(std::function<void(std::size_t, std::int64_t)> fn) {
    observer_ = std::move(fn);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }
  std::size_t peak() const { return peak_; }
  std::size_t free_bytes() const { return capacity_ - used_; }

  /// Live regions, in reservation order (name, bytes).
  std::vector<std::pair<std::string, std::size_t>> table() const {
    std::vector<std::pair<std::string, std::size_t>> out;
    for (const auto& e : entries_) {
      if (e.live) out.emplace_back(e.name, e.bytes);
    }
    return out;
  }

 private:
  struct Entry {
    std::string name;
    std::size_t bytes = 0;
    bool live = false;
  };

  void release(std::size_t idx) {
    assert(idx < entries_.size() && entries_[idx].live);
    entries_[idx].live = false;
    used_ -= entries_[idx].bytes;
    if (observer_) {
      observer_(used_, -static_cast<std::int64_t>(entries_[idx].bytes));
    }
  }

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
  std::vector<Entry> entries_;
  std::function<void(std::size_t, std::int64_t)> observer_;
};

}  // namespace xt::ss
