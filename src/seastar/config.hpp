#pragma once

// SeaStar / XT3 timing and sizing model.
//
// Every number the simulation charges for lives here, so ablation benches
// can sweep them and EXPERIMENTS.md can tie each to its source:
//
//   * taken directly from the paper:
//       - Catamount NULL-trap 75 ns, interrupt >= 2 us           (§3.3)
//       - link payload 2.5 GB/s, 64 B router packets             (§2)
//       - HT peak 3.2 GB/s, payload peak 2.8 GB/s, "practical
//         rate somewhat lower than that"                         (§2)
//       - 384 KB SeaStar local SRAM                              (§2, §3.3)
//       - 1,024 sources / 1,274 generic-process pendings         (§4.2)
//       - <= 12 B of user data rides in the 64 B header packet   (§6)
//   * calibrated so the measured curves land on the paper's anchors
//     (1 B put latency 5.39 us, uni-dir peak ~1109 MB/s, bi-dir ~2203
//     MB/s, half-bandwidth near 7 KB ping-pong / 5 KB streaming):
//       - effective DMA payload rates and the firmware handler costs
//         (the PowerPC 440 is a 500 MHz dual-issue core; handlers are a
//         few hundred instructions, i.e. a few hundred ns each).

#include <cstddef>
#include <cstdint>

#include "net/network.hpp"
#include "sim/time.hpp"

namespace xt::ss {

struct Config {
  using Time = sim::Time;

  // ---------------------------------------------------------- network ----
  net::NetConfig net{};

  // ----------------------------------------------------- HyperTransport ----
  /// Effective payload rate of Tx DMA reads from host memory.  The 800 MHz
  /// HT interface peaks at 2.8 GB/s of payload; the achieved practical rate
  /// on early Red Storm silicon/firmware was far lower — this constant is
  /// the calibration knob that sets the ~1.1 GB/s uni-directional plateau.
  std::uint64_t ht_tx_rate = 1'115'000'000ull;
  /// Effective payload rate of Rx DMA writes to host memory.
  std::uint64_t ht_rx_rate = 1'115'000'000ull;
  /// Rx DMA cut-through granularity: the deposit streams to host memory as
  /// packets arrive, so once the receive command is programmed only the
  /// final burst of this size trails the last wire byte.
  std::size_t rx_deposit_burst = 1024;
  /// One-way latency of a posted write crossing HT (host->NIC mailbox or
  /// NIC->host event/upper-pending write).
  Time ht_write_latency = Time::ns(175);
  /// Round-trip latency of a read across HT (what the firmware pays if it
  /// ever reads host memory; §4.2 explains it avoids doing so).
  Time ht_read_latency = Time::ns(400);

  // ------------------------------------------------- PowerPC firmware ----
  /// Mailbox poll granularity of the idle main loop.
  Time fw_poll = Time::ns(100);
  /// Handler: host TX command -> lower pending init -> enqueue.
  Time fw_tx_cmd = Time::ns(300);
  /// Handler: program the Tx DMA engine for the message at list head.
  Time fw_tx_start = Time::ns(200);
  /// Handler: TX done -> unlink pending, post completion event.
  Time fw_tx_complete = Time::ns(250);
  /// Handler: new RX header -> source hash lookup/alloc, pending alloc,
  /// header write-through to the upper pending.
  Time fw_rx_header = Time::ns(350);
  /// Handler: host RX command -> lower pending setup, source list link.
  Time fw_rx_cmd = Time::ns(300);
  /// Handler: RX deposit done -> post completion event.
  Time fw_rx_complete = Time::ns(200);
  /// Posting one event into a host event queue (HT write + bookkeeping).
  Time fw_event_post = Time::ns(75);
  /// Per pre-computed DMA command beyond the first (Linux paged buffers).
  Time fw_per_dma_cmd = Time::ns(40);
  /// Firmware-side Portals matching, per match-list entry examined
  /// (accelerated mode only).
  Time fw_match_per_me = Time::ns(150);
  /// Handler: bump one counting event and scan the armed trigger table
  /// (counting events / triggered operations, accelerated mode only).
  Time fw_ct_inc = Time::ns(50);
  /// Handler: launch one triggered put from the trigger table (header
  /// fetch + Tx DMA program; the transmit itself is charged by the NIC).
  Time fw_trigger_fire = Time::ns(250);

  // ----------------------------------------------------------- host ----
  /// NULL-trap into the Catamount quintessential kernel (§3.3: ~75 ns).
  Time trap_catamount = Time::ns(75);
  /// Syscall entry on the Linux service/compute nodes.
  Time trap_linux = Time::ns(700);
  /// Interrupt overhead on the host (§3.3: "at least 2 us each").
  Time interrupt = Time::us(2);
  /// Host-side Portals processing: fixed cost of one match attempt...
  Time host_match_base = Time::ns(250);
  /// ...plus this much per match-list entry walked.
  Time host_match_per_me = Time::ns(50);
  /// Library-side CPU cost of a plain API call (handle checks, bookkeeping).
  Time host_api_call = Time::ns(100);
  /// Building a Portals header / command on the host.
  Time host_cmd_build = Time::ns(250);
  /// Posting a Portals event to an application EQ and waking the waiter.
  Time host_event_post = Time::ns(125);
  /// Host memcpy bandwidth (eager-buffer copies in the MPI layer).
  std::uint64_t host_memcpy_rate = 2'600'000'000ull;
  /// Pinning + translating one page on Linux before pushing DMA commands.
  Time linux_per_page = Time::ns(120);
  std::size_t linux_page_size = 4096;

  // ------------------------------------------------ sizes and limits ----
  /// User bytes that fit in the header packet next to the Portals header
  /// (§6: 12 bytes; saves the second interrupt on the receive side).
  std::size_t inline_payload_max = 12;
  /// SeaStar local SRAM (§2: 384 KB, ECC-protected).
  std::size_t sram_bytes = 384 * 1024;
  /// Firmware image resident in SRAM (§4: 22 KB when compiled -O3).
  std::size_t fw_image_bytes = 22 * 1024;
  /// Global source structures (§4.2: 1,024 for the whole firmware).
  std::size_t n_sources = 1024;
  /// Pendings allocated to the generic firmware-level process (§4.2 gives
  /// the total as 1,274; the split between the firmware-managed RX pool and
  /// the host-managed TX pool is ours).
  std::size_t n_generic_rx_pendings = 1024;
  std::size_t n_generic_tx_pendings = 250;
  /// Pendings for each accelerated process (each pool).
  std::size_t n_accel_rx_pendings = 192;
  std::size_t n_accel_tx_pendings = 64;
  /// Counting events per accelerated process (Portals-4-style lightweight
  /// counters living in SRAM; the offload collective engine's only state).
  std::size_t n_accel_counters = 64;
  /// Triggered-operation table entries per accelerated process.  Each armed
  /// entry holds a prebuilt header plus a DMA program and fires when its
  /// counter reaches threshold — entirely on the NIC, no host interrupt.
  std::size_t n_accel_triggers = 128;
  /// SRAM charged per counter (value + waiter bookkeeping).
  std::size_t counter_bytes = 8;
  /// SRAM charged per trigger table entry (64 B header packet + counter id,
  /// threshold, DMA program descriptor).
  std::size_t trigger_bytes = 96;
  /// Command FIFO depth of one firmware mailbox.
  std::size_t mailbox_depth = 256;
  /// Firmware-to-host event queue depth (generic kernel EQ and per
  /// accelerated process EQ).
  std::size_t fw_eq_depth = 4096;
  /// Go-back-n: retransmit window retained per destination (messages).
  std::size_t gobackn_window = 64;
  /// Figure 3 structure sizes (32-byte lower pending is labelled in the
  /// figure; sources are described as similar).
  std::size_t lower_pending_bytes = 32;
  std::size_t source_bytes = 32;
  std::size_t control_block_bytes = 256;
  std::size_t per_process_bytes = 192;  // process struct + mailbox

  /// Enables the go-back-n recovery protocol the paper describes as work in
  /// progress (§4.3).  Off by default: the shipped firmware "assumes that
  /// resource exhaustion does not occur" and panics the node.
  bool gobackn = false;
  /// Retransmission backoff when a NACK arrives (go-back-n only).
  Time gobackn_backoff = Time::us(5);
  /// Cumulative FwAck frequency (accepted messages per ack).
  std::size_t gobackn_ack_every = 1;
  /// Sender-side retransmit watchdog period: if the window makes no
  /// progress for this long, rewind from its base (covers NACKs lost or
  /// suppressed while a rewind was already running).
  Time gobackn_timeout = Time::us(25);
  /// Retransmissions per rewind burst.  A full-window burst under incast
  /// saturates the receiver's PowerPC with headers it must drop, starving
  /// the deposits/releases that would free pendings (congestion collapse).
  std::size_t gobackn_burst = 8;
  /// Backoff doubles on every no-progress rewind up to this cap, and
  /// resets when the window advances.
  Time gobackn_backoff_max = Time::us(800);
  /// Consecutive no-progress rewinds at the backoff ceiling before the
  /// sender declares the destination dead, drops its window, and surfaces
  /// the loss to initiators (ack timeout).  Keeps the watchdog from
  /// retransmitting forever into a node that fault injection killed.
  std::size_t gobackn_max_rewinds = 24;
};

}  // namespace xt::ss
