#pragma once

// The SeaStar NIC hardware shell (Figure 1 of the paper).
//
// Owns the two independent DMA engines, the local SRAM, and the node's
// attachment to the torus.  The firmware (src/firmware) runs "on" this NIC:
// the NIC delivers raw receive milestones to an installed RxClient and
// executes DMA programs on the firmware's behalf.  Everything Portals-
// specific lives above this layer.
//
// Independent Tx and Rx engines are what let the paper's Figure 7 sustain
// ~2x the uni-directional rate: nothing here is shared between the transmit
// and receive paths except the wire itself (which is also full-duplex).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

#include "net/message.hpp"
#include "seastar/config.hpp"
#include "seastar/sram.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"
#include "telemetry/metrics.hpp"
#include "transport/transport.hpp"

namespace xt::ss {

/// Receive-side observer implemented by the firmware.
class RxClient {
 public:
  virtual ~RxClient() = default;
  /// A new message header reached the Rx DMA engine.
  virtual void on_rx_header(const net::MessagePtr& msg) = 0;
  /// The last payload byte arrived.  `crc_ok` is the end-to-end CRC-32
  /// verdict computed by the Rx DMA engine.
  virtual void on_rx_complete(const net::MessagePtr& msg, bool crc_ok) = 0;
};

/// Reads payload bytes out of host memory as the Tx DMA engine consumes
/// them (zero-copy transmit: §4.3 "payload DMA'ed directly from main
/// memory").
using PayloadReader =
    std::function<void(std::size_t offset, std::span<std::byte> out)>;

class Nic final : public net::Endpoint {
 public:
  Nic(sim::Engine& eng, const Config& cfg, transport::Transport& tp,
      net::NodeId node);

  void set_rx_client(RxClient& c) { client_ = &c; }

  /// Executes one transmit DMA program: fetches the header from the upper
  /// pending across HT, then streams `payload_bytes` from host memory onto
  /// the wire at the effective HT read rate.  Holds the Tx engine for the
  /// duration — all transmits from a node serialize, mirroring the single
  /// TX FIFO of §4.3.  `n_dma_cmds` > 1 charges the per-command overhead of
  /// pre-computed (non-contiguous) programs.
  sim::CoTask<void> transmit(net::MessagePtr msg, PayloadReader reader,
                             std::size_t payload_bytes,
                             std::size_t n_dma_cmds);

  /// Completes a receive DMA program.  The engine is modeled as a
  /// rate-limited pipe: a message's bytes stream to host memory DURING
  /// their wire arrival (cut-through), so a lone message only pays the
  /// trailing burst — but the pipe's capacity (ht_rx_rate) is shared, so
  /// concurrent deposits from an incast serialize and the node's aggregate
  /// receive rate caps at the HT practical rate (§2).
  sim::CoTask<void> deposit(std::size_t bytes, std::size_t n_dma_cmds);

  // net::Endpoint — wire-side arrivals, forwarded to the firmware.
  void on_header(const net::MessagePtr& msg) override;
  void on_complete(const net::MessagePtr& msg) override;

  net::NodeId node() const { return node_; }
  Sram& sram() { return sram_; }
  const Config& config() const { return cfg_; }
  sim::Engine& engine() const { return eng_; }
  transport::Transport& transport() { return tp_; }

  // Counters.
  std::uint64_t msgs_sent() const { return msgs_sent_; }
  std::uint64_t msgs_received() const { return msgs_received_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  std::uint64_t crc_drops() const { return crc_drops_; }
  sim::Time tx_busy() const { return tx_dma_.busy_time(); }
  sim::Time rx_busy() const { return rx_busy_accum_; }

 private:
  sim::Engine& eng_;
  const Config& cfg_;
  transport::Transport& tp_;
  net::NodeId node_;
  Sram sram_;
  sim::Resource tx_dma_;
  sim::Resource rx_dma_;  // retained for potential exclusive-mode programs
  /// Rx pipe bookkeeping: when the engine finishes its queued service.
  sim::Time rx_free_at_{};
  sim::Time rx_busy_accum_{};
  RxClient* client_ = nullptr;

  std::uint64_t msgs_sent_ = 0;
  std::uint64_t msgs_received_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t crc_drops_ = 0;

  // Registry instruments ("nic.nN.*").  Busy gauges update on every DMA
  // program; the distribution samples (Rx pipe queueing delay, SRAM
  // occupancy at transmit) are gated on MetricsRegistry::sampling().
  telemetry::Gauge* m_tx_busy_ps_ = nullptr;
  telemetry::Gauge* m_rx_busy_ps_ = nullptr;
  telemetry::Histogram* m_rx_queue_ps_ = nullptr;
  telemetry::Histogram* m_sram_used_ = nullptr;
};

}  // namespace xt::ss
