#pragma once

// SweepRunner: fan independent simulation points out across worker threads.
//
// The evaluation suite is a large family of *independent* simulations
// (four NetPIPE series per figure, six-plus ablation sweeps).  Each point
// builds its own Machine/Engine, and since the stack holds no process-
// global mutable state, points can run concurrently.  SweepRunner is the
// one thread pool every bench shares: give it N self-contained tasks, get
// N results back **in input order**, regardless of which worker finished
// first — which is what makes `--jobs 1` and `--jobs 8` output
// byte-identical.
//
// Tasks must be self-contained: build their own scenario, touch no state
// shared with other tasks.  An exception thrown by a task is captured and
// rethrown (the earliest by input order) after all workers drain.

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace xt::harness {

/// Worker count for `jobs <= 0`: the hardware concurrency, at least 1.
inline int default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

class SweepRunner {
 public:
  /// `jobs <= 0` selects default_jobs().
  explicit SweepRunner(int jobs = 0)
      : jobs_(jobs <= 0 ? default_jobs() : jobs) {}

  int jobs() const { return jobs_; }

  /// Runs every task and returns their results in input order.
  template <typename R>
  std::vector<R> run(std::vector<std::function<R()>> tasks) const {
    std::vector<std::optional<R>> slots(tasks.size());
    std::vector<std::exception_ptr> errors(tasks.size());

    const std::size_t workers =
        std::min<std::size_t>(static_cast<std::size_t>(jobs_), tasks.size());
    if (workers <= 1) {
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        slots[i].emplace(tasks[i]());
      }
    } else {
      std::atomic<std::size_t> next{0};
      auto worker = [&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= tasks.size()) return;
          try {
            slots[i].emplace(tasks[i]());
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      };
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
      for (std::thread& t : pool) t.join();
      for (const std::exception_ptr& e : errors) {
        if (e) std::rethrow_exception(e);
      }
    }

    std::vector<R> out;
    out.reserve(tasks.size());
    for (std::optional<R>& s : slots) out.push_back(std::move(*s));
    return out;
  }

 private:
  int jobs_;
};

}  // namespace xt::harness
