#include "harness/netpipe_bench.hpp"

#include <cstdio>
#include <functional>
#include <utility>

#include "harness/sweep.hpp"
#include "netpipe/live.hpp"
#include "sim/strf.hpp"

namespace xt::harness {

namespace {

const char* pattern_name(np::Pattern p) {
  switch (p) {
    case np::Pattern::kPingPong: return "ping-pong";
    case np::Pattern::kStream: return "streaming";
    case np::Pattern::kBidir: return "bi-directional";
  }
  return "?";
}

/// Applies the bench-level rendezvous knobs to an MPI flavor.
mpi::Flavor flavor_for(mpi::Flavor f, const np::Options& o) {
  if (o.rndv == "push") f.rndv_proto = mpi::Flavor::RndvProto::kPush;
  if (o.rndv == "get") f.rndv_proto = mpi::Flavor::RndvProto::kGet;
  f.rndv_threshold = o.rndv_threshold;
  return f;
}

std::unique_ptr<np::Module> make_module(np::Transport t, const np::Options& o,
                                        host::Process& a, host::Process& b) {
  switch (t) {
    case np::Transport::kPut:
    case np::Transport::kPutAccel:
      return np::make_portals_module(a, b, /*use_get=*/false);
    case np::Transport::kGet:
    case np::Transport::kGetAccel:
      return np::make_portals_module(a, b, /*use_get=*/true);
    case np::Transport::kMpich1:
      return np::make_mpi_module(a, b, flavor_for(mpi::Flavor::mpich1(), o));
    case np::Transport::kMpich2:
      return np::make_mpi_module(a, b, flavor_for(mpi::Flavor::mpich2(), o));
  }
  return nullptr;
}

}  // namespace

Scenario netpipe_scenario(np::Transport t, const np::Options& o,
                          const ss::Config& cfg) {
  const bool accel =
      t == np::Transport::kPutAccel || t == np::Transport::kGetAccel;
  // Headroom for the transfer buffers plus the MPI module's unexpected
  // slabs and per-operation scratch.
  const std::size_t mem = 2 * o.max_bytes + (32u << 20);
  Scenario sc = Scenario::pair(
      accel ? host::ProcMode::kAccel : host::ProcMode::kUser, 10, mem);
  sc.config = cfg;
  return sc;
}

std::vector<np::Sample> measure(np::Transport t, np::Pattern pattern,
                                const np::Options& o,
                                const ss::Config& cfg) {
  auto inst = netpipe_scenario(t, o, cfg).build();
  auto mod = make_module(t, o, inst->proc(0), inst->proc(1));
  return np::run_sweep(inst->machine(), *mod, pattern, o);
}

std::vector<SeriesResult> measure_series(
    const std::vector<np::Transport>& transports, np::Pattern pattern,
    const np::Options& o, const ss::Config& cfg, int jobs,
    Scenario::TelemetrySpec tel) {
  std::vector<std::function<SeriesResult()>> tasks;
  tasks.reserve(transports.size());
  for (std::size_t i = 0; i < transports.size(); ++i) {
    const np::Transport t = transports[i];
    // Each point gets its own derived seed so the stochastic streams of
    // concurrently running scenarios stay independent (and identical to a
    // serial run).
    ss::Config c = cfg;
    c.net.seed = cfg.net.seed + i;
    tasks.push_back([t, pattern, o, c, tel] {
      auto inst = netpipe_scenario(t, o, c).with_telemetry(tel).build();
      auto mod = make_module(t, o, inst->proc(0), inst->proc(1));
      SeriesResult r;
      r.name = np::transport_name(t);
      r.pattern = pattern;
      r.samples = np::run_sweep(inst->machine(), *mod, pattern, o);
      r.failure = inst->machine().first_panic();
      if (tel.sampling) r.metrics_json = inst->metrics_json();
      if (tel.trace && inst->trace() != nullptr) {
        r.trace_records = inst->trace()->records();
      }
      if (tel.provenance && inst->provenance() != nullptr) {
        r.provenance = std::move(*inst->provenance());
      }
      if (tel.profile && inst->profiler() != nullptr) {
        r.profile = *inst->profiler();
      }
      return r;
    });
  }
  return SweepRunner(jobs).run(std::move(tasks));
}

std::string metrics_json(const std::string& bench,
                         const std::vector<SeriesResult>& series) {
  std::string out =
      sim::strf("{\n  \"bench\": \"%s\",\n  \"transport\": \"sim\",\n"
                "  \"series\": [\n",
                bench.c_str());
  for (std::size_t s = 0; s < series.size(); ++s) {
    const SeriesResult& r = series[s];
    out += sim::strf("    {\"name\": \"%s\", \"metrics\": %s}%s\n",
                     r.name.c_str(),
                     r.metrics_json.empty() ? "{}" : r.metrics_json.c_str(),
                     s + 1 < series.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

std::string merged_trace_json(const std::vector<SeriesResult>& series) {
  sim::Trace merged;
  for (const SeriesResult& r : series) {
    for (const sim::Trace::Record& rec : r.trace_records) {
      const std::string track = r.name + "/" + rec.track;
      switch (rec.phase) {
        case sim::Trace::Phase::kBegin:
          merged.begin(track, rec.name, rec.t);
          break;
        case sim::Trace::Phase::kEnd:
          merged.end(track, rec.name, rec.t);
          break;
        case sim::Trace::Phase::kInstant:
          merged.instant(track, rec.name, rec.t, rec.arg);
          break;
        case sim::Trace::Phase::kCounter:
          merged.counter(track, rec.name, rec.t, rec.arg);
          break;
      }
    }
  }
  return merged.to_chrome_json();
}

std::string export_trace_json(const std::vector<SeriesResult>& series) {
  std::vector<telemetry::TraceSeries> ts;
  ts.reserve(series.size());
  for (const SeriesResult& r : series) {
    ts.push_back(telemetry::TraceSeries{r.name, &r.trace_records,
                                        &r.provenance});
  }
  return telemetry::export_chrome_trace(ts);
}

telemetry::Profiler merged_profile(const std::vector<SeriesResult>& series) {
  telemetry::Profiler merged;
  for (const SeriesResult& r : series) merged.merge(r.profile);
  return merged;
}

std::string series_json(const std::string& figure, int jobs,
                        const std::vector<SeriesResult>& series,
                        const std::string& transport) {
  std::string out =
      sim::strf("{\n  \"figure\": \"%s\",\n  \"jobs\": %d,\n"
                "  \"transport\": \"%s\",\n"
                "  \"series\": [\n",
                figure.c_str(), jobs, transport.c_str());
  for (std::size_t s = 0; s < series.size(); ++s) {
    const SeriesResult& r = series[s];
    out += sim::strf("    {\"name\": \"%s\", \"pattern\": \"%s\", "
                     "\"samples\": [\n",
                     r.name.c_str(), pattern_name(r.pattern));
    for (std::size_t i = 0; i < r.samples.size(); ++i) {
      const np::Sample& x = r.samples[i];
      out += sim::strf(
          "      {\"bytes\": %zu, \"usec_per_transfer\": %.3f, "
          "\"mbytes_per_sec\": %.2f}%s\n",
          x.bytes, x.usec_per_transfer, x.mbytes_per_sec,
          i + 1 < r.samples.size() ? "," : "");
    }
    out += sim::strf("    ]}%s\n", s + 1 < series.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

bool write_series_json(const std::string& path, const std::string& figure,
                       int jobs, const std::vector<SeriesResult>& series,
                       const std::string& transport) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = series_json(figure, jobs, series, transport);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

namespace {

/// --transport udp: the same NetPIPE ladder over the live loopback
/// backend.  One series (the put path; gets/MPI layering is identical in
/// live mode), two real rank threads, wall-clock timing.
int run_figure_live(const FigureSpec& spec, const BenchOptions& o) {
  if (spec.pattern != np::Pattern::kPingPong) {
    std::fprintf(stderr,
                 "%s only runs live as ping-pong; --transport udp is not "
                 "supported for this figure\n",
                 spec.figure);
    return 2;
  }
  std::printf("=== %s: %s [udp loopback, wall-clock] ===\n", spec.figure,
              spec.title);
  std::printf("(series x sizes, NetPIPE-style ladder to %zu bytes)\n\n",
              o.np.max_bytes);

  host::LiveOptions lopts;
  lopts.ranks = 2;
  lopts.udp.drop_seed = o.seed;
  const np::LiveRunResult live = np::run_live_pingpong_sweep(lopts, o.np);

  SeriesResult r;
  r.name = "put/udp-live";
  r.pattern = spec.pattern;
  r.samples = live.samples;
  if (!live.ok()) {
    r.failure = "live run failed";
    for (const auto& rank : live.ranks) {
      if (!rank.ok()) r.failure += ": " + rank.panic + rank.error;
    }
    if (!live.data_ok) r.failure += ": data verification failed";
  }
  std::fputs(np::format_table(r.name.c_str(), r.pattern, r.samples).c_str(),
             stdout);
  std::fputs("\n", stdout);
  if (!r.failure.empty()) {
    std::fprintf(stderr, "error: %s\n", r.failure.c_str());
    return 1;
  }
  if (!o.json_path.empty() &&
      !write_series_json(o.json_path, spec.figure, 1, {r}, "udp")) {
    std::fprintf(stderr, "warning: could not write %s\n",
                 o.json_path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int run_figure(const FigureSpec& spec, int argc, char** argv) {
  const BenchOptions o =
      BenchOptions::parse(argc, argv, spec.max_bytes_default);
  if (o.transport == "udp") return run_figure_live(spec, o);
  std::printf("=== %s: %s ===\n", spec.figure, spec.title);
  std::printf("(series x sizes, NetPIPE-style ladder to %zu bytes)\n\n",
              o.np.max_bytes);

  const std::vector<np::Transport> transports = {
      np::Transport::kPut, np::Transport::kGet, np::Transport::kMpich1,
      np::Transport::kMpich2};
  ss::Config cfg;
  cfg.net.seed = o.seed;
  Scenario::TelemetrySpec tel;
  tel.sampling = !o.metrics_path.empty();
  tel.trace = !o.trace_path.empty() || !o.trace_json_path.empty();
  tel.provenance = !o.trace_json_path.empty();
  tel.profile = o.profile;
  const auto series =
      measure_series(transports, spec.pattern, o.np, cfg, o.jobs, tel);

  for (const SeriesResult& r : series) {
    std::fputs(
        np::format_table(r.name.c_str(), r.pattern, r.samples).c_str(),
        stdout);
    std::fputs("\n", stdout);
  }
  if (o.profile) {
    std::fputs(merged_profile(series).report().c_str(), stdout);
    std::fputs("\n", stdout);
  }
  int rc = 0;
  if (!o.json_path.empty() &&
      !write_series_json(o.json_path, spec.figure, o.jobs, series)) {
    std::fprintf(stderr, "warning: could not write %s\n",
                 o.json_path.c_str());
    rc = 1;
  }
  if (!o.metrics_path.empty() &&
      !write_text_file(o.metrics_path, metrics_json(spec.figure, series))) {
    rc = 1;
  }
  if (!o.trace_path.empty() &&
      !write_text_file(o.trace_path, merged_trace_json(series))) {
    rc = 1;
  }
  if (!o.trace_json_path.empty() &&
      !write_text_file(o.trace_json_path, export_trace_json(series))) {
    rc = 1;
  }
  return rc;
}

}  // namespace xt::harness
