#pragma once

// Scenario: declarative construction of one simulation setup.
//
// Every bench and example used to hand-roll the same dance — pick a torus
// shape, tweak a ss::Config, build a Machine, spawn processes of the right
// mode on the right nodes.  A Scenario captures that as data, so a sweep
// point is just (Scenario, workload), and because the whole xt::sim stack
// is re-entrant, any number of Instances built from Scenarios can run
// concurrently on different threads.
//
//   auto inst = harness::Scenario::pair().with_max_bytes(1 << 20).build();
//   inst->machine().run();

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fault/plan.hpp"
#include "host/node.hpp"
#include "sim/trace.hpp"
#include "telemetry/provenance.hpp"

namespace xt::fault {
class Injector;
class InvariantChecker;
}  // namespace xt::fault

namespace xt::harness {

class Instance;

/// Smallest near-cubic power-of-two torus holding at least `n` nodes —
/// the shape every rank-count sweep (collectives, workloads) runs on, so
/// curves over n stay comparable.
net::Shape shape_for_ranks(int n);

struct Scenario {
  struct ProcSpec {
    net::NodeId node = 0;
    ptl::Pid pid = 10;
    std::size_t mem_bytes = 64u << 20;
    host::ProcMode mode = host::ProcMode::kUser;
  };

  /// What the built Instance collects beyond the always-on counters.
  /// Everything here defaults to off so sweeps pay nothing they did not
  /// ask for.
  struct TelemetrySpec {
    bool sampling = false;    ///< registry distribution samples (histograms)
    bool provenance = false;  ///< per-message stage stamps (waterfalls)
    bool trace = false;       ///< Chrome trace-event collection
    bool profile = false;     ///< simulator self-profile (host wall clock
                              ///< per handler category)
  };

  /// Fault injection for the built Instance.  Off by default; with_faults()
  /// turns it on, installing an Injector (and, unless asked not to, an
  /// InvariantChecker) on the engine before any process spawns.
  struct FaultSpec {
    bool enabled = false;
    bool invariants = true;  ///< arm the stack-wide InvariantChecker too
    fault::FaultPlan plan{};
  };

  net::Shape shape = net::Shape::xt3(2, 1, 1);
  ss::Config config{};
  /// Per-node OS choice; null means all-Catamount (the Red Storm compute
  /// partition).
  std::function<host::OsType(net::NodeId)> os_of;
  std::vector<ProcSpec> procs;
  TelemetrySpec telemetry{};
  FaultSpec faults{};

  // ------------------------------------------------- fluent builders ----

  Scenario& with_shape(net::Shape s) {
    shape = s;
    return *this;
  }
  Scenario& with_config(const ss::Config& c) {
    config = c;
    return *this;
  }
  Scenario& with_os(host::OsType os) {
    os_of = [os](net::NodeId) { return os; };
    return *this;
  }
  /// Seeds every stochastic stream of the scenario (fault injection etc.);
  /// sweep points get distinct seeds so their streams are independent.
  Scenario& with_seed(std::uint64_t seed) {
    config.net.seed = seed;
    return *this;
  }
  Scenario& with_telemetry(TelemetrySpec t) {
    telemetry = t;
    return *this;
  }
  /// Arms the fault layer: the Instance installs an Injector driven by
  /// `plan` and (when `invariants`) an InvariantChecker on the engine, wires
  /// per-node SRAM ledger observers, and schedules the plan's timed faults
  /// (firmware stalls, rank mortality).  Note that merely installing the
  /// injector changes timing semantics slightly — initiator ops arm ack
  /// timeouts — so fault-free comparisons should build without this call.
  Scenario& with_faults(const fault::FaultPlan& plan, bool invariants = true) {
    faults.enabled = true;
    faults.invariants = invariants;
    faults.plan = plan;
    return *this;
  }
  Scenario& add_proc(net::NodeId node, ptl::Pid pid = 10,
                     std::size_t mem_bytes = 64u << 20,
                     host::ProcMode mode = host::ProcMode::kUser) {
    procs.push_back(ProcSpec{node, pid, mem_bytes, mode});
    return *this;
  }

  /// Two neighbor nodes on the torus with one process each — the setup of
  /// every NetPIPE-style point-to-point measurement.
  static Scenario pair(host::ProcMode mode = host::ProcMode::kUser,
                       ptl::Pid pid = 10, std::size_t mem_bytes = 64u << 20);

  /// k sender nodes all pointed at one receiver node 0 (incast), one
  /// process per node.
  static Scenario incast(int senders, ptl::Pid pid = 10,
                         std::size_t mem_bytes = 16u << 20);

  /// `ranks` processes (one per node, rank i on node i) on the near-cubic
  /// torus from shape_for_ranks — the setup of every src/workload traffic
  /// pattern.
  static Scenario workload(int ranks,
                           host::ProcMode mode = host::ProcMode::kUser,
                           ptl::Pid pid = 10,
                           std::size_t mem_bytes = 32u << 20);

  /// Instantiates the machine and spawns every process.
  std::unique_ptr<Instance> build() const;
};

/// A live Scenario: owns the Machine, exposes the spawned processes in
/// spec order.  Self-contained — holds no references to the Scenario or to
/// any global — so Instances are safe to run on different threads.
class Instance {
 public:
  explicit Instance(const Scenario& sc);
  ~Instance();
  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  host::Machine& machine() { return machine_; }
  sim::Engine& engine() { return machine_.engine(); }
  host::Process& proc(std::size_t i) { return *procs_.at(i); }
  std::size_t proc_count() const { return procs_.size(); }

  /// Runs the simulation to quiescence; returns events executed.
  std::uint64_t run() { return machine_.run(); }

  /// Telemetry sinks the Scenario asked for (null when off).
  sim::Trace* trace() { return trace_.get(); }
  telemetry::ProvenanceLog* provenance() { return prov_.get(); }
  telemetry::Profiler* profiler() { return profiler_.get(); }
  /// Fault layer the Scenario asked for (null when off).
  fault::Injector* injector() { return injector_.get(); }
  fault::InvariantChecker* invariants() { return checker_.get(); }
  /// Deterministic JSON snapshot of the engine's metrics registry.
  std::string metrics_json();

 private:
  void schedule_timed_faults();

  host::Machine machine_;
  std::vector<host::Process*> procs_;
  std::unique_ptr<sim::Trace> trace_;
  std::unique_ptr<telemetry::ProvenanceLog> prov_;
  std::unique_ptr<telemetry::Profiler> profiler_;
  std::unique_ptr<fault::Injector> injector_;
  std::unique_ptr<fault::InvariantChecker> checker_;
};

}  // namespace xt::harness
