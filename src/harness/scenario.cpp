#include "harness/scenario.hpp"

namespace xt::harness {

net::Shape shape_for_ranks(int n) {
  int e = 0;
  while ((1 << e) < n) ++e;
  const int ex = (e + 2) / 3, ey = (e + 1) / 3, ez = e / 3;
  return net::Shape::xt3(1 << ex, 1 << ey, 1 << ez);
}

Scenario Scenario::pair(host::ProcMode mode, ptl::Pid pid,
                        std::size_t mem_bytes) {
  Scenario sc;
  sc.shape = net::Shape::xt3(2, 1, 1);
  sc.add_proc(0, pid, mem_bytes, mode);
  sc.add_proc(1, pid, mem_bytes, mode);
  return sc;
}

Scenario Scenario::incast(int senders, ptl::Pid pid, std::size_t mem_bytes) {
  Scenario sc;
  sc.shape = net::Shape::xt3(senders + 1, 1, 1);
  for (net::NodeId n = 0; n <= static_cast<net::NodeId>(senders); ++n) {
    sc.add_proc(n, pid, mem_bytes, host::ProcMode::kUser);
  }
  return sc;
}

Scenario Scenario::workload(int ranks, host::ProcMode mode, ptl::Pid pid,
                            std::size_t mem_bytes) {
  Scenario sc;
  sc.shape = shape_for_ranks(ranks);
  for (net::NodeId n = 0; n < static_cast<net::NodeId>(ranks); ++n) {
    sc.add_proc(n, pid, mem_bytes, mode);
  }
  return sc;
}

std::unique_ptr<Instance> Scenario::build() const {
  return std::make_unique<Instance>(*this);
}

Instance::Instance(const Scenario& sc)
    : machine_(sc.shape, sc.config, sc.os_of) {
  // Install the sinks before any process spawns so nothing misses the
  // start of the run.  All sinks are per-Instance, never global, so
  // concurrent Instances keep independent timelines.
  if (sc.telemetry.sampling) engine().metrics().set_sampling(true);
  if (sc.telemetry.trace) {
    trace_ = std::make_unique<sim::Trace>();
    engine().set_trace(trace_.get());
  }
  if (sc.telemetry.provenance) {
    prov_ = std::make_unique<telemetry::ProvenanceLog>();
    engine().set_provenance(prov_.get());
  }
  procs_.reserve(sc.procs.size());
  for (const Scenario::ProcSpec& p : sc.procs) {
    host::Node& node = machine_.node(p.node);
    switch (p.mode) {
      case host::ProcMode::kUser:
        procs_.push_back(&node.spawn_process(p.pid, p.mem_bytes));
        break;
      case host::ProcMode::kKernel:
        procs_.push_back(&node.spawn_kernel_process(p.pid, p.mem_bytes));
        break;
      case host::ProcMode::kAccel:
        procs_.push_back(&node.spawn_accel_process(p.pid, p.mem_bytes));
        break;
    }
  }
}

std::string Instance::metrics_json() {
  return machine_.engine().metrics().to_json();
}

}  // namespace xt::harness
