#include "harness/scenario.hpp"

#include "fault/injector.hpp"
#include "fault/invariants.hpp"
#include "sim/rng.hpp"

namespace xt::harness {

net::Shape shape_for_ranks(int n) {
  int e = 0;
  while ((1 << e) < n) ++e;
  const int ex = (e + 2) / 3, ey = (e + 1) / 3, ez = e / 3;
  return net::Shape::xt3(1 << ex, 1 << ey, 1 << ez);
}

Scenario Scenario::pair(host::ProcMode mode, ptl::Pid pid,
                        std::size_t mem_bytes) {
  Scenario sc;
  sc.shape = net::Shape::xt3(2, 1, 1);
  sc.add_proc(0, pid, mem_bytes, mode);
  sc.add_proc(1, pid, mem_bytes, mode);
  return sc;
}

Scenario Scenario::incast(int senders, ptl::Pid pid, std::size_t mem_bytes) {
  Scenario sc;
  sc.shape = net::Shape::xt3(senders + 1, 1, 1);
  for (net::NodeId n = 0; n <= static_cast<net::NodeId>(senders); ++n) {
    sc.add_proc(n, pid, mem_bytes, host::ProcMode::kUser);
  }
  return sc;
}

Scenario Scenario::workload(int ranks, host::ProcMode mode, ptl::Pid pid,
                            std::size_t mem_bytes) {
  Scenario sc;
  sc.shape = shape_for_ranks(ranks);
  for (net::NodeId n = 0; n < static_cast<net::NodeId>(ranks); ++n) {
    sc.add_proc(n, pid, mem_bytes, mode);
  }
  return sc;
}

std::unique_ptr<Instance> Scenario::build() const {
  return std::make_unique<Instance>(*this);
}

Instance::Instance(const Scenario& sc)
    : machine_(sc.shape, sc.config, sc.os_of) {
  // Install the sinks before any process spawns so nothing misses the
  // start of the run.  All sinks are per-Instance, never global, so
  // concurrent Instances keep independent timelines.
  if (sc.telemetry.sampling) engine().metrics().set_sampling(true);
  if (sc.telemetry.trace) {
    trace_ = std::make_unique<sim::Trace>();
    engine().set_trace(trace_.get());
  }
  if (sc.telemetry.provenance) {
    prov_ = std::make_unique<telemetry::ProvenanceLog>();
    engine().set_provenance(prov_.get());
  }
  if (sc.telemetry.profile) {
    profiler_ = std::make_unique<telemetry::Profiler>();
    engine().set_profiler(profiler_.get());
  }
  if (sc.faults.enabled) {
    injector_ = std::make_unique<fault::Injector>(engine(), sc.faults.plan);
    engine().set_fault_injector(injector_.get());
    if (sc.faults.invariants) {
      checker_ = std::make_unique<fault::InvariantChecker>();
      checker_->set_flight_recorder(&engine().flight_recorder());
      engine().set_invariants(checker_.get());
      for (std::size_t n = 0; n < machine_.node_count(); ++n) {
        ss::Sram& sram = machine_.node(static_cast<net::NodeId>(n)).nic().sram();
        // Baseline first: the boot-time reservations are already live, and
        // the ledger must balance against them, not against zero.
        const auto nid = static_cast<std::uint32_t>(n);
        checker_->sram_baseline(nid, sram.used());
        fault::InvariantChecker* chk = checker_.get();
        const std::uint64_t cap = sram.capacity();
        sram.set_observer([chk, nid, cap](std::size_t used,
                                          std::int64_t delta) {
          chk->on_sram(nid, used, cap, delta);
        });
      }
    }
    schedule_timed_faults();
  }
  procs_.reserve(sc.procs.size());
  for (const Scenario::ProcSpec& p : sc.procs) {
    host::Node& node = machine_.node(p.node);
    switch (p.mode) {
      case host::ProcMode::kUser:
        procs_.push_back(&node.spawn_process(p.pid, p.mem_bytes));
        break;
      case host::ProcMode::kKernel:
        procs_.push_back(&node.spawn_kernel_process(p.pid, p.mem_bytes));
        break;
      case host::ProcMode::kAccel:
        procs_.push_back(&node.spawn_accel_process(p.pid, p.mem_bytes));
        break;
    }
  }
}

Instance::~Instance() {
  // Members destruct in reverse declaration order, so checker_/injector_
  // would die before machine_ — but every node's SRAM observer still
  // points at the checker and fires as boot regions release during
  // machine teardown.  Detach the fault layer first.
  if (checker_) {
    for (std::size_t n = 0; n < machine_.node_count(); ++n) {
      machine_.node(static_cast<net::NodeId>(n)).nic().sram().set_observer(
          nullptr);
    }
  }
  engine().set_invariants(nullptr);
  engine().set_fault_injector(nullptr);
  engine().set_profiler(nullptr);
}

/// Timed (non-rate) faults are scheduled up front from their own RNG
/// stream: `stall_count` firmware stalls at seed-derived instants within
/// the plan's horizon, and — when the plan names a victim — rank mortality
/// with an optional restart.  Everything is derived from plan.seed, so a
/// replay schedules the identical timeline.
void Instance::schedule_timed_faults() {
  const fault::FaultPlan& plan = injector_->plan();
  sim::Engine& eng = engine();
  if ((plan.kinds & fault::kFwStall) != 0 && plan.stall_count > 0 &&
      plan.horizon_ns > 0) {
    sim::Rng rng(plan.seed ^ 0xfa175'7a11ull);
    for (int i = 0; i < plan.stall_count; ++i) {
      const auto node =
          static_cast<net::NodeId>(rng.below(machine_.node_count()));
      const auto at =
          sim::Time::ns(static_cast<std::int64_t>(rng.below(plan.horizon_ns)));
      const auto busy =
          sim::Time::ns(static_cast<std::int64_t>(plan.stall_ns));
      eng.schedule_after(at, [this, node, busy] {
        machine_.node(node).firmware().inject_stall(busy);
        injector_->count_stall();
      });
    }
  }
  if ((plan.kinds & fault::kNodeDeath) != 0 && plan.death_node >= 0) {
    const auto victim = static_cast<net::NodeId>(
        static_cast<std::size_t>(plan.death_node) % machine_.node_count());
    eng.schedule_after(
        sim::Time::ns(static_cast<std::int64_t>(plan.death_at_ns)),
        [this, victim] {
          machine_.node(victim).firmware().fault_kill();
          injector_->count_kill();
          if (checker_) checker_->node_died(victim);
        });
    if (plan.revive_after_ns > 0) {
      eng.schedule_after(sim::Time::ns(static_cast<std::int64_t>(
                             plan.death_at_ns + plan.revive_after_ns)),
                         [this, victim] {
                           machine_.node(victim).firmware().fault_revive();
                           injector_->count_revive();
                         });
    }
  }
}

std::string Instance::metrics_json() {
  return machine_.engine().metrics().to_json();
}

}  // namespace xt::harness
