#pragma once

// NetPIPE measurement points on top of the Scenario/SweepRunner layer.
//
// measure() builds a fresh two-node scenario for one (transport, pattern,
// options, config) point and runs the NetPIPE sweep on it — every call is
// fully self-contained, so points can be fanned out across threads.
// run_figure() is the shared main() body of the fig4..fig7 binaries: it
// parses the common CLI, measures the paper's four series concurrently,
// and prints them in fixed order (byte-identical for any --jobs value).

#include <string>
#include <vector>

#include "harness/options.hpp"
#include "harness/scenario.hpp"
#include "netpipe/netpipe.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace_export.hpp"

namespace xt::harness {

/// The two-node neighbor scenario used by every NetPIPE measurement
/// (accelerated-mode processes for the *Accel transports).
Scenario netpipe_scenario(np::Transport t, const np::Options& o,
                          const ss::Config& cfg = {});

/// Builds a fresh two-node machine and measures one transport under one
/// pattern.  (Replaces the old np::measure.)
std::vector<np::Sample> measure(np::Transport t, np::Pattern pattern,
                                const np::Options& o,
                                const ss::Config& cfg = {});

/// One measured series, ready for table or JSON rendering.  The telemetry
/// fields stay empty unless the corresponding TelemetrySpec bit was set
/// when the series was measured.
struct SeriesResult {
  std::string name;
  np::Pattern pattern;
  std::vector<np::Sample> samples;
  /// Metrics-registry snapshot of this series' scenario (JSON object).
  std::string metrics_json;
  /// Raw trace records of this series' scenario.
  std::vector<sim::Trace::Record> trace_records;
  /// Per-message provenance waterfalls (empty unless tel.provenance) —
  /// the message-lifeline source for --trace-json.
  telemetry::ProvenanceLog provenance;
  /// Simulator self-profile of this series' engine (all-zero unless
  /// tel.profile).
  telemetry::Profiler profile;
  /// Empty on a clean run; otherwise the per-run failure reason (e.g. a
  /// node firmware panic), so callers can report instead of asserting.
  std::string failure;
};

/// Measures the given transports under one pattern, fanning the points out
/// over `jobs` workers; results come back in input order.  `tel` picks
/// which telemetry each point collects (collected inside the worker, so
/// results are input-order deterministic for any `jobs`).
std::vector<SeriesResult> measure_series(
    const std::vector<np::Transport>& transports, np::Pattern pattern,
    const np::Options& o, const ss::Config& cfg, int jobs,
    Scenario::TelemetrySpec tel = {});

/// Renders the merged metrics dump of a figure: one entry per series, each
/// holding that scenario's registry snapshot.  Byte-identical for any
/// --jobs value.
std::string metrics_json(const std::string& bench,
                         const std::vector<SeriesResult>& series);

/// Merges every series' trace records into one Chrome trace; tracks are
/// prefixed "series-name/track" so timelines stay distinguishable.
std::string merged_trace_json(const std::vector<SeriesResult>& series);

/// Renders the --trace-json timeline (telemetry::export_chrome_trace) of
/// a measured figure: per-node×layer tracks plus one async lifeline per
/// provenance-stamped message.  Byte-identical for any --jobs value.
std::string export_trace_json(const std::vector<SeriesResult>& series);

/// Sums every series' self-profile (commutative, so input order — and
/// therefore --jobs — cannot change the counts).
telemetry::Profiler merged_profile(const std::vector<SeriesResult>& series);

/// Renders/writes the JSON dump of a measured figure.  The header records
/// the active transport backend ("sim" unless the bench ran --transport
/// udp) so downstream tooling can tell simulated curves from live ones.
std::string series_json(const std::string& figure, int jobs,
                        const std::vector<SeriesResult>& series,
                        const std::string& transport = "sim");
bool write_series_json(const std::string& path, const std::string& figure,
                       int jobs, const std::vector<SeriesResult>& series,
                       const std::string& transport = "sim");

/// Shared driver for the figure-reproduction benches (Figures 4-7).
struct FigureSpec {
  const char* figure;  // e.g. "Figure 4"
  const char* title;   // e.g. "one-way latency vs message size"
  np::Pattern pattern;
  std::size_t max_bytes_default;
};

/// Parses the common CLI and reproduces the figure's four series
/// (put, get, mpich-1.2.6, mpich2).  Returns a process exit code.
/// With --transport udp the same ladder runs once over the live UDP
/// loopback backend instead (ping-pong figures only): two real rank
/// threads, wall-clock timing, one "put/udp-live" series.
int run_figure(const FigureSpec& spec, int argc, char** argv);

}  // namespace xt::harness
