#include "harness/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace xt::harness {

namespace {

[[noreturn]] void usage(const char* prog, int rc) {
  std::fprintf(
      stderr,
      "usage: %s [--max BYTES] [--quick] [--jobs N] [--json FILE] "
      "[--metrics FILE] [--trace FILE] [--seed N]\n"
      "  --max BYTES     largest message size on the NetPIPE ladder\n"
      "  --quick         reduced iteration counts (smoke run)\n"
      "  --jobs N        sweep worker threads (default: hardware cores;\n"
      "                  output is identical for every N)\n"
      "  --json FILE     also dump the measured series as JSON\n"
      "  --metrics FILE  dump the metrics-registry snapshots as JSON\n"
      "  --metrics-out FILE  alias for --metrics (path checked writable)\n"
      "  --trace FILE    dump a merged Chrome trace (chrome://tracing)\n"
      "  --trace-json FILE   dump a Trace Event Format timeline (per-node\n"
      "                  tracks, async message lifelines, link counters)\n"
      "  --profile       print the simulator self-profile (events/sec by\n"
      "                  handler category) after the results\n"
      "  --seed N        base RNG seed for the scenarios\n"
      "  --pattern NAME  workload benches: only this traffic pattern\n"
      "  --offered-load X  workload benches: single offered load (msgs/s)\n"
      "  --outstanding N workload benches: closed-loop requests in flight\n"
      "  --ranks N       workload benches: participating ranks\n"
      "  --transport T   backend under the NAL: sim (default) or udp\n"
      "                  (real rank threads over UDP loopback, wall-clock)\n"
      "  --rndv P        MPI rendezvous protocol: get (default) or push\n"
      "  --rndv-threshold N  MPI eager/rendezvous cutoff in bytes\n"
      "  --smoke         minimal ladder (golden-output regression runs)\n"
      "  --faults SPEC   fault plan, e.g. kinds=drop+silent,rate=0.01\n"
      "  --fault-seed N  fault plan seed\n"
      "  --fault-rate X  per-message fault probability\n"
      "  --fault-kinds K fault kinds: drop+silent+corrupt+... or 'all'\n"
      "  --jobs-spec S   multi-tenant benches: pattern:ranks pairs,\n"
      "                  e.g. incast:8,halo3d:8,rpc:8\n"
      "  --placement P   multi-tenant benches: contiguous|scattered|random\n"
      "  --routing R     path selection: dimension (default) or adaptive\n"
      "  --vcs N         virtual channels per link (1 = strict FIFO)\n",
      prog);
  std::exit(rc);
}

/// Matches `--flag FILE` and `--flag=FILE`; on a hit stores the value and
/// returns true (possibly consuming argv[i+1]).
bool path_flag(const char* flag, int argc, char** argv, int& i,
               std::string* out) {
  const char* arg = argv[i];
  const std::size_t n = std::strlen(flag);
  if (std::strncmp(arg, flag, n) != 0) return false;
  if (arg[n] == '\0' && i + 1 < argc) {
    *out = argv[++i];
    return true;
  }
  if (arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

/// Fails fast (exit 2) when an output path cannot be opened for writing,
/// so a long sweep never discovers a typoed directory at dump time.
/// Opens in append mode: probing must not truncate an existing artifact.
void require_writable(const char* prog, const char* flag,
                      const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "%s: cannot open %s path '%s' for writing\n", prog,
                 flag, path.c_str());
    std::exit(2);
  }
  std::fclose(f);
}

}  // namespace

BenchOptions BenchOptions::parse(int argc, char** argv,
                                 std::size_t max_bytes_default) {
  BenchOptions o;
  o.np.max_bytes = max_bytes_default;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--max") == 0 && i + 1 < argc) {
      o.np.max_bytes = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(arg, "--quick") == 0) {
      o.quick = true;
      o.np.base_iters = 8;
      o.np.min_iters = 2;
    } else if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
      o.jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(arg, "--json") == 0 && i + 1 < argc) {
      o.json_path = argv[++i];
    } else if (path_flag("--metrics-out", argc, argv, i, &o.metrics_path)) {
      require_writable(argv[0], "--metrics-out", o.metrics_path);
    } else if (path_flag("--metrics", argc, argv, i, &o.metrics_path)) {
    } else if (path_flag("--trace-json", argc, argv, i,
                         &o.trace_json_path)) {
      require_writable(argv[0], "--trace-json", o.trace_json_path);
    } else if (path_flag("--trace", argc, argv, i, &o.trace_path)) {
    } else if (std::strcmp(arg, "--profile") == 0) {
      o.profile = true;
    } else if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
      o.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (path_flag("--pattern", argc, argv, i, &o.pattern)) {
    } else if (std::strcmp(arg, "--offered-load") == 0 && i + 1 < argc) {
      o.offered_load = std::atof(argv[++i]);
    } else if (std::strcmp(arg, "--outstanding") == 0 && i + 1 < argc) {
      o.outstanding = std::atoi(argv[++i]);
    } else if (std::strcmp(arg, "--ranks") == 0 && i + 1 < argc) {
      o.ranks = std::atoi(argv[++i]);
    } else if (path_flag("--transport", argc, argv, i, &o.transport)) {
      if (o.transport != "sim" && o.transport != "udp") {
        std::fprintf(stderr, "%s: unknown transport '%s' (sim or udp)\n",
                     argv[0], o.transport.c_str());
        usage(argv[0], 2);
      }
    } else if (path_flag("--rndv", argc, argv, i, &o.np.rndv)) {
      if (o.np.rndv != "get" && o.np.rndv != "push") {
        std::fprintf(stderr, "%s: unknown rendezvous protocol '%s' "
                     "(get or push)\n", argv[0], o.np.rndv.c_str());
        usage(argv[0], 2);
      }
    } else if (std::strcmp(arg, "--rndv-threshold") == 0 && i + 1 < argc) {
      o.np.rndv_threshold = static_cast<std::uint32_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(arg, "--smoke") == 0) {
      o.smoke = true;
      o.quick = true;
      o.np.base_iters = 8;
      o.np.min_iters = 2;
    } else if (std::strcmp(arg, "--faults") == 0 && i + 1 < argc) {
      if (!fault::FaultPlan::parse(argv[++i], &o.faults)) {
        std::fprintf(stderr, "%s: bad --faults spec '%s'\n", argv[0], argv[i]);
        usage(argv[0], 2);
      }
      o.faults_set = true;
    } else if (std::strcmp(arg, "--fault-seed") == 0 && i + 1 < argc) {
      o.faults.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      o.faults_set = true;
    } else if (std::strcmp(arg, "--fault-rate") == 0 && i + 1 < argc) {
      o.faults.rate = std::atof(argv[++i]);
      o.faults_set = true;
    } else if (std::strcmp(arg, "--fault-kinds") == 0 && i + 1 < argc) {
      const std::uint32_t kinds = fault::FaultPlan::parse_kinds(argv[++i]);
      if (kinds > fault::kAllKinds) {
        std::fprintf(stderr, "%s: bad --fault-kinds '%s'\n", argv[0], argv[i]);
        usage(argv[0], 2);
      }
      o.faults.kinds = kinds;
      o.faults_set = true;
    } else if (path_flag("--jobs-spec", argc, argv, i, &o.jobs_spec)) {
    } else if (path_flag("--placement", argc, argv, i, &o.placement)) {
    } else if (path_flag("--routing", argc, argv, i, &o.routing)) {
    } else if (std::strcmp(arg, "--vcs") == 0 && i + 1 < argc) {
      o.vcs = std::atoi(argv[++i]);
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg);
      usage(argv[0], 2);
    }
  }
  return o;
}

const char* git_describe() {
#ifdef XT_GIT_DESCRIBE
  return XT_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: could not open %s\n", path.c_str());
    return false;
  }
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "warning: short write to %s\n", path.c_str());
  return ok;
}

}  // namespace xt::harness
