#pragma once

// The one CLI parser shared by every bench binary (fig*, abl*, tables).
//
// Flags:
//   --max N         largest message size in bytes (NetPIPE ladder top)
//   --quick         cut iteration counts for a fast smoke run
//   --jobs N        worker threads for the sweep (default: all cores)
//   --json FILE     also dump the measured series as JSON
//   --metrics FILE  dump every scenario's metrics registry as JSON
//   --metrics-out FILE  alias for --metrics (validated writable)
//   --trace FILE    dump a merged Chrome trace of every scenario
//   --trace-json FILE   dump a Trace Event Format timeline (per-node×layer
//                   tracks, async message lifelines, link counters);
//                   loadable in chrome://tracing / ui.perfetto.dev
//   --profile       self-profile the simulator: events/sec by handler
//                   category, printed after the results
//   --seed N        base RNG seed for the scenarios
//   --pattern NAME  workload benches: run only this traffic pattern
//   --offered-load X  workload benches: single offered load (msgs/s)
//                     instead of the built-in ladder
//   --outstanding N workload benches: closed-loop requests in flight
//   --ranks N       workload benches: ranks participating
//   --transport T   backend under the NAL: "sim" (default; the DES SeaStar
//                   model) or "udp" (real rank threads over UDP loopback,
//                   wall-clock timing).  Benches that cannot run live
//                   (e.g. fault_sweep's in-fabric injector) refuse "udp".
//   --smoke         minimal ladder for golden-output regression runs
//   --faults SPEC   full fault plan (fault::FaultPlan::parse format) —
//                   the spelling fuzzer reproducer lines use
//   --fault-seed N  shorthand: seed of the fault plan
//   --fault-rate X  shorthand: per-message fault probability
//   --fault-kinds K shorthand: "drop+silent+stall..." (see FaultPlan)
//   --help
//
// --metrics and --trace also accept the --flag=FILE spelling.
//
// Output is deterministic: serial (--jobs 1) and parallel runs print
// byte-identical tables (see harness/sweep.hpp).

#include <cstdint>
#include <string>

#include "fault/plan.hpp"
#include "netpipe/netpipe.hpp"

namespace xt::harness {

struct BenchOptions {
  np::Options np;
  /// Sweep worker threads; 0 means hardware concurrency.
  int jobs = 0;
  /// Non-empty: also write the measured series to this file as JSON.
  std::string json_path;
  /// Non-empty: write the merged metrics-registry snapshot (JSON, one
  /// object per measured series) to this file.  Byte-identical for any
  /// --jobs value.  --metrics-out is an alias; both spellings validate
  /// the path is writable at parse time.
  std::string metrics_path;
  /// Non-empty: write a merged Chrome trace of every scenario to this
  /// file (tracks are prefixed with the series name).
  std::string trace_path;
  /// Non-empty: write a Trace Event Format timeline (telemetry/
  /// trace_export.hpp: per-node×layer tracks, message lifelines as async
  /// spans, link counters) to this file.  Byte-identical for any --jobs
  /// value; the path is validated writable at parse time.
  std::string trace_json_path;
  /// Install a telemetry::Profiler on every scenario engine and print the
  /// merged per-category self-profile after the results table.
  bool profile = false;
  bool quick = false;
  /// Base RNG seed; sweep point i derives its own stream from seed + i.
  std::uint64_t seed = 1;
  /// Workload benches (src/workload consumers).  The harness keeps these
  /// as plain strings/numbers — interpreting the pattern name is the
  /// workload library's job, so the dependency points the right way.
  /// Empty / 0 mean "bench default" (all patterns, built-in ladders).
  std::string pattern;
  double offered_load = 0.0;
  int outstanding = 0;
  int ranks = 0;
  /// Backend under the NAL: "sim" or "udp" (validated at parse time; the
  /// harness keeps the name as a string, same dependency logic as
  /// `pattern` — interpreting it is the transport/bench layer's job).
  std::string transport = "sim";
  /// Golden-output mode: tiny fixed ladder, deterministic, fast.  Benches
  /// that support it print the same schema with fewer points.
  bool smoke = false;
  /// Fault plan assembled from --faults / --fault-seed / --fault-rate /
  /// --fault-kinds; faults_set says whether any of those flags appeared
  /// (an all-defaults plan is also how reproducers disable faults).
  fault::FaultPlan faults{};
  bool faults_set = false;
  /// Multi-tenant benches: job mix, e.g. "incast:8,halo3d:8,rpc:8" —
  /// pattern:ranks pairs, comma-separated.  The harness keeps it as a
  /// string (same dependency logic as `pattern`); empty = bench default.
  std::string jobs_spec;
  /// Multi-tenant benches: placement policy name ("contiguous",
  /// "scattered", "random"); empty = bench default.
  std::string placement;
  /// Network path selection ("dimension" or "adaptive"); empty = bench
  /// default.
  std::string routing;
  /// Virtual channels per link (0 = bench default).
  int vcs = 0;

  /// Parses argv; on --help or an unknown flag prints usage and exits.
  static BenchOptions parse(int argc, char** argv,
                            std::size_t max_bytes_default = 8u << 20);
};

/// The `git describe --always --dirty --tags` string of the tree this
/// binary was built from ("unknown" outside a git checkout) — every bench
/// embeds it in its JSON header so committed artifacts say what produced
/// them.
const char* git_describe();

/// Writes `content` to `path`; warns on stderr and returns false on
/// failure.  Used by benches honoring --json with bespoke schemas.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace xt::harness
