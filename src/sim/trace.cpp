#include "sim/trace.hpp"

#include <cstdio>

#include "sim/strf.hpp"

namespace xt::sim {

namespace {
/// Minimal JSON string escaping (tracks/names are code-controlled, but be
/// safe about quotes and backslashes).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

void trace_begin(Engine& eng, std::string_view track,
                 std::string_view name) {
  if (Trace* tr = eng.trace()) {
    tr->begin(std::string(track), std::string(name), eng.now());
  }
}
void trace_end(Engine& eng, std::string_view track, std::string_view name) {
  if (Trace* tr = eng.trace()) {
    tr->end(std::string(track), std::string(name), eng.now());
  }
}
void trace_instant(Engine& eng, std::string_view track,
                   std::string_view name, std::int64_t arg) {
  if (Trace* tr = eng.trace()) {
    tr->instant(std::string(track), std::string(name), eng.now(), arg);
  }
}
void trace_counter(Engine& eng, std::string_view track,
                   std::string_view name, std::int64_t value) {
  if (Trace* tr = eng.trace()) {
    tr->counter(std::string(track), std::string(name), eng.now(), value);
  }
}

std::string Trace::to_chrome_json() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const Record& r : records_) {
    if (!first) out += ",\n";
    first = false;
    // One "process" per track keeps unrelated components on separate rows.
    if (r.phase == Phase::kCounter) {
      out += strf(
          "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":\"%s\","
          "\"args\":{\"value\":%lld}}",
          escape(r.name).c_str(), r.t.to_us(), escape(r.track).c_str(),
          static_cast<long long>(r.arg));
    } else if (r.phase == Phase::kInstant) {
      out += strf(
          "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,"
          "\"pid\":\"%s\",\"tid\":1,\"args\":{\"arg\":%lld}}",
          escape(r.name).c_str(), r.t.to_us(), escape(r.track).c_str(),
          static_cast<long long>(r.arg));
    } else {
      out += strf(
          "{\"name\":\"%s\",\"ph\":\"%c\",\"ts\":%.3f,\"pid\":\"%s\","
          "\"tid\":1}",
          escape(r.name).c_str(), static_cast<char>(r.phase), r.t.to_us(),
          escape(r.track).c_str());
    }
  }
  out += "\n],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

bool Trace::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

}  // namespace xt::sim
