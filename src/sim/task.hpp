#pragma once

// Coroutine support for simulated processes.
//
// Real Portals applications block in calls like PtlEQWait; inside a
// discrete-event simulation "blocking" must suspend the simulated process
// and hand control back to the scheduler.  xtportals expresses simulated
// processes as C++20 coroutines:
//
//   * CoTask<T>   — a lazy, awaitable coroutine returning T.  Library
//                   routines that may block (PtlEQWait, MPI_Recv, ...) are
//                   written as CoTask and co_await'ed by their callers.
//   * spawn()     — launches a CoTask<void> as a detached top-level
//                   simulated process (e.g. one rank of a benchmark).
//   * delay()     — awaitable that suspends for a simulated duration.
//   * yield()     — awaitable that reschedules at the current time, letting
//                   other same-time events run first.
//
// Lifetime rules: a CoTask owns its coroutine frame and destroys it in its
// destructor.  Detached processes destroy themselves on completion; a
// detached process still parked in a WaitQueue when the simulation ends is
// deliberately leaked (a process alive at power-off), which leak checkers
// will flag — run them with detect_leaks=0 or ignore those reports.
// All resumption goes through the Engine, never inline from notify calls,
// so callbacks cannot re-enter each other.
//
// TOOLCHAIN HAZARD (GCC 12): a lambda with NON-TRIVIALLY-DESTRUCTIBLE
// by-value captures appearing as a temporary inside a co_await expression
// gets its captures double-destroyed (miscompiled frame cleanup).  Capture
// such objects BY REFERENCE to a coroutine-frame local that outlives the
// awaited call instead.  Trivial captures (pointers, ints, handles) are
// unaffected.  See tests under ASAN for enforcement.

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/engine.hpp"

namespace xt::sim {

template <typename T>
class CoTask;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() const noexcept { return {}; }
  FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct Promise final : PromiseBase {
  std::optional<T> value;
  CoTask<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct Promise<void> final : PromiseBase {
  CoTask<void> get_return_object();
  void return_void() const noexcept {}
};

}  // namespace detail

/// A lazy coroutine task.  Does not start until awaited (or spawned).
template <typename T = void>
class [[nodiscard]] CoTask {
 public:
  using promise_type = detail::Promise<T>;

  CoTask(CoTask&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  CoTask& operator=(CoTask&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  CoTask(const CoTask&) = delete;
  CoTask& operator=(const CoTask&) = delete;
  ~CoTask() {
    if (h_) h_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<> cont) noexcept {
    h_.promise().continuation = cont;
    return h_;  // symmetric transfer: start the child task
  }
  T await_resume() {
    auto& p = h_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    if constexpr (!std::is_void_v<T>) {
      assert(p.value.has_value());
      return std::move(*p.value);
    }
  }

 private:
  friend promise_type;
  explicit CoTask(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

namespace detail {

template <typename T>
CoTask<T> Promise<T>::get_return_object() {
  return CoTask<T>{std::coroutine_handle<Promise<T>>::from_promise(*this)};
}
inline CoTask<void> Promise<void>::get_return_object() {
  return CoTask<void>{
      std::coroutine_handle<Promise<void>>::from_promise(*this)};
}

/// Self-destroying driver for detached tasks.
struct Detached {
  struct promise_type {
    Detached get_return_object() const noexcept { return {}; }
    std::suspend_never initial_suspend() const noexcept { return {}; }
    std::suspend_never final_suspend() const noexcept { return {}; }
    void return_void() const noexcept {}
    [[noreturn]] void unhandled_exception() noexcept {
      // A detached simulated process has nowhere to propagate; failing loudly
      // beats silently losing the error.
      std::terminate();
    }
  };
};

inline Detached drive(CoTask<void> t) { co_await std::move(t); }

}  // namespace detail

/// Launches `t` as a detached simulated process.  The task starts running
/// immediately (at the current simulated time) up to its first suspension.
inline void spawn(CoTask<void> t) { detail::drive(std::move(t)); }

/// Awaitable: suspend for a simulated duration.  A zero (or negative)
/// delay completes without suspending.
class Delay {
 public:
  Delay(Engine& eng, Time d) : eng_(eng), d_(d) {}
  bool await_ready() const noexcept { return d_ <= Time{}; }
  void await_suspend(std::coroutine_handle<> h) const {
    eng_.schedule_after(d_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Engine& eng_;
  Time d_;
};

inline Delay delay(Engine& eng, Time d) { return Delay{eng, d}; }

/// Awaitable: reschedule at the current time behind already-queued events.
class Yield {
 public:
  explicit Yield(Engine& eng) : eng_(eng) {}
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    eng_.schedule_after(Time{}, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Engine& eng_;
};

inline Yield yield(Engine& eng) { return Yield{eng}; }

}  // namespace xt::sim
