#include "sim/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/strf.hpp"

namespace xt::sim {

namespace {

LogLevel parse_env() {
  const char* v = std::getenv("XT_LOG");
  if (v == nullptr) return LogLevel::kOff;
  if (std::strcmp(v, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(v, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(v, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(v, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(v, "error") == 0) return LogLevel::kError;
  return LogLevel::kOff;
}

LogLevel g_threshold = parse_env();

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "T";
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() { return g_threshold; }
void set_log_threshold(LogLevel lvl) { g_threshold = lvl; }
bool log_enabled(LogLevel lvl) { return lvl >= g_threshold; }

void log_msg(LogLevel lvl, std::string_view component, Time t,
             std::string_view msg) {
  if (!log_enabled(lvl)) return;
  std::fprintf(stderr, "[%12.3fus] %s %.*s: %.*s\n", t.to_us(),
               level_name(lvl), static_cast<int>(component.size()),
               component.data(), static_cast<int>(msg.size()), msg.data());
}

}  // namespace xt::sim
