#include "sim/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/strf.hpp"

namespace xt::sim {

LogLevel parse_log_level(const char* v) {
  if (v == nullptr) return LogLevel::kOff;
  if (std::strcmp(v, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(v, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(v, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(v, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(v, "error") == 0) return LogLevel::kError;
  return LogLevel::kOff;
}

namespace {

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "T";
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

}  // namespace

LogLevel default_log_threshold() {
  // Parsed once; immutable afterwards, so concurrent Engine construction
  // on multiple threads is race-free.
  static const LogLevel threshold = parse_log_level(std::getenv("XT_LOG"));
  return threshold;
}

void log_msg(const Engine& eng, LogLevel lvl, std::string_view component,
             std::string_view msg) {
  if (!eng.log_enabled(lvl)) return;
  std::fprintf(stderr, "[%12.3fus] %s %.*s: %.*s\n", eng.now().to_us(),
               level_name(lvl), static_cast<int>(component.size()),
               component.data(), static_cast<int>(msg.size()), msg.data());
}

}  // namespace xt::sim
