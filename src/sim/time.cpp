#include "sim/time.hpp"

#include <cmath>

#include "sim/strf.hpp"

namespace xt::sim {

std::string Time::str() const {
  const double aps = std::abs(static_cast<double>(ps_));
  if (aps < 1e3) return strf("%lld ps", static_cast<long long>(ps_));
  if (aps < 1e6) return strf("%.3f ns", to_ns());
  if (aps < 1e9) return strf("%.3f us", to_us());
  if (aps < 1e12) return strf("%.3f ms", to_ms());
  return strf("%.3f s", to_sec());
}

}  // namespace xt::sim
