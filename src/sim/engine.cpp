#include "sim/engine.hpp"

#include <cassert>
#include <utility>

namespace xt::sim {

Engine::EventId Engine::schedule_at(Time t, Callback cb) {
  assert(t >= now_ && "cannot schedule into the past");
  const EventId id = next_id_++;
  heap_.push(Ev{t, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

void Engine::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return;  // already ran or cancelled
  callbacks_.erase(it);
  cancelled_.insert(id);
}

bool Engine::step() {
  while (!heap_.empty()) {
    const Ev ev = heap_.top();
    heap_.pop();
    if (auto c = cancelled_.find(ev.id); c != cancelled_.end()) {
      cancelled_.erase(c);
      continue;
    }
    auto it = callbacks_.find(ev.id);
    assert(it != callbacks_.end());
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    now_ = ev.t;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

std::uint64_t Engine::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

std::uint64_t Engine::run_until(Time t) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && !heap_.empty()) {
    // Peek past cancelled entries without executing.
    const Ev ev = heap_.top();
    if (cancelled_.count(ev.id) != 0) {
      heap_.pop();
      cancelled_.erase(ev.id);
      continue;
    }
    if (ev.t > t) break;
    step();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace xt::sim
