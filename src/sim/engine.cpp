#include "sim/engine.hpp"

#include <cassert>
#include <utility>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"

namespace xt::sim {

Engine::Engine()
    : log_threshold_(default_log_threshold()),
      metrics_(std::make_unique<telemetry::MetricsRegistry>()),
      flight_(std::make_unique<telemetry::FlightRecorder>()) {}

Engine::~Engine() = default;

std::uint32_t Engine::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slab_[slot].next_free;
    return slot;
  }
  assert(slab_.size() < kNilSlot && "event slab exhausted");
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void Engine::release_slot(std::uint32_t slot) {
  Rec& r = slab_[slot];
  r.cb = nullptr;  // drop any closure resources immediately
  ++r.gen;         // invalidate outstanding EventIds for this slot
  r.armed = false;
  r.next_free = free_head_;
  free_head_ = slot;
}

Engine::EventId Engine::schedule_at(Time t, Callback cb) {
  assert(t >= now_ && "cannot schedule into the past");
  const std::uint32_t slot = acquire_slot();
  Rec& r = slab_[slot];
  r.cb = std::move(cb);
  r.armed = true;
  r.cat = cur_cat_;
  r.node = cur_node_;
  heap_.push(HeapEnt{t, next_seq_++, slot});
  ++live_;
  return (static_cast<EventId>(r.gen) << 32) | slot;
}

void Engine::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slab_.size()) return;
  Rec& r = slab_[slot];
  if (r.gen != gen_of(id) || !r.armed) return;  // already ran or cancelled
  r.armed = false;
  r.cb = nullptr;  // free captured resources now; slot recycles at pop
  --live_;
}

bool Engine::step() {
  while (!heap_.empty()) {
    const HeapEnt ev = heap_.top();
    heap_.pop();
    Rec& r = slab_[ev.slot];
    if (!r.armed) {  // cancelled: recycle and keep looking
      release_slot(ev.slot);
      continue;
    }
    Callback cb = std::move(r.cb);
    const telemetry::Cat cat = r.cat;
    const std::int16_t node = r.node;
    release_slot(ev.slot);
    now_ = ev.t;
    --live_;
    ++executed_;
    // The black box sees every dispatch; the tag context resets to the
    // event's own so nested schedules inherit it (engine.hpp).
    flight_->record(ev.t.to_ps(), ev.seq, cat, node);
    cur_cat_ = cat;
    cur_node_ = node;
    if (profiler_ == nullptr) {
      cb();  // may grow the slab; no record references live past here
    } else {
      const std::uint64_t t0 = telemetry::Profiler::now_ns();
      cb();
      profiler_->account(cat, telemetry::Profiler::now_ns() - t0);
    }
    return true;
  }
  return false;
}

std::uint64_t Engine::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

std::uint64_t Engine::run_until(Time t) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && !heap_.empty()) {
    // Peek past cancelled entries without executing.
    const HeapEnt ev = heap_.top();
    if (!slab_[ev.slot].armed) {
      heap_.pop();
      release_slot(ev.slot);
      continue;
    }
    if (ev.t > t) break;
    step();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace xt::sim
