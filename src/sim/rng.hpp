#pragma once

// Deterministic random number generation (xoshiro256++).
//
// The simulator never uses std::random_device or global state: every
// stochastic component (link fault injection, workload generators) owns an
// Rng seeded from the experiment configuration, so a run is reproducible
// from its seed alone.

#include <cassert>
#include <cstdint>

namespace xt::sim {

class Rng {
 public:
  /// Seeds via splitmix64 so that small/sequential seeds still produce
  /// well-distributed state.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& word : s_) word = splitmix64(x);
  }

  /// Uniform 64-bit value.
  std::uint64_t u64() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n).  n must be > 0.  (Lemire's multiply-shift method.)
  std::uint64_t below(std::uint64_t n) {
    assert(n > 0);
    __extension__ using u128 = unsigned __int128;
    const u128 m = static_cast<u128>(u64()) * n;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed interval [lo, hi].
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Forks an independent stream (for per-component RNGs derived from one
  /// experiment seed).
  Rng fork() { return Rng{u64()}; }

 private:
  static std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace xt::sim
