#pragma once

// Streaming statistics (Welford) used by the benchmark harness and by
// component utilization counters.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace xt::sim {

/// Single-pass accumulator for count/min/max/mean/stddev.
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }

  std::uint64_t count() const { return n_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double mean() const { return mean_; }
  double sum() const { return mean_ * static_cast<double>(n_); }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void reset() { *this = Accumulator{}; }

  /// "n=5 mean=1.2 [1.0,1.5] sd=0.2"
  std::string str() const;

 private:
  std::uint64_t n_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace xt::sim
