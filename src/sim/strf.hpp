#pragma once

// printf-style string formatting helper.
//
// libstdc++ 12 does not ship std::format, so the project uses this small
// type-checked wrapper around vsnprintf for log lines and table output.

#include <cstdarg>
#include <cstdio>
#include <string>

namespace xt::sim {

#if defined(__GNUC__)
#define XT_PRINTF_LIKE(fmt_idx, arg_idx) \
  __attribute__((format(printf, fmt_idx, arg_idx)))
#else
#define XT_PRINTF_LIKE(fmt_idx, arg_idx)
#endif

/// Returns the printf-formatted string.
XT_PRINTF_LIKE(1, 2)
inline std::string strf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace xt::sim
