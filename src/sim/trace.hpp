#pragma once

// Event tracing.
//
// Components emit (time, track, name, phase) records into the Trace
// installed on their Engine (Engine::set_trace); the result can be dumped
// as Chrome trace-event JSON (load in chrome://tracing or
// https://ui.perfetto.dev) to see a message's life across host CPUs,
// firmware, DMA engines and links on one timeline.
//
// Tracing is off unless a Trace is installed on the engine, and emit sites
// are guarded by a cheap Engine::trace_enabled() check, so the hot path
// stays clean.  The sink is per-engine — never process-global — so
// concurrent simulations each collect their own timeline.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace xt::sim {

class Trace {
 public:
  /// Trace-event phases (a subset of the Chrome trace format).
  enum class Phase : char {
    kBegin = 'B',    // duration begin (pair with kEnd on the same track)
    kEnd = 'E',      // duration end
    kInstant = 'i',  // point event
    kCounter = 'C',  // counter sample (value in `arg`)
  };

  struct Record {
    Time t;
    Phase phase;
    std::string track;  // e.g. "node1.fw", "node0.cpu", "link.n0.x+"
    std::string name;   // e.g. "rx_header", "interrupt", "put 4096B"
    std::int64_t arg = 0;
  };

  void begin(std::string track, std::string name, Time t) {
    records_.push_back({t, Phase::kBegin, std::move(track), std::move(name),
                        0});
  }
  void end(std::string track, std::string name, Time t) {
    records_.push_back({t, Phase::kEnd, std::move(track), std::move(name),
                        0});
  }
  void instant(std::string track, std::string name, Time t,
               std::int64_t arg = 0) {
    records_.push_back({t, Phase::kInstant, std::move(track),
                        std::move(name), arg});
  }
  void counter(std::string track, std::string name, Time t,
               std::int64_t value) {
    records_.push_back({t, Phase::kCounter, std::move(track),
                        std::move(name), value});
  }

  const std::vector<Record>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  /// Serializes as Chrome trace-event JSON (the "traceEvents" array form).
  /// Tracks become process/thread names; times are microseconds.
  std::string to_chrome_json() const;

  /// Writes to_chrome_json() to a file; returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  std::vector<Record> records_;
};

/// Emit helpers that no-op when `eng` has no trace installed; timestamps
/// are eng.now().  Views, not strings: the owning std::string is built
/// only on the traced path, so untraced hot paths allocate nothing.
void trace_begin(Engine& eng, std::string_view track, std::string_view name);
void trace_end(Engine& eng, std::string_view track, std::string_view name);
void trace_instant(Engine& eng, std::string_view track,
                   std::string_view name, std::int64_t arg = 0);
void trace_counter(Engine& eng, std::string_view track,
                   std::string_view name, std::int64_t value);

}  // namespace xt::sim
