#pragma once

// Simulation time for the xtportals discrete-event simulator.
//
// Time is kept in integer picoseconds.  Picosecond resolution lets us express
// sub-nanosecond per-byte costs exactly (e.g. one byte at 1.1 GB/s is about
// 909 ps) without accumulating rounding error over multi-megabyte transfers,
// while an int64 still covers ~106 days of simulated time.

#include <cassert>
#include <compare>
#include <cstdint>
#include <string>

namespace xt::sim {

/// A point in simulated time, or a duration; integer picoseconds.
///
/// `Time` is deliberately a single type used for both instants and durations
/// (as is conventional in small DES kernels); the arithmetic operators below
/// are the ones that make sense for either reading.
class Time {
 public:
  constexpr Time() = default;

  /// Named constructors from common units.
  static constexpr Time ps(std::int64_t v) { return Time{v}; }
  static constexpr Time ns(std::int64_t v) { return Time{v * 1'000}; }
  static constexpr Time us(std::int64_t v) { return Time{v * 1'000'000}; }
  static constexpr Time ms(std::int64_t v) { return Time{v * 1'000'000'000}; }
  static constexpr Time sec(std::int64_t v) {
    return Time{v * 1'000'000'000'000};
  }

  /// Duration of a `bytes`-long transfer at `bytes_per_sec`, rounded up so a
  /// transfer never completes earlier than the physical rate allows.
  static constexpr Time for_bytes(std::uint64_t bytes,
                                  std::uint64_t bytes_per_sec) {
    assert(bytes_per_sec > 0);
    // ps = bytes * 1e12 / rate, computed in 128-bit to avoid overflow for
    // large transfers.
    __extension__ using u128 = unsigned __int128;
    const u128 num = static_cast<u128>(bytes) * 1'000'000'000'000ull;
    const u128 q = (num + bytes_per_sec - 1) / bytes_per_sec;
    return Time{static_cast<std::int64_t>(q)};
  }

  /// Largest representable time; useful as an "infinite" deadline.
  static constexpr Time max() { return Time{INT64_MAX}; }

  constexpr std::int64_t to_ps() const { return ps_; }
  constexpr double to_ns() const { return static_cast<double>(ps_) * 1e-3; }
  constexpr double to_us() const { return static_cast<double>(ps_) * 1e-6; }
  constexpr double to_ms() const { return static_cast<double>(ps_) * 1e-9; }
  constexpr double to_sec() const { return static_cast<double>(ps_) * 1e-12; }

  friend constexpr auto operator<=>(Time, Time) = default;

  constexpr Time operator+(Time o) const { return Time{ps_ + o.ps_}; }
  constexpr Time operator-(Time o) const { return Time{ps_ - o.ps_}; }
  constexpr Time& operator+=(Time o) {
    ps_ += o.ps_;
    return *this;
  }
  constexpr Time& operator-=(Time o) {
    ps_ -= o.ps_;
    return *this;
  }
  constexpr Time operator*(std::int64_t k) const { return Time{ps_ * k}; }
  constexpr Time operator/(std::int64_t k) const { return Time{ps_ / k}; }
  /// Ratio of two durations.
  constexpr double operator/(Time o) const {
    return static_cast<double>(ps_) / static_cast<double>(o.ps_);
  }

  constexpr bool is_zero() const { return ps_ == 0; }

  /// Human-readable rendering with an auto-selected unit ("5.39 us").
  std::string str() const;

 private:
  constexpr explicit Time(std::int64_t v) : ps_(v) {}
  std::int64_t ps_ = 0;
};

constexpr Time operator*(std::int64_t k, Time t) { return t * k; }

}  // namespace xt::sim
