#pragma once

// WaitQueue: the simulation's condition-variable analogue.
//
// A coroutine parks itself with `co_await wq.wait()`; notify_one/notify_all
// schedule resumption through the engine (never inline), so a notifier
// running inside an event callback cannot be re-entered by the woken
// process.  As with condition variables, waiters must re-check their
// predicate in a loop after waking.

#include <coroutine>
#include <cstddef>
#include <deque>

#include "sim/engine.hpp"

namespace xt::sim {

class WaitQueue {
 public:
  explicit WaitQueue(Engine& eng) : eng_(eng) {}
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  class Waiter {
   public:
    explicit Waiter(WaitQueue& wq) : wq_(wq) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { wq_.q_.push_back(h); }
    void await_resume() const noexcept {}

   private:
    WaitQueue& wq_;
  };

  /// Awaitable that parks the calling coroutine until notified.
  [[nodiscard]] Waiter wait() { return Waiter{*this}; }

  /// Wakes the longest-waiting coroutine (if any) at the current time.
  void notify_one() {
    if (q_.empty()) return;
    auto h = q_.front();
    q_.pop_front();
    eng_.schedule_after(Time{}, [h] { h.resume(); });
  }

  /// Wakes every parked coroutine at the current time.
  void notify_all() {
    while (!q_.empty()) notify_one();
  }

  std::size_t waiters() const { return q_.size(); }
  Engine& engine() const { return eng_; }

 private:
  Engine& eng_;
  std::deque<std::coroutine_handle<>> q_;
};

}  // namespace xt::sim
