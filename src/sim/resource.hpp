#pragma once

// Resource: a serially-reusable server with priority queueing.
//
// Models anything that serializes work in the XT3 node: a DMA engine, a
// network link, the host CPU, the HyperTransport channel.  Acquisition is
// granted immediately when free, otherwise the requester parks in a
// (priority, FIFO) queue.  Priorities are used to model interrupt handlers
// preempting application work at the next scheduling boundary (the
// simulation is non-preemptive within one usage; callers model long
// occupancy as a sequence of short quanta where preemption fidelity
// matters — see host::Cpu).

#include <coroutine>
#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace xt::sim {

class Resource {
 public:
  explicit Resource(Engine& eng, std::string name = {})
      : eng_(eng), name_(std::move(name)) {}
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  class Acquire {
   public:
    Acquire(Resource& r, int prio) : r_(r), prio_(prio) {}
    bool await_ready() const noexcept {
      if (r_.busy_) return false;
      r_.grant_now();
      return true;
    }
    void await_suspend(std::coroutine_handle<> h) {
      r_.waiters_.push(Waiter{prio_, r_.next_seq_++, h});
      r_.max_queue_ = std::max(r_.max_queue_, r_.waiters_.size());
    }
    void await_resume() const noexcept {}

   private:
    Resource& r_;
    int prio_;
  };

  /// Awaitable acquisition.  Higher `priority` wins; ties are FIFO.
  [[nodiscard]] Acquire acquire(int priority = 0) {
    return Acquire{*this, priority};
  }

  /// Releases the resource; hands it to the best waiter, if any.
  void release();

  /// Convenience: acquire, hold for `duration`, release.
  CoTask<void> use(Time duration, int priority = 0) {
    co_await acquire(priority);
    co_await delay(eng_, duration);
    release();
  }

  bool busy() const { return busy_; }
  std::size_t queued() const { return waiters_.size(); }

  /// Accumulated time the resource has been held (utilization numerator).
  Time busy_time() const { return busy_accum_; }
  std::size_t max_queue() const { return max_queue_; }
  const std::string& name() const { return name_; }
  Engine& engine() const { return eng_; }

 private:
  friend class Acquire;

  struct Waiter {
    int prio;
    std::uint64_t seq;
    std::coroutine_handle<> h;
  };
  struct WorseFirst {
    bool operator()(const Waiter& a, const Waiter& b) const {
      if (a.prio != b.prio) return a.prio < b.prio;  // higher prio wins
      return a.seq > b.seq;                          // then FIFO
    }
  };

  void grant_now() {
    busy_ = true;
    held_since_ = eng_.now();
  }

  Engine& eng_;
  std::string name_;
  bool busy_ = false;
  Time held_since_{};
  Time busy_accum_{};
  std::uint64_t next_seq_ = 0;
  std::size_t max_queue_ = 0;
  std::priority_queue<Waiter, std::vector<Waiter>, WorseFirst> waiters_;
};

inline void Resource::release() {
  busy_accum_ += eng_.now() - held_since_;
  if (waiters_.empty()) {
    busy_ = false;
    return;
  }
  const Waiter w = waiters_.top();
  waiters_.pop();
  // Stay busy across the handoff; the new holder's interval starts when the
  // scheduled resume actually runs (same timestamp, later event order).
  eng_.schedule_after(Time{}, [this, h = w.h] {
    held_since_ = eng_.now();
    h.resume();
  });
}

}  // namespace xt::sim
