#include "sim/stats.hpp"

#include "sim/strf.hpp"

namespace xt::sim {

std::string Accumulator::str() const {
  return strf("n=%llu mean=%.4g [%.4g,%.4g] sd=%.4g",
              static_cast<unsigned long long>(n_), mean(), min(), max(),
              stddev());
}

}  // namespace xt::sim
