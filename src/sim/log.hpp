#pragma once

// Minimal leveled logging for simulator internals.
//
// Off by default; set the XT_LOG environment variable to one of
// trace|debug|info|warn|error to enable.  The threshold lives on the
// Engine (per-simulation, never process-global), so two simulations — even
// on two threads — can log at different levels without sharing state.
// Log lines carry the simulated timestamp and a component tag, e.g.:
//
//   [  5.390us] fw.n3: rx header from nid 2, 64 bytes

#include <string>
#include <string_view>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace xt::sim {

/// Parses an XT_LOG-style level string (trace|debug|info|warn|error).
/// Anything else — including nullptr for "unset" — maps to kOff.  Exposed
/// so tests can exercise the parsing without mutating the environment.
LogLevel parse_log_level(const char* v);

/// Writes one log line to stderr if `eng`'s threshold admits `lvl`.  The
/// timestamp is eng.now().  Callers should guard message formatting with
/// eng.log_enabled() on hot paths.
void log_msg(const Engine& eng, LogLevel lvl, std::string_view component,
             std::string_view msg);

}  // namespace xt::sim
