#pragma once

// Minimal leveled logging for simulator internals.
//
// Off by default; set the XT_LOG environment variable to one of
// trace|debug|info|warn|error to enable.  Log lines carry the simulated
// timestamp and a component tag, e.g.:
//
//   [  5.390us] fw.n3: rx header from nid 2, 64 bytes

#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace xt::sim {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global threshold, parsed once from XT_LOG (default kOff).
LogLevel log_threshold();

/// For tests: override the threshold at runtime.
void set_log_threshold(LogLevel lvl);

bool log_enabled(LogLevel lvl);

/// Writes one log line to stderr.  Callers should guard message formatting
/// with log_enabled() on hot paths.
void log_msg(LogLevel lvl, std::string_view component, Time t,
             std::string_view msg);

}  // namespace xt::sim
