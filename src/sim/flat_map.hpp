#pragma once

// FlatU64Map: open-addressing hash map from uint64_t keys to inline slab
// values, built for the simulator's hot per-message bookkeeping tables
// (portals op records, firmware in-flight receive and go-back-n discard
// maps).  std::unordered_map allocates one node per emplace and frees it
// per erase; under steady-state message churn that is two allocator
// round-trips per message per table.  Here the value lives inside the
// slot array, erase just tombstones the slot, and the next insert reuses
// dead capacity in place — zero allocation at steady state.
//
// Design points:
//   * linear probing over a power-of-two table, splitmix64 key finalizer
//     (keys are dense small integers — tokens, sequence numbers — so they
//     need mixing before masking);
//   * tombstones on erase keep probe chains intact; the table rebuilds
//     when live+dead slots pass 7/8 occupancy, shedding tombstones;
//   * deterministic: iteration (for_each/erase_if) runs in slot order,
//     a pure function of the insert/erase history, never of pointers.
//
// The API is pointer-based rather than iterator-based (find returns V*,
// erase takes the key): the call sites are few and owned by this repo,
// and it keeps the structure simple.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace xt::sim {

template <class V>
class FlatU64Map {
 public:
  FlatU64Map() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Insert-or-assign.  Returns the stored value.
  V& put(std::uint64_t key, V value) {
    if (!slots_.empty()) {
      Slot& hit = slots_[probe(key)];
      if (hit.state == Slot::kFull) {
        // Pure assignment: overwrite in place, never trigger a rebuild.
        hit.val = std::move(value);
        return hit.val;
      }
    }
    reserve_one();
    Slot& s = slots_[probe(key)];
    if (s.state == Slot::kTomb) --tombs_;
    s.state = Slot::kFull;
    s.key = key;
    ++size_;
    s.val = std::move(value);
    return s.val;
  }

  V* find(std::uint64_t key) {
    if (size_ == 0) return nullptr;
    const std::size_t i = probe(key);
    Slot& s = slots_[i];
    return s.state == Slot::kFull ? &s.val : nullptr;
  }
  const V* find(std::uint64_t key) const {
    return const_cast<FlatU64Map*>(this)->find(key);
  }

  bool erase(std::uint64_t key) {
    if (size_ == 0) return false;
    const std::size_t i = probe(key);
    Slot& s = slots_[i];
    if (s.state != Slot::kFull) return false;
    s.state = Slot::kTomb;
    s.val = V{};  // drop payload resources now, not at rebuild
    ++tombs_;
    --size_;
    return true;
  }

  void clear() {
    for (Slot& s : slots_) {
      if (s.state == Slot::kFull) s.val = V{};
      s.state = Slot::kEmpty;
    }
    size_ = tombs_ = 0;
  }

  /// Visit every live entry in slot order: f(key, value&).
  template <class F>
  void for_each(F&& f) {
    for (Slot& s : slots_) {
      if (s.state == Slot::kFull) f(s.key, s.val);
    }
  }

  /// Erase every live entry for which p(key, value) holds; returns count.
  template <class P>
  std::size_t erase_if(P&& p) {
    std::size_t n = 0;
    for (Slot& s : slots_) {
      if (s.state == Slot::kFull && p(s.key, s.val)) {
        s.state = Slot::kTomb;
        s.val = V{};
        ++tombs_;
        --size_;
        ++n;
      }
    }
    return n;
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    V val{};
    enum State : std::uint8_t { kEmpty, kFull, kTomb };
    State state = kEmpty;
  };

  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  /// Index of `key`'s slot if present, else of the first free slot on its
  /// probe path (preferring the earliest tombstone for reuse).
  std::size_t probe(std::uint64_t key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
    std::size_t first_tomb = kNpos;
    for (;;) {
      const Slot& s = slots_[i];
      if (s.state == Slot::kFull) {
        if (s.key == key) return i;
      } else if (s.state == Slot::kTomb) {
        if (first_tomb == kNpos) first_tomb = i;
      } else {
        return first_tomb != kNpos ? first_tomb : i;
      }
      i = (i + 1) & mask;
    }
  }

  void reserve_one() {
    if (slots_.empty()) {
      slots_.resize(16);
      return;
    }
    // Rebuild before the table passes 7/8 occupancy (live + tombstones);
    // size to 2x the live count so a churn-heavy table sheds tombstones
    // without growing.
    if ((size_ + tombs_ + 1) * 8 >= slots_.size() * 7) {
      std::size_t cap = 16;
      while (cap < (size_ + 1) * 2) cap <<= 1;
      std::vector<Slot> old;
      old.swap(slots_);
      slots_.resize(cap);
      tombs_ = 0;
      for (Slot& s : old) {
        if (s.state != Slot::kFull) continue;
        Slot& dst = slots_[probe(s.key)];
        dst.state = Slot::kFull;
        dst.key = s.key;
        dst.val = std::move(s.val);
      }
    }
  }

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t tombs_ = 0;
};

}  // namespace xt::sim
