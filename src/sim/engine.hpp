#pragma once

// Discrete-event simulation kernel.
//
// The engine owns a min-heap of (time, sequence) ordered events.  Everything
// in xtportals — DMA completions, firmware handler dispatch, interrupt
// delivery, link serialization — is expressed as callbacks scheduled here.
// Events at equal times run in scheduling order (FIFO), which together with
// the deterministic RNG makes whole simulations bit-reproducible.
//
// Event storage is a slab: each scheduled event occupies one record in a
// contiguous arena, recycled through an intrusive free list.  The heap holds
// (time, seq, slot) triples, so schedule/cancel/pop never touch a hash
// table; cancel is an O(1) generation-checked slot write.  EventIds encode
// (generation << 32 | slot) so a stale id from a recycled slot is rejected.
//
// Engines also carry the simulation's observability context (log threshold,
// trace sink).  Nothing in the kernel is process-global: any number of
// Engines may run concurrently on different threads, which is what lets the
// benchmark harness fan a whole evaluation suite out across cores.

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/profiler.hpp"  // telemetry::Cat (event category tags)

namespace xt::telemetry {
class FlightRecorder;
class MetricsRegistry;
class ProvenanceLog;
}  // namespace xt::telemetry

namespace xt::fault {
class Injector;
class InvariantChecker;
}  // namespace xt::fault

namespace xt::sim {

class Trace;

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// The process-wide default threshold, parsed once from XT_LOG
/// (trace|debug|info|warn|error; default kOff).  Immutable after startup;
/// new Engines start from it.
LogLevel default_log_threshold();

/// The simulation scheduler.  A single Engine is not thread-safe by design:
/// a simulation is a single-threaded event loop (mirroring the
/// single-threaded SeaStar firmware the project models).  Distinct Engines
/// share no state and may run on distinct threads concurrently.
class Engine {
 public:
  using Callback = std::function<void()>;
  /// Token identifying a scheduled event, usable with cancel().
  using EventId = std::uint64_t;

  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `cb` to run at absolute time `t` (must be >= now()).
  EventId schedule_at(Time t, Callback cb);

  /// Schedules `cb` to run `d` after the current time.
  EventId schedule_after(Time d, Callback cb) {
    return schedule_at(now_ + d, std::move(cb));
  }

  /// Cancels a pending event.  Cancelling an already-run (or already
  /// cancelled) event is a no-op.
  void cancel(EventId id);

  /// Runs the next pending event, advancing time to it.
  /// Returns false if the queue was empty.
  bool step();

  /// Runs until no events remain or stop() is called.
  /// Returns the number of events executed.
  std::uint64_t run();

  /// Runs all events with time <= `t`, then advances now() to exactly `t`.
  std::uint64_t run_until(Time t);

  /// Requests that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  bool empty() const { return live_ == 0; }
  std::size_t pending() const { return live_; }

  /// Earliest pending heap entry, or Time::max() when the queue is empty.
  /// The entry may be a cancelled slot, so this is a conservative (never
  /// late) bound — which is all a realtime driver needs to size its sleep.
  Time next_event_time() const {
    return heap_.empty() ? Time::max() : heap_.top().t;
  }

  /// Total events executed since construction (for stats / budget guards).
  std::uint64_t executed() const { return executed_; }

  // ------------------------------------------- observability context ----
  // Per-engine so that two simulations in one process (or on two threads)
  // never share mutable state.

  /// Trace sink for this simulation; null (the default) disables tracing.
  Trace* trace() const { return trace_; }
  void set_trace(Trace* t) { trace_ = t; }
  bool trace_enabled() const { return trace_ != nullptr; }

  LogLevel log_threshold() const { return log_threshold_; }
  void set_log_threshold(LogLevel lvl) { log_threshold_ = lvl; }
  bool log_enabled(LogLevel lvl) const { return lvl >= log_threshold_; }

  /// This simulation's metrics registry (always present; whether the
  /// expensive distribution sampling is on is the registry's business —
  /// see MetricsRegistry::sampling()).
  telemetry::MetricsRegistry& metrics() { return *metrics_; }
  const telemetry::MetricsRegistry& metrics() const { return *metrics_; }

  /// Provenance log for per-stage message attribution; null (the default)
  /// disables stamping, exactly like the trace sink.
  telemetry::ProvenanceLog* provenance() const { return provenance_; }
  void set_provenance(telemetry::ProvenanceLog* p) { provenance_ = p; }
  bool provenance_enabled() const { return provenance_ != nullptr; }

  /// Fault injector for this simulation; null (the default) means no
  /// faults.  Layers hosting an injection point consult it through this
  /// pointer, so the zero-fault fast path costs a null check (the same
  /// contract as the trace and provenance sinks).
  fault::Injector* fault_injector() const { return fault_injector_; }
  void set_fault_injector(fault::Injector* i) { fault_injector_ = i; }

  /// Stack-wide invariant checker; null (the default) disables checking.
  fault::InvariantChecker* invariants() const { return invariants_; }
  void set_invariants(fault::InvariantChecker* c) { invariants_ = c; }

  /// Self-profiler: wall-clock accounting of the dispatch loop by handler
  /// category; null (the default) means the loop pays one branch.
  telemetry::Profiler* profiler() const { return profiler_; }
  void set_profiler(telemetry::Profiler* p) { profiler_ = p; }

  /// Crash flight recorder: the last N dispatched events, always on
  /// (telemetry/flight_recorder.hpp explains why it has no off switch).
  telemetry::FlightRecorder& flight_recorder() { return *flight_; }
  const telemetry::FlightRecorder& flight_recorder() const {
    return *flight_;
  }

  // ------------------------------------------------ category tagging ----
  // Each scheduled event carries the engine's current (category, node)
  // tag; step() re-establishes the dispatched event's own tag before its
  // callback runs, so nested schedules inherit their parent's category
  // unless a layer entry point retags.  Tags feed the self-profiler and
  // the flight recorder; they never affect simulation semantics.

  /// Sets the scheduling category (and, when `node >= 0`, the claiming
  /// node).  Returns the previous category so narrow call sites can
  /// restore it.
  telemetry::Cat tag_category(telemetry::Cat c, int node = -1) {
    const telemetry::Cat prev = cur_cat_;
    cur_cat_ = c;
    if (node >= 0) cur_node_ = static_cast<std::int16_t>(node);
    return prev;
  }
  telemetry::Cat current_category() const { return cur_cat_; }

 private:
  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;

  /// One slab record.  `armed` distinguishes pending from cancelled while
  /// the slot is still referenced by a heap entry; the slot returns to the
  /// free list (generation bumped) only when that entry is popped.
  struct Rec {
    Callback cb;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNilSlot;
    bool armed = false;
    telemetry::Cat cat = telemetry::Cat::kOther;  // schedule-time tag
    std::int16_t node = -1;
  };
  struct HeapEnt {
    Time t;
    std::uint64_t seq;  // FIFO tie-breaker at equal times
    std::uint32_t slot;
  };
  struct HeapLater {
    bool operator()(const HeapEnt& a, const HeapEnt& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  static std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  Time now_{};
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  bool stopped_ = false;
  std::priority_queue<HeapEnt, std::vector<HeapEnt>, HeapLater> heap_;
  std::vector<Rec> slab_;
  std::uint32_t free_head_ = kNilSlot;

  Trace* trace_ = nullptr;
  LogLevel log_threshold_;
  std::unique_ptr<telemetry::MetricsRegistry> metrics_;
  telemetry::ProvenanceLog* provenance_ = nullptr;
  fault::Injector* fault_injector_ = nullptr;
  fault::InvariantChecker* invariants_ = nullptr;
  telemetry::Profiler* profiler_ = nullptr;
  std::unique_ptr<telemetry::FlightRecorder> flight_;
  telemetry::Cat cur_cat_ = telemetry::Cat::kOther;
  std::int16_t cur_node_ = -1;
};

}  // namespace xt::sim
