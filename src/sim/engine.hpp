#pragma once

// Discrete-event simulation kernel.
//
// The engine owns a min-heap of (time, sequence) ordered events.  Everything
// in xtportals — DMA completions, firmware handler dispatch, interrupt
// delivery, link serialization — is expressed as callbacks scheduled here.
// Events at equal times run in scheduling order (FIFO), which together with
// the deterministic RNG makes whole simulations bit-reproducible.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace xt::sim {

/// The simulation scheduler.  Not thread-safe by design: a simulation is a
/// single-threaded event loop (mirroring the single-threaded SeaStar
/// firmware the project models).
class Engine {
 public:
  using Callback = std::function<void()>;
  /// Token identifying a scheduled event, usable with cancel().
  using EventId = std::uint64_t;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `cb` to run at absolute time `t` (must be >= now()).
  EventId schedule_at(Time t, Callback cb);

  /// Schedules `cb` to run `d` after the current time.
  EventId schedule_after(Time d, Callback cb) {
    return schedule_at(now_ + d, std::move(cb));
  }

  /// Cancels a pending event.  Cancelling an already-run (or already
  /// cancelled) event is a no-op.
  void cancel(EventId id);

  /// Runs the next pending event, advancing time to it.
  /// Returns false if the queue was empty.
  bool step();

  /// Runs until no events remain or stop() is called.
  /// Returns the number of events executed.
  std::uint64_t run();

  /// Runs all events with time <= `t`, then advances now() to exactly `t`.
  std::uint64_t run_until(Time t);

  /// Requests that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  bool empty() const { return live_count() == 0; }
  std::size_t pending() const { return live_count(); }

  /// Total events executed since construction (for stats / budget guards).
  std::uint64_t executed() const { return executed_; }

 private:
  struct Ev {
    Time t;
    EventId id;  // also the FIFO tie-breaker
  };
  struct EvLater {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;
    }
  };

  std::size_t live_count() const { return heap_.size() - cancelled_.size(); }

  Time now_{};
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Ev, std::vector<Ev>, EvLater> heap_;
  // Callbacks are stored out-of-band so cancel() can drop the closure
  // immediately (freeing captured resources) while the heap entry stays.
  std::unordered_map<EventId, Callback> callbacks_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace xt::sim
