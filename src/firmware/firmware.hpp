#pragma once

// The SeaStar firmware (§4 of the paper).
//
// A single-threaded event loop on the embedded PowerPC 440: commands arrive
// from the host through per-process mailboxes, new messages arrive from the
// Rx DMA engine, and handlers run to completion one at a time (modeled by
// every handler holding the `ppc_` resource for its instruction cost).
//
// Processing modes (§3.1, §4.1):
//   * generic     — the firmware copies each new header to the host's
//                   upper pending, posts an event and RAISES AN INTERRUPT;
//                   the host performs Portals matching and answers with a
//                   receive command.  Two interrupts per received message
//                   (header + completion), one for <= 12 B inline messages.
//   * accelerated — Portals matching is offloaded: an AccelMatcher
//                   (installed by the user-level library) is consulted
//                   directly from the header handler, events are delivered
//                   to a polled event queue, and no interrupts fire.
//
// Resource exhaustion (§4.3): with Config::gobackn false the firmware
// mirrors the shipped behaviour — it panics the node.  With it true, the
// in-progress go-back-n protocol is active: each message carries a per-
// destination stream sequence number; a receiver that must drop (no source
// slot / no pending / out-of-order arrival) NACKs and the sender rewinds
// and retransmits its window from there.  Acknowledgement is tied to the
// end-to-end CRC: a message is *accepted* at header time but only *acked*
// (cumulative FwAck of SourceSlot::verified_seq) once its last flit arrived
// and the e2e CRC-32 checked out, and a CRC failure rewinds the stream and
// NACKs so the sender retransmits — an undetected link corruption costs a
// drop + retransmit instead of a lost message.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "firmware/fw_event_queue.hpp"
#include "sim/flat_map.hpp"
#include "firmware/source_table.hpp"
#include "firmware/types.hpp"
#include "portals/wire.hpp"
#include "seastar/nic.hpp"
#include "sim/condition.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"
#include "telemetry/metrics.hpp"

namespace xt::fw {

/// Firmware-side Portals matching for one accelerated process, implemented
/// by the user-level Portals library (src/portals/accel_nal).
class AccelMatcher {
 public:
  virtual ~AccelMatcher() = default;

  struct Result {
    std::uint32_t mlength = 0;
    std::uint32_t n_dma_cmds = 1;
    DepositFn deposit;  // may be empty when mlength == 0
    /// Counting event to bump when the deposit completes (kNoCt: none).
    CtId ct_id = kNoCt;
    /// Firmware completes the reception itself — no host event (CT-counted
    /// deposit into an EQ-less MD; the offload-collective data path).
    bool fw_complete = false;
  };
  /// Returns the deposit decision for an incoming put/reply header, or
  /// nullopt to drop the message.  `pending` identifies the RX pending so
  /// the library can associate the eventual completion event with its
  /// matched state.  Runs in firmware context; its cost is charged by the
  /// firmware (fw_match_per_me x entries examined, reported through
  /// `entries_walked`).
  virtual std::optional<Result> fw_match(const ptl::WireHeader& hdr,
                                         PendingId pending,
                                         std::size_t& entries_walked) = 0;

  struct ReplyProg {
    std::uint32_t mlength = 0;
    std::uint32_t n_dma_cmds = 1;
    ss::PayloadReader reader;  // reads the matched buffer for the reply
    ptl::WireHeader reply_header;
  };
  /// Offloaded handling of an incoming GET request: matching plus the
  /// reply transmit program.  nullopt drops the request.
  virtual std::optional<ReplyProg> fw_get(const ptl::WireHeader& hdr,
                                          PendingId pending,
                                          std::size_t& entries_walked) = 0;
};

class Firmware final : public ss::RxClient {
 public:
  Firmware(sim::Engine& eng, ss::Nic& nic, const ss::Config& cfg);
  ~Firmware() override;

  // ------------------------------------------------------------- boot ----
  struct ProcessOptions {
    bool accelerated = false;
    std::size_t n_rx_pendings = 0;  // 0: defaults from Config
    std::size_t n_tx_pendings = 0;
    AccelMatcher* matcher = nullptr;  // required when accelerated
  };
  /// Registers a firmware-level process; process 0 must be the generic one.
  FwProcId register_process(const ProcessOptions& opts);

  /// Routes incoming messages addressed to `pid` to firmware process
  /// `proc` (unbound pids go to the generic process).
  void bind_pid(std::uint16_t pid, FwProcId proc);

  /// Installs the node's interrupt line (generic-mode event delivery).
  void set_irq(std::function<void()> irq) { irq_ = std::move(irq); }

  // ----------------------------------------- host-side mailbox access ----
  // Callers (bridges / kernel agent) charge their own trap + CPU costs;
  // these methods charge only the HyperTransport crossing.

  /// Allocates a TX pending from the host-managed pool (§4.2).  Returns
  /// kNoPending when exhausted.
  PendingId host_alloc_tx_pending(FwProcId proc);
  void host_free_tx_pending(FwProcId proc, PendingId id);

  /// The host-memory half of a pending (host writes headers into TX upper
  /// pendings; reads received headers from RX upper pendings).
  UpperPending& upper(FwProcId proc, PendingId id);

  /// Posts a command into the process's mailbox command FIFO.
  void post_command(FwProcId proc, Command cmd);

  /// The firmware-to-host event queue of a process (kernel EQ for the
  /// generic process, polled EQ for accelerated ones).
  FwEventQueue& event_queue(FwProcId proc);

  /// Posts a query command and busy-waits for its result in the mailbox's
  /// result FIFO (the §4.1 result path; transmit/receive commands, by
  /// contrast, complete through events much later).
  sim::CoTask<std::uint64_t> host_query(FwProcId proc,
                                        QueryCommand::What what);

  // ------------------- counting events + triggered operations (accel) ----
  // Setup-phase calls are direct host accesses to the per-process SRAM
  // tables (the caller charges its own HT/CPU costs); the *start* of a
  // collective goes through the mailbox (post_command with a CtCommand) so
  // the increment runs in firmware context and fires the trigger scan.

  /// Allocates a counter slot; kNoCt when the table is exhausted.
  CtId host_ct_alloc(FwProcId proc);
  void host_ct_free(FwProcId proc, CtId ct);
  std::uint64_t host_ct_get(FwProcId proc, CtId ct) const;
  /// Plain store (setup/rearm only — does NOT run the trigger scan).
  void host_ct_set(FwProcId proc, CtId ct, std::uint64_t value);
  /// Arms one triggered operation; false when the table is full (the
  /// PTL_NO_SPACE condition the library surfaces).
  bool host_add_trigger(FwProcId proc, TriggeredOp op);
  /// Clears the fired flags so an identical collective can run again
  /// without re-building the table (per-iteration rearm).
  void host_rearm_triggers(FwProcId proc);
  /// Empties the trigger table (new collective schedule).
  void host_reset_triggers(FwProcId proc);
  std::size_t triggers_armed(FwProcId proc) const;
  /// Notified on every counter change of the process; CT waiters re-check
  /// their thresholds (simulation stand-in for polling process-space
  /// counter mirrors).
  sim::WaitQueue& ct_waiters(FwProcId proc);

  /// RAS heartbeat (Figure 3's control block field): advances with
  /// firmware time and freezes on panic, which is how the RAS system
  /// detects a dead node.
  std::uint64_t heartbeat() const;

  // ------------------------------------------------- fault injection ----
  /// Occupies the PowerPC for `busy` (a firmware stall: handlers queue up
  /// behind it exactly as behind a long-running handler).
  void inject_stall(sim::Time busy);
  /// Rank mortality: the node stops processing (panic machinery, but with
  /// a distinguishable reason and no error log — the death is scripted).
  void fault_kill();
  /// Restart after fault_kill: SRAM state survives (the node was stalled,
  /// not rebooted); stalled work loops are re-kicked.
  void fault_revive();

  // -------------------------------------------------- ss::RxClient ----
  void on_rx_header(const net::MessagePtr& msg) override;
  void on_rx_complete(const net::MessagePtr& msg, bool crc_ok) override;

  // ---------------------------------------------------- introspection ----
  /// Value snapshot of the firmware's op counters.  The live values are
  /// named entries in the engine's MetricsRegistry ("fw.nN.*"), so they
  /// appear in --metrics snapshots; this struct is assembled on demand for
  /// the existing test/bench call sites.
  struct Counters {
    std::uint64_t tx_cmds = 0;
    std::uint64_t rx_cmds = 0;
    std::uint64_t releases = 0;
    std::uint64_t tx_msgs = 0;
    std::uint64_t rx_headers = 0;
    std::uint64_t rx_completions = 0;
    std::uint64_t inline_deliveries = 0;
    std::uint64_t interrupts = 0;
    std::uint64_t crc_drops = 0;
    std::uint64_t exhaustion_drops = 0;
    std::uint64_t nacks_sent = 0;
    std::uint64_t nacks_received = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t rewinds = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t accel_matches = 0;
    std::uint64_t ct_increments = 0;
    std::uint64_t triggered_fires = 0;
  };
  Counters counters() const;
  bool panicked() const { return panicked_; }
  const std::string& panic_reason() const { return panic_reason_; }
  std::size_t sources_in_use() const { return sources_.in_use(); }
  /// Debug introspection for tests/diagnostics.
  struct StreamDebug {
    std::uint32_t next_seq = 0;
    std::uint32_t window_base = 0;
    std::size_t window = 0;
    bool rewinding = false;
  };
  StreamDebug debug_stream(net::NodeId dst) const {
    auto it = tx_streams_.find(dst);
    if (it == tx_streams_.end()) return {};
    return {it->second.next_seq, it->second.window_base,
            it->second.window.size(), it->second.rewinding};
  }
  std::uint32_t debug_expected(net::NodeId src) {
    SourceSlot* s = sources_.lookup(src);
    return s ? s->expected_seq : 0;
  }
  std::size_t debug_rx_free(FwProcId proc) const {
    return procs_[static_cast<std::size_t>(proc)].rx_free.size();
  }
  /// One line per non-free lower pending (state, flags, msg src/seq).
  std::vector<std::string> debug_pendings(FwProcId proc) const;
  ss::Nic& nic() { return nic_; }
  const ss::Config& config() const { return cfg_; }

 private:
  struct Proc {
    bool accelerated = false;
    AccelMatcher* matcher = nullptr;
    std::vector<UpperPending> upper;
    std::vector<LowerPending> lower;
    std::vector<PendingId> rx_free;  // firmware-managed pool
    std::vector<PendingId> tx_free;  // host-managed pool
    std::unique_ptr<FwEventQueue> eq;
    std::deque<Command> mailbox;
    /// Result FIFO: (ticket, value) pairs the host busy-waits on.
    std::deque<std::pair<std::uint64_t, std::uint64_t>> results;
    std::unique_ptr<sim::WaitQueue> result_waiters;
    ss::Sram::Region sram;
    // Counting events + triggered operations (accelerated only).
    std::vector<std::uint64_t> cts;
    std::vector<bool> ct_live;
    std::vector<TriggeredOp> triggers;  // capacity reserved at boot
    std::unique_ptr<sim::WaitQueue> ct_waiters;
    ss::Sram::Region ct_sram;
    bool trigger_scan_running = false;
  };

  /// Go-back-n per-destination transmit stream.
  struct TxStream {
    std::uint32_t next_seq = 0;
    std::uint32_t window_base = 0;  // lowest retained (un-acked) seq
    struct Sent {
      std::array<std::byte, ptl::kHeaderPacketBytes> packet;
      std::vector<std::byte> payload;
      std::uint32_t n_dma_cmds = 1;
      std::uint64_t prov = 0;  // provenance id of the original transmit
    };
    std::deque<Sent> window;  // window[i] has seq == window_base + i
    bool rewinding = false;
    bool watchdog_running = false;
    sim::Time backoff{};  // current (exponential) retransmit backoff
    /// Consecutive no-progress watchdog rewinds (reset on any ack).
    std::size_t no_progress = 0;
    /// The watchdog gave up on this destination (gobackn_max_rewinds
    /// exceeded — the peer is dead): stop recording, ignore its NACKs;
    /// losses surface at initiators via the Portals ack timeout.
    bool dead_dest = false;
  };

  LowerPending& lower(FwProcId proc, PendingId id) {
    return procs_[static_cast<std::size_t>(proc)].lower[id];
  }

  // Handlers (each holds ppc_ for its cost).
  sim::CoTask<void> dispatch_loop();
  sim::CoTask<void> handle_command(FwProcId proc, Command cmd);
  sim::CoTask<void> tx_worker();
  sim::CoTask<void> rx_header_handler(net::MessagePtr msg);
  sim::CoTask<void> rx_complete_handler(net::MessagePtr msg, bool crc_ok);
  sim::CoTask<void> deposit_worker(net::NodeId source_node);
  sim::CoTask<void> stall_worker(sim::Time busy);

  /// Bumps a counter in firmware context: notifies CT waiters and kicks
  /// the trigger scan when armed entries may have become due.
  void ct_add(FwProcId proc, CtId ct, std::uint64_t inc);
  /// Drains every due triggered op; re-scans until a pass fires nothing
  /// (a fired op may bump further counters).
  sim::CoTask<void> trigger_scan(FwProcId proc);
  /// Fires triggers[idx] (kind kPut): modeled on the accelerated-GET reply
  /// transmit — header fetch, payload read at fire time, NIC transmit.
  sim::CoTask<void> fire_triggered_put(FwProcId proc, std::size_t idx);

  /// Posts an event to a process EQ: HT write + (generic) interrupt.
  /// `prov` (when nonzero) stamps the interrupt-raise / event-post stage
  /// on the message's provenance record.
  void post_event(FwProcId proc, FwEvent ev, std::uint64_t prov = 0);
  /// Checks the head of `src`'s RX list and starts its deposit if ready.
  void maybe_start_deposit(SourceSlot& src);
  void free_rx_pending(FwProcId proc, PendingId id);
  void panic(std::string reason);

  // Go-back-n.
  /// Completion-time verification: message `seq` from `src_node` passed the
  /// e2e CRC.  Advances verified_seq and sends the cumulative FwAck.
  void gbn_verified(net::NodeId src_node, std::uint32_t seq);
  /// Completion-time CRC failure of message `seq`: rewinds expected_seq,
  /// cancels already-accepted successors of the stream (the retransmit will
  /// re-deliver them) and NACKs the sender.
  void gbn_crc_fail(net::NodeId src_node, std::uint32_t seq);
  void gbn_record(net::NodeId dst, const net::Message& msg,
                  std::uint32_t n_dma_cmds);
  sim::CoTask<void> gbn_send_control(net::NodeId dst, ptl::WireOp op,
                                     std::uint32_t seq);
  sim::CoTask<void> gbn_rewind(net::NodeId dst, std::uint32_t from_seq);
  sim::CoTask<void> gbn_watchdog(net::NodeId dst);

  sim::Engine& eng_;
  ss::Nic& nic_;
  const ss::Config& cfg_;

  sim::Resource ppc_;  // the single-threaded PowerPC 440
  std::vector<Proc> procs_;
  /// Pid -> process routing: direct-indexed (pids are small dense rank
  /// numbers); out-of-range pids fall through to the generic process.
  std::vector<FwProcId> pid_route_;
  SourceTable sources_;
  ss::Sram::Region cb_region_;
  ss::Sram::Region source_region_;
  ss::Sram::Region image_region_;

  std::deque<PendingId> tx_list_;          // control block TX pending list
  std::deque<FwProcId> tx_list_procs_;     // parallel: owning process
  bool tx_worker_running_ = false;
  bool dispatch_running_ = false;

  /// In-flight RX: network seq -> (proc, pending).
  sim::FlatU64Map<std::pair<FwProcId, PendingId>> inflight_rx_;

  std::unordered_map<net::NodeId, TxStream> tx_streams_;

  /// Go-back-n: messages accepted into a stream but intentionally discarded
  /// at header time (no Portals match), keyed by network seq.  Their CRC
  /// verdict still has to advance or rewind the verified cursor at
  /// completion time, or the sender's window would never drain.
  sim::FlatU64Map<std::pair<net::NodeId, std::uint32_t>> gbn_discards_;

  /// Registry-backed op counters (one MetricsRegistry entry each, named
  /// "fw.nN.<field>"); cached handles so bumps are a single integer add.
  struct CounterHandles {
    telemetry::Counter* tx_cmds;
    telemetry::Counter* rx_cmds;
    telemetry::Counter* releases;
    telemetry::Counter* tx_msgs;
    telemetry::Counter* rx_headers;
    telemetry::Counter* rx_completions;
    telemetry::Counter* inline_deliveries;
    telemetry::Counter* interrupts;
    telemetry::Counter* crc_drops;
    telemetry::Counter* exhaustion_drops;
    telemetry::Counter* nacks_sent;
    telemetry::Counter* nacks_received;
    telemetry::Counter* retransmits;
    telemetry::Counter* rewinds;
    telemetry::Counter* duplicates_dropped;
    telemetry::Counter* accel_matches;
    telemetry::Counter* ct_increments;
    telemetry::Counter* triggered_fires;
    telemetry::Counter* mailbox_polls;
    telemetry::Gauge* rx_pendings_in_use;  // high_water = paper's "pendings
                                           // high-water mark"
  };

  std::function<void()> irq_;
  CounterHandles c_{};
  std::int64_t rx_in_use_ = 0;
  bool panicked_ = false;
  sim::Time panic_time_{};
  std::uint64_t next_ticket_ = 1;
  std::string panic_reason_;
};

}  // namespace xt::fw
