#pragma once

// Source structures (§4.2/§4.3).
//
// One source structure tracks each remote node this firmware is exchanging
// messages with: its RX pending list and (for go-back-n) the expected
// stream sequence number.  There is ONE pool for the whole firmware —
// 1,024 entries on Red Storm — fronted by a hash table of active sources.
// The pool can be exhausted (too many distinct peers), which is one of the
// §4.3 resource-exhaustion cases.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "firmware/types.hpp"
#include "net/coord.hpp"

namespace xt::fw {

struct SourceSlot {
  bool in_use = false;
  net::NodeId node = 0;
  /// RX pendings from this source, in arrival order (deposits are issued
  /// head-first, preserving the per-source ordering of §4.3).  Pending ids
  /// are scoped per firmware-level process, hence the pair.
  std::deque<std::pair<FwProcId, PendingId>> rx_list;
  /// Go-back-n: next stream_seq this node expects from the source.
  std::uint32_t expected_seq = 0;
  /// Go-back-n: next stream_seq awaiting its end-to-end CRC verdict.  A
  /// message is *accepted* (expected_seq advances) when its header passes
  /// the stream check, but only *verified* (verified_seq advances) when the
  /// last flit arrives and the e2e CRC-32 matches.  Cumulative FwAcks carry
  /// verified_seq: the sender may only trim window entries the receiver can
  /// no longer NACK back, and a CRC failure rewinds expected_seq to
  /// verified_seq so the failed message is retransmitted (§4.3 "drop +
  /// retransmit" instead of a silent host-visible drop).
  std::uint32_t verified_seq = 0;
  /// Go-back-n: a NACK has been sent and not yet satisfied (suppresses
  /// duplicate NACKs while the sender rewinds).
  bool nack_outstanding = false;
  /// Go-back-n: verified messages since the last cumulative FwAck.
  std::uint32_t unacked_accepts = 0;
  /// A deposit worker is draining this source's RX list.
  bool deposit_active = false;
};

/// Fixed pool + open-addressing hash of active sources.
class SourceTable {
 public:
  explicit SourceTable(std::size_t pool_size)
      : slots_(pool_size), hash_(2 * pool_size, kEmpty) {}

  /// Finds the source structure for `node`, or nullptr if none is active.
  SourceSlot* lookup(net::NodeId node) {
    const std::size_t h = find(node);
    return hash_[h] == kEmpty ? nullptr : &slots_[hash_[h]];
  }

  /// Finds or allocates.  Returns nullptr when the pool is exhausted —
  /// the caller decides between panic and go-back-n (§4.3).
  SourceSlot* lookup_or_alloc(net::NodeId node) {
    const std::size_t h = find(node);
    if (hash_[h] != kEmpty) return &slots_[hash_[h]];
    if (in_use_ == slots_.size()) return nullptr;
    // Linear scan for a free slot; allocation happens once per peer, so
    // this is not on the per-message path.
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].in_use) {
        slots_[i] = SourceSlot{};
        slots_[i].in_use = true;
        slots_[i].node = node;
        hash_[h] = static_cast<std::uint32_t>(i);
        ++in_use_;
        return &slots_[i];
      }
    }
    return nullptr;
  }

  std::size_t in_use() const { return in_use_; }
  std::size_t capacity() const { return slots_.size(); }

 private:
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;

  /// Probe position for `node`: its slot if active, else the first empty
  /// probe position.
  std::size_t find(net::NodeId node) const {
    std::size_t h = (node * 2654435761u) % hash_.size();
    while (hash_[h] != kEmpty && slots_[hash_[h]].node != node) {
      h = (h + 1) % hash_.size();
    }
    return h;
  }

  std::vector<SourceSlot> slots_;
  std::vector<std::uint32_t> hash_;
  std::size_t in_use_ = 0;
};

}  // namespace xt::fw
