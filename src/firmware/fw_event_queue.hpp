#pragma once

// Firmware-to-host event queue (§4.1, Figure 2).
//
// A bounded ring in host memory.  The firmware posts events atomically (a
// single event fits in one HT write); the host reads the next slot to see
// whether anything arrived.  Generic mode drains it from the interrupt
// handler; accelerated processes poll it on Portals library entry.  In the
// simulation the ring is a deque plus a WaitQueue so polling hosts can
// park instead of spinning.

#include <cstddef>
#include <deque>
#include <optional>

#include "firmware/types.hpp"
#include "sim/condition.hpp"
#include "sim/engine.hpp"

namespace xt::fw {

class FwEventQueue {
 public:
  FwEventQueue(sim::Engine& eng, std::size_t capacity)
      : capacity_(capacity), waiters_(eng) {}

  /// Firmware side.  Returns false on overflow (the host is not draining;
  /// the firmware treats this as resource exhaustion).
  bool post(const FwEvent& ev) {
    if (q_.size() >= capacity_) {
      ++dropped_;
      return false;
    }
    q_.push_back(ev);
    ++posted_;
    waiters_.notify_all();
    return true;
  }

  /// Host side: non-blocking read of the next event.
  std::optional<FwEvent> poll() {
    if (q_.empty()) return std::nullopt;
    const FwEvent ev = q_.front();
    q_.pop_front();
    return ev;
  }

  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }
  std::uint64_t posted() const { return posted_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Park here until the next post (accelerated-mode poll loops).
  sim::WaitQueue& waiters() { return waiters_; }

 private:
  std::size_t capacity_;
  std::deque<FwEvent> q_;
  sim::WaitQueue waiters_;
  std::uint64_t posted_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace xt::fw
