#pragma once

// Firmware-to-host event queue (§4.1, Figure 2).
//
// A bounded ring in host memory.  The firmware posts events atomically (a
// single event fits in one HT write); the host reads the next slot to see
// whether anything arrived.  Generic mode drains it from the interrupt
// handler; accelerated processes poll it on Portals library entry.  In the
// simulation the ring is a fixed preallocated buffer — exactly the host
// memory ring the hardware writes into — plus a WaitQueue so polling
// hosts can park instead of spinning.  Posting never allocates.

#include <cstddef>
#include <optional>
#include <vector>

#include "firmware/types.hpp"
#include "sim/condition.hpp"
#include "sim/engine.hpp"

namespace xt::fw {

class FwEventQueue {
 public:
  FwEventQueue(sim::Engine& eng, std::size_t capacity)
      : capacity_(capacity), slots_(capacity), waiters_(eng) {}

  /// Firmware side.  Returns false on overflow (the host is not draining;
  /// the firmware treats this as resource exhaustion).
  bool post(const FwEvent& ev) {
    if (len_ >= capacity_) {
      ++dropped_;
      return false;
    }
    slots_[(head_ + len_) % capacity_] = ev;
    ++len_;
    ++posted_;
    waiters_.notify_all();
    return true;
  }

  /// Host side: non-blocking read of the next event.
  std::optional<FwEvent> poll() {
    if (len_ == 0) return std::nullopt;
    const FwEvent ev = slots_[head_];
    head_ = (head_ + 1) % capacity_;
    --len_;
    return ev;
  }

  bool empty() const { return len_ == 0; }
  std::size_t size() const { return len_; }
  std::uint64_t posted() const { return posted_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Park here until the next post (accelerated-mode poll loops).
  sim::WaitQueue& waiters() { return waiters_; }

 private:
  std::size_t capacity_;
  std::vector<FwEvent> slots_;
  std::size_t head_ = 0;
  std::size_t len_ = 0;
  sim::WaitQueue waiters_;
  std::uint64_t posted_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace xt::fw
