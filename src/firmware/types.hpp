#pragma once

// Firmware data structures, following Figure 3 of the paper.
//
// Each in-flight message is tracked by a *pending*, split one-to-one into:
//   * a lower pending in SeaStar SRAM (progress state, buffer info) that
//     only the firmware touches, and
//   * an upper pending in cached host memory (the full Portals header and
//     whatever the host needs) that the firmware writes but never reads —
//     reading would cost an HT round trip (§4.2).
//
// Pools: each firmware-level process has an RX pending pool managed by the
// firmware (allocated on message arrival) and a TX pool managed by the host
// (allocated before posting a transmit command).  Nothing is allocated
// dynamically after initialization.

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <variant>

#include "net/message.hpp"
#include "portals/wire.hpp"
#include "seastar/nic.hpp"

namespace xt::fw {

using PendingId = std::uint16_t;
inline constexpr PendingId kNoPending = 0xFFFF;

/// Identifies a firmware-level process (§4.2: the generic Portals
/// implementation in the kernel is process 0; accelerated processes get
/// their own slots).
using FwProcId = int;
inline constexpr FwProcId kGenericProc = 0;

/// Deposits received payload bytes into host memory (the simulation's stand-
/// in for the Rx DMA engine's pre-programmed command list).
using DepositFn = std::function<void(std::span<const std::byte>)>;

/// Counting-event slot index within one accelerated process (Portals-4
/// style: a bare uint64 in SRAM that deposits and triggered ops bump).
using CtId = std::uint16_t;
inline constexpr CtId kNoCt = 0xFFFF;

/// One armed entry of the firmware-resident triggered-operation table.
/// When `trig_ct` reaches `threshold` the firmware fires the operation
/// itself — the next hop of a collective leaves the NIC with no host
/// interrupt and no HT round trip beyond the payload DMA read.
struct TriggeredOp {
  enum class Kind : std::uint8_t {
    kPut,    // transmit hdr (+payload read at fire time) to dst
    kCtInc,  // bump another local counter (chains trigger cascades)
  };
  Kind kind = Kind::kPut;
  CtId trig_ct = kNoCt;
  std::uint64_t threshold = 0;
  bool fired = false;
  // kPut:
  net::NodeId dst = 0;
  ptl::WireHeader hdr;
  /// Reads the payload from host memory AT FIRE TIME (the Tx DMA), so a
  /// triggered put of an accumulation buffer ships the accumulated values.
  ss::PayloadReader reader;
  std::uint32_t payload_bytes = 0;
  std::uint32_t n_dma_cmds = 1;
  // kCtInc:
  CtId target_ct = kNoCt;
  std::uint64_t inc = 1;
};

/// Upper pending: host-memory half of a pending (Figure 3).
struct UpperPending {
  /// Full 64-byte header packet as it crossed the wire — the Portals header
  /// plus any inline user data.  The firmware writes it; the host performs
  /// matching from it.
  std::array<std::byte, ptl::kHeaderPacketBytes> header_packet{};
  /// Simulation alias for "the bytes the Rx DMA engine is holding": lets
  /// the deposit step move real payload bytes without re-serializing them.
  net::MessagePtr msg;
};

/// Host-to-firmware commands (the command FIFO contents, §4.1).
struct TxCommand {
  PendingId pending = kNoPending;
  net::NodeId dst = 0;
  std::uint32_t payload_bytes = 0;
  /// Number of pre-computed DMA commands (1 for physically contiguous
  /// Catamount buffers; one per page on Linux, §3.3).
  std::uint32_t n_dma_cmds = 1;
  /// Reads payload out of host memory as the Tx DMA consumes it.
  ss::PayloadReader reader;
  /// Provenance record id stamped by the posting host (0 = untracked);
  /// the firmware copies it onto the wire message it builds.
  std::uint64_t prov = 0;
};

struct RxCommand {
  PendingId pending = kNoPending;
  /// Bytes to deliver (Portals mlength); the remainder of the message is
  /// discarded by the DMA engine.
  std::uint32_t deliver_bytes = 0;
  std::uint32_t n_dma_cmds = 1;
  DepositFn deposit;
  /// Counting event to bump once the deposit completes (accelerated
  /// matcher decision; kNoCt for everything else).
  CtId ct = kNoCt;
  /// The firmware completes this reception itself (free the pending, no
  /// host event) — set for CT-counted deposits into EQ-less MDs, which is
  /// what keeps the host out of the offload collective data path.
  bool fw_complete = false;
};

/// Host is done with an RX upper pending; return it to the firmware pool.
struct ReleaseCommand {
  PendingId pending = kNoPending;
};

/// A command that RETURNS A RESULT through the mailbox's result FIFO
/// (§4.1: "If the command returns a result, the host busy-waits until the
/// firmware posts the result to the result FIFO").
struct QueryCommand {
  enum class What : std::uint8_t {
    kHeartbeat,     // RAS heartbeat from the control block (Figure 3)
    kSourcesInUse,  // active source structures
    kRxFreePendings,
    kRxMessages,    // completed receptions
  };
  What what = What::kHeartbeat;
  std::uint64_t ticket = 0;  // matches the result back to the request
};

/// Host-side increment of a counting event (the one host touch that starts
/// an offloaded collective; everything after runs from the trigger table).
struct CtCommand {
  CtId ct = kNoCt;
  std::uint64_t inc = 1;
};

using Command = std::variant<TxCommand, RxCommand, ReleaseCommand,
                             QueryCommand, CtCommand>;

/// Firmware-to-host events (posted into a host event queue, §4.1).
struct FwEvent {
  enum class Type : std::uint8_t {
    kTxComplete,  // "message transmit complete"
    kRxHeader,    // new message: header is in the upper pending
    kRxComplete,  // "message reception complete": payload deposited
    kRxDropped,   // end-to-end CRC failed after the header was delivered
  };
  Type type = Type::kTxComplete;
  PendingId pending = kNoPending;
};

/// Lower pending: SRAM half of a pending (Figure 3: "current state,
/// buffer info"; 32 bytes in hardware — the simulation fields below are
/// bookkeeping, the SRAM *budget* is charged per Config::lower_pending_bytes).
struct LowerPending {
  enum class State : std::uint8_t {
    kFree,
    kTxQueued,   // on the control block's TX pending list
    kTxActive,   // Tx DMA programmed
    kRxHeader,   // header seen, waiting for host receive command
    kRxActive,   // receive command programmed / deposit in progress
    kHostOwned,  // events posted; waiting for the release command
  };
  State state = State::kFree;
  FwProcId proc = kGenericProc;
  net::MessagePtr msg;
  TxCommand tx;
  RxCommand rx;
  bool body_complete = false;
  bool cmd_ready = false;
  bool crc_ok = true;
  bool inline_delivery = false;
  /// Go-back-n stream sequence this message was accepted under (needed at
  /// completion time to advance verified_seq / rewind on CRC failure).
  std::uint32_t stream_seq = 0;
  /// Go-back-n: an earlier message of the same stream failed its e2e CRC
  /// after this one was accepted; the retransmit will re-deliver it, so
  /// the completion handler must drop it instead of delivering twice.
  bool gbn_cancelled = false;
  /// The firmware itself is driving this pending to completion
  /// (accelerated GET: the reply transmit); the completion handler must
  /// not post events or reclaim it.
  bool fw_owned = false;
};

}  // namespace xt::fw
